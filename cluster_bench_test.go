package autofeat

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"autofeat/internal/datagen"
	"autofeat/internal/obsrv"
	"autofeat/internal/serve"
	"autofeat/internal/telemetry"
)

// TestWriteClusterBench regenerates BENCH_cluster.json, the committed
// cluster-throughput baseline: jobs/sec through a coordinator routing a
// multi-lake workload to 1 worker vs 2 workers. Gated behind
// AUTOFEAT_CLUSTER_BENCH_OUT so plain `go test` stays fast:
//
//	AUTOFEAT_CLUSTER_BENCH_OUT=BENCH_cluster.json go test -run TestWriteClusterBench .
//
// (or `make bench`). The workload is interactive-shaped: beam-bounded
// discoveries spread round-robin over four lakes, so with two workers
// rendezvous hashing splits the lakes and the jobs run on two resident
// sessions instead of one. The 2-worker speedup is CPU-bound: on a
// single-core container both workers share one core and the ratio
// hovers near 1x, so the >= 1.5x scaling floor is asserted only when
// the host has two or more CPUs (same convention as BENCH_parallel).
func TestWriteClusterBench(t *testing.T) {
	out := os.Getenv("AUTOFEAT_CLUSTER_BENCH_OUT")
	if out == "" {
		t.Skip("set AUTOFEAT_CLUSTER_BENCH_OUT=<path> to write the cluster throughput baseline")
	}
	spec := datagen.SmallSpecs()[0]
	ds, err := datagen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, tb := range ds.Tables {
		if err := tb.WriteCSVFile(filepath.Join(dir, tb.Name()+".csv")); err != nil {
			t.Fatal(err)
		}
	}
	lakes := []string{"lake-001", "lake-002", "lake-003", "lake-004"}
	const jobs = 16

	ns1 := clusterJobsNs(t, dir, ds, lakes, 1, jobs)
	ns2 := clusterJobsNs(t, dir, ds, lakes, 2, jobs)
	speedup := ns1 / ns2
	t.Logf("1 worker:  %.0f ns/job (%.1f jobs/sec)", ns1, 1e9/ns1)
	t.Logf("2 workers: %.0f ns/job (%.1f jobs/sec, %.2fx)", ns2, 1e9/ns2, speedup)
	if runtime.NumCPU() >= 2 && speedup < 1.5 {
		t.Errorf("2-worker speedup %.2fx, want >= 1.5x on a multi-core host", speedup)
	}

	type entry struct {
		Mode       string  `json:"mode"`
		Workers    int     `json:"workers"`
		Iterations int     `json:"iterations"`
		NsPerOp    int64   `json:"ns_per_op"`
		SpeedupVs1 float64 `json:"speedup_vs_1"`
		JobsPerSec float64 `json:"jobs_per_sec"`
	}
	doc := struct {
		Benchmark  string  `json:"benchmark"`
		Dataset    string  `json:"dataset"`
		Rows       int     `json:"rows"`
		Tables     int     `json:"joinable_tables"`
		Lakes      int     `json:"lakes"`
		Jobs       int     `json:"jobs"`
		GOMAXPROCS int     `json:"gomaxprocs"`
		NumCPU     int     `json:"num_cpu"`
		Results    []entry `json:"results"`
	}{
		Benchmark:  "BenchmarkClusterJobs",
		Dataset:    spec.Name,
		Rows:       spec.Rows,
		Tables:     spec.JoinableTables,
		Lakes:      len(lakes),
		Jobs:       jobs,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Results: []entry{
			{Mode: "cluster", Workers: 1, Iterations: jobs, NsPerOp: int64(ns1), SpeedupVs1: 1, JobsPerSec: 1e9 / ns1},
			{Mode: "cluster", Workers: 2, Iterations: jobs, NsPerOp: int64(ns2), SpeedupVs1: speedup, JobsPerSec: 1e9 / ns2},
		},
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline written to %s", out)
}

// clusterJobsNs stands up a coordinator plus n workers over httptest
// listeners, pushes the multi-lake workload through, and returns the
// steady-state wall-clock ns per job (one warmup job per lake is run
// first so every worker's resident sessions hold a memoised DRG).
func clusterJobsNs(t *testing.T, dir string, ds *datagen.Dataset, lakes []string, n, jobs int) float64 {
	t.Helper()
	store, err := serve.NewJobStore("")
	if err != nil {
		t.Fatal(err)
	}
	coord := serve.NewCoordinator(serve.ClusterConfig{
		HeartbeatTimeout: time.Minute,
		Collector:        telemetry.New(),
	}, store)
	csrv := obsrv.NewServer(obsrv.Config{Collector: telemetry.New()})
	coord.Mount(csrv)
	coordTS := httptest.NewServer(csrv.Handler())
	defer coordTS.Close()

	for i := 0; i < n; i++ {
		col := telemetry.New()
		wsrv := obsrv.NewServer(obsrv.Config{Collector: col})
		svc := serve.New(serve.Config{Workers: 1, QueueDepth: jobs + len(lakes), Collector: col})
		svc.Mount(wsrv)
		ts := httptest.NewServer(wsrv.Handler())
		defer ts.Close()
		agent := serve.NewAgent(serve.AgentConfig{
			ID:          fmt.Sprintf("bench-worker-%d", i),
			Addr:        ts.URL,
			Coordinator: coordTS.URL,
			Collector:   col,
		}, svc)
		agent.Mount(wsrv)
		if err := agent.Heartbeat(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	for _, id := range lakes {
		body, _ := json.Marshal(map[string]any{"id": id, "dir": dir})
		resp, err := http.Post(coordTS.URL+"/v1/lakes", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("register %s: status %d", id, resp.StatusCode)
		}
	}

	submit := func(lakeID string) {
		body, _ := json.Marshal(map[string]any{
			"lake": lakeID, "base": ds.Base.Name(), "label": ds.Label,
		})
		resp, err := http.Post(coordTS.URL+"/v1/discoveries", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit on %s: status %d", lakeID, resp.StatusCode)
		}
	}
	drain := func() {
		deadline := time.Now().Add(120 * time.Second)
		for time.Now().Before(deadline) {
			coord.Sweep()
			done := true
			for _, j := range coord.Store().Jobs() {
				switch j.State {
				case serve.StateDone:
				case serve.StateFailed, serve.StateCancelled:
					t.Fatalf("cluster job %s finished %q: %s", j.ID, j.State, j.Error)
				default:
					done = false
				}
			}
			if done {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatal("cluster workload did not drain in time")
	}

	// Warmup: one job per lake pays each worker's DRG build.
	for _, id := range lakes {
		submit(id)
	}
	drain()

	start := time.Now()
	for i := 0; i < jobs; i++ {
		submit(lakes[i%len(lakes)])
	}
	drain()
	return float64(time.Since(start).Nanoseconds()) / float64(jobs)
}
