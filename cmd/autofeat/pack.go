package main

import (
	"flag"
	"fmt"
	"os"

	"autofeat"
)

// runPack implements `autofeat pack <dir>`: convert a CSV lake to the
// columnar format in place. The source CSVs are kept; subsequent opens
// auto-detect and prefer the packed files.
func runPack(args []string) error {
	fs := flag.NewFlagSet("pack", flag.ContinueOnError)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: autofeat pack <dir>")
		fmt.Fprintln(os.Stderr, "Rewrites every *.csv table in <dir> as a columnar *.afc file")
		fmt.Fprintln(os.Stderr, "(atomic per table; CSVs are kept, packed files take precedence).")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("expected exactly one lake directory, got %d args", fs.NArg())
	}
	dir := fs.Arg(0)
	n, err := autofeat.PackLake(dir)
	if err != nil {
		return err
	}
	fmt.Printf("packed %d tables in %s\n", n, dir)
	return nil
}
