package main

// `autofeat cluster` — the operator CLI over the coordinator's
// federated observability surfaces. `status` renders GET
// /v1/cluster/status (membership, placement, queue and store load, the
// merged counter rollup); `trace <id>` renders the cross-node span
// tree assembled by GET /v1/traces/{id}. Both talk to the coordinator
// only: the coordinator pulls workers, the operator never has to.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"
)

// runCluster implements the `autofeat cluster <status|trace>` subcommand.
func runCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	coord := fs.String("coordinator", "http://localhost:8080", "coordinator base URL")
	timeout := fs.Duration("timeout", 10*time.Second, "HTTP request timeout")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: autofeat cluster <verb> [-coordinator URL]")
		fmt.Fprintln(os.Stderr, "  status       one-call cluster view: workers, lakes, queue, store, merged counters")
		fmt.Fprintln(os.Stderr, "  trace <id>   assemble one cross-node trace into a span tree")
		fs.PrintDefaults()
	}
	// Accept flags on either side of the verb (and of the trace ID):
	// flag.Parse stops at the first positional, so re-parse each tail.
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) >= 2 {
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		rest = append(rest[:1], fs.Args()...)
	}
	if len(rest) >= 3 {
		if err := fs.Parse(rest[2:]); err != nil {
			return err
		}
		rest = append(rest[:2], fs.Args()...)
	}
	if len(rest) == 0 {
		fs.Usage()
		os.Exit(2)
	}
	client := &http.Client{Timeout: *timeout}
	base := strings.TrimRight(*coord, "/")
	switch rest[0] {
	case "status":
		return clusterStatus(client, base)
	case "trace":
		if len(rest) != 2 {
			return fmt.Errorf("usage: autofeat cluster trace <trace-id>")
		}
		return clusterTrace(client, base, rest[1])
	default:
		fs.Usage()
		os.Exit(2)
		return nil
	}
}

// clusterGet fetches one coordinator endpoint and decodes its JSON
// body, surfacing the server's {"error": ...} message on non-200s.
func clusterGet(client *http.Client, base, path string, out any) error {
	resp, err := client.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return fmt.Errorf("GET %s: %s: %s", path, resp.Status, e.Error)
		}
		return fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return json.Unmarshal(body, out)
}

// cliStatusDoc mirrors the coordinator's /v1/cluster/status body (the
// subset the text rendering uses).
type cliStatusDoc struct {
	Proto     string `json:"proto"`
	Node      string `json:"node"`
	WorkersUp int    `json:"workers_up"`
	Workers   []struct {
		ID               string   `json:"id"`
		Addr             string   `json:"addr"`
		Alive            bool     `json:"alive"`
		Draining         bool     `json:"draining"`
		Lakes            []string `json:"lakes"`
		Queued           int      `json:"queued"`
		Running          int      `json:"running"`
		Slots            int      `json:"slots"`
		SecondsSinceSeen float64  `json:"seconds_since_seen"`
	} `json:"workers"`
	Lakes []struct {
		ID     string `json:"id"`
		Dir    string `json:"dir"`
		Worker string `json:"worker"`
	} `json:"lakes"`
	Store struct {
		Jobs      int            `json:"jobs"`
		ByState   map[string]int `json:"by_state"`
		Version   int64          `json:"version"`
		Retention int            `json:"retention"`
		Evicted   int64          `json:"evicted"`
	} `json:"store"`
	Queue struct {
		Queued        int `json:"queued"`
		Dispatched    int `json:"dispatched"`
		WorkerQueued  int `json:"worker_queued"`
		WorkerRunning int `json:"worker_running"`
		WorkerSlots   int `json:"worker_slots"`
	} `json:"queue"`
	Events   int64            `json:"events_recorded"`
	Counters map[string]int64 `json:"counters"`
}

// clusterStatus renders the one-call cluster view as operator text.
func clusterStatus(client *http.Client, base string) error {
	var doc cliStatusDoc
	if err := clusterGet(client, base, "/v1/cluster/status", &doc); err != nil {
		return err
	}
	fmt.Printf("cluster %s via %s (%s)\n", doc.Node, base, doc.Proto)
	fmt.Printf("workers up: %d/%d   events recorded: %d\n\n", doc.WorkersUp, len(doc.Workers), doc.Events)
	if len(doc.Workers) > 0 {
		fmt.Println("workers:")
		for _, w := range doc.Workers {
			state := "up"
			switch {
			case !w.Alive:
				state = "DOWN"
			case w.Draining:
				state = "draining"
			}
			fmt.Printf("  %-12s %-8s %s  queued %d running %d slots %d  lakes [%s]  seen %.1fs ago\n",
				w.ID, state, w.Addr, w.Queued, w.Running, w.Slots, strings.Join(w.Lakes, " "), w.SecondsSinceSeen)
		}
		fmt.Println()
	}
	if len(doc.Lakes) > 0 {
		fmt.Println("lakes:")
		for _, l := range doc.Lakes {
			owner := l.Worker
			if owner == "" {
				owner = "(unplaced)"
			}
			fmt.Printf("  %-12s -> %-12s %s\n", l.ID, owner, l.Dir)
		}
		fmt.Println()
	}
	states := make([]string, 0, len(doc.Store.ByState))
	for s, n := range doc.Store.ByState {
		states = append(states, fmt.Sprintf("%s %d", s, n))
	}
	sort.Strings(states)
	fmt.Printf("store: %d jobs (%s), version %d", doc.Store.Jobs, strings.Join(states, ", "), doc.Store.Version)
	if doc.Store.Retention > 0 {
		fmt.Printf(", retention %d, evicted %d", doc.Store.Retention, doc.Store.Evicted)
	}
	fmt.Println()
	fmt.Printf("queue: %d queued, %d dispatched; workers hold %d queued, %d running of %d slots\n",
		doc.Queue.Queued, doc.Queue.Dispatched, doc.Queue.WorkerQueued, doc.Queue.WorkerRunning, doc.Queue.WorkerSlots)
	names := make([]string, 0, len(doc.Counters))
	for name := range doc.Counters {
		if strings.HasPrefix(name, "cluster.") {
			names = append(names, name)
		}
	}
	if len(names) > 0 {
		sort.Strings(names)
		fmt.Println("\ncluster counters (all nodes merged):")
		for _, name := range names {
			fmt.Printf("  %-36s %d\n", name, doc.Counters[name])
		}
	}
	return nil
}

// cliSpanNode mirrors telemetry.SpanNode for rendering.
type cliSpanNode struct {
	Name    string `json:"name"`
	SpanID  string `json:"span_id"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Attrs   []struct {
		Key   string `json:"k"`
		Value any    `json:"v"`
	} `json:"attrs"`
	Children []*cliSpanNode `json:"children"`
}

// clusterTrace renders one federated trace as an indented span tree.
func clusterTrace(client *http.Client, base, id string) error {
	var doc struct {
		TraceID string         `json:"trace_id"`
		Spans   int            `json:"spans"`
		Nodes   []string       `json:"nodes"`
		Roots   []*cliSpanNode `json:"roots"`
	}
	if err := clusterGet(client, base, "/v1/traces/"+id, &doc); err != nil {
		return err
	}
	fmt.Printf("trace %s: %d spans across %s\n", doc.TraceID, doc.Spans, strings.Join(doc.Nodes, ", "))
	for _, root := range doc.Roots {
		printSpanNode(root, 0)
	}
	return nil
}

// printSpanNode renders one span and its subtree, two spaces per level.
func printSpanNode(n *cliSpanNode, depth int) {
	if n == nil {
		return
	}
	dur := "open"
	if n.DurUS >= 0 {
		dur = (time.Duration(n.DurUS) * time.Microsecond).String()
	}
	var attrs []string
	for _, a := range n.Attrs {
		attrs = append(attrs, fmt.Sprintf("%s=%v", a.Key, a.Value))
	}
	line := fmt.Sprintf("%s%s  %s", strings.Repeat("  ", depth+1), n.Name, dur)
	if len(attrs) > 0 {
		line += "  {" + strings.Join(attrs, " ") + "}"
	}
	fmt.Println(line)
	for _, c := range n.Children {
		printSpanNode(c, depth+1)
	}
}
