// Command autofeat runs transitive feature discovery over a directory of
// CSV tables: it builds the Dataset Relation Graph (from a constraints
// file when present, otherwise with the built-in schema matcher), ranks
// join paths, trains the chosen model on the top-k paths and reports the
// winner.
//
// Usage:
//
//	autofeat -dir lake/credit -base credit -label target
//	autofeat -dir lake/credit -base credit -label target -model xgboost -tau 0.7 -kappa 10
//	autofeat -dir lake/credit -base credit -label target -dot   # print the DRG and exit
//	autofeat -dir lake/credit -base credit -label target -trace-out t.json -metrics-out m.json
//	autofeat -dir lake/credit -base credit -label target -serve localhost:6060 -manifest-out run_manifest.json
//	autofeat explain path-001 -manifest run_manifest.json
//	autofeat pack lake/credit                          # convert a CSV lake to columnar in place
//	autofeat serve -addr localhost:8080 -jobs 4        # long-lived discovery service
//	autofeat cluster status -coordinator http://localhost:8080
//	autofeat cluster trace 4bf92f3577b34da6a3ce929d0e0e4736 -coordinator http://localhost:8080
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"autofeat"
	"autofeat/internal/serve"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "explain" {
		if err := runExplain(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "autofeat explain: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		if err := runServe(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "autofeat serve: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "cluster" {
		if err := runCluster(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "autofeat cluster: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "pack" {
		if err := runPack(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "autofeat pack: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var (
		dir         = flag.String("dir", "", "directory of CSV tables (required)")
		base        = flag.String("base", "", "base table name (required)")
		label       = flag.String("label", "target", "label column in the base table")
		model       = flag.String("model", "lightgbm", "model: lightgbm|xgboost|randomforest|extratrees|knn|lr_l1")
		tau         = flag.Float64("tau", 0.65, "data-quality pruning threshold")
		kappa       = flag.Int("kappa", 15, "max features selected per table")
		topK        = flag.Int("topk", 4, "ranked paths to train models on")
		depth       = flag.Int("depth", 3, "max join path length")
		threshold   = flag.Float64("threshold", 0.55, "matcher threshold when no constraints file exists")
		seed        = flag.Int64("seed", 1, "random seed")
		workers     = flag.Int("workers", 0, "parallel join-evaluation workers (0 = GOMAXPROCS, 1 = sequential)")
		timeout     = flag.Duration("timeout", 0, "wall-clock budget for the run (0 = none); on expiry the best partial ranking is returned")
		budgetJ     = flag.Int("budget-joins", 0, "max joins to evaluate (0 = unlimited); exhaustion yields a partial ranking")
		budgetR     = flag.Int64("budget-rows", 0, "max cumulative joined rows to materialise during discovery (0 = unlimited)")
		dot         = flag.Bool("dot", false, "print the DRG in Graphviz DOT format and exit")
		paths       = flag.Int("paths", 5, "ranked paths to print")
		beam        = flag.Int("beam", 0, "beam width (0 = exhaustive BFS)")
		sketched    = flag.Bool("sketched", false, "use MinHash-sketched discovery (large lakes)")
		autotune    = flag.Bool("autotune", false, "grid-search tau and kappa before the final run")
		traceOut    = flag.String("trace-out", "", "write the span trace as JSON to this file")
		metricsOut  = flag.String("metrics-out", "", "write counters/histograms/pruning breakdown as JSON to this file")
		manifestOut = flag.String("manifest-out", "", "write the run provenance manifest (run_manifest.json) to this file")
		serveAddr   = flag.String("serve", "", "serve live introspection (/metrics, /healthz, /runs/{id}, /debug/pprof/) on this address")
		pprofAddr   = flag.String("pprof", "", "alias for -serve (kept for compatibility)")
		logLevel    = flag.String("log-level", "", "structured log level: debug|info|warn|error (empty = off)")
		logFormat   = flag.String("log-format", "text", "structured log format: text|json")
	)
	flag.Parse()
	if *dir == "" || *base == "" {
		fmt.Fprintln(os.Stderr, "autofeat: -dir and -base are required")
		flag.Usage()
		os.Exit(2)
	}
	if *serveAddr == "" {
		*serveAddr = *pprofAddr
	}
	opts := runOpts{
		dir: *dir, base: *base, label: *label, model: *model,
		tau: *tau, kappa: *kappa, topK: *topK, depth: *depth,
		threshold: *threshold, seed: *seed, workers: *workers, dot: *dot, paths: *paths,
		beam: *beam, sketched: *sketched, autotune: *autotune,
		traceOut: *traceOut, metricsOut: *metricsOut, manifestOut: *manifestOut,
		serveAddr: *serveAddr, logLevel: *logLevel, logFormat: *logFormat,
		timeout: *timeout, budgetJoins: *budgetJ, budgetRows: *budgetR,
	}
	if err := run(opts); err != nil {
		fmt.Fprintf(os.Stderr, "autofeat: %v\n", err)
		os.Exit(1)
	}
}

// runExplain implements the `autofeat explain <path-id>` subcommand: it
// loads a provenance manifest and pretty-prints one path's lineage.
func runExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	manifest := fs.String("manifest", "run_manifest.json", "provenance manifest to read")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: autofeat explain <path-id> [-manifest run_manifest.json]")
		fmt.Fprintln(os.Stderr, "  <path-id> is \"path-NNN\", a bare rank number, or \"base\"")
		fs.PrintDefaults()
	}
	// Accept flags on either side of the path-id (`explain path-001
	// -manifest f.json` reads naturally; flag.Parse stops at the first
	// positional, so re-parse whatever followed it).
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) >= 2 {
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		rest = append(rest[:1], fs.Args()...)
	}
	if len(rest) != 1 {
		fs.Usage()
		os.Exit(2)
	}
	m, err := autofeat.ReadManifestFile(*manifest)
	if err != nil {
		return err
	}
	return m.Explain(os.Stdout, rest[0])
}

// runServe implements the `autofeat serve` subcommand: the long-lived
// discovery service. Lakes are registered over HTTP (POST /v1/lakes) or
// pre-registered with repeated -lake flags; discoveries are submitted
// with POST /v1/discoveries and observed via GET /v1/discoveries/{id},
// /runs/{id} and /metrics, all on one listener. SIGTERM/SIGINT drains:
// new submissions are rejected while in-flight jobs run to completion.
//
// With -role the same binary becomes one node of a cluster:
// -role=coordinator routes /v1 requests to workers by rendezvous
// hashing and keeps the replicated job store; -role=worker runs the
// ordinary single-node service plus a cluster agent that heartbeats to
// -coordinator and stores replicated job-store snapshots.
func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr         = fs.String("addr", "localhost:8080", "listen address")
		jobs         = fs.Int("jobs", 0, "max concurrently running discovery jobs (0 = GOMAXPROCS)")
		queue        = fs.Int("queue", 0, "max queued jobs before submissions get 429 (0 = 2x jobs)")
		jobTimeout   = fs.Duration("job-timeout", 0, "default per-job wall-clock budget (0 = unbounded)")
		drainWait    = fs.Duration("drain-timeout", 30*time.Second, "max wait for in-flight jobs on shutdown")
		enablePprof  = fs.Bool("pprof", true, "mount /debug/pprof/ handlers")
		logLevel     = fs.String("log-level", "info", "structured log level: debug|info|warn|error (empty = off)")
		logFormat    = fs.String("log-format", "text", "structured log format: text|json")
		traceStore   = fs.Int("trace-store", 256, "traces retained for GET /v1/traces (0 = default 256, -1 = disable tracing endpoints)")
		flightSize   = fs.Int("flight", 256, "recent spans kept in the /debug/flight ring (0 = default 256, -1 = disable)")
		maxSpans     = fs.Int("max-spans", 65536, "spans retained in the collector snapshot before dropping (0 = unbounded)")
		role         = fs.String("role", "", "cluster role: coordinator|worker (empty = single-node)")
		peers        = fs.String("peers", "", "coordinator: comma-separated worker base URLs to seed membership from")
		nodeID       = fs.String("node-id", "", "worker: stable worker identity (default: the listen address)")
		advertise    = fs.String("advertise", "", "worker: base URL other nodes dial to reach this worker (default http://<addr>)")
		coordAddr    = fs.String("coordinator", "", "worker: coordinator base URL to heartbeat to")
		storePath    = fs.String("store", "", "coordinator: job-store JSON file; worker: replica snapshot file (empty = in-memory)")
		heartbeat    = fs.Duration("heartbeat", 2*time.Second, "worker: heartbeat interval")
		hbTimeout    = fs.Duration("heartbeat-timeout", 10*time.Second, "coordinator: silence after which a worker is dead and its jobs reroute")
		tenantQuota  = fs.Int("tenant-quota", 0, "coordinator: max in-flight jobs per tenant (X-Tenant header; 0 = unlimited)")
		storeRetain  = fs.Int("store-retain", 0, "coordinator: max terminal job documents retained in the store before FIFO eviction (0 = unlimited)")
		preloadLakes multiFlag
	)
	fs.Var(&preloadLakes, "lake", "pre-register a lake as id=dir (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *role {
	case "", "worker", "coordinator":
	default:
		return fmt.Errorf("bad -role %q (want coordinator or worker)", *role)
	}

	cfg := serve.Config{
		Workers:        *jobs,
		QueueDepth:     *queue,
		DefaultTimeout: *jobTimeout,
		Collector:      autofeat.NewTelemetry(),
	}
	if *logLevel != "" {
		level, on, err := autofeat.ParseLogLevel(*logLevel)
		if err != nil {
			return err
		}
		if on {
			cfg.Logger = autofeat.NewLogger(os.Stderr, level, *logFormat)
		}
	}
	// A long-lived service must bound span retention: cap the collector's
	// own snapshot buffer, and wire the trace store and flight recorder
	// that back /v1/traces and /debug/flight.
	cfg.Collector.Trace().SetMaxSpans(*maxSpans)
	icfg := autofeat.IntrospectionConfig{
		Addr:        *addr,
		Collector:   cfg.Collector,
		EnablePprof: *enablePprof,
	}
	// The coordinator mounts its own federated /v1/traces routes, so its
	// trace store hangs off the cluster config instead of the obsrv server
	// (mounting both would double-register the patterns).
	var traces *autofeat.TraceStore
	if *traceStore >= 0 {
		traces = autofeat.NewTraceStore(*traceStore, 0)
		cfg.Collector.ObserveSpans(traces)
		if *role != "coordinator" {
			icfg.Traces = traces
		}
	}
	if *flightSize >= 0 {
		icfg.Flight = autofeat.NewFlightRecorder(*flightSize)
		cfg.Collector.ObserveSpans(icfg.Flight)
	}
	srv := autofeat.NewIntrospectionServer(icfg)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *role == "coordinator" {
		store, err := serve.NewJobStore(*storePath)
		if err != nil {
			return err
		}
		coord := serve.NewCoordinator(serve.ClusterConfig{
			HeartbeatTimeout: *hbTimeout,
			TenantQuota:      *tenantQuota,
			StoreRetention:   *storeRetain,
			Collector:        cfg.Collector,
			Logger:           cfg.Logger,
			Traces:           traces,
		}, store)
		coord.Mount(srv)
		// Pre-register lakes in the store only; workers open them lazily
		// on first touch.
		for _, spec := range preloadLakes {
			id, dir, ok := strings.Cut(spec, "=")
			if !ok {
				return fmt.Errorf("bad -lake %q (want id=dir)", spec)
			}
			l := store.AddLake(serve.StoredLake{ID: id, Dir: dir})
			fmt.Printf("lake %q recorded from %s\n", l.ID, dir)
		}
		if *peers != "" {
			coord.SeedWorkers(strings.Split(*peers, ","))
		}
		go coord.Run(ctx)
		errCh := make(chan error, 1)
		go func() { errCh <- srv.ListenAndServe() }()
		fmt.Printf("cluster coordinator listening on http://%s/ (v1/lakes, v1/discoveries, v1/traces, v1/cluster/{status,metrics,events}, cluster/v1/workers, metrics, healthz)\n", *addr)
		select {
		case err := <-errCh:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				return err
			}
			return nil
		case <-ctx.Done():
		}
		fmt.Fprintln(os.Stderr, "autofeat serve: signal received, draining coordinator")
		coord.Drain()
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		return srv.Shutdown(drainCtx)
	}

	svc := serve.New(cfg)
	svc.Mount(srv)
	if *role == "worker" {
		id := *nodeID
		if id == "" {
			id = *addr
		}
		adv := *advertise
		if adv == "" {
			adv = "http://" + *addr
		}
		agent := serve.NewAgent(serve.AgentConfig{
			ID:                id,
			Addr:              adv,
			Coordinator:       *coordAddr,
			HeartbeatInterval: *heartbeat,
			ReplicaPath:       *storePath,
			Collector:         cfg.Collector,
			Logger:            cfg.Logger,
			Traces:            icfg.Traces,
		}, svc)
		agent.Mount(srv)
		go agent.Run(ctx)
	}
	for _, spec := range preloadLakes {
		id, dir, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -lake %q (want id=dir)", spec)
		}
		l, err := autofeat.OpenLake(dir)
		if err != nil {
			return err
		}
		svc.AddLake(id, l)
		fmt.Printf("lake %q registered from %s (%d tables)\n", id, dir, len(l.Tables()))
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("discovery service listening on http://%s/ (v1/lakes, v1/discoveries, v1/traces, runs, metrics, healthz)\n", *addr)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "autofeat serve: signal received, draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := svc.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "autofeat serve: %v\n", err)
	}
	return srv.Shutdown(drainCtx)
}

// multiFlag collects repeated string flag values.
type multiFlag []string

// String renders the collected values for -help output.
func (m *multiFlag) String() string { return strings.Join(*m, ",") }

// Set appends one flag occurrence.
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

// runOpts bundles the CLI flags.
type runOpts struct {
	dir, base, label, model string
	tau                     float64
	kappa, topK, depth      int
	threshold               float64
	seed                    int64
	workers                 int
	dot                     bool
	paths                   int
	beam                    int
	sketched                bool
	autotune                bool
	traceOut, metricsOut    string
	manifestOut             string
	serveAddr               string
	logLevel, logFormat     string
	timeout                 time.Duration
	budgetJoins             int
	budgetRows              int64
}

func run(o runOpts) error {
	factory, err := autofeat.ModelByName(o.model)
	if err != nil {
		return err
	}
	opts, setting, err := lakeOptions(o.dir, o.threshold, o.sketched)
	if err != nil {
		return err
	}
	l, err := autofeat.OpenLake(o.dir, opts...)
	if err != nil {
		return err
	}
	g, err := l.DRG()
	if err != nil {
		return err
	}
	fmt.Printf("DRG (%s setting): %d tables, %d edges\n", setting, g.NumNodes(), g.NumEdges())
	if ix := l.IndexStats(); ix.Built {
		fmt.Printf("join index: %d columns in %d LSH buckets (%d bands x %d rows)\n",
			ix.Columns, ix.Slot+ix.Anchor+ix.Name, ix.Bands, ix.Rows)
	}
	if o.dot {
		fmt.Print(g.DOT())
		return nil
	}

	cfg := autofeat.DefaultConfig()
	cfg.Tau = o.tau
	cfg.Kappa = o.kappa
	cfg.TopK = o.topK
	cfg.MaxDepth = o.depth
	cfg.Seed = o.seed
	cfg.Workers = o.workers
	cfg.BeamWidth = o.beam
	cfg.Timeout = o.timeout
	cfg.MaxEvalJoins = o.budgetJoins
	cfg.MaxJoinedRows = o.budgetRows
	base, label, model, nPaths := o.base, o.label, o.model, o.paths

	if o.traceOut != "" || o.metricsOut != "" || o.serveAddr != "" {
		cfg.Telemetry = autofeat.NewTelemetry()
	}
	if o.logLevel != "" {
		level, on, err := autofeat.ParseLogLevel(o.logLevel)
		if err != nil {
			return err
		}
		if on {
			cfg.Logger = autofeat.NewLogger(os.Stderr, level, o.logFormat)
		}
	}
	// The introspection server starts before any heavy work (including the
	// autotune grid search) so /metrics and /debug/pprof/ are reachable for
	// the whole process lifetime; /runs/{id} tracks the final run.
	if o.serveAddr != "" {
		cfg.Progress = autofeat.NewRunProgress(base)
		srv := autofeat.NewIntrospectionServer(autofeat.IntrospectionConfig{
			Addr:        o.serveAddr,
			Collector:   cfg.Telemetry,
			EnablePprof: true,
		})
		srv.Register(cfg.Progress)
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "autofeat: introspection server: %v\n", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("introspection listening on http://%s/ (metrics, healthz, runs/%s, debug/pprof)\n", o.serveAddr, base)
	}

	if o.autotune {
		out, err := autofeat.AutoTune(g, base, label, cfg, factory, nil, nil)
		if err != nil {
			return err
		}
		fmt.Printf("autotune: best tau=%.2f kappa=%d (accuracy %.4f over %d configs in %v)\n",
			out.Best.Tau, out.Best.Kappa, out.Best.Accuracy, len(out.Tried), out.Elapsed.Round(time.Millisecond))
		cfg.Tau = out.Best.Tau
		cfg.Kappa = out.Best.Kappa
	}

	out, err := l.Discover(context.Background(), autofeat.Request{
		Base: base, Label: label, Model: factory.Name, Config: &cfg,
	})
	if err != nil {
		return err
	}
	res := out.Augment

	if res.Partial {
		fmt.Printf("\nPARTIAL RESULT (%s): the search stopped early; the ranking covers only what was reached\n", res.PartialReason)
	}
	pr := res.Ranking.Prune
	fmt.Printf("\nranked join paths (top %d of %d, explored %d, pruned %d):\n",
		nPaths, len(res.Ranking.Paths), res.Ranking.PathsExplored, res.Ranking.PathsPruned)
	fmt.Printf("pruning: similarity %d, join_failed %d, quality_below_tau %d, beam_evicted %d, max_paths_cap %d, budget_exhausted %d, cancelled %d\n",
		pr.Similarity, pr.JoinFailed, pr.QualityBelowTau, pr.BeamEvicted, pr.MaxPathsCap, pr.BudgetExhausted, pr.Cancelled)
	for i, p := range res.Ranking.TopK(nPaths) {
		fmt.Printf("  %d. %s\n", i+1, p)
	}
	fmt.Printf("\nmodel evaluations (%s):\n", model)
	for _, pe := range res.Evaluated {
		kind := "path"
		if len(pe.Path.Edges) == 0 {
			kind = "base"
		}
		fmt.Printf("  %-4s acc=%.4f auc=%.4f  %s\n", kind, pe.Eval.Accuracy, pe.Eval.AUC, pe.Path)
	}
	fmt.Printf("\nbest: %s\n", res.Best.Path)
	fmt.Printf("accuracy %.4f (AUC %.4f) with %d features\n",
		res.Best.Eval.Accuracy, res.Best.Eval.AUC, len(res.Features))
	fmt.Printf("feature-selection time %v, total time %v\n", res.SelectionTime, res.TotalTime)

	if cfg.Telemetry != nil {
		snap := cfg.Telemetry.Snapshot()
		if o.traceOut != "" {
			if err := autofeat.WriteTraceFile(o.traceOut, snap); err != nil {
				return err
			}
			fmt.Printf("trace written to %s (%d spans)\n", o.traceOut, len(snap.Spans))
		}
		if o.metricsOut != "" {
			if err := autofeat.WriteMetricsFile(o.metricsOut, snap); err != nil {
				return err
			}
			fmt.Printf("metrics written to %s\n", o.metricsOut)
		}
	}
	if o.manifestOut != "" {
		m := out.Manifest
		if err := autofeat.WriteManifestFile(o.manifestOut, m); err != nil {
			return err
		}
		fmt.Printf("manifest written to %s (%d paths); inspect with: autofeat explain path-001 -manifest %s\n",
			o.manifestOut, len(m.Paths), o.manifestOut)
	}
	return nil
}

// lakeOptions prefers a constraints.txt (benchmark setting); without one
// it falls back to schema matching (data lake setting), exact or
// sketched.
func lakeOptions(dir string, threshold float64, sketched bool) ([]autofeat.LakeOption, string, error) {
	kfks, err := readConstraints(filepath.Join(dir, "constraints.txt"))
	switch {
	case err == nil && len(kfks) > 0:
		return []autofeat.LakeOption{autofeat.WithKFKs(kfks)}, "benchmark", nil
	case err != nil && !os.IsNotExist(err):
		return nil, "", err
	case sketched:
		return []autofeat.LakeOption{
			autofeat.WithMatcher(autofeat.MatcherSketched),
			autofeat.WithThreshold(threshold),
		}, "lake (sketched)", nil
	default:
		return []autofeat.LakeOption{autofeat.WithThreshold(threshold)}, "lake", nil
	}
}

// readConstraints parses lines of the form parent.col=child.col.
func readConstraints(path string) ([]autofeat.KFK, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []autofeat.KFK
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, "=", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad constraint line %q", line)
		}
		p := strings.SplitN(parts[0], ".", 2)
		c := strings.SplitN(parts[1], ".", 2)
		if len(p) != 2 || len(c) != 2 {
			return nil, fmt.Errorf("bad constraint line %q", line)
		}
		out = append(out, autofeat.KFK{
			ParentTable: p[0], ParentCol: p[1],
			ChildTable: c[0], ChildCol: c[1],
		})
	}
	return out, sc.Err()
}
