// Command lakegen materialises the synthetic evaluation data lakes as CSV
// directories, so the other tools (and external users) can work from
// files exactly as they would with a real lake.
//
// Usage:
//
//	lakegen -list
//	lakegen -dataset credit -out ./lake/credit
//	lakegen -dataset credit -out ./lake/credit -format columnar
//	lakegen -dataset all -out ./lake
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"autofeat/internal/datagen"
	"autofeat/internal/frame"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "dataset name from Table II, or 'all'")
		out     = flag.String("out", "lake", "output directory")
		list    = flag.Bool("list", false, "list available datasets and exit")
		quick   = flag.Bool("quick", false, "generate the reduced quick-scale variants")
		format  = flag.String("format", "csv", "table file format: csv or columnar")
	)
	flag.Parse()

	specs := datagen.PaperSpecs()
	if *quick {
		specs = datagen.QuickSpecs()
	}
	if *list {
		fmt.Println("available datasets (rows / joinable tables / features):")
		for _, s := range specs {
			fmt.Printf("  %-12s %6d rows  %2d tables  %3d features (paper: %d rows, %d features)\n",
				s.Name, s.Rows, s.JoinableTables, s.TotalFeatures, s.PaperRows, s.PaperFeatures)
		}
		return
	}
	if *dataset == "" {
		fmt.Fprintln(os.Stderr, "lakegen: -dataset is required (or -list)")
		os.Exit(2)
	}

	var chosen []datagen.Spec
	if *dataset == "all" {
		chosen = specs
	} else {
		for _, s := range specs {
			if s.Name == *dataset {
				chosen = []datagen.Spec{s}
			}
		}
		if len(chosen) == 0 {
			fmt.Fprintf(os.Stderr, "lakegen: unknown dataset %q (try -list)\n", *dataset)
			os.Exit(2)
		}
	}

	for _, spec := range chosen {
		dir := *out
		if *dataset == "all" {
			dir = filepath.Join(*out, spec.Name)
		}
		if err := writeDataset(spec, dir, *format); err != nil {
			fmt.Fprintf(os.Stderr, "lakegen: %s: %v\n", spec.Name, err)
			os.Exit(1)
		}
	}
}

func writeDataset(spec datagen.Spec, dir, format string) error {
	d, err := datagen.Generate(spec)
	if err != nil {
		return err
	}
	switch format {
	case "csv":
		for _, t := range d.Tables {
			if err := t.WriteCSVFile(filepath.Join(dir, t.Name()+".csv")); err != nil {
				return err
			}
		}
	case "columnar":
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		w := frame.NewWriter(dir)
		for _, t := range d.Tables {
			if _, err := w.Put(t); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown -format %q (csv or columnar)", format)
	}
	// Ground-truth KFK constraints, for the benchmark setting.
	kfk, err := os.Create(filepath.Join(dir, "constraints.txt"))
	if err != nil {
		return err
	}
	defer kfk.Close()
	for _, k := range d.KFKs {
		fmt.Fprintf(kfk, "%s.%s=%s.%s\n", k.ParentTable, k.ParentCol, k.ChildTable, k.ChildCol)
	}
	fmt.Printf("wrote %s: %d tables, base %q, label %q, spurious table %q\n",
		dir, len(d.Tables), d.Base.Name(), d.Label, d.SpuriousTable)
	return nil
}
