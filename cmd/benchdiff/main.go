// Command benchdiff compares two benchmark baselines produced by
// `make bench` (BENCH_parallel.json, BENCH_serve.json, BENCH_traced.json,
// BENCH_index.json) and fails when wall-clock time regressed. It is the CI-friendly half of the
// performance workflow: regenerate a candidate baseline, diff it against
// the committed one, and let the exit code gate the change.
//
// Usage:
//
//	benchdiff [-threshold pct] OLD.json NEW.json
//
// Rows are paired by (mode, workers): the worker-scaling baseline keys
// rows by worker count alone (mode empty), the serve baseline by
// cold/warm mode, the index baseline by build mode and table count. Exit status is 0 when no paired row slowed down by
// more than -threshold percent, 1 on regression, 2 on usage or read
// errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

// benchEntry is one row of a baseline file. Mode is empty in the
// worker-scaling baseline and "cold"/"warm" in the serve baseline.
type benchEntry struct {
	Mode       string  `json:"mode,omitempty"`
	Workers    int     `json:"workers"`
	Iterations int     `json:"iterations"`
	NsPerOp    int64   `json:"ns_per_op"`
	SpeedupVs1 float64 `json:"speedup_vs_1"`
}

// rowKey pairs rows across the two files.
type rowKey struct {
	mode    string
	workers int
}

// benchDoc mirrors the BENCH_parallel.json layout written by
// TestWriteParallelBench.
type benchDoc struct {
	Benchmark  string       `json:"benchmark"`
	Dataset    string       `json:"dataset"`
	Rows       int          `json:"rows"`
	Tables     int          `json:"joinable_tables"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Results    []benchEntry `json:"results"`
}

// rowDiff is the comparison of one row across the two files.
type rowDiff struct {
	Mode       string
	Workers    int
	OldNs      int64
	NewNs      int64
	DeltaPct   float64 // positive = slower
	Regression bool
}

// label renders the row key for the report table.
func (d rowDiff) label() string {
	if d.Mode != "" {
		return fmt.Sprintf("%s/w%d", d.Mode, d.Workers)
	}
	return fmt.Sprintf("%d", d.Workers)
}

func loadDoc(path string) (*benchDoc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Results) == 0 {
		return nil, fmt.Errorf("%s: no results", path)
	}
	return &doc, nil
}

// diff pairs the two baselines' rows by (mode, workers) and flags every
// row whose ns/op grew by more than thresholdPct percent. Rows present
// in only one file are skipped (they have nothing to compare against).
func diff(oldDoc, newDoc *benchDoc, thresholdPct float64) []rowDiff {
	oldBy := map[rowKey]benchEntry{}
	for _, e := range oldDoc.Results {
		oldBy[rowKey{e.Mode, e.Workers}] = e
	}
	var out []rowDiff
	for _, n := range newDoc.Results {
		o, ok := oldBy[rowKey{n.Mode, n.Workers}]
		if !ok || o.NsPerOp <= 0 {
			continue
		}
		pct := (float64(n.NsPerOp) - float64(o.NsPerOp)) / float64(o.NsPerOp) * 100
		out = append(out, rowDiff{
			Mode:       n.Mode,
			Workers:    n.Workers,
			OldNs:      o.NsPerOp,
			NewNs:      n.NsPerOp,
			DeltaPct:   pct,
			Regression: pct > thresholdPct,
		})
	}
	return out
}

// report renders the comparison table and returns whether any row
// regressed.
func report(w io.Writer, oldDoc, newDoc *benchDoc, diffs []rowDiff, thresholdPct float64) bool {
	if oldDoc.Benchmark != newDoc.Benchmark || oldDoc.Dataset != newDoc.Dataset {
		fmt.Fprintf(w, "warning: comparing %s/%s against %s/%s\n",
			oldDoc.Benchmark, oldDoc.Dataset, newDoc.Benchmark, newDoc.Dataset)
	}
	if oldDoc.GOMAXPROCS != newDoc.GOMAXPROCS {
		fmt.Fprintf(w, "warning: GOMAXPROCS differs (old %d, new %d); timings are not directly comparable\n",
			oldDoc.GOMAXPROCS, newDoc.GOMAXPROCS)
	}
	fmt.Fprintf(w, "%-10s %14s %14s %9s\n", "row", "old ns/op", "new ns/op", "delta")
	regressed := false
	for _, d := range diffs {
		mark := ""
		if d.Regression {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(w, "%-10s %14d %14d %+8.1f%%%s\n", d.label(), d.OldNs, d.NewNs, d.DeltaPct, mark)
	}
	if regressed {
		fmt.Fprintf(w, "FAIL: wall-clock regression beyond %.1f%% threshold\n", thresholdPct)
	} else {
		fmt.Fprintf(w, "ok: within %.1f%% threshold\n", thresholdPct)
	}
	return regressed
}

func main() {
	threshold := flag.Float64("threshold", 5, "max tolerated ns/op increase in percent before failing")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchdiff [-threshold pct] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldDoc, err := loadDoc(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	newDoc, err := loadDoc(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	diffs := diff(oldDoc, newDoc, *threshold)
	if len(diffs) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: no comparable rows between the two files")
		os.Exit(2)
	}
	if report(os.Stdout, oldDoc, newDoc, diffs, *threshold) {
		os.Exit(1)
	}
}
