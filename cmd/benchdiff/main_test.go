package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func doc(ns ...int64) *benchDoc {
	d := &benchDoc{Benchmark: "BenchmarkMicroDiscoveryWorkers", Dataset: "wide", GOMAXPROCS: 4}
	workers := []int{1, 4, 8}
	for i, n := range ns {
		d.Results = append(d.Results, benchEntry{Workers: workers[i], Iterations: 10, NsPerOp: n, SpeedupVs1: 1})
	}
	return d
}

func TestDiffFlagsRegression(t *testing.T) {
	oldDoc := doc(1000, 500, 400)
	newDoc := doc(1040, 600, 390) // +4%, +20%, -2.5%
	diffs := diff(oldDoc, newDoc, 5)
	if len(diffs) != 3 {
		t.Fatalf("diffs = %d, want 3", len(diffs))
	}
	wantReg := []bool{false, true, false}
	for i, d := range diffs {
		if d.Regression != wantReg[i] {
			t.Errorf("workers=%d: regression=%v, want %v (delta %.1f%%)", d.Workers, d.Regression, wantReg[i], d.DeltaPct)
		}
	}
}

// serveDoc builds a cold/warm (mode-keyed) baseline like BENCH_serve.json.
func serveDoc(coldNs, warmNs int64) *benchDoc {
	return &benchDoc{
		Benchmark: "BenchmarkServeColdWarm", Dataset: "smol", GOMAXPROCS: 4,
		Results: []benchEntry{
			{Mode: "cold", Workers: 1, Iterations: 5, NsPerOp: coldNs, SpeedupVs1: 1},
			{Mode: "warm", Workers: 1, Iterations: 5, NsPerOp: warmNs, SpeedupVs1: float64(coldNs) / float64(warmNs)},
		},
	}
}

func TestDiffPairsByMode(t *testing.T) {
	oldDoc := serveDoc(1000, 400)
	newDoc := serveDoc(1010, 600) // warm +50%: regression
	diffs := diff(oldDoc, newDoc, 5)
	if len(diffs) != 2 {
		t.Fatalf("diffs = %d, want 2", len(diffs))
	}
	byMode := map[string]rowDiff{}
	for _, d := range diffs {
		byMode[d.Mode] = d
	}
	if byMode["cold"].Regression {
		t.Errorf("cold row flagged: %+v", byMode["cold"])
	}
	if !byMode["warm"].Regression {
		t.Errorf("warm row not flagged: %+v", byMode["warm"])
	}
	var buf bytes.Buffer
	report(&buf, oldDoc, newDoc, diffs, 5)
	if !strings.Contains(buf.String(), "warm/w1") {
		t.Errorf("report missing mode label:\n%s", buf.String())
	}
	// A mode-keyed row never pairs with a workers-only row.
	if mixed := diff(doc(1000), serveDoc(1000, 400), 5); len(mixed) != 0 {
		t.Errorf("mode row paired with workers-only row: %+v", mixed)
	}
}

func TestDiffSkipsUnpairedRows(t *testing.T) {
	oldDoc := doc(1000)       // workers=1 only
	newDoc := doc(1000, 2000) // workers=1 and 4
	diffs := diff(oldDoc, newDoc, 5)
	if len(diffs) != 1 || diffs[0].Workers != 1 {
		t.Fatalf("diffs = %+v, want only workers=1", diffs)
	}
}

func TestReportOutput(t *testing.T) {
	oldDoc := doc(1000, 500)
	newDoc := doc(1200, 490)
	newDoc.GOMAXPROCS = 8
	var buf bytes.Buffer
	regressed := report(&buf, oldDoc, newDoc, diff(oldDoc, newDoc, 5), 5)
	out := buf.String()
	if !regressed {
		t.Error("expected regression")
	}
	for _, want := range []string{"GOMAXPROCS differs", "REGRESSION", "+20.0%", "-2.0%", "FAIL"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportOK(t *testing.T) {
	oldDoc := doc(1000, 500)
	newDoc := doc(1010, 505)
	var buf bytes.Buffer
	if report(&buf, oldDoc, newDoc, diff(oldDoc, newDoc, 5), 5) {
		t.Errorf("unexpected regression:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "ok: within") {
		t.Errorf("missing ok line:\n%s", buf.String())
	}
}

func TestLoadDocErrors(t *testing.T) {
	if _, err := loadDoc(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file: want error")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"benchmark":"x","results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadDoc(empty); err == nil {
		t.Error("empty results: want error")
	}
}

// TestLoadCommittedBaseline keeps benchdiff honest against the real file
// formats: each committed baseline must load and self-diff clean.
func TestLoadCommittedBaseline(t *testing.T) {
	for _, path := range []string{"../../BENCH_parallel.json", "../../BENCH_serve.json"} {
		d, err := loadDoc(path)
		if err != nil {
			t.Fatal(err)
		}
		diffs := diff(d, d, 0)
		if len(diffs) != len(d.Results) {
			t.Fatalf("%s: self-diff rows %d != results %d", path, len(diffs), len(d.Results))
		}
		for _, r := range diffs {
			if r.Regression || r.DeltaPct != 0 {
				t.Errorf("%s: self-diff not clean: %+v", path, r)
			}
		}
	}
}
