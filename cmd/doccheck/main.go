// Command doccheck is the documentation gate run by `make docs-check`:
// it audits Go doc comments and markdown cross-links and exits non-zero
// on any finding, keeping the docs from drifting as the code grows.
//
// Two checks run:
//
//   - Godoc audit over the package directories given as arguments
//     (test files excluded): every exported function, method and type
//     must carry a doc comment that starts with the identifier's name,
//     and every exported const or var must be documented either on its
//     own spec or on its declaration group.
//
//   - Markdown link audit over the files and directories named by -md:
//     every relative link target (outside code fences) must exist on
//     disk; http(s), mailto and pure-anchor links are skipped.
//
//   - Route-sync audit (-api + -routes): the HTTP routes registered in
//     the named package directories (string-literal first arguments of
//     Handle/HandleFunc calls) must each appear as a "### METHOD /path"
//     heading in the API reference, and every such heading must
//     correspond to a registered route — two-way, so the reference can
//     never drift from the mux.
//
//   - Format-constant audit (-format PKGDIR=MDFILE): the exported
//     Format* constants of PKGDIR (the on-disk columnar format's magic,
//     version and extension) must appear verbatim as "Name = value"
//     lines inside the file-format section of MDFILE, and every such
//     line in the section must match a real constant — two-way, so the
//     format specification can never drift from the code that writes
//     the bytes.
//
// Usage:
//
//	doccheck -md README.md,DESIGN.md,docs -api docs/API.md -routes internal/obsrv,internal/serve -format internal/frame=DESIGN.md internal/core internal/telemetry .
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	md := flag.String("md", "", "comma-separated markdown files or directories to link-check")
	api := flag.String("api", "", "API reference markdown to route-check against -routes")
	routes := flag.String("routes", "", "comma-separated package directories whose Handle/HandleFunc registrations must match -api")
	format := flag.String("format", "", "PKGDIR=MDFILE: audit PKGDIR's Format* constants against MDFILE's file-format section")
	flag.Parse()
	if (*api == "") != (*routes == "") {
		fmt.Fprintln(os.Stderr, "doccheck: -api and -routes must be given together")
		os.Exit(2)
	}

	var findings []string
	for _, dir := range flag.Args() {
		fs, err := auditPackageDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	if *md != "" {
		for _, root := range strings.Split(*md, ",") {
			fs, err := auditMarkdown(strings.TrimSpace(root))
			if err != nil {
				fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
				os.Exit(2)
			}
			findings = append(findings, fs...)
		}
	}
	if *api != "" {
		fs, err := auditRoutes(*api, strings.Split(*routes, ","))
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	if *format != "" {
		pkgDir, mdFile, ok := strings.Cut(*format, "=")
		if !ok {
			fmt.Fprintln(os.Stderr, "doccheck: -format wants PKGDIR=MDFILE")
			os.Exit(2)
		}
		fs, err := auditFormatConsts(pkgDir, mdFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	sort.Strings(findings)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// auditPackageDir parses the non-test Go files of one directory and
// returns one finding per missing or malformed doc comment.
func auditPackageDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", dir, err)
	}
	var findings []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, fmt.Sprintf(format, args...)))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					auditFunc(d, report)
				case *ast.GenDecl:
					auditGenDecl(d, report)
				}
			}
		}
	}
	return findings, nil
}

// auditFunc checks one function or method declaration. Methods on
// unexported receiver types are skipped: they are not part of the godoc
// surface.
func auditFunc(d *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	if !d.Name.IsExported() {
		return
	}
	if d.Recv != nil && !receiverExported(d.Recv) {
		return
	}
	kind := "function"
	if d.Recv != nil {
		kind = "method"
	}
	checkNamedDoc(d.Doc, d.Name, kind, report)
}

// auditGenDecl checks type, const and var declarations. Types require a
// name-leading doc comment (on the spec or, for single-spec declarations,
// on the group). Consts and vars accept either a spec doc or a group doc.
func auditGenDecl(d *ast.GenDecl, report func(token.Pos, string, ...any)) {
	switch d.Tok {
	case token.TYPE:
		for _, spec := range d.Specs {
			ts := spec.(*ast.TypeSpec)
			if !ts.Name.IsExported() {
				continue
			}
			doc := ts.Doc
			if doc == nil && len(d.Specs) == 1 {
				doc = d.Doc
			}
			checkNamedDoc(doc, ts.Name, "type", report)
		}
	case token.CONST, token.VAR:
		for _, spec := range d.Specs {
			vs := spec.(*ast.ValueSpec)
			for _, name := range vs.Names {
				if !name.IsExported() {
					continue
				}
				if vs.Doc.Text() == "" && d.Doc.Text() == "" && vs.Comment.Text() == "" {
					report(name.Pos(), "exported %s %s has no doc comment (spec or group)", strings.ToLower(d.Tok.String()), name.Name)
				}
			}
		}
	}
}

// checkNamedDoc enforces the godoc convention that a declaration's
// comment starts with the declared name (an optional leading article
// "A", "An" or "The" is tolerated, matching go vet's stance).
func checkNamedDoc(doc *ast.CommentGroup, name *ast.Ident, kind string, report func(token.Pos, string, ...any)) {
	text := doc.Text()
	if text == "" {
		report(name.Pos(), "exported %s %s has no doc comment", kind, name.Name)
		return
	}
	trimmed := text
	for _, article := range []string{"A ", "An ", "The "} {
		if strings.HasPrefix(trimmed, article) {
			trimmed = trimmed[len(article):]
			break
		}
	}
	if !strings.HasPrefix(trimmed, name.Name) {
		report(name.Pos(), "doc comment for %s %s should start with %q", kind, name.Name, name.Name)
	}
}

// receiverExported reports whether the method receiver's base type name
// is exported.
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// linkRe matches inline markdown links and images: [text](target).
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// auditMarkdown link-checks one markdown file, or every *.md under a
// directory. Relative targets must exist on disk, resolved against the
// containing file's directory.
func auditMarkdown(root string) ([]string, error) {
	info, err := os.Stat(root)
	if err != nil {
		return nil, err
	}
	var files []string
	if info.IsDir() {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	} else {
		files = []string{root}
	}
	var findings []string
	for _, f := range files {
		fs, err := auditMarkdownFile(f)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	return findings, nil
}

// auditMarkdownFile checks every relative link of one markdown file,
// skipping fenced code blocks (``` ... ```).
func auditMarkdownFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var findings []string
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				findings = append(findings, fmt.Sprintf("%s:%d: broken link %q (%s does not exist)", path, i+1, m[1], resolved))
			}
		}
	}
	return findings, nil
}

// route is one normalised HTTP route: an uppercase method plus the mux
// path pattern. Method-less registrations (the pprof handlers mounted
// with bare HandleFunc) normalise to GET.
type route struct {
	method, path string
}

func (r route) String() string { return r.method + " " + r.path }

// parseRoute normalises one Handle/HandleFunc pattern literal.
func parseRoute(pattern string) route {
	if method, path, ok := strings.Cut(pattern, " "); ok {
		return route{method: method, path: path}
	}
	return route{method: "GET", path: pattern}
}

// headingRe matches the API reference's route headings: "### METHOD /path".
var headingRe = regexp.MustCompile(`^###\s+([A-Z]+)\s+(/\S*)\s*$`)

// auditRoutes cross-checks the routes registered in the given package
// directories against the "### METHOD /path" headings of the API
// reference, in both directions.
func auditRoutes(apiPath string, dirs []string) ([]string, error) {
	registered := map[route]string{} // route -> first registration site
	for _, dir := range dirs {
		if err := collectRoutes(strings.TrimSpace(dir), registered); err != nil {
			return nil, err
		}
	}
	if len(registered) == 0 {
		return nil, fmt.Errorf("route audit: no Handle/HandleFunc registrations found under %s", strings.Join(dirs, ", "))
	}
	data, err := os.ReadFile(apiPath)
	if err != nil {
		return nil, err
	}
	documented := map[route]int{} // route -> heading line
	for i, line := range strings.Split(string(data), "\n") {
		if m := headingRe.FindStringSubmatch(line); m != nil {
			documented[route{method: m[1], path: m[2]}] = i + 1
		}
	}
	var findings []string
	for r, site := range registered {
		if _, ok := documented[r]; !ok {
			findings = append(findings, fmt.Sprintf("%s: route %q is registered but has no \"### %s\" heading in %s", site, r, r, apiPath))
		}
	}
	for r, line := range documented {
		if _, ok := registered[r]; !ok {
			findings = append(findings, fmt.Sprintf("%s:%d: documented route %q is not registered in %s", apiPath, line, r, strings.Join(dirs, ", ")))
		}
	}
	return findings, nil
}

// collectRoutes AST-scans one package directory (test files excluded)
// for Handle/HandleFunc calls whose first argument is a string literal
// and records the normalised routes.
func collectRoutes(dir string, out map[route]string) error {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return fmt.Errorf("parse %s: %w", dir, err)
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "Handle" && sel.Sel.Name != "HandleFunc") {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				pattern, err := strconv.Unquote(lit.Value)
				if err != nil || !strings.Contains(pattern, "/") {
					return true
				}
				r := parseRoute(pattern)
				if _, seen := out[r]; !seen {
					p := fset.Position(lit.Pos())
					out[r] = fmt.Sprintf("%s:%d", p.Filename, p.Line)
				}
				return true
			})
		}
	}
	return nil
}

// formatHeadingRe matches the markdown heading that opens the on-disk
// file-format specification section ("## 14. Columnar lake file format"
// in DESIGN.md); sectionRe ends it at the next same-level heading.
var formatHeadingRe = regexp.MustCompile(`(?i)^##\s+.*file format`)

// formatLineRe matches one documented constant line inside the format
// section's fenced blocks: "FormatMagic = \"AFCL\"".
var formatLineRe = regexp.MustCompile(`^\s*(Format\w+)\s*=\s*(\S+)\s*$`)

// auditFormatConsts cross-checks the Format* constants declared in
// pkgDir against the "Name = value" lines of mdFile's file-format
// section, in both directions. Values are compared as source literals
// (quotes included), so the doc must quote strings exactly as Go does.
func auditFormatConsts(pkgDir, mdFile string) ([]string, error) {
	declared, sites, err := collectFormatConsts(pkgDir)
	if err != nil {
		return nil, err
	}
	if len(declared) == 0 {
		return nil, fmt.Errorf("format audit: no Format* constants found under %s", pkgDir)
	}
	data, err := os.ReadFile(mdFile)
	if err != nil {
		return nil, err
	}
	documented := map[string]int{} // "Name = value" -> line number
	inSection, found := false, false
	for i, line := range strings.Split(string(data), "\n") {
		switch {
		case formatHeadingRe.MatchString(line):
			inSection, found = true, true
			continue
		case inSection && strings.HasPrefix(line, "## "):
			inSection = false
		}
		if !inSection {
			continue
		}
		if m := formatLineRe.FindStringSubmatch(line); m != nil {
			documented[m[1]+" = "+m[2]] = i + 1
		}
	}
	if !found {
		return nil, fmt.Errorf("format audit: %s has no \"## ... file format\" section", mdFile)
	}
	var findings []string
	for rendered, site := range declared {
		if _, ok := documented[rendered]; !ok {
			findings = append(findings, fmt.Sprintf("%s: constant %q is not specified in %s's file-format section", site, rendered, mdFile))
		}
	}
	for rendered, line := range documented {
		if _, ok := declared[rendered]; !ok {
			name := strings.SplitN(rendered, " ", 2)[0]
			hint := ""
			if site, ok := sites[name]; ok {
				hint = fmt.Sprintf(" (declared at %s with a different value)", site)
			}
			findings = append(findings, fmt.Sprintf("%s:%d: documented constant %q does not match %s%s", mdFile, line, rendered, pkgDir, hint))
		}
	}
	return findings, nil
}

// collectFormatConsts AST-scans one package directory (test files
// excluded) for exported constants named Format* with literal values and
// returns them rendered as "Name = value" -> declaration site, plus a
// name -> site index for mismatch hints.
func collectFormatConsts(dir string) (map[string]string, map[string]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("parse %s: %w", dir, err)
	}
	rendered := map[string]string{}
	sites := map[string]string{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs := spec.(*ast.ValueSpec)
					for i, name := range vs.Names {
						if !strings.HasPrefix(name.Name, "Format") || i >= len(vs.Values) {
							continue
						}
						lit, ok := vs.Values[i].(*ast.BasicLit)
						if !ok {
							continue
						}
						p := fset.Position(name.Pos())
						rendered[name.Name+" = "+lit.Value] = fmt.Sprintf("%s:%d", p.Filename, p.Line)
						sites[name.Name] = fmt.Sprintf("%s:%d", p.Filename, p.Line)
					}
				}
			}
		}
	}
	return rendered, sites, nil
}
