// Command fselect runs the Section V feature-selection machinery on a
// single CSV table: it ranks every feature with the chosen relevance
// metric, optionally filters with a redundancy metric, and prints the
// selected subset with scores — a building block for exploring a table
// before pointing AutoFeat at a whole lake.
//
// Usage:
//
//	fselect -csv data.csv -label target
//	fselect -csv data.csv -label target -relevance ig -redundancy jmi -k 10
package main

import (
	"flag"
	"fmt"
	"os"

	"autofeat/internal/frame"
	"autofeat/internal/fselect"
)

func main() {
	var (
		csvPath    = flag.String("csv", "", "input CSV file (required)")
		label      = flag.String("label", "target", "label column")
		relevance  = flag.String("relevance", "spearman", "relevance metric: spearman|pearson|ig|su|relief (empty disables)")
		redundancy = flag.String("redundancy", "mrmr", "redundancy metric: mrmr|mifs|cife|jmi|cmim (empty disables)")
		k          = flag.Int("k", 15, "max features to keep (κ)")
		describe   = flag.Bool("describe", false, "print column summaries first")
	)
	flag.Parse()
	if *csvPath == "" {
		fmt.Fprintln(os.Stderr, "fselect: -csv is required")
		os.Exit(2)
	}
	if err := run(*csvPath, *label, *relevance, *redundancy, *k, *describe); err != nil {
		fmt.Fprintf(os.Stderr, "fselect: %v\n", err)
		os.Exit(1)
	}
}

func run(csvPath, label, relevance, redundancy string, k int, describe bool) error {
	f, err := frame.ReadCSVFile(csvPath)
	if err != nil {
		return err
	}
	if describe {
		fmt.Print(f.DescribeString())
		fmt.Println()
	}
	if !f.HasColumn(label) {
		return fmt.Errorf("no label column %q in %q", label, csvPath)
	}
	imputed := f.Imputed()
	y, err := imputed.Labels(label)
	if err != nil {
		return err
	}
	var names []string
	var cols [][]float64
	for _, c := range imputed.Columns() {
		if c.Name() == label {
			continue
		}
		names = append(names, c.Name())
		cols = append(cols, c.Floats())
	}
	if len(cols) == 0 {
		return fmt.Errorf("no feature columns in %q", csvPath)
	}

	pipe := &fselect.Pipeline{
		Relevance:  fselect.RelevanceByName(relevance),
		Redundancy: fselect.RedundancyByName(redundancy),
		K:          k,
	}
	res := pipe.Run(cols, nil, y)
	if len(res.Kept) == 0 {
		fmt.Println("no features survived selection (all irrelevant or redundant)")
		return nil
	}
	fmt.Printf("selected %d of %d features (relevance=%s, redundancy=%s, k=%d):\n",
		len(res.Kept), len(cols), orNone(relevance), orNone(redundancy), k)
	fmt.Printf("%-30s %12s %12s\n", "feature", "relevance", "redundancy J")
	for i, idx := range res.Kept {
		fmt.Printf("%-30s %12.4f %12.4f\n", names[idx], res.RelScores[i], res.RedScores[i])
	}
	return nil
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}
