// Command experiments regenerates the paper's evaluation: every table and
// figure (Table I, Table II, Figures 1 and 3–9) plus the design-choice
// ablations. Results print as aligned text tables; EXPERIMENTS.md records
// the paper-vs-measured comparison.
//
// Usage:
//
//	experiments                      # everything at quick scale
//	experiments -scale full          # full Table II scale (slow)
//	experiments -only figure4,figure6 -v
package main

import (
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"autofeat/internal/bench"
	"autofeat/internal/datagen"
	"autofeat/internal/obsrv"
	"autofeat/internal/telemetry"
)

func main() {
	var (
		scale     = flag.String("scale", "quick", "quick | full")
		only      = flag.String("only", "all", "comma-separated experiment ids (table1,table2,figure1,figure3a,figure3b,figure4..figure9,ablations) or 'all'")
		seed      = flag.Int64("seed", 7, "random seed")
		workers   = flag.Int("workers", 0, "parallel join-evaluation workers per discovery (0 = GOMAXPROCS, 1 = sequential)")
		verbose   = flag.Bool("v", false, "print per-run progress")
		telOut    = flag.String("telemetry-out", "", "write accumulated discovery telemetry as JSON to this file")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget per discovery (0 = none); expiry truncates rankings (partial)")
		budgetJ   = flag.Int("budget-joins", 0, "max joins evaluated per discovery (0 = unlimited)")
		budgetR   = flag.Int64("budget-rows", 0, "max cumulative joined rows per discovery (0 = unlimited)")
		serveAddr = flag.String("serve", "", "serve live introspection (/metrics, /healthz, /runs/sweep, /debug/pprof/) on this address")
		logLevel  = flag.String("log-level", "", "structured log level: debug|info|warn|error (empty = off)")
		logFormat = flag.String("log-format", "text", "structured log format: text|json")
	)
	flag.Parse()

	var specs []datagen.Spec
	switch *scale {
	case "quick":
		specs = datagen.QuickSpecs()
	case "full":
		specs = datagen.PaperSpecs()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	runner := bench.NewRunner(specs, *seed)
	runner.Verbose = *verbose
	runner.Workers = *workers
	runner.Timeout = *timeout
	runner.MaxEvalJoins = *budgetJ
	runner.MaxJoinedRows = *budgetR
	if *telOut != "" || *serveAddr != "" {
		runner.Telemetry = telemetry.New()
	}
	if *logLevel != "" {
		level, on, err := telemetry.ParseLogLevel(*logLevel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
		if on {
			runner.Logger = telemetry.NewLogger(os.Stderr, level, *logFormat)
		}
	}
	if *serveAddr != "" {
		// The sweep reuses one progress tracker across its discoveries: the
		// /runs/sweep endpoint always shows the run currently in flight.
		runner.Progress = obsrv.NewRunProgress("sweep")
		srv := obsrv.NewServer(obsrv.Config{
			Addr:        *serveAddr,
			Collector:   runner.Telemetry,
			EnablePprof: true,
		})
		srv.Register(runner.Progress)
		go func() {
			if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "experiments: introspection server: %v\n", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("introspection listening on http://%s/ (metrics, healthz, runs/sweep, debug/pprof)\n", *serveAddr)
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	run := func(id string, fn func() error) {
		if !all && !want[id] {
			return
		}
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	show := func(rep *bench.Report, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(rep)
		return nil
	}

	run("table1", func() error { return show(bench.TableI(), nil) })
	run("table2", func() error { return show(runner.TableII()) })
	run("figure3a", func() error { return show(runner.Figure3a()) })
	run("figure3b", func() error { return show(runner.Figure3b()) })
	run("figure4", func() error { return show(runner.Figure4()) })
	run("figure5", func() error { return show(runner.Figure5()) })
	run("figure6", func() error { return show(runner.Figure6()) })
	run("figure7", func() error { return show(runner.Figure7()) })
	run("figure8", func() error {
		reps, err := runner.Figure8()
		if err != nil {
			return err
		}
		for _, rep := range reps {
			fmt.Println(rep)
		}
		return nil
	})
	run("figure9", func() error { return show(runner.Figure9()) })
	run("figure1", func() error { return show(runner.Figure1()) })
	run("ablations", func() error {
		for _, fn := range []func() (*bench.Report, error){
			runner.AblationTraversal,
			runner.AblationCardinality,
			runner.AblationJoinType,
			runner.AblationSimPrune,
			runner.AblationBins,
			runner.AblationStreaming,
		} {
			if err := show(fn()); err != nil {
				return err
			}
		}
		return nil
	})

	if *telOut != "" {
		if err := runner.WriteTelemetry(*telOut); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: telemetry: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("telemetry written to %s\n", *telOut)
	}
}
