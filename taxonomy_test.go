package autofeat

// Error-taxonomy tests over the public API: every actionable failure
// matches exactly one of the exported sentinels through arbitrary
// rewrapping, and a single corrupt table in a lake prunes only its own
// join paths instead of aborting discovery.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTaxonomyLake writes a four-file CSV lake: base -> bridge -> gold
// carries the signal, and corrupt.csv is unparseable (ragged row).
func writeTaxonomyLake(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	var base, bridge, gold strings.Builder
	base.WriteString("id,noise,target\n")
	bridge.WriteString("pid,ref\n")
	gold.WriteString("key,signal\n")
	for i := 0; i < 60; i++ {
		fmt.Fprintf(&base, "%d,%d,%d\n", i, (i*13)%7, i%2)
		fmt.Fprintf(&bridge, "%d,%d\n", i, i+1000)
		fmt.Fprintf(&gold, "%d,%d\n", i+1000, (i%2)*5)
	}
	files := map[string]string{
		"base.csv":    base.String(),
		"bridge.csv":  bridge.String(),
		"gold.csv":    gold.String(),
		"corrupt.csv": "a,b\n1,2\n3\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestErrorTaxonomyWrapChain checks that public-API failures match their
// sentinel via errors.Is — including after another layer of fmt.Errorf
// wrapping — and that the sentinels stay mutually exclusive.
func TestErrorTaxonomyWrapChain(t *testing.T) {
	dir := writeTaxonomyLake(t)
	_, readErr := ReadTablesDir(dir)
	if readErr == nil {
		t.Fatal("ReadTablesDir accepted a corrupt CSV")
	}
	_, modelErr := ModelByName("definitely-not-a-model")
	if modelErr == nil {
		t.Fatal("ModelByName accepted an unknown name")
	}
	cases := []struct {
		name string
		err  error
		want error
	}{
		{"corrupt csv in lake", readErr, ErrBadInput},
		{"unknown model", modelErr, ErrBadInput},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if !errors.Is(tc.err, tc.want) {
				t.Fatalf("%v does not match its sentinel", tc.err)
			}
			rewrapped := fmt.Errorf("harness: %w", tc.err)
			if !errors.Is(rewrapped, tc.want) {
				t.Fatalf("rewrapped %v lost its sentinel", rewrapped)
			}
			for _, other := range []error{ErrBadInput, ErrBudgetExceeded, ErrCancelled} {
				if other != tc.want && errors.Is(tc.err, other) {
					t.Fatalf("%v matches foreign sentinel %v", tc.err, other)
				}
			}
		})
	}
}

// TestCorruptTablePrunesOnlyItsPaths is the regression for graceful lake
// degradation: ReadTablesDirLenient drops the corrupt file (reporting it
// as an ErrBadInput-matching error) and discovery over the remaining
// tables completes with the paths the corrupt table never touched.
func TestCorruptTablePrunesOnlyItsPaths(t *testing.T) {
	dir := writeTaxonomyLake(t)
	tables, errs := ReadTablesDirLenient(dir)
	if len(tables) != 3 {
		t.Fatalf("lenient read kept %d tables, want 3", len(tables))
	}
	if len(errs) != 1 {
		t.Fatalf("lenient read reported %d errors, want 1", len(errs))
	}
	if !errors.Is(errs[0], ErrBadInput) {
		t.Fatalf("skipped-file error %v does not match ErrBadInput", errs[0])
	}
	if !strings.Contains(errs[0].Error(), "corrupt.csv") {
		t.Fatalf("skipped-file error %v does not name the file", errs[0])
	}
	for _, tab := range tables {
		if tab.Name() == "corrupt" {
			t.Fatal("corrupt table survived the lenient read")
		}
	}

	g, err := BuildDRG(tables, []KFK{
		{ParentTable: "base", ParentCol: "id", ChildTable: "bridge", ChildCol: "pid"},
		{ParentTable: "bridge", ParentCol: "ref", ChildTable: "gold", ChildCol: "key"},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SampleSize = 0
	disc, err := NewDiscovery(g, "base", "target", cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := disc.Run()
	if err != nil {
		t.Fatalf("discovery over the surviving lake failed: %v", err)
	}
	if r.Partial {
		t.Fatalf("run unexpectedly partial: %q", r.PartialReason)
	}
	if len(r.Paths) == 0 {
		t.Fatal("no join paths ranked over the surviving tables")
	}
	for _, p := range r.Paths {
		for _, e := range p.Edges {
			if e.A == "corrupt" || e.B == "corrupt" {
				t.Fatalf("path touches the dropped table: %v", p.Edges)
			}
		}
	}

	// A cancelled materialisation of a surviving path surfaces
	// ErrCancelled with the context cause still on the chain.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err = disc.MaterializePathContext(ctx, r.Paths[0], r.Base)
	if err == nil {
		t.Fatal("cancelled materialisation did not error")
	}
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("materialisation abort %v must match ErrCancelled and context.Canceled", err)
	}
}
