package autofeat

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"autofeat/internal/datagen"
)

// TestWriteParallelBench regenerates BENCH_parallel.json, the committed
// worker-scaling baseline. It is gated behind AUTOFEAT_BENCH_OUT so plain
// `go test` stays fast:
//
//	AUTOFEAT_BENCH_OUT=BENCH_parallel.json go test -run TestWriteParallelBench .
//
// (or `make bench`, which does the same). The file records GOMAXPROCS and
// NumCPU alongside the measurements: the speedup at 4 and 8 workers is
// bounded by the cores available, so a baseline produced on a small
// container will show ~1x and must be regenerated on multi-core hardware
// to observe the scaling.
func TestWriteParallelBench(t *testing.T) {
	out := os.Getenv("AUTOFEAT_BENCH_OUT")
	if out == "" {
		t.Skip("set AUTOFEAT_BENCH_OUT=<path> to write the worker-scaling baseline")
	}
	spec := datagen.ParallelSpec()
	d, err := datagen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildDRG(d.Tables, d.KFKs)
	if err != nil {
		t.Fatal(err)
	}
	type entry struct {
		Workers    int     `json:"workers"`
		Iterations int     `json:"iterations"`
		NsPerOp    int64   `json:"ns_per_op"`
		SpeedupVs1 float64 `json:"speedup_vs_1"`
	}
	var (
		entries []entry
		baseNs  float64
	)
	for _, workers := range []int{1, 4, 8} {
		w := workers
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.Workers = w
				disc, err := NewDiscovery(g, d.Base.Name(), d.Label, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := disc.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
		ns := float64(res.NsPerOp())
		if w == 1 {
			baseNs = ns
		}
		entries = append(entries, entry{
			Workers:    w,
			Iterations: res.N,
			NsPerOp:    int64(ns),
			SpeedupVs1: baseNs / ns,
		})
		t.Logf("workers=%d: %d iters, %.0f ns/op, %.2fx", w, res.N, ns, baseNs/ns)
	}
	doc := struct {
		Benchmark  string  `json:"benchmark"`
		Dataset    string  `json:"dataset"`
		Rows       int     `json:"rows"`
		Tables     int     `json:"joinable_tables"`
		GOMAXPROCS int     `json:"gomaxprocs"`
		NumCPU     int     `json:"num_cpu"`
		Results    []entry `json:"results"`
	}{
		Benchmark:  "BenchmarkMicroDiscoveryWorkers",
		Dataset:    spec.Name,
		Rows:       spec.Rows,
		Tables:     spec.JoinableTables,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Results:    entries,
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline written to %s", out)
}
