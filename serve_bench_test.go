package autofeat

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"autofeat/internal/datagen"
)

// TestWriteServeBench regenerates BENCH_serve.json, the committed
// cold-vs-warm baseline behind the long-lived service. It is gated
// behind AUTOFEAT_SERVE_BENCH_OUT so plain `go test` stays fast:
//
//	AUTOFEAT_SERVE_BENCH_OUT=BENCH_serve.json go test -run TestWriteServeBench .
//
// (or `make bench`, which does the same). "cold" is the one-shot cost a
// CLI invocation pays per request — open the lake from disk, build the
// DRG with the schema matcher, then discover. "warm" is the same request
// against one resident Lake, where the offline phase (load + profile +
// match) is already paid and join-key indexes are cached; the recorded
// speedup is the point of serving discoveries from a session instead of
// a process per query.
func TestWriteServeBench(t *testing.T) {
	out := os.Getenv("AUTOFEAT_SERVE_BENCH_OUT")
	if out == "" {
		t.Skip("set AUTOFEAT_SERVE_BENCH_OUT=<path> to write the cold/warm serving baseline")
	}
	spec := datagen.ParallelSpec()
	ds, err := datagen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, tb := range ds.Tables {
		if err := tb.WriteCSVFile(filepath.Join(dir, tb.Name()+".csv")); err != nil {
			t.Fatal(err)
		}
	}
	// The served workload is an interactive query: beam-bounded discovery
	// over a wide lake whose offline phase (matcher over every column
	// pair) is expensive — exactly what a resident session amortises.
	cfg := DefaultConfig()
	cfg.BeamWidth = 2
	cfg.MaxDepth = 2
	req := Request{Base: ds.Base.Name(), Label: ds.Label, Config: &cfg}
	ctx := context.Background()

	// Both modes record the minimum over fixed repetitions rather than a
	// testing.Benchmark mean: each op is ~10⁸ ns, so the mean over the
	// handful of iterations a 1s benchtime allows is dominated by load
	// spikes, while the minimum is the reproducible cost of the work.
	const coldIters, warmIters = 5, 15

	// Cold: every operation is a fresh process-equivalent — read the CSVs,
	// run the matcher over every column pair, then discover.
	coldNs := minNsPerOp(t, coldIters, func() error {
		l, err := OpenLake(dir)
		if err != nil {
			return err
		}
		_, err = l.Discover(ctx, req)
		return err
	})

	// Warm: one resident Lake serves every operation. Prime it once so
	// even the first measured iteration hits the memoised DRG.
	resident, err := OpenLake(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resident.Discover(ctx, req); err != nil {
		t.Fatal(err)
	}
	warmNs := minNsPerOp(t, warmIters, func() error {
		_, err := resident.Discover(ctx, req)
		return err
	})

	speedup := coldNs / warmNs
	t.Logf("cold: min of %d, %.0f ns/op", coldIters, coldNs)
	t.Logf("warm: min of %d, %.0f ns/op (%.2fx faster)", warmIters, warmNs, speedup)
	if speedup < 2 {
		t.Errorf("warm-lake speedup %.2fx, want >= 2x", speedup)
	}

	type entry struct {
		Mode       string  `json:"mode"`
		Workers    int     `json:"workers"`
		Iterations int     `json:"iterations"`
		NsPerOp    int64   `json:"ns_per_op"`
		SpeedupVs1 float64 `json:"speedup_vs_1"`
	}
	doc := struct {
		Benchmark   string  `json:"benchmark"`
		Dataset     string  `json:"dataset"`
		Rows        int     `json:"rows"`
		Tables      int     `json:"joinable_tables"`
		GOMAXPROCS  int     `json:"gomaxprocs"`
		NumCPU      int     `json:"num_cpu"`
		SpeedupWarm float64 `json:"speedup_warm_vs_cold"`
		Results     []entry `json:"results"`
	}{
		Benchmark:   "BenchmarkServeColdWarm",
		Dataset:     spec.Name,
		Rows:        spec.Rows,
		Tables:      spec.JoinableTables,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		SpeedupWarm: speedup,
		Results: []entry{
			{Mode: "cold", Workers: 1, Iterations: coldIters, NsPerOp: int64(coldNs), SpeedupVs1: 1},
			{Mode: "warm", Workers: 1, Iterations: warmIters, NsPerOp: int64(warmNs), SpeedupVs1: speedup},
		},
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline written to %s", out)
}

// minNsPerOp times n runs of op and returns the fastest in nanoseconds.
func minNsPerOp(t *testing.T, n int, op func() error) float64 {
	t.Helper()
	best := time.Duration(1<<63 - 1)
	for i := 0; i < n; i++ {
		start := time.Now()
		if err := op(); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds())
}
