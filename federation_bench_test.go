package autofeat

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"autofeat/internal/datagen"
	"autofeat/internal/obsrv"
	"autofeat/internal/serve"
	"autofeat/internal/telemetry"
)

// TestWriteFederationBench regenerates BENCH_federation.json, the
// committed federated-scrape overhead baseline: wall-clock ns per
// coordinator GET /v1/cluster/metrics scrape over a 2-worker cluster,
// measured idle and again while a discovery workload runs. The scrape
// path renders pre-pulled snapshots without touching the workers, so
// the loaded row must stay cheap — the in-test guard is loose (1s per
// scrape); `make bench-diff` is the real >5% regression gate. Gated
// behind AUTOFEAT_FEDERATION_BENCH_OUT so plain `go test` stays fast:
//
//	AUTOFEAT_FEDERATION_BENCH_OUT=BENCH_federation.json go test -run TestWriteFederationBench .
//
// (or `make bench`).
func TestWriteFederationBench(t *testing.T) {
	out := os.Getenv("AUTOFEAT_FEDERATION_BENCH_OUT")
	if out == "" {
		t.Skip("set AUTOFEAT_FEDERATION_BENCH_OUT=<path> to write the federation scrape baseline")
	}
	spec := datagen.SmallSpecs()[0]
	ds, err := datagen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, tb := range ds.Tables {
		if err := tb.WriteCSVFile(filepath.Join(dir, tb.Name()+".csv")); err != nil {
			t.Fatal(err)
		}
	}
	const workers = 2
	const scrapes = 300
	lakes := []string{"lake-001", "lake-002"}

	store, err := serve.NewJobStore("")
	if err != nil {
		t.Fatal(err)
	}
	coord := serve.NewCoordinator(serve.ClusterConfig{
		HeartbeatTimeout: time.Minute,
		Collector:        telemetry.New(),
	}, store)
	csrv := obsrv.NewServer(obsrv.Config{Collector: telemetry.New()})
	coord.Mount(csrv)
	coordTS := httptest.NewServer(csrv.Handler())
	defer coordTS.Close()

	for i := 0; i < workers; i++ {
		col := telemetry.New()
		wsrv := obsrv.NewServer(obsrv.Config{Collector: col})
		svc := serve.New(serve.Config{Workers: 1, QueueDepth: 64, Collector: col})
		svc.Mount(wsrv)
		ts := httptest.NewServer(wsrv.Handler())
		defer ts.Close()
		agent := serve.NewAgent(serve.AgentConfig{
			ID:          fmt.Sprintf("bench-worker-%d", i),
			Addr:        ts.URL,
			Coordinator: coordTS.URL,
			Collector:   col,
		}, svc)
		agent.Mount(wsrv)
		if err := agent.Heartbeat(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range lakes {
		body, _ := json.Marshal(map[string]any{"id": id, "dir": dir})
		resp, err := http.Post(coordTS.URL+"/v1/lakes", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("register %s: status %d", id, resp.StatusCode)
		}
	}

	submit := func(lakeID string) {
		body, _ := json.Marshal(map[string]any{
			"lake": lakeID, "base": ds.Base.Name(), "label": ds.Label,
		})
		resp, err := http.Post(coordTS.URL+"/v1/discoveries", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit on %s: status %d", lakeID, resp.StatusCode)
		}
	}
	drain := func() {
		deadline := time.Now().Add(120 * time.Second)
		for time.Now().Before(deadline) {
			coord.Sweep()
			done := true
			for _, j := range coord.Store().Jobs() {
				switch j.State {
				case serve.StateDone:
				case serve.StateFailed, serve.StateCancelled:
					t.Fatalf("cluster job %s finished %q: %s", j.ID, j.State, j.Error)
				default:
					done = false
				}
			}
			if done {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatal("bench workload did not drain in time")
	}
	scrapeNs := func(n int) float64 {
		start := time.Now()
		for i := 0; i < n; i++ {
			resp, err := http.Get(coordTS.URL + "/v1/cluster/metrics")
			if err != nil {
				t.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("scrape: status %d", resp.StatusCode)
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(n)
	}

	// Warmup: one job per lake pays each worker's DRG build and, via the
	// sweep, pulls every worker's snapshot into the coordinator.
	for _, id := range lakes {
		submit(id)
	}
	drain()

	// Sanity: one scrape must cover every node before timing starts.
	resp, err := http.Get(coordTS.URL + "/v1/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for i := 0; i < workers; i++ {
		if want := fmt.Sprintf("node=\"bench-worker-%d\"", i); !strings.Contains(string(body), want) {
			t.Fatalf("federated scrape missing %s before timing", want)
		}
	}

	nsIdle := scrapeNs(scrapes)

	// Loaded: a background goroutine keeps both workers busy (submitting
	// and draining batches) while the scrape loop runs.
	stop := make(chan struct{})
	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, id := range lakes {
				submit(id)
			}
			drain()
		}
	}()
	nsLoad := scrapeNs(scrapes)
	close(stop)
	<-loadDone
	drain()

	overhead := nsLoad / nsIdle
	t.Logf("idle:   %.0f ns/scrape (%.0f scrapes/sec)", nsIdle, 1e9/nsIdle)
	t.Logf("loaded: %.0f ns/scrape (%.0f scrapes/sec, %.2fx idle)", nsLoad, 1e9/nsLoad, overhead)
	if nsLoad > 1e9 {
		t.Errorf("loaded scrape takes %.0f ns, want under 1s — federation must stay off the job path", nsLoad)
	}

	type entry struct {
		Mode       string  `json:"mode"`
		Workers    int     `json:"workers"`
		Iterations int     `json:"iterations"`
		NsPerOp    int64   `json:"ns_per_op"`
		SpeedupVs1 float64 `json:"speedup_vs_1"`
		JobsPerSec float64 `json:"jobs_per_sec"`
	}
	doc := struct {
		Benchmark  string  `json:"benchmark"`
		Dataset    string  `json:"dataset"`
		Rows       int     `json:"rows"`
		Tables     int     `json:"joinable_tables"`
		Lakes      int     `json:"lakes"`
		Scrapes    int     `json:"scrapes"`
		GOMAXPROCS int     `json:"gomaxprocs"`
		NumCPU     int     `json:"num_cpu"`
		Results    []entry `json:"results"`
	}{
		Benchmark:  "BenchmarkFederationScrape",
		Dataset:    spec.Name,
		Rows:       spec.Rows,
		Tables:     spec.JoinableTables,
		Lakes:      len(lakes),
		Scrapes:    scrapes,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Results: []entry{
			{Mode: "scrape_idle", Workers: workers, Iterations: scrapes, NsPerOp: int64(nsIdle), SpeedupVs1: 1, JobsPerSec: 1e9 / nsIdle},
			{Mode: "scrape_load", Workers: workers, Iterations: scrapes, NsPerOp: int64(nsLoad), SpeedupVs1: 1 / overhead, JobsPerSec: 1e9 / nsLoad},
		},
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("baseline written to %s", out)
}
