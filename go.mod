module autofeat

go 1.22
