// Package serve implements the long-lived discovery service: a REST
// layer over resident lake sessions (internal/lake) that lets many
// augmentation requests run against a lake that was loaded, profiled
// and graph-matched once. It mounts on the internal/obsrv introspection
// mux, so one listener serves both planes:
//
//   - POST   /v1/lakes             — register (open) a lake directory
//   - GET    /v1/lakes             — list registered lakes
//   - POST   /v1/lakes/{id}/tables — register or replace one table (CSV body)
//   - DELETE /v1/lakes/{id}/tables/{table} — drop one table
//   - POST   /v1/discoveries       — submit a discovery run (202 + id)
//   - GET    /v1/discoveries       — list jobs with their states
//   - GET    /v1/discoveries/{id}  — job status, and the result once done
//   - GET    /v1/discoveries/{id}/manifest — the run's provenance manifest
//   - DELETE /v1/discoveries/{id}  — cancel a queued or running job
//
// Jobs run on a bounded scheduler: at most Config.Workers discoveries
// execute concurrently (admission via a semaphore), at most
// Config.QueueDepth jobs wait behind them, and submissions beyond that
// are rejected with 429 and a Retry-After header. Every job threads the
// existing RunProgress, telemetry collector and provenance manifest, so
// GET /runs/{id} and GET /metrics work unchanged for served traffic.
// Drain implements graceful shutdown: new submissions get 503 while
// in-flight jobs run to completion.
package serve

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"autofeat/internal/core"
	"autofeat/internal/frame"
	"autofeat/internal/lake"
	"autofeat/internal/obsrv"
	"autofeat/internal/telemetry"
)

// Job states, in lifecycle order.
const (
	// StateQueued is a job admitted but waiting for a scheduler slot.
	StateQueued = "queued"
	// StateRunning is a job holding a scheduler slot.
	StateRunning = "running"
	// StateDone is a job that finished with a result (possibly Partial).
	StateDone = "done"
	// StateFailed is a job that returned an error.
	StateFailed = "failed"
	// StateCancelled is a job stopped by DELETE before completion; a
	// partial result may still be attached.
	StateCancelled = "cancelled"
)

// Config sizes and wires a Service.
type Config struct {
	// Workers bounds how many discovery jobs run concurrently — the
	// admission semaphore size. 0 defaults to GOMAXPROCS. Note each job
	// may itself use a per-request worker pool (core.Config.Workers), so
	// total parallelism is the product; size accordingly.
	Workers int
	// QueueDepth bounds how many admitted jobs may wait for a slot.
	// Submissions beyond it are rejected with 429 and Retry-After.
	// 0 defaults to 2×Workers.
	QueueDepth int
	// DefaultTimeout is applied as the per-job core.Config.Timeout when
	// the request does not set one. 0 leaves jobs unbounded.
	DefaultTimeout time.Duration
	// Collector, when non-nil, is shared by every served run so the
	// introspection /metrics endpoint aggregates served traffic.
	Collector *telemetry.Collector
	// Logger, when non-nil, receives service lifecycle records and is
	// threaded into every served run.
	Logger *slog.Logger
}

// Service is the long-lived discovery service: registered lake sessions,
// a job table, and the bounded scheduler that runs jobs against them.
type Service struct {
	cfg Config
	log *slog.Logger
	srv *obsrv.Server
	sem chan struct{}

	mu        sync.Mutex
	lakes     map[string]*lakeEntry
	lakeOrder []string
	jobs      map[string]*job
	jobOrder  []string
	nextLake  int
	nextJob   int

	queued   atomic.Int64
	draining atomic.Bool
	wg       sync.WaitGroup
}

// lakeEntry is one registered lake session.
type lakeEntry struct {
	id      string
	lake    *lake.Lake
	created time.Time
}

// job is one scheduled discovery run.
type job struct {
	id      string
	lakeID  string
	req     lake.Request
	cancel  context.CancelFunc
	traceID string
	span    telemetry.Span

	mu              sync.Mutex
	state           string
	err             string
	cancelRequested bool
	result          *lake.Result
	hitsBefore      int64
	missesBefore    int64
	submitted       time.Time
	started         time.Time
	finished        time.Time
}

// New builds a Service. Mount it on an obsrv.Server to expose the REST
// endpoints.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	return &Service{
		cfg:   cfg,
		log:   telemetry.OrNop(cfg.Logger),
		sem:   make(chan struct{}, cfg.Workers),
		lakes: make(map[string]*lakeEntry),
		jobs:  make(map[string]*job),
	}
}

// Mount registers the service's routes on the introspection server's
// mux and keeps a reference to it so each job's RunProgress appears
// under /runs/{id}.
func (s *Service) Mount(srv *obsrv.Server) {
	s.srv = srv
	srv.Handle("POST /v1/lakes", http.HandlerFunc(s.handleLakeCreate))
	srv.Handle("GET /v1/lakes", http.HandlerFunc(s.handleLakeList))
	srv.Handle("POST /v1/lakes/{id}/tables", http.HandlerFunc(s.handleTableUpsert))
	srv.Handle("DELETE /v1/lakes/{id}/tables/{table}", http.HandlerFunc(s.handleTableDrop))
	srv.Handle("POST /v1/discoveries", http.HandlerFunc(s.handleSubmit))
	srv.Handle("GET /v1/discoveries", http.HandlerFunc(s.handleJobList))
	srv.Handle("GET /v1/discoveries/{id}", http.HandlerFunc(s.handleJobGet))
	srv.Handle("GET /v1/discoveries/{id}/manifest", http.HandlerFunc(s.handleJobManifest))
	srv.Handle("DELETE /v1/discoveries/{id}", http.HandlerFunc(s.handleJobCancel))
}

// AddLake registers an already-open lake session under the given id,
// the programmatic path tests and embedders use instead of POST
// /v1/lakes. An existing id is replaced.
func (s *Service) AddLake(id string, l *lake.Lake) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.lakes[id]; !ok {
		s.lakeOrder = append(s.lakeOrder, id)
	}
	s.lakes[id] = &lakeEntry{id: id, lake: l, created: time.Now()}
	s.updateLakeGauges(id, l)
}

// updateLakeGauges refreshes the per-lake /metrics gauges: resident
// tables, DRG memo entries, key-index cache hits/misses/size, and the
// LSH index shape. Called on registration, after every job and after
// every table mutation so scrapes stay current without a background
// poller.
func (s *Service) updateLakeGauges(id string, l *lake.Lake) {
	mx := s.cfg.Collector.Meter()
	mx.SetGauge(telemetry.GaugeLakeTablesPrefix+id, float64(len(l.Tables())))
	mx.SetGauge(telemetry.GaugeLakeGraphMemoPrefix+id, float64(l.GraphMemoLen()))
	hits, misses := l.CacheStats()
	mx.SetGauge(telemetry.GaugeLakeKeyCacheHitsPrefix+id, float64(hits))
	mx.SetGauge(telemetry.GaugeLakeKeyCacheMissesPrefix+id, float64(misses))
	mx.SetGauge(telemetry.GaugeLakeKeyCacheSizePrefix+id, float64(l.CacheSize()))
	ix := l.IndexStats()
	mx.SetGauge(telemetry.GaugeLakeIndexColumnsPrefix+id, float64(ix.Columns))
	mx.SetGauge(telemetry.GaugeLakeIndexBucketsPrefix+id, float64(ix.Slot+ix.Anchor+ix.Name))
}

// LakeIDs returns the registered lake ids in registration order — the
// worker-side agent reports them in every heartbeat.
func (s *Service) LakeIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.lakeOrder))
	copy(out, s.lakeOrder)
	return out
}

// Stats reports the scheduler's current occupancy: jobs waiting for a
// slot, jobs holding one, and the slot count. Heartbeats carry it so the
// coordinator can expose per-worker load.
func (s *Service) Stats() (queued, running, slots int) {
	return int(s.queued.Load()), len(s.sem), cap(s.sem)
}

// Draining reports whether the service has stopped admitting work.
func (s *Service) Draining() bool { return s.draining.Load() }

// Lake returns the registered lake session for id, or nil.
func (s *Service) Lake(id string) *lake.Lake {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.lakes[id]; e != nil {
		return e.lake
	}
	return nil
}

// Drain stops admission (new submissions get 503) and waits until every
// in-flight and queued job has finished, or ctx expires. It is the
// SIGTERM half of graceful shutdown; follow it with obsrv.Server.
// Shutdown to close the listener.
func (s *Service) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.log.Info("service draining", "jobs_queued", s.queued.Load())
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.log.Info("service drained")
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
}

// lakeCreateRequest is the POST /v1/lakes body.
type lakeCreateRequest struct {
	// Dir is the lake directory to open (required).
	Dir string `json:"dir"`
	// ID optionally fixes the lake's id instead of letting the service
	// assign the next "lake-NNN". The cluster coordinator uses it so a
	// lake keeps one id wherever rendezvous hashing places it; an
	// existing lake under the same id is replaced (re-opened).
	ID string `json:"id,omitempty"`
	// Matcher is the default DRG matcher for this lake: "exact"
	// (default) or "sketched".
	Matcher string `json:"matcher,omitempty"`
	// Threshold is the default matcher threshold (0 = 0.55).
	Threshold float64 `json:"threshold,omitempty"`
	// Format selects the table file format: "auto" (default; columnar
	// .afc files shadow same-named CSVs), "csv" or "columnar".
	Format string `json:"format,omitempty"`
}

// lakeDoc describes one registered lake in responses.
type lakeDoc struct {
	ID     string `json:"id"`
	Dir    string `json:"dir"`
	Tables int    `json:"tables"`
}

func (s *Service) handleLakeCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	var req lakeCreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.Dir == "" {
		writeError(w, http.StatusBadRequest, "dir is required")
		return
	}
	var opts []lake.Option
	if req.Matcher != "" {
		opts = append(opts, lake.WithMatcher(lake.MatcherKind(req.Matcher)))
	}
	if req.Threshold > 0 {
		opts = append(opts, lake.WithThreshold(req.Threshold))
	}
	if req.Format != "" {
		opts = append(opts, lake.WithFormat(lake.Format(req.Format)))
	}
	l, err := lake.Open(req.Dir, opts...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	id := req.ID
	if id == "" {
		s.mu.Lock()
		s.nextLake++
		id = fmt.Sprintf("lake-%03d", s.nextLake)
		s.mu.Unlock()
	}
	s.AddLake(id, l)
	s.log.Info("lake registered", "id", id, "dir", req.Dir, "tables", len(l.Tables()))
	writeJSON(w, http.StatusCreated, lakeDoc{ID: id, Dir: l.Dir(), Tables: len(l.Tables())})
}

func (s *Service) handleLakeList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	docs := make([]lakeDoc, 0, len(s.lakeOrder))
	for _, id := range s.lakeOrder {
		e := s.lakes[id]
		docs = append(docs, lakeDoc{ID: e.id, Dir: e.lake.Dir(), Tables: len(e.lake.Tables())})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"lakes": docs})
}

// tableUpsertRequest is the POST /v1/lakes/{id}/tables body. Exactly one
// of CSV or Columnar carries the table content.
type tableUpsertRequest struct {
	// Name is the table (node) name to register (required).
	Name string `json:"name"`
	// CSV is the table content, header row first.
	CSV string `json:"csv,omitempty"`
	// Columnar is a base64-encoded columnar table file (the format
	// frame.EncodeColumnar writes; see DESIGN.md §14) — the binary
	// alternative to CSV for pre-packed tables.
	Columnar string `json:"columnar,omitempty"`
	// Replace selects ReplaceTable semantics: the named table must
	// already exist and is swapped for the uploaded one. Without it the
	// name must be new (RegisterTable).
	Replace bool `json:"replace,omitempty"`
}

// tableMutationDoc is the response to a successful table mutation.
type tableMutationDoc struct {
	Lake         string `json:"lake"`
	Table        string `json:"table"`
	Op           string `json:"op"`
	Tables       int    `json:"tables"`
	IndexBuilt   bool   `json:"index_built"`
	IndexColumns int    `json:"index_columns,omitempty"`
	GraphMemo    int    `json:"drg_memo_entries"`
	Mutations    int64  `json:"mutations"`
}

// finishMutation records telemetry for one mutation attempt and, on
// success, refreshes the lake gauges and writes the mutation document.
func (s *Service) finishMutation(w http.ResponseWriter, id string, l *lake.Lake, op, table string, err error) {
	mx := s.cfg.Collector.Meter()
	if err != nil {
		mx.Inc(telemetry.CtrLakeMutationErrorsPrefix + op)
		s.log.Warn("lake mutation rejected", "lake", id, "op", op, "table", table, "error", err)
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	mx.Inc(telemetry.CtrLakeMutationsPrefix + op)
	s.updateLakeGauges(id, l)
	ix := l.IndexStats()
	s.log.Info("lake mutated", "lake", id, "op", op, "table", table,
		"tables", len(l.Tables()), "index_built", ix.Built)
	writeJSON(w, http.StatusOK, tableMutationDoc{
		Lake:         id,
		Table:        table,
		Op:           op,
		Tables:       len(l.Tables()),
		IndexBuilt:   ix.Built,
		IndexColumns: ix.Columns,
		GraphMemo:    l.GraphMemoLen(),
		Mutations:    l.Mutations(),
	})
}

func (s *Service) handleTableUpsert(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	id := r.PathValue("id")
	l := s.Lake(id)
	if l == nil {
		writeError(w, http.StatusNotFound, "unknown lake "+id)
		return
	}
	var req tableUpsertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.Name == "" || (req.CSV == "") == (req.Columnar == "") {
		writeError(w, http.StatusBadRequest, "name and exactly one of csv or columnar are required")
		return
	}
	var f *frame.Frame
	var err error
	if req.Columnar != "" {
		var raw []byte
		raw, err = base64.StdEncoding.DecodeString(req.Columnar)
		if err != nil {
			writeError(w, http.StatusBadRequest, "decode columnar: "+err.Error())
			return
		}
		f, err = frame.DecodeColumnar(req.Name, raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "parse columnar: "+err.Error())
			return
		}
	} else {
		f, err = frame.ReadCSV(req.Name, strings.NewReader(req.CSV))
		if err != nil {
			writeError(w, http.StatusBadRequest, "parse csv: "+err.Error())
			return
		}
	}
	op := "register"
	if req.Replace {
		op = "replace"
		err = l.ReplaceTable(f)
	} else {
		err = l.RegisterTable(f)
	}
	s.finishMutation(w, id, l, op, req.Name, err)
}

func (s *Service) handleTableDrop(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	id := r.PathValue("id")
	l := s.Lake(id)
	if l == nil {
		writeError(w, http.StatusNotFound, "unknown lake "+id)
		return
	}
	table := r.PathValue("table")
	s.finishMutation(w, id, l, "drop", table, l.DropTable(table))
}

// submitRequest is the POST /v1/discoveries body. Zero-valued optional
// fields fall back to core.DefaultConfig (and the lake's DRG defaults).
type submitRequest struct {
	// Lake is the registered lake id (required).
	Lake string `json:"lake"`
	// Base and Label name the base table and its label column (required).
	Base  string `json:"base"`
	Label string `json:"label"`
	// Model optionally names the model trained on the top-k paths;
	// empty returns the ranking alone.
	Model string `json:"model,omitempty"`
	// Matcher and Threshold override the lake's DRG defaults per request.
	Matcher   string  `json:"matcher,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	// Discovery hyper-parameters (0 = default).
	Tau      float64 `json:"tau,omitempty"`
	Kappa    int     `json:"kappa,omitempty"`
	TopK     int     `json:"topk,omitempty"`
	Depth    int     `json:"depth,omitempty"`
	Beam     int     `json:"beam,omitempty"`
	Workers  int     `json:"workers,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	MaxPaths int     `json:"max_paths,omitempty"`
	// Budgets (0 = service default timeout / unlimited).
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	BudgetJoins    int     `json:"budget_joins,omitempty"`
	BudgetRows     int64   `json:"budget_rows,omitempty"`
}

// config resolves the request's overrides over core.DefaultConfig.
func (r submitRequest) config(def time.Duration) core.Config {
	cfg := core.DefaultConfig()
	if r.Tau > 0 {
		cfg.Tau = r.Tau
	}
	if r.Kappa > 0 {
		cfg.Kappa = r.Kappa
	}
	if r.TopK > 0 {
		cfg.TopK = r.TopK
	}
	if r.Depth > 0 {
		cfg.MaxDepth = r.Depth
	}
	if r.Beam > 0 {
		cfg.BeamWidth = r.Beam
	}
	if r.Workers > 0 {
		cfg.Workers = r.Workers
	}
	if r.Seed != 0 {
		cfg.Seed = r.Seed
	}
	if r.MaxPaths > 0 {
		cfg.MaxPaths = r.MaxPaths
	}
	cfg.Timeout = def
	if r.TimeoutSeconds > 0 {
		cfg.Timeout = time.Duration(r.TimeoutSeconds * float64(time.Second))
	}
	cfg.MaxEvalJoins = r.BudgetJoins
	cfg.MaxJoinedRows = r.BudgetRows
	return cfg
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.Lake == "" || req.Base == "" || req.Label == "" {
		writeError(w, http.StatusBadRequest, "lake, base and label are required")
		return
	}
	s.mu.Lock()
	entry := s.lakes[req.Lake]
	s.mu.Unlock()
	if entry == nil {
		writeError(w, http.StatusNotFound, "unknown lake "+req.Lake)
		return
	}
	// Queue-depth admission control: reject beyond the configured
	// backlog instead of buffering unboundedly. The machine-readable
	// retry_after_seconds mirrors the Retry-After header.
	if int(s.queued.Load()) >= s.cfg.QueueDepth {
		retry := s.retryAfterSeconds()
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":               "job queue is full",
			"retry_after_seconds": retry,
		})
		return
	}

	cfg := req.config(s.cfg.DefaultTimeout)
	cfg.Telemetry = s.cfg.Collector
	cfg.Logger = s.cfg.Logger
	lreq := lake.Request{
		Base:      req.Base,
		Label:     req.Label,
		Model:     req.Model,
		Matcher:   lake.MatcherKind(req.Matcher),
		Threshold: req.Threshold,
		Config:    &cfg,
	}

	// The job outlives the HTTP request, so detach its context from the
	// request's cancellation while keeping the trace identity the obsrv
	// middleware (or an inbound traceparent) put there.
	jctx, jobSpan := telemetry.StartSpan(context.WithoutCancel(r.Context()), s.cfg.Collector, telemetry.SpanJob)
	ctx, cancel := context.WithCancel(jctx)
	s.mu.Lock()
	s.nextJob++
	j := &job{
		id:        fmt.Sprintf("disc-%06d", s.nextJob),
		lakeID:    req.Lake,
		req:       lreq,
		cancel:    cancel,
		span:      jobSpan,
		state:     StateQueued,
		submitted: time.Now(),
	}
	if sc := jobSpan.Context(); sc.IsValid() {
		j.traceID = sc.Trace.String()
	}
	jobSpan.SetStr("id", j.id)
	jobSpan.SetStr("lake", req.Lake)
	jobSpan.SetStr("base", req.Base)
	if s.cfg.Logger != nil {
		lg := s.cfg.Logger.With("run_id", j.id)
		if j.traceID != "" {
			lg = lg.With("trace_id", j.traceID)
		}
		cfg.Logger = lg
	}
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	s.mu.Unlock()

	s.queued.Add(1)
	s.wg.Add(1)
	go s.runJob(ctx, j, entry.lake)

	s.log.Info("discovery submitted", "id", j.id, "lake", req.Lake, "base", req.Base, "model", req.Model, "trace_id", j.traceID)
	w.Header().Set("Location", "/v1/discoveries/"+j.id)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": j.id, "state": StateQueued})
}

// retryAfterSeconds estimates when a queue slot may free up: one second
// per running job is a deliberately crude but monotone signal.
func (s *Service) retryAfterSeconds() int {
	n := len(s.sem)
	if n < 1 {
		n = 1
	}
	return n
}

// runJob is the scheduler goroutine of one job: acquire a slot, run the
// discovery against the lake session, record the outcome.
func (s *Service) runJob(ctx context.Context, j *job, l *lake.Lake) {
	defer s.wg.Done()
	defer j.cancel()
	mx := s.cfg.Collector.Meter()
	_, waitSpan := telemetry.StartSpan(ctx, s.cfg.Collector, telemetry.SpanQueueWait)
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-ctx.Done():
		// Cancelled while still queued: never ran.
		waitSpan.SetStr("outcome", "cancelled")
		waitSpan.End()
		s.queued.Add(-1)
		j.mu.Lock()
		j.state = StateCancelled
		j.finished = time.Now()
		j.mu.Unlock()
		j.span.SetStr("state", StateCancelled)
		j.span.End()
		return
	}
	waitSpan.End()
	mx.Observe(telemetry.HistQueueWaitSeconds, time.Since(j.submitted).Seconds())
	s.queued.Add(-1)

	prog := obsrv.NewRunProgress(j.id)
	s.srv.Register(prog)
	hits, misses := l.CacheStats()
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	j.hitsBefore, j.missesBefore = hits, misses
	cfg := *j.req.Config
	cfg.Progress = prog
	j.req.Config = &cfg
	req := j.req
	j.mu.Unlock()

	res, err := l.Discover(ctx, req)

	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err != nil:
		j.state = StateFailed
		j.err = err.Error()
		s.log.Warn("discovery failed", "id", j.id, "trace_id", j.traceID, "error", err)
	case j.cancelRequested:
		j.state = StateCancelled
		j.result = res
		s.log.Info("discovery cancelled", "id", j.id, "trace_id", j.traceID, "paths", len(res.Ranking.Paths))
	default:
		j.state = StateDone
		j.result = res
		s.log.Info("discovery finished", "id", j.id, "trace_id", j.traceID,
			"paths", len(res.Ranking.Paths), "partial", res.Ranking.Partial,
			"warm_graph", res.WarmGraph, "duration", j.finished.Sub(j.started))
	}
	state := j.state
	submitted := j.submitted
	j.mu.Unlock()

	mx.Observe(telemetry.HistTimeToResultSeconds, time.Since(submitted).Seconds())
	j.span.SetStr("state", state)
	j.span.End()
	s.updateLakeGauges(j.lakeID, l)
}

// resultDoc is the result section of a job document.
type resultDoc struct {
	Paths            int     `json:"paths"`
	Explored         int     `json:"explored"`
	Pruned           int     `json:"pruned"`
	Partial          bool    `json:"partial"`
	PartialReason    string  `json:"partial_reason,omitempty"`
	BestPath         string  `json:"best_path,omitempty"`
	BestAccuracy     float64 `json:"best_accuracy,omitempty"`
	BestAUC          float64 `json:"best_auc,omitempty"`
	Evaluated        int     `json:"evaluated,omitempty"`
	SelectionSeconds float64 `json:"selection_seconds"`
	TotalSeconds     float64 `json:"total_seconds,omitempty"`
	GraphNodes       int     `json:"graph_nodes"`
	GraphEdges       int     `json:"graph_edges"`
	WarmGraph        bool    `json:"warm_graph"`
	CacheHits        int64   `json:"cache_hits"`
	CacheMisses      int64   `json:"cache_misses"`
	CacheHitsDelta   int64   `json:"cache_hits_delta"`
	CacheMissesDelta int64   `json:"cache_misses_delta"`
}

// jobDoc is the GET /v1/discoveries/{id} document.
type jobDoc struct {
	ID             string     `json:"id"`
	Lake           string     `json:"lake"`
	Base           string     `json:"base"`
	Label          string     `json:"label"`
	Model          string     `json:"model,omitempty"`
	State          string     `json:"state"`
	Error          string     `json:"error,omitempty"`
	TraceID        string     `json:"trace_id,omitempty"`
	Run            string     `json:"run"`
	SubmittedUnix  int64      `json:"submitted_unix_ms"`
	StartedUnixMS  int64      `json:"started_unix_ms,omitempty"`
	FinishedUnixMS int64      `json:"finished_unix_ms,omitempty"`
	Result         *resultDoc `json:"result,omitempty"`
}

// doc renders the job's current state.
func (j *job) doc() jobDoc {
	j.mu.Lock()
	defer j.mu.Unlock()
	d := jobDoc{
		ID:            j.id,
		Lake:          j.lakeID,
		Base:          j.req.Base,
		Label:         j.req.Label,
		Model:         j.req.Model,
		State:         j.state,
		Error:         j.err,
		TraceID:       j.traceID,
		Run:           "/runs/" + j.id,
		SubmittedUnix: j.submitted.UnixMilli(),
	}
	if !j.started.IsZero() {
		d.StartedUnixMS = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		d.FinishedUnixMS = j.finished.UnixMilli()
	}
	if r := j.result; r != nil {
		rd := &resultDoc{
			Paths:            len(r.Ranking.Paths),
			Explored:         r.Ranking.PathsExplored,
			Pruned:           r.Ranking.Prune.Total(),
			Partial:          r.Ranking.Partial,
			PartialReason:    r.Ranking.PartialReason,
			SelectionSeconds: r.Ranking.SelectionTime.Seconds(),
			GraphNodes:       r.GraphNodes,
			GraphEdges:       r.GraphEdges,
			WarmGraph:        r.WarmGraph,
			CacheHits:        r.CacheHits,
			CacheMisses:      r.CacheMisses,
			CacheHitsDelta:   r.CacheHits - j.hitsBefore,
			CacheMissesDelta: r.CacheMisses - j.missesBefore,
		}
		if a := r.Augment; a != nil {
			rd.Partial = a.Partial
			rd.PartialReason = a.PartialReason
			rd.BestPath = a.Best.Path.String()
			rd.BestAccuracy = a.Best.Eval.Accuracy
			rd.BestAUC = a.Best.Eval.AUC
			rd.Evaluated = len(a.Evaluated)
			rd.TotalSeconds = a.TotalTime.Seconds()
		}
		d.Result = rd
	}
	return d
}

func (s *Service) jobByID(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Service) handleJobList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobOrder))
	for _, id := range s.jobOrder {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	docs := make([]jobDoc, 0, len(jobs))
	for _, j := range jobs {
		docs = append(docs, j.doc())
	}
	writeJSON(w, http.StatusOK, map[string]any{"discoveries": docs})
}

func (s *Service) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		http.NotFound(w, r)
		return
	}
	writeJSON(w, http.StatusOK, j.doc())
}

func (s *Service) handleJobManifest(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		http.NotFound(w, r)
		return
	}
	j.mu.Lock()
	var m *core.Manifest
	if j.result != nil {
		m = j.result.Manifest
	}
	j.mu.Unlock()
	if m == nil {
		writeError(w, http.StatusConflict, "job has no result yet")
		return
	}
	writeJSON(w, http.StatusOK, m)
}

func (s *Service) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		http.NotFound(w, r)
		return
	}
	j.mu.Lock()
	terminal := j.state == StateDone || j.state == StateFailed || j.state == StateCancelled
	if !terminal {
		j.cancelRequested = true
	}
	j.mu.Unlock()
	if terminal {
		writeJSON(w, http.StatusConflict, j.doc())
		return
	}
	j.cancel()
	s.log.Info("discovery cancel requested", "id", j.id)
	writeJSON(w, http.StatusAccepted, j.doc())
}

// writeJSON writes v as indented JSON with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes a JSON error body with the given status.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
