package serve

// Cluster coordinator: the scale-out half of the discovery service.
// One coordinator process owns routing and admission; N worker
// processes (plain Services with a cluster Agent mounted) own the
// resident lake sessions and run the jobs. The pieces:
//
//   - membership: workers announce themselves with periodic heartbeats
//     (POST /cluster/v1/heartbeat); a worker silent past the timeout is
//     declared dead, one that reports again rejoins.
//   - placement: lakes are assigned to workers by rendezvous hashing
//     over (worker id, lake id) — every node computes the same owner
//     from the same membership view, no coordination state needed.
//   - routing: /v1/lakes and /v1/discoveries keep their single-node
//     contract; the coordinator forwards each request to the owner of
//     the lake it names, propagating the W3C traceparent so span trees
//     cross the hop.
//   - durability: every admitted job lands in the replicated JSON job
//     store (jobstore.go) before dispatch; when a worker dies, its
//     queued and unacknowledged-dispatched jobs are re-dispatched to
//     the lake's next owner with bounded backoff. Deterministic
//     rankings make the re-run safe: the result is bit-identical.
//   - admission: per-tenant in-flight quotas (X-Tenant header) layered
//     on top of each worker's own QueueDepth 429 admission control.

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"autofeat/internal/obsrv"
	"autofeat/internal/telemetry"
)

// heartbeatMsg is the worker -> coordinator heartbeat body (POST
// /cluster/v1/heartbeat) and, minus the transient load fields, the
// worker's GET /cluster/v1/info document.
type heartbeatMsg struct {
	// Proto is the wire-protocol version (ProtoVersion).
	Proto string `json:"proto"`
	// ID is the worker's stable identity; Addr its advertised base URL
	// (scheme://host:port) the coordinator dials back.
	ID   string `json:"id"`
	Addr string `json:"addr"`
	// Lakes lists the lake ids the worker currently holds resident.
	Lakes []string `json:"lakes"`
	// Queued, Running and Slots describe the worker's scheduler load.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	Slots   int `json:"slots"`
	// Draining marks a worker that stopped admitting new jobs; it stays
	// a member but is skipped for new placements.
	Draining bool `json:"draining,omitempty"`
}

// workerState is the coordinator's view of one worker.
type workerState struct {
	heartbeatMsg
	lastSeen time.Time
	alive    bool
}

// workerDoc is one entry of the GET /cluster/v1/workers response.
type workerDoc struct {
	ID               string   `json:"id"`
	Addr             string   `json:"addr"`
	Alive            bool     `json:"alive"`
	Draining         bool     `json:"draining,omitempty"`
	Lakes            []string `json:"lakes"`
	Queued           int      `json:"queued"`
	Running          int      `json:"running"`
	Slots            int      `json:"slots"`
	LastSeenUnixMS   int64    `json:"last_seen_unix_ms"`
	SecondsSinceSeen float64  `json:"seconds_since_seen"`
}

// clusterLakeDoc is one entry of the coordinator's GET /v1/lakes
// response: the stored registration plus its current placement.
type clusterLakeDoc struct {
	ID        string  `json:"id"`
	Dir       string  `json:"dir"`
	Matcher   string  `json:"matcher,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	Worker    string  `json:"worker,omitempty"`
	Tables    int     `json:"tables,omitempty"`
}

// clusterJobDoc is the coordinator's job document (GET
// /v1/discoveries/{id}): the cluster-level routing state wrapping the
// worker's own jobDoc once one exists.
type clusterJobDoc struct {
	ID              string          `json:"id"`
	Lake            string          `json:"lake"`
	Tenant          string          `json:"tenant,omitempty"`
	State           string          `json:"state"`
	Worker          string          `json:"worker,omitempty"`
	WorkerJob       string          `json:"worker_job,omitempty"`
	Attempts        int             `json:"attempts"`
	Rerouted        int             `json:"rerouted"`
	Error           string          `json:"error,omitempty"`
	SubmittedUnixMS int64           `json:"submitted_unix_ms"`
	Job             json.RawMessage `json:"job,omitempty"`
}

// ClusterConfig sizes and wires a Coordinator.
type ClusterConfig struct {
	// HeartbeatTimeout is the silence after which a worker is declared
	// dead and its queued jobs reroute. 0 defaults to 10s.
	HeartbeatTimeout time.Duration
	// SweepInterval is the background membership/dispatch sweep period.
	// 0 defaults to HeartbeatTimeout / 4.
	SweepInterval time.Duration
	// RetryBackoff is the base delay before re-dispatching a job whose
	// dispatch failed or was rejected; it doubles per attempt and is
	// capped at 8x (bounded backoff). 0 defaults to 250ms.
	RetryBackoff time.Duration
	// TenantQuota bounds each tenant's in-flight (queued + dispatched)
	// jobs; submissions beyond it get 429. 0 = unlimited.
	TenantQuota int
	// StorePath is the job-store JSON file; "" keeps the store in
	// memory (queued jobs then survive worker deaths but not a
	// coordinator restart).
	StorePath string
	// StoreRetention caps how many terminal job documents the job store
	// retains (oldest evicted FIFO, surfaced as
	// cluster.store_jobs_evicted). 0 = unbounded.
	StoreRetention int
	// Collector receives the cluster.* metrics; Logger the lifecycle
	// records. Both may be nil.
	Collector *telemetry.Collector
	Logger    *slog.Logger
	// Traces, when non-nil, is the coordinator's own span store: it
	// holds the relay and dispatch spans that GET /v1/traces/{id}
	// merges with worker-held spans into one cross-node tree. Attach it
	// to the Collector with ObserveSpans; leave the obsrv server's
	// Traces nil so the coordinator's federated routes own the
	// /v1/traces patterns.
	Traces *telemetry.TraceStore
	// Events is the cluster event journal served at
	// GET /v1/cluster/events; nil gets a DefaultEventLogSize ring
	// mirroring to Logger.
	Events *telemetry.EventLog
	// NodeID labels the coordinator's own series in the federated
	// metrics exposition. "" defaults to "coordinator".
	NodeID string
	// Client performs all coordinator -> worker HTTP; nil defaults to a
	// 30s-timeout client.
	Client *http.Client

	// clock overrides time.Now in tests.
	clock func() time.Time
}

// Coordinator is the cluster's routing node: membership table,
// replicated job store, and the proxy handlers that keep the
// single-node REST contract over many workers.
type Coordinator struct {
	cfg    ClusterConfig
	log    *slog.Logger
	client *http.Client
	store  *JobStore
	clock  func() time.Time
	events *telemetry.EventLog

	mu      sync.Mutex
	workers map[string]*workerState
	order   []string

	snapMu      sync.Mutex
	workerSnaps map[string]*telemetry.Snapshot // last federated pull, by worker ID

	draining    atomic.Bool
	replicated  atomic.Int64 // last store version pushed to workers
	lastEvicted atomic.Int64 // store evictions already counted
}

// NewCoordinator builds a Coordinator around the given job store.
func NewCoordinator(cfg ClusterConfig, store *JobStore) *Coordinator {
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 10 * time.Second
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.HeartbeatTimeout / 4
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 250 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.clock == nil {
		cfg.clock = time.Now
	}
	if cfg.NodeID == "" {
		cfg.NodeID = "coordinator"
	}
	if cfg.Events == nil {
		cfg.Events = telemetry.NewEventLog(0, cfg.Logger)
	}
	cfg.Events.SetClock(cfg.clock)
	if cfg.StoreRetention > 0 {
		store.SetRetention(cfg.StoreRetention)
	}
	return &Coordinator{
		cfg:         cfg,
		log:         telemetry.OrNop(cfg.Logger),
		client:      cfg.Client,
		store:       store,
		clock:       cfg.clock,
		events:      cfg.Events,
		workers:     map[string]*workerState{},
		workerSnaps: map[string]*telemetry.Snapshot{},
	}
}

// Events returns the coordinator's cluster event journal.
func (c *Coordinator) Events() *telemetry.EventLog { return c.events }

// Store returns the coordinator's job store.
func (c *Coordinator) Store() *JobStore { return c.store }

// Mount registers the coordinator's routes — the single-node /v1 API,
// now routed, plus the cluster control plane — on the introspection
// server's mux.
func (c *Coordinator) Mount(srv *obsrv.Server) {
	srv.Handle("POST /v1/lakes", http.HandlerFunc(c.handleLakeCreate))
	srv.Handle("GET /v1/lakes", http.HandlerFunc(c.handleLakeList))
	srv.Handle("POST /v1/lakes/{id}/tables", http.HandlerFunc(c.handleLakeProxy))
	srv.Handle("DELETE /v1/lakes/{id}/tables/{table}", http.HandlerFunc(c.handleLakeProxy))
	srv.Handle("POST /v1/discoveries", http.HandlerFunc(c.handleSubmit))
	srv.Handle("GET /v1/discoveries", http.HandlerFunc(c.handleJobList))
	srv.Handle("GET /v1/discoveries/{id}", http.HandlerFunc(c.handleJobGet))
	srv.Handle("GET /v1/discoveries/{id}/manifest", http.HandlerFunc(c.handleJobManifest))
	srv.Handle("DELETE /v1/discoveries/{id}", http.HandlerFunc(c.handleJobCancel))
	srv.Handle("POST /cluster/v1/heartbeat", http.HandlerFunc(c.handleHeartbeat))
	srv.Handle("GET /cluster/v1/workers", http.HandlerFunc(c.handleWorkers))
	srv.Handle("GET /cluster/v1/jobs", http.HandlerFunc(c.handleStoreDump))
	srv.Handle("GET /v1/cluster/metrics", http.HandlerFunc(c.handleClusterMetrics))
	srv.Handle("GET /v1/cluster/events", http.HandlerFunc(c.handleClusterEvents))
	srv.Handle("GET /v1/cluster/status", http.HandlerFunc(c.handleClusterStatus))
	srv.Handle("GET /v1/traces", http.HandlerFunc(c.handleTraceList))
	srv.Handle("GET /v1/traces/{id}", http.HandlerFunc(c.handleFederatedTrace))
}

// Run drives the coordinator's background loop — membership sweeps,
// queued-job dispatch, store replication — until ctx is cancelled.
func (c *Coordinator) Run(ctx context.Context) {
	t := time.NewTicker(c.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.Sweep()
		}
	}
}

// Drain stops admission: new submissions and lake registrations get
// 503 while already-dispatched jobs keep running on their workers. Pair
// it with draining each worker for a whole-cluster drain.
func (c *Coordinator) Drain() { c.draining.Store(true) }

// SeedWorkers registers static peers: each address is probed with GET
// /cluster/v1/info and, when it answers, joins the membership table
// immediately instead of waiting for its first heartbeat.
func (c *Coordinator) SeedWorkers(addrs []string) {
	for _, addr := range addrs {
		info, err := c.fetchInfo(addr)
		if err != nil {
			c.log.Warn("cluster seed peer unreachable", "addr", addr, "error", err)
			continue
		}
		c.observeHeartbeat(*info)
	}
}

// fetchInfo retrieves a worker's identity document.
func (c *Coordinator) fetchInfo(addr string) (*heartbeatMsg, error) {
	resp, err := c.client.Get(addr + "/cluster/v1/info")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: %s/cluster/v1/info: status %d", addr, resp.StatusCode)
	}
	var info heartbeatMsg
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	if err := CheckProto(info.Proto); err != nil {
		return nil, err
	}
	if info.Addr == "" {
		info.Addr = addr
	}
	return &info, nil
}

// observeHeartbeat folds one heartbeat into the membership table and
// refreshes the cluster gauges.
func (c *Coordinator) observeHeartbeat(hb heartbeatMsg) {
	now := c.clock()
	c.mu.Lock()
	w, ok := c.workers[hb.ID]
	joined, rejoined := false, false
	if !ok {
		w = &workerState{}
		c.workers[hb.ID] = w
		c.order = append(c.order, hb.ID)
		joined = true
	} else if !w.alive {
		rejoined = true
	}
	w.heartbeatMsg = hb
	w.lastSeen = now
	w.alive = true
	c.mu.Unlock()
	if joined {
		c.events.Record(telemetry.Event{Type: telemetry.EventWorkerJoined, Node: hb.ID, Detail: hb.Addr})
	}
	if rejoined {
		c.events.Record(telemetry.Event{Type: telemetry.EventWorkerRejoined, Node: hb.ID, Detail: hb.Addr})
	}
	c.cfg.Collector.Meter().Inc(telemetry.CtrClusterHeartbeats)
	c.updateGauges()
}

// aliveWorkers snapshots the workers eligible for new placements (alive
// and not draining), plus the full alive set.
func (c *Coordinator) aliveWorkers() (placeable []workerState, alive int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.order {
		w := c.workers[id]
		if !w.alive {
			continue
		}
		alive++
		if !w.Draining {
			placeable = append(placeable, *w)
		}
	}
	return placeable, alive
}

// workerByID returns a copy of the worker's state.
func (c *Coordinator) workerByID(id string) (workerState, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[id]; ok {
		return *w, true
	}
	return workerState{}, false
}

// ownerFor picks the lake's current owner by rendezvous (highest
// random weight) hashing over the placeable workers: each worker's
// score is FNV-1a over (worker id, 0, lake id) and the highest score
// wins, with the lexically smallest id breaking exact ties. Every node
// with the same membership view computes the same owner, and removing
// a worker only moves the lakes that worker owned.
func (c *Coordinator) ownerFor(lakeID string) (workerState, bool) {
	workers, _ := c.aliveWorkers()
	var best workerState
	var bestScore uint64
	found := false
	for _, w := range workers {
		h := fnv.New64a()
		_, _ = io.WriteString(h, w.ID)
		_, _ = h.Write([]byte{0})
		_, _ = io.WriteString(h, lakeID)
		score := h.Sum64()
		if !found || score > bestScore || (score == bestScore && w.ID < best.ID) {
			best, bestScore, found = w, score, true
		}
	}
	return best, found
}

// updateGauges refreshes the cluster-level metrics: live workers, store
// size, per-worker lake placement counts, and the store's eviction
// counter.
func (c *Coordinator) updateGauges() {
	mx := c.cfg.Collector.Meter()
	_, alive := c.aliveWorkers()
	mx.SetGauge(telemetry.GaugeClusterWorkersUp, float64(alive))
	mx.SetGauge(telemetry.GaugeClusterStoreJobs, float64(c.store.Len()))
	// Fold the store's cumulative eviction count into the counter (and
	// the journal) exactly once per eviction, even with concurrent
	// callers: only the CAS winner adds the delta.
	if evicted := c.store.Evicted(); evicted > 0 {
		for {
			last := c.lastEvicted.Load()
			if evicted <= last {
				break
			}
			if c.lastEvicted.CompareAndSwap(last, evicted) {
				mx.Add(telemetry.CtrClusterStoreJobsEvicted, evicted-last)
				c.events.Record(telemetry.Event{
					Type:   telemetry.EventJobsEvicted,
					Detail: fmt.Sprintf("%d terminal job docs evicted (retention cap %d)", evicted-last, c.cfg.StoreRetention),
				})
				break
			}
		}
	}
	counts := map[string]int{}
	for _, l := range c.store.Lakes() {
		if owner, ok := c.ownerFor(l.ID); ok {
			counts[owner.ID]++
		}
	}
	c.mu.Lock()
	ids := append([]string(nil), c.order...)
	c.mu.Unlock()
	for _, id := range ids {
		mx.SetGauge(telemetry.GaugeClusterLakesPrefix+id, float64(counts[id]))
	}
}

// forward sends method+path with the given body to a worker,
// propagating the trace context (explicit traceparent wins, else the
// request context's current span). The caller owns the response.
func (c *Coordinator) forward(ctx context.Context, w workerState, method, path, traceparent string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = jsonReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, w.Addr+path, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent == "" {
		if sc, ok := telemetry.SpanContextFrom(ctx); ok {
			traceparent = sc.Traceparent()
		}
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	return c.client.Do(req)
}

// jsonReader wraps raw bytes for re-sending.
func jsonReader(b []byte) io.Reader { return &byteReader{b: b} }

// byteReader is a minimal one-shot reader over a byte slice.
type byteReader struct{ b []byte }

// Read implements io.Reader.
func (r *byteReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// relay copies a worker response (status, Retry-After, body) through to
// the client — routed errors like a worker's 429 keep their
// machine-readable body and headers intact.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	if loc := resp.Header.Get("Location"); loc != "" {
		w.Header().Set("Location", loc)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// handleLakeCreate registers a lake cluster-wide: record it in the
// store, open it on its rendezvous owner, answer with the placement.
func (c *Coordinator) handleLakeCreate(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "cluster is draining")
		return
	}
	var req lakeCreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.Dir == "" {
		writeError(w, http.StatusBadRequest, "dir is required")
		return
	}
	stored := c.store.AddLake(StoredLake{ID: req.ID, Dir: req.Dir, Matcher: req.Matcher, Threshold: req.Threshold})
	owner, ok := c.ownerFor(stored.ID)
	if !ok {
		// Recorded but not yet placed; the first worker to join picks it
		// up when a job arrives.
		writeJSON(w, http.StatusCreated, clusterLakeDoc{ID: stored.ID, Dir: stored.Dir, Matcher: stored.Matcher, Threshold: stored.Threshold})
		return
	}
	tables, err := c.openLakeOn(r.Context(), owner, *stored)
	if err != nil {
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	c.updateGauges()
	c.log.Info("cluster lake registered", "lake", stored.ID, "dir", stored.Dir, "worker", owner.ID)
	writeJSON(w, http.StatusCreated, clusterLakeDoc{
		ID: stored.ID, Dir: stored.Dir, Matcher: stored.Matcher,
		Threshold: stored.Threshold, Worker: owner.ID, Tables: tables,
	})
}

// openLakeOn opens a stored lake on the given worker under its cluster
// id, returning the worker-reported table count.
func (c *Coordinator) openLakeOn(ctx context.Context, w workerState, l StoredLake) (int, error) {
	body, _ := json.Marshal(lakeCreateRequest{ID: l.ID, Dir: l.Dir, Matcher: l.Matcher, Threshold: l.Threshold})
	resp, err := c.forward(ctx, w, http.MethodPost, "/v1/lakes", "", body)
	if err != nil {
		c.cfg.Collector.Meter().Inc(telemetry.CtrClusterProxyErrors)
		return 0, fmt.Errorf("serve: open lake %s on %s: %w", l.ID, w.ID, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return 0, fmt.Errorf("serve: open lake %s on %s: status %d: %s", l.ID, w.ID, resp.StatusCode, b)
	}
	var doc lakeDoc
	_ = json.NewDecoder(resp.Body).Decode(&doc)
	c.noteWorkerLake(w.ID, l.ID)
	return doc.Tables, nil
}

// noteWorkerLake records that a worker now holds a lake, without
// waiting for its next heartbeat to say so.
func (c *Coordinator) noteWorkerLake(workerID, lakeID string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[workerID]
	if !ok {
		return
	}
	for _, id := range w.Lakes {
		if id == lakeID {
			return
		}
	}
	w.Lakes = append(w.Lakes, lakeID)
}

// handleLakeList serves the cluster lake registry with current
// placements.
func (c *Coordinator) handleLakeList(w http.ResponseWriter, _ *http.Request) {
	lakes := c.store.Lakes()
	docs := make([]clusterLakeDoc, 0, len(lakes))
	for _, l := range lakes {
		d := clusterLakeDoc{ID: l.ID, Dir: l.Dir, Matcher: l.Matcher, Threshold: l.Threshold}
		if owner, ok := c.ownerFor(l.ID); ok {
			d.Worker = owner.ID
		}
		docs = append(docs, d)
	}
	writeJSON(w, http.StatusOK, map[string]any{"lakes": docs})
}

// handleLakeProxy forwards a table mutation to the lake's owner and
// relays the response verbatim.
func (c *Coordinator) handleLakeProxy(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "cluster is draining")
		return
	}
	lakeID := r.PathValue("id")
	if c.store.LakeByID(lakeID) == nil {
		writeError(w, http.StatusNotFound, "unknown lake "+lakeID)
		return
	}
	owner, ok := c.ownerFor(lakeID)
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "no workers available")
		return
	}
	if err := c.ensureLakeOn(r.Context(), owner, lakeID); err != nil {
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	c.cfg.Collector.Meter().Inc(telemetry.CtrClusterProxied)
	resp, err := c.forward(r.Context(), owner, r.Method, r.URL.Path, "", body)
	if err != nil {
		c.cfg.Collector.Meter().Inc(telemetry.CtrClusterProxyErrors)
		writeError(w, http.StatusBadGateway, "worker "+owner.ID+": "+err.Error())
		return
	}
	relay(w, resp)
}

// ensureLakeOn opens the lake on the worker if the membership view says
// it is missing there — the lazy half of rendezvous placement, used on
// first touch and after ownership moved to a rejoined or new worker.
func (c *Coordinator) ensureLakeOn(ctx context.Context, w workerState, lakeID string) error {
	for _, id := range w.Lakes {
		if id == lakeID {
			return nil
		}
	}
	stored := c.store.LakeByID(lakeID)
	if stored == nil {
		return fmt.Errorf("serve: unknown lake %q", lakeID)
	}
	_, err := c.openLakeOn(ctx, w, *stored)
	return err
}

// tenantOf extracts the request's quota bucket.
func tenantOf(r *http.Request) string { return r.Header.Get("X-Tenant") }

// handleSubmit admits one discovery job cluster-wide: quota check,
// durable store record, then an immediate dispatch attempt. A job whose
// owner is busy or unreachable stays queued in the store and is retried
// by the sweep with bounded backoff — the submission still succeeds.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if c.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "cluster is draining")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	var req submitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.Lake == "" || req.Base == "" || req.Label == "" {
		writeError(w, http.StatusBadRequest, "lake, base and label are required")
		return
	}
	if c.store.LakeByID(req.Lake) == nil {
		writeError(w, http.StatusNotFound, "unknown lake "+req.Lake)
		return
	}
	tenant := tenantOf(r)
	if q := c.cfg.TenantQuota; q > 0 && c.store.InFlight(tenant) >= q {
		c.cfg.Collector.Meter().Inc(telemetry.CtrClusterQuotaRejected)
		c.events.Record(telemetry.Event{
			Type:   telemetry.EventQuotaRejected,
			Detail: fmt.Sprintf("tenant %q at quota %d", tenant, q),
		})
		retry := int(c.cfg.RetryBackoff/time.Second) + 1
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error":               "tenant quota exceeded",
			"retry_after_seconds": retry,
		})
		return
	}
	var traceparent string
	if sc, ok := telemetry.SpanContextFrom(r.Context()); ok {
		traceparent = sc.Traceparent()
	} else {
		traceparent = r.Header.Get("traceparent")
	}
	job := c.store.AddJob(tenant, req.Lake, body, traceparent, c.clock())
	c.log.Info("cluster job admitted", "id", job.ID, "lake", job.Lake, "tenant", tenant)
	c.dispatch(r.Context(), job.ID)
	job, _ = c.store.Job(job.ID)
	c.updateGauges()
	w.Header().Set("Location", "/v1/discoveries/"+job.ID)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": job.ID, "state": job.State})
}

// backoffFor computes the bounded retry delay after n attempts: base *
// 2^(n-1), capped at 8x base.
func (c *Coordinator) backoffFor(attempts int) time.Duration {
	d := c.cfg.RetryBackoff
	for i := 1; i < attempts && d < 8*c.cfg.RetryBackoff; i++ {
		d *= 2
	}
	if d > 8*c.cfg.RetryBackoff {
		d = 8 * c.cfg.RetryBackoff
	}
	return d
}

// dispatch tries to hand one queued job to its lake's current owner.
// Outcomes: accepted (job becomes dispatched), rejected 4xx other than
// 429 (job fails — it would fail identically anywhere), worker busy or
// unreachable (job stays queued with a bounded-backoff gate for the
// next sweep).
func (c *Coordinator) dispatch(ctx context.Context, jobID string) {
	job, ok := c.store.Job(jobID)
	if !ok || job.State != ClusterQueued {
		return
	}
	mx := c.cfg.Collector.Meter()
	owner, found := c.ownerFor(job.Lake)
	if !found {
		c.store.Update(jobID, func(j *StoredJob) {
			j.Attempts++
			j.NotBeforeUnixMS = c.clock().Add(c.backoffFor(j.Attempts)).UnixMilli()
		})
		return
	}
	if err := c.ensureLakeOn(ctx, owner, job.Lake); err != nil {
		c.retryLater(jobID, owner.ID, err.Error())
		return
	}
	if job.Attempts > 0 {
		mx.Inc(telemetry.CtrClusterDispatchRetries)
	}
	mx.Inc(telemetry.CtrClusterDispatches)
	// A traced job gets an explicit cluster.dispatch span between the
	// coordinator's relay span and the worker's serve.http span, so the
	// assembled cross-node tree reads relay -> dispatch -> worker.
	// forward picks the span's context up from dctx; untraced jobs
	// forward without one.
	dctx := ctx
	var dsp telemetry.Span
	traced := false
	if sc, ok := telemetry.ParseTraceparent(job.Traceparent); ok {
		dctx = telemetry.ContextWithRemote(ctx, sc)
		dctx, dsp = telemetry.StartSpan(dctx, c.cfg.Collector, telemetry.SpanClusterDispatch)
		dsp.SetStr("job", jobID)
		dsp.SetStr("worker", owner.ID)
		traced = true
	}
	start := c.clock()
	resp, err := c.forward(dctx, owner, http.MethodPost, "/v1/discoveries", "", job.Body)
	mx.Observe(telemetry.HistClusterDispatchSeconds, c.clock().Sub(start).Seconds())
	if traced {
		if err != nil {
			dsp.SetStr("error", err.Error())
		} else {
			dsp.SetInt("status", resp.StatusCode)
		}
		dsp.End()
	}
	if err != nil {
		mx.Inc(telemetry.CtrClusterProxyErrors)
		c.retryLater(jobID, owner.ID, err.Error())
		return
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusAccepted:
		var acc struct {
			ID string `json:"id"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&acc)
		c.store.Update(jobID, func(j *StoredJob) {
			j.State = ClusterDispatched
			j.Worker = owner.ID
			j.WorkerJob = acc.ID
			j.Attempts++
			j.NotBeforeUnixMS = 0
		})
		c.log.Info("cluster job dispatched", "id", jobID, "worker", owner.ID, "worker_job", acc.ID)
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		// Worker admission control said no; keep the job durable and let
		// the sweep retry after the backoff.
		c.retryLater(jobID, owner.ID, fmt.Sprintf("worker %s busy (status %d)", owner.ID, resp.StatusCode))
	default:
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		c.store.Update(jobID, func(j *StoredJob) {
			j.State = StateFailed
			j.Worker = owner.ID
			j.Attempts++
			j.Error = fmt.Sprintf("worker %s rejected job (status %d): %s", owner.ID, resp.StatusCode, b)
		})
		c.log.Warn("cluster job rejected by worker", "id", jobID, "worker", owner.ID, "status", resp.StatusCode)
	}
}

// retryLater re-queues a job with the bounded-backoff gate.
func (c *Coordinator) retryLater(jobID, worker, reason string) {
	now := c.clock()
	c.store.Update(jobID, func(j *StoredJob) {
		j.Attempts++
		j.NotBeforeUnixMS = now.Add(c.backoffFor(j.Attempts)).UnixMilli()
	})
	c.events.Record(telemetry.Event{Type: telemetry.EventDispatchRetry, Node: worker, Job: jobID, Detail: reason})
	c.log.Info("cluster dispatch deferred", "id", jobID, "worker", worker, "reason", reason)
}

// Sweep runs one pass of the coordinator's background maintenance:
// expire silent workers (rerouting their unfinished jobs), dispatch
// queued jobs whose backoff gate has passed, replicate the store when
// it changed, pull worker telemetry for the federated metrics view,
// refresh gauges. It is called periodically by Run and directly by
// tests.
func (c *Coordinator) Sweep() {
	now := c.clock()
	mx := c.cfg.Collector.Meter()

	// 1. Membership: declare silent workers dead.
	var died []string
	c.mu.Lock()
	for _, id := range c.order {
		w := c.workers[id]
		if w.alive && now.Sub(w.lastSeen) > c.cfg.HeartbeatTimeout {
			w.alive = false
			died = append(died, id)
		}
	}
	c.mu.Unlock()

	// 2. Reroute: a dead worker's queued and unacknowledged jobs go back
	// to the cluster queue; the next dispatch below routes them to the
	// lake's new owner. Jobs whose terminal result was already observed
	// (Result recorded in the store) are never re-run.
	for _, id := range died {
		c.log.Warn("cluster worker dead", "worker", id, "timeout", c.cfg.HeartbeatTimeout)
		c.events.Record(telemetry.Event{
			Type: telemetry.EventWorkerDead, Node: id,
			Detail: fmt.Sprintf("no heartbeat for %s", c.cfg.HeartbeatTimeout),
		})
		for _, j := range c.store.Jobs() {
			if j.Worker == id && (j.State == ClusterDispatched || j.State == ClusterQueued) {
				mx.Inc(telemetry.CtrClusterReroutedJobs)
				c.store.Update(j.ID, func(sj *StoredJob) {
					sj.State = ClusterQueued
					sj.Worker, sj.WorkerJob = "", ""
					sj.Rerouted++
					sj.NotBeforeUnixMS = 0
				})
				c.events.Record(telemetry.Event{Type: telemetry.EventJobRerouted, Node: id, Job: j.ID})
				c.log.Info("cluster job rerouted", "id", j.ID, "dead_worker", id)
			}
		}
	}

	// 3. Dispatch every ripe queued job.
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HeartbeatTimeout)
	defer cancel()
	for _, j := range c.store.Jobs() {
		if j.State == ClusterQueued && j.NotBeforeUnixMS <= now.UnixMilli() {
			c.dispatch(ctx, j.ID)
		}
	}

	// 4. Refresh dispatched jobs' states from their workers, so results
	// are durable in the store even if no client ever polls.
	for _, j := range c.store.Jobs() {
		if j.State == ClusterDispatched {
			c.refreshJob(ctx, j)
		}
	}

	// 5. Replicate the store to alive workers when it changed.
	c.replicate(ctx)

	// 6. Pull every alive worker's telemetry snapshot for the federated
	// /v1/cluster/metrics view.
	c.pullTelemetry(ctx)
	c.updateGauges()
}

// refreshJob polls a dispatched job's worker and persists the worker
// document once the job reached a terminal state. Unreachable workers
// are ignored here — the membership sweep owns declaring them dead.
func (c *Coordinator) refreshJob(ctx context.Context, j StoredJob) {
	w, ok := c.workerByID(j.Worker)
	if !ok || !w.alive {
		return
	}
	resp, err := c.forward(ctx, w, http.MethodGet, "/v1/discoveries/"+j.WorkerJob, "", nil)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return
	}
	var doc struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return
	}
	if doc.State == StateDone || doc.State == StateFailed || doc.State == StateCancelled {
		c.store.Update(j.ID, func(sj *StoredJob) {
			sj.State = doc.State
			sj.Error = doc.Error
			sj.Result = body
		})
		c.log.Info("cluster job finished", "id", j.ID, "state", doc.State, "worker", j.Worker)
	}
}

// replicate pushes the current store snapshot to every alive worker if
// the store changed since the last push.
func (c *Coordinator) replicate(ctx context.Context) {
	v := c.store.Version()
	if v == c.replicated.Load() {
		return
	}
	snap := c.store.Snapshot()
	workers, _ := c.aliveWorkers()
	pushed := 0
	for _, w := range workers {
		resp, err := c.forward(ctx, w, http.MethodPost, "/cluster/v1/jobstore", "", snap)
		if err != nil {
			c.log.Warn("cluster store replication failed", "worker", w.ID, "error", err)
			continue
		}
		resp.Body.Close()
		pushed++
	}
	if pushed > 0 {
		c.events.Record(telemetry.Event{
			Type:   telemetry.EventReplicationPush,
			Detail: fmt.Sprintf("store version %d pushed to %d workers", v, pushed),
		})
	}
	c.replicated.Store(v)
}

// clusterJob renders one stored job as the coordinator's job document.
func clusterJob(j StoredJob) clusterJobDoc {
	return clusterJobDoc{
		ID: j.ID, Lake: j.Lake, Tenant: j.Tenant, State: j.State,
		Worker: j.Worker, WorkerJob: j.WorkerJob,
		Attempts: j.Attempts, Rerouted: j.Rerouted, Error: j.Error,
		SubmittedUnixMS: j.SubmittedUnixMS, Job: j.Result,
	}
}

// handleJobList serves every cluster job from the store.
func (c *Coordinator) handleJobList(w http.ResponseWriter, _ *http.Request) {
	jobs := c.store.Jobs()
	docs := make([]clusterJobDoc, 0, len(jobs))
	for _, j := range jobs {
		docs = append(docs, clusterJob(j))
	}
	writeJSON(w, http.StatusOK, map[string]any{"discoveries": docs})
}

// handleJobGet serves one cluster job, live-refreshing a dispatched
// job from its worker first so clients see current state.
func (c *Coordinator) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := c.store.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	if j.State == ClusterDispatched {
		c.cfg.Collector.Meter().Inc(telemetry.CtrClusterProxied)
		c.refreshLiveDoc(r.Context(), &j)
	}
	writeJSON(w, http.StatusOK, clusterJob(j))
}

// refreshLiveDoc fetches a dispatched job's current worker document
// into j.Job (persisting terminal states) without failing the request
// when the worker is unreachable.
func (c *Coordinator) refreshLiveDoc(ctx context.Context, j *StoredJob) {
	wk, ok := c.workerByID(j.Worker)
	if !ok || !wk.alive {
		return
	}
	resp, err := c.forward(ctx, wk, http.MethodGet, "/v1/discoveries/"+j.WorkerJob, "", nil)
	if err != nil {
		c.cfg.Collector.Meter().Inc(telemetry.CtrClusterProxyErrors)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return
	}
	var doc struct {
		State string `json:"state"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return
	}
	j.Result = body
	if doc.State == StateDone || doc.State == StateFailed || doc.State == StateCancelled {
		j.State = doc.State
		j.Error = doc.Error
		c.store.Update(j.ID, func(sj *StoredJob) {
			sj.State = doc.State
			sj.Error = doc.Error
			sj.Result = body
		})
	}
}

// handleJobManifest proxies the manifest request to the worker holding
// the job.
func (c *Coordinator) handleJobManifest(w http.ResponseWriter, r *http.Request) {
	j, ok := c.store.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
		return
	}
	if j.WorkerJob == "" {
		writeError(w, http.StatusConflict, "job has not been dispatched yet")
		return
	}
	wk, ok := c.workerByID(j.Worker)
	if !ok || !wk.alive {
		writeError(w, http.StatusBadGateway, "worker "+j.Worker+" is not reachable")
		return
	}
	c.cfg.Collector.Meter().Inc(telemetry.CtrClusterProxied)
	resp, err := c.forward(r.Context(), wk, http.MethodGet, "/v1/discoveries/"+j.WorkerJob+"/manifest", "", nil)
	if err != nil {
		c.cfg.Collector.Meter().Inc(telemetry.CtrClusterProxyErrors)
		writeError(w, http.StatusBadGateway, "worker "+j.Worker+": "+err.Error())
		return
	}
	relay(w, resp)
}

// handleJobCancel cancels a cluster job: a still-queued job is
// terminally cancelled in the store; a dispatched one forwards the
// cancel to its worker.
func (c *Coordinator) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := c.store.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	switch j.State {
	case ClusterQueued:
		c.store.Update(id, func(sj *StoredJob) { sj.State = StateCancelled })
		j, _ = c.store.Job(id)
		writeJSON(w, http.StatusAccepted, clusterJob(j))
	case ClusterDispatched:
		wk, okw := c.workerByID(j.Worker)
		if !okw || !wk.alive {
			// Worker gone: the reroute sweep owns this job now; cancel it
			// at the cluster level so it never re-dispatches.
			c.store.Update(id, func(sj *StoredJob) { sj.State = StateCancelled })
			j, _ = c.store.Job(id)
			writeJSON(w, http.StatusAccepted, clusterJob(j))
			return
		}
		c.cfg.Collector.Meter().Inc(telemetry.CtrClusterProxied)
		resp, err := c.forward(r.Context(), wk, http.MethodDelete, "/v1/discoveries/"+j.WorkerJob, "", nil)
		if err != nil {
			c.cfg.Collector.Meter().Inc(telemetry.CtrClusterProxyErrors)
			writeError(w, http.StatusBadGateway, "worker "+j.Worker+": "+err.Error())
			return
		}
		relay(w, resp)
	default:
		writeJSON(w, http.StatusConflict, clusterJob(j))
	}
}

// handleHeartbeat ingests one worker heartbeat.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var hb heartbeatMsg
	if err := json.NewDecoder(r.Body).Decode(&hb); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if err := CheckProto(hb.Proto); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if hb.ID == "" || hb.Addr == "" {
		writeError(w, http.StatusBadRequest, "id and addr are required")
		return
	}
	c.observeHeartbeat(hb)
	writeJSON(w, http.StatusOK, map[string]any{"proto": ProtoVersion, "ok": true})
}

// handleWorkers serves the coordinator's membership view.
func (c *Coordinator) handleWorkers(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"proto": ProtoVersion, "workers": c.workerDocs()})
}

// handleStoreDump serves the raw job-store snapshot — the debugging
// and coordinator-recovery view of the replicated queue.
func (c *Coordinator) handleStoreDump(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(c.store.Snapshot())
}
