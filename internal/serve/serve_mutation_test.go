package serve

import (
	"net/http"
	"testing"

	"autofeat/internal/telemetry"
)

func doDelete(t *testing.T, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestTableMutationEndpoints(t *testing.T) {
	col := telemetry.New()
	st := newStack(t, Config{Workers: 1, Collector: col})
	base := st.ts.URL + "/v1/lakes/lake-test/tables"
	nTables := len(st.lake.Tables())

	// Register a new table.
	var doc tableMutationDoc
	resp := postJSON(t, base, tableUpsertRequest{Name: "extra", CSV: "k,v\n1,10\n2,20\n3,30\n4,40\n"}, &doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
	if doc.Op != "register" || doc.Table != "extra" || doc.Tables != nTables+1 || doc.Mutations != 1 {
		t.Fatalf("register doc: %+v", doc)
	}
	if st.lake.Table("extra") == nil {
		t.Fatal("registered table not resident")
	}

	// Duplicate register conflicts.
	resp = postJSON(t, base, tableUpsertRequest{Name: "extra", CSV: "k\n1\n"}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register: status %d", resp.StatusCode)
	}

	// Replace it.
	resp = postJSON(t, base, tableUpsertRequest{Name: "extra", CSV: "k,v\n5,50\n6,60\n7,70\n", Replace: true}, &doc)
	if resp.StatusCode != http.StatusOK || doc.Op != "replace" {
		t.Fatalf("replace: status %d doc %+v", resp.StatusCode, doc)
	}
	if got := st.lake.Table("extra").NumRows(); got != 3 {
		t.Fatalf("replacement not installed: %d rows", got)
	}

	// Drop it.
	resp = doDelete(t, base+"/extra")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drop: status %d", resp.StatusCode)
	}
	if st.lake.Table("extra") != nil {
		t.Fatal("dropped table still resident")
	}

	// Dropping again conflicts; unknown lake 404s; bad bodies 400.
	if resp = doDelete(t, base+"/extra"); resp.StatusCode != http.StatusConflict {
		t.Fatalf("double drop: status %d", resp.StatusCode)
	}
	if resp = postJSON(t, st.ts.URL+"/v1/lakes/nope/tables", tableUpsertRequest{Name: "x", CSV: "k\n1\n"}, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown lake: status %d", resp.StatusCode)
	}
	if resp = postJSON(t, base, tableUpsertRequest{Name: "x"}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing csv: status %d", resp.StatusCode)
	}
	if resp = postJSON(t, base, tableUpsertRequest{Name: "x", CSV: "a,b\n1\n"}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ragged csv: status %d", resp.StatusCode)
	}

	// Telemetry: op counters and index gauges must be in the snapshot.
	snap := col.Snapshot()
	for ctr, want := range map[string]int64{
		telemetry.CtrLakeMutationsPrefix + "register":      1,
		telemetry.CtrLakeMutationsPrefix + "replace":       1,
		telemetry.CtrLakeMutationsPrefix + "drop":          1,
		telemetry.CtrLakeMutationErrorsPrefix + "register": 1,
		telemetry.CtrLakeMutationErrorsPrefix + "drop":     1,
	} {
		if got := snap.Counters[ctr]; got != want {
			t.Errorf("counter %s = %d, want %d", ctr, got, want)
		}
	}
	if _, ok := snap.Gauges[telemetry.GaugeLakeIndexColumnsPrefix+"lake-test"]; !ok {
		t.Error("index-columns gauge missing after mutation")
	}
	if _, ok := snap.Gauges[telemetry.GaugeLakeIndexBucketsPrefix+"lake-test"]; !ok {
		t.Error("index-buckets gauge missing after mutation")
	}

	// A draining service refuses mutations.
	st.svc.draining.Store(true)
	if resp = postJSON(t, base, tableUpsertRequest{Name: "late", CSV: "k\n1\n"}, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining register: status %d", resp.StatusCode)
	}
	if resp = doDelete(t, base + "/whatever"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining drop: status %d", resp.StatusCode)
	}
}
