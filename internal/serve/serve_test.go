package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"autofeat/internal/core"
	"autofeat/internal/datagen"
	"autofeat/internal/lake"
	"autofeat/internal/obsrv"
	"autofeat/internal/telemetry"
)

// testStack is one wired service: dataset on disk, lake session,
// obsrv server and an httptest listener in front of the shared mux.
type testStack struct {
	svc  *Service
	ts   *httptest.Server
	ds   *datagen.Dataset
	dir  string
	lake *lake.Lake
}

func newStack(t *testing.T, cfg Config) *testStack {
	t.Helper()
	ds, err := datagen.Generate(datagen.SmallSpecs()[0])
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, tb := range ds.Tables {
		if err := tb.WriteCSVFile(filepath.Join(dir, tb.Name()+".csv")); err != nil {
			t.Fatal(err)
		}
	}
	if cfg.Collector == nil {
		cfg.Collector = telemetry.New()
	}
	srv := obsrv.NewServer(obsrv.Config{Collector: cfg.Collector})
	svc := New(cfg)
	svc.Mount(srv)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	l, err := lake.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc.AddLake("lake-test", l)
	return &testStack{svc: svc, ts: ts, ds: ds, dir: dir, lake: l}
}

// postJSON posts v and decodes the response body into out (if non-nil).
func postJSON(t *testing.T, url string, v any, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp
}

// waitState polls the job until it reaches a terminal state.
func waitState(t *testing.T, baseURL, id string) jobDoc {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var doc jobDoc
		getJSON(t, baseURL+"/v1/discoveries/"+id, &doc)
		switch doc.State {
		case StateDone, StateFailed, StateCancelled:
			return doc
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return jobDoc{}
}

func TestServiceEndToEnd(t *testing.T) {
	st := newStack(t, Config{Workers: 2})

	// Register a second lake over HTTP.
	var ld lakeDoc
	resp := postJSON(t, st.ts.URL+"/v1/lakes", lakeCreateRequest{Dir: st.dir}, &ld)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/lakes: status %d", resp.StatusCode)
	}
	if ld.Tables != len(st.ds.Tables) {
		t.Errorf("registered lake has %d tables, want %d", ld.Tables, len(st.ds.Tables))
	}
	var lakes struct {
		Lakes []lakeDoc `json:"lakes"`
	}
	getJSON(t, st.ts.URL+"/v1/lakes", &lakes)
	if len(lakes.Lakes) != 2 {
		t.Errorf("listed %d lakes, want 2", len(lakes.Lakes))
	}

	// Submit a full run (ranking + model training) and poll to done.
	var sub struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	resp = postJSON(t, st.ts.URL+"/v1/discoveries", submitRequest{
		Lake: ld.ID, Base: st.ds.Base.Name(), Label: st.ds.Label, Model: "lightgbm",
	}, &sub)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/discoveries: status %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/discoveries/"+sub.ID {
		t.Errorf("Location = %q", loc)
	}
	doc := waitState(t, st.ts.URL, sub.ID)
	if doc.State != StateDone {
		t.Fatalf("job state = %s (error %q), want done", doc.State, doc.Error)
	}
	if doc.Result == nil || doc.Result.Paths == 0 {
		t.Fatal("done job should carry a result with ranked paths")
	}
	if doc.Result.BestPath == "" || doc.Result.Evaluated == 0 {
		t.Error("model run should report best_path and evaluated count")
	}

	// The job's RunProgress is visible on the introspection plane.
	if r := getJSON(t, st.ts.URL+doc.Run, nil); r.StatusCode != http.StatusOK {
		t.Errorf("GET %s: status %d", doc.Run, r.StatusCode)
	}
	// And its provenance manifest is served.
	var m core.Manifest
	if r := getJSON(t, st.ts.URL+"/v1/discoveries/"+sub.ID+"/manifest", &m); r.StatusCode != http.StatusOK {
		t.Errorf("manifest: status %d", r.StatusCode)
	} else if len(m.Paths) == 0 {
		t.Error("manifest should carry path lineage")
	}

	var list struct {
		Discoveries []jobDoc `json:"discoveries"`
	}
	getJSON(t, st.ts.URL+"/v1/discoveries", &list)
	if len(list.Discoveries) != 1 {
		t.Errorf("listed %d discoveries, want 1", len(list.Discoveries))
	}
}

func TestSubmitValidation(t *testing.T) {
	st := newStack(t, Config{Workers: 1})
	if r := postJSON(t, st.ts.URL+"/v1/discoveries", submitRequest{Lake: "lake-test"}, nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("missing base/label: status %d, want 400", r.StatusCode)
	}
	if r := postJSON(t, st.ts.URL+"/v1/discoveries", submitRequest{Lake: "nope", Base: "b", Label: "l"}, nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown lake: status %d, want 404", r.StatusCode)
	}
	resp, err := http.Post(st.ts.URL+"/v1/discoveries", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", resp.StatusCode)
	}
	if r := getJSON(t, st.ts.URL+"/v1/discoveries/disc-999999", nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", r.StatusCode)
	}
	if r := postJSON(t, st.ts.URL+"/v1/lakes", lakeCreateRequest{Dir: t.TempDir()}, nil); r.StatusCode != http.StatusBadRequest {
		t.Errorf("empty lake dir: status %d, want 400", r.StatusCode)
	}
}

// TestConcurrentJobsShareCaches is the cross-request caching invariant,
// end to end: two overlapping jobs against one lake session race freely
// (run under -race), a follow-up job sees warm cache hits, and every
// served ranking is bit-identical to a cold single-process run.
func TestConcurrentJobsShareCaches(t *testing.T) {
	st := newStack(t, Config{Workers: 2, QueueDepth: 8})
	req := submitRequest{Lake: "lake-test", Base: st.ds.Base.Name(), Label: st.ds.Label}

	// Two overlapping jobs on one Lake.
	var a, b struct {
		ID string `json:"id"`
	}
	postJSON(t, st.ts.URL+"/v1/discoveries", req, &a)
	postJSON(t, st.ts.URL+"/v1/discoveries", req, &b)
	docA := waitState(t, st.ts.URL, a.ID)
	docB := waitState(t, st.ts.URL, b.ID)
	if docA.State != StateDone || docB.State != StateDone {
		t.Fatalf("states = %s/%s, want done/done", docA.State, docB.State)
	}

	// A third job on the now-warm lake must skip the offline phase and
	// reuse cached join indexes.
	var c struct {
		ID string `json:"id"`
	}
	postJSON(t, st.ts.URL+"/v1/discoveries", req, &c)
	docC := waitState(t, st.ts.URL, c.ID)
	if docC.State != StateDone {
		t.Fatalf("warm job state = %s", docC.State)
	}
	if !docC.Result.WarmGraph {
		t.Error("warm job should reuse the memoised DRG")
	}
	if docC.Result.CacheHitsDelta <= 0 {
		t.Errorf("warm job cache_hits_delta = %d, want > 0", docC.Result.CacheHitsDelta)
	}

	// Bit-identical to a cold single-process run of the same request.
	coldLake := lake.New(st.ds.Tables)
	cold, err := coldLake.Discover(context.Background(), lake.Request{Base: st.ds.Base.Name(), Label: st.ds.Label})
	if err != nil {
		t.Fatal(err)
	}
	want := rankingKey(cold.Ranking)
	for _, id := range []string{a.ID, b.ID, c.ID} {
		j := st.svc.jobByID(id)
		if got := rankingKey(j.result.Ranking); got != want {
			t.Errorf("job %s ranking diverged from cold run:\nserved: %s\ncold:   %s", id, got, want)
		}
	}
}

// rankingKey flattens the deterministic parts of a ranking for
// bit-identical comparison across processes and cache temperatures.
func rankingKey(r *core.Ranking) string {
	s := fmt.Sprintf("explored=%d pruned=%d;", r.PathsExplored, r.PathsPruned)
	for _, p := range r.Paths {
		s += fmt.Sprintf("%s score=%.17g quality=%.17g features=%v;", p, p.Score, p.Quality, p.Features)
	}
	return s
}

// TestQueueFullRejects holds the only scheduler slot so admission is
// deterministic: one job queues, the next is rejected with 429 and a
// Retry-After hint.
func TestQueueFullRejects(t *testing.T) {
	st := newStack(t, Config{Workers: 1, QueueDepth: 1})
	st.svc.sem <- struct{}{} // occupy the slot
	req := submitRequest{Lake: "lake-test", Base: st.ds.Base.Name(), Label: st.ds.Label}

	var first struct {
		ID string `json:"id"`
	}
	if r := postJSON(t, st.ts.URL+"/v1/discoveries", req, &first); r.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", r.StatusCode)
	}
	var rej struct {
		Error             string `json:"error"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	resp := postJSON(t, st.ts.URL+"/v1/discoveries", req, &rej)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-queue submit: status %d, want 429", resp.StatusCode)
	}
	retryHeader := resp.Header.Get("Retry-After")
	if retryHeader == "" {
		t.Error("429 should carry Retry-After")
	}
	// The body is machine-readable and consistent with the header.
	if rej.Error != "job queue is full" {
		t.Errorf("429 body error = %q", rej.Error)
	}
	if rej.RetryAfterSeconds < 1 {
		t.Errorf("429 body retry_after_seconds = %d, want >= 1", rej.RetryAfterSeconds)
	}
	if want := strconv.Itoa(rej.RetryAfterSeconds); retryHeader != want {
		t.Errorf("Retry-After header %q disagrees with body %q", retryHeader, want)
	}

	<-st.svc.sem // release; the queued job may now run
	doc := waitState(t, st.ts.URL, first.ID)
	if doc.State != StateDone {
		t.Errorf("queued job state = %s, want done", doc.State)
	}
}

// TestCancelQueuedJob cancels a job that never got a slot and checks
// the terminal-state conflict on a second DELETE.
func TestCancelQueuedJob(t *testing.T) {
	st := newStack(t, Config{Workers: 1, QueueDepth: 2})
	st.svc.sem <- struct{}{}
	defer func() { <-st.svc.sem }()
	req := submitRequest{Lake: "lake-test", Base: st.ds.Base.Name(), Label: st.ds.Label}
	var sub struct {
		ID string `json:"id"`
	}
	postJSON(t, st.ts.URL+"/v1/discoveries", req, &sub)

	del, err := http.NewRequest(http.MethodDelete, st.ts.URL+"/v1/discoveries/"+sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: status %d, want 202", resp.StatusCode)
	}
	doc := waitState(t, st.ts.URL, sub.ID)
	if doc.State != StateCancelled {
		t.Errorf("state = %s, want cancelled", doc.State)
	}
	resp2, err := http.DefaultClient.Do(del.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Errorf("second DELETE: status %d, want 409", resp2.StatusCode)
	}
}

// TestDrain verifies graceful shutdown: in-flight jobs finish, new
// submissions are refused with 503.
func TestDrain(t *testing.T) {
	st := newStack(t, Config{Workers: 1})
	req := submitRequest{Lake: "lake-test", Base: st.ds.Base.Name(), Label: st.ds.Label}
	var sub struct {
		ID string `json:"id"`
	}
	postJSON(t, st.ts.URL+"/v1/discoveries", req, &sub)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := st.svc.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	doc := waitState(t, st.ts.URL, sub.ID)
	if doc.State != StateDone {
		t.Errorf("in-flight job state after drain = %s, want done", doc.State)
	}
	if r := postJSON(t, st.ts.URL+"/v1/discoveries", req, nil); r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", r.StatusCode)
	}
	if r := postJSON(t, st.ts.URL+"/v1/lakes", lakeCreateRequest{Dir: st.dir}, nil); r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("lake create while draining: status %d, want 503", r.StatusCode)
	}
}

// TestManifestBeforeResult covers the 409 on a manifest request for a
// job that has not produced a result yet.
func TestManifestBeforeResult(t *testing.T) {
	st := newStack(t, Config{Workers: 1, QueueDepth: 2})
	st.svc.sem <- struct{}{}
	defer func() { <-st.svc.sem }()
	var sub struct {
		ID string `json:"id"`
	}
	postJSON(t, st.ts.URL+"/v1/discoveries",
		submitRequest{Lake: "lake-test", Base: st.ds.Base.Name(), Label: st.ds.Label}, &sub)
	if r := getJSON(t, st.ts.URL+"/v1/discoveries/"+sub.ID+"/manifest", nil); r.StatusCode != http.StatusConflict {
		t.Errorf("manifest on queued job: status %d, want 409", r.StatusCode)
	}
}
