package serve

// Worker-side cluster agent. A worker is an ordinary single-node
// Service plus this Agent, which (a) announces the worker to the
// coordinator with periodic heartbeats, (b) serves the worker's
// identity document for static-peer seeding, and (c) stores the
// coordinator's replicated job-store snapshots so the cluster queue
// survives losing any single node's disk.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"autofeat/internal/obsrv"
	"autofeat/internal/telemetry"
)

// AgentConfig wires a worker's cluster agent.
type AgentConfig struct {
	// ID is the worker's stable identity (rendezvous hashing keys on
	// it); Addr is the base URL other nodes dial to reach this worker.
	ID   string
	Addr string
	// Coordinator is the coordinator's base URL. "" disables the
	// heartbeat loop (useful when the coordinator seeds statically and
	// tests drive heartbeats by hand).
	Coordinator string
	// HeartbeatInterval is the announce period. 0 defaults to 2s.
	HeartbeatInterval time.Duration
	// ReplicaPath stores received job-store snapshots; "" keeps the
	// latest snapshot in memory only.
	ReplicaPath string
	// Collector receives cluster.* metrics; Logger the lifecycle
	// records. Both may be nil.
	Collector *telemetry.Collector
	Logger    *slog.Logger
	// Traces, when non-nil, serves this worker's retained spans at GET
	// /cluster/v1/traces/{id} so the coordinator can assemble
	// cross-node traces. Attach the same store the worker's obsrv
	// server renders.
	Traces *telemetry.TraceStore
	// Client performs the heartbeat HTTP; nil defaults to a 10s client.
	Client *http.Client
}

// Agent is the cluster-facing side of one worker.
type Agent struct {
	cfg    AgentConfig
	svc    *Service
	log    *slog.Logger
	client *http.Client

	mu      sync.Mutex
	replica []byte
}

// NewAgent builds the cluster agent for a worker service.
func NewAgent(cfg AgentConfig, svc *Service) *Agent {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	return &Agent{cfg: cfg, svc: svc, log: telemetry.OrNop(cfg.Logger), client: cfg.Client}
}

// Mount registers the worker's cluster control-plane routes alongside
// the service's own /v1 routes.
func (a *Agent) Mount(srv *obsrv.Server) {
	srv.Handle("GET /cluster/v1/info", http.HandlerFunc(a.handleInfo))
	srv.Handle("POST /cluster/v1/jobstore", http.HandlerFunc(a.handleReplicaPut))
	srv.Handle("GET /cluster/v1/jobstore", http.HandlerFunc(a.handleReplicaGet))
	srv.Handle("GET /cluster/v1/telemetry", http.HandlerFunc(a.handleTelemetry))
	srv.Handle("GET /cluster/v1/traces/{id}", http.HandlerFunc(a.handleTraceSpans))
}

// status assembles the worker's current heartbeat document.
func (a *Agent) status() heartbeatMsg {
	queued, running, slots := a.svc.Stats()
	return heartbeatMsg{
		Proto:    ProtoVersion,
		ID:       a.cfg.ID,
		Addr:     a.cfg.Addr,
		Lakes:    a.svc.LakeIDs(),
		Queued:   queued,
		Running:  running,
		Slots:    slots,
		Draining: a.svc.Draining(),
	}
}

// Run sends heartbeats to the coordinator until ctx is cancelled. It
// returns immediately when no coordinator is configured.
func (a *Agent) Run(ctx context.Context) {
	if a.cfg.Coordinator == "" {
		return
	}
	t := time.NewTicker(a.cfg.HeartbeatInterval)
	defer t.Stop()
	a.Heartbeat(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			a.Heartbeat(ctx)
		}
	}
}

// Heartbeat sends one announce to the coordinator. Failures are logged
// and returned but not fatal — the next tick retries.
func (a *Agent) Heartbeat(ctx context.Context) error {
	body, _ := json.Marshal(a.status())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.cfg.Coordinator+"/cluster/v1/heartbeat", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.client.Do(req)
	if err != nil {
		a.log.Warn("cluster heartbeat failed", "coordinator", a.cfg.Coordinator, "error", err)
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("serve: heartbeat: coordinator status %d: %s", resp.StatusCode, b)
		a.log.Warn("cluster heartbeat rejected", "error", err)
		return err
	}
	a.cfg.Collector.Meter().Inc(telemetry.CtrClusterHeartbeatsSent)
	return nil
}

// handleInfo serves the worker's identity document (GET
// /cluster/v1/info) — the probe target for static-peer seeding.
func (a *Agent) handleInfo(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, a.status())
}

// handleReplicaPut stores one replicated job-store snapshot after
// validating its wire-protocol version.
func (a *Agent) handleReplicaPut(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	var probe struct {
		Proto string `json:"proto"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if err := CheckProto(probe.Proto); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	a.mu.Lock()
	a.replica = body
	a.mu.Unlock()
	if a.cfg.ReplicaPath != "" {
		if err := atomicWriteFile(a.cfg.ReplicaPath, body); err != nil {
			a.log.Warn("cluster replica persist failed", "path", a.cfg.ReplicaPath, "error", err)
			writeError(w, http.StatusInternalServerError, "persist replica: "+err.Error())
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"proto": ProtoVersion, "ok": true, "bytes": len(body)})
}

// handleReplicaGet serves the last replicated snapshot, or 404 if none
// arrived yet.
func (a *Agent) handleReplicaGet(w http.ResponseWriter, _ *http.Request) {
	a.mu.Lock()
	snap := a.replica
	a.mu.Unlock()
	if snap == nil {
		writeError(w, http.StatusNotFound, "no job-store replica received yet")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(snap)
}

// telemetryMsg is the GET /cluster/v1/telemetry response body: one
// worker's metric registry, stamped with the wire-protocol version and
// the worker's identity so the coordinator can label the merged series.
type telemetryMsg struct {
	Proto    string              `json:"proto"`
	Node     string              `json:"node"`
	Snapshot *telemetry.Snapshot `json:"snapshot"`
}

// handleTelemetry serves the worker's current telemetry snapshot for
// coordinator-side metrics federation. Spans are stripped: traces
// travel per trace ID over /cluster/v1/traces/{id}, not in bulk on
// every sweep.
func (a *Agent) handleTelemetry(w http.ResponseWriter, _ *http.Request) {
	snap := a.cfg.Collector.Snapshot()
	snap.Spans = nil
	writeJSON(w, http.StatusOK, telemetryMsg{Proto: ProtoVersion, Node: a.cfg.ID, Snapshot: snap})
}

// traceSpansMsg is the GET /cluster/v1/traces/{id} response body: the
// worker's retained spans for one trace, flat (the coordinator builds
// the merged tree).
type traceSpansMsg struct {
	Proto   string                 `json:"proto"`
	Node    string                 `json:"node"`
	TraceID string                 `json:"trace_id"`
	Spans   []telemetry.SpanRecord `json:"spans"`
}

// handleTraceSpans serves this worker's spans for one trace ID — the
// fan-out target of the coordinator's cross-node trace assembly. 404
// when the worker holds no spans for the trace (or has no trace store).
func (a *Agent) handleTraceSpans(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spans := a.cfg.Traces.Spans(id)
	if spans == nil {
		writeError(w, http.StatusNotFound, "unknown trace "+id)
		return
	}
	writeJSON(w, http.StatusOK, traceSpansMsg{Proto: ProtoVersion, Node: a.cfg.ID, TraceID: id, Spans: spans})
}

// Replica returns the latest stored snapshot (nil if none), for tests
// and recovery tooling.
func (a *Agent) Replica() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.replica == nil {
		return nil
	}
	out := make([]byte, len(a.replica))
	copy(out, a.replica)
	return out
}
