package serve

// Cluster tests: a real coordinator and real workers wired over
// httptest listeners, with an injectable clock and hand-driven
// heartbeats/sweeps so membership transitions are deterministic under
// -race. The end-to-end test kills a worker with queued jobs and
// asserts the survivor finishes them with rankings bit-identical to a
// single-node run.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"autofeat/internal/datagen"
	"autofeat/internal/lake"
	"autofeat/internal/obsrv"
	"autofeat/internal/telemetry"
)

// fakeClock is a hand-advanced time source shared by the coordinator
// and the test.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// clusterWorker is one worker node: service, agent, and its listener.
type clusterWorker struct {
	svc   *Service
	agent *Agent
	ts    *httptest.Server
}

// clusterStack is a full cluster on localhost: one coordinator and N
// workers, plus the shared dataset directory every lake opens from.
type clusterStack struct {
	coord   *Coordinator
	coordTS *httptest.Server
	workers []*clusterWorker
	clock   *fakeClock
	ds      *datagen.Dataset
	dir     string
}

// newClusterStack wires a coordinator and n workers. Worker heartbeats
// are sent by the test (via heartbeatAll), never by a background loop,
// so liveness transitions only happen when the test advances the clock.
func newClusterStack(t *testing.T, n int, ccfg ClusterConfig, wcfg Config) *clusterStack {
	t.Helper()
	ds, err := datagen.Generate(datagen.SmallSpecs()[0])
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, tb := range ds.Tables {
		if err := tb.WriteCSVFile(filepath.Join(dir, tb.Name()+".csv")); err != nil {
			t.Fatal(err)
		}
	}
	cs := &clusterStack{clock: newFakeClock(), ds: ds, dir: dir}

	for i := 0; i < n; i++ {
		cfg := wcfg
		if cfg.Collector == nil {
			cfg.Collector = telemetry.New()
		}
		// Every worker keeps a trace store, wired exactly like production:
		// the obsrv server renders it and the agent serves it to the
		// coordinator's cross-node trace assembly.
		traces := telemetry.NewTraceStore(0, 0)
		cfg.Collector.ObserveSpans(traces)
		srv := obsrv.NewServer(obsrv.Config{Collector: cfg.Collector, Traces: traces})
		svc := New(cfg)
		svc.Mount(srv)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		agent := NewAgent(AgentConfig{
			ID:        fmt.Sprintf("worker-%c", 'a'+i),
			Addr:      ts.URL,
			Collector: cfg.Collector,
			Traces:    traces,
		}, svc)
		agent.Mount(srv)
		cs.workers = append(cs.workers, &clusterWorker{svc: svc, agent: agent, ts: ts})
	}

	if ccfg.Collector == nil {
		ccfg.Collector = telemetry.New()
	}
	if ccfg.Traces == nil {
		// The coordinator's relay and dispatch spans land here; its obsrv
		// server stays trace-less so Mount owns the /v1/traces patterns.
		ccfg.Traces = telemetry.NewTraceStore(0, 0)
		ccfg.Collector.ObserveSpans(ccfg.Traces)
	}
	ccfg.clock = cs.clock.now
	store, err := NewJobStore(ccfg.StorePath)
	if err != nil {
		t.Fatal(err)
	}
	cs.coord = NewCoordinator(ccfg, store)
	csrv := obsrv.NewServer(obsrv.Config{Collector: ccfg.Collector})
	cs.coord.Mount(csrv)
	cs.coordTS = httptest.NewServer(csrv.Handler())
	t.Cleanup(cs.coordTS.Close)

	var addrs []string
	for _, w := range cs.workers {
		addrs = append(addrs, w.ts.URL)
	}
	cs.coord.SeedWorkers(addrs)
	return cs
}

// heartbeatAll posts one heartbeat per worker straight into the
// coordinator (skipping still-killed listeners).
func (cs *clusterStack) heartbeatAll(t *testing.T, alive map[string]bool) {
	t.Helper()
	for _, w := range cs.workers {
		if alive != nil && !alive[w.agent.cfg.ID] {
			continue
		}
		cs.coord.observeHeartbeat(w.agent.status())
	}
}

// workerByID finds the in-process worker with the given cluster id.
func (cs *clusterStack) workerByID(id string) *clusterWorker {
	for _, w := range cs.workers {
		if w.agent.cfg.ID == id {
			return w
		}
	}
	return nil
}

// waitClusterJob sweeps and polls until the cluster job is terminal.
// alive names the workers still heartbeating (nil = all): the poll loop
// advances the fake clock, so workers not re-announced here lapse dead.
func waitClusterJob(t *testing.T, cs *clusterStack, id string, alive map[string]bool) StoredJob {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		cs.heartbeatAll(t, alive)
		cs.coord.Sweep()
		j, ok := cs.coord.Store().Job(id)
		if !ok {
			t.Fatalf("cluster job %s vanished from the store", id)
		}
		switch j.State {
		case StateDone, StateFailed, StateCancelled:
			return j
		}
		cs.clock.advance(50 * time.Millisecond) // ripen dispatch backoffs
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("cluster job %s did not finish in time", id)
	return StoredJob{}
}

// submitCluster posts one discovery through the coordinator.
func submitCluster(t *testing.T, cs *clusterStack, tenant string, req submitRequest) (id, state string, status int) {
	t.Helper()
	body, _ := json.Marshal(req)
	hr, err := http.NewRequest(http.MethodPost, cs.coordTS.URL+"/v1/discoveries", jsonReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		hr.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var acc struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	_ = json.NewDecoder(resp.Body).Decode(&acc)
	return acc.ID, acc.State, resp.StatusCode
}

// singleNodeRanking runs the same request directly against a fresh lake
// session — the single-node baseline for bit-identity assertions.
func singleNodeRanking(t *testing.T, cs *clusterStack, req submitRequest) string {
	t.Helper()
	l, err := lake.Open(cs.dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := req.config(0)
	res, err := l.Discover(context.Background(), lake.Request{
		Base:   req.Base,
		Label:  req.Label,
		Config: &cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rankingKey(res.Ranking)
}

// TestClusterEndToEnd is the tentpole e2e: 1 coordinator + 2 workers,
// two lakes, overlapping jobs; the worker holding queued jobs is killed
// and its jobs must complete on the survivor with rankings identical to
// a single-node run.
func TestClusterEndToEnd(t *testing.T) {
	cs := newClusterStack(t, 2,
		ClusterConfig{HeartbeatTimeout: 5 * time.Second, TenantQuota: 0},
		Config{Workers: 1, QueueDepth: 8})

	// Register two lakes over the coordinator API; both open from the
	// shared dataset directory.
	for _, id := range []string{"lake-001", "lake-002"} {
		var doc clusterLakeDoc
		resp := postJSON(t, cs.coordTS.URL+"/v1/lakes", lakeCreateRequest{ID: id, Dir: cs.dir}, &doc)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("POST /v1/lakes %s: status %d", id, resp.StatusCode)
		}
		if doc.Worker == "" {
			t.Fatalf("lake %s was not placed on any worker", id)
		}
		if doc.Tables != len(cs.ds.Tables) {
			t.Fatalf("lake %s opened with %d tables, want %d", id, doc.Tables, len(cs.ds.Tables))
		}
	}

	// The victim is whichever worker rendezvous hashing gave lake-001.
	owner, ok := cs.coord.ownerFor("lake-001")
	if !ok {
		t.Fatal("no owner for lake-001")
	}
	victim := cs.workerByID(owner.ID)
	var survivor *clusterWorker
	for _, w := range cs.workers {
		if w != victim {
			survivor = w
		}
	}

	// Occupy the victim's only slot so dispatched jobs queue worker-side
	// instead of running — the "killed mid-queue" setup.
	victim.svc.sem <- struct{}{}

	req := submitRequest{Lake: "lake-001", Base: cs.ds.Base.Name(), Label: cs.ds.Label}
	reqOther := submitRequest{Lake: "lake-002", Base: cs.ds.Base.Name(), Label: cs.ds.Label}
	idA, stateA, status := submitCluster(t, cs, "", req)
	if status != http.StatusAccepted || stateA != ClusterDispatched {
		t.Fatalf("job A: status %d state %q, want 202 dispatched", status, stateA)
	}
	idB, _, status := submitCluster(t, cs, "", req)
	if status != http.StatusAccepted {
		t.Fatalf("job B: status %d", status)
	}
	idC, _, status := submitCluster(t, cs, "", reqOther)
	if status != http.StatusAccepted {
		t.Fatalf("job C: status %d", status)
	}

	jA, _ := cs.coord.Store().Job(idA)
	if jA.Worker != victim.agent.cfg.ID {
		t.Fatalf("job A dispatched to %q, want victim %q", jA.Worker, victim.agent.cfg.ID)
	}

	// Kill the victim: close its listener and let its heartbeats lapse
	// while the survivor keeps announcing itself.
	victim.ts.Close()
	onlySurvivor := map[string]bool{survivor.agent.cfg.ID: true}
	cs.clock.advance(6 * time.Second)
	cs.heartbeatAll(t, onlySurvivor)
	cs.coord.Sweep()

	jA, _ = cs.coord.Store().Job(idA)
	if jA.Rerouted == 0 {
		t.Fatalf("job A was not rerouted after worker death: %+v", jA)
	}

	want := singleNodeRanking(t, cs, req)
	for _, id := range []string{idA, idB, idC} {
		j := waitClusterJob(t, cs, id, onlySurvivor)
		if j.State != StateDone {
			t.Fatalf("cluster job %s finished %q (error %q), want done", id, j.State, j.Error)
		}
		if j.Worker != survivor.agent.cfg.ID {
			t.Errorf("job %s finished on %q, want survivor %q", id, j.Worker, survivor.agent.cfg.ID)
		}
		// Bit-identity: the surviving worker's in-process ranking must
		// match the single-node baseline exactly.
		if id == idC {
			continue // different lake, same data — checked for doneness only
		}
		wj := survivor.svc.jobByID(j.WorkerJob)
		if wj == nil {
			t.Fatalf("worker job %s missing on survivor", j.WorkerJob)
		}
		if got := rankingKey(wj.result.Ranking); got != want {
			t.Errorf("job %s ranking diverged from single-node run:\ncluster: %s\nsingle:  %s", id, got, want)
		}
	}

	// The coordinator replicated the job store to the survivor.
	snap := survivor.agent.Replica()
	if snap == nil {
		t.Fatal("survivor holds no job-store replica")
	}
	var doc struct {
		Proto string `json:"proto"`
		Jobs  []json.RawMessage
	}
	if err := json.Unmarshal(snap, &doc); err != nil {
		t.Fatalf("replica is not valid JSON: %v", err)
	}
	if doc.Proto != ProtoVersion {
		t.Fatalf("replica proto %q, want %q", doc.Proto, ProtoVersion)
	}

	// Cluster metrics recorded the death and reroute.
	snapshot := cs.coord.cfg.Collector.Snapshot()
	if got := snapshot.Counters[telemetry.CtrClusterReroutedJobs]; got < 2 {
		t.Errorf("cluster.rerouted_jobs = %d, want >= 2", got)
	}
}

// TestClusterHeartbeatTimeout covers membership liveness: a silent
// worker is declared dead after the timeout and rejoins on its next
// heartbeat.
func TestClusterHeartbeatTimeout(t *testing.T) {
	cs := newClusterStack(t, 2, ClusterConfig{HeartbeatTimeout: 5 * time.Second}, Config{Workers: 1})

	var view struct {
		Workers []workerDoc `json:"workers"`
	}
	getJSON(t, cs.coordTS.URL+"/cluster/v1/workers", &view)
	if len(view.Workers) != 2 || !view.Workers[0].Alive || !view.Workers[1].Alive {
		t.Fatalf("want 2 alive workers, got %+v", view.Workers)
	}

	// Only worker-a keeps heartbeating; worker-b lapses.
	cs.clock.advance(6 * time.Second)
	cs.heartbeatAll(t, map[string]bool{"worker-a": true})
	cs.coord.Sweep()

	getJSON(t, cs.coordTS.URL+"/cluster/v1/workers", &view)
	for _, w := range view.Workers {
		wantAlive := w.ID == "worker-a"
		if w.Alive != wantAlive {
			t.Errorf("worker %s alive=%v, want %v", w.ID, w.Alive, wantAlive)
		}
	}

	// A fresh heartbeat resurrects worker-b.
	cs.heartbeatAll(t, nil)
	getJSON(t, cs.coordTS.URL+"/cluster/v1/workers", &view)
	for _, w := range view.Workers {
		if !w.Alive {
			t.Errorf("worker %s still dead after rejoin heartbeat", w.ID)
		}
	}

	// A heartbeat speaking the wrong protocol version is rejected.
	resp := postJSON(t, cs.coordTS.URL+"/cluster/v1/heartbeat",
		heartbeatMsg{Proto: "autofeat/cluster/v0", ID: "worker-x", Addr: "http://x"}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("wrong-proto heartbeat: status %d, want 400", resp.StatusCode)
	}
}

// TestClusterTenantQuota covers coordinator-level admission: a tenant
// at its in-flight quota gets 429 with the machine-readable
// retry_after_seconds body while other tenants are unaffected.
func TestClusterTenantQuota(t *testing.T) {
	cs := newClusterStack(t, 1,
		ClusterConfig{HeartbeatTimeout: 5 * time.Second, TenantQuota: 1},
		Config{Workers: 1, QueueDepth: 8})
	postJSON(t, cs.coordTS.URL+"/v1/lakes", lakeCreateRequest{ID: "lake-001", Dir: cs.dir}, nil)
	w := cs.workers[0]
	w.svc.sem <- struct{}{} // park the worker so jobs stay in flight

	req := submitRequest{Lake: "lake-001", Base: cs.ds.Base.Name(), Label: cs.ds.Label}
	if _, _, status := submitCluster(t, cs, "acme", req); status != http.StatusAccepted {
		t.Fatalf("first acme job: status %d", status)
	}

	body, _ := json.Marshal(req)
	hr, _ := http.NewRequest(http.MethodPost, cs.coordTS.URL+"/v1/discoveries", jsonReader(body))
	hr.Header.Set("X-Tenant", "acme")
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After header")
	}
	var rej struct {
		Error             string `json:"error"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rej); err != nil {
		t.Fatal(err)
	}
	if rej.Error == "" || rej.RetryAfterSeconds <= 0 {
		t.Errorf("429 body %+v: want error text and positive retry_after_seconds", rej)
	}

	// Another tenant is not blocked by acme's quota.
	if _, _, status := submitCluster(t, cs, "globex", req); status != http.StatusAccepted {
		t.Errorf("other-tenant job: status %d, want 202", status)
	}

	<-w.svc.sem // release; both jobs run to completion
	id3, _, status := submitCluster(t, cs, "acme", req)
	_ = status
	for _, j := range cs.coord.Store().Jobs() {
		waitClusterJob(t, cs, j.ID, nil)
	}
	_ = id3
}

// TestClusterWorkerBusyRequeues covers the routed-429 path: when the
// owning worker's queue is full the coordinator keeps the job durable
// in ClusterQueued (the client still gets 202) and a later sweep
// dispatches it after the worker drains.
func TestClusterWorkerBusyRequeues(t *testing.T) {
	cs := newClusterStack(t, 1,
		ClusterConfig{HeartbeatTimeout: 5 * time.Second, RetryBackoff: 10 * time.Millisecond},
		Config{Workers: 1, QueueDepth: 1})
	postJSON(t, cs.coordTS.URL+"/v1/lakes", lakeCreateRequest{ID: "lake-001", Dir: cs.dir}, nil)
	w := cs.workers[0]
	w.svc.sem <- struct{}{} // hold the slot: worker queue fills at 1

	req := submitRequest{Lake: "lake-001", Base: cs.ds.Base.Name(), Label: cs.ds.Label}
	idA, stateA, status := submitCluster(t, cs, "", req)
	if status != http.StatusAccepted || stateA != ClusterDispatched {
		t.Fatalf("job A: status %d state %q", status, stateA)
	}
	idB, stateB, status := submitCluster(t, cs, "", req)
	if status != http.StatusAccepted {
		t.Fatalf("job B: status %d, want 202 even when the worker is full", status)
	}
	if stateB != ClusterQueued {
		t.Fatalf("job B state %q, want queued (worker rejected with 429)", stateB)
	}

	<-w.svc.sem // drain the worker
	cs.clock.advance(time.Second)
	for _, id := range []string{idA, idB} {
		if j := waitClusterJob(t, cs, id, nil); j.State != StateDone {
			t.Fatalf("job %s finished %q (error %q)", id, j.State, j.Error)
		}
	}
	jB, _ := cs.coord.Store().Job(idB)
	if jB.Attempts < 2 {
		t.Errorf("job B attempts = %d, want >= 2 (initial 429 then retry)", jB.Attempts)
	}
}

// TestJobStoreRecovery covers coordinator-restart semantics: reloading
// a snapshot re-queues dispatched jobs (safe to re-run: deterministic
// rankings) and preserves terminal ones.
func TestJobStoreRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.json")
	s1, err := NewJobStore(path)
	if err != nil {
		t.Fatal(err)
	}
	s1.AddLake(StoredLake{ID: "lake-001", Dir: "/data"})
	now := time.Unix(1_700_000_000, 0)
	a := s1.AddJob("t1", "lake-001", json.RawMessage(`{"base":"b"}`), "", now)
	b := s1.AddJob("t1", "lake-001", json.RawMessage(`{"base":"b"}`), "", now)
	s1.Update(a.ID, func(j *StoredJob) { j.State = ClusterDispatched; j.Worker = "w1"; j.WorkerJob = "job-001" })
	s1.Update(b.ID, func(j *StoredJob) { j.State = StateDone; j.Worker = "w1" })

	s2, err := NewJobStore(path)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := s2.Job(a.ID)
	if ja.State != ClusterQueued || ja.Worker != "" {
		t.Errorf("dispatched job after recovery: %+v, want re-queued with no worker", ja)
	}
	jb, _ := s2.Job(b.ID)
	if jb.State != StateDone {
		t.Errorf("done job after recovery: state %q, want done", jb.State)
	}
	if s2.LakeByID("lake-001") == nil {
		t.Error("lake registration lost across recovery")
	}

	// Wrong-proto snapshots are rejected outright.
	if err := s2.LoadSnapshot([]byte(`{"proto":"autofeat/cluster/v2"}`)); err == nil {
		t.Error("LoadSnapshot accepted a wrong-proto snapshot")
	}
}

// TestRendezvousPlacement pins the placement invariants: ownership is
// deterministic, and removing one worker only moves that worker's
// lakes.
func TestRendezvousPlacement(t *testing.T) {
	cs := newClusterStack(t, 3, ClusterConfig{HeartbeatTimeout: 5 * time.Second}, Config{Workers: 1})
	lakes := []string{"lake-001", "lake-002", "lake-003", "lake-004", "lake-005", "lake-006"}
	before := map[string]string{}
	for _, id := range lakes {
		o1, ok1 := cs.coord.ownerFor(id)
		o2, ok2 := cs.coord.ownerFor(id)
		if !ok1 || !ok2 || o1.ID != o2.ID {
			t.Fatalf("ownerFor(%s) not deterministic: %v/%v %q/%q", id, ok1, ok2, o1.ID, o2.ID)
		}
		before[id] = o1.ID
	}

	// Kill worker-b; only its lakes may move, and none may stay on it.
	cs.clock.advance(6 * time.Second)
	cs.heartbeatAll(t, map[string]bool{"worker-a": true, "worker-c": true})
	cs.coord.Sweep()
	for _, id := range lakes {
		after, ok := cs.coord.ownerFor(id)
		if !ok {
			t.Fatalf("ownerFor(%s) found no owner after death", id)
		}
		if after.ID == "worker-b" {
			t.Errorf("lake %s still placed on dead worker-b", id)
		}
		if before[id] != "worker-b" && after.ID != before[id] {
			t.Errorf("lake %s moved %s -> %s although its owner survived", id, before[id], after.ID)
		}
	}
}
