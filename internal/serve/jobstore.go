package serve

// The replicated JSON job store behind the cluster coordinator: every
// accepted discovery job (and every registered lake) is recorded here
// before it is dispatched to a worker, so a queued job survives the
// death of the worker it was routed to — the coordinator re-dispatches
// it to the lake's next owner. The store is a plain JSON document:
// persisted atomically to disk after every mutation (when a path is
// configured) and pushed to workers as an opaque snapshot, so a
// restarted coordinator can recover its queue from its own file or from
// any worker's replica.

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// ProtoVersion is the cluster wire-protocol version stamped into every
// inter-node message (heartbeats, job-store snapshots, worker info).
// Nodes reject messages from a different major version; within one
// major version, compatibility rule is additive-only: new optional JSON
// fields may appear and must be ignored when unknown.
const ProtoVersion = "autofeat/cluster/v1"

// Cluster-level job states. A job is "queued" until a worker accepts
// it, "dispatched" while a worker holds it, and terminal afterwards;
// terminal states mirror the worker-level ones so clients see one
// vocabulary on both planes.
const (
	// ClusterQueued is a job recorded in the store but not accepted by
	// any worker yet (never dispatched, worker busy, or awaiting reroute
	// after a worker death).
	ClusterQueued = "queued"
	// ClusterDispatched is a job accepted by a worker and not yet
	// observed in a terminal state.
	ClusterDispatched = "dispatched"
)

// StoredLake is the cluster-level record of one registered lake: enough
// to re-open it on whichever worker rendezvous hashing places it on.
type StoredLake struct {
	// ID is the cluster-wide lake id ("lake-001"); workers register the
	// lake under the same id so submit bodies route unchanged.
	ID string `json:"id"`
	// Dir is the CSV directory the lake is opened from. Workers must be
	// able to resolve it (shared filesystem or per-node copy).
	Dir string `json:"dir"`
	// Matcher and Threshold are the lake's DRG defaults, forwarded to
	// every worker that opens it.
	Matcher   string  `json:"matcher,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
}

// StoredJob is the cluster-level record of one discovery job: the
// verbatim submit body (so a re-dispatched job runs bit-identically),
// its routing state, and the worker's terminal job document once one
// was observed.
type StoredJob struct {
	// ID is the cluster-wide job id ("cjob-000001").
	ID string `json:"id"`
	// Tenant is the quota bucket the job was admitted under (the
	// X-Tenant request header; empty = default tenant).
	Tenant string `json:"tenant,omitempty"`
	// Lake is the cluster lake id the job runs against.
	Lake string `json:"lake"`
	// Body is the original POST /v1/discoveries body, forwarded to
	// workers verbatim so defaults resolve identically everywhere.
	Body json.RawMessage `json:"body"`
	// Traceparent is the W3C trace context captured at submission and
	// propagated on every dispatch, so the worker's span tree joins the
	// submitting request's trace.
	Traceparent string `json:"traceparent,omitempty"`
	// State is the cluster-level job state: ClusterQueued,
	// ClusterDispatched, or a terminal worker state (done, failed,
	// cancelled).
	State string `json:"state"`
	// Worker and WorkerJob record the current assignment: the worker id
	// holding the job and the job's worker-local id there.
	Worker    string `json:"worker,omitempty"`
	WorkerJob string `json:"worker_job,omitempty"`
	// Attempts counts dispatch attempts; Rerouted counts how many times
	// the job moved to a new owner after a worker death.
	Attempts int `json:"attempts,omitempty"`
	Rerouted int `json:"rerouted,omitempty"`
	// NotBeforeUnixMS gates the next dispatch attempt (bounded backoff
	// after a failed or rejected dispatch); 0 = dispatch immediately.
	NotBeforeUnixMS int64 `json:"not_before_unix_ms,omitempty"`
	// SubmittedUnixMS is the coordinator-side admission time.
	SubmittedUnixMS int64 `json:"submitted_unix_ms"`
	// Result is the worker's terminal job document (the jobDoc schema),
	// cached so completed jobs outlive their worker.
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the cluster-level failure reason for jobs that could not
	// be dispatched or were rejected by every owner.
	Error string `json:"error,omitempty"`
}

// storeDoc is the on-disk / on-the-wire layout of the job store.
type storeDoc struct {
	Proto    string        `json:"proto"`
	NextJob  int           `json:"next_job"`
	NextLake int           `json:"next_lake"`
	Lakes    []*StoredLake `json:"lakes"`
	Jobs     []*StoredJob  `json:"jobs"`
}

// JobStore is the coordinator's replicated job/lake registry. All
// methods are safe for concurrent use; every mutation bumps an internal
// version counter (the replication trigger) and, when the store was
// opened with a path, atomically rewrites the JSON file.
type JobStore struct {
	mu          sync.Mutex
	path        string
	nextJob     int
	nextLake    int
	lakes       map[string]*StoredLake
	lakeIDs     []string
	jobs        map[string]*StoredJob
	jobIDs      []string
	version     int64
	maxTerminal int
	evicted     int64
}

// NewJobStore opens the job store at path, loading an existing snapshot
// if the file is present (the coordinator-restart recovery path). An
// empty path keeps the store in memory only.
func NewJobStore(path string) (*JobStore, error) {
	s := &JobStore{
		path:  path,
		lakes: map[string]*StoredLake{},
		jobs:  map[string]*StoredJob{},
	}
	if path == "" {
		return s, nil
	}
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: read job store %s: %w", path, err)
	}
	if err := s.load(b); err != nil {
		return nil, fmt.Errorf("serve: job store %s: %w", path, err)
	}
	return s, nil
}

// load replaces the store's contents with the given snapshot bytes.
func (s *JobStore) load(b []byte) error {
	var doc storeDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return err
	}
	if err := CheckProto(doc.Proto); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextJob, s.nextLake = doc.NextJob, doc.NextLake
	s.lakes, s.lakeIDs = map[string]*StoredLake{}, nil
	for _, l := range doc.Lakes {
		s.lakes[l.ID] = l
		s.lakeIDs = append(s.lakeIDs, l.ID)
	}
	s.jobs, s.jobIDs = map[string]*StoredJob{}, nil
	for _, j := range doc.Jobs {
		// A snapshot written mid-dispatch may record a job as dispatched
		// to a worker that no longer remembers it; recovery re-queues
		// every non-terminal job and lets the sweep re-dispatch (safe:
		// rankings are deterministic, so a re-run is bit-identical).
		if j.State == ClusterDispatched {
			j.State = ClusterQueued
			j.Worker, j.WorkerJob = "", ""
		}
		s.jobs[j.ID] = j
		s.jobIDs = append(s.jobIDs, j.ID)
	}
	s.version++
	return nil
}

// LoadSnapshot installs a replicated snapshot (a storeDoc produced by
// Snapshot on another node) — the worker-side replica receive path and
// the recover-from-worker path of a restarted coordinator.
func (s *JobStore) LoadSnapshot(b []byte) error { return s.load(b) }

// CheckProto validates a message's wire-protocol version against
// ProtoVersion: the family and major version must match exactly;
// anything else is a hard error (compatibility within a major version
// is additive-only, so no negotiation is needed).
func CheckProto(proto string) error {
	if proto != ProtoVersion {
		return fmt.Errorf("serve: wire protocol %q is not %q", proto, ProtoVersion)
	}
	return nil
}

// doc renders the store under the lock.
func (s *JobStore) doc() storeDoc {
	doc := storeDoc{Proto: ProtoVersion, NextJob: s.nextJob, NextLake: s.nextLake}
	for _, id := range s.lakeIDs {
		doc.Lakes = append(doc.Lakes, s.lakes[id])
	}
	for _, id := range s.jobIDs {
		doc.Jobs = append(doc.Jobs, s.jobs[id])
	}
	return doc
}

// Snapshot serialises the whole store as one JSON document — the
// replication payload and the GET /cluster/v1/jobs body.
func (s *JobStore) Snapshot() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, _ := json.MarshalIndent(s.doc(), "", "  ")
	return b
}

// Version reports the store's mutation counter; the coordinator
// replicates whenever it observes a change.
func (s *JobStore) Version() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// SetRetention caps how many terminal job documents the store retains
// (0 = unbounded, the default). When a mutation pushes the terminal
// count past the cap, the oldest terminal docs are evicted FIFO;
// non-terminal jobs are never evicted.
func (s *JobStore) SetRetention(maxTerminal int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if maxTerminal < 0 {
		maxTerminal = 0
	}
	s.maxTerminal = maxTerminal
	if s.enforceRetention() {
		s.persist()
	}
}

// Evicted reports how many terminal job documents the retention cap has
// dropped over the store's lifetime.
func (s *JobStore) Evicted() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// terminalJobState reports whether a cluster-level job state is
// terminal (done, failed or cancelled — no further transitions).
func terminalJobState(state string) bool {
	switch state {
	case StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// enforceRetention drops the oldest terminal jobs past the cap. Callers
// hold the lock; reports whether anything was evicted.
func (s *JobStore) enforceRetention() bool {
	if s.maxTerminal <= 0 {
		return false
	}
	terminal := 0
	for _, id := range s.jobIDs {
		if terminalJobState(s.jobs[id].State) {
			terminal++
		}
	}
	if terminal <= s.maxTerminal {
		return false
	}
	kept := s.jobIDs[:0]
	for _, id := range s.jobIDs {
		if terminal > s.maxTerminal && terminalJobState(s.jobs[id].State) {
			delete(s.jobs, id)
			terminal--
			s.evicted++
			continue
		}
		kept = append(kept, id)
	}
	s.jobIDs = kept
	return true
}

// persist atomically rewrites the store file. Callers hold the lock.
func (s *JobStore) persist() {
	s.enforceRetention()
	s.version++
	if s.path == "" {
		return
	}
	b, err := json.MarshalIndent(s.doc(), "", "  ")
	if err != nil {
		return
	}
	_ = atomicWriteFile(s.path, append(b, '\n'))
}

// atomicWriteFile writes b to path via a same-directory temp file and
// rename, so readers never observe a partial file.
func atomicWriteFile(path string, b []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// AddLake records a lake registration and returns its id (assigning the
// next "lake-NNN" when l.ID is empty).
func (s *JobStore) AddLake(l StoredLake) *StoredLake {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l.ID == "" {
		s.nextLake++
		l.ID = fmt.Sprintf("lake-%03d", s.nextLake)
	}
	if _, ok := s.lakes[l.ID]; !ok {
		s.lakeIDs = append(s.lakeIDs, l.ID)
	}
	s.lakes[l.ID] = &l
	s.persist()
	return &l
}

// LakeByID returns the stored lake record for id, or nil.
func (s *JobStore) LakeByID(id string) *StoredLake {
	s.mu.Lock()
	defer s.mu.Unlock()
	if l, ok := s.lakes[id]; ok {
		cp := *l
		return &cp
	}
	return nil
}

// Lakes returns the stored lake records in registration order.
func (s *JobStore) Lakes() []StoredLake {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StoredLake, 0, len(s.lakeIDs))
	for _, id := range s.lakeIDs {
		out = append(out, *s.lakes[id])
	}
	return out
}

// AddJob records a newly admitted job in ClusterQueued state and
// returns its copy with the assigned "cjob-NNNNNN" id.
func (s *JobStore) AddJob(tenant, lakeID string, body json.RawMessage, traceparent string, now time.Time) StoredJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextJob++
	j := &StoredJob{
		ID:              fmt.Sprintf("cjob-%06d", s.nextJob),
		Tenant:          tenant,
		Lake:            lakeID,
		Body:            body,
		Traceparent:     traceparent,
		State:           ClusterQueued,
		SubmittedUnixMS: now.UnixMilli(),
	}
	s.jobs[j.ID] = j
	s.jobIDs = append(s.jobIDs, j.ID)
	s.persist()
	return *j
}

// Job returns a copy of the stored job with the given id; ok reports
// whether it exists.
func (s *JobStore) Job(id string) (StoredJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		return *j, true
	}
	return StoredJob{}, false
}

// Jobs returns copies of every stored job in admission order.
func (s *JobStore) Jobs() []StoredJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]StoredJob, 0, len(s.jobIDs))
	for _, id := range s.jobIDs {
		out = append(out, *s.jobs[id])
	}
	return out
}

// Update applies fn to the stored job with the given id under the lock
// and persists the result; it reports whether the job exists.
func (s *JobStore) Update(id string, fn func(*StoredJob)) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return false
	}
	fn(j)
	s.persist()
	return true
}

// InFlight counts the tenant's jobs in a non-terminal state (queued or
// dispatched) — the per-tenant quota denominator.
func (s *JobStore) InFlight(tenant string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, j := range s.jobs {
		if j.Tenant == tenant && (j.State == ClusterQueued || j.State == ClusterDispatched) {
			n++
		}
	}
	return n
}

// Len reports how many jobs the store holds across all states.
func (s *JobStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobIDs)
}

// StateCounts tallies the stored jobs by cluster-level state — the
// queue-depth breakdown the status surface reports.
func (s *JobStore) StateCounts() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string]int{}
	for _, j := range s.jobs {
		out[j.State]++
	}
	return out
}
