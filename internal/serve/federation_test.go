package serve

// Federation tests: merged cluster metrics, cross-node trace assembly,
// the event journal and the status surface, all through a real
// coordinator + workers over httptest listeners. The main test runs a
// traced discovery with a concurrent /v1/cluster/metrics scraper so
// -race exercises the snapshot-pull and render paths together.

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"autofeat/internal/telemetry"
)

// submitClusterTraced posts one discovery through the coordinator with
// an explicit W3C traceparent so the whole dispatch joins the trace.
func submitClusterTraced(t *testing.T, cs *clusterStack, traceparent string, req submitRequest) string {
	t.Helper()
	body, _ := json.Marshal(req)
	hr, err := http.NewRequest(http.MethodPost, cs.coordTS.URL+"/v1/discoveries", jsonReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set("traceparent", traceparent)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("traced submit: status %d, want 202", resp.StatusCode)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	return acc.ID
}

// findSpan walks a span forest for the first node with the given name.
func findSpan(nodes []*telemetry.SpanNode, name string) *telemetry.SpanNode {
	for _, n := range nodes {
		if n.Name == name {
			return n
		}
		if hit := findSpan(n.Children, name); hit != nil {
			return hit
		}
	}
	return nil
}

// TestClusterObservabilityFederation is the federation e2e: a traced
// discovery dispatched through the coordinator must yield (a) one
// assembled span tree from the coordinator's GET /v1/traces/{id}
// spanning coordinator and worker spans with correct parentage, and
// (b) a merged /v1/cluster/metrics exposition labelling every node's
// series — scraped concurrently while the job runs, so -race covers
// the pull/render paths under load.
func TestClusterObservabilityFederation(t *testing.T) {
	cs := newClusterStack(t, 2,
		ClusterConfig{HeartbeatTimeout: 5 * time.Second},
		Config{Workers: 1, QueueDepth: 8})
	postJSON(t, cs.coordTS.URL+"/v1/lakes", lakeCreateRequest{ID: "lake-001", Dir: cs.dir}, nil)

	// Concurrent scraper: hammer the federated metrics endpoint for the
	// whole life of the traced job.
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			resp, err := http.Get(cs.coordTS.URL + "/v1/cluster/metrics")
			if err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()

	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"
	id := submitClusterTraced(t, cs, "00-"+traceID+"-00f067aa0ba902b7-01",
		submitRequest{Lake: "lake-001", Base: cs.ds.Base.Name(), Label: cs.ds.Label})
	if j := waitClusterJob(t, cs, id, nil); j.State != StateDone {
		t.Fatalf("traced job finished %q (error %q), want done", j.State, j.Error)
	}
	// One more sweep so pullTelemetry sees the workers' post-job counters.
	cs.heartbeatAll(t, nil)
	cs.coord.Sweep()
	close(done)
	wg.Wait()

	// (a) Cross-node trace assembly: one tree, correct parentage.
	var tdoc struct {
		TraceID string                `json:"trace_id"`
		Spans   int                   `json:"spans"`
		Nodes   []string              `json:"nodes"`
		Roots   []*telemetry.SpanNode `json:"roots"`
	}
	getJSON(t, cs.coordTS.URL+"/v1/traces/"+traceID, &tdoc)
	if tdoc.TraceID != traceID {
		t.Fatalf("trace doc id %q, want %q", tdoc.TraceID, traceID)
	}
	if len(tdoc.Roots) != 1 {
		t.Fatalf("assembled trace has %d roots, want exactly 1 (spans: %d, nodes: %v)",
			len(tdoc.Roots), tdoc.Spans, tdoc.Nodes)
	}
	root := tdoc.Roots[0]
	if root.Name != telemetry.SpanHTTP {
		t.Errorf("root span %q, want %q (the coordinator relay)", root.Name, telemetry.SpanHTTP)
	}
	dispatch := findSpan(root.Children, telemetry.SpanClusterDispatch)
	if dispatch == nil {
		t.Fatalf("no %s span under the relay root", telemetry.SpanClusterDispatch)
	}
	workerHTTP := findSpan(dispatch.Children, telemetry.SpanHTTP)
	if workerHTTP == nil {
		t.Fatalf("no worker %s span under %s", telemetry.SpanHTTP, telemetry.SpanClusterDispatch)
	}
	if findSpan(workerHTTP.Children, telemetry.SpanJob) == nil {
		t.Fatalf("no %s span under the worker's %s", telemetry.SpanJob, telemetry.SpanHTTP)
	}
	j, _ := cs.coord.Store().Job(id)
	wantNodes := map[string]bool{"coordinator": false, j.Worker: false}
	for _, n := range tdoc.Nodes {
		if _, ok := wantNodes[n]; ok {
			wantNodes[n] = true
		}
	}
	for n, seen := range wantNodes {
		if !seen {
			t.Errorf("assembled trace missing spans from node %q (nodes: %v)", n, tdoc.Nodes)
		}
	}

	// (b) Merged metrics: one scrape of the coordinator covers every
	// node, each series labelled with its node of origin.
	resp, err := http.Get(cs.coordTS.URL + "/v1/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics Content-Type %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`autofeat_cluster_dispatches{node="coordinator"}`,
		`autofeat_serve_time_to_result_seconds_count{node="` + j.Worker + `"}`,
		`autofeat_cluster_dispatch_seconds_bucket{node="coordinator",le="+Inf"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("federated metrics missing %q", want)
		}
	}
	if n := strings.Count(text, "# TYPE autofeat_cluster_dispatches counter"); n != 1 {
		t.Errorf("family header emitted %d times, want once", n)
	}

	// The coordinator counted its telemetry pulls.
	snap := cs.coord.cfg.Collector.Snapshot()
	if snap.Counters[telemetry.CtrClusterTelemetryPulls] == 0 {
		t.Error("cluster.telemetry_pulls never incremented")
	}
}

// TestCoordinatorProxyErrorPath covers the unreachable-worker proxy
// path: the coordinator returns 502 with a JSON error body and counts
// the failure in cluster.proxy_errors.
func TestCoordinatorProxyErrorPath(t *testing.T) {
	cs := newClusterStack(t, 1,
		ClusterConfig{HeartbeatTimeout: 5 * time.Second},
		Config{Workers: 1, QueueDepth: 8})
	postJSON(t, cs.coordTS.URL+"/v1/lakes", lakeCreateRequest{ID: "lake-001", Dir: cs.dir}, nil)
	w := cs.workers[0]
	w.svc.sem <- struct{}{} // park the worker so the job stays dispatched

	id, state, status := submitCluster(t, cs, "",
		submitRequest{Lake: "lake-001", Base: cs.ds.Base.Name(), Label: cs.ds.Label})
	if status != http.StatusAccepted || state != ClusterDispatched {
		t.Fatalf("submit: status %d state %q, want 202 dispatched", status, state)
	}

	// Kill the worker's listener but keep it heartbeating (in-process),
	// so the coordinator still routes to it and hits a transport error.
	w.ts.Close()
	cs.heartbeatAll(t, nil)

	before := cs.coord.cfg.Collector.Snapshot().Counters[telemetry.CtrClusterProxyErrors]
	resp, err := http.Get(cs.coordTS.URL + "/v1/discoveries/" + id + "/manifest")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("manifest via dead worker: status %d, want 502", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("502 Content-Type %q, want application/json", ct)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("502 body is not JSON: %v", err)
	}
	if !strings.Contains(e.Error, w.agent.cfg.ID) {
		t.Errorf("502 error %q does not name the unreachable worker %q", e.Error, w.agent.cfg.ID)
	}
	after := cs.coord.cfg.Collector.Snapshot().Counters[telemetry.CtrClusterProxyErrors]
	if after <= before {
		t.Errorf("cluster.proxy_errors did not increment (%d -> %d)", before, after)
	}
	<-w.svc.sem
}

// TestClusterEventJournal covers the event journal and the status
// surface: membership transitions are recorded in order and served at
// GET /v1/cluster/events, and GET /v1/cluster/status reflects them.
func TestClusterEventJournal(t *testing.T) {
	cs := newClusterStack(t, 2,
		ClusterConfig{HeartbeatTimeout: 5 * time.Second},
		Config{Workers: 1})
	postJSON(t, cs.coordTS.URL+"/v1/lakes", lakeCreateRequest{ID: "lake-001", Dir: cs.dir}, nil)

	// Let worker-b lapse: its death must be journaled.
	cs.clock.advance(6 * time.Second)
	cs.heartbeatAll(t, map[string]bool{"worker-a": true})
	cs.coord.Sweep()

	var edoc struct {
		Proto  string            `json:"proto"`
		Total  int64             `json:"total"`
		Events []telemetry.Event `json:"events"`
	}
	getJSON(t, cs.coordTS.URL+"/v1/cluster/events", &edoc)
	if edoc.Proto != ProtoVersion {
		t.Errorf("events proto %q, want %q", edoc.Proto, ProtoVersion)
	}
	if edoc.Total < int64(len(edoc.Events)) || len(edoc.Events) == 0 {
		t.Fatalf("event journal total %d with %d events, want a populated journal", edoc.Total, len(edoc.Events))
	}
	types := map[string]int{}
	var lastSeq int64
	for _, e := range edoc.Events {
		if e.Seq <= lastSeq {
			t.Fatalf("event seq not strictly increasing: %d after %d", e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.TimeUnixMS == 0 {
			t.Errorf("event %d has no timestamp", e.Seq)
		}
		types[e.Type]++
	}
	if types[telemetry.EventWorkerJoined] < 2 {
		t.Errorf("want >= 2 %s events (both workers), got %d", telemetry.EventWorkerJoined, types[telemetry.EventWorkerJoined])
	}
	if types[telemetry.EventWorkerDead] == 0 {
		t.Errorf("no %s event after worker-b lapsed (types: %v)", telemetry.EventWorkerDead, types)
	}

	// worker-b rejoins; the journal records the rejoin.
	cs.heartbeatAll(t, nil)
	getJSON(t, cs.coordTS.URL+"/v1/cluster/events", &edoc)
	found := false
	for _, e := range edoc.Events {
		if e.Type == telemetry.EventWorkerRejoined && e.Node == "worker-b" {
			found = true
		}
	}
	if !found {
		t.Error("no worker_rejoined event for worker-b after its comeback heartbeat")
	}

	// The status surface reflects membership, placement and the journal.
	var sdoc struct {
		Proto     string `json:"proto"`
		Node      string `json:"node"`
		WorkersUp int    `json:"workers_up"`
		Workers   []workerDoc
		Lakes     []clusterLakeDoc
		Events    int64            `json:"events_recorded"`
		Counters  map[string]int64 `json:"counters"`
	}
	getJSON(t, cs.coordTS.URL+"/v1/cluster/status", &sdoc)
	if sdoc.Proto != ProtoVersion || sdoc.Node != "coordinator" {
		t.Errorf("status proto/node %q/%q, want %q/coordinator", sdoc.Proto, sdoc.Node, ProtoVersion)
	}
	if sdoc.WorkersUp != 2 || len(sdoc.Workers) != 2 {
		t.Errorf("status workers_up %d of %d, want 2 of 2", sdoc.WorkersUp, len(sdoc.Workers))
	}
	if len(sdoc.Lakes) != 1 || sdoc.Lakes[0].Worker == "" {
		t.Errorf("status lakes %+v, want lake-001 with a placement", sdoc.Lakes)
	}
	if sdoc.Events != edoc.Total {
		t.Errorf("status events_recorded %d, want %d", sdoc.Events, edoc.Total)
	}
	if sdoc.Counters[telemetry.CtrClusterHeartbeats] == 0 {
		t.Error("status counters missing cluster heartbeats — merge dropped the coordinator's registry?")
	}
}

// TestJobStoreRetention covers the bounded terminal-job retention: the
// oldest terminal docs are evicted FIFO past the cap, non-terminal jobs
// are never evicted, and the eviction counter is cumulative.
func TestJobStoreRetention(t *testing.T) {
	s, err := NewJobStore("")
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0)
	var ids []string
	for i := 0; i < 5; i++ {
		j := s.AddJob("t1", "lake-001", json.RawMessage(`{}`), "", now)
		ids = append(ids, j.ID)
	}
	for _, id := range ids[:3] {
		s.Update(id, func(j *StoredJob) { j.State = StateDone })
	}
	s.Update(ids[3], func(j *StoredJob) { j.State = ClusterDispatched })

	s.SetRetention(2) // three terminal docs -> evict the oldest one
	if got := s.Evicted(); got != 1 {
		t.Fatalf("Evicted() = %d after capping at 2, want 1", got)
	}
	if _, ok := s.Job(ids[0]); ok {
		t.Errorf("oldest terminal job %s survived retention", ids[0])
	}
	for _, id := range ids[1:] {
		if _, ok := s.Job(id); !ok {
			t.Errorf("job %s evicted, want retained", id)
		}
	}

	// Another job turning terminal evicts the next-oldest terminal doc;
	// the queued and dispatched jobs are untouchable.
	s.Update(ids[3], func(j *StoredJob) { j.State = StateFailed })
	if got := s.Evicted(); got != 2 {
		t.Fatalf("Evicted() = %d after a fourth terminal job, want 2", got)
	}
	if _, ok := s.Job(ids[1]); ok {
		t.Errorf("second-oldest terminal job %s survived, want FIFO eviction", ids[1])
	}
	if _, ok := s.Job(ids[4]); !ok {
		t.Error("queued job was evicted; retention must only touch terminal docs")
	}
	counts := s.StateCounts()
	if counts[StateDone]+counts[StateFailed] != 2 {
		t.Errorf("terminal docs after retention: %v, want exactly 2", counts)
	}
}
