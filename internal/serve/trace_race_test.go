package serve

// End-to-end tracing under contention: several discoveries overlap on
// one shared lake session while a scraper hammers the observability
// endpoints, all under -race. Each finished job must yield a single
// well-formed span tree in the trace store, rooted at the HTTP handling
// span, carrying the trace ID the client sent in traceparent all the
// way into the job document and the run manifest.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"autofeat/internal/core"
	"autofeat/internal/datagen"
	"autofeat/internal/lake"
	"autofeat/internal/obsrv"
	"autofeat/internal/telemetry"
)

// tracedStack is a testStack variant with the trace store and flight
// recorder wired into the introspection server.
type tracedStack struct {
	svc    *Service
	ts     *httptest.Server
	ds     *datagen.Dataset
	store  *telemetry.TraceStore
	flight *telemetry.FlightRecorder
}

func newTracedStack(t *testing.T, cfg Config) *tracedStack {
	t.Helper()
	ds, err := datagen.Generate(datagen.SmallSpecs()[0])
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, tb := range ds.Tables {
		if err := tb.WriteCSVFile(filepath.Join(dir, tb.Name()+".csv")); err != nil {
			t.Fatal(err)
		}
	}
	if cfg.Collector == nil {
		cfg.Collector = telemetry.New()
	}
	store := telemetry.NewTraceStore(0, 0)
	flight := telemetry.NewFlightRecorder(0)
	cfg.Collector.ObserveSpans(store, flight)
	srv := obsrv.NewServer(obsrv.Config{Collector: cfg.Collector, Traces: store, Flight: flight})
	svc := New(cfg)
	svc.Mount(srv)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	l, err := lake.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc.AddLake("lake-test", l)
	return &tracedStack{svc: svc, ts: ts, ds: ds, store: store, flight: flight}
}

// submitTraced posts a discovery with an explicit W3C traceparent and
// returns the job id plus the trace id the client chose.
func submitTraced(t *testing.T, st *tracedStack, n int) (id, traceID string) {
	t.Helper()
	traceID = fmt.Sprintf("%032x", 0xabc0+n)
	tp := fmt.Sprintf("00-%s-%016x-01", traceID, 0xdef0+n)
	body, err := json.Marshal(submitRequest{Lake: "lake-test", Base: st.ds.Base.Name(), Label: st.ds.Label})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, st.ts.URL+"/v1/discoveries", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", tp)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	// The middleware echoes its own span identity on the same trace.
	if back := resp.Header.Get("traceparent"); !strings.Contains(back, traceID) {
		t.Fatalf("response traceparent %q does not carry trace %s", back, traceID)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	return sub.ID, traceID
}

// spanTreeDoc mirrors obsrv's GET /v1/traces/{id} response.
type spanTreeDoc struct {
	TraceID string                `json:"trace_id"`
	Spans   int                   `json:"spans"`
	Roots   []*telemetry.SpanNode `json:"roots"`
}

// collectNames walks the span forest depth-first, checking parentage as
// it goes and returning every span name seen.
func collectNames(t *testing.T, nodes []*telemetry.SpanNode, parent string, names map[string]int) {
	t.Helper()
	for _, n := range nodes {
		if parent != "" && n.ParentSpanID != parent {
			t.Errorf("span %s (%s) has parent_span_id %s, want %s", n.SpanID, n.Name, n.ParentSpanID, parent)
		}
		names[n.Name]++
		collectNames(t, n.Children, n.SpanID, names)
	}
}

// TestTracedJobsUnderScrape runs overlapping traced discoveries on one
// Lake while a scraper loops the observability endpoints. Run under
// -race via `make check`.
func TestTracedJobsUnderScrape(t *testing.T) {
	const jobs = 3
	st := newTracedStack(t, Config{Workers: 2, QueueDepth: jobs + 1})

	ids := make([]string, jobs)
	traces := make([]string, jobs)
	for i := range ids {
		ids[i], traces[i] = submitTraced(t, st, i)
	}

	// Scraper: hammer the read-only endpoints until every job is done.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		urls := []string{"/metrics", "/v1/traces", "/debug/flight", "/v1/traces/" + traces[0]}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(st.ts.URL + urls[i%len(urls)])
			if err != nil {
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()

	for i, id := range ids {
		doc := waitState(t, st.ts.URL, id)
		if doc.State != StateDone {
			t.Fatalf("job %s state = %s (error %q)", id, doc.State, doc.Error)
		}
		if doc.TraceID != traces[i] {
			t.Errorf("job %s trace_id = %q, want %q", id, doc.TraceID, traces[i])
		}
	}
	close(stop)
	wg.Wait()

	// Every job's trace is retrievable as a single well-formed tree:
	// one root (the HTTP span, whose parent lives in the caller), with
	// the job, queue-wait and discovery spans correctly parented below.
	for i, id := range ids {
		var tree spanTreeDoc
		resp := getJSON(t, st.ts.URL+"/v1/traces/"+traces[i], &tree)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/traces/%s: status %d", traces[i], resp.StatusCode)
		}
		if len(tree.Roots) != 1 {
			t.Fatalf("trace %s has %d roots, want 1", traces[i], len(tree.Roots))
		}
		root := tree.Roots[0]
		if root.Name != telemetry.SpanHTTP {
			t.Errorf("trace %s root span = %s, want %s", traces[i], root.Name, telemetry.SpanHTTP)
		}
		names := make(map[string]int)
		collectNames(t, tree.Roots, "", names)
		for _, want := range []string{telemetry.SpanHTTP, telemetry.SpanJob, telemetry.SpanQueueWait, telemetry.SpanRun, telemetry.SpanRank} {
			if names[want] == 0 {
				t.Errorf("trace %s is missing a %s span (got %v)", traces[i], want, names)
			}
		}

		// The inbound trace ID reaches the run manifest.
		var m core.Manifest
		getJSON(t, st.ts.URL+"/v1/discoveries/"+id+"/manifest", &m)
		if m.TraceID != traces[i] {
			t.Errorf("job %s manifest trace_id = %q, want %q", id, m.TraceID, traces[i])
		}
	}

	// The service metrics cover the traced traffic.
	resp, err := http.Get(st.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"serve_http_requests_post_v1_discoveries",
		"serve_queue_wait_seconds",
		"serve_time_to_result_seconds",
		"lake_tables_lake_test",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics is missing %s", want)
		}
	}

	// The flight recorder saw spans from the same traffic.
	spans, total := st.flight.Snapshot()
	if total == 0 || len(spans) == 0 {
		t.Error("flight recorder recorded no spans")
	}
}
