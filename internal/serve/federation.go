package serve

// Cluster observability federation: the coordinator-side surfaces that
// merge per-node telemetry into one operator view. Workers stay plain
// single-node services; the coordinator pulls their telemetry
// snapshots during Sweep (metrics federation), fans out per-trace span
// fetches on demand (cross-node trace assembly), and keeps the cluster
// event journal. Everything here is read-only over state the
// coordinator already maintains.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"

	"autofeat/internal/obsrv"
	"autofeat/internal/telemetry"
)

// aliveList snapshots every alive worker, draining ones included —
// the fan-out set for telemetry pulls and trace assembly (a draining
// worker still holds spans and metrics).
func (c *Coordinator) aliveList() []workerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]workerState, 0, len(c.order))
	for _, id := range c.order {
		if w := c.workers[id]; w.alive {
			out = append(out, *w)
		}
	}
	return out
}

// pullTelemetry fetches each alive worker's telemetry snapshot
// (GET /cluster/v1/telemetry) and retains the latest per worker; the
// federated /v1/cluster/metrics endpoint renders these without
// touching the workers on the scrape path. Snapshots of workers that
// later die are retained for postmortem reading.
func (c *Coordinator) pullTelemetry(ctx context.Context) {
	mx := c.cfg.Collector.Meter()
	for _, w := range c.aliveList() {
		resp, err := c.forward(ctx, w, http.MethodGet, "/cluster/v1/telemetry", "", nil)
		if err != nil {
			mx.Inc(telemetry.CtrClusterTelemetryErrors)
			c.log.Warn("cluster telemetry pull failed", "worker", w.ID, "error", err)
			continue
		}
		var msg telemetryMsg
		err = json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&msg)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK || CheckProto(msg.Proto) != nil || msg.Snapshot == nil {
			mx.Inc(telemetry.CtrClusterTelemetryErrors)
			c.log.Warn("cluster telemetry pull rejected", "worker", w.ID, "status", resp.StatusCode, "error", err)
			continue
		}
		mx.Inc(telemetry.CtrClusterTelemetryPulls)
		c.snapMu.Lock()
		c.workerSnaps[w.ID] = msg.Snapshot
		c.snapMu.Unlock()
	}
}

// nodeSnapshots assembles the federated rendering input: the
// coordinator's own live snapshot first (spans stripped — the metrics
// view has no use for them), then every pulled worker snapshot in
// sorted node order.
func (c *Coordinator) nodeSnapshots() []obsrv.NodeSnapshot {
	own := c.cfg.Collector.Snapshot()
	own.Spans = nil
	out := []obsrv.NodeSnapshot{{Node: c.cfg.NodeID, Snap: own}}
	c.snapMu.Lock()
	ids := make([]string, 0, len(c.workerSnaps))
	for id := range c.workerSnaps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		out = append(out, obsrv.NodeSnapshot{Node: id, Snap: c.workerSnaps[id]})
	}
	c.snapMu.Unlock()
	return out
}

// handleClusterMetrics serves the merged cluster registry as Prometheus
// text, one node label per series — a single scrape of the coordinator
// covers every node's counters, gauges and histograms.
func (c *Coordinator) handleClusterMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obsrv.WritePrometheusNodes(w, c.nodeSnapshots())
}

// clusterEventsDoc is the GET /v1/cluster/events response body.
type clusterEventsDoc struct {
	Proto string `json:"proto"`
	// Total counts every event ever recorded; Total - len(Events) have
	// been evicted from the ring.
	Total  int64             `json:"total"`
	Events []telemetry.Event `json:"events"`
}

// handleClusterEvents serves the cluster event journal, oldest first.
func (c *Coordinator) handleClusterEvents(w http.ResponseWriter, _ *http.Request) {
	events := c.events.Events()
	if events == nil {
		events = []telemetry.Event{}
	}
	writeJSON(w, http.StatusOK, clusterEventsDoc{Proto: ProtoVersion, Total: c.events.Total(), Events: events})
}

// clusterStoreDoc is the job-store summary inside the status document.
type clusterStoreDoc struct {
	Jobs      int            `json:"jobs"`
	ByState   map[string]int `json:"by_state"`
	Version   int64          `json:"version"`
	Retention int            `json:"retention,omitempty"`
	Evicted   int64          `json:"evicted,omitempty"`
}

// clusterQueueDoc is the cluster-level scheduling summary inside the
// status document: store-side queue depth plus the workers' aggregate
// occupancy from their last heartbeats.
type clusterQueueDoc struct {
	Queued     int `json:"queued"`
	Dispatched int `json:"dispatched"`
	// WorkerQueued/WorkerRunning/WorkerSlots aggregate the alive
	// workers' own schedulers.
	WorkerQueued  int `json:"worker_queued"`
	WorkerRunning int `json:"worker_running"`
	WorkerSlots   int `json:"worker_slots"`
}

// clusterStatusDoc is the GET /v1/cluster/status response body: the
// one-call operator view of membership, placement, load and the
// cluster-wide metric rollup.
type clusterStatusDoc struct {
	Proto     string           `json:"proto"`
	Node      string           `json:"node"`
	WorkersUp int              `json:"workers_up"`
	Workers   []workerDoc      `json:"workers"`
	Lakes     []clusterLakeDoc `json:"lakes"`
	Store     clusterStoreDoc  `json:"store"`
	Queue     clusterQueueDoc  `json:"queue"`
	Events    int64            `json:"events_recorded"`
	// Counters and Gauges are the cluster-wide rollup: every node's
	// registry merged via Snapshot.Merge (counters and gauges summed).
	Counters map[string]int64   `json:"counters"`
	Gauges   map[string]float64 `json:"gauges"`
}

// handleClusterStatus assembles the federated status document.
func (c *Coordinator) handleClusterStatus(w http.ResponseWriter, _ *http.Request) {
	doc := clusterStatusDoc{Proto: ProtoVersion, Node: c.cfg.NodeID, Events: c.events.Total()}
	doc.Workers = c.workerDocs()
	for _, wd := range doc.Workers {
		if !wd.Alive {
			continue
		}
		doc.WorkersUp++
		doc.Queue.WorkerQueued += wd.Queued
		doc.Queue.WorkerRunning += wd.Running
		doc.Queue.WorkerSlots += wd.Slots
	}
	for _, l := range c.store.Lakes() {
		d := clusterLakeDoc{ID: l.ID, Dir: l.Dir, Matcher: l.Matcher, Threshold: l.Threshold}
		if owner, ok := c.ownerFor(l.ID); ok {
			d.Worker = owner.ID
		}
		doc.Lakes = append(doc.Lakes, d)
	}
	byState := c.store.StateCounts()
	doc.Store = clusterStoreDoc{
		Jobs: c.store.Len(), ByState: byState, Version: c.store.Version(),
		Retention: c.cfg.StoreRetention, Evicted: c.store.Evicted(),
	}
	doc.Queue.Queued = byState[ClusterQueued]
	doc.Queue.Dispatched = byState[ClusterDispatched]
	merged := &telemetry.Snapshot{}
	for _, n := range c.nodeSnapshots() {
		merged.Merge(n.Snap)
	}
	doc.Counters, doc.Gauges = merged.Counters, merged.Gauges
	writeJSON(w, http.StatusOK, doc)
}

// workerDocs renders the membership table (sorted by worker ID) — the
// shared body of GET /cluster/v1/workers and the status surface.
func (c *Coordinator) workerDocs() []workerDoc {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := append([]string(nil), c.order...)
	sort.Strings(ids)
	docs := make([]workerDoc, 0, len(ids))
	for _, id := range ids {
		ws := c.workers[id]
		docs = append(docs, workerDoc{
			ID: ws.ID, Addr: ws.Addr, Alive: ws.alive, Draining: ws.Draining,
			Lakes:  append([]string(nil), ws.Lakes...),
			Queued: ws.Queued, Running: ws.Running, Slots: ws.Slots,
			LastSeenUnixMS:   ws.lastSeen.UnixMilli(),
			SecondsSinceSeen: now.Sub(ws.lastSeen).Seconds(),
		})
	}
	return docs
}

// federatedTraceDoc is the coordinator's GET /v1/traces/{id} response
// body: the obsrv traceDoc shape plus the node list the spans came
// from.
type federatedTraceDoc struct {
	TraceID string                `json:"trace_id"`
	Spans   int                   `json:"spans"`
	Nodes   []string              `json:"nodes"`
	Roots   []*telemetry.SpanNode `json:"roots"`
}

// handleTraceList serves the coordinator-local trace summaries (the
// relay/dispatch spans it retains). Workers keep their own /v1/traces
// listing; federation happens per trace ID, where the coordinator
// knows exactly which workers to ask.
func (c *Coordinator) handleTraceList(w http.ResponseWriter, _ *http.Request) {
	sums := c.cfg.Traces.Summaries()
	if sums == nil {
		sums = []telemetry.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": sums})
}

// handleFederatedTrace assembles one cross-node trace: the
// coordinator's own relay/dispatch spans plus every alive worker's
// spans for the trace ID, merged through BuildSpanTree into a single
// forest (one tree when parentage is intact). Workers without the
// trace answer 404 and are skipped; unreachable workers count as proxy
// errors but do not fail the assembly.
func (c *Coordinator) handleFederatedTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	mx := c.cfg.Collector.Meter()
	spans := c.cfg.Traces.Spans(id)
	var nodes []string
	if len(spans) > 0 {
		nodes = append(nodes, c.cfg.NodeID)
	}
	for _, wk := range c.aliveList() {
		mx.Inc(telemetry.CtrClusterProxied)
		resp, err := c.forward(r.Context(), wk, http.MethodGet, "/cluster/v1/traces/"+id, "", nil)
		if err != nil {
			mx.Inc(telemetry.CtrClusterProxyErrors)
			c.log.Warn("cluster trace fetch failed", "worker", wk.ID, "trace", id, "error", err)
			continue
		}
		var msg traceSpansMsg
		err = json.NewDecoder(io.LimitReader(resp.Body, 16<<20)).Decode(&msg)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			continue // worker holds no spans for this trace
		}
		if err != nil || resp.StatusCode != http.StatusOK || CheckProto(msg.Proto) != nil {
			c.log.Warn("cluster trace fetch rejected", "worker", wk.ID, "trace", id, "status", resp.StatusCode, "error", err)
			continue
		}
		if len(msg.Spans) > 0 {
			spans = append(spans, msg.Spans...)
			nodes = append(nodes, wk.ID)
		}
	}
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown trace %s on any cluster node", id))
		return
	}
	writeJSON(w, http.StatusOK, federatedTraceDoc{
		TraceID: id, Spans: len(spans), Nodes: nodes,
		Roots: telemetry.BuildSpanTree(spans),
	})
}
