package baselines

import (
	"math"
	"math/rand"
	"time"

	"autofeat/internal/frame"
	"autofeat/internal/graph"
	"autofeat/internal/ml"
	"autofeat/internal/relational"
)

// MAB reimplements the multi-armed-bandit feature augmentation of Liu et
// al. ("Feature Augmentation with Reinforcement Learning"): candidate
// joins are bandit arms, the reward of pulling an arm is the validation
// accuracy gain of the target model after performing that join, and arms
// are chosen by UCB1. Accepted joins extend the augmented table, which
// opens transitive arms — MAB handles multi-hop paths, but (as the
// AutoFeat paper observes) only through joins whose column names are
// identical on both sides, which blocks most transitive exploration in
// practice.
//
// Every pull trains the model once; with tens of pulls per run this is the
// "expensive model execution step" that makes MAB the slowest method in
// Figures 4 and 6.
type MAB struct {
	// MaxPulls bounds the bandit rounds (model trainings).
	MaxPulls int
	// Explore is the UCB1 exploration coefficient.
	Explore float64
}

// NewMAB returns MAB with the defaults used in our evaluation.
func NewMAB() *MAB { return &MAB{MaxPulls: 20, Explore: math.Sqrt2} }

// Name implements Method.
func (*MAB) Name() string { return "mab" }

// arm is one candidate join: from a table already in the augmented result
// to a new table, over same-named columns.
type arm struct {
	edge  graph.Edge
	pulls int
	sum   float64
}

// Augment implements Method.
func (m *MAB) Augment(g *graph.Graph, base, label string, factory ml.Factory, seed int64) (*Result, error) {
	start := time.Now()
	bt, qlabel, err := prefixedBase(g, base, label)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	selStart := time.Now()
	current := bt
	inResult := map[string]bool{base: true}
	joinedTables := 0

	sp, err := trainValSplit(current, qlabel, seed)
	if err != nil {
		return nil, err
	}
	currentAcc, err := fitAndScore(sp, featuresOf(current, qlabel), qlabel, factory, seed)
	if err != nil {
		return nil, err
	}

	arms := m.collectArms(g, inResult)
	totalPulls := 0
	for round := 0; round < m.MaxPulls && len(arms) > 0; round++ {
		// UCB1 arm choice.
		bestIdx := -1
		bestUCB := math.Inf(-1)
		for i, a := range arms {
			var ucb float64
			if a.pulls == 0 {
				ucb = math.Inf(1)
			} else {
				ucb = a.sum/float64(a.pulls) + m.Explore*math.Sqrt(math.Log(float64(totalPulls+1))/float64(a.pulls))
			}
			if ucb > bestUCB {
				bestUCB = ucb
				bestIdx = i
			}
		}
		a := arms[bestIdx]
		totalPulls++

		candidate, ok := m.tryJoin(current, g.Table(a.edge.B), a.edge, rng)
		reward := -0.01
		if ok {
			// Model-in-the-loop reward: retrain and measure the gain.
			csp, err := trainValSplit(candidate, qlabel, seed+int64(round))
			if err != nil {
				return nil, err
			}
			acc, err := fitAndScore(csp, featuresOf(candidate, qlabel), qlabel, factory, seed)
			if err != nil {
				return nil, err
			}
			reward = acc - currentAcc
			if reward > 0 {
				current = candidate
				currentAcc = acc
				inResult[a.edge.B] = true
				joinedTables++
				arms = m.collectArms(g, inResult) // transitive arms open up
				continue
			}
		}
		a.pulls++
		a.sum += reward
		// Remove hopeless arms after two failed pulls.
		if a.pulls >= 2 && a.sum/float64(a.pulls) <= 0 {
			arms = append(arms[:bestIdx], arms[bestIdx+1:]...)
		}
	}
	selTime := time.Since(selStart)

	features := featuresOf(current, qlabel)
	eval, err := evalFrame(current, features, qlabel, factory, seed)
	if err != nil {
		return nil, err
	}
	return &Result{
		Method:        "mab",
		Table:         current,
		Features:      features,
		Eval:          eval,
		TablesJoined:  joinedTables,
		SelectionTime: selTime,
		TotalTime:     time.Since(start),
	}, nil
}

// collectArms lists candidate joins from the current result set to new
// tables, restricted — like the original MAB — to identical column names.
func (m *MAB) collectArms(g *graph.Graph, inResult map[string]bool) []*arm {
	var out []*arm
	for node := range inResult {
		for _, e := range g.EdgesFrom(node) {
			if inResult[e.B] {
				continue
			}
			if e.ColA != e.ColB {
				continue // MAB's same-name restriction
			}
			out = append(out, &arm{edge: e})
		}
	}
	return out
}

// tryJoin materialises one candidate join; ok=false when infeasible or no
// rows match.
func (m *MAB) tryJoin(current *frame.Frame, right *frame.Frame, e graph.Edge, rng *rand.Rand) (*frame.Frame, bool) {
	if right == nil {
		return nil, false
	}
	res, err := relational.LeftJoin(current, right, e.A+"."+e.ColA, e.ColB,
		relational.Options{Normalize: true, Rng: rng})
	if err != nil || res.MatchedRows == 0 {
		return nil, false
	}
	return res.Frame, true
}
