package baselines

import (
	"time"

	"autofeat/internal/graph"
	"autofeat/internal/ml"
)

// Base is the BASE baseline: train on the unaugmented base table. It
// anchors the effectiveness comparison — every augmentation method is
// judged by how far it lifts accuracy above this.
type Base struct{}

// NewBase returns the BASE baseline.
func NewBase() *Base { return &Base{} }

// Name implements Method.
func (*Base) Name() string { return "base" }

// Augment implements Method: no augmentation, just evaluate.
func (*Base) Augment(g *graph.Graph, base, label string, factory ml.Factory, seed int64) (*Result, error) {
	start := time.Now()
	bt, qlabel, err := prefixedBase(g, base, label)
	if err != nil {
		return nil, err
	}
	features := featuresOf(bt, qlabel)
	eval, err := evalFrame(bt, features, qlabel, factory, seed)
	if err != nil {
		return nil, err
	}
	return &Result{
		Method:       "base",
		Table:        bt,
		Features:     features,
		Eval:         eval,
		TablesJoined: 0,
		TotalTime:    time.Since(start),
	}, nil
}
