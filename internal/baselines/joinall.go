package baselines

import (
	"math/rand"
	"time"

	"autofeat/internal/fselect"
	"autofeat/internal/graph"
	"autofeat/internal/ml"
	"autofeat/internal/relational"
)

// JoinAll is the exhaustive baseline: join every table reachable from the
// base (BFS order, best-weight edge per newly reached table) into one wide
// table. With Filter=false it trains on everything (the paper's JoinAll);
// with Filter=true one filter feature-selection pass (Spearman top-κ) runs
// over the wide table first (JoinAll+F).
//
// The paper's Equation (3) explains why JoinAll explodes combinatorially
// on non-KFK schemata; this implementation materialises the single
// canonical BFS ordering, which is the tractable case the paper actually
// ran (the benchmark setting; JoinAll is omitted from the data-lake
// figures for exactly this reason).
type JoinAll struct {
	// Filter enables the JoinAll+F post-join selection pass.
	Filter bool
	// Kappa is the filter's top-κ budget.
	Kappa int
}

// NewJoinAll returns JoinAll (filter=false) or JoinAll+F (filter=true).
func NewJoinAll(filter bool) *JoinAll { return &JoinAll{Filter: filter, Kappa: 15} }

// Name implements Method.
func (j *JoinAll) Name() string {
	if j.Filter {
		return "joinall+f"
	}
	return "joinall"
}

// Augment implements Method.
func (j *JoinAll) Augment(g *graph.Graph, base, label string, factory ml.Factory, seed int64) (*Result, error) {
	start := time.Now()
	bt, qlabel, err := prefixedBase(g, base, label)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	// BFS join of everything reachable. reachedVia maps each new table to
	// the table it was first reached from, so transitive joins use the
	// correct qualified join key.
	current := bt
	joined := 0
	visited := map[string]bool{base: true}
	queue := []string{base}
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(node) {
			if visited[nb] {
				continue
			}
			e, ok := bestEdge(g, node, nb)
			if !ok {
				continue
			}
			res, err := relational.LeftJoin(current, g.Table(nb), e.A+"."+e.ColA, e.ColB,
				relational.Options{Normalize: true, Rng: rng})
			if err != nil || res.MatchedRows == 0 {
				continue
			}
			current = res.Frame
			visited[nb] = true
			joined++
			queue = append(queue, nb)
		}
	}

	features := featuresOf(current, qlabel)
	var selTime time.Duration
	if j.Filter && len(features) > 0 {
		selStart := time.Now()
		cols := make([][]float64, len(features))
		for i, name := range features {
			cols[i] = current.Column(name).Floats()
		}
		y, err := current.Labels(qlabel)
		if err != nil {
			return nil, err
		}
		scores := (fselect.SpearmanRelevance{}).Scores(cols, y)
		idx, _ := fselect.SelectKBest(scores, j.Kappa)
		if len(idx) > 0 {
			kept := make([]string, len(idx))
			for i, k := range idx {
				kept[i] = features[k]
			}
			features = kept
		}
		selTime = time.Since(selStart)
	}

	eval, err := evalFrame(current, features, qlabel, factory, seed)
	if err != nil {
		return nil, err
	}
	return &Result{
		Method:        j.Name(),
		Table:         current,
		Features:      features,
		Eval:          eval,
		TablesJoined:  joined,
		SelectionTime: selTime,
		TotalTime:     time.Since(start),
	}, nil
}
