package baselines

import (
	"math/rand"
	"testing"

	"autofeat/internal/frame"
	"autofeat/internal/graph"
	"autofeat/internal/ml"
)

// bmLake builds a benchmark-style lake. The predictive feature is one hop
// away in "profile" (same-name key so MAB can reach it) and two hops away
// in "gold" via "bridge".
func bmLake(t *testing.T, n int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	ids := make([]int64, n)
	y := make([]int64, n)
	noise := make([]float64, n)
	weak := make([]float64, n)
	strong := make([]float64, n)
	ref := make([]int64, n)
	key := make([]int64, n)
	gsig := make([]float64, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		y[i] = int64(i % 2)
		noise[i] = rng.NormFloat64()
		weak[i] = float64(y[i])*0.8 + rng.NormFloat64()
		strong[i] = float64(y[i])*2.5 + rng.NormFloat64()*0.6
		ref[i] = int64(i + 5000)
		key[i] = int64(i + 5000)
		gsig[i] = float64(y[i])*3 + rng.NormFloat64()*0.5
	}
	base := frame.New("base")
	addCol(t, base, frame.NewIntColumn("id", ids, nil))
	addCol(t, base, frame.NewFloatColumn("noise", noise, nil))
	addCol(t, base, frame.NewIntColumn("y", y, nil))

	profile := frame.New("profile")
	addCol(t, profile, frame.NewIntColumn("id", ids, nil)) // same name as base.id
	addCol(t, profile, frame.NewFloatColumn("strong", strong, nil))
	addCol(t, profile, frame.NewFloatColumn("weak", weak, nil))

	bridge := frame.New("bridge")
	addCol(t, bridge, frame.NewIntColumn("pid", ids, nil)) // different name: blocks MAB
	addCol(t, bridge, frame.NewIntColumn("ref", ref, nil))

	gold := frame.New("gold")
	addCol(t, gold, frame.NewIntColumn("gkey", key, nil))
	addCol(t, gold, frame.NewFloatColumn("gsig", gsig, nil))

	g := graph.New()
	for _, f := range []*frame.Frame{base, profile, bridge, gold} {
		g.AddTable(f)
	}
	mustEdge(t, g, graph.Edge{A: "base", B: "profile", ColA: "id", ColB: "id", Weight: 1, KFK: true})
	mustEdge(t, g, graph.Edge{A: "base", B: "bridge", ColA: "id", ColB: "pid", Weight: 1, KFK: true})
	mustEdge(t, g, graph.Edge{A: "bridge", B: "gold", ColA: "ref", ColB: "gkey", Weight: 1, KFK: true})
	return g
}

func addCol(t *testing.T, f *frame.Frame, c *frame.Column) {
	t.Helper()
	if err := f.AddColumn(c); err != nil {
		t.Fatal(err)
	}
}

func mustEdge(t *testing.T, g *graph.Graph, e graph.Edge) {
	t.Helper()
	if err := g.AddEdge(e); err != nil {
		t.Fatal(err)
	}
}

func lgbm(t *testing.T) ml.Factory {
	t.Helper()
	f, ok := ml.FactoryByName("lightgbm")
	if !ok {
		t.Fatal("lightgbm factory missing")
	}
	return f
}

func TestBase(t *testing.T) {
	g := bmLake(t, 400)
	res, err := NewBase().Augment(g, "base", "y", lgbm(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TablesJoined != 0 {
		t.Fatal("BASE joins nothing")
	}
	if res.Method != "base" {
		t.Fatal("method name")
	}
	if res.Eval.Accuracy > 0.7 {
		t.Fatalf("noise-only base accuracy %.3f suspiciously high", res.Eval.Accuracy)
	}
	if res.TotalTime <= 0 {
		t.Fatal("total time must be recorded")
	}
	if _, err := NewBase().Augment(g, "ghost", "y", lgbm(t), 1); err == nil {
		t.Fatal("unknown base must fail")
	}
	if _, err := NewBase().Augment(g, "base", "ghost", lgbm(t), 1); err == nil {
		t.Fatal("unknown label must fail")
	}
}

func TestARDAJoinsOnlyDirectNeighbours(t *testing.T) {
	g := bmLake(t, 400)
	res, err := NewARDA().Augment(g, "base", "y", lgbm(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TablesJoined != 2 {
		t.Fatalf("ARDA must join the 2 direct neighbours, joined %d", res.TablesJoined)
	}
	if res.Table.HasColumn("gold.gsig") {
		t.Fatal("ARDA is single-hop; gold must be unreachable")
	}
	if res.Eval.Accuracy < 0.8 {
		t.Fatalf("ARDA with profile.strong should beat 0.8, got %.3f", res.Eval.Accuracy)
	}
	if res.SelectionTime <= 0 {
		t.Fatal("RIFS time must be recorded")
	}
	// RIFS must not keep injected noise columns.
	for _, f := range res.Features {
		if len(f) > 6 && f[:6] == "__arda" {
			t.Fatalf("injected random feature leaked: %s", f)
		}
	}
}

func TestMABRespectsSameNameRestriction(t *testing.T) {
	g := bmLake(t, 400)
	res, err := NewMAB().Augment(g, "base", "y", lgbm(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	// profile shares the join column name "id" -> reachable; bridge/gold
	// have mismatched names -> blocked.
	if res.Table.HasColumn("bridge.ref") || res.Table.HasColumn("gold.gsig") {
		t.Fatal("MAB must not traverse differently-named join columns")
	}
	if !res.Table.HasColumn("profile.strong") {
		t.Fatal("MAB should accept the profitable profile join")
	}
	if res.TablesJoined != 1 {
		t.Fatalf("TablesJoined = %d, want 1", res.TablesJoined)
	}
	if res.Eval.Accuracy < 0.8 {
		t.Fatalf("MAB accuracy %.3f too low after joining profile", res.Eval.Accuracy)
	}
	if res.SelectionTime <= 0 {
		t.Fatal("bandit time must be recorded")
	}
}

func TestJoinAllJoinsEverythingReachable(t *testing.T) {
	g := bmLake(t, 400)
	res, err := NewJoinAll(false).Augment(g, "base", "y", lgbm(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TablesJoined != 3 {
		t.Fatalf("JoinAll must join all 3 reachable tables, joined %d", res.TablesJoined)
	}
	if !res.Table.HasColumn("gold.gsig") {
		t.Fatal("JoinAll must reach gold transitively")
	}
	if res.Method != "joinall" {
		t.Fatal("name")
	}
	if res.SelectionTime != 0 {
		t.Fatal("JoinAll does no feature selection")
	}
	if res.Eval.Accuracy < 0.85 {
		t.Fatalf("JoinAll accuracy %.3f too low with all signals joined", res.Eval.Accuracy)
	}
}

func TestJoinAllFFiltersFeatures(t *testing.T) {
	g := bmLake(t, 400)
	ja := NewJoinAll(true)
	ja.Kappa = 3
	res, err := ja.Augment(g, "base", "y", lgbm(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "joinall+f" {
		t.Fatal("name")
	}
	if len(res.Features) > 3 {
		t.Fatalf("filter must cap at κ=3 features: %v", res.Features)
	}
	if res.SelectionTime <= 0 {
		t.Fatal("filter time must be recorded")
	}
	// The strongest features must survive the filter.
	found := false
	for _, f := range res.Features {
		if f == "gold.gsig" || f == "profile.strong" {
			found = true
		}
	}
	if !found {
		t.Fatalf("filter dropped all informative features: %v", res.Features)
	}
}

func TestAllAndByName(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("All() = %d methods, want 5", len(all))
	}
	names := []string{"base", "arda", "mab", "joinall", "joinall+f"}
	for i, m := range all {
		if m.Name() != names[i] {
			t.Errorf("method %d = %q, want %q", i, m.Name(), names[i])
		}
		if ByName(names[i]) == nil {
			t.Errorf("ByName(%q) = nil", names[i])
		}
	}
	if ByName("nope") != nil {
		t.Fatal("unknown name must return nil")
	}
}

func TestModelInLoopIsSlowerThanFilter(t *testing.T) {
	// Sanity check of the efficiency claim's mechanism: ARDA/MAB
	// selection involves model training, JoinAll+F does one cheap filter
	// pass; on the same lake the filter must be faster.
	g := bmLake(t, 400)
	arda, err := NewARDA().Augment(g, "base", "y", lgbm(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	jaf, err := NewJoinAll(true).Augment(g, "base", "y", lgbm(t), 1)
	if err != nil {
		t.Fatal(err)
	}
	if arda.SelectionTime <= jaf.SelectionTime {
		t.Fatalf("ARDA selection (%v) should exceed a single filter pass (%v)",
			arda.SelectionTime, jaf.SelectionTime)
	}
}
