// Package baselines implements the comparison systems of Section VII-B:
//
//   - BASE: the unaugmented base table.
//   - ARDA: single-hop (star schema) augmentation with random-injection
//     feature selection, reimplemented from Chepurko et al. (as the
//     AutoFeat authors did, the original source being unavailable).
//   - MAB: multi-armed-bandit feature augmentation after Liu et al.,
//     with the original's limitation that joins require identical join
//     column names on both sides.
//   - JoinAll: join every reachable table, no feature selection.
//   - JoinAll+F: JoinAll followed by one filter feature-selection pass.
//
// All methods share the Method interface so the experiment harness can
// sweep them uniformly. ARDA and MAB train the target model inside their
// selection loops — the model-execution cost AutoFeat's ranking avoids —
// so their SelectionTime is expected to dominate, reproducing the paper's
// efficiency result.
package baselines

import (
	"fmt"
	"math/rand"
	"time"

	"autofeat/internal/frame"
	"autofeat/internal/graph"
	"autofeat/internal/ml"
)

// Result is a baseline's end-to-end outcome, mirroring the measurements in
// Figures 4–7: accuracy, the feature-selection share of the runtime, and
// the number of joined tables printed on the bars.
type Result struct {
	Method       string
	Table        *frame.Frame
	Features     []string
	Eval         ml.EvalResult
	TablesJoined int
	// SelectionTime covers feature selection only; TotalTime adds joins
	// and the final model training.
	SelectionTime time.Duration
	TotalTime     time.Duration
}

// Method is one augmentation strategy under evaluation.
type Method interface {
	// Name identifies the method in reports ("arda", "mab", ...).
	Name() string
	// Augment runs the strategy over the DRG for the given base table and
	// label, training/evaluating with the factory's model.
	Augment(g *graph.Graph, base, label string, factory ml.Factory, seed int64) (*Result, error)
}

// evalFrame trains the factory's model on a stratified 80/20 split and
// returns the evaluation — the shared final step of every method.
func evalFrame(f *frame.Frame, features []string, label string, factory ml.Factory, seed int64) (ml.EvalResult, error) {
	return ml.EvaluateFrame(f, features, label, factory.New(seed), seed)
}

// qualifiedLabel maps an unqualified label to its prefixed form.
func qualifiedLabel(base, label string) string { return base + "." + label }

// prefixedBase fetches and prefixes the base table, failing when the base
// or label is missing.
func prefixedBase(g *graph.Graph, base, label string) (*frame.Frame, string, error) {
	bt := g.Table(base)
	if bt == nil {
		return nil, "", fmt.Errorf("baselines: base table %q not in graph", base)
	}
	if !bt.HasColumn(label) {
		return nil, "", fmt.Errorf("baselines: base table %q has no label %q", base, label)
	}
	return bt.Prefixed(base), qualifiedLabel(base, label), nil
}

// featuresOf lists a frame's columns minus the label.
func featuresOf(f *frame.Frame, label string) []string {
	out := make([]string, 0, f.NumCols()-1)
	for _, name := range f.ColumnNames() {
		if name != label {
			out = append(out, name)
		}
	}
	return out
}

// bestEdge returns the highest-weight edge between two nodes, oriented
// from `from`; ok=false when none exists.
func bestEdge(g *graph.Graph, from, to string) (graph.Edge, bool) {
	edges := g.EdgesBetween(from, to)
	if len(edges) == 0 {
		return graph.Edge{}, false
	}
	best := edges[0]
	for _, e := range edges[1:] {
		if e.Weight > best.Weight {
			best = e
		}
	}
	return best, true
}

// trainValSplit splits a frame 75/25 with stratification for the
// model-in-the-loop baselines' internal wrapper evaluations.
func trainValSplit(f *frame.Frame, label string, seed int64) (*frame.Split, error) {
	return f.Imputed().StratifiedSplit(label, 0.75, rand.New(rand.NewSource(seed)))
}

// fitAndScore trains a fresh model on the split restricted to features and
// returns validation accuracy. This is the "expensive model execution
// step" of ARDA and MAB.
func fitAndScore(sp *frame.Split, features []string, label string, factory ml.Factory, seed int64) (float64, error) {
	Xtr, err := sp.Train.Matrix(features)
	if err != nil {
		return 0, err
	}
	ytr, err := sp.Train.Labels(label)
	if err != nil {
		return 0, err
	}
	Xva, err := sp.Test.Matrix(features)
	if err != nil {
		return 0, err
	}
	yva, err := sp.Test.Labels(label)
	if err != nil {
		return 0, err
	}
	m := factory.New(seed)
	if err := m.Fit(Xtr, ytr); err != nil {
		return 0, err
	}
	return ml.Accuracy(m.Predict(Xva), yva), nil
}

// All returns every baseline in report order.
func All() []Method {
	return []Method{NewBase(), NewARDA(), NewMAB(), NewJoinAll(false), NewJoinAll(true)}
}

// ByName resolves a baseline by name (base, arda, mab, joinall,
// joinall+f), or nil.
func ByName(name string) Method {
	switch name {
	case "base":
		return NewBase()
	case "arda":
		return NewARDA()
	case "mab":
		return NewMAB()
	case "joinall":
		return NewJoinAll(false)
	case "joinall+f":
		return NewJoinAll(true)
	default:
		return nil
	}
}
