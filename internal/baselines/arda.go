package baselines

import (
	"math/rand"
	"sort"
	"time"

	"autofeat/internal/frame"
	"autofeat/internal/graph"
	"autofeat/internal/ml"
	"autofeat/internal/relational"
)

// ARDA reimplements the feature-selection core of "ARDA: Automatic
// Relational Data Augmentation for Machine Learning" (Chepurko et al.,
// PVLDB 2020) at the fidelity level the AutoFeat authors used: the
// original system's source was unavailable, so the algorithm is rebuilt
// from the paper.
//
// ARDA is limited to star schemata: it left-joins every table directly
// connected to the base table (single hop), then runs RIFS —
// random-injection feature selection. RIFS injects synthetic random
// features, measures feature importance with the target model (here:
// permutation importance on a validation split), discards real features
// that cannot beat the injected noise, and wrapper-evaluates a small
// ladder of keep-fractions with full model retraining to pick the best
// subset. The repeated model training is exactly the cost AutoFeat's
// ranking avoids.
type ARDA struct {
	// InjectFrac is the ratio of injected random features to real ones.
	InjectFrac float64
	// Fractions is the ladder of candidate keep-fractions wrapper-
	// evaluated with the model.
	Fractions []float64
}

// NewARDA returns ARDA with the defaults used in our evaluation: 20%
// injected noise and a 4-step keep-fraction ladder.
func NewARDA() *ARDA {
	return &ARDA{InjectFrac: 0.2, Fractions: []float64{0.1, 0.25, 0.5, 1.0}}
}

// Name implements Method.
func (*ARDA) Name() string { return "arda" }

// Augment implements Method.
func (a *ARDA) Augment(g *graph.Graph, base, label string, factory ml.Factory, seed int64) (*Result, error) {
	start := time.Now()
	bt, qlabel, err := prefixedBase(g, base, label)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	// Star-schema join: every direct neighbour, best join column each.
	joined := bt
	joinedTables := 0
	for _, nb := range g.Neighbors(base) {
		e, ok := bestEdge(g, base, nb)
		if !ok {
			continue
		}
		res, err := relational.LeftJoin(joined, g.Table(nb), e.A+"."+e.ColA, e.ColB,
			relational.Options{Normalize: true, Rng: rng})
		if err != nil || res.MatchedRows == 0 {
			continue
		}
		joined = res.Frame
		joinedTables++
	}
	features := featuresOf(joined, qlabel)

	// RIFS (feature selection proper) — timed separately.
	selStart := time.Now()
	kept, err := a.rifs(joined, features, qlabel, factory, rng, seed)
	if err != nil {
		return nil, err
	}
	selTime := time.Since(selStart)

	eval, err := evalFrame(joined, kept, qlabel, factory, seed)
	if err != nil {
		return nil, err
	}
	return &Result{
		Method:        "arda",
		Table:         joined,
		Features:      kept,
		Eval:          eval,
		TablesJoined:  joinedTables,
		SelectionTime: selTime,
		TotalTime:     time.Since(start),
	}, nil
}

// rifs runs random-injection feature selection and returns the kept
// feature names.
func (a *ARDA) rifs(f *frame.Frame, features []string, label string, factory ml.Factory, rng *rand.Rand, seed int64) ([]string, error) {
	if len(features) == 0 {
		return features, nil
	}
	// Inject random features.
	nInject := int(float64(len(features))*a.InjectFrac) + 1
	withNoise := f
	injected := make([]string, 0, nInject)
	for i := 0; i < nInject; i++ {
		vals := make([]float64, f.NumRows())
		for j := range vals {
			vals[j] = rng.NormFloat64()
		}
		name := "__arda_random_" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		col := frame.NewFloatColumn(name, vals, nil)
		g := frame.New(withNoise.Name())
		for _, c := range withNoise.Columns() {
			if err := g.AddColumn(c); err != nil {
				return nil, err
			}
		}
		if err := g.AddColumn(col); err != nil {
			return nil, err
		}
		withNoise = g
		injected = append(injected, name)
	}
	all := append(append([]string{}, features...), injected...)

	sp, err := trainValSplit(withNoise, label, seed)
	if err != nil {
		return nil, err
	}
	imp, err := permutationImportance(sp, all, label, factory, seed, rng)
	if err != nil {
		return nil, err
	}

	// Noise gate: real features must beat the best injected feature.
	noiseMax := 0.0
	for _, name := range injected {
		if imp[name] > noiseMax {
			noiseMax = imp[name]
		}
	}
	type fi struct {
		name string
		imp  float64
	}
	ranked := make([]fi, 0, len(features))
	for _, name := range features {
		ranked = append(ranked, fi{name, imp[name]})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].imp != ranked[j].imp {
			return ranked[i].imp > ranked[j].imp
		}
		return ranked[i].name < ranked[j].name
	})
	var passing []string
	for _, r := range ranked {
		if r.imp > noiseMax {
			passing = append(passing, r.name)
		}
	}
	if len(passing) == 0 {
		// Nothing beats noise; fall back to the full ranked list so the
		// wrapper ladder still has candidates.
		for _, r := range ranked {
			passing = append(passing, r.name)
		}
	}

	// Wrapper ladder: retrain the model per keep-fraction, keep the best.
	bestAcc := -1.0
	var best []string
	for _, frac := range a.Fractions {
		k := int(float64(len(passing))*frac + 0.5)
		if k < 1 {
			k = 1
		}
		if k > len(passing) {
			k = len(passing)
		}
		cand := passing[:k]
		acc, err := fitAndScore(sp, cand, label, factory, seed)
		if err != nil {
			return nil, err
		}
		if acc > bestAcc {
			bestAcc = acc
			best = cand
		}
	}
	return best, nil
}

// permutationImportance trains once and measures, per feature, the
// validation accuracy drop when that feature's values are shuffled.
func permutationImportance(sp *frame.Split, features []string, label string, factory ml.Factory, seed int64, rng *rand.Rand) (map[string]float64, error) {
	Xtr, err := sp.Train.Matrix(features)
	if err != nil {
		return nil, err
	}
	ytr, err := sp.Train.Labels(label)
	if err != nil {
		return nil, err
	}
	Xva, err := sp.Test.Matrix(features)
	if err != nil {
		return nil, err
	}
	yva, err := sp.Test.Labels(label)
	if err != nil {
		return nil, err
	}
	m := factory.New(seed)
	if err := m.Fit(Xtr, ytr); err != nil {
		return nil, err
	}
	baseAcc := ml.Accuracy(m.Predict(Xva), yva)

	out := make(map[string]float64, len(features))
	col := make([]float64, len(Xva))
	perm := make([]int, len(Xva))
	for j, name := range features {
		for i := range Xva {
			col[i] = Xva[i][j]
			perm[i] = i
		}
		rng.Shuffle(len(perm), func(x, y int) { perm[x], perm[y] = perm[y], perm[x] })
		for i := range Xva {
			Xva[i][j] = col[perm[i]]
		}
		out[name] = baseAcc - ml.Accuracy(m.Predict(Xva), yva)
		for i := range Xva {
			Xva[i][j] = col[i]
		}
	}
	return out, nil
}
