package obsrv

// HTTP instrumentation middleware: every route mounted on the Server —
// its own endpoints and everything internal/serve mounts through Handle
// — gets W3C traceparent ingestion/emission, an HTTP-handling span, and
// per-route RED metrics (request/error counters, latency histogram).

import (
	"net/http"
	"strings"
	"time"

	"autofeat/internal/telemetry"
)

// statusWriter captures the response status for span attributes and
// error counting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the status before delegating.
func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// routeKey turns a Go 1.22 mux pattern into a metric-name suffix:
// "GET /v1/discoveries/{id}" -> "get_v1_discoveries_id". Keeping the
// route in the name (instead of a label) matches the registry's
// label-free design; Prometheus still sees one series per route after
// promName sanitisation.
func routeKey(pattern string) string {
	var b strings.Builder
	lastUnderscore := true // also trims leading separators
	for _, r := range strings.ToLower(pattern) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastUnderscore = false
		case !lastUnderscore:
			b.WriteByte('_')
			lastUnderscore = true
		}
	}
	return strings.TrimRight(b.String(), "_")
}

// instrument wraps h with tracing and per-route metrics. An HTTP span is
// created only when the request carries a traceparent header or is a
// mutating (non-GET) request, so metric scrapers polling /metrics or
// /v1/traces do not fill the trace store with their own requests;
// metrics are recorded for every request regardless.
func (s *Server) instrument(pattern string, h http.Handler) http.Handler {
	route := routeKey(pattern)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		mx := s.cfg.Collector.Meter()
		ctx := r.Context()
		remote, hasRemote := telemetry.ParseTraceparent(r.Header.Get("traceparent"))
		if hasRemote {
			ctx = telemetry.ContextWithRemote(ctx, remote)
		}
		var sp telemetry.Span
		if hasRemote || r.Method != http.MethodGet {
			ctx, sp = telemetry.StartSpan(ctx, s.cfg.Collector, telemetry.SpanHTTP)
			sp.SetStr("method", r.Method)
			sp.SetStr("route", route)
			if sc := sp.Context(); sc.IsValid() {
				// Emit the span's identity back so external callers can
				// stitch AutoFeat into their own traces.
				w.Header().Set("traceparent", sc.Traceparent())
			}
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, r.WithContext(ctx))
		sp.SetInt("status", sw.status)
		sp.End()
		mx.Inc(telemetry.CtrHTTPRequestsPrefix + route)
		if sw.status >= 400 {
			mx.Inc(telemetry.CtrHTTPErrorsPrefix + route)
		}
		mx.Observe(telemetry.HistHTTPSecondsPrefix+route, time.Since(start).Seconds())
	})
}
