package obsrv

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"autofeat/internal/telemetry"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"discovery.paths_explored":           "autofeat_discovery_paths_explored",
		"relational.left_join_seconds":       "autofeat_relational_left_join_seconds",
		"discovery.pruned.quality_below_tau": "autofeat_discovery_pruned_quality_below_tau",
		"weird-name with spaces":             "autofeat_weird_name_with_spaces",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromFloat(t *testing.T) {
	if got := promFloat(0.25); got != "0.25" {
		t.Errorf("promFloat(0.25) = %q", got)
	}
	if got := promFloat(1e-5); got != "1e-05" {
		t.Errorf("promFloat(1e-5) = %q", got)
	}
}

// populatedSnapshot returns a snapshot with counters, a gauge and a
// histogram exercised, as after a real discovery run.
func populatedSnapshot() *telemetry.Snapshot {
	c := telemetry.New()
	m := c.Meter()
	for i := 0; i < 5; i++ {
		m.Inc(telemetry.CtrJoins)
	}
	m.Add(telemetry.CtrPathsExplored, 7)
	m.Inc(telemetry.CtrPrunedPrefix + "quality_below_tau")
	m.SetGauge(telemetry.GaugeWorkers, 4)
	for _, v := range []float64{1e-6, 3e-5, 0.002, 0.2, 100} {
		m.Observe(telemetry.HistJoinSeconds, v)
	}
	return c.Snapshot()
}

// TestWritePrometheusFormat asserts the exposition is structurally valid:
// every line is a comment or "name[{labels}] value", every family has a
// TYPE header, histogram buckets are cumulative and end at the total
// count, and _sum/_count are present.
func TestWritePrometheusFormat(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, populatedSnapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if out == "" {
		t.Fatal("empty exposition")
	}
	typed := map[string]string{}
	var lastCum int64 = -1
	var lastHist string
	sawInf, sawSum, sawCount := false, false, false
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("sample %q: bad value %q", line, val)
		}
		if !strings.HasPrefix(name, MetricPrefix) {
			t.Fatalf("sample %q not namespaced under %q", line, MetricPrefix)
		}
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(base, "_bucket"), "_sum"), "_count")
		if _, ok := typed[family]; !ok && typed[base] == "" {
			t.Fatalf("sample %q has no preceding TYPE header", line)
		}
		if strings.Contains(name, "_bucket{") {
			hist := base
			cum, _ := strconv.ParseInt(val, 10, 64)
			if hist != lastHist {
				lastHist, lastCum = hist, -1
			}
			if cum < lastCum {
				t.Fatalf("bucket counts not cumulative at %q (%d after %d)", line, cum, lastCum)
			}
			lastCum = cum
			if strings.Contains(name, `le="+Inf"`) {
				sawInf = true
			}
		}
		if strings.HasSuffix(base, "_sum") {
			sawSum = true
		}
		if strings.HasSuffix(base, "_count") {
			sawCount = true
		}
	}
	if !sawInf || !sawSum || !sawCount {
		t.Fatalf("histogram series incomplete: +Inf=%v sum=%v count=%v", sawInf, sawSum, sawCount)
	}
	// The +Inf bucket equals _count: 5 observations.
	if !strings.Contains(out, `autofeat_relational_left_join_seconds_bucket{le="+Inf"} 5`) {
		t.Fatalf("+Inf bucket != observation count:\n%s", out)
	}
	if !strings.Contains(out, "autofeat_relational_joins_total 5") &&
		!strings.Contains(out, "autofeat_relational_joins 5") {
		t.Fatalf("counter missing from exposition:\n%s", out)
	}
}

func TestWritePrometheusNilSnapshot(t *testing.T) {
	if err := WritePrometheus(io.Discard, nil); err != nil {
		t.Fatal(err)
	}
}

// TestNilRunProgress proves the disabled tracker is fully inert: every
// method on a nil receiver no-ops and Snapshot yields a zero status.
func TestNilRunProgress(t *testing.T) {
	var p *RunProgress
	p.Begin("b", "b.y", 3, time.Second, 10, 100)
	p.SetPhase(PhaseDiscover)
	p.SetWorkers(4)
	p.BeginDepth(1, 2)
	p.AddEnumerated(5)
	p.SetDepthCandidates(5)
	p.JoinStart()
	p.JoinDone(telemetry.PruneJoinFailed)
	p.AddPruned(telemetry.PruneSimilarity, 2)
	p.AddRowsJoined(100)
	p.AddPathsKept(1)
	p.MarkPartial("deadline")
	p.Finish()
	if got := p.Snapshot(); got.ID != "" || got.Done {
		t.Fatalf("nil snapshot not zero: %+v", got)
	}
	if p.ID() != "" {
		t.Fatalf("nil ID() = %q", p.ID())
	}
}

func TestRunProgressLifecycle(t *testing.T) {
	p := NewRunProgress("r1")
	if got := p.Snapshot().Phase; got != PhasePending {
		t.Fatalf("initial phase %q", got)
	}
	p.Begin("base", "base.y", 3, 2*time.Second, 50, 1000)
	p.SetWorkers(4)
	p.SetPhase(PhaseDiscover)
	p.BeginDepth(1, 1)
	p.AddEnumerated(10)
	p.SetDepthCandidates(8)
	p.JoinStart()
	p.JoinDone("")
	p.JoinStart()
	p.JoinDone(telemetry.PruneQualityBelowTau)
	p.AddPruned(telemetry.PruneSimilarity, 2)
	p.AddPruned("not_a_reason", 9) // dropped, not counted
	p.AddRowsJoined(500)
	p.AddPathsKept(1)

	st := p.Snapshot()
	if st.ID != "r1" || st.Base != "base" || st.Label != "base.y" {
		t.Fatalf("identity wrong: %+v", st)
	}
	if st.Depth != 1 || st.MaxDepth != 3 || st.Frontier != 1 {
		t.Fatalf("depth state wrong: %+v", st)
	}
	if st.Enumerated != 10 || st.DepthJoins != 8 || st.DepthDone != 2 || st.Evaluated != 2 {
		t.Fatalf("join counters wrong: %+v", st)
	}
	if st.Pruned[telemetry.PruneQualityBelowTau] != 1 || st.Pruned[telemetry.PruneSimilarity] != 2 {
		t.Fatalf("prune counters wrong: %+v", st.Pruned)
	}
	if len(st.Pruned) != 2 {
		t.Fatalf("unknown reason leaked into %v", st.Pruned)
	}
	if st.Workers != 4 || st.WorkersBusy != 0 {
		t.Fatalf("worker occupancy wrong: %+v", st)
	}
	b := st.Budgets
	if b.TimeoutSeconds != 2 || b.MaxEvalJoins != 50 || b.EvalJoinsUsed != 2 ||
		b.MaxJoinedRows != 1000 || b.JoinedRowsUsed != 500 {
		t.Fatalf("budgets wrong: %+v", b)
	}

	// BeginDepth resets per-depth counters but not totals.
	p.BeginDepth(2, 3)
	st = p.Snapshot()
	if st.DepthDone != 0 || st.DepthJoins != 0 || st.Evaluated != 2 {
		t.Fatalf("depth reset wrong: %+v", st)
	}

	// First partial reason wins.
	p.MarkPartial("deadline")
	p.MarkPartial("max_eval_joins")
	p.Finish()
	st = p.Snapshot()
	if !st.Partial || st.PartialReason != "deadline" {
		t.Fatalf("partial state wrong: %+v", st)
	}
	if !st.Done || st.Phase != PhaseDone {
		t.Fatalf("finish state wrong: %+v", st)
	}
}

func TestServerEndpoints(t *testing.T) {
	srv := NewServer(Config{Collector: telemetry.New(), EnablePprof: true})
	p := NewRunProgress("run-a")
	p.Begin("base", "base.y", 3, 0, 0, 0)
	p.SetPhase(PhaseDiscover)
	srv.Register(p)
	srv.Register(nil)            // ignored
	srv.Register(&RunProgress{}) // no ID: ignored
	srv.Register(p)              // re-register: no duplicate

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}

	resp, body := get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", resp.StatusCode)
	}
	var health struct {
		Status string `json:"status"`
		Runs   int    `json:"runs"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Runs != 1 {
		t.Fatalf("/healthz = %+v", health)
	}

	resp, body = get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	_ = body

	resp, body = get("/runs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/runs status %d", resp.StatusCode)
	}
	var runs struct {
		Runs []struct {
			ID    string `json:"id"`
			Phase string `json:"phase"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(body, &runs); err != nil {
		t.Fatal(err)
	}
	if len(runs.Runs) != 1 || runs.Runs[0].ID != "run-a" || runs.Runs[0].Phase != PhaseDiscover {
		t.Fatalf("/runs = %+v", runs)
	}

	resp, body = get("/runs/run-a")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/runs/run-a status %d", resp.StatusCode)
	}
	var st RunStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != "run-a" || st.Base != "base" || st.Phase != PhaseDiscover {
		t.Fatalf("/runs/run-a = %+v", st)
	}

	resp, _ = get("/runs/ghost")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/runs/ghost status %d, want 404", resp.StatusCode)
	}

	resp, _ = get("/debug/pprof/cmdline")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}
}

// TestServerPprofDisabled proves pprof stays off the mux by default.
func TestServerPprofDisabled(t *testing.T) {
	ts := httptest.NewServer(NewServer(Config{}).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without EnablePprof (status %d)", resp.StatusCode)
	}
}
