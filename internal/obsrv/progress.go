package obsrv

import (
	"sync"
	"sync/atomic"
	"time"

	"autofeat/internal/telemetry"
)

// Run phases reported by RunProgress.Snapshot, in pipeline order. The
// discovery loop advances through sample → discover → rank → ranked; the
// evaluation phase adds materialize → train → done.
const (
	// PhasePending is the phase before the run's first Begin call.
	PhasePending = "pending"
	// PhaseSample covers the stratified base-table sample.
	PhaseSample = "sample"
	// PhaseDiscover covers the BFS traversal (Algorithm 1).
	PhaseDiscover = "discover"
	// PhaseRank covers the final Algorithm 2 ordering.
	PhaseRank = "rank"
	// PhaseRanked is the resting state between discovery and evaluation.
	PhaseRanked = "ranked"
	// PhaseMaterialize covers full-size path materialisation.
	PhaseMaterialize = "materialize"
	// PhaseTrain covers model training on the top-k paths.
	PhaseTrain = "train"
	// PhaseDone is the terminal state set by Finish.
	PhaseDone = "done"
)

// pruneReasons fixes the per-reason counter layout of RunProgress: one
// atomic cell per telemetry pruning reason, so hot-path increments never
// touch a map or a lock.
var pruneReasons = []string{
	telemetry.PruneSimilarity,
	telemetry.PruneJoinFailed,
	telemetry.PruneQualityBelowTau,
	telemetry.PruneBeamEvicted,
	telemetry.PruneMaxPathsCap,
	telemetry.PruneBudgetExhausted,
	telemetry.PruneCancelled,
}

// pruneSlot maps a reason name to its cell index (-1 when unknown).
func pruneSlot(reason string) int {
	for i, r := range pruneReasons {
		if r == reason {
			return i
		}
	}
	return -1
}

// RunProgress is the lock-cheap live tracker behind the introspection
// server's /runs/{id} endpoint. The discovery loop updates it from every
// worker goroutine while HTTP handlers read it concurrently, so the hot
// fields are atomics; the rarely-written strings (phase, partial reason)
// sit behind a mutex that is never taken per join.
//
// A nil *RunProgress is a valid disabled tracker: every method no-ops, so
// core threads `prog.X(...)` calls unconditionally — the same contract as
// the telemetry collector.
type RunProgress struct {
	id string

	mu            sync.Mutex
	base, label   string
	phase         string
	partialReason string

	startedUnixMS atomic.Int64
	endedUnixMS   atomic.Int64

	depth, maxDepth, frontier  atomic.Int64
	depthCandidates, depthDone atomic.Int64
	joinsEnumerated            atomic.Int64
	joinsEvaluated             atomic.Int64
	pathsKept                  atomic.Int64
	pruned                     [7]atomic.Int64 // indexed by pruneSlot
	rowsJoined                 atomic.Int64

	workers, workersBusy atomic.Int64

	timeoutNS     atomic.Int64
	maxEvalJoins  atomic.Int64
	maxJoinedRows atomic.Int64

	partial atomic.Bool
	done    atomic.Bool
}

// NewRunProgress returns a tracker identified by id (the /runs/{id} URL
// segment). Attach it to core.Config.Progress and register it with a
// Server to make the run observable while it executes.
func NewRunProgress(id string) *RunProgress {
	return &RunProgress{id: id, phase: PhasePending}
}

// ID returns the tracker's run identifier ("" for a nil tracker).
func (p *RunProgress) ID() string {
	if p == nil {
		return ""
	}
	return p.id
}

// Begin records the run's identity and limits and stamps the start time.
// Called once by Discovery.RunContext before the traversal starts.
func (p *RunProgress) Begin(base, label string, maxDepth int, timeout time.Duration, maxEvalJoins int, maxJoinedRows int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.base, p.label = base, label
	p.mu.Unlock()
	p.startedUnixMS.Store(time.Now().UnixMilli())
	p.maxDepth.Store(int64(maxDepth))
	p.timeoutNS.Store(int64(timeout))
	p.maxEvalJoins.Store(int64(maxEvalJoins))
	p.maxJoinedRows.Store(maxJoinedRows)
}

// SetPhase advances the run to the named pipeline phase.
func (p *RunProgress) SetPhase(phase string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.phase = phase
	p.mu.Unlock()
}

// SetWorkers records the resolved worker-pool size.
func (p *RunProgress) SetWorkers(n int) {
	if p == nil {
		return
	}
	p.workers.Store(int64(n))
}

// BeginDepth opens one BFS level: its 1-based depth and frontier size.
// The per-depth candidate and completion counters reset.
func (p *RunProgress) BeginDepth(depth, frontier int) {
	if p == nil {
		return
	}
	p.depth.Store(int64(depth))
	p.frontier.Store(int64(frontier))
	p.depthCandidates.Store(0)
	p.depthDone.Store(0)
}

// AddEnumerated counts candidate joins enumerated (pre-pruning) at the
// current depth.
func (p *RunProgress) AddEnumerated(n int) {
	if p == nil {
		return
	}
	p.joinsEnumerated.Add(int64(n))
}

// SetDepthCandidates records how many of the enumerated candidates will
// actually be evaluated this depth (after caps and budgets).
func (p *RunProgress) SetDepthCandidates(n int) {
	if p == nil {
		return
	}
	p.depthCandidates.Store(int64(n))
}

// JoinStart marks one worker busy on a join evaluation.
func (p *RunProgress) JoinStart() {
	if p == nil {
		return
	}
	p.workersBusy.Add(1)
}

// JoinDone marks one join evaluation finished: the worker frees up, the
// evaluated and per-depth counters advance, and a non-empty prune reason
// is tallied.
func (p *RunProgress) JoinDone(pruneReason string) {
	if p == nil {
		return
	}
	p.workersBusy.Add(-1)
	p.joinsEvaluated.Add(1)
	p.depthDone.Add(1)
	if pruneReason != "" {
		p.AddPruned(pruneReason, 1)
	}
}

// AddPruned tallies n prunes under the given telemetry reason. Unknown
// reasons are dropped (the reason vocabulary is fixed in telemetry).
func (p *RunProgress) AddPruned(reason string, n int) {
	if p == nil || n == 0 {
		return
	}
	if i := pruneSlot(reason); i >= 0 {
		p.pruned[i].Add(int64(n))
	}
}

// AddRowsJoined advances the cumulative joined-rows budget consumption.
func (p *RunProgress) AddRowsJoined(n int64) {
	if p == nil {
		return
	}
	p.rowsJoined.Add(n)
}

// AddPathsKept counts paths that survived into the ranking.
func (p *RunProgress) AddPathsKept(n int) {
	if p == nil {
		return
	}
	p.pathsKept.Add(int64(n))
}

// MarkPartial flags the run partial under reason; the first cause wins,
// mirroring Ranking.PartialReason.
func (p *RunProgress) MarkPartial(reason string) {
	if p == nil {
		return
	}
	if p.partial.CompareAndSwap(false, true) {
		p.mu.Lock()
		p.partialReason = reason
		p.mu.Unlock()
	}
}

// Finish moves the run to the done phase and stamps the end time.
func (p *RunProgress) Finish() {
	if p == nil {
		return
	}
	p.SetPhase(PhaseDone)
	p.done.Store(true)
	p.endedUnixMS.Store(time.Now().UnixMilli())
}

// RunBudgets is the budget section of a RunStatus: configured limits and
// live consumption. Zero limits mean "unlimited".
type RunBudgets struct {
	TimeoutSeconds float64 `json:"timeout_seconds"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	MaxEvalJoins   int64   `json:"max_eval_joins"`
	EvalJoinsUsed  int64   `json:"eval_joins_used"`
	MaxJoinedRows  int64   `json:"max_joined_rows"`
	JoinedRowsUsed int64   `json:"joined_rows_used"`
}

// RunStatus is the JSON document served at /runs/{id}: a point-in-time
// view of an in-flight (or finished) run.
type RunStatus struct {
	ID            string           `json:"id"`
	Base          string           `json:"base"`
	Label         string           `json:"label"`
	Phase         string           `json:"phase"`
	StartedUnixMS int64            `json:"started_unix_ms"`
	Depth         int64            `json:"depth"`
	MaxDepth      int64            `json:"max_depth"`
	Frontier      int64            `json:"frontier"`
	DepthJoins    int64            `json:"depth_joins"`
	DepthDone     int64            `json:"depth_done"`
	Enumerated    int64            `json:"joins_enumerated"`
	Evaluated     int64            `json:"joins_evaluated"`
	PathsKept     int64            `json:"paths_kept"`
	Pruned        map[string]int64 `json:"pruned"`
	Budgets       RunBudgets       `json:"budgets"`
	Workers       int64            `json:"workers"`
	WorkersBusy   int64            `json:"workers_busy"`
	Partial       bool             `json:"partial"`
	PartialReason string           `json:"partial_reason,omitempty"`
	Done          bool             `json:"done"`
}

// Snapshot captures the tracker's current state. The numbers are read
// individually (no global lock), so a snapshot taken mid-depth is a
// consistent-enough live view, not a serialised checkpoint. A nil tracker
// yields a zero status.
func (p *RunProgress) Snapshot() RunStatus {
	if p == nil {
		return RunStatus{}
	}
	p.mu.Lock()
	st := RunStatus{
		ID:            p.id,
		Base:          p.base,
		Label:         p.label,
		Phase:         p.phase,
		PartialReason: p.partialReason,
	}
	p.mu.Unlock()
	st.StartedUnixMS = p.startedUnixMS.Load()
	st.Depth = p.depth.Load()
	st.MaxDepth = p.maxDepth.Load()
	st.Frontier = p.frontier.Load()
	st.DepthJoins = p.depthCandidates.Load()
	st.DepthDone = p.depthDone.Load()
	st.Enumerated = p.joinsEnumerated.Load()
	st.Evaluated = p.joinsEvaluated.Load()
	st.PathsKept = p.pathsKept.Load()
	st.Pruned = make(map[string]int64, len(pruneReasons))
	for i, r := range pruneReasons {
		if v := p.pruned[i].Load(); v > 0 {
			st.Pruned[r] = v
		}
	}
	st.Workers = p.workers.Load()
	st.WorkersBusy = p.workersBusy.Load()
	st.Partial = p.partial.Load()
	st.Done = p.done.Load()

	st.Budgets = RunBudgets{
		TimeoutSeconds: time.Duration(p.timeoutNS.Load()).Seconds(),
		MaxEvalJoins:   p.maxEvalJoins.Load(),
		EvalJoinsUsed:  st.Evaluated,
		MaxJoinedRows:  p.maxJoinedRows.Load(),
		JoinedRowsUsed: p.rowsJoined.Load(),
	}
	if start := st.StartedUnixMS; start > 0 {
		end := p.endedUnixMS.Load()
		if end == 0 {
			end = time.Now().UnixMilli()
		}
		st.Budgets.ElapsedSeconds = float64(end-start) / 1e3
	}
	return st
}
