package obsrv

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"

	"autofeat/internal/telemetry"
)

// Prometheus text exposition rendering, zero-dependency: the /metrics
// endpoint converts a telemetry.Snapshot into the text format scrapers
// expect (one "# TYPE" header per family, cumulative histogram buckets
// with an le label, _sum and _count series).

// MetricPrefix namespaces every exported series, so the dotted internal
// names ("discovery.paths_explored") become valid Prometheus names
// ("autofeat_discovery_paths_explored").
const MetricPrefix = "autofeat_"

// promName converts an internal dotted metric name into a valid
// Prometheus metric name: the autofeat_ namespace prefix plus the name
// with every character outside [a-zA-Z0-9_:] replaced by '_'.
func promName(name string) string {
	b := []byte(MetricPrefix + name)
	for i := len(MetricPrefix); i < len(b); i++ {
		c := b[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// promFloat formats a float the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format (version 0.0.4): counters and gauges as single series,
// histograms as cumulative le-bucketed series plus _sum and _count.
// Families are emitted in sorted name order so the output is stable.
func WritePrometheus(w io.Writer, s *telemetry.Snapshot) error {
	if s == nil {
		return nil
	}
	for _, name := range sortedNames(s.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(s.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedNames(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		// The telemetry histogram stores per-bucket counts; Prometheus
		// buckets are cumulative.
		var cum int64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// NodeSnapshot pairs one cluster node's ID with its telemetry snapshot
// for federated rendering: the coordinator collects one per worker
// (plus its own) and WritePrometheusNodes renders them as one
// exposition.
type NodeSnapshot struct {
	Node string
	Snap *telemetry.Snapshot
}

// WritePrometheusNodes renders several nodes' snapshots as one
// Prometheus text exposition, every series labelled with its node of
// origin ({node="worker-a"}). Each metric family appears once (a
// single "# TYPE" header across all nodes), then one series per node
// holding it, in node order as given; histogram buckets carry both
// node and le labels. Families are emitted in sorted name order and
// nil snapshots are skipped, so the output is stable.
func WritePrometheusNodes(w io.Writer, nodes []NodeSnapshot) error {
	live := make([]NodeSnapshot, 0, len(nodes))
	for _, n := range nodes {
		if n.Snap != nil {
			live = append(live, n)
		}
	}
	counters := map[string]bool{}
	gauges := map[string]bool{}
	hists := map[string]bool{}
	for _, n := range live {
		for name := range n.Snap.Counters {
			counters[name] = true
		}
		for name := range n.Snap.Gauges {
			gauges[name] = true
		}
		for name := range n.Snap.Histograms {
			hists[name] = true
		}
	}
	for _, name := range sortedNames(counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", pn); err != nil {
			return err
		}
		for _, n := range live {
			v, ok := n.Snap.Counters[name]
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s{node=%q} %d\n", pn, n.Node, v); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedNames(gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", pn); err != nil {
			return err
		}
		for _, n := range live {
			v, ok := n.Snap.Gauges[name]
			if !ok {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s{node=%q} %s\n", pn, n.Node, promFloat(v)); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedNames(hists) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		for _, n := range live {
			h, ok := n.Snap.Histograms[name]
			if !ok {
				continue
			}
			var cum int64
			for i, bound := range h.Bounds {
				if i < len(h.Counts) {
					cum += h.Counts[i]
				}
				if _, err := fmt.Fprintf(w, "%s_bucket{node=%q,le=%q} %d\n", pn, n.Node, promFloat(bound), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{node=%q,le=\"+Inf\"} %d\n", pn, n.Node, h.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum{node=%q} %s\n%s_count{node=%q} %d\n",
				pn, n.Node, promFloat(h.Sum), pn, n.Node, h.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
