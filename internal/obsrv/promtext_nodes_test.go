package obsrv

import (
	"strings"
	"testing"

	"autofeat/internal/telemetry"
)

// TestWritePrometheusNodes pins the federated exposition format: one
// "# TYPE" header per family across all nodes, one node-labelled series
// per holder, cumulative histogram buckets carrying node and le labels,
// and nil snapshots skipped.
func TestWritePrometheusNodes(t *testing.T) {
	coord := &telemetry.Snapshot{
		Counters: map[string]int64{"cluster.dispatches": 4},
		Gauges:   map[string]float64{"cluster.workers_alive": 2},
	}
	worker := &telemetry.Snapshot{
		Counters: map[string]int64{"cluster.dispatches": 0, "serve.jobs": 9},
		Histograms: map[string]telemetry.HistogramSnapshot{
			"serve.http_seconds.discoveries": {
				Count: 3, Sum: 0.75,
				Bounds: []float64{0.1, 1},
				Counts: []int64{2, 1},
			},
		},
	}
	var sb strings.Builder
	err := WritePrometheusNodes(&sb, []NodeSnapshot{
		{Node: "coordinator", Snap: coord},
		{Node: "worker-a", Snap: worker},
		{Node: "worker-dead", Snap: nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# TYPE autofeat_cluster_dispatches counter\n",
		`autofeat_cluster_dispatches{node="coordinator"} 4`,
		`autofeat_cluster_dispatches{node="worker-a"} 0`,
		`autofeat_cluster_workers_alive{node="coordinator"} 2`,
		`autofeat_serve_jobs{node="worker-a"} 9`,
		`autofeat_serve_http_seconds_discoveries_bucket{node="worker-a",le="0.1"} 2`,
		`autofeat_serve_http_seconds_discoveries_bucket{node="worker-a",le="1"} 3`,
		`autofeat_serve_http_seconds_discoveries_bucket{node="worker-a",le="+Inf"} 3`,
		`autofeat_serve_http_seconds_discoveries_sum{node="worker-a"} 0.75`,
		`autofeat_serve_http_seconds_discoveries_count{node="worker-a"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE autofeat_cluster_dispatches counter"); n != 1 {
		t.Errorf("family header emitted %d times, want once", n)
	}
	if strings.Contains(out, "worker-dead") {
		t.Error("nil snapshot's node leaked into the exposition")
	}
	// A node without a family contributes no series for it.
	if strings.Contains(out, `autofeat_serve_jobs{node="coordinator"}`) {
		t.Error("coordinator got a series for a family it does not hold")
	}
}
