package obsrv_test

// Live scrape test: an in-flight discovery run (workers > 1) is scraped
// concurrently through the introspection server's /metrics and /runs/{id}
// endpoints. Run under -race, this proves the RunProgress tracker and the
// Prometheus renderer are safe against the worker pool's writes and that
// /runs/{id} reflects live progress. The test lives in an external package
// so it can import internal/core without a cycle (core imports obsrv).

import (
	"encoding/json"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"autofeat/internal/core"
	"autofeat/internal/frame"
	"autofeat/internal/graph"
	"autofeat/internal/obsrv"
	"autofeat/internal/telemetry"
)

// scrapeLake builds a small star schema whose predictive signal is one
// hop away, big enough that discovery spends real time in the worker pool.
func scrapeLake(t *testing.T, n int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	ids := make([]int64, n)
	noise := make([]float64, n)
	y := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
		noise[i] = rng.NormFloat64()
		y[i] = int64(i % 2)
	}
	base := frame.New("base")
	for _, c := range []*frame.Column{
		frame.NewIntColumn("id", ids, nil),
		frame.NewFloatColumn("noise", noise, nil),
		frame.NewIntColumn("y", y, nil),
	} {
		if err := base.AddColumn(c); err != nil {
			t.Fatal(err)
		}
	}
	g := graph.New()
	g.AddTable(base)
	// Several satellites so one BFS depth holds enough candidate joins to
	// keep multiple workers busy.
	for s := 0; s < 6; s++ {
		key := make([]int64, n)
		val := make([]float64, n)
		for i := range key {
			key[i] = int64(i)
			val[i] = float64(y[i])*2 + rng.NormFloat64()
		}
		sat := frame.New("sat" + string(rune('a'+s)))
		for _, c := range []*frame.Column{
			frame.NewIntColumn("key", key, nil),
			frame.NewFloatColumn("val", val, nil),
		} {
			if err := sat.AddColumn(c); err != nil {
				t.Fatal(err)
			}
		}
		g.AddTable(sat)
		if err := g.AddEdge(graph.Edge{A: "base", B: sat.Name(), ColA: "id", ColB: "key", Weight: 1, KFK: true}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestLiveScrapeDuringDiscovery(t *testing.T) {
	g := scrapeLake(t, 2000)

	cfg := core.DefaultConfig()
	cfg.Workers = 4
	cfg.MaxDepth = 2
	cfg.Telemetry = telemetry.New()
	cfg.Progress = obsrv.NewRunProgress("live")
	cfg.Logger = telemetry.NewLogger(io.Discard, slog.LevelDebug, "json")

	srv := obsrv.NewServer(obsrv.Config{Collector: cfg.Telemetry})
	srv.Register(cfg.Progress)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	d, err := core.New(g, "base", "y", cfg)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	scrape := func(path string, check func([]byte)) {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Error(err)
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s: status %d", path, resp.StatusCode)
				return
			}
			check(body)
			time.Sleep(time.Millisecond)
		}
	}
	wg.Add(2)
	go scrape("/metrics", func(b []byte) {
		if len(b) > 0 && !strings.Contains(string(b), "autofeat_") {
			t.Errorf("metrics body missing namespace: %q", b)
		}
	})
	var sawProgress sync.Once
	var progressed bool
	go scrape("/runs/live", func(b []byte) {
		var st obsrv.RunStatus
		if err := json.Unmarshal(b, &st); err != nil {
			t.Errorf("bad /runs/live JSON: %v", err)
			return
		}
		if st.ID != "live" {
			t.Errorf("run id %q", st.ID)
		}
		if st.Evaluated > 0 && st.Phase != obsrv.PhasePending {
			sawProgress.Do(func() { progressed = true })
		}
	})

	r, err := d.Run()
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Paths) == 0 {
		t.Fatal("no paths ranked")
	}

	// After the run the snapshot must agree with the ranking totals.
	st := cfg.Progress.Snapshot()
	if st.Evaluated != int64(r.PathsExplored) {
		t.Fatalf("progress evaluated %d != ranking explored %d", st.Evaluated, r.PathsExplored)
	}
	if st.PathsKept != int64(len(r.Paths)) {
		t.Fatalf("progress kept %d != ranked %d", st.PathsKept, len(r.Paths))
	}
	if st.Phase != obsrv.PhaseRanked {
		t.Fatalf("phase after Run = %q, want %q", st.Phase, obsrv.PhaseRanked)
	}
	if st.WorkersBusy != 0 {
		t.Fatalf("workers still busy after run: %d", st.WorkersBusy)
	}
	if !progressed {
		t.Log("note: scraper never observed mid-run progress (run finished too fast); counters still verified post-run")
	}
}
