package obsrv

// The trace-store and flight-recorder endpoints: GET /v1/traces lists
// retained traces, GET /v1/traces/{id} renders one trace's span tree,
// and GET /debug/flight dumps the ring buffer of recent spans for
// postmortem debugging. All three are read-only views over the
// telemetry.TraceStore / telemetry.FlightRecorder configured on the
// server.

import (
	"net/http"

	"autofeat/internal/telemetry"
)

// tracesDoc is the GET /v1/traces response body.
type tracesDoc struct {
	Traces []telemetry.TraceSummary `json:"traces"`
}

// traceDoc is the GET /v1/traces/{id} response body: the trace's spans
// assembled into a forest (normally a single tree; spans whose parent
// was dropped or lives in the caller's process root separately).
type traceDoc struct {
	TraceID string                `json:"trace_id"`
	Spans   int                   `json:"spans"`
	Roots   []*telemetry.SpanNode `json:"roots"`
}

// flightDoc is the GET /debug/flight response body.
type flightDoc struct {
	Capacity int `json:"capacity"`
	// RecordedTotal counts every span ever recorded; RecordedTotal -
	// len(Spans) have been overwritten by newer ones.
	RecordedTotal int64                  `json:"recorded_total"`
	Spans         []telemetry.SpanRecord `json:"spans"`
}

func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	sums := s.cfg.Traces.Summaries()
	if sums == nil {
		sums = []telemetry.TraceSummary{}
	}
	writeJSON(w, tracesDoc{Traces: sums})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	spans := s.cfg.Traces.Spans(id)
	if spans == nil {
		writeError(w, http.StatusNotFound, "unknown trace "+id)
		return
	}
	writeJSON(w, traceDoc{TraceID: id, Spans: len(spans), Roots: telemetry.BuildSpanTree(spans)})
}

func (s *Server) handleFlight(w http.ResponseWriter, _ *http.Request) {
	spans, total := s.cfg.Flight.Snapshot()
	if spans == nil {
		spans = []telemetry.SpanRecord{}
	}
	writeJSON(w, flightDoc{Capacity: s.cfg.Flight.Cap(), RecordedTotal: total, Spans: spans})
}
