// Package obsrv is the live introspection layer of the AutoFeat
// reproduction: an embeddable HTTP server that exposes the state of the
// online pipeline while it runs, instead of only after it finishes (the
// telemetry sinks' job).
//
// Endpoints:
//
//   - /metrics — the telemetry registry in Prometheus text exposition
//     format (counters, gauges, fixed-bucket duration histograms),
//     rendered zero-dependency by WritePrometheus.
//   - /healthz — liveness: uptime and the number of registered runs.
//   - /runs — the registered run IDs with their phase.
//   - /runs/{id} — the live RunStatus of one run: BFS depth, frontier
//     size, joins enumerated/evaluated/pruned by reason, budget
//     consumption and worker-pool occupancy, fed by the RunProgress
//     tracker threaded through internal/core.
//   - /v1/traces and /v1/traces/{id} — the bounded in-memory trace
//     store (when Config.Traces is set): per-trace summaries and the
//     full span tree of one trace.
//   - /debug/flight — the flight-recorder ring buffer of recent spans
//     (when Config.Flight is set), for after-the-fact debugging.
//   - /debug/pprof/... — the standard net/http/pprof handlers (optional),
//     sharing the same mux and the same explicitly-configured
//     http.Server (ReadHeaderTimeout set, unlike the bare
//     http.ListenAndServe it replaces).
//
// The server is wired into cmd/autofeat and cmd/experiments behind the
// -serve flag; everything is disabled by default and costs nothing when
// off (RunProgress and the telemetry collector are both nil-safe).
package obsrv

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"autofeat/internal/telemetry"
)

// Config configures a Server.
type Config struct {
	// Addr is the listen address for ListenAndServe (e.g. "localhost:6060").
	Addr string
	// Collector is the telemetry registry /metrics renders. Nil serves an
	// empty (but valid) exposition.
	Collector *telemetry.Collector
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/.
	EnablePprof bool
	// Traces, when non-nil, mounts GET /v1/traces and /v1/traces/{id}
	// over the bounded trace store (attach it to the Collector's tracer
	// with Collector.ObserveSpans so finished spans flow in).
	Traces *telemetry.TraceStore
	// Flight, when non-nil, mounts GET /debug/flight over the
	// flight-recorder ring buffer of recent spans.
	Flight *telemetry.FlightRecorder
	// ReadHeaderTimeout bounds how long the server waits for request
	// headers (slow-loris protection). 0 defaults to 5s.
	ReadHeaderTimeout time.Duration
}

// Server is the introspection HTTP server: a run registry plus the
// /metrics, /healthz, /runs and optional pprof endpoints on one mux.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	srv   *http.Server
	start time.Time

	mu    sync.Mutex
	runs  map[string]*RunProgress
	order []string
}

// NewServer builds a server; call ListenAndServe to serve cfg.Addr, or
// mount Handler on an existing listener (tests use httptest).
func NewServer(cfg Config) *Server {
	if cfg.ReadHeaderTimeout <= 0 {
		cfg.ReadHeaderTimeout = 5 * time.Second
	}
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		start: time.Now(),
		runs:  make(map[string]*RunProgress),
	}
	s.Handle("GET /healthz", http.HandlerFunc(s.handleHealthz))
	s.Handle("GET /metrics", http.HandlerFunc(s.handleMetrics))
	s.Handle("GET /runs", http.HandlerFunc(s.handleRuns))
	s.Handle("GET /runs/{id}", http.HandlerFunc(s.handleRun))
	if cfg.Traces != nil {
		s.Handle("GET /v1/traces", http.HandlerFunc(s.handleTraces))
		s.Handle("GET /v1/traces/{id}", http.HandlerFunc(s.handleTrace))
	}
	if cfg.Flight != nil {
		s.Handle("GET /debug/flight", http.HandlerFunc(s.handleFlight))
	}
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.srv = &http.Server{
		Addr:              cfg.Addr,
		Handler:           s.mux,
		ReadHeaderTimeout: cfg.ReadHeaderTimeout,
	}
	return s
}

// Register adds (or replaces) a run tracker under its ID, making it
// visible at /runs/{id}. Safe for concurrent use.
func (s *Server) Register(p *RunProgress) {
	if s == nil || p == nil || p.ID() == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.runs[p.ID()]; !ok {
		s.order = append(s.order, p.ID())
	}
	s.runs[p.ID()] = p
}

// Run returns the registered tracker for id, or nil.
func (s *Server) Run(id string) *RunProgress {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs[id]
}

// Handler returns the server's mux for mounting on an external listener.
func (s *Server) Handler() http.Handler { return s.mux }

// Handle registers an additional handler on the server's mux, letting
// other subsystems (the discovery service in internal/serve) share the
// introspection listener. pattern follows Go 1.22 mux syntax, method
// prefixes included. Every handler mounted this way is wrapped in the
// instrumentation middleware: traceparent ingestion/emission plus
// per-route request/error counters and a latency histogram (the pprof
// handlers are the one exception, mounted bare in NewServer).
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, s.instrument(pattern, h))
}

// ListenAndServe serves cfg.Addr on the explicitly-configured
// http.Server until Close; it has the blocking semantics of
// http.Server.ListenAndServe.
func (s *Server) ListenAndServe() error { return s.srv.ListenAndServe() }

// Close immediately closes the underlying http.Server.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown gracefully shuts the underlying http.Server down: it stops
// accepting new connections and waits for in-flight requests until ctx
// expires. Pair it with serve.Service.Drain for a clean SIGTERM path.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// healthDoc is the /healthz response body.
type healthDoc struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Runs          int     `json:"runs"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n := len(s.runs)
	s.mu.Unlock()
	writeJSON(w, healthDoc{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Runs:          n,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap := s.cfg.Collector.Snapshot()
	_ = WritePrometheus(w, snap)
}

// runsDoc is the /runs response body: one brief entry per registered run,
// in registration order.
type runsDoc struct {
	Runs []runBrief `json:"runs"`
}

// runBrief is the /runs list entry for one run.
type runBrief struct {
	ID      string `json:"id"`
	Phase   string `json:"phase"`
	Partial bool   `json:"partial"`
	Done    bool   `json:"done"`
}

func (s *Server) handleRuns(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	trackers := make([]*RunProgress, 0, len(s.order))
	for _, id := range s.order {
		trackers = append(trackers, s.runs[id])
	}
	s.mu.Unlock()
	doc := runsDoc{Runs: make([]runBrief, 0, len(trackers))}
	for _, p := range trackers {
		st := p.Snapshot()
		doc.Runs = append(doc.Runs, runBrief{ID: st.ID, Phase: st.Phase, Partial: st.Partial, Done: st.Done})
	}
	writeJSON(w, doc)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	p := s.Run(r.PathValue("id"))
	if p == nil {
		writeError(w, http.StatusNotFound, "unknown run "+r.PathValue("id"))
		return
	}
	writeJSON(w, p.Snapshot())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError answers with the machine-readable {"error": ...} body the
// rest of the service uses, instead of http.NotFound's plain text.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
