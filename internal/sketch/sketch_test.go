package sketch

import (
	"fmt"
	"math"
	"testing"
)

// build sketches a synthetic distinct-value set of the given size with
// the given key prefix.
func build(k int, prefix string, n int) *MinHash {
	s := New(k)
	for i := 0; i < n; i++ {
		s.AddHash(Hash64(fmt.Sprintf("%s%d", prefix, i)))
	}
	s.Cardinality = n
	return s
}

func TestNewDefaultsAndEmpty(t *testing.T) {
	s := New(0)
	if len(s.Mins) != DefaultSize {
		t.Fatalf("New(0) has %d slots, want %d", len(s.Mins), DefaultSize)
	}
	for _, v := range s.Mins {
		if v != math.MaxUint64 {
			t.Fatal("empty sketch slot not MaxUint64")
		}
	}
	if j := s.Jaccard(build(DefaultSize, "x", 10)); j != 0 {
		t.Fatalf("empty sketch Jaccard = %v, want 0", j)
	}
}

func TestJaccardIdenticalAndDisjoint(t *testing.T) {
	a := build(128, "k", 500)
	b := build(128, "k", 500)
	if j := a.Jaccard(b); j != 1 {
		t.Fatalf("identical sets Jaccard = %v, want 1", j)
	}
	c := build(128, "other", 500)
	if j := a.Jaccard(c); j > 0.15 {
		t.Fatalf("disjoint sets Jaccard = %v, want near 0", j)
	}
}

func TestContainmentSubset(t *testing.T) {
	small := build(128, "k", 100)
	big := New(128)
	for i := 0; i < 1000; i++ {
		big.AddHash(Hash64(fmt.Sprintf("k%d", i)))
	}
	big.Cardinality = 1000
	if c := small.Containment(big); c < 0.7 {
		t.Fatalf("subset containment = %v, want near 1", c)
	}
	if c := big.Containment(small); c > 0.35 {
		t.Fatalf("superset containment = %v, want near 0.1", c)
	}
}

// TestPrefixIsSlotIdentical pins the property both the cross-size
// comparison and the persisted-sketch reuse path depend on: slot j of a
// k-slot signature equals slot j of any longer signature over the same
// set.
func TestPrefixIsSlotIdentical(t *testing.T) {
	long := build(256, "k", 300)
	short := build(64, "k", 300)
	p := long.Prefix(64)
	if len(p.Mins) != 64 || p.Cardinality != 300 {
		t.Fatalf("prefix shape wrong: %d slots, card %d", len(p.Mins), p.Cardinality)
	}
	for j := range p.Mins {
		if p.Mins[j] != short.Mins[j] {
			t.Fatalf("slot %d differs between prefix and direct sketch", j)
		}
	}
	if got := long.Prefix(512); got != long {
		t.Fatal("oversized prefix should return the signature itself")
	}
}

func TestHash64Stable(t *testing.T) {
	// FNV-1a of "a" is a published constant; pinning it guards the
	// persisted-sketch format against an accidental hash swap.
	if got := Hash64("a"); got != 0xaf63dc4c8601ec8c {
		t.Fatalf("Hash64(\"a\") = %#x, want 0xaf63dc4c8601ec8c", got)
	}
}
