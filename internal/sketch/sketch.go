// Package sketch implements the MinHash primitives shared by the
// discovery matcher (internal/discovery) and the columnar lake format
// (internal/frame). Both sides must produce bit-identical signatures —
// discovery so that a persisted sketch can stand in for a freshly
// computed one, frame so that the sketches it writes into columnar
// footers are exactly the ones DRG construction would have built — so
// the hash family lives here, in one leaf package, instead of being
// duplicated.
//
// The design is the standard one-hash trick: one 64-bit FNV-1a hash per
// key, remixed per slot with a salted splitmix64 finaliser, simulating k
// independent permutations. Slot j is the same permutation at every
// sketch size, so a length-k prefix of a longer signature is itself a
// valid (smaller, higher-variance) MinHash signature — the property
// both the cross-size Jaccard comparison and the persisted-sketch reuse
// path rely on.
package sketch

import (
	"hash/fnv"
	"math"
)

// DefaultSize is the default number of signature slots; 128 gives a
// standard error of about 1/sqrt(128) ≈ 0.09 on Jaccard estimates.
const DefaultSize = 128

// MinHash is a fixed-size signature of a distinct-value set, supporting
// constant-time Jaccard and containment estimation — the technique Lazo
// (Castro Fernandez et al., ICDE 2019) uses to scale joinability
// discovery to large lakes. Building a signature is O(values); comparing
// two is O(k) regardless of set size.
type MinHash struct {
	// Mins holds the per-slot minima. Exposed so the columnar format can
	// serialise signatures verbatim; treat as read-only once built.
	Mins []uint64
	// Cardinality is the exact distinct count observed while sketching
	// (cheap to carry along and needed for containment estimation).
	Cardinality int
}

// New returns an empty k-slot signature (k <= 0 uses DefaultSize) with
// every slot at MaxUint64, ready for AddHash.
func New(k int) *MinHash {
	if k <= 0 {
		k = DefaultSize
	}
	s := &MinHash{Mins: make([]uint64, k)}
	for i := range s.Mins {
		s.Mins[i] = math.MaxUint64
	}
	return s
}

// AddHash folds one distinct value's base hash into every slot. Callers
// are responsible for deduplication (feed each distinct value exactly
// once) and for setting Cardinality afterwards.
func (s *MinHash) AddHash(h uint64) {
	for j := range s.Mins {
		hj := Remix(h ^ salts[j%len(salts)]*uint64(j+1))
		if hj < s.Mins[j] {
			s.Mins[j] = hj
		}
	}
}

// Prefix returns the length-k prefix view of the signature — a valid
// smaller signature of the same set (slot j is the same permutation at
// every size). The slots are shared, not copied; k larger than the
// signature returns the signature itself.
func (s *MinHash) Prefix(k int) *MinHash {
	if k <= 0 || k >= len(s.Mins) {
		return s
	}
	return &MinHash{Mins: s.Mins[:k], Cardinality: s.Cardinality}
}

// Jaccard estimates |A ∩ B| / |A ∪ B| as the fraction of matching slots.
// Signatures of different sizes compare over their common slot prefix:
// slot j is the same permutation regardless of sketch size, so the
// prefix is itself a valid (smaller, higher-variance) MinHash signature.
// Silently returning 0 here would erase all instance evidence whenever a
// lake-default sketch met a request-override sketch size.
func (s *MinHash) Jaccard(o *MinHash) float64 {
	n := len(s.Mins)
	if len(o.Mins) < n {
		n = len(o.Mins)
	}
	if n == 0 || s.Cardinality == 0 || o.Cardinality == 0 {
		return 0
	}
	match := 0
	for i := 0; i < n; i++ {
		if s.Mins[i] == o.Mins[i] {
			match++
		}
	}
	return float64(match) / float64(n)
}

// Containment estimates |A ∩ B| / |A| (how much of s is inside o) from
// the Jaccard estimate and the two cardinalities — the Lazo rescaling:
//
//	|A ∩ B| = J/(1+J) · (|A| + |B|),   containment = |A ∩ B| / |A|.
func (s *MinHash) Containment(o *MinHash) float64 {
	if s.Cardinality == 0 {
		return 0
	}
	j := s.Jaccard(o)
	inter := j / (1 + j) * float64(s.Cardinality+o.Cardinality)
	c := inter / float64(s.Cardinality)
	return math.Max(0, math.Min(1, c))
}

var salts = [...]uint64{
	0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9, 0x94d049bb133111eb,
	0x2545f4914f6cdd1d, 0xd6e8feb86659fd93, 0xa5a5a5a5a5a5a5a5,
	0x123456789abcdef1, 0xfedcba9876543211,
}

// Hash64 is the base hash of one value (64-bit FNV-1a), the input to
// AddHash. It is also the hash the LSH index uses for its value-anchor
// buckets, so anchors and signatures stay in the same hash family.
func Hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Remix is a 64-bit finaliser (splitmix64's last stage) giving each slot
// an independent-looking permutation.
func Remix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
