package bench

import (
	"strings"
	"testing"
	"time"

	"autofeat/internal/datagen"
	"autofeat/internal/ml"
)

func smallRunner() *Runner { return NewRunner(datagen.SmallSpecs(), 7) }

func TestReportRendering(t *testing.T) {
	r := &Report{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "bee"},
		Notes:  []string{"a note"},
	}
	r.AddRow("long-cell", 0.5)
	r.AddRow(3, 2*time.Second)
	s := r.String()
	for _, want := range []string{"=== x: demo ===", "long-cell", "0.5000", "2s", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestTableI(t *testing.T) {
	r := TableI()
	if len(r.Rows) != 3 {
		t.Fatalf("Table I compares 3 methods, got %d", len(r.Rows))
	}
	if r.Rows[2][0] != "AutoFeat" || r.Rows[2][2] != "Ranking-based" {
		t.Fatalf("AutoFeat row wrong: %v", r.Rows[2])
	}
}

func TestTableII(t *testing.T) {
	r := smallRunner()
	rep, err := r.TableII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if rep.Rows[0][0] != "tiny" || rep.Rows[0][1] != "400" {
		t.Fatalf("tiny row wrong: %v", rep.Rows[0])
	}
}

func TestRunnerCaching(t *testing.T) {
	r := smallRunner()
	d1, err := r.Dataset("tiny")
	if err != nil {
		t.Fatal(err)
	}
	d2, _ := r.Dataset("tiny")
	if d1 != d2 {
		t.Fatal("datasets must be cached")
	}
	g1, err := r.DRG("tiny", Benchmark)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := r.DRG("tiny", Benchmark)
	if g1 != g2 {
		t.Fatal("DRGs must be cached")
	}
	gl, err := r.DRG("tiny", Lake)
	if err != nil {
		t.Fatal(err)
	}
	if gl == g1 {
		t.Fatal("settings must have distinct graphs")
	}
	if _, err := r.Dataset("ghost"); err == nil {
		t.Fatal("unknown dataset must fail")
	}
}

func TestRunMethodAllMethods(t *testing.T) {
	r := smallRunner()
	lgbm, _ := ml.FactoryByName("lightgbm")
	for _, method := range []string{"base", "arda", "mab", "joinall", "joinall+f", "autofeat"} {
		mr, err := r.RunMethod("tiny", Benchmark, method, lgbm)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if mr.Method != method || mr.Dataset != "tiny" || mr.Model != "lightgbm" {
			t.Fatalf("%s: metadata wrong: %+v", method, mr)
		}
		if mr.Accuracy <= 0 || mr.Accuracy > 1 {
			t.Fatalf("%s: accuracy %v out of range", method, mr.Accuracy)
		}
	}
	if _, err := r.RunMethod("tiny", Benchmark, "nope", lgbm); err == nil {
		t.Fatal("unknown method must fail")
	}
}

func TestAutoFeatBeatsBaseOnSmallLake(t *testing.T) {
	r := smallRunner()
	lgbm, _ := ml.FactoryByName("lightgbm")
	af, err := r.RunMethod("smol", Benchmark, "autofeat", lgbm)
	if err != nil {
		t.Fatal(err)
	}
	base, err := r.RunMethod("smol", Benchmark, "base", lgbm)
	if err != nil {
		t.Fatal(err)
	}
	if af.Accuracy < base.Accuracy {
		t.Fatalf("autofeat (%.3f) must be >= base (%.3f)", af.Accuracy, base.Accuracy)
	}
}

func TestSweepCachesAndSkips(t *testing.T) {
	r := NewRunner(append(datagen.SmallSpecs(), datagen.Spec{
		Name: "school", Rows: 300, PaperRows: 300, JoinableTables: 4,
		TotalFeatures: 12, PaperFeatures: 12, BestAccuracy: 0.8, Seed: 300,
	}), 7)
	lgbm, _ := ml.FactoryByName("lightgbm")
	res, err := r.Sweep(Benchmark, []string{"base", "joinall"}, []ml.Factory{lgbm})
	if err != nil {
		t.Fatal(err)
	}
	for _, mr := range res {
		if mr.Dataset == "school" && mr.Method == "joinall" {
			t.Fatal("joinall must be skipped on school (paper presentation)")
		}
	}
	res2, err := r.Sweep(Benchmark, []string{"base", "joinall"}, []ml.Factory{lgbm})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2) != len(res) {
		t.Fatal("sweep must be cached")
	}
}

func TestFigure3Reports(t *testing.T) {
	r := smallRunner()
	a, err := r.Figure3a()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 5 {
		t.Fatalf("figure 3a compares 5 relevance metrics: %d", len(a.Rows))
	}
	b, err := r.Figure3b()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) != 5 {
		t.Fatalf("figure 3b compares 5 redundancy metrics: %d", len(b.Rows))
	}
}

func TestFigure8Reports(t *testing.T) {
	r := smallRunner()
	reps, err := r.Figure8()
	if err != nil {
		t.Fatal(err)
	}
	// Small specs lack covertype/school, so only 8a and 8b appear.
	if len(reps) != 2 {
		t.Fatalf("want kappa + tau reports, got %d", len(reps))
	}
	if len(reps[0].Rows) != 7 {
		t.Fatalf("kappa sweep has 7 points: %d", len(reps[0].Rows))
	}
	if len(reps[1].Rows) != 20 {
		t.Fatalf("tau sweep has 20 points: %d", len(reps[1].Rows))
	}
}

func TestFigure9Report(t *testing.T) {
	r := smallRunner()
	rep, err := r.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2*6 {
		t.Fatalf("2 datasets x 6 variants = 12 rows, got %d", len(rep.Rows))
	}
}

func TestAblationReports(t *testing.T) {
	r := smallRunner()
	if rep, err := r.AblationTraversal(); err != nil || len(rep.Rows) == 0 {
		t.Fatalf("traversal: %v", err)
	}
	if rep, err := r.AblationCardinality(); err != nil || len(rep.Rows) == 0 {
		t.Fatalf("cardinality: %v", err)
	}
	if rep, err := r.AblationBins(); err != nil || len(rep.Rows) != 3 {
		t.Fatalf("bins: %v", err)
	}
}

func TestAblationCardinalityShowsDrift(t *testing.T) {
	r := smallRunner()
	rep, err := r.AblationCardinality()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if row[1] != row[2] {
			t.Fatalf("normalised join must preserve rows: %v", row)
		}
		if row[2] == row[3] {
			t.Fatalf("duplicating join must inflate rows: %v", row)
		}
	}
}

func TestSettingString(t *testing.T) {
	if Benchmark.String() != "benchmark" || Lake.String() != "lake" {
		t.Fatal("setting names")
	}
}
