package bench

import (
	"fmt"
	"time"

	"autofeat/internal/core"
	"autofeat/internal/frame"
	"autofeat/internal/fselect"
	"autofeat/internal/ml"
)

// TableI regenerates the qualitative comparison of state-of-the-art
// methods (join path length, selection strategy, graph model).
func TableI() *Report {
	r := &Report{
		ID:     "table1",
		Title:  "Comparison of state-of-the-art methods",
		Header: []string{"method", "join path length", "path/feature selection", "joinability graph"},
	}
	r.AddRow("ARDA", "Single-hop", "Model-execution based", "Simple Graph")
	r.AddRow("MAB", "Multi-hop", "Model-execution based", "Simple Graph")
	r.AddRow("AutoFeat", "Multi-hop", "Ranking-based", "Multigraph")
	return r
}

// TableII regenerates the dataset overview: rows, joinable tables, total
// features and the best known accuracy, for the generated analogues.
func (r *Runner) TableII() (*Report, error) {
	rep := &Report{
		ID:     "table2",
		Title:  "Overview of datasets used in evaluation",
		Header: []string{"dataset", "# rows", "# joinable tables", "total # features", "best accuracy (paper)", "paper rows"},
		Notes: []string{
			"datasets are synthetic analogues; 'paper rows' records the original Table II size where scaled",
		},
	}
	for _, spec := range r.Specs {
		d, err := r.Dataset(spec.Name)
		if err != nil {
			return nil, err
		}
		features := 0
		for _, t := range d.Tables {
			for _, c := range t.Columns() {
				name := c.Name()
				if name == "id" || name == "target" || isKeyName(name) {
					continue
				}
				features++
			}
		}
		rep.AddRow(spec.Name, d.Base.NumRows(), len(d.Tables)-1, features, spec.BestAccuracy, spec.PaperRows)
	}
	return rep, nil
}

func isKeyName(name string) bool {
	return len(name) >= 3 && (name[:3] == "key" || name[:3] == "fk_")
}

// Figure3a regenerates the relevance-metric study: for each of the five
// metrics, the aggregated accuracy (select top-κ on the train split, train
// the GBDT, score the test split) and the aggregated selection runtime
// over the Section V datasets.
func (r *Runner) Figure3a() (*Report, error) {
	rep := &Report{
		ID:     "figure3a",
		Title:  "Relevance methods: aggregated accuracy and runtime",
		Header: []string{"metric", "mean accuracy", "total selection time"},
		Notes: []string{
			"expected shape: pearson/spearman ~3x faster than IG/SU and more accurate; relief fast but less accurate",
		},
	}
	for _, metric := range fselect.AllRelevance() {
		acc, elapsed, err := r.relevanceStudy(metric)
		if err != nil {
			return nil, err
		}
		rep.AddRow(metric.Name(), acc, elapsed)
	}
	return rep, nil
}

func (r *Runner) relevanceStudy(metric fselect.Relevance) (float64, time.Duration, error) {
	var accSum float64
	var timeSum time.Duration
	n := 0
	for _, spec := range r.Specs {
		flat, y, features, cols, err := r.flatStudy(spec.Name)
		if err != nil {
			return 0, 0, err
		}
		start := time.Now()
		scores := metric.Scores(cols, y)
		idx, _ := fselect.SelectKBest(scores, 15)
		timeSum += time.Since(start)
		kept := make([]string, len(idx))
		for i, k := range idx {
			kept[i] = features[k]
		}
		if len(kept) == 0 {
			kept = features
		}
		eval, err := ml.EvaluateFrame(flat, kept, "target", ml.NewLightGBM(r.Seed), r.Seed)
		if err != nil {
			return 0, 0, err
		}
		accSum += eval.Accuracy
		n++
	}
	return accSum / float64(n), timeSum, nil
}

// Figure3b regenerates the redundancy-metric study over the same datasets.
func (r *Runner) Figure3b() (*Report, error) {
	rep := &Report{
		ID:     "figure3b",
		Title:  "Redundancy methods: aggregated accuracy and runtime",
		Header: []string{"metric", "mean accuracy", "total selection time"},
		Notes: []string{
			"expected shape: MIFS/MRMR ~3x faster than CIFE/JMI/CMIM (no conditional MI); JMI most accurate; MRMR balanced",
		},
	}
	for _, metric := range fselect.AllRedundancy() {
		acc, elapsed, err := r.redundancyStudy(metric)
		if err != nil {
			return nil, err
		}
		rep.AddRow(metric.Name(), acc, elapsed)
	}
	return rep, nil
}

func (r *Runner) redundancyStudy(metric fselect.Redundancy) (float64, time.Duration, error) {
	var accSum float64
	var timeSum time.Duration
	n := 0
	for _, spec := range r.Specs {
		flat, y, features, cols, err := r.flatStudy(spec.Name)
		if err != nil {
			return 0, 0, err
		}
		start := time.Now()
		idx, _ := metric.Select(cols, nil, y)
		timeSum += time.Since(start)
		kept := make([]string, len(idx))
		for i, k := range idx {
			kept[i] = features[k]
		}
		if len(kept) == 0 {
			kept = features
		}
		if len(kept) > 15 {
			kept = kept[:15]
		}
		eval, err := ml.EvaluateFrame(flat, kept, "target", ml.NewLightGBM(r.Seed), r.Seed)
		if err != nil {
			return 0, 0, err
		}
		accSum += eval.Accuracy
		n++
	}
	return accSum / float64(n), timeSum, nil
}

// flatStudy prepares the single-table view of a dataset for the Section V
// studies: imputed flat table, labels, feature names and columns.
func (r *Runner) flatStudy(name string) (flat *frame.Frame, y []int, features []string, cols [][]float64, err error) {
	d, err := r.Dataset(name)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	f, err := d.FlatTable()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	f = f.Imputed()
	y, err = f.Labels("target")
	if err != nil {
		return nil, nil, nil, nil, err
	}
	for _, c := range f.Columns() {
		name := c.Name()
		if name == "id" || name == "target" || isKeyName(name) {
			continue
		}
		features = append(features, name)
		cols = append(cols, c.Floats())
	}
	return f, y, features, cols, nil
}

// Figure4 regenerates the benchmark-setting main result: per dataset, the
// accuracy averaged over the four tree models, the average total runtime,
// its feature-selection share, and the number of joined tables.
func (r *Runner) Figure4() (*Report, error) {
	return r.sweepReport("figure4",
		"Benchmark setting: runtime and accuracy, tree-based models",
		Benchmark,
		[]string{"base", "arda", "mab", "joinall", "joinall+f", "autofeat"},
		ml.TreeFactories(),
		[]string{
			"expected shape: autofeat fastest selection (no model in the loop), accuracy >= baselines on average",
			"joinall variants skipped on school/bioresponse, as in the paper (Equation 3 blow-up)",
		})
}

// Figure5 regenerates the benchmark-setting non-tree-model accuracy.
func (r *Runner) Figure5() (*Report, error) {
	return r.sweepReport("figure5",
		"Benchmark setting: accuracy for KNN and L1 linear models",
		Benchmark,
		[]string{"base", "arda", "mab", "joinall", "joinall+f", "autofeat"},
		ml.NonTreeFactories(),
		[]string{"expected shape: linear/KNN models gain less from augmentation (curse of dimensionality)"})
}

// Figure6 regenerates the data-lake-setting main result (no JoinAll — the
// path count explodes, Equation 3).
func (r *Runner) Figure6() (*Report, error) {
	return r.sweepReport("figure6",
		"Data lake setting: runtime and accuracy, tree-based models",
		Lake,
		[]string{"base", "arda", "mab", "autofeat"},
		ml.TreeFactories(),
		[]string{
			"DRG discovered with the composite matcher at threshold 0.55 (dense multigraph with spurious edges)",
			"expected shape: autofeat prunes spurious joins, stays fastest and most accurate on average",
		})
}

// Figure7 regenerates the data-lake-setting non-tree-model accuracy.
func (r *Runner) Figure7() (*Report, error) {
	return r.sweepReport("figure7",
		"Data lake setting: accuracy for KNN and L1 linear models",
		Lake,
		[]string{"base", "arda", "mab", "autofeat"},
		ml.NonTreeFactories(),
		[]string{"expected shape: KNN suffers from spurious joins; LR with AutoFeat leads on most datasets"})
}

func (r *Runner) sweepReport(id, title string, s Setting, methods []string, models []ml.Factory, notes []string) (*Report, error) {
	results, err := r.Sweep(s, methods, models)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     id,
		Title:  title,
		Header: []string{"dataset", "method", "mean accuracy", "mean AUC", "selection time", "total time", "# joined tables"},
		Notes:  notes,
	}
	agg := aggregateByDatasetMethod(results)
	for _, spec := range r.Specs {
		for _, method := range methods {
			v, ok := agg[aggKey{spec.Name, method}]
			if !ok {
				rep.AddRow(spec.Name, method, "n/a", "n/a", "n/a", "n/a", "n/a")
				continue
			}
			rep.AddRow(spec.Name, method, v.acc, v.auc, v.selTime, v.totalTime, v.tablesJoined)
		}
	}
	return rep, nil
}

// Figure1 regenerates the headline scatter: per method, the mean feature
// discovery/augmentation time against the mean accuracy, aggregated over
// the benchmark and lake sweeps with tree models.
func (r *Runner) Figure1() (*Report, error) {
	bench, err := r.Sweep(Benchmark, []string{"base", "arda", "mab", "joinall", "joinall+f", "autofeat"}, ml.TreeFactories())
	if err != nil {
		return nil, err
	}
	lake, err := r.Sweep(Lake, []string{"base", "arda", "mab", "autofeat"}, ml.TreeFactories())
	if err != nil {
		return nil, err
	}
	type agg struct {
		acc, n float64
		t      time.Duration
	}
	byMethod := map[string]*agg{}
	for _, mr := range append(bench, lake...) {
		a := byMethod[mr.Method]
		if a == nil {
			a = &agg{}
			byMethod[mr.Method] = a
		}
		a.acc += mr.Accuracy
		a.t += mr.TotalTime
		a.n++
	}
	rep := &Report{
		ID:     "figure1",
		Title:  "Headline: augmentation time vs accuracy (lower-left to upper-left is better)",
		Header: []string{"method", "mean accuracy", "mean total time", "speedup vs slowest"},
		Notes:  []string{"expected shape: autofeat upper-left — highest accuracy at a fraction of the time"},
	}
	var slowest time.Duration
	for _, a := range byMethod {
		d := time.Duration(float64(a.t) / a.n)
		if d > slowest {
			slowest = d
		}
	}
	for _, method := range []string{"base", "arda", "mab", "joinall", "joinall+f", "autofeat"} {
		a, ok := byMethod[method]
		if !ok {
			continue
		}
		mean := time.Duration(float64(a.t) / a.n)
		rep.AddRow(method, a.acc/a.n, mean, fmt.Sprintf("%.1fx", float64(slowest)/float64(mean)))
	}
	return rep, nil
}

// Figure8 regenerates the parameter sensitivity study. It returns four
// reports: (a) the κ sweep, (b) the τ sweep aggregated over datasets, and
// (c)/(d) the τ close-ups on the covertype and school analogues.
func (r *Runner) Figure8() ([]*Report, error) {
	kappaRep := &Report{
		ID:     "figure8a",
		Title:  "Sensitivity to kappa (max features per table)",
		Header: []string{"kappa", "mean accuracy", "mean selection time"},
		Notes:  []string{"expected shape: accuracy gains flatten past kappa ~10-15 while selection time keeps growing"},
	}
	for _, kappa := range []int{2, 4, 6, 8, 10, 15, 20} {
		cfg := DefaultAutoFeatConfig(r.Seed)
		cfg.Kappa = kappa
		acc, sel, _, err := r.autofeatSweepPoint(cfg)
		if err != nil {
			return nil, err
		}
		kappaRep.AddRow(kappa, acc, sel)
	}

	tauRep := &Report{
		ID:     "figure8b",
		Title:  "Sensitivity to tau (data-quality threshold), all datasets",
		Header: []string{"tau", "mean accuracy", "mean selection time", "datasets with paths"},
		Notes:  []string{"expected shape: flat for tau in [0.05,0.6]; above 0.6 more paths pruned (faster, small accuracy dip); tau=1 can yield no output"},
	}
	detail := map[string]*Report{
		"covertype": {
			ID:     "figure8c",
			Title:  "Sensitivity to tau: covertype analogue",
			Header: []string{"tau", "accuracy", "selection time", "paths"},
		},
		"school": {
			ID:     "figure8d",
			Title:  "Sensitivity to tau: school analogue",
			Header: []string{"tau", "accuracy", "selection time", "paths"},
		},
	}
	for step := 1; step <= 20; step++ {
		tau := float64(step) * 0.05
		if tau > 1 {
			tau = 1
		}
		cfg := DefaultAutoFeatConfig(r.Seed)
		cfg.Tau = tau
		acc, sel, withPaths, err := r.autofeatSweepPoint(cfg)
		if err != nil {
			return nil, err
		}
		tauRep.AddRow(fmt.Sprintf("%.2f", tau), acc, sel, withPaths)
		for name, rep := range detail {
			if !r.hasSpec(name) {
				continue
			}
			dacc, dsel, paths, err := r.autofeatPoint(name, cfg)
			if err != nil {
				return nil, err
			}
			rep.AddRow(fmt.Sprintf("%.2f", tau), dacc, dsel, paths)
		}
	}
	out := []*Report{kappaRep, tauRep}
	for _, name := range []string{"covertype", "school"} {
		if r.hasSpec(name) {
			out = append(out, detail[name])
		}
	}
	return out, nil
}

func (r *Runner) hasSpec(name string) bool {
	for _, s := range r.Specs {
		if s.Name == name {
			return true
		}
	}
	return false
}

// autofeatSweepPoint runs AutoFeat with cfg on every dataset (benchmark
// setting, LightGBM) and returns mean accuracy, mean selection time and
// how many datasets produced at least one path.
func (r *Runner) autofeatSweepPoint(cfg core.Config) (float64, time.Duration, int, error) {
	var accSum float64
	var selSum time.Duration
	withPaths := 0
	for _, spec := range r.Specs {
		acc, sel, paths, err := r.autofeatPoint(spec.Name, cfg)
		if err != nil {
			return 0, 0, 0, err
		}
		accSum += acc
		selSum += sel
		if paths > 0 {
			withPaths++
		}
	}
	n := float64(len(r.Specs))
	return accSum / n, time.Duration(float64(selSum) / n), withPaths, nil
}

// autofeatPoint runs AutoFeat with cfg on one dataset and returns
// accuracy, selection time and the number of ranked paths.
func (r *Runner) autofeatPoint(name string, cfg core.Config) (float64, time.Duration, int, error) {
	e, err := r.autofeatRanking(name, Benchmark, cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	lgbm, _ := ml.FactoryByName("lightgbm")
	res, err := e.disc.EvaluateRanking(e.ranking, lgbm)
	if err != nil {
		return 0, 0, 0, err
	}
	return res.Best.Eval.Accuracy, res.SelectionTime, len(e.ranking.Paths), nil
}

// AblationVariant is one Figure 9 configuration of AutoFeat.
type AblationVariant struct {
	Name       string
	Relevance  string // "" disables the stage
	Redundancy string // "" disables the stage
}

// Figure9Variants lists the paper's ablation configurations.
func Figure9Variants() []AblationVariant {
	return []AblationVariant{
		{Name: "autofeat (spearman-mrmr)", Relevance: "spearman", Redundancy: "mrmr"},
		{Name: "pearson-jmi", Relevance: "pearson", Redundancy: "jmi"},
		{Name: "spearman-jmi", Relevance: "spearman", Redundancy: "jmi"},
		{Name: "pearson-mrmr", Relevance: "pearson", Redundancy: "mrmr"},
		{Name: "spearman-only", Relevance: "spearman"},
		{Name: "mrmr-only", Redundancy: "mrmr"},
	}
}

// Figure9 regenerates the metric ablation: accuracy and total time per
// dataset for each AutoFeat configuration.
func (r *Runner) Figure9() (*Report, error) {
	rep := &Report{
		ID:     "figure9",
		Title:  "Ablation: AutoFeat configurations (relevance x redundancy)",
		Header: []string{"dataset", "variant", "accuracy", "total time", "paths"},
		Notes: []string{
			"expected shape: JMI variants >= 2x slower; spearman-mrmr best efficiency with minimal accuracy loss",
		},
	}
	lgbm, _ := ml.FactoryByName("lightgbm")
	for _, spec := range r.Specs {
		for _, v := range Figure9Variants() {
			cfg := DefaultAutoFeatConfig(r.Seed)
			cfg.Relevance = fselect.RelevanceByName(v.Relevance)
			cfg.Redundancy = fselect.RedundancyByName(v.Redundancy)
			e, err := r.autofeatRanking(spec.Name, Benchmark, cfg)
			if err != nil {
				return nil, err
			}
			res, err := e.disc.EvaluateRanking(e.ranking, lgbm)
			if err != nil {
				return nil, err
			}
			rep.AddRow(spec.Name, v.Name, res.Best.Eval.Accuracy, res.TotalTime, len(e.ranking.Paths))
		}
	}
	return rep, nil
}
