package bench

import (
	"fmt"
	"log/slog"
	"time"

	"autofeat/internal/baselines"
	"autofeat/internal/core"
	"autofeat/internal/datagen"
	"autofeat/internal/graph"
	"autofeat/internal/ml"
	"autofeat/internal/obsrv"
	"autofeat/internal/telemetry"
)

// Setting selects the schema configuration of Section VII-A.
type Setting int

// The two evaluation settings.
const (
	// Benchmark is the curated snowflake: KFK edges only.
	Benchmark Setting = iota
	// Lake is the data-lake setting: KFK metadata dropped, relationships
	// rediscovered with the matcher at threshold 0.55.
	Lake
)

// String returns the setting's report name.
func (s Setting) String() string {
	if s == Lake {
		return "lake"
	}
	return "benchmark"
}

// LakeThreshold is the paper's discovery threshold, chosen "to encourage
// spurious, but not irrelevant, connections".
const LakeThreshold = 0.55

// MethodResult is one (dataset, setting, method, model) measurement — the
// unit every figure aggregates.
type MethodResult struct {
	Dataset      string
	Setting      Setting
	Method       string
	Model        string
	Accuracy     float64
	AUC          float64
	TablesJoined int
	// SelectionTime is feature-selection/discovery time only; TotalTime
	// includes joins and model training.
	SelectionTime time.Duration
	TotalTime     time.Duration
}

// Runner caches datasets, DRGs and AutoFeat rankings so the figures can
// share work: AutoFeat's discovery is model-independent (the paper's core
// efficiency argument), so one ranking serves all model families.
type Runner struct {
	// Specs are the datasets to sweep.
	Specs []datagen.Spec
	// Seed drives every method.
	Seed int64
	// Verbose prints progress lines to stdout.
	Verbose bool
	// Workers is the per-discovery join-evaluation parallelism (0 =
	// GOMAXPROCS). Rankings are bit-identical at any worker count, so the
	// ranking cache stays valid across values and the key omits it.
	Workers int
	// Telemetry, when non-nil, is attached to every AutoFeat discovery the
	// runner executes, accumulating spans and per-phase metrics across the
	// whole sweep. Write it out with WriteTelemetry.
	Telemetry *telemetry.Collector
	// Timeout bounds each discovery's wall clock (core.Config.Timeout);
	// 0 means none. It joins the ranking cache key, since an expired
	// deadline truncates the ranking.
	Timeout time.Duration
	// MaxEvalJoins budgets joins evaluated per discovery
	// (core.Config.MaxEvalJoins); 0 means unlimited.
	MaxEvalJoins int
	// MaxJoinedRows budgets cumulative joined rows per discovery
	// (core.Config.MaxJoinedRows); 0 means unlimited.
	MaxJoinedRows int64
	// Logger, when non-nil, is threaded into every discovery the runner
	// executes (core.Config.Logger). Nil disables structured logging.
	Logger *slog.Logger
	// Progress, when non-nil, receives live run state from every discovery
	// the runner executes (core.Config.Progress), so a sweep can be watched
	// through the introspection server's /runs/{id} endpoint.
	Progress *obsrv.RunProgress

	datasets map[string]*datagen.Dataset
	drgs     map[string]*graph.Graph
	rankings map[string]*rankingEntry
	sweeps   map[string][]MethodResult
}

type rankingEntry struct {
	disc    *core.Discovery
	ranking *core.Ranking
}

// NewRunner builds a runner over the given dataset specs.
func NewRunner(specs []datagen.Spec, seed int64) *Runner {
	return &Runner{
		Specs:    specs,
		Seed:     seed,
		datasets: make(map[string]*datagen.Dataset),
		drgs:     make(map[string]*graph.Graph),
		rankings: make(map[string]*rankingEntry),
		sweeps:   make(map[string][]MethodResult),
	}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Verbose {
		fmt.Printf(format+"\n", args...)
	}
}

// WriteTelemetry flushes the runner's accumulated telemetry (if any) to a
// JSON file via the JSON sink: counters, gauges, histograms, the pruning
// breakdown and per-phase timings of every discovery the sweep ran.
func (r *Runner) WriteTelemetry(path string) error {
	if r.Telemetry == nil {
		return fmt.Errorf("bench: no telemetry collector attached")
	}
	return telemetry.WriteMetricsFile(path, r.Telemetry.Snapshot())
}

// Dataset generates (and caches) the named dataset.
func (r *Runner) Dataset(name string) (*datagen.Dataset, error) {
	if d, ok := r.datasets[name]; ok {
		return d, nil
	}
	for _, s := range r.Specs {
		if s.Name == name {
			d, err := datagen.Generate(s)
			if err != nil {
				return nil, err
			}
			r.datasets[name] = d
			return d, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown dataset %q", name)
}

// DRG builds (and caches) the graph for a dataset in a setting.
func (r *Runner) DRG(name string, s Setting) (*graph.Graph, error) {
	key := name + "/" + s.String()
	if g, ok := r.drgs[key]; ok {
		return g, nil
	}
	d, err := r.Dataset(name)
	if err != nil {
		return nil, err
	}
	var g *graph.Graph
	if s == Benchmark {
		g, err = d.BenchmarkDRG()
	} else {
		g, err = d.LakeDRG(LakeThreshold)
	}
	if err != nil {
		return nil, err
	}
	r.drgs[key] = g
	return g, nil
}

// autofeatRanking runs (and caches) AutoFeat discovery for a dataset and
// setting with the given config.
func (r *Runner) autofeatRanking(name string, s Setting, cfg core.Config) (*rankingEntry, error) {
	cfg.Timeout = r.Timeout
	cfg.MaxEvalJoins = r.MaxEvalJoins
	cfg.MaxJoinedRows = r.MaxJoinedRows
	key := fmt.Sprintf("%s/%s/tau=%.2f/kappa=%d/%s/budget=%v-%d-%d",
		name, s, cfg.Tau, cfg.Kappa, cfgMetricKey(cfg), cfg.Timeout, cfg.MaxEvalJoins, cfg.MaxJoinedRows)
	if e, ok := r.rankings[key]; ok {
		return e, nil
	}
	d, err := r.Dataset(name)
	if err != nil {
		return nil, err
	}
	g, err := r.DRG(name, s)
	if err != nil {
		return nil, err
	}
	cfg.Telemetry = r.Telemetry
	cfg.Workers = r.Workers
	cfg.Logger = r.Logger
	cfg.Progress = r.Progress
	disc, err := core.New(g, d.Base.Name(), d.Label, cfg)
	if err != nil {
		return nil, err
	}
	ranking, err := disc.Run()
	if err != nil {
		return nil, err
	}
	e := &rankingEntry{disc: disc, ranking: ranking}
	r.rankings[key] = e
	return e, nil
}

func cfgMetricKey(cfg core.Config) string {
	rel, red := "none", "none"
	if cfg.Relevance != nil {
		rel = cfg.Relevance.Name()
	}
	if cfg.Redundancy != nil {
		red = cfg.Redundancy.Name()
	}
	return rel + "-" + red
}

// RunMethod executes one method on one dataset/setting with one model.
// AutoFeat reuses the cached ranking (discovery is model-independent);
// the baselines rerun end to end because their selection embeds the model.
func (r *Runner) RunMethod(name string, s Setting, method string, factory ml.Factory) (*MethodResult, error) {
	d, err := r.Dataset(name)
	if err != nil {
		return nil, err
	}
	g, err := r.DRG(name, s)
	if err != nil {
		return nil, err
	}
	if method == "autofeat" {
		return r.runAutoFeat(d, s, factory, DefaultAutoFeatConfig(r.Seed))
	}
	m := baselines.ByName(method)
	if m == nil {
		return nil, fmt.Errorf("bench: unknown method %q", method)
	}
	res, err := m.Augment(g, d.Base.Name(), d.Label, factory, r.Seed)
	if err != nil {
		return nil, err
	}
	return &MethodResult{
		Dataset: name, Setting: s, Method: method, Model: factory.Name,
		Accuracy: res.Eval.Accuracy, AUC: res.Eval.AUC,
		TablesJoined:  res.TablesJoined,
		SelectionTime: res.SelectionTime, TotalTime: res.TotalTime,
	}, nil
}

// DefaultAutoFeatConfig is the paper's configuration with the runner seed.
func DefaultAutoFeatConfig(seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	return cfg
}

// runAutoFeat evaluates AutoFeat from a cached ranking.
func (r *Runner) runAutoFeat(d *datagen.Dataset, s Setting, factory ml.Factory, cfg core.Config) (*MethodResult, error) {
	e, err := r.autofeatRanking(d.Spec.Name, s, cfg)
	if err != nil {
		return nil, err
	}
	res, err := e.disc.EvaluateRanking(e.ranking, factory)
	if err != nil {
		return nil, err
	}
	return &MethodResult{
		Dataset: d.Spec.Name, Setting: s, Method: "autofeat", Model: factory.Name,
		Accuracy: res.Best.Eval.Accuracy, AUC: res.Best.Eval.AUC,
		TablesJoined:  len(res.Best.Path.Edges),
		SelectionTime: res.SelectionTime, TotalTime: res.TotalTime,
	}, nil
}

// Sweep runs methods × models over every dataset in a setting, caching the
// result so Figures 1 and 4–7 share measurements.
func (r *Runner) Sweep(s Setting, methods []string, models []ml.Factory) ([]MethodResult, error) {
	key := fmt.Sprintf("%s/%v/%s", s, methods, modelNames(models))
	if res, ok := r.sweeps[key]; ok {
		return res, nil
	}
	var out []MethodResult
	for _, spec := range r.Specs {
		for _, method := range methods {
			if skip(method, spec) {
				continue
			}
			for _, factory := range models {
				mr, err := r.RunMethod(spec.Name, s, method, factory)
				if err != nil {
					return nil, fmt.Errorf("bench: %s/%s/%s/%s: %w", spec.Name, s, method, factory.Name, err)
				}
				r.logf("  %s %s %s %s: acc=%.3f sel=%v total=%v joined=%d",
					spec.Name, s, method, factory.Name, mr.Accuracy, mr.SelectionTime, mr.TotalTime, mr.TablesJoined)
				out = append(out, *mr)
			}
		}
	}
	r.sweeps[key] = out
	return out, nil
}

// skip mirrors the paper's presentation: JoinAll variants are omitted on
// the widest star schema (school) and the widest lake (bioresponse), where
// the paper's exhaustive ordering count (Equation 3) made them time out.
func skip(method string, spec datagen.Spec) bool {
	if method != "joinall" && method != "joinall+f" {
		return false
	}
	return spec.Name == "school" || spec.Name == "bioresponse"
}

func modelNames(models []ml.Factory) string {
	out := ""
	for i, m := range models {
		if i > 0 {
			out += ","
		}
		out += m.Name
	}
	return out
}

// aggregate groups results by (dataset, method) averaging over models.
type aggKey struct {
	dataset string
	method  string
}

type aggVal struct {
	acc, auc     float64
	selTime      time.Duration
	totalTime    time.Duration
	tablesJoined int
	n            int
}

func aggregateByDatasetMethod(results []MethodResult) map[aggKey]*aggVal {
	out := make(map[aggKey]*aggVal)
	for _, mr := range results {
		k := aggKey{mr.Dataset, mr.Method}
		v := out[k]
		if v == nil {
			v = &aggVal{}
			out[k] = v
		}
		v.acc += mr.Accuracy
		v.auc += mr.AUC
		v.selTime += mr.SelectionTime
		v.totalTime += mr.TotalTime
		v.tablesJoined = mr.TablesJoined
		v.n++
	}
	for _, v := range out {
		v.acc /= float64(v.n)
		v.auc /= float64(v.n)
		v.selTime /= time.Duration(v.n)
		v.totalTime /= time.Duration(v.n)
	}
	return out
}
