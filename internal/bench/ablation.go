package bench

import (
	"fmt"
	"time"

	"autofeat/internal/core"
	"autofeat/internal/frame"
	"autofeat/internal/fselect"
	"autofeat/internal/ml"
	"autofeat/internal/relational"
)

// AblationTraversal compares BFS and DFS exploration of the DRG (the
// Section IV-A design choice): at which exploration position each order
// first reaches the deepest signal-bearing table. BFS visits level by
// level, so quality control happens per hop; DFS can wander down noise
// branches first.
func (r *Runner) AblationTraversal() (*Report, error) {
	rep := &Report{
		ID:     "ablation-traversal",
		Title:  "BFS vs DFS: exploration position of the deepest signal table",
		Header: []string{"dataset", "target table", "bfs position", "dfs position", "bfs levels"},
		Notes:  []string{"the paper argues for BFS: level-by-level quality checks and contained join errors"},
	}
	for _, spec := range r.Specs {
		d, err := r.Dataset(spec.Name)
		if err != nil {
			return nil, err
		}
		g, err := r.DRG(spec.Name, Benchmark)
		if err != nil {
			return nil, err
		}
		// Deepest table that holds informative features.
		target, depth := "", -1
		for table, feats := range d.InformativeByTable {
			if len(feats) > 0 && d.Depth[table] > depth {
				target, depth = table, d.Depth[table]
			}
		}
		levels := g.BFSLevels(d.Base.Name())
		bfsPos := positionIn(flatten(levels), target)
		dfsPos := positionIn(g.DFSOrder(d.Base.Name()), target)
		rep.AddRow(spec.Name, target, bfsPos, dfsPos, len(levels))
	}
	return rep, nil
}

func flatten(levels [][]string) []string {
	var out []string
	for _, l := range levels {
		out = append(out, l...)
	}
	return out
}

func positionIn(order []string, name string) int {
	for i, n := range order {
		if n == name {
			return i
		}
	}
	return -1
}

// AblationCardinality demonstrates why AutoFeat normalises join
// cardinality (Section IV-B): a duplicating 1:N left join inflates the
// row count and skews the label distribution, while the normalised join
// preserves both exactly.
func (r *Runner) AblationCardinality() (*Report, error) {
	rep := &Report{
		ID:     "ablation-cardinality",
		Title:  "Join cardinality normalisation on/off: rows and label skew",
		Header: []string{"dataset", "base rows", "normalised rows", "duplicating rows", "label drift (duplicating)"},
		Notes:  []string{"duplicating joins change the class balance, which Section IV-B identifies as harmful"},
	}
	for _, spec := range r.Specs[:min(3, len(r.Specs))] {
		d, err := r.Dataset(spec.Name)
		if err != nil {
			return nil, err
		}
		g, err := r.DRG(spec.Name, Benchmark)
		if err != nil {
			return nil, err
		}
		base := d.Base.Prefixed(d.Base.Name())
		label := d.Base.Name() + "." + d.Label
		baseDist, err := base.ClassDistribution(label)
		if err != nil {
			return nil, err
		}
		baseFrac := classFrac(baseDist)

		// Take the first KFK edge and join both ways. The duplicating
		// variant inflates the right side by repeating each key 3 times.
		edges := g.EdgesFrom(d.Base.Name())
		if len(edges) == 0 {
			continue
		}
		e := edges[0]
		right := g.Table(e.B)
		norm, err := relational.LeftJoin(base, right, e.A+"."+e.ColA, e.ColB, relational.Options{})
		if err != nil {
			return nil, err
		}
		dup, err := duplicatingLeftJoin(base, right, e.A+"."+e.ColA, e.ColB, 3)
		if err != nil {
			return nil, err
		}
		dupDist, err := dup.ClassDistribution(label)
		if err != nil {
			return nil, err
		}
		drift := classFrac(dupDist) - baseFrac
		if drift < 0 {
			drift = -drift
		}
		rep.AddRow(spec.Name, base.NumRows(), norm.Frame.NumRows(), dup.NumRows(), drift)
	}
	return rep, nil
}

func classFrac(dist map[int]int) float64 {
	total := 0
	for _, n := range dist {
		total += n
	}
	if total == 0 {
		return 0
	}
	return float64(dist[1]) / float64(total)
}

// duplicatingLeftJoin materialises what a naive left join would do on a
// 1:N relationship: every matching right row produces an output row. The
// right side is artificially inflated by `copies` to force 1:N.
func duplicatingLeftJoin(left, right *frame.Frame, leftKey, rightKey string, copies int) (*frame.Frame, error) {
	rc := right.Column(rightKey)
	rows := make(map[string][]int, rc.Len())
	for i, n := 0, rc.Len(); i < n; i++ {
		if k, ok := rc.Key(i); ok {
			for c := 0; c < copies; c++ {
				rows[k] = append(rows[k], i)
			}
		}
	}
	lc := left.Column(leftKey)
	if lc == nil {
		return nil, fmt.Errorf("bench: no column %q", leftKey)
	}
	var leftIdx, rightIdx []int
	for i, n := 0, lc.Len(); i < n; i++ {
		k, ok := lc.Key(i)
		if !ok {
			leftIdx = append(leftIdx, i)
			rightIdx = append(rightIdx, -1)
			continue
		}
		matches := rows[k]
		if len(matches) == 0 {
			leftIdx = append(leftIdx, i)
			rightIdx = append(rightIdx, -1)
			continue
		}
		for _, m := range matches {
			leftIdx = append(leftIdx, i)
			rightIdx = append(rightIdx, m)
		}
	}
	out := left.Take(leftIdx)
	rightRows := right.Prefixed(right.Name() + "_dup").Take(rightIdx)
	return out.ConcatCols(rightRows)
}

// AblationSimPrune measures the first pruning strategy in the lake
// setting: similarity-score pruning on vs off (paths explored, selection
// time, resulting accuracy).
func (r *Runner) AblationSimPrune() (*Report, error) {
	rep := &Report{
		ID:     "ablation-simprune",
		Title:  "Similarity-score pruning on/off (lake setting)",
		Header: []string{"dataset", "pruning", "paths explored", "selection time", "accuracy"},
		Notes:  []string{"without pruning every parallel edge is traversed; expect more paths and more time for similar accuracy"},
	}
	lgbm, _ := ml.FactoryByName("lightgbm")
	for _, spec := range r.Specs[:min(3, len(r.Specs))] {
		for _, pruning := range []bool{true, false} {
			cfg := DefaultAutoFeatConfig(r.Seed)
			cfg.SimilarityPruning = pruning
			d, err := r.Dataset(spec.Name)
			if err != nil {
				return nil, err
			}
			g, err := r.DRG(spec.Name, Lake)
			if err != nil {
				return nil, err
			}
			disc, err := core.New(g, d.Base.Name(), d.Label, cfg)
			if err != nil {
				return nil, err
			}
			ranking, err := disc.Run()
			if err != nil {
				return nil, err
			}
			res, err := disc.EvaluateRanking(ranking, lgbm)
			if err != nil {
				return nil, err
			}
			label := "on"
			if !pruning {
				label = "off"
			}
			rep.AddRow(spec.Name, label, ranking.PathsExplored, ranking.SelectionTime, res.Best.Eval.Accuracy)
		}
	}
	return rep, nil
}

// AblationBins sweeps the discretisation granularity used by the
// information-theoretic metrics (an implementation choice the paper
// inherits from its toolkit).
func (r *Runner) AblationBins() (*Report, error) {
	rep := &Report{
		ID:     "ablation-bins",
		Title:  "MI discretisation bins: accuracy and selection time (IG relevance)",
		Header: []string{"bins", "mean accuracy", "total selection time"},
	}
	for _, bins := range []int{4, 10, 32} {
		acc, elapsed, err := r.relevanceStudy(fselect.IGRelevance{Bins: bins})
		if err != nil {
			return nil, err
		}
		rep.AddRow(bins, acc, elapsed)
	}
	return rep, nil
}

// AblationStreaming compares AutoFeat's streaming per-join selection with
// one-shot post-hoc selection over the fully joined wide table (the
// JoinAll+F strategy upgraded to the same Spearman+MRMR pipeline).
func (r *Runner) AblationStreaming() (*Report, error) {
	rep := &Report{
		ID:     "ablation-streaming",
		Title:  "Streaming per-join selection vs one-shot post-hoc selection",
		Header: []string{"dataset", "strategy", "accuracy", "selection time", "features kept"},
		Notes:  []string{"streaming bounds each batch to the join's columns; post-hoc must rank the whole wide table at once"},
	}
	lgbm, _ := ml.FactoryByName("lightgbm")
	for _, spec := range r.Specs[:min(4, len(r.Specs))] {
		d, err := r.Dataset(spec.Name)
		if err != nil {
			return nil, err
		}
		// Streaming: AutoFeat itself.
		mr, err := r.RunMethod(spec.Name, Benchmark, "autofeat", lgbm)
		if err != nil {
			return nil, err
		}
		e, err := r.autofeatRanking(spec.Name, Benchmark, DefaultAutoFeatConfig(r.Seed))
		if err != nil {
			return nil, err
		}
		kept := 0
		if len(e.ranking.Paths) > 0 {
			kept = len(e.ranking.Paths[0].Features)
		}
		rep.AddRow(spec.Name, "streaming", mr.Accuracy, mr.SelectionTime, kept)

		// Post-hoc: flatten everything, then one Spearman+MRMR pass.
		flat, y, features, cols, err := r.flatStudy(spec.Name)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		pipe := &fselect.Pipeline{Relevance: fselect.SpearmanRelevance{}, Redundancy: fselect.NewMRMR(), K: 15}
		sel := pipe.Run(cols, nil, y)
		selTime := time.Since(start)
		names := make([]string, len(sel.Kept))
		for i, k := range sel.Kept {
			names[i] = features[k]
		}
		if len(names) == 0 {
			names = features
		}
		eval, err := ml.EvaluateFrame(flat, names, "target", ml.NewLightGBM(r.Seed), r.Seed)
		if err != nil {
			return nil, err
		}
		rep.AddRow(d.Spec.Name, "post-hoc", eval.Accuracy, selTime, len(sel.Kept))
	}
	return rep, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// AblationJoinType makes Section IV-B's join-type argument measurable:
// along each dataset's first join, compare the left join (rows and label
// balance preserved) with an inner join (rows dropped, balance skewed when
// coverage correlates with anything).
func (r *Runner) AblationJoinType() (*Report, error) {
	rep := &Report{
		ID:     "ablation-jointype",
		Title:  "Left vs inner join: retained rows and label drift",
		Header: []string{"dataset", "join", "rows", "label positive frac", "quality"},
		Notes:  []string{"left joins keep the base table intact; inner joins shrink it whenever coverage < 100%"},
	}
	for _, spec := range r.Specs[:min(4, len(r.Specs))] {
		d, err := r.Dataset(spec.Name)
		if err != nil {
			return nil, err
		}
		g, err := r.DRG(spec.Name, Benchmark)
		if err != nil {
			return nil, err
		}
		base := d.Base.Prefixed(d.Base.Name())
		label := d.Base.Name() + "." + d.Label
		edges := g.EdgesFrom(d.Base.Name())
		if len(edges) == 0 {
			continue
		}
		e := edges[0]
		right := g.Table(e.B)
		left, err := relational.LeftJoin(base, right, e.A+"."+e.ColA, e.ColB, relational.Options{})
		if err != nil {
			return nil, err
		}
		inner, err := relational.InnerJoin(base, right, e.A+"."+e.ColA, e.ColB, relational.Options{})
		if err != nil {
			return nil, err
		}
		for _, tc := range []struct {
			name string
			res  *relational.Result
		}{{"left", left}, {"inner", inner}} {
			dist, err := tc.res.Frame.ClassDistribution(label)
			if err != nil {
				return nil, err
			}
			rep.AddRow(spec.Name, tc.name, tc.res.Frame.NumRows(), classFrac(dist), tc.res.Quality())
		}
	}
	return rep, nil
}
