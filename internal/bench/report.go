// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Table I, Table II, Figures 1 and 3–9)
// as text reports. Each experiment has a function returning a *Report; the
// root-level benchmark suite (bench_test.go) and cmd/experiments drive
// them at quick and full scale respectively.
//
// The harness does not claim to match the paper's absolute numbers — the
// substrate is a from-scratch Go stack on synthetic analogue datasets —
// but the *shape* of every result is asserted in EXPERIMENTS.md: who wins,
// by roughly what factor, and where the crossovers fall.
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Report is one regenerated table or figure as rows of text cells.
type Report struct {
	// ID is the experiment identifier ("figure4", "table2", ...).
	ID string
	// Title describes what the paper shows there.
	Title string
	// Header labels the columns.
	Header []string
	// Rows are the data cells.
	Rows [][]string
	// Notes document substitutions, scaling and expectations.
	Notes []string
}

// AddRow appends one row, stringifying each cell.
func (r *Report) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	r.Rows = append(r.Rows, row)
}

func formatCell(c any) string {
	switch v := c.(type) {
	case string:
		return v
	case float64:
		return fmt.Sprintf("%.4f", v)
	case time.Duration:
		return v.Round(time.Millisecond).String()
	case int:
		return fmt.Sprintf("%d", v)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
