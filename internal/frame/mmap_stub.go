//go:build !unix

package frame

import "os"

// mapFile reads path into memory on platforms without the mmap fast path;
// the columnar reader works identically either way, just without the
// zero-copy page-cache sharing.
func mapFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}
