package frame

import (
	"fmt"
	"math/rand"
	"sort"
)

// Split holds the result of a train/test partition.
type Split struct {
	Train *Frame
	Test  *Frame
	// TrainIdx and TestIdx are the source row indices of each partition.
	TrainIdx []int
	TestIdx  []int
}

// StratifiedSplit partitions the frame into train/test with the given train
// fraction, preserving the per-class proportions of the label column
// (Section V-B uses an 80%-20% stratified split). The split is deterministic
// for a given rng seed.
func (f *Frame) StratifiedSplit(label string, trainFrac float64, rng *rand.Rand) (*Split, error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, fmt.Errorf("frame: train fraction %v out of (0,1)", trainFrac)
	}
	y, err := f.Labels(label)
	if err != nil {
		return nil, err
	}
	byClass := make(map[int][]int)
	for i, c := range y {
		byClass[c] = append(byClass[c], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	var trainIdx, testIdx []int
	for _, c := range classes {
		rows := byClass[c]
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		nTrain := int(float64(len(rows))*trainFrac + 0.5)
		if nTrain == 0 && len(rows) > 0 {
			nTrain = 1
		}
		if nTrain == len(rows) && len(rows) > 1 {
			nTrain--
		}
		trainIdx = append(trainIdx, rows[:nTrain]...)
		testIdx = append(testIdx, rows[nTrain:]...)
	}
	sort.Ints(trainIdx)
	sort.Ints(testIdx)
	return &Split{
		Train:    f.Take(trainIdx),
		Test:     f.Take(testIdx),
		TrainIdx: trainIdx,
		TestIdx:  testIdx,
	}, nil
}

// StratifiedSample returns at most n rows sampled without replacement while
// preserving the label distribution. AutoFeat samples the base table this
// way before feature selection to bound selection cost (Section VI); model
// training still sees the full data.
func (f *Frame) StratifiedSample(label string, n int, rng *rand.Rand) (*Frame, error) {
	total := f.NumRows()
	if n >= total {
		return f, nil
	}
	y, err := f.Labels(label)
	if err != nil {
		return nil, err
	}
	byClass := make(map[int][]int)
	for i, c := range y {
		byClass[c] = append(byClass[c], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	frac := float64(n) / float64(total)
	var pick []int
	for _, c := range classes {
		rows := byClass[c]
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		k := int(float64(len(rows))*frac + 0.5)
		if k == 0 && len(rows) > 0 {
			k = 1
		}
		pick = append(pick, rows[:k]...)
	}
	sort.Ints(pick)
	return f.Take(pick), nil
}

// Shuffled returns a row-shuffled copy of the frame.
func (f *Frame) Shuffled(rng *rand.Rand) *Frame {
	idx := make([]int, f.NumRows())
	for i := range idx {
		idx[i] = i
	}
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return f.Take(idx)
}
