package frame

import (
	"fmt"
	"math/rand"
	"sort"
)

// Split holds the result of a train/test partition.
type Split struct {
	Train *Frame
	Test  *Frame
	// TrainIdx and TestIdx are the source row indices of each partition.
	TrainIdx []int
	TestIdx  []int
}

// StratifiedSplit partitions the frame into train/test with the given train
// fraction, preserving the per-class proportions of the label column
// (Section V-B uses an 80%-20% stratified split). The split is deterministic
// for a given rng seed.
func (f *Frame) StratifiedSplit(label string, trainFrac float64, rng *rand.Rand) (*Split, error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, fmt.Errorf("frame: train fraction %v out of (0,1)", trainFrac)
	}
	y, err := f.Labels(label)
	if err != nil {
		return nil, err
	}
	byClass := make(map[int][]int)
	for i, c := range y {
		byClass[c] = append(byClass[c], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	var trainIdx, testIdx []int
	for _, c := range classes {
		rows := byClass[c]
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		nTrain := int(float64(len(rows))*trainFrac + 0.5)
		if nTrain == 0 && len(rows) > 0 {
			nTrain = 1
		}
		if nTrain == len(rows) && len(rows) > 1 {
			nTrain--
		}
		trainIdx = append(trainIdx, rows[:nTrain]...)
		testIdx = append(testIdx, rows[nTrain:]...)
	}
	sort.Ints(trainIdx)
	sort.Ints(testIdx)
	return &Split{
		Train:    f.Take(trainIdx),
		Test:     f.Take(testIdx),
		TrainIdx: trainIdx,
		TestIdx:  testIdx,
	}, nil
}

// StratifiedSample returns at most n rows sampled without replacement while
// preserving the label distribution. AutoFeat samples the base table this
// way before feature selection to bound selection cost (Section VI); model
// training still sees the full data.
//
// The result is always a fresh frame (never the receiver) and never holds
// more than n rows: per-class rounding plus the one-row-per-class floor can
// overshoot, and the overshoot is trimmed largest-remainder style — the
// classes whose allocation most exceeds their exact proportional share give
// rows back first, dropping classes to zero only when there are more
// classes than n.
func (f *Frame) StratifiedSample(label string, n int, rng *rand.Rand) (*Frame, error) {
	total := f.NumRows()
	if n >= total {
		// Copy rather than alias the receiver, so callers may treat the
		// sample as an independent frame.
		idx := make([]int, total)
		for i := range idx {
			idx[i] = i
		}
		return f.Take(idx), nil
	}
	y, err := f.Labels(label)
	if err != nil {
		return nil, err
	}
	byClass := make(map[int][]int)
	for i, c := range y {
		byClass[c] = append(byClass[c], i)
	}
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	frac := float64(n) / float64(total)
	type alloc struct {
		rows []int
		k    int
		// over is how far k exceeds the class's exact proportional share;
		// trimming removes from the largest overshoot first, which is the
		// largest-remainder rule applied in reverse.
		over float64
	}
	allocs := make([]alloc, 0, len(classes))
	picked := 0
	for _, c := range classes {
		rows := byClass[c]
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		exact := float64(len(rows)) * frac
		k := int(exact + 0.5)
		if k == 0 && len(rows) > 0 {
			k = 1
		}
		if k > len(rows) {
			k = len(rows)
		}
		allocs = append(allocs, alloc{rows: rows, k: k, over: float64(k) - exact})
		picked += k
	}
	// Trim the overshoot down to exactly n. First pass keeps every class
	// represented (only classes with k >= 2 give rows back); a second pass
	// drops classes entirely when there are more classes than n.
	for _, floor := range []int{2, 1} {
		for picked > n {
			best := -1
			for i := range allocs {
				if allocs[i].k < floor {
					continue
				}
				if best < 0 || allocs[i].over > allocs[best].over {
					best = i
				}
			}
			if best < 0 {
				break
			}
			allocs[best].k--
			allocs[best].over--
			picked--
		}
	}
	var pick []int
	for _, a := range allocs {
		pick = append(pick, a.rows[:a.k]...)
	}
	sort.Ints(pick)
	return f.Take(pick), nil
}

// Shuffled returns a row-shuffled copy of the frame.
func (f *Frame) Shuffled(rng *rand.Rand) *Frame {
	idx := make([]int, f.NumRows())
	for i := range idx {
		idx[i] = i
	}
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return f.Take(idx)
}
