package frame

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func sampleFrame(t *testing.T) *Frame {
	t.Helper()
	f := New("people")
	mustAdd(t, f, NewIntColumn("id", []int64{1, 2, 3, 4, 5, 6}, nil))
	mustAdd(t, f, NewStringColumn("city", []string{"delft", "delft", "leiden", "haag", "leiden", "delft"}, nil))
	mustAdd(t, f, NewFloatColumn("income", []float64{10, 20, 30, 0, 50, 60}, []bool{true, true, true, false, true, true}))
	mustAdd(t, f, NewIntColumn("label", []int64{0, 1, 0, 1, 0, 1}, nil))
	return f
}

func mustAdd(t *testing.T, f *Frame, c *Column) {
	t.Helper()
	if err := f.AddColumn(c); err != nil {
		t.Fatal(err)
	}
}

func TestFrameBasics(t *testing.T) {
	f := sampleFrame(t)
	if f.NumRows() != 6 || f.NumCols() != 4 {
		t.Fatalf("shape = %dx%d, want 6x4", f.NumRows(), f.NumCols())
	}
	if f.Column("city") == nil || f.Column("nope") != nil {
		t.Fatal("Column lookup broken")
	}
	if !f.HasColumn("id") || f.HasColumn("nope") {
		t.Fatal("HasColumn broken")
	}
	if f.ColumnAt(0).Name() != "id" {
		t.Fatal("ColumnAt broken")
	}
}

func TestFrameAddColumnErrors(t *testing.T) {
	f := sampleFrame(t)
	if err := f.AddColumn(NewIntColumn("id", []int64{1, 2, 3, 4, 5, 6}, nil)); err == nil {
		t.Fatal("duplicate column must fail")
	}
	if err := f.AddColumn(NewIntColumn("short", []int64{1}, nil)); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestFrameSelectDrop(t *testing.T) {
	f := sampleFrame(t)
	sel, err := f.Select("city", "id")
	if err != nil {
		t.Fatal(err)
	}
	if got := sel.ColumnNames(); got[0] != "city" || got[1] != "id" || len(got) != 2 {
		t.Fatalf("Select order wrong: %v", got)
	}
	if _, err := f.Select("missing"); err == nil {
		t.Fatal("Select of missing column must fail")
	}
	d := f.Drop("income", "ghost")
	if d.NumCols() != 3 || d.HasColumn("income") {
		t.Fatalf("Drop wrong: %v", d.ColumnNames())
	}
}

func TestFrameTakeAndHead(t *testing.T) {
	f := sampleFrame(t)
	h := f.Head(2)
	if h.NumRows() != 2 || h.Column("id").Int(1) != 2 {
		t.Fatal("Head broken")
	}
	if f.Head(100).NumRows() != 6 {
		t.Fatal("Head beyond length must clamp")
	}
	tk := f.Take([]int{5, -1})
	if tk.Column("id").Int(0) != 6 {
		t.Fatal("Take broken")
	}
	if tk.Column("id").IsValid(1) {
		t.Fatal("Take -1 must null the row")
	}
}

func TestFramePrefixed(t *testing.T) {
	f := sampleFrame(t)
	p := f.Prefixed("people")
	if !p.HasColumn("people.id") {
		t.Fatalf("Prefixed wrong: %v", p.ColumnNames())
	}
	// Idempotent: prefixing twice must not double-prefix.
	pp := p.Prefixed("people")
	if !pp.HasColumn("people.id") || pp.HasColumn("people.people.id") {
		t.Fatalf("double prefix: %v", pp.ColumnNames())
	}
}

func TestFrameConcatCols(t *testing.T) {
	f := sampleFrame(t)
	g := New("extra")
	mustAdd(t, g, NewIntColumn("id", []int64{9, 9, 9, 9, 9, 9}, nil))
	mustAdd(t, g, NewFloatColumn("z", []float64{1, 2, 3, 4, 5, 6}, nil))
	out, err := f.ConcatCols(g)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumCols() != 6 {
		t.Fatalf("NumCols = %d, want 6", out.NumCols())
	}
	if !out.HasColumn("id_2") {
		t.Fatalf("duplicate name must be suffixed: %v", out.ColumnNames())
	}
	short := New("short")
	mustAdd(t, short, NewIntColumn("w", []int64{1}, nil))
	if _, err := f.ConcatCols(short); err == nil {
		t.Fatal("row mismatch must fail")
	}
}

func TestFrameNullRatioCompleteness(t *testing.T) {
	f := sampleFrame(t)
	want := 1.0 / 24.0
	if got := f.NullRatio(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("NullRatio = %v, want %v", got, want)
	}
	if got := f.Completeness(); math.Abs(got-(1-want)) > 1e-12 {
		t.Fatalf("Completeness = %v", got)
	}
	if New("empty").NullRatio() != 0 {
		t.Fatal("empty frame null ratio must be 0")
	}
}

func TestFrameImputed(t *testing.T) {
	f := sampleFrame(t)
	imp := f.Imputed()
	if imp.NullRatio() != 0 {
		t.Fatal("imputed frame must have no nulls")
	}
	if f.Column("income").NullCount() != 1 {
		t.Fatal("Imputed must not mutate the source")
	}
}

func TestFrameMatrixAndLabels(t *testing.T) {
	f := sampleFrame(t)
	m, err := f.Matrix([]string{"income", "city"})
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 6 || len(m[0]) != 2 {
		t.Fatal("matrix shape wrong")
	}
	if !math.IsNaN(m[3][0]) {
		t.Fatal("null income must be NaN in matrix")
	}
	// city label-encoded: delft=0, haag=1, leiden=2
	if m[0][1] != 0 || m[2][1] != 2 || m[3][1] != 1 {
		t.Fatalf("city encoding wrong: %v %v %v", m[0][1], m[2][1], m[3][1])
	}
	if _, err := f.Matrix([]string{"ghost"}); err == nil {
		t.Fatal("missing feature must fail")
	}
	y, err := f.Labels("label")
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 0 || y[1] != 1 {
		t.Fatal("labels wrong")
	}
	if _, err := f.Labels("income"); err == nil {
		t.Fatal("null labels must fail")
	}
	if _, err := f.Labels("ghost"); err == nil {
		t.Fatal("missing label must fail")
	}
}

func TestFrameLabelsNonIntegral(t *testing.T) {
	f := New("t")
	mustAdd(t, f, NewFloatColumn("y", []float64{0.5}, nil))
	if _, err := f.Labels("y"); err == nil {
		t.Fatal("non-integral label must fail")
	}
}

func TestFrameClassDistribution(t *testing.T) {
	f := sampleFrame(t)
	d, err := f.ClassDistribution("label")
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 3 || d[1] != 3 {
		t.Fatalf("distribution = %v", d)
	}
}

func TestFrameEqualAndWithName(t *testing.T) {
	f := sampleFrame(t)
	g := sampleFrame(t)
	if !f.Equal(g) {
		t.Fatal("identical frames must be equal")
	}
	if f.Equal(g.WithName("other")) {
		t.Fatal("different names must not be equal")
	}
	if f.Equal(g.Drop("id")) {
		t.Fatal("different schemas must not be equal")
	}
}

func TestFrameString(t *testing.T) {
	f := sampleFrame(t)
	s := f.String()
	if !strings.Contains(s, "people [6 rows x 4 cols]") {
		t.Fatalf("preview header missing: %s", s)
	}
	if !strings.Contains(s, "more rows") {
		t.Fatal("preview must note truncation")
	}
}

func TestStratifiedSplitPreservesDistribution(t *testing.T) {
	n := 1000
	ids := make([]int64, n)
	labels := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
		if i%4 == 0 {
			labels[i] = 1 // 25% positive
		}
	}
	f := New("big")
	mustAdd(t, f, NewIntColumn("id", ids, nil))
	mustAdd(t, f, NewIntColumn("y", labels, nil))
	sp, err := f.StratifiedSplit("y", 0.8, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Train.NumRows()+sp.Test.NumRows() != n {
		t.Fatal("split must partition all rows")
	}
	dTrain, _ := sp.Train.ClassDistribution("y")
	frac := float64(dTrain[1]) / float64(sp.Train.NumRows())
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("train positive fraction = %v, want ~0.25", frac)
	}
	// No leakage: train and test indices disjoint.
	seen := map[int]bool{}
	for _, i := range sp.TrainIdx {
		seen[i] = true
	}
	for _, i := range sp.TestIdx {
		if seen[i] {
			t.Fatal("train/test leakage")
		}
	}
}

func TestStratifiedSplitBadFraction(t *testing.T) {
	f := sampleFrame(t)
	for _, frac := range []float64{0, 1, -0.5, 1.5} {
		if _, err := f.StratifiedSplit("label", frac, rand.New(rand.NewSource(1))); err == nil {
			t.Fatalf("fraction %v must fail", frac)
		}
	}
}

func TestStratifiedSplitDeterminism(t *testing.T) {
	f := sampleFrame(t)
	a, _ := f.StratifiedSplit("label", 0.5, rand.New(rand.NewSource(3)))
	b, _ := f.StratifiedSplit("label", 0.5, rand.New(rand.NewSource(3)))
	if !a.Train.Equal(b.Train) || !a.Test.Equal(b.Test) {
		t.Fatal("same seed must give same split")
	}
}

func TestStratifiedSample(t *testing.T) {
	f := sampleFrame(t)
	s, err := f.StratifiedSample("label", 4, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() < 2 || s.NumRows() > 4 {
		t.Fatalf("sample size = %d, want <= 4", s.NumRows())
	}
	// Sampling more than available returns an equal copy, never the
	// receiver (callers may treat the sample as an independent frame).
	s2, _ := f.StratifiedSample("label", 100, rand.New(rand.NewSource(5)))
	if s2 == f {
		t.Fatal("oversized sample must not alias the original frame")
	}
	if !s2.Equal(f) {
		t.Fatal("oversized sample must keep every row")
	}
}

func TestShuffledKeepsMultiset(t *testing.T) {
	f := sampleFrame(t)
	s := f.Shuffled(rand.New(rand.NewSource(2)))
	if s.NumRows() != f.NumRows() {
		t.Fatal("shuffle must keep row count")
	}
	sum := int64(0)
	for i := 0; i < s.NumRows(); i++ {
		sum += s.Column("id").Int(i)
	}
	if sum != 21 {
		t.Fatalf("shuffle must preserve rows, id sum = %d", sum)
	}
}

func TestSortedColumnNames(t *testing.T) {
	f := sampleFrame(t)
	names := f.SortedColumnNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatal("names must be sorted")
		}
	}
}

func TestStratifiedSampleManyTinyClasses(t *testing.T) {
	// 30 classes of 2 rows each. The one-row-per-class floor alone would
	// pick 30 rows; the old rounding could therefore return 3x the requested
	// size. The trimmed sample must hit n exactly.
	n := 60
	ids := make([]int64, n)
	labels := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
		labels[i] = int64(i / 2)
	}
	f := New("tiny")
	mustAdd(t, f, NewIntColumn("id", ids, nil))
	mustAdd(t, f, NewIntColumn("y", labels, nil))
	s, err := f.StratifiedSample("y", 10, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != 10 {
		t.Fatalf("sample size = %d, want exactly 10 (floors must be trimmed)", s.NumRows())
	}
	d, err := s.ClassDistribution("y")
	if err != nil {
		t.Fatal(err)
	}
	for c, cnt := range d {
		if cnt != 1 {
			t.Fatalf("class %d sampled %d rows, want 1 (trim may not stack rows)", c, cnt)
		}
	}
	// When n >= #classes, every class stays represented.
	s2, err := f.StratifiedSample("y", 35, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumRows() > 35 {
		t.Fatalf("sample size = %d, must never exceed n=35", s2.NumRows())
	}
	d2, err := s2.ClassDistribution("y")
	if err != nil {
		t.Fatal(err)
	}
	if len(d2) != 30 {
		t.Fatalf("all 30 classes must stay represented, got %d", len(d2))
	}
}
