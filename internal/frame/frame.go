package frame

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Frame is an ordered collection of equal-length columns, i.e. a table.
// Frames are value-semantics-light: structural operations (Take, Select,
// Concat, ...) return new frames that may share column storage with their
// inputs; columns are never mutated in place after being added.
type Frame struct {
	name  string
	cols  []*Column
	index map[string]int
}

// New creates an empty frame with the given table name.
func New(name string) *Frame {
	return &Frame{name: name, index: make(map[string]int)}
}

// Name returns the table name.
func (f *Frame) Name() string { return f.name }

// WithName returns a shallow copy of the frame under a new table name.
func (f *Frame) WithName(name string) *Frame {
	out := New(name)
	for _, c := range f.cols {
		out.add(c)
	}
	return out
}

// NumRows returns the number of rows (0 for a frame with no columns).
func (f *Frame) NumRows() int {
	if len(f.cols) == 0 {
		return 0
	}
	return f.cols[0].Len()
}

// NumCols returns the number of columns.
func (f *Frame) NumCols() int { return len(f.cols) }

// AddColumn appends a column. It fails if the name already exists or the
// length disagrees with existing columns.
func (f *Frame) AddColumn(c *Column) error {
	if _, dup := f.index[c.Name()]; dup {
		return fmt.Errorf("frame %q: duplicate column %q", f.name, c.Name())
	}
	if len(f.cols) > 0 && c.Len() != f.NumRows() {
		return fmt.Errorf("frame %q: column %q has %d rows, want %d", f.name, c.Name(), c.Len(), f.NumRows())
	}
	f.index[c.Name()] = len(f.cols)
	f.cols = append(f.cols, c)
	return nil
}

// add appends c for internal structural operations (WithName, Take,
// Drop, Prefixed, Imputed), which only ever add columns of the frame's
// own row count — so the only conflict class is a duplicate name, which
// is resolved with a numeric suffix ("x_2") exactly like ConcatCols.
// Corrupt names therefore degrade instead of panicking.
func (f *Frame) add(c *Column) {
	name := c.Name()
	if _, dup := f.index[name]; dup {
		for i := 2; ; i++ {
			candidate := fmt.Sprintf("%s_%d", c.Name(), i)
			if _, taken := f.index[candidate]; !taken {
				name = candidate
				break
			}
		}
		c = c.WithName(name)
	}
	f.index[name] = len(f.cols)
	f.cols = append(f.cols, c)
}

// Column returns the named column, or nil when absent.
func (f *Frame) Column(name string) *Column {
	if i, ok := f.index[name]; ok {
		return f.cols[i]
	}
	return nil
}

// HasColumn reports whether a column with the given name exists.
func (f *Frame) HasColumn(name string) bool {
	_, ok := f.index[name]
	return ok
}

// ColumnAt returns the column at position i.
func (f *Frame) ColumnAt(i int) *Column { return f.cols[i] }

// ColumnNames returns the column names in order.
func (f *Frame) ColumnNames() []string {
	out := make([]string, len(f.cols))
	for i, c := range f.cols {
		out[i] = c.Name()
	}
	return out
}

// Columns returns the columns in order. The returned slice is a copy; the
// columns themselves are shared.
func (f *Frame) Columns() []*Column {
	out := make([]*Column, len(f.cols))
	copy(out, f.cols)
	return out
}

// Take returns a new frame containing the rows at the given indices, in
// order. Index -1 produces an all-null row.
func (f *Frame) Take(idx []int) *Frame {
	out := New(f.name)
	for _, c := range f.cols {
		out.add(c.Take(idx))
	}
	return out
}

// Select returns a new frame with only the named columns, in the order
// given. Unknown names are an error.
func (f *Frame) Select(names ...string) (*Frame, error) {
	out := New(f.name)
	for _, n := range names {
		c := f.Column(n)
		if c == nil {
			return nil, fmt.Errorf("frame %q: no column %q", f.name, n)
		}
		if err := out.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Drop returns a new frame without the named columns. Missing names are
// ignored, making Drop convenient for best-effort cleanup.
func (f *Frame) Drop(names ...string) *Frame {
	skip := make(map[string]struct{}, len(names))
	for _, n := range names {
		skip[n] = struct{}{}
	}
	out := New(f.name)
	for _, c := range f.cols {
		if _, drop := skip[c.Name()]; !drop {
			out.add(c)
		}
	}
	return out
}

// Prefixed returns a copy of the frame whose columns are renamed to
// "prefix.column". Columns already carrying the prefix keep their name.
// Join results use this to keep feature provenance unambiguous.
func (f *Frame) Prefixed(prefix string) *Frame {
	out := New(f.name)
	for _, c := range f.cols {
		name := c.Name()
		if !strings.HasPrefix(name, prefix+".") {
			name = prefix + "." + name
		}
		out.add(c.WithName(name))
	}
	return out
}

// ConcatCols returns a frame with f's columns followed by g's. Duplicate
// names in g get a numeric suffix; mismatched row counts are an error.
func (f *Frame) ConcatCols(g *Frame) (*Frame, error) {
	if f.NumCols() > 0 && g.NumCols() > 0 && f.NumRows() != g.NumRows() {
		return nil, fmt.Errorf("frame: concat row mismatch %d vs %d", f.NumRows(), g.NumRows())
	}
	out := New(f.name)
	for _, c := range f.cols {
		out.add(c)
	}
	for _, c := range g.cols {
		name := c.Name()
		for i := 2; out.HasColumn(name); i++ {
			name = fmt.Sprintf("%s_%d", c.Name(), i)
		}
		if err := out.AddColumn(c.WithName(name)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Imputed returns a copy of the frame with every column's nulls replaced by
// that column's most frequent value (Section V-B methodology).
func (f *Frame) Imputed() *Frame {
	out := New(f.name)
	for _, c := range f.cols {
		out.add(c.Imputed())
	}
	return out
}

// NullRatio returns the fraction of null cells over the whole frame.
func (f *Frame) NullRatio() float64 {
	cells, nulls := 0, 0
	for _, c := range f.cols {
		cells += c.Len()
		nulls += c.NullCount()
	}
	if cells == 0 {
		return 0
	}
	return float64(nulls) / float64(cells)
}

// Completeness returns 1 - NullRatio, the data-quality measure used by the
// paper's second pruning strategy (Section IV-C).
func (f *Frame) Completeness() float64 { return 1 - f.NullRatio() }

// Equal reports whether two frames have identical names, schemas and cells.
func (f *Frame) Equal(g *Frame) bool {
	if f.name != g.name || len(f.cols) != len(g.cols) {
		return false
	}
	for i := range f.cols {
		if !f.cols[i].Equal(g.cols[i]) {
			return false
		}
	}
	return true
}

// Head returns the first n rows (or fewer if the frame is shorter).
func (f *Frame) Head(n int) *Frame {
	if n > f.NumRows() {
		n = f.NumRows()
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return f.Take(idx)
}

// String renders a compact textual preview used by examples and debugging.
func (f *Frame) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%d rows x %d cols]\n", f.name, f.NumRows(), f.NumCols())
	show := f.NumRows()
	if show > 5 {
		show = 5
	}
	b.WriteString(strings.Join(f.ColumnNames(), " | "))
	b.WriteByte('\n')
	for i := 0; i < show; i++ {
		cells := make([]string, len(f.cols))
		for j, c := range f.cols {
			cells[j] = c.FormatCell(i)
		}
		b.WriteString(strings.Join(cells, " | "))
		b.WriteByte('\n')
	}
	if f.NumRows() > show {
		fmt.Fprintf(&b, "... (%d more rows)\n", f.NumRows()-show)
	}
	return b.String()
}

// Matrix converts the named feature columns into a dense row-major numeric
// matrix. Nulls become NaN; string columns are label-encoded (see
// Column.Floats). The caller is expected to have imputed first when the
// downstream consumer cannot handle NaN.
func (f *Frame) Matrix(features []string) ([][]float64, error) {
	cols := make([][]float64, len(features))
	for j, name := range features {
		c := f.Column(name)
		if c == nil {
			return nil, fmt.Errorf("frame %q: no feature column %q", f.name, name)
		}
		cols[j] = c.Floats()
	}
	n := f.NumRows()
	rows := make([][]float64, n)
	flat := make([]float64, n*len(features))
	for i := 0; i < n; i++ {
		rows[i] = flat[i*len(features) : (i+1)*len(features)]
		for j := range features {
			rows[i][j] = cols[j][i]
		}
	}
	return rows, nil
}

// Labels converts the named column into integer class labels. Float labels
// must be integral; nulls are an error (impute first).
func (f *Frame) Labels(name string) ([]int, error) {
	c := f.Column(name)
	if c == nil {
		return nil, fmt.Errorf("frame %q: no label column %q", f.name, name)
	}
	vals := c.Floats()
	out := make([]int, len(vals))
	for i, v := range vals {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("frame %q: null label at row %d", f.name, i)
		}
		if v != math.Trunc(v) {
			return nil, fmt.Errorf("frame %q: non-integral label %v at row %d", f.name, v, i)
		}
		out[i] = int(v)
	}
	return out, nil
}

// ClassDistribution returns the per-class row counts for a label column,
// keyed by class id. Used by tests to verify left joins preserve the label
// distribution exactly (Section IV-B).
func (f *Frame) ClassDistribution(label string) (map[int]int, error) {
	y, err := f.Labels(label)
	if err != nil {
		return nil, err
	}
	out := make(map[int]int)
	for _, v := range y {
		out[v]++
	}
	return out, nil
}

// SortedColumnNames returns column names sorted lexicographically; handy for
// deterministic iteration in callers that range over schema maps.
func (f *Frame) SortedColumnNames() []string {
	names := f.ColumnNames()
	sort.Strings(names)
	return names
}
