package frame

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"autofeat/internal/sketch"
)

// The columnar lake format (one file per table, extension FormatExt) lays a
// table out as typed column blocks plus a JSON footer, so a lake open reads
// the footer and serves cell accesses straight out of the mapped file —
// no per-column Go slices, no CSV parsing, and no re-sketching (the footer
// carries each column's distinct count, numeric range and MinHash
// signature). The full byte-level specification lives in DESIGN.md §14;
// the constants below are audited against it by cmd/doccheck.
const (
	// FormatMagic opens and closes every columnar table file.
	FormatMagic = "AFCL"
	// FormatVersion is the format version this build reads and writes.
	// Like the cluster wire protocol (serve.CheckProto), the match is
	// exact: compatibility within a version is additive-only (new footer
	// fields), and any other version byte is a hard error, never a
	// negotiation.
	FormatVersion = 1
	// FormatExt is the table-file extension a lake directory scan treats
	// as columnar.
	FormatExt = ".afc"
)

// colrHeaderSize is the fixed prelude: magic + version byte.
const colrHeaderSize = len(FormatMagic) + 1

// colrTrailerSize is the fixed epilogue: uint32 footer length + version
// byte + magic. The trailer repeats the version and magic so a truncated
// or overwritten file fails fast at both ends.
const colrTrailerSize = 4 + 1 + len(FormatMagic)

// colrFooter is the JSON footer: everything a reader needs to serve the
// table without scanning the column blocks. Compatibility policy is
// additive-only within a version — readers must ignore unknown fields,
// writers may add fields but never change the meaning of existing ones.
type colrFooter struct {
	Rows    int           `json:"rows"`
	Columns []colrColMeta `json:"columns"`
}

// colrColMeta locates one column's blocks and carries its persisted stats.
type colrColMeta struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Nulls is the null-cell count; 0 means ValidOff is -1 and no bitmap
	// block exists.
	Nulls int `json:"nulls"`
	// ValidOff is the byte offset of the validity bitmap (LSB-first, bit
	// set = valid), or -1 when every cell is valid.
	ValidOff int `json:"valid_off"`
	// DataOff is the byte offset of the value block: 8-byte LE floats or
	// ints, 1-byte bools, or 4-byte LE dictionary codes for strings.
	DataOff int `json:"data_off"`
	// DictOff/DictLen locate the sorted string dictionary (string columns
	// only): DictLen entries of uvarint byte-length + raw bytes.
	DictOff int `json:"dict_off,omitempty"`
	DictLen int `json:"dict_len,omitempty"`
	// SketchOff/SketchK locate the MinHash signature block: SketchK
	// 8-byte LE slot minima.
	SketchOff int `json:"sketch_off"`
	SketchK   int `json:"sketch_k"`
	// Distinct is the exact distinct non-null key count (doubles as the
	// sketch cardinality).
	Distinct int `json:"distinct"`
	// Min/Max bound the numeric values when HasRange is true.
	Min      float64 `json:"min,omitempty"`
	Max      float64 `json:"max,omitempty"`
	HasRange bool    `json:"has_range,omitempty"`
}

// colrBase is the shared backing of every zero-copy column: a window into
// the mapped file plus the validity bitmap location. The accessors for
// kinds the concrete type does not shadow panic, matching the behaviour of
// a slice-backed column indexed with the wrong typed accessor.
type colrBase struct {
	buf      []byte
	n        int
	validOff int // -1 = all valid
}

func (b *colrBase) len() int       { return b.n }
func (b *colrBase) allValid() bool { return b.validOff < 0 }

func (b *colrBase) valid(i int) bool {
	if b.validOff < 0 {
		return true
	}
	if i < 0 || i >= b.n {
		panic("frame: column index out of range")
	}
	return b.buf[b.validOff+(i>>3)]&(1<<(uint(i)&7)) != 0
}

func (b *colrBase) float(int) float64 { panic("frame: not a float column") }
func (b *colrBase) intAt(int) int64   { panic("frame: not an int column") }
func (b *colrBase) str(int) string    { panic("frame: not a string column") }
func (b *colrBase) boolAt(int) bool   { panic("frame: not a bool column") }

type colrFloatData struct {
	colrBase
	off int
}

func (d *colrFloatData) float(i int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off+8*i:]))
}

type colrIntData struct {
	colrBase
	off int
}

func (d *colrIntData) intAt(i int) int64 {
	return int64(binary.LittleEndian.Uint64(d.buf[d.off+8*i:]))
}

type colrBoolData struct {
	colrBase
	off int
}

func (d *colrBoolData) boolAt(i int) bool { return d.buf[d.off+i] != 0 }

type colrStringData struct {
	colrBase
	// dict is the decoded sorted dictionary (the only materialised part
	// of a string column; codes stay in the mapped file).
	dict     []string
	codesOff int
}

func (d *colrStringData) str(i int) string {
	code := binary.LittleEndian.Uint32(d.buf[d.codesOff+4*i:])
	// decodeColumn validated the codes of every valid row, so this guard
	// can only fire on null rows, whose codes bulk readers (Take) may
	// fetch before checking validity — e.g. the empty dictionary of an
	// all-null column. Returning "" there never masks corruption.
	if int(code) >= len(d.dict) {
		return ""
	}
	return d.dict[code]
}

// kindName maps a Kind to its footer spelling; kindFromName inverts it.
func kindName(k Kind) string { return k.String() }

func kindFromName(s string) (Kind, error) {
	switch s {
	case "float":
		return Float, nil
	case "int":
		return Int, nil
	case "string":
		return String, nil
	case "bool":
		return Bool, nil
	default:
		return 0, fmt.Errorf("frame: unknown column kind %q in columnar footer", s)
	}
}

// EncodeColumnar serialises the frame into the columnar format. The table
// name is not stored — like CSV, the filename names the table.
func EncodeColumnar(f *Frame) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(FormatMagic)
	buf.WriteByte(FormatVersion)

	rows := f.NumRows()
	footer := colrFooter{Rows: rows}
	for ci := 0; ci < f.NumCols(); ci++ {
		c := f.ColumnAt(ci)
		if c.Len() != rows {
			return nil, fmt.Errorf("frame: column %q has %d rows, frame has %d", c.Name(), c.Len(), rows)
		}
		meta, err := writeColumnBlocks(&buf, c)
		if err != nil {
			return nil, err
		}
		footer.Columns = append(footer.Columns, meta)
	}

	fb, err := json.Marshal(footer)
	if err != nil {
		return nil, err
	}
	buf.Write(fb)
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], uint32(len(fb)))
	buf.Write(tr[:])
	buf.WriteByte(FormatVersion)
	buf.WriteString(FormatMagic)
	return buf.Bytes(), nil
}

// writeColumnBlocks appends one column's bitmap, data, dictionary and
// sketch blocks and returns the footer entry locating them.
func writeColumnBlocks(buf *bytes.Buffer, c *Column) (colrColMeta, error) {
	n := c.Len()
	meta := colrColMeta{Name: c.Name(), Kind: kindName(c.Kind()), ValidOff: -1}

	if nulls := c.NullCount(); nulls > 0 {
		meta.Nulls = nulls
		meta.ValidOff = buf.Len()
		bitmap := make([]byte, (n+7)/8)
		for i := 0; i < n; i++ {
			if c.IsValid(i) {
				bitmap[i>>3] |= 1 << (uint(i) & 7)
			}
		}
		buf.Write(bitmap)
	}

	switch c.Kind() {
	case Float:
		meta.DataOff = buf.Len()
		var w [8]byte
		for i := 0; i < n; i++ {
			v := 0.0
			if c.IsValid(i) {
				v = c.Float(i)
			}
			binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
			buf.Write(w[:])
		}
	case Int:
		meta.DataOff = buf.Len()
		var w [8]byte
		for i := 0; i < n; i++ {
			var v int64
			if c.IsValid(i) {
				v = c.Int(i)
			}
			binary.LittleEndian.PutUint64(w[:], uint64(v))
			buf.Write(w[:])
		}
	case Bool:
		meta.DataOff = buf.Len()
		for i := 0; i < n; i++ {
			b := byte(0)
			if c.IsValid(i) && c.Bool(i) {
				b = 1
			}
			buf.WriteByte(b)
		}
	case String:
		dict, codes := stringDict(c)
		meta.DictOff = buf.Len()
		meta.DictLen = len(dict)
		var lw [binary.MaxVarintLen64]byte
		for _, s := range dict {
			buf.Write(lw[:binary.PutUvarint(lw[:], uint64(len(s)))])
			buf.WriteString(s)
		}
		meta.DataOff = buf.Len()
		var w [4]byte
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(w[:], codes[i])
			buf.Write(w[:])
		}
	}

	// Stats: min/max over valid numeric cells, then the MinHash signature
	// over deduplicated join keys — the same loop discovery.Sketch runs,
	// so the persisted signature is bit-identical to a freshly computed
	// one and discovery can trust it blindly.
	if c.Kind() != String {
		for i := 0; i < n; i++ {
			if !c.IsValid(i) {
				continue
			}
			var v float64
			switch c.Kind() {
			case Float:
				v = c.Float(i)
			case Int:
				v = float64(c.Int(i))
			case Bool:
				if c.Bool(i) {
					v = 1
				}
			}
			// NaN/Inf cells are stored verbatim in the data block but
			// excluded from the range: the footer is JSON, which cannot
			// carry non-finite numbers.
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if !meta.HasRange {
				meta.Min, meta.Max, meta.HasRange = v, v, true
			} else {
				meta.Min = math.Min(meta.Min, v)
				meta.Max = math.Max(meta.Max, v)
			}
		}
	}

	s := sketch.New(sketch.DefaultSize)
	seen := make(map[string]struct{}, 256)
	for i := 0; i < n; i++ {
		key, ok := c.Key(i)
		if !ok {
			continue
		}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		s.AddHash(sketch.Hash64(key))
	}
	s.Cardinality = len(seen)
	meta.Distinct = len(seen)
	meta.SketchOff = buf.Len()
	meta.SketchK = len(s.Mins)
	var w [8]byte
	for _, m := range s.Mins {
		binary.LittleEndian.PutUint64(w[:], m)
		buf.Write(w[:])
	}
	return meta, nil
}

// stringDict returns the sorted distinct non-null values and the per-row
// dictionary codes (null rows code to 0).
func stringDict(c *Column) ([]string, []uint32) {
	n := c.Len()
	set := make(map[string]struct{}, 64)
	for i := 0; i < n; i++ {
		if c.IsValid(i) {
			set[c.Str(i)] = struct{}{}
		}
	}
	dict := make([]string, 0, len(set))
	for s := range set {
		dict = append(dict, s)
	}
	sort.Strings(dict)
	code := make(map[string]uint32, len(dict))
	for i, s := range dict {
		code[s] = uint32(i)
	}
	codes := make([]uint32, n)
	for i := 0; i < n; i++ {
		if c.IsValid(i) {
			codes[i] = code[c.Str(i)]
		}
	}
	return dict, codes
}

// DecodeColumnar opens a columnar-format byte buffer as a Frame whose
// columns read straight out of buf (zero-copy for numeric data and string
// codes; only the string dictionaries are materialised). The buffer must
// stay immutable and alive for the life of the frame — the reader keeps
// references into it.
func DecodeColumnar(name string, buf []byte) (*Frame, error) {
	if len(buf) < colrHeaderSize+colrTrailerSize {
		return nil, fmt.Errorf("frame: %q: file too short for columnar format", name)
	}
	if string(buf[:len(FormatMagic)]) != FormatMagic {
		return nil, fmt.Errorf("frame: %q: bad magic, not a columnar table file", name)
	}
	if v := buf[len(FormatMagic)]; v != FormatVersion {
		return nil, fmt.Errorf("frame: %q: columnar format version %d is not %d", name, v, FormatVersion)
	}
	tail := buf[len(buf)-colrTrailerSize:]
	if string(tail[5:]) != FormatMagic || tail[4] != FormatVersion {
		return nil, fmt.Errorf("frame: %q: bad trailer, truncated or corrupt columnar file", name)
	}
	flen := int(binary.LittleEndian.Uint32(tail[:4]))
	fstart := len(buf) - colrTrailerSize - flen
	if flen < 0 || fstart < colrHeaderSize {
		return nil, fmt.Errorf("frame: %q: footer length %d out of bounds", name, flen)
	}
	var footer colrFooter
	if err := json.Unmarshal(buf[fstart:fstart+flen], &footer); err != nil {
		return nil, fmt.Errorf("frame: %q: decode columnar footer: %w", name, err)
	}
	// Every column kind stores at least one byte per row, so a row count
	// beyond the file size is corrupt. Rejecting it here also keeps the
	// per-block size arithmetic in decodeColumn (rows*8 etc.) far from int
	// overflow: rows is bounded by the length of a real in-memory buffer.
	if footer.Rows < 0 || footer.Rows > len(buf) {
		return nil, fmt.Errorf("frame: %q: footer row count %d out of bounds for %d-byte file", name, footer.Rows, len(buf))
	}

	f := New(name)
	for _, m := range footer.Columns {
		c, err := decodeColumn(buf, footer.Rows, fstart, m)
		if err != nil {
			return nil, fmt.Errorf("frame: %q: column %q: %w", name, m.Name, err)
		}
		if err := f.AddColumn(c); err != nil {
			return nil, err
		}
	}
	if f.NumCols() > 0 && f.NumRows() != footer.Rows {
		return nil, fmt.Errorf("frame: %q: footer says %d rows, columns hold %d", name, footer.Rows, f.NumRows())
	}
	return f, nil
}

// decodeColumn builds one zero-copy column view after bounds-checking every
// block against the footer start (nothing may read into the footer).
func decodeColumn(buf []byte, rows, limit int, m colrColMeta) (*Column, error) {
	kind, err := kindFromName(m.Kind)
	if err != nil {
		return nil, err
	}
	base := colrBase{buf: buf, n: rows, validOff: m.ValidOff}
	// The footer is untrusted input (serve accepts uploaded buffers), so
	// the bound is phrased as off > limit-size rather than off+size > limit:
	// with size >= 0 and limit <= len(buf) the subtraction cannot overflow,
	// whereas a huge off or size could wrap off+size negative and slip past.
	check := func(off, size int, what string) error {
		if size < 0 || off < colrHeaderSize || off > limit-size {
			return fmt.Errorf("%s block (%d bytes at %d) out of bounds", what, size, off)
		}
		return nil
	}
	if m.ValidOff >= 0 {
		if err := check(m.ValidOff, (rows+7)/8, "validity"); err != nil {
			return nil, err
		}
	}
	if m.SketchK < 0 || m.SketchK > 1<<20 {
		return nil, fmt.Errorf("implausible sketch size %d", m.SketchK)
	}
	if err := check(m.SketchOff, m.SketchK*8, "sketch"); err != nil {
		return nil, err
	}

	var data colData
	switch kind {
	case Float:
		if err := check(m.DataOff, rows*8, "float data"); err != nil {
			return nil, err
		}
		data = &colrFloatData{colrBase: base, off: m.DataOff}
	case Int:
		if err := check(m.DataOff, rows*8, "int data"); err != nil {
			return nil, err
		}
		data = &colrIntData{colrBase: base, off: m.DataOff}
	case Bool:
		if err := check(m.DataOff, rows, "bool data"); err != nil {
			return nil, err
		}
		data = &colrBoolData{colrBase: base, off: m.DataOff}
	case String:
		if err := check(m.DataOff, rows*4, "string codes"); err != nil {
			return nil, err
		}
		dict, err := decodeDict(buf, m, limit)
		if err != nil {
			return nil, err
		}
		// Validate every valid row's code against the dictionary now, so
		// corruption surfaces as a decode error here instead of a panic or
		// a silent empty string at first access.
		for i := 0; i < rows; i++ {
			if !base.valid(i) {
				continue
			}
			if code := binary.LittleEndian.Uint32(buf[m.DataOff+4*i:]); int(code) >= len(dict) {
				return nil, fmt.Errorf("row %d dictionary code %d out of range (%d entries)", i, code, len(dict))
			}
		}
		data = &colrStringData{colrBase: base, dict: dict, codesOff: m.DataOff}
	}

	stats := &ColStats{
		Distinct: m.Distinct,
		Nulls:    m.Nulls,
		Min:      m.Min,
		Max:      m.Max,
		HasRange: m.HasRange,
	}
	if m.SketchK > 0 {
		mins := make([]uint64, m.SketchK)
		for j := range mins {
			mins[j] = binary.LittleEndian.Uint64(buf[m.SketchOff+8*j:])
		}
		stats.Sketch = &sketch.MinHash{Mins: mins, Cardinality: m.Distinct}
	}
	return &Column{name: m.Name, kind: kind, data: data, stats: stats, memo: new(colMemo)}, nil
}

// decodeDict materialises a string column's sorted dictionary. The entries
// are copied out of the buffer: Go strings must not alias a mapping whose
// lifetime the garbage collector cannot see.
func decodeDict(buf []byte, m colrColMeta, limit int) ([]string, error) {
	if m.DictLen == 0 {
		return nil, nil
	}
	// Each entry costs at least its one-byte length prefix, so DictLen can
	// never exceed the bytes between DictOff and the footer; checking that
	// first also bounds the allocation below against a corrupt footer.
	if m.DictLen < 0 || m.DictOff < colrHeaderSize || m.DictOff > limit || m.DictLen > limit-m.DictOff {
		return nil, fmt.Errorf("dictionary (%d entries at %d) out of bounds", m.DictLen, m.DictOff)
	}
	dict := make([]string, 0, m.DictLen)
	off := m.DictOff
	for i := 0; i < m.DictLen; i++ {
		if off >= limit {
			return nil, fmt.Errorf("dictionary entry %d out of bounds", i)
		}
		l, n := binary.Uvarint(buf[off:limit])
		// l stays uint64 until it is proven to fit the remaining bytes —
		// a huge length must not wrap negative through int conversion and
		// slip past the bound.
		if n <= 0 || l > uint64(limit-off-n) {
			return nil, fmt.Errorf("dictionary entry %d corrupt", i)
		}
		off += n
		dict = append(dict, string(buf[off:off+int(l)]))
		off += int(l)
	}
	return dict, nil
}

// ReadColumnarFile opens a columnar table file; like ReadCSVFile, the table
// name is the base filename without its extension. On platforms with mmap
// the column data is served from the mapping without being read up front;
// elsewhere the file is read into memory. The mapping is never unmapped —
// lake tables live for the process, and a dropped table's mapping is
// reclaimed when the kernel evicts its pages.
func ReadColumnarFile(path string) (*Frame, error) {
	buf, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	base := filepath.Base(path)
	name := strings.TrimSuffix(base, filepath.Ext(base))
	return DecodeColumnar(name, buf)
}

// WriteColumnarFile writes the frame to path atomically: the bytes land in
// a temp file in the same directory which is fsynced and renamed over
// path, so a reader never observes a half-written table.
func WriteColumnarFile(f *Frame, path string) error {
	b, err := EncodeColumnar(f)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".afc-tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// Writer is the append/compact write path for a columnar lake directory:
// Put writes a table file atomically (tmp+rename), Append merges new rows
// into an existing table and rewrites it compactly (dictionaries rebuilt,
// stats and sketches recomputed). One Writer per directory; concurrent
// Puts of different tables are safe, concurrent writes of the same table
// race on the final rename (last writer wins, each version complete).
type Writer struct {
	dir string
}

// NewWriter returns a Writer that writes table files into dir.
func NewWriter(dir string) *Writer { return &Writer{dir: dir} }

// Path returns the file path Put would write for a table name.
func (w *Writer) Path(table string) string { return filepath.Join(w.dir, table+FormatExt) }

// Put writes the frame as <dir>/<name>.afc atomically and returns the
// path.
func (w *Writer) Put(f *Frame) (string, error) {
	path := w.Path(f.Name())
	if err := WriteColumnarFile(f, path); err != nil {
		return "", err
	}
	return path, nil
}

// Append merges the frame's rows onto the existing table of the same name
// (matching schemas column-for-column) and rewrites the file compactly; if
// no file exists yet it behaves like Put.
func (w *Writer) Append(f *Frame) (string, error) {
	path := w.Path(f.Name())
	// The old table is read with os.ReadFile, not the mmap fast path: the
	// decoded frame only lives until the merge below materialises every
	// cell, and ReadColumnarFile's mappings are process-lifetime — going
	// through it here would leak a whole-file mapping per Append.
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return w.Put(f)
		}
		return "", err
	}
	base, err := DecodeColumnar(f.Name(), raw)
	if err != nil {
		return "", err
	}
	merged, err := appendRows(base, f)
	if err != nil {
		return "", err
	}
	if err := WriteColumnarFile(merged, path); err != nil {
		return "", err
	}
	return path, nil
}

// appendRows concatenates b's rows under a's schema. Column names, order
// and kinds must match exactly — the append path is for homogeneous table
// growth, not schema evolution.
func appendRows(a, b *Frame) (*Frame, error) {
	if a.NumCols() != b.NumCols() {
		return nil, fmt.Errorf("frame: append %q: %d columns onto %d", a.Name(), b.NumCols(), a.NumCols())
	}
	out := New(a.Name())
	an, bn := a.NumRows(), b.NumRows()
	for ci := 0; ci < a.NumCols(); ci++ {
		ca, cb := a.ColumnAt(ci), b.ColumnAt(ci)
		if ca.Name() != cb.Name() || ca.Kind() != cb.Kind() {
			return nil, fmt.Errorf("frame: append %q: column %d is %s %s, existing table has %s %s",
				a.Name(), ci, cb.Kind(), cb.Name(), ca.Kind(), ca.Name())
		}
		d := &memData{}
		if !ca.data.allValid() || !cb.data.allValid() {
			d.validB = make([]bool, an+bn)
			for i := 0; i < an; i++ {
				d.validB[i] = ca.IsValid(i)
			}
			for i := 0; i < bn; i++ {
				d.validB[an+i] = cb.IsValid(i)
			}
		}
		switch ca.Kind() {
		case Float:
			d.floats = make([]float64, an+bn)
			for i := 0; i < an; i++ {
				d.floats[i] = ca.Float(i)
			}
			for i := 0; i < bn; i++ {
				d.floats[an+i] = cb.Float(i)
			}
		case Int:
			d.ints = make([]int64, an+bn)
			for i := 0; i < an; i++ {
				d.ints[i] = ca.Int(i)
			}
			for i := 0; i < bn; i++ {
				d.ints[an+i] = cb.Int(i)
			}
		case String:
			d.strs = make([]string, an+bn)
			for i := 0; i < an; i++ {
				d.strs[i] = ca.Str(i)
			}
			for i := 0; i < bn; i++ {
				d.strs[an+i] = cb.Str(i)
			}
		case Bool:
			d.bools = make([]bool, an+bn)
			for i := 0; i < an; i++ {
				d.bools[i] = ca.Bool(i)
			}
			for i := 0; i < bn; i++ {
				d.bools[an+i] = cb.Bool(i)
			}
		}
		if err := out.AddColumn(newMemColumn(ca.Name(), ca.Kind(), d)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
