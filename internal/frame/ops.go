package frame

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Filter returns the rows for which keep returns true. keep receives the
// row index and reads cells through the frame's columns.
func (f *Frame) Filter(keep func(row int) bool) *Frame {
	var idx []int
	for i, n := 0, f.NumRows(); i < n; i++ {
		if keep(i) {
			idx = append(idx, i)
		}
	}
	return f.Take(idx)
}

// SortBy returns a copy of the frame sorted by the named column,
// ascending (descending when desc). Nulls sort last; string columns sort
// lexicographically, numeric columns numerically. The sort is stable.
func (f *Frame) SortBy(col string, desc bool) (*Frame, error) {
	c := f.Column(col)
	if c == nil {
		return nil, fmt.Errorf("frame %q: no column %q to sort by", f.name, col)
	}
	idx := make([]int, f.NumRows())
	for i := range idx {
		idx[i] = i
	}
	less := rowLess(c)
	sort.SliceStable(idx, func(a, b int) bool {
		ra, rb := idx[a], idx[b]
		// Nulls sort last regardless of direction.
		av, bv := c.IsValid(ra), c.IsValid(rb)
		switch {
		case !av && !bv:
			return false
		case !av:
			return false
		case !bv:
			return true
		}
		if desc {
			return less(rb, ra)
		}
		return less(ra, rb)
	})
	return f.Take(idx), nil
}

// rowLess builds a null-last comparator over a column.
func rowLess(c *Column) func(a, b int) bool {
	return func(a, b int) bool {
		av, bv := c.IsValid(a), c.IsValid(b)
		switch {
		case !av && !bv:
			return false
		case !av:
			return false // nulls last
		case !bv:
			return true
		}
		switch c.Kind() {
		case String:
			return c.Str(a) < c.Str(b)
		case Bool:
			return !c.Bool(a) && c.Bool(b)
		case Int:
			return c.Int(a) < c.Int(b)
		default:
			return c.Float(a) < c.Float(b)
		}
	}
}

// Agg names an aggregate for GroupBy.
type Agg uint8

// Supported group-by aggregates.
const (
	AggCount Agg = iota // row count per group
	AggSum              // sum of a numeric column
	AggMean             // mean of a numeric column
	AggMin              // minimum of a numeric column
	AggMax              // maximum of a numeric column
)

// AggSpec requests one aggregated output column.
type AggSpec struct {
	// Col is the input column; ignored for AggCount.
	Col string
	// Op is the aggregate.
	Op Agg
	// As names the output column; defaults to op_col.
	As string
}

func (a AggSpec) outName() string {
	if a.As != "" {
		return a.As
	}
	op := map[Agg]string{AggCount: "count", AggSum: "sum", AggMean: "mean", AggMin: "min", AggMax: "max"}[a.Op]
	if a.Col == "" {
		return op
	}
	return op + "_" + a.Col
}

// GroupBy groups rows by the key column's join key and computes the
// requested aggregates per group. The result has one row per distinct key
// (nulls grouped under an empty key are skipped), ordered by key.
func (f *Frame) GroupBy(key string, specs ...AggSpec) (*Frame, error) {
	kc := f.Column(key)
	if kc == nil {
		return nil, fmt.Errorf("frame %q: no group key %q", f.name, key)
	}
	groups := make(map[string][]int)
	for i, n := 0, kc.Len(); i < n; i++ {
		if k, ok := kc.Key(i); ok {
			groups[k] = append(groups[k], i)
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	out := New(f.name + "_by_" + key)
	keyVals := make([]string, len(keys))
	copy(keyVals, keys)
	if err := out.AddColumn(NewStringColumn(key, keyVals, nil)); err != nil {
		return nil, err
	}
	for _, spec := range specs {
		var vc *Column
		if spec.Op != AggCount {
			vc = f.Column(spec.Col)
			if vc == nil {
				return nil, fmt.Errorf("frame %q: no aggregate column %q", f.name, spec.Col)
			}
		}
		vals := make([]float64, len(keys))
		for gi, k := range keys {
			vals[gi] = aggregate(vc, groups[k], spec.Op)
		}
		if err := out.AddColumn(NewFloatColumn(spec.outName(), vals, nil)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func aggregate(c *Column, rows []int, op Agg) float64 {
	if op == AggCount {
		return float64(len(rows))
	}
	var sum, mn, mx float64
	mn, mx = math.Inf(1), math.Inf(-1)
	n := 0
	fl := c.Floats()
	for _, r := range rows {
		v := fl[r]
		if math.IsNaN(v) {
			continue
		}
		sum += v
		mn = math.Min(mn, v)
		mx = math.Max(mx, v)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	switch op {
	case AggSum:
		return sum
	case AggMean:
		return sum / float64(n)
	case AggMin:
		return mn
	default:
		return mx
	}
}

// ColumnSummary describes one column for Describe.
type ColumnSummary struct {
	Name      string
	Kind      Kind
	Nulls     int
	NullRatio float64
	Distinct  int
	// Mean/Std/Min/Max are NaN for string columns.
	Mean, Std, Min, Max float64
}

// Describe returns per-column summary statistics, the dataframe
// "describe" equivalent used by examples and debugging.
func (f *Frame) Describe() []ColumnSummary {
	out := make([]ColumnSummary, 0, f.NumCols())
	for _, c := range f.cols {
		s := ColumnSummary{
			Name:      c.Name(),
			Kind:      c.Kind(),
			Nulls:     c.NullCount(),
			NullRatio: c.NullRatio(),
			Distinct:  c.DistinctCount(),
			Mean:      math.NaN(), Std: math.NaN(), Min: math.NaN(), Max: math.NaN(),
		}
		if c.Kind() != String {
			vals := c.Floats()
			s.Mean = statMean(vals)
			s.Std = math.Sqrt(statVar(vals, s.Mean))
			s.Min, s.Max = statMinMax(vals)
		}
		out = append(out, s)
	}
	return out
}

// DescribeString renders Describe as an aligned text table.
func (f *Frame) DescribeString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-7s %6s %8s %10s %10s %10s %10s\n",
		"column", "kind", "nulls", "distinct", "mean", "std", "min", "max")
	for _, s := range f.Describe() {
		fmt.Fprintf(&b, "%-24s %-7s %6d %8d %10.4g %10.4g %10.4g %10.4g\n",
			s.Name, s.Kind, s.Nulls, s.Distinct, s.Mean, s.Std, s.Min, s.Max)
	}
	return b.String()
}

func statMean(vals []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vals {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

func statVar(vals []float64, mean float64) float64 {
	if math.IsNaN(mean) {
		return math.NaN()
	}
	sum, n := 0.0, 0
	for _, v := range vals {
		if !math.IsNaN(v) {
			d := v - mean
			sum += d * d
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

func statMinMax(vals []float64) (float64, float64) {
	mn, mx := math.Inf(1), math.Inf(-1)
	n := 0
	for _, v := range vals {
		if !math.IsNaN(v) {
			mn = math.Min(mn, v)
			mx = math.Max(mx, v)
			n++
		}
	}
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	return mn, mx
}
