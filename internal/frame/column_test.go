package frame

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestColumnBasics(t *testing.T) {
	c := NewFloatColumn("x", []float64{1, 2, 3}, []bool{true, false, true})
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if c.Kind() != Float {
		t.Fatalf("Kind = %v, want Float", c.Kind())
	}
	if c.IsValid(1) {
		t.Fatal("cell 1 should be null")
	}
	if c.NullCount() != 1 {
		t.Fatalf("NullCount = %d, want 1", c.NullCount())
	}
	if got := c.NullRatio(); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("NullRatio = %v, want 1/3", got)
	}
	if v := c.Value(1); v != nil {
		t.Fatalf("Value(1) = %v, want nil", v)
	}
	if v := c.Value(0); v != 1.0 {
		t.Fatalf("Value(0) = %v, want 1", v)
	}
}

func TestColumnKindString(t *testing.T) {
	cases := map[Kind]string{Float: "float", Int: "int", String: "string", Bool: "bool"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if !Float.IsNumeric() || !Int.IsNumeric() || !Bool.IsNumeric() {
		t.Error("float/int/bool should be numeric")
	}
	if String.IsNumeric() {
		t.Error("string should not be numeric")
	}
}

func TestColumnTake(t *testing.T) {
	c := NewIntColumn("id", []int64{10, 20, 30, 40}, nil)
	got := c.Take([]int{3, 0, -1, 1})
	if got.Len() != 4 {
		t.Fatalf("Len = %d, want 4", got.Len())
	}
	if got.Int(0) != 40 || got.Int(1) != 10 || got.Int(3) != 20 {
		t.Fatalf("unexpected values: %v %v %v", got.Int(0), got.Int(1), got.Int(3))
	}
	if got.IsValid(2) {
		t.Fatal("index -1 must produce a null cell")
	}
	if got.NullCount() != 1 {
		t.Fatalf("NullCount = %d, want 1", got.NullCount())
	}
}

func TestColumnTakePreservesNulls(t *testing.T) {
	c := NewStringColumn("s", []string{"a", "b", "c"}, []bool{true, false, true})
	got := c.Take([]int{1, 2})
	if got.IsValid(0) {
		t.Fatal("null must survive Take")
	}
	if !got.IsValid(1) || got.Str(1) != "c" {
		t.Fatal("valid cell must survive Take")
	}
}

func TestColumnKeyIntFloatCompat(t *testing.T) {
	ic := NewIntColumn("k", []int64{7}, nil)
	fc := NewFloatColumn("k", []float64{7.0}, nil)
	ik, _ := ic.Key(0)
	fk, _ := fc.Key(0)
	if ik != fk {
		t.Fatalf("int key %q != float key %q; integral values must join", ik, fk)
	}
	frac := NewFloatColumn("k", []float64{7.5}, nil)
	fk2, _ := frac.Key(0)
	if fk2 == ik {
		t.Fatal("7.5 must not share a key with 7")
	}
}

func TestColumnKeyNull(t *testing.T) {
	c := NewFloatColumn("x", []float64{1}, []bool{false})
	if _, ok := c.Key(0); ok {
		t.Fatal("null cell must not produce a key")
	}
}

func TestColumnFloatsEncoding(t *testing.T) {
	s := NewStringColumn("cat", []string{"b", "a", "b", "c"}, []bool{true, true, true, false})
	got := s.Floats()
	// sorted distinct: a=0, b=1, c=2 (c is null here so absent from codes is fine)
	if got[0] != 1 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("label encoding wrong: %v", got)
	}
	if !math.IsNaN(got[3]) {
		t.Fatalf("null must encode to NaN, got %v", got[3])
	}
	b := NewBoolColumn("flag", []bool{true, false}, nil)
	bf := b.Floats()
	if bf[0] != 1 || bf[1] != 0 {
		t.Fatalf("bool encoding wrong: %v", bf)
	}
}

func TestColumnMode(t *testing.T) {
	c := NewIntColumn("x", []int64{3, 1, 3, 2, 3, 1}, nil)
	m, ok := c.Mode()
	if !ok || m != "3" {
		t.Fatalf("Mode = %q/%v, want 3/true", m, ok)
	}
	empty := NewIntColumn("x", []int64{1}, []bool{false})
	if _, ok := empty.Mode(); ok {
		t.Fatal("all-null column must have no mode")
	}
}

func TestColumnModeTieBreak(t *testing.T) {
	c := NewStringColumn("x", []string{"b", "a"}, nil)
	m, _ := c.Mode()
	if m != "a" {
		t.Fatalf("tie must break lexicographically, got %q", m)
	}
}

func TestColumnImputed(t *testing.T) {
	c := NewFloatColumn("x", []float64{5, 0, 5, 0}, []bool{true, false, true, false})
	got := c.Imputed()
	if got.NullCount() != 0 {
		t.Fatalf("imputed column still has %d nulls", got.NullCount())
	}
	if got.Float(1) != 5 || got.Float(3) != 5 {
		t.Fatalf("nulls must become the mode: %v", got.Floats())
	}
	// original untouched
	if c.NullCount() != 2 {
		t.Fatal("Imputed must not mutate the receiver")
	}
	s := NewStringColumn("s", []string{"x", "", "x"}, []bool{true, false, true})
	si := s.Imputed()
	if si.Str(1) != "x" {
		t.Fatalf("string imputation wrong: %q", si.Str(1))
	}
	b := NewBoolColumn("b", []bool{true, false, true}, []bool{true, false, true})
	bi := b.Imputed()
	if bi.Bool(1) != true {
		t.Fatal("bool imputation must fill mode (true)")
	}
	i := NewIntColumn("i", []int64{2, 0, 2}, []bool{true, false, true})
	ii := i.Imputed()
	if ii.Int(1) != 2 {
		t.Fatal("int imputation must fill mode (2)")
	}
}

func TestColumnImputedNoNullsReturnsSame(t *testing.T) {
	c := NewIntColumn("x", []int64{1, 2}, nil)
	if c.Imputed() != c {
		t.Fatal("no-null column should be returned unchanged")
	}
}

func TestColumnDistinctAndValueSet(t *testing.T) {
	c := NewStringColumn("x", []string{"a", "b", "a", ""}, []bool{true, true, true, false})
	if got := c.DistinctCount(); got != 2 {
		t.Fatalf("DistinctCount = %d, want 2", got)
	}
	set := c.ValueSet()
	if len(set) != 2 {
		t.Fatalf("ValueSet size = %d, want 2", len(set))
	}
	if _, ok := set["a"]; !ok {
		t.Fatal("value set must contain 'a'")
	}
}

func TestColumnEqual(t *testing.T) {
	a := NewFloatColumn("x", []float64{1, math.NaN()}, nil)
	b := NewFloatColumn("x", []float64{1, math.NaN()}, nil)
	if !a.Equal(b) {
		t.Fatal("NaN cells must compare equal")
	}
	c := NewFloatColumn("x", []float64{1, 2}, nil)
	if a.Equal(c) {
		t.Fatal("different values must not be equal")
	}
	d := NewFloatColumn("y", []float64{1, math.NaN()}, nil)
	if a.Equal(d) {
		t.Fatal("different names must not be equal")
	}
}

func TestColumnWithName(t *testing.T) {
	a := NewIntColumn("x", []int64{1}, nil)
	b := a.WithName("y")
	if b.Name() != "y" || a.Name() != "x" {
		t.Fatal("WithName must rename the copy only")
	}
	if b.Int(0) != 1 {
		t.Fatal("WithName must share data")
	}
}

// Property: Take with identity indices is equality.
func TestColumnTakeIdentityProperty(t *testing.T) {
	f := func(vals []float64) bool {
		valid := make([]bool, len(vals))
		for i := range valid {
			valid[i] = i%3 != 0
		}
		c := NewFloatColumn("x", vals, valid)
		idx := make([]int, len(vals))
		for i := range idx {
			idx[i] = i
		}
		return c.Take(idx).Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: imputation never increases distinct count and removes all nulls.
func TestColumnImputedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		valid := make([]bool, len(vals))
		anyValid := false
		for i := range valid {
			valid[i] = rng.Intn(2) == 0
			anyValid = anyValid || valid[i]
		}
		if !anyValid {
			valid[0] = true
		}
		c := NewIntColumn("x", vals, valid)
		imp := c.Imputed()
		return imp.NullCount() == 0 && imp.DistinctCount() <= c.DistinctCount()+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
