//go:build unix

package frame

import (
	"os"
	"syscall"
)

// mapFile maps path read-only and returns the mapping. The mapping is
// intentionally never unmapped: the zero-copy columns returned by
// DecodeColumnar hold references into it for the life of the process (see
// ReadColumnarFile). Empty files fall back to a heap buffer because mmap
// rejects zero-length mappings.
func mapFile(path string) ([]byte, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	st, err := fh.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return []byte{}, nil
	}
	b, err := syscall.Mmap(int(fh.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support (some network mounts) land
		// here; reading the file is slower but correct.
		return os.ReadFile(path)
	}
	return b, nil
}
