package frame

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const sampleCSV = `id,name,score,active
1,alice,3.5,true
2,bob,,false
3,,4.25,true
`

func TestReadCSVInference(t *testing.T) {
	f, err := ReadCSV("t", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 3 || f.NumCols() != 4 {
		t.Fatalf("shape %dx%d", f.NumRows(), f.NumCols())
	}
	if f.Column("id").Kind() != Int {
		t.Fatalf("id kind = %v, want Int", f.Column("id").Kind())
	}
	if f.Column("name").Kind() != String {
		t.Fatalf("name kind = %v, want String", f.Column("name").Kind())
	}
	if f.Column("score").Kind() != Float {
		t.Fatalf("score kind = %v, want Float", f.Column("score").Kind())
	}
	if f.Column("active").Kind() != Bool {
		t.Fatalf("active kind = %v, want Bool", f.Column("active").Kind())
	}
	if f.Column("score").IsValid(1) {
		t.Fatal("empty cell must be null")
	}
	if f.Column("name").IsValid(2) {
		t.Fatal("empty string cell must be null")
	}
	if f.Column("score").Float(2) != 4.25 {
		t.Fatal("float parse wrong")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	f, err := ReadCSV("t", strings.NewReader(sampleCSV))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadCSV("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(g) {
		t.Fatalf("round trip changed the frame:\n%v\nvs\n%v", f, g)
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	f, _ := ReadCSV("sample", strings.NewReader(sampleCSV))
	path := filepath.Join(t.TempDir(), "sub", "sample.csv")
	if err := f.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	g, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Equal(g) {
		t.Fatal("file round trip changed the frame")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("t", strings.NewReader("")); err == nil {
		t.Fatal("empty stream must fail")
	}
	if _, err := ReadCSV("t", strings.NewReader("a,b\n1\n")); err == nil {
		t.Fatal("ragged row must fail")
	}
}

func TestReadCSVAllNullColumn(t *testing.T) {
	f, err := ReadCSV("t", strings.NewReader("a,b\n,1\n,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if f.Column("a").NullCount() != 2 {
		t.Fatal("all-empty column must be all null")
	}
	// All-empty column infers as Int (narrowest), which is acceptable.
	if f.Column("b").Kind() != Int {
		t.Fatal("b must infer Int")
	}
}

func TestIsNullTokenVariants(t *testing.T) {
	for _, s := range []string{"", "NA", "na", "nA", "N/A", "n/a", "null", "NULL", "Null"} {
		if !IsNullToken(s) {
			t.Errorf("%q must be a null token", s)
		}
	}
	// NaN is a representable float value, not a missing-value marker; the
	// rest are plausible real data that must survive ingestion.
	for _, s := range []string{"NaN", "nan", "None", "none", "NAs", "0", " ", "N\\A"} {
		if IsNullToken(s) {
			t.Errorf("%q must not be a null token", s)
		}
	}
}

func TestInferColumnMixedIntFloat(t *testing.T) {
	c := inferColumn("x", []string{"1", "2.5", "3"})
	if c.Kind() != Float {
		t.Fatalf("mixed int/float must infer Float, got %v", c.Kind())
	}
	c2 := inferColumn("x", []string{"1", "x"})
	if c2.Kind() != String {
		t.Fatalf("unparseable must infer String, got %v", c2.Kind())
	}
}
