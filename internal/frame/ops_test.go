package frame

import (
	"math"
	"strings"
	"testing"
)

func TestFilter(t *testing.T) {
	f := sampleFrame(t)
	got := f.Filter(func(row int) bool { return f.Column("id").Int(row)%2 == 0 })
	if got.NumRows() != 3 {
		t.Fatalf("filtered rows = %d, want 3", got.NumRows())
	}
	if got.Column("id").Int(0) != 2 {
		t.Fatal("filter order must be preserved")
	}
	empty := f.Filter(func(int) bool { return false })
	if empty.NumRows() != 0 {
		t.Fatal("empty filter keeps nothing")
	}
}

func TestSortBy(t *testing.T) {
	f := sampleFrame(t)
	asc, err := f.SortBy("income", false)
	if err != nil {
		t.Fatal(err)
	}
	inc := asc.Column("income")
	// Valid values ascending, null last.
	prev := math.Inf(-1)
	for i := 0; i < inc.Len()-1; i++ {
		if !inc.IsValid(i) {
			t.Fatalf("null must sort last, found at %d", i)
		}
		if inc.Float(i) < prev {
			t.Fatal("ascending order violated")
		}
		prev = inc.Float(i)
	}
	if inc.IsValid(inc.Len() - 1) {
		t.Fatal("last row must be the null")
	}
	desc, _ := f.SortBy("income", true)
	if desc.Column("income").Float(0) != 60 {
		t.Fatal("descending order wrong")
	}
	if _, err := f.SortBy("ghost", false); err == nil {
		t.Fatal("missing sort column must fail")
	}
	// String sort.
	byCity, _ := f.SortBy("city", false)
	if byCity.Column("city").Str(0) != "delft" {
		t.Fatal("string sort wrong")
	}
}

func TestGroupBy(t *testing.T) {
	f := sampleFrame(t)
	g, err := f.GroupBy("city",
		AggSpec{Op: AggCount},
		AggSpec{Col: "income", Op: AggMean},
		AggSpec{Col: "income", Op: AggSum, As: "total"},
		AggSpec{Col: "income", Op: AggMin},
		AggSpec{Col: "income", Op: AggMax},
	)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != 3 {
		t.Fatalf("3 cities expected, got %d", g.NumRows())
	}
	// Sorted keys: delft, haag, leiden.
	if g.Column("city").Str(0) != "delft" {
		t.Fatalf("keys must be sorted: %v", g.Column("city").Str(0))
	}
	if g.Column("count").Float(0) != 3 {
		t.Fatalf("delft count = %v", g.Column("count").Float(0))
	}
	// delft incomes: 10, 20, 60 -> mean 30, total 90.
	if g.Column("mean_income").Float(0) != 30 {
		t.Fatalf("delft mean = %v", g.Column("mean_income").Float(0))
	}
	if g.Column("total").Float(0) != 90 {
		t.Fatalf("custom name total = %v", g.Column("total").Float(0))
	}
	if g.Column("min_income").Float(0) != 10 || g.Column("max_income").Float(0) != 60 {
		t.Fatal("min/max wrong")
	}
	// haag has only the null income row -> NaN aggregates.
	if !math.IsNaN(g.Column("mean_income").Float(1)) {
		t.Fatalf("all-null group mean must be NaN, got %v", g.Column("mean_income").Float(1))
	}
	if _, err := f.GroupBy("ghost"); err == nil {
		t.Fatal("missing key must fail")
	}
	if _, err := f.GroupBy("city", AggSpec{Col: "ghost", Op: AggMean}); err == nil {
		t.Fatal("missing aggregate column must fail")
	}
}

func TestDescribe(t *testing.T) {
	f := sampleFrame(t)
	ds := f.Describe()
	if len(ds) != 4 {
		t.Fatalf("4 summaries, got %d", len(ds))
	}
	byName := map[string]ColumnSummary{}
	for _, s := range ds {
		byName[s.Name] = s
	}
	inc := byName["income"]
	if inc.Nulls != 1 || inc.Distinct != 5 {
		t.Fatalf("income summary wrong: %+v", inc)
	}
	if inc.Min != 10 || inc.Max != 60 {
		t.Fatalf("income min/max: %+v", inc)
	}
	city := byName["city"]
	if !math.IsNaN(city.Mean) {
		t.Fatal("string mean must be NaN")
	}
	if city.Distinct != 3 {
		t.Fatalf("city distinct = %d", city.Distinct)
	}
	str := f.DescribeString()
	if !strings.Contains(str, "income") || !strings.Contains(str, "distinct") {
		t.Fatal("DescribeString rendering broken")
	}
}

func TestAggSpecNames(t *testing.T) {
	if (AggSpec{Op: AggCount}).outName() != "count" {
		t.Fatal("count default name")
	}
	if (AggSpec{Col: "x", Op: AggMean}).outName() != "mean_x" {
		t.Fatal("mean default name")
	}
	if (AggSpec{Col: "x", Op: AggMean, As: "avg"}).outName() != "avg" {
		t.Fatal("custom name")
	}
}

func TestSortByBoolAndInt(t *testing.T) {
	f := New("t")
	mustAdd(t, f, NewBoolColumn("b", []bool{true, false, true}, nil))
	mustAdd(t, f, NewIntColumn("i", []int64{3, 1, 2}, nil))
	byB, err := f.SortBy("b", false)
	if err != nil {
		t.Fatal(err)
	}
	if byB.Column("b").Bool(0) != false {
		t.Fatal("false sorts before true")
	}
	byI, _ := f.SortBy("i", false)
	if byI.Column("i").Int(0) != 1 || byI.Column("i").Int(2) != 3 {
		t.Fatal("int sort wrong")
	}
}

func TestSortByDescNullsLast(t *testing.T) {
	f := sampleFrame(t)
	desc, err := f.SortBy("income", true)
	if err != nil {
		t.Fatal(err)
	}
	inc := desc.Column("income")
	if inc.IsValid(inc.Len() - 1) {
		t.Fatal("null must sort last in descending order too")
	}
}
