package frame

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autofeat/internal/sketch"
)

// mixedFrame builds a table exercising every kind and null placement.
func mixedFrame(name string) *Frame {
	f := New(name)
	f.AddColumn(NewIntColumn("id", []int64{1, 2, 3, 4, 5}, nil))
	f.AddColumn(NewFloatColumn("score", []float64{0.5, math.NaN(), -3.25, 1e18, 0},
		[]bool{true, true, true, true, false}))
	f.AddColumn(NewStringColumn("city", []string{"oslo", "", "lima", "oslo", "quito"},
		[]bool{true, false, true, true, true}))
	f.AddColumn(NewBoolColumn("flag", []bool{true, false, true, false, true},
		[]bool{true, true, false, true, true}))
	return f
}

func TestColumnarRoundTrip(t *testing.T) {
	src := mixedFrame("trip")
	b, err := EncodeColumnar(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeColumnar("trip", b)
	if err != nil {
		t.Fatal(err)
	}
	if !src.Equal(got) {
		t.Fatal("decoded frame differs from source")
	}
	// Cell-by-cell including null positions (Equal also checks them, but
	// the bitmap bits are the round-trip's riskiest part — assert
	// directly).
	for ci := 0; ci < src.NumCols(); ci++ {
		cs, cg := src.ColumnAt(ci), got.ColumnAt(ci)
		for i := 0; i < cs.Len(); i++ {
			if cs.IsNull(i) != cg.IsNull(i) {
				t.Fatalf("col %q row %d: null bit differs", cs.Name(), i)
			}
			ks, oks := cs.Key(i)
			kg, okg := cg.Key(i)
			if ks != kg || oks != okg {
				t.Fatalf("col %q row %d: key %q/%v vs %q/%v", cs.Name(), i, ks, oks, kg, okg)
			}
		}
	}
}

// TestColumnarStatsMatchRecomputation pins the tentpole contract: the
// persisted footer stats (distinct count, sketch, range) must be exactly
// what a fresh scan would produce, so discovery can serve from them
// without validation.
func TestColumnarStatsMatchRecomputation(t *testing.T) {
	src := mixedFrame("stats")
	b, err := EncodeColumnar(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeColumnar("stats", b)
	if err != nil {
		t.Fatal(err)
	}
	for ci := 0; ci < src.NumCols(); ci++ {
		cs, cg := src.ColumnAt(ci), got.ColumnAt(ci)
		st := cg.Stats()
		if st == nil {
			t.Fatalf("col %q: no persisted stats", cg.Name())
		}
		if st.Distinct != cs.DistinctCount() {
			t.Errorf("col %q: persisted distinct %d, recomputed %d", cg.Name(), st.Distinct, cs.DistinctCount())
		}
		if st.Nulls != cs.NullCount() {
			t.Errorf("col %q: persisted nulls %d, recomputed %d", cg.Name(), st.Nulls, cs.NullCount())
		}
		if st.Sketch == nil {
			t.Fatalf("col %q: no persisted sketch", cg.Name())
		}
		// Recompute the signature the way discovery.Sketch does and
		// require bit-identity.
		fresh := sketch.New(sketch.DefaultSize)
		seen := make(map[string]struct{})
		for i := 0; i < cs.Len(); i++ {
			if k, ok := cs.Key(i); ok {
				if _, dup := seen[k]; !dup {
					seen[k] = struct{}{}
					fresh.AddHash(sketch.Hash64(k))
				}
			}
		}
		for j := range fresh.Mins {
			if st.Sketch.Mins[j] != fresh.Mins[j] {
				t.Fatalf("col %q: persisted sketch slot %d differs from fresh computation", cg.Name(), j)
			}
		}
		if st.Sketch.Cardinality != len(seen) {
			t.Errorf("col %q: sketch cardinality %d, want %d", cg.Name(), st.Sketch.Cardinality, len(seen))
		}
	}
	// DistinctCount on the columnar column must answer from stats.
	if got.Column("city").DistinctCount() != 3 {
		t.Errorf("columnar DistinctCount = %d, want 3", got.Column("city").DistinctCount())
	}
}

func TestColumnarVersionExactMatch(t *testing.T) {
	b, err := EncodeColumnar(mixedFrame("v"))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), b...)
	bad[len(FormatMagic)] = FormatVersion + 1
	if _, err := DecodeColumnar("v", bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version must be rejected by exact match, got %v", err)
	}
	// A version bump in the trailer alone means a torn write.
	bad2 := append([]byte(nil), b...)
	bad2[len(bad2)-len(FormatMagic)-1] = FormatVersion + 1
	if _, err := DecodeColumnar("v", bad2); err == nil {
		t.Fatal("trailer version mismatch must be rejected")
	}
}

func TestColumnarCorruptInputs(t *testing.T) {
	b, err := EncodeColumnar(mixedFrame("c"))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":      {},
		"short":      b[:8],
		"bad magic":  append([]byte("NOPE"), b[4:]...),
		"truncated":  b[:len(b)-3],
		"footer cut": b[:len(b)-colrTrailerSize],
	}
	for name, buf := range cases {
		if _, err := DecodeColumnar(name, buf); err == nil {
			t.Errorf("%s: corrupt buffer decoded without error", name)
		}
	}
}

// craftColumnar assembles a columnar buffer from raw block bytes and a
// hand-written footer, so tests can express footers no writer would emit.
func craftColumnar(payload []byte, footerJSON string) []byte {
	var b []byte
	b = append(b, FormatMagic...)
	b = append(b, FormatVersion)
	b = append(b, payload...)
	b = append(b, footerJSON...)
	var tr [4]byte
	binary.LittleEndian.PutUint32(tr[:], uint32(len(footerJSON)))
	b = append(b, tr[:]...)
	b = append(b, FormatVersion)
	b = append(b, FormatMagic...)
	return b
}

// TestColumnarMaliciousFooter pins the decoder against hostile footers:
// serve feeds uploaded bytes straight to DecodeColumnar, so every case here
// must return an error — never panic, and never a frame claiming absurd
// shape.
func TestColumnarMaliciousFooter(t *testing.T) {
	hugeLen := make([]byte, binary.MaxVarintLen64)
	hugeLen = hugeLen[:binary.PutUvarint(hugeLen, math.MaxUint64)]
	smallDict := append([]byte{1, 'a'}, 0, 0, 0, 5) // dict ["a"], then code 5 for row 0

	cases := map[string][]byte{
		// rows*8 used to wrap negative and pass the bounds check, yielding
		// a frame reporting 2^61 rows that panics on first iteration.
		"huge row count": craftColumnar(make([]byte, 16),
			`{"rows":2305843009213693952,"columns":[{"name":"x","kind":"int","valid_off":-1,"data_off":5,"sketch_off":5,"sketch_k":0}]}`),
		"negative row count": craftColumnar(make([]byte, 16),
			`{"rows":-1,"columns":[{"name":"x","kind":"int","valid_off":-1,"data_off":5,"sketch_off":5,"sketch_k":0}]}`),
		"negative data off": craftColumnar(make([]byte, 16),
			`{"rows":1,"columns":[{"name":"x","kind":"int","valid_off":-1,"data_off":-8,"sketch_off":5,"sketch_k":0}]}`),
		// A dictionary entry length near 2^64 used to wrap negative through
		// int conversion and panic on the slice expression.
		"huge dict entry length": craftColumnar(hugeLen,
			`{"rows":0,"columns":[{"name":"s","kind":"string","valid_off":-1,"dict_off":5,"dict_len":1,"data_off":5,"sketch_off":5,"sketch_k":0}]}`),
		"negative dict off": craftColumnar(make([]byte, 16),
			`{"rows":0,"columns":[{"name":"s","kind":"string","valid_off":-1,"dict_off":-4,"dict_len":1,"data_off":5,"sketch_off":5,"sketch_k":0}]}`),
		// DictLen far beyond the file must fail before the allocation it
		// sizes, not during entry decoding.
		"huge dict len": craftColumnar(make([]byte, 16),
			`{"rows":0,"columns":[{"name":"s","kind":"string","valid_off":-1,"dict_off":5,"dict_len":1099511627776,"data_off":5,"sketch_off":5,"sketch_k":0}]}`),
		// A valid row whose code exceeds the dictionary must fail the open,
		// not read as "".
		"code out of range": craftColumnar(smallDict,
			`{"rows":1,"columns":[{"name":"s","kind":"string","valid_off":-1,"dict_off":5,"dict_len":1,"data_off":7,"sketch_off":5,"sketch_k":0}]}`),
	}
	for name, buf := range cases {
		f, err := DecodeColumnar(name, buf)
		if err == nil {
			t.Errorf("%s: hostile footer decoded without error (frame reports %d rows)", name, f.NumRows())
		}
	}
}

func TestColumnarAllNullStringColumn(t *testing.T) {
	f := New("nulls")
	f.AddColumn(NewStringColumn("s", []string{"", ""}, []bool{false, false}))
	b, err := EncodeColumnar(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeColumnar("nulls", b)
	if err != nil {
		t.Fatal(err)
	}
	c := got.Column("s")
	// The dictionary is empty; reading through Take (which fetches values
	// before validity) must not panic.
	taken := c.Take([]int{1, 0, -1})
	if taken.NullCount() != 3 {
		t.Fatalf("all-null take has %d nulls, want 3", taken.NullCount())
	}
	if c.DistinctCount() != 0 {
		t.Fatalf("all-null distinct = %d", c.DistinctCount())
	}
}

func TestWriterPutAndReadFile(t *testing.T) {
	dir := t.TempDir()
	w := NewWriter(dir)
	src := mixedFrame("tbl")
	path, err := w.Put(src)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "tbl"+FormatExt {
		t.Fatalf("unexpected path %q", path)
	}
	got, err := ReadColumnarFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "tbl" {
		t.Fatalf("table name %q, want tbl (from filename)", got.Name())
	}
	if !src.Equal(got) {
		t.Fatal("file round trip differs")
	}
	// No temp droppings from the atomic write.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".afc-tmp-") {
			t.Fatalf("leftover temp file %q", e.Name())
		}
	}
}

func TestWriterAppendCompacts(t *testing.T) {
	dir := t.TempDir()
	w := NewWriter(dir)
	a := New("t")
	a.AddColumn(NewIntColumn("k", []int64{1, 2}, nil))
	a.AddColumn(NewStringColumn("s", []string{"x", "y"}, nil))
	if _, err := w.Append(a); err != nil { // no file yet: behaves as Put
		t.Fatal(err)
	}
	b := New("t")
	b.AddColumn(NewIntColumn("k", []int64{3}, []bool{false}))
	b.AddColumn(NewStringColumn("s", []string{"z"}, nil))
	if _, err := w.Append(b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadColumnarFile(w.Path("t"))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Fatalf("appended table has %d rows, want 3", got.NumRows())
	}
	k := got.Column("k")
	if !k.IsNull(2) || k.Int(0) != 1 || k.Int(1) != 2 {
		t.Fatal("appended int column wrong")
	}
	s := got.Column("s")
	if s.Str(0) != "x" || s.Str(2) != "z" {
		t.Fatal("appended string column wrong")
	}
	// Stats were recomputed over the merged table (compact rewrite).
	if st := k.Stats(); st == nil || st.Distinct != 2 {
		t.Fatalf("merged stats not recomputed: %+v", k.Stats())
	}

	// Schema drift is rejected.
	c := New("t")
	c.AddColumn(NewFloatColumn("k", []float64{9}, nil))
	c.AddColumn(NewStringColumn("s", []string{"w"}, nil))
	if _, err := w.Append(c); err == nil {
		t.Fatal("kind drift must be rejected")
	}
}

// TestColumnarCSVRoundTripProperty is the pack round-trip property test:
// CSV text → frame → columnar bytes → frame must preserve every cell and
// every null bit, for tables mixing all kinds, null tokens and a BOM.
func TestColumnarCSVRoundTripProperty(t *testing.T) {
	csvText := "\ufeffid,score,city,flag\n" +
		"1,0.5,oslo,true\n" +
		"2,NA,,false\n" +
		"null,2.25,lima,null\n" +
		"4,-1,oslo,true\n"
	f, err := ReadCSV("t", strings.NewReader(csvText))
	if err != nil {
		t.Fatal(err)
	}
	if f.ColumnNames()[0] != "id" {
		t.Fatalf("BOM not stripped: first column %q", f.ColumnNames()[0])
	}
	if got := f.Column("id").NullCount(); got != 1 {
		t.Fatalf("null token \"null\" not null in int column: %d nulls", got)
	}
	if got := f.Column("score").NullCount(); got != 1 {
		t.Fatalf("null token NA not null in float column: %d nulls", got)
	}
	b, err := EncodeColumnar(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeColumnar("t", b)
	if err != nil {
		t.Fatal(err)
	}
	for ci := 0; ci < f.NumCols(); ci++ {
		cs, cg := f.ColumnAt(ci), got.ColumnAt(ci)
		for i := 0; i < cs.Len(); i++ {
			if cs.IsNull(i) != cg.IsNull(i) {
				t.Fatalf("col %q row %d: null bitmap disagrees between CSV and columnar backends", cs.Name(), i)
			}
			if av, gv := cs.At(i), cg.At(i); av != gv {
				t.Fatalf("col %q row %d: %v != %v", cs.Name(), i, av, gv)
			}
		}
	}
}

// TestColumnarViewInterface pins the public view contract both backends
// satisfy.
func TestColumnarViewInterface(t *testing.T) {
	src := mixedFrame("view")
	b, _ := EncodeColumnar(src)
	got, err := DecodeColumnar("view", b)
	if err != nil {
		t.Fatal(err)
	}
	for ci := 0; ci < src.NumCols(); ci++ {
		var mem View = src.ColumnAt(ci)
		var colr View = got.ColumnAt(ci)
		if mem.Len() != colr.Len() || mem.Kind() != colr.Kind() {
			t.Fatal("view shape differs between backends")
		}
		mn, cn := mem.Numeric(), colr.Numeric()
		for i := range mn {
			if mn[i] != cn[i] && !(math.IsNaN(mn[i]) && math.IsNaN(cn[i])) {
				t.Fatalf("col %q Numeric()[%d]: %v vs %v", mem.Name(), i, mn[i], cn[i])
			}
		}
		ms, cs := mem.ValueSet(), colr.ValueSet()
		if len(ms) != len(cs) {
			t.Fatalf("col %q value sets differ", mem.Name())
		}
		for k := range ms {
			if _, ok := cs[k]; !ok {
				t.Fatalf("col %q key %q missing from columnar value set", mem.Name(), k)
			}
		}
	}
}
