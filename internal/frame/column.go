// Package frame implements the columnar table substrate used throughout the
// AutoFeat reproduction. It plays the role the pandas DataFrame plays in the
// original system: typed columns with null bitmaps, CSV ingestion with schema
// inference, group-by, imputation, stratified sampling and numeric encoding.
//
// The package is deliberately self-contained (stdlib only) and deterministic:
// every operation that involves randomness takes an explicit *rand.Rand.
package frame

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
)

// Kind enumerates the physical column types supported by the engine.
type Kind uint8

// Supported column kinds.
const (
	Float  Kind = iota // float64 storage
	Int                // int64 storage
	String             // string storage
	Bool               // bool storage
)

// String returns the human-readable name of the kind.
func (k Kind) String() string {
	switch k {
	case Float:
		return "float"
	case Int:
		return "int"
	case String:
		return "string"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsNumeric reports whether values of this kind can be used directly as
// numeric features without label encoding.
func (k Kind) IsNumeric() bool { return k == Float || k == Int || k == Bool }

// Column is a single named, typed column with an optional null bitmap.
// Exactly one of the backing slices is populated, matching the column kind.
// A nil valid slice means every cell is valid (non-null).
type Column struct {
	name   string
	kind   Kind
	floats []float64
	ints   []int64
	strs   []string
	bools  []bool
	valid  []bool
	// memo caches derived read-only views of the column. It lives behind a
	// pointer so WithName copies share the cache (the backing storage is
	// shared too) and so copying a Column never copies a sync.Once.
	memo *colMemo
}

// colMemo holds lazily computed, immutable derivations of a column.
type colMemo struct {
	valueSetOnce sync.Once
	valueSet     map[string]struct{}
	distinctOnce sync.Once
	distinct     int
}

// NewFloatColumn builds a float column. valid may be nil (all valid).
func NewFloatColumn(name string, values []float64, valid []bool) *Column {
	return &Column{name: name, kind: Float, floats: values, valid: normalizeValid(len(values), valid), memo: new(colMemo)}
}

// NewIntColumn builds an int column. valid may be nil (all valid).
func NewIntColumn(name string, values []int64, valid []bool) *Column {
	return &Column{name: name, kind: Int, ints: values, valid: normalizeValid(len(values), valid), memo: new(colMemo)}
}

// NewStringColumn builds a string column. valid may be nil (all valid).
func NewStringColumn(name string, values []string, valid []bool) *Column {
	return &Column{name: name, kind: String, strs: values, valid: normalizeValid(len(values), valid), memo: new(colMemo)}
}

// NewBoolColumn builds a bool column. valid may be nil (all valid).
func NewBoolColumn(name string, values []bool, valid []bool) *Column {
	return &Column{name: name, kind: Bool, bools: values, valid: normalizeValid(len(values), valid), memo: new(colMemo)}
}

// normalizeValid reconciles a bitmap whose length disagrees with the
// value count — the signature of corrupt input. The bitmap is truncated
// or padded with false (null), so a bad table degrades to extra nulls
// (which data-quality pruning then discards) instead of panicking.
func normalizeValid(n int, valid []bool) []bool {
	if valid == nil || len(valid) == n {
		return valid
	}
	out := make([]bool, n)
	copy(out, valid)
	return out
}

// Name returns the column name.
func (c *Column) Name() string { return c.name }

// Kind returns the physical type of the column.
func (c *Column) Kind() Kind { return c.kind }

// Len returns the number of cells in the column.
func (c *Column) Len() int {
	switch c.kind {
	case Float:
		return len(c.floats)
	case Int:
		return len(c.ints)
	case String:
		return len(c.strs)
	default:
		return len(c.bools)
	}
}

// WithName returns a shallow copy of the column under a new name. The backing
// storage is shared; columns are treated as immutable once inside a Frame.
func (c *Column) WithName(name string) *Column {
	cp := *c
	cp.name = name
	return &cp
}

// IsValid reports whether cell i holds a non-null value.
func (c *Column) IsValid(i int) bool {
	return c.valid == nil || c.valid[i]
}

// NullCount returns the number of null cells.
func (c *Column) NullCount() int {
	if c.valid == nil {
		return 0
	}
	n := 0
	for _, v := range c.valid {
		if !v {
			n++
		}
	}
	return n
}

// NullRatio returns NullCount/Len, or 0 for an empty column.
func (c *Column) NullRatio() float64 {
	n := c.Len()
	if n == 0 {
		return 0
	}
	return float64(c.NullCount()) / float64(n)
}

// Float returns cell i as float64. The column must be of kind Float.
func (c *Column) Float(i int) float64 { return c.floats[i] }

// Int returns cell i as int64. The column must be of kind Int.
func (c *Column) Int(i int) int64 { return c.ints[i] }

// Str returns cell i as string. The column must be of kind String.
func (c *Column) Str(i int) string { return c.strs[i] }

// Bool returns cell i as bool. The column must be of kind Bool.
func (c *Column) Bool(i int) bool { return c.bools[i] }

// Value returns cell i boxed as any, or nil when the cell is null.
func (c *Column) Value(i int) any {
	if !c.IsValid(i) {
		return nil
	}
	switch c.kind {
	case Float:
		return c.floats[i]
	case Int:
		return c.ints[i]
	case String:
		return c.strs[i]
	default:
		return c.bools[i]
	}
}

// FormatCell renders cell i for CSV output. Nulls render as the empty string.
func (c *Column) FormatCell(i int) string {
	if !c.IsValid(i) {
		return ""
	}
	switch c.kind {
	case Float:
		return strconv.FormatFloat(c.floats[i], 'g', -1, 64)
	case Int:
		return strconv.FormatInt(c.ints[i], 10)
	case String:
		return c.strs[i]
	default:
		return strconv.FormatBool(c.bools[i])
	}
}

// Key returns a comparable join key for cell i. Null cells return ("",
// false). Int and Float cells that hold the same integral value produce the
// same key, so an int64 FK can join a float64 PK.
func (c *Column) Key(i int) (string, bool) {
	if !c.IsValid(i) {
		return "", false
	}
	switch c.kind {
	case Float:
		f := c.floats[i]
		if f == math.Trunc(f) && !math.IsInf(f, 0) && math.Abs(f) < 1e15 {
			return strconv.FormatInt(int64(f), 10), true
		}
		return strconv.FormatFloat(f, 'g', -1, 64), true
	case Int:
		return strconv.FormatInt(c.ints[i], 10), true
	case String:
		return c.strs[i], true
	default:
		return strconv.FormatBool(c.bools[i]), true
	}
}

// Take returns a new column containing the cells at the given row indices, in
// order. An index of -1 yields a null cell (used by left joins for unmatched
// rows).
func (c *Column) Take(idx []int) *Column {
	out := &Column{name: c.name, kind: c.kind, memo: new(colMemo)}
	needValid := c.valid != nil
	for _, i := range idx {
		if i < 0 {
			needValid = true
			break
		}
	}
	if needValid {
		out.valid = make([]bool, len(idx))
	}
	switch c.kind {
	case Float:
		out.floats = make([]float64, len(idx))
	case Int:
		out.ints = make([]int64, len(idx))
	case String:
		out.strs = make([]string, len(idx))
	default:
		out.bools = make([]bool, len(idx))
	}
	for j, i := range idx {
		if i < 0 {
			continue // leave zero value, invalid
		}
		switch c.kind {
		case Float:
			out.floats[j] = c.floats[i]
		case Int:
			out.ints[j] = c.ints[i]
		case String:
			out.strs[j] = c.strs[i]
		default:
			out.bools[j] = c.bools[i]
		}
		if out.valid != nil {
			out.valid[j] = c.IsValid(i)
		}
	}
	return out
}

// Floats returns the column as a dense []float64 suitable for statistics.
// Null cells become NaN. String columns are label-encoded: distinct values
// are sorted lexicographically and mapped to 0..k-1, which preserves rank
// semantics for ordinal string data and is stable across calls.
func (c *Column) Floats() []float64 {
	n := c.Len()
	out := make([]float64, n)
	switch c.kind {
	case Float:
		for i := 0; i < n; i++ {
			if c.IsValid(i) {
				out[i] = c.floats[i]
			} else {
				out[i] = math.NaN()
			}
		}
	case Int:
		for i := 0; i < n; i++ {
			if c.IsValid(i) {
				out[i] = float64(c.ints[i])
			} else {
				out[i] = math.NaN()
			}
		}
	case Bool:
		for i := 0; i < n; i++ {
			switch {
			case !c.IsValid(i):
				out[i] = math.NaN()
			case c.bools[i]:
				out[i] = 1
			}
		}
	case String:
		codes := c.stringCodes()
		for i := 0; i < n; i++ {
			if c.IsValid(i) {
				out[i] = float64(codes[i])
			} else {
				out[i] = math.NaN()
			}
		}
	}
	return out
}

// stringCodes label-encodes a string column by sorted distinct value.
func (c *Column) stringCodes() []int {
	distinct := make(map[string]struct{}, 16)
	for i, s := range c.strs {
		if c.IsValid(i) {
			distinct[s] = struct{}{}
		}
	}
	vals := make([]string, 0, len(distinct))
	for s := range distinct {
		vals = append(vals, s)
	}
	sort.Strings(vals)
	code := make(map[string]int, len(vals))
	for i, s := range vals {
		code[s] = i
	}
	out := make([]int, len(c.strs))
	for i, s := range c.strs {
		if c.IsValid(i) {
			out[i] = code[s]
		}
	}
	return out
}

// DistinctCount returns the number of distinct non-null values. The
// count is computed once and memoised through the column's memo (the
// same sync.Once discipline as ValueSet): the discovery matcher probes
// it per column per table pair, so an unmemoised count would rescan the
// column quadratically during DRG construction. Safe for concurrent use.
func (c *Column) DistinctCount() int {
	if c.memo == nil {
		return len(c.buildValueSet())
	}
	c.memo.distinctOnce.Do(func() { c.memo.distinct = len(c.ValueSet()) })
	return c.memo.distinct
}

// Mode returns the most frequent non-null value as a formatted cell string
// and reports whether any non-null value exists. Ties break toward the
// lexicographically smallest key for determinism.
func (c *Column) Mode() (string, bool) {
	counts := make(map[string]int, 16)
	for i, n := 0, c.Len(); i < n; i++ {
		if k, ok := c.Key(i); ok {
			counts[k]++
		}
	}
	if len(counts) == 0 {
		return "", false
	}
	best, bestN := "", -1
	for k, n := range counts {
		if n > bestN || (n == bestN && k < best) {
			best, bestN = k, n
		}
	}
	return best, true
}

// Imputed returns a copy of the column with nulls replaced by the most
// frequent value (the paper's imputation strategy). Columns without nulls
// are returned unchanged. If every cell is null, zeros are imputed.
func (c *Column) Imputed() *Column {
	if c.valid == nil || c.NullCount() == 0 {
		return c
	}
	mode, ok := c.Mode()
	out := &Column{name: c.name, kind: c.kind, memo: new(colMemo)}
	n := c.Len()
	switch c.kind {
	case Float:
		fill := 0.0
		if ok {
			fill, _ = strconv.ParseFloat(mode, 64)
		}
		out.floats = make([]float64, n)
		copy(out.floats, c.floats)
		for i := 0; i < n; i++ {
			if !c.valid[i] {
				out.floats[i] = fill
			}
		}
	case Int:
		var fill int64
		if ok {
			fill, _ = strconv.ParseInt(mode, 10, 64)
		}
		out.ints = make([]int64, n)
		copy(out.ints, c.ints)
		for i := 0; i < n; i++ {
			if !c.valid[i] {
				out.ints[i] = fill
			}
		}
	case String:
		out.strs = make([]string, n)
		copy(out.strs, c.strs)
		for i := 0; i < n; i++ {
			if !c.valid[i] {
				out.strs[i] = mode
			}
		}
	case Bool:
		fill := mode == "true"
		out.bools = make([]bool, n)
		copy(out.bools, c.bools)
		for i := 0; i < n; i++ {
			if !c.valid[i] {
				out.bools[i] = fill
			}
		}
	}
	return out
}

// ValueSet returns the set of distinct non-null join keys, used by the
// instance-based discovery matcher and relational.KeyOverlap to estimate
// joinability. The set is computed once and memoised (columns are
// immutable inside a Frame), so the returned map is shared: callers must
// treat it as read-only. Safe for concurrent use.
func (c *Column) ValueSet() map[string]struct{} {
	if c.memo == nil {
		return c.buildValueSet()
	}
	c.memo.valueSetOnce.Do(func() { c.memo.valueSet = c.buildValueSet() })
	return c.memo.valueSet
}

func (c *Column) buildValueSet() map[string]struct{} {
	set := make(map[string]struct{}, 64)
	for i, n := 0, c.Len(); i < n; i++ {
		if k, ok := c.Key(i); ok {
			set[k] = struct{}{}
		}
	}
	return set
}

// Equal reports deep equality of names, kinds, validity and values.
// Float cells compare with exact equality except that two NaNs are equal.
func (c *Column) Equal(o *Column) bool {
	if c.name != o.name || c.kind != o.kind || c.Len() != o.Len() {
		return false
	}
	for i, n := 0, c.Len(); i < n; i++ {
		if c.IsValid(i) != o.IsValid(i) {
			return false
		}
		if !c.IsValid(i) {
			continue
		}
		switch c.kind {
		case Float:
			a, b := c.floats[i], o.floats[i]
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				return false
			}
		case Int:
			if c.ints[i] != o.ints[i] {
				return false
			}
		case String:
			if c.strs[i] != o.strs[i] {
				return false
			}
		case Bool:
			if c.bools[i] != o.bools[i] {
				return false
			}
		}
	}
	return true
}
