// Package frame implements the columnar table substrate used throughout the
// AutoFeat reproduction. It plays the role the pandas DataFrame plays in the
// original system: typed columns with null bitmaps, CSV ingestion with schema
// inference, group-by, imputation, stratified sampling and numeric encoding.
//
// Columns are views: the public surface (Len/At/IsNull/ValueSet/Numeric and
// the typed accessors) is backed by one of two storage engines — in-memory
// slices for CSV-ingested and derived columns, or a zero-copy window into a
// mapped columnar lake file (see columnar.go) for packed lakes. Callers
// cannot tell the backends apart; join, selection and discovery code reads
// through the same methods either way.
//
// The package is deliberately self-contained (stdlib plus the sibling sketch
// package) and deterministic: every operation that involves randomness takes
// an explicit *rand.Rand.
package frame

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"

	"autofeat/internal/sketch"
)

// Kind enumerates the physical column types supported by the engine.
type Kind uint8

// Supported column kinds.
const (
	Float  Kind = iota // float64 storage
	Int                // int64 storage
	String             // string storage
	Bool               // bool storage
)

// String returns the human-readable name of the kind.
func (k Kind) String() string {
	switch k {
	case Float:
		return "float"
	case Int:
		return "int"
	case String:
		return "string"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsNumeric reports whether values of this kind can be used directly as
// numeric features without label encoding.
func (k Kind) IsNumeric() bool { return k == Float || k == Int || k == Bool }

// View is the read surface every column backend provides. *Column is the
// only implementation handed out by this package — the concrete type stays
// exported because downstream caches key on *Column identity — but tooling
// and examples are held to this interface (see api_guard_test.go) so they
// never depend on which storage engine backs a table.
type View interface {
	// Name returns the column name.
	Name() string
	// Kind returns the physical type of the column.
	Kind() Kind
	// Len returns the number of cells.
	Len() int
	// At returns cell i boxed as any, nil for null cells.
	At(i int) any
	// IsNull reports whether cell i is null.
	IsNull(i int) bool
	// ValueSet returns the distinct non-null join keys (read-only).
	ValueSet() map[string]struct{}
	// Numeric returns the column as a dense []float64 with NaN nulls.
	Numeric() []float64
}

var _ View = (*Column)(nil)

// colData is the storage engine behind a Column: either in-memory slices
// (memData, the CSV/derived path) or a zero-copy window into a mapped
// columnar file (the colr* types in columnar.go). Accessors for the wrong
// kind panic, matching the out-of-range panic the slice-backed column
// always had; Column's public methods dispatch on kind first.
type colData interface {
	len() int
	// allValid reports that no cell is null (the nil-bitmap fast path).
	allValid() bool
	valid(i int) bool
	float(i int) float64
	intAt(i int) int64
	str(i int) string
	boolAt(i int) bool
}

// Column is a single named, typed column view with an optional null bitmap.
// The storage behind it is one of two engines (see colData); everything
// above the data field is backend-agnostic.
type Column struct {
	name string
	kind Kind
	data colData
	// stats holds per-column statistics persisted in a columnar footer
	// (distinct count, min/max, MinHash sketch); nil for in-memory columns.
	stats *ColStats
	// memo caches derived read-only views of the column. It lives behind a
	// pointer so WithName copies share the cache (the backing storage is
	// shared too) and so copying a Column never copies a sync.Once.
	memo *colMemo
}

// ColStats carries the per-column statistics a columnar lake file persists
// in its footer. Discovery reads them to skip whole-column scans on cold
// open: Distinct seeds DistinctCount, Sketch stands in for a fresh MinHash
// signature (bit-identical by construction — both sides use
// internal/sketch), and Min/Max support quick range pruning.
type ColStats struct {
	// Distinct is the exact distinct non-null key count.
	Distinct int
	// Nulls is the null-cell count.
	Nulls int
	// Min and Max bound the numeric values (valid only when HasRange;
	// string and all-null columns have no range).
	Min, Max float64
	// HasRange reports whether Min/Max are meaningful.
	HasRange bool
	// Sketch is the persisted MinHash signature of the distinct key set,
	// or nil when the file predates sketch persistence.
	Sketch *sketch.MinHash
}

// Stats returns the persisted statistics for a columnar-backed column, or
// nil for in-memory columns (derive stats via DistinctCount/ValueSet
// instead). The returned struct is shared and read-only.
func (c *Column) Stats() *ColStats { return c.stats }

// colMemo holds lazily computed, immutable derivations of a column.
type colMemo struct {
	valueSetOnce sync.Once
	valueSet     map[string]struct{}
	distinctOnce sync.Once
	distinct     int
}

// memData is the in-memory storage engine: exactly one of the value slices
// is populated, matching the column kind. A nil validB means every cell is
// valid.
type memData struct {
	floats []float64
	ints   []int64
	strs   []string
	bools  []bool
	validB []bool
}

func (m *memData) len() int {
	switch {
	case m.floats != nil:
		return len(m.floats)
	case m.ints != nil:
		return len(m.ints)
	case m.strs != nil:
		return len(m.strs)
	default:
		return len(m.bools)
	}
}

func (m *memData) allValid() bool      { return m.validB == nil }
func (m *memData) valid(i int) bool    { return m.validB == nil || m.validB[i] }
func (m *memData) float(i int) float64 { return m.floats[i] }
func (m *memData) intAt(i int) int64   { return m.ints[i] }
func (m *memData) str(i int) string    { return m.strs[i] }
func (m *memData) boolAt(i int) bool   { return m.bools[i] }

// newMemColumn assembles an in-memory column; the d.len() must already
// agree with the valid bitmap (use normalizeValid).
func newMemColumn(name string, kind Kind, d *memData) *Column {
	return &Column{name: name, kind: kind, data: d, memo: new(colMemo)}
}

// NewFloatColumn builds a float column. valid may be nil (all valid).
func NewFloatColumn(name string, values []float64, valid []bool) *Column {
	return newMemColumn(name, Float, &memData{floats: values, validB: normalizeValid(len(values), valid)})
}

// NewIntColumn builds an int column. valid may be nil (all valid).
func NewIntColumn(name string, values []int64, valid []bool) *Column {
	return newMemColumn(name, Int, &memData{ints: values, validB: normalizeValid(len(values), valid)})
}

// NewStringColumn builds a string column. valid may be nil (all valid).
func NewStringColumn(name string, values []string, valid []bool) *Column {
	return newMemColumn(name, String, &memData{strs: values, validB: normalizeValid(len(values), valid)})
}

// NewBoolColumn builds a bool column. valid may be nil (all valid).
func NewBoolColumn(name string, values []bool, valid []bool) *Column {
	return newMemColumn(name, Bool, &memData{bools: values, validB: normalizeValid(len(values), valid)})
}

// normalizeValid reconciles a bitmap whose length disagrees with the
// value count — the signature of corrupt input. The bitmap is truncated
// or padded with false (null), so a bad table degrades to extra nulls
// (which data-quality pruning then discards) instead of panicking.
func normalizeValid(n int, valid []bool) []bool {
	if valid == nil || len(valid) == n {
		return valid
	}
	out := make([]bool, n)
	copy(out, valid)
	return out
}

// Name returns the column name.
func (c *Column) Name() string { return c.name }

// Kind returns the physical type of the column.
func (c *Column) Kind() Kind { return c.kind }

// Len returns the number of cells in the column.
func (c *Column) Len() int { return c.data.len() }

// WithName returns a shallow copy of the column under a new name. The backing
// storage is shared; columns are treated as immutable once inside a Frame.
func (c *Column) WithName(name string) *Column {
	cp := *c
	cp.name = name
	return &cp
}

// IsValid reports whether cell i holds a non-null value.
func (c *Column) IsValid(i int) bool { return c.data.valid(i) }

// IsNull reports whether cell i is null — the View-facing negation of
// IsValid.
func (c *Column) IsNull(i int) bool { return !c.data.valid(i) }

// NullCount returns the number of null cells.
func (c *Column) NullCount() int {
	if c.data.allValid() {
		return 0
	}
	if c.stats != nil {
		return c.stats.Nulls
	}
	n := 0
	for i, l := 0, c.data.len(); i < l; i++ {
		if !c.data.valid(i) {
			n++
		}
	}
	return n
}

// NullRatio returns NullCount/Len, or 0 for an empty column.
func (c *Column) NullRatio() float64 {
	n := c.Len()
	if n == 0 {
		return 0
	}
	return float64(c.NullCount()) / float64(n)
}

// Float returns cell i as float64. The column must be of kind Float.
func (c *Column) Float(i int) float64 { return c.data.float(i) }

// Int returns cell i as int64. The column must be of kind Int.
func (c *Column) Int(i int) int64 { return c.data.intAt(i) }

// Str returns cell i as string. The column must be of kind String.
func (c *Column) Str(i int) string { return c.data.str(i) }

// Bool returns cell i as bool. The column must be of kind Bool.
func (c *Column) Bool(i int) bool { return c.data.boolAt(i) }

// Value returns cell i boxed as any, or nil when the cell is null.
func (c *Column) Value(i int) any {
	if !c.data.valid(i) {
		return nil
	}
	switch c.kind {
	case Float:
		return c.data.float(i)
	case Int:
		return c.data.intAt(i)
	case String:
		return c.data.str(i)
	default:
		return c.data.boolAt(i)
	}
}

// At returns cell i boxed as any, or nil when the cell is null. It is the
// View-interface name for Value.
func (c *Column) At(i int) any { return c.Value(i) }

// FormatCell renders cell i for CSV output. Nulls render as the empty string.
func (c *Column) FormatCell(i int) string {
	if !c.data.valid(i) {
		return ""
	}
	switch c.kind {
	case Float:
		return strconv.FormatFloat(c.data.float(i), 'g', -1, 64)
	case Int:
		return strconv.FormatInt(c.data.intAt(i), 10)
	case String:
		return c.data.str(i)
	default:
		return strconv.FormatBool(c.data.boolAt(i))
	}
}

// Key returns a comparable join key for cell i. Null cells return ("",
// false). Int and Float cells that hold the same integral value produce the
// same key, so an int64 FK can join a float64 PK.
func (c *Column) Key(i int) (string, bool) {
	if !c.data.valid(i) {
		return "", false
	}
	switch c.kind {
	case Float:
		f := c.data.float(i)
		if f == math.Trunc(f) && !math.IsInf(f, 0) && math.Abs(f) < 1e15 {
			return strconv.FormatInt(int64(f), 10), true
		}
		return strconv.FormatFloat(f, 'g', -1, 64), true
	case Int:
		return strconv.FormatInt(c.data.intAt(i), 10), true
	case String:
		return c.data.str(i), true
	default:
		return strconv.FormatBool(c.data.boolAt(i)), true
	}
}

// Take returns a new column containing the cells at the given row indices, in
// order. An index of -1 yields a null cell (used by left joins for unmatched
// rows). The result is always in-memory, regardless of the source backend:
// join outputs are request-scoped, not lake-resident.
func (c *Column) Take(idx []int) *Column {
	d := &memData{}
	needValid := !c.data.allValid()
	for _, i := range idx {
		if i < 0 {
			needValid = true
			break
		}
	}
	if needValid {
		d.validB = make([]bool, len(idx))
	}
	switch c.kind {
	case Float:
		d.floats = make([]float64, len(idx))
	case Int:
		d.ints = make([]int64, len(idx))
	case String:
		d.strs = make([]string, len(idx))
	default:
		d.bools = make([]bool, len(idx))
	}
	for j, i := range idx {
		if i < 0 {
			continue // leave zero value, invalid
		}
		switch c.kind {
		case Float:
			d.floats[j] = c.data.float(i)
		case Int:
			d.ints[j] = c.data.intAt(i)
		case String:
			d.strs[j] = c.data.str(i)
		default:
			d.bools[j] = c.data.boolAt(i)
		}
		if d.validB != nil {
			d.validB[j] = c.data.valid(i)
		}
	}
	return newMemColumn(c.name, c.kind, d)
}

// Floats returns the column as a dense []float64 suitable for statistics.
// Null cells become NaN. String columns are label-encoded: distinct values
// are sorted lexicographically and mapped to 0..k-1, which preserves rank
// semantics for ordinal string data and is stable across calls.
func (c *Column) Floats() []float64 {
	n := c.Len()
	out := make([]float64, n)
	switch c.kind {
	case Float:
		for i := 0; i < n; i++ {
			if c.data.valid(i) {
				out[i] = c.data.float(i)
			} else {
				out[i] = math.NaN()
			}
		}
	case Int:
		for i := 0; i < n; i++ {
			if c.data.valid(i) {
				out[i] = float64(c.data.intAt(i))
			} else {
				out[i] = math.NaN()
			}
		}
	case Bool:
		for i := 0; i < n; i++ {
			switch {
			case !c.data.valid(i):
				out[i] = math.NaN()
			case c.data.boolAt(i):
				out[i] = 1
			}
		}
	case String:
		codes := c.stringCodes()
		for i := 0; i < n; i++ {
			if c.data.valid(i) {
				out[i] = float64(codes[i])
			} else {
				out[i] = math.NaN()
			}
		}
	}
	return out
}

// Numeric returns the column as a dense []float64 with NaN nulls. It is the
// View-interface name for Floats.
func (c *Column) Numeric() []float64 { return c.Floats() }

// stringCodes label-encodes a string column by sorted distinct value.
func (c *Column) stringCodes() []int {
	n := c.Len()
	distinct := make(map[string]struct{}, 16)
	for i := 0; i < n; i++ {
		if c.data.valid(i) {
			distinct[c.data.str(i)] = struct{}{}
		}
	}
	vals := make([]string, 0, len(distinct))
	for s := range distinct {
		vals = append(vals, s)
	}
	sort.Strings(vals)
	code := make(map[string]int, len(vals))
	for i, s := range vals {
		code[s] = i
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		if c.data.valid(i) {
			out[i] = code[c.data.str(i)]
		}
	}
	return out
}

// DistinctCount returns the number of distinct non-null values. A column
// loaded from a columnar lake file answers from its persisted footer stats
// without touching cell data — the seed that lets DRG construction probe
// join candidates on a cold open without scanning every column. Otherwise
// the count is computed once and memoised through the column's memo (the
// same sync.Once discipline as ValueSet): the discovery matcher probes it
// per column per table pair, so an unmemoised count would rescan the column
// quadratically during DRG construction. Safe for concurrent use.
func (c *Column) DistinctCount() int {
	if c.stats != nil {
		return c.stats.Distinct
	}
	if c.memo == nil {
		return len(c.buildValueSet())
	}
	c.memo.distinctOnce.Do(func() { c.memo.distinct = len(c.ValueSet()) })
	return c.memo.distinct
}

// Mode returns the most frequent non-null value as a formatted cell string
// and reports whether any non-null value exists. Ties break toward the
// lexicographically smallest key for determinism.
func (c *Column) Mode() (string, bool) {
	counts := make(map[string]int, 16)
	for i, n := 0, c.Len(); i < n; i++ {
		if k, ok := c.Key(i); ok {
			counts[k]++
		}
	}
	if len(counts) == 0 {
		return "", false
	}
	best, bestN := "", -1
	for k, n := range counts {
		if n > bestN || (n == bestN && k < best) {
			best, bestN = k, n
		}
	}
	return best, true
}

// Imputed returns a copy of the column with nulls replaced by the most
// frequent value (the paper's imputation strategy). Columns without nulls
// are returned unchanged. If every cell is null, zeros are imputed. The
// copy is in-memory regardless of the source backend.
func (c *Column) Imputed() *Column {
	if c.data.allValid() || c.NullCount() == 0 {
		return c
	}
	mode, ok := c.Mode()
	d := &memData{}
	n := c.Len()
	switch c.kind {
	case Float:
		fill := 0.0
		if ok {
			fill, _ = strconv.ParseFloat(mode, 64)
		}
		d.floats = make([]float64, n)
		for i := 0; i < n; i++ {
			if c.data.valid(i) {
				d.floats[i] = c.data.float(i)
			} else {
				d.floats[i] = fill
			}
		}
	case Int:
		var fill int64
		if ok {
			fill, _ = strconv.ParseInt(mode, 10, 64)
		}
		d.ints = make([]int64, n)
		for i := 0; i < n; i++ {
			if c.data.valid(i) {
				d.ints[i] = c.data.intAt(i)
			} else {
				d.ints[i] = fill
			}
		}
	case String:
		d.strs = make([]string, n)
		for i := 0; i < n; i++ {
			if c.data.valid(i) {
				d.strs[i] = c.data.str(i)
			} else {
				d.strs[i] = mode
			}
		}
	case Bool:
		fill := mode == "true"
		d.bools = make([]bool, n)
		for i := 0; i < n; i++ {
			if c.data.valid(i) {
				d.bools[i] = c.data.boolAt(i)
			} else {
				d.bools[i] = fill
			}
		}
	}
	return newMemColumn(c.name, c.kind, d)
}

// ValueSet returns the set of distinct non-null join keys, used by the
// instance-based discovery matcher and relational.KeyOverlap to estimate
// joinability. The set is computed once and memoised (columns are
// immutable inside a Frame), so the returned map is shared: callers must
// treat it as read-only. Safe for concurrent use.
func (c *Column) ValueSet() map[string]struct{} {
	if c.memo == nil {
		return c.buildValueSet()
	}
	c.memo.valueSetOnce.Do(func() { c.memo.valueSet = c.buildValueSet() })
	return c.memo.valueSet
}

func (c *Column) buildValueSet() map[string]struct{} {
	set := make(map[string]struct{}, 64)
	for i, n := 0, c.Len(); i < n; i++ {
		if k, ok := c.Key(i); ok {
			set[k] = struct{}{}
		}
	}
	return set
}

// Equal reports deep equality of names, kinds, validity and values.
// Float cells compare with exact equality except that two NaNs are equal.
// Backends are not compared: a CSV-backed and a columnar-backed column
// holding the same cells are equal.
func (c *Column) Equal(o *Column) bool {
	if c.name != o.name || c.kind != o.kind || c.Len() != o.Len() {
		return false
	}
	for i, n := 0, c.Len(); i < n; i++ {
		if c.data.valid(i) != o.data.valid(i) {
			return false
		}
		if !c.data.valid(i) {
			continue
		}
		switch c.kind {
		case Float:
			a, b := c.data.float(i), o.data.float(i)
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				return false
			}
		case Int:
			if c.data.intAt(i) != o.data.intAt(i) {
				return false
			}
		case String:
			if c.data.str(i) != o.data.str(i) {
				return false
			}
		case Bool:
			if c.data.boolAt(i) != o.data.boolAt(i) {
				return false
			}
		}
	}
	return true
}
