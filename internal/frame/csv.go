package frame

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// IsNullToken reports whether a raw CSV cell denotes a null: the empty
// string plus the NA, N/A and null markers in any letter case. The marker
// spellings are matched case-insensitively so the set is consistent ("NA"
// and "na" cannot disagree); "NaN" is deliberately NOT a null — it is a
// representable float value and is stored as one. It is the single null
// predicate for every ingest path — CSV inference and the columnar pack
// pipeline both route through it, so a CSV-backed table and its packed
// columnar twin carry bit-identical null bitmaps.
//
// Lakes ingested before the marker set grew beyond "" may see cells like
// "NA" shift from string values to nulls on re-ingest, which can change a
// column's inferred type and its discovery ranking; see CHANGES.md for the
// migration note.
func IsNullToken(s string) bool {
	if s == "" {
		return true
	}
	if len(s) > 4 {
		return false
	}
	return strings.EqualFold(s, "NA") || strings.EqualFold(s, "N/A") || strings.EqualFold(s, "null")
}

// ReadCSV parses a CSV stream with a header row into a Frame, inferring a
// type per column: int64 if every non-null cell parses as an integer, else
// float64, else bool, else string. Cells matching IsNullToken are nulls. A
// leading UTF-8 byte-order mark is stripped from the header (spreadsheet
// exports routinely prepend one, which would otherwise mangle the first
// column's name and break name-based join matching).
func ReadCSV(name string, r io.Reader) (*Frame, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = false
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("frame: read csv header for %q: %w", name, err)
	}
	if len(header) > 0 {
		header[0] = strings.TrimPrefix(header[0], "\ufeff")
	}
	raw := make([][]string, len(header))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("frame: read csv row for %q: %w", name, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("frame: csv row has %d fields, want %d", len(rec), len(header))
		}
		for j, cell := range rec {
			raw[j] = append(raw[j], cell)
		}
	}
	f := New(name)
	for j, colName := range header {
		if err := f.AddColumn(inferColumn(colName, raw[j])); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// ReadCSVFile reads a CSV file; the table name is the base filename without
// its extension.
func ReadCSVFile(path string) (*Frame, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	base := filepath.Base(path)
	name := strings.TrimSuffix(base, filepath.Ext(base))
	return ReadCSV(name, fh)
}

// WriteCSV serialises the frame with a header row. Nulls become empty cells.
func (f *Frame) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(f.ColumnNames()); err != nil {
		return err
	}
	row := make([]string, f.NumCols())
	for i, n := 0, f.NumRows(); i < n; i++ {
		for j, c := range f.cols {
			row[j] = c.FormatCell(i)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the frame to the given path, creating parent
// directories as needed.
func (f *Frame) WriteCSVFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WriteCSV(fh); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

// inferColumn picks the narrowest type that parses every non-null cell.
// Null detection goes through IsNullToken so every representation of a
// null ("", NA, null) lands in the bitmap identically, whichever storage
// backend the table later ends up in.
func inferColumn(name string, cells []string) *Column {
	allInt, allFloat, allBool := true, true, true
	anyNull := false
	for _, s := range cells {
		if IsNullToken(s) {
			anyNull = true
			continue
		}
		if allInt {
			if _, err := strconv.ParseInt(s, 10, 64); err != nil {
				allInt = false
			}
		}
		if allFloat {
			if _, err := strconv.ParseFloat(s, 64); err != nil {
				allFloat = false
			}
		}
		if allBool {
			if s != "true" && s != "false" {
				allBool = false
			}
		}
	}
	var valid []bool
	if anyNull {
		valid = make([]bool, len(cells))
		for i, s := range cells {
			valid[i] = !IsNullToken(s)
		}
	}
	switch {
	case allInt:
		vals := make([]int64, len(cells))
		for i, s := range cells {
			if !IsNullToken(s) {
				vals[i], _ = strconv.ParseInt(s, 10, 64)
			}
		}
		return NewIntColumn(name, vals, valid)
	case allFloat:
		vals := make([]float64, len(cells))
		for i, s := range cells {
			if !IsNullToken(s) {
				vals[i], _ = strconv.ParseFloat(s, 64)
			}
		}
		return NewFloatColumn(name, vals, valid)
	case allBool:
		vals := make([]bool, len(cells))
		for i, s := range cells {
			if !IsNullToken(s) {
				vals[i] = s == "true"
			}
		}
		return NewBoolColumn(name, vals, valid)
	default:
		vals := make([]string, len(cells))
		for i, s := range cells {
			if !IsNullToken(s) {
				vals[i] = s
			}
		}
		return NewStringColumn(name, vals, valid)
	}
}
