package frame

import (
	"fmt"
	"testing"
)

func bigIntColumn(n int) *Column {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i % (n / 2))
	}
	return NewIntColumn("k", vals, nil)
}

// TestDistinctCountMemoised is the regression test for DistinctCount
// rebuilding its value set on every call: repeated calls must agree and
// must reuse the memoised ValueSet map rather than rescanning.
func TestDistinctCountMemoised(t *testing.T) {
	c := bigIntColumn(1000)
	if got := c.DistinctCount(); got != 500 {
		t.Fatalf("DistinctCount = %d, want 500", got)
	}
	// The memoised count must come from the same set ValueSet memoises:
	// the shared map is the observable proof no rescan happens.
	set := c.ValueSet()
	if len(set) != c.DistinctCount() {
		t.Fatal("memoised count disagrees with memoised set")
	}
	if c.memo.distinct != 500 {
		t.Fatal("count not stored in the column memo")
	}
	// Columns detached from a frame memo still answer correctly.
	raw := &Column{name: "raw", kind: Int, data: &memData{ints: []int64{1, 2, 2, 3}}}
	if got := raw.DistinctCount(); got != 3 {
		t.Fatalf("memo-less DistinctCount = %d, want 3", got)
	}
}

// BenchmarkDistinctCount asserts the memoisation satellite: repeat
// calls must be orders of magnitude cheaper than the first scan. Run
// with -bench to compare Cold (fresh column each call) vs Warm
// (memoised repeat calls on one column).
func BenchmarkDistinctCount(b *testing.B) {
	const n = 100_000
	b.Run("Cold", func(b *testing.B) {
		cols := make([]*Column, b.N)
		for i := range cols {
			cols[i] = bigIntColumn(n)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if cols[i].DistinctCount() != n/2 {
				b.Fatal("wrong count")
			}
		}
	})
	b.Run("Warm", func(b *testing.B) {
		c := bigIntColumn(n)
		c.DistinctCount() // prime the memo
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if c.DistinctCount() != n/2 {
				b.Fatal("wrong count")
			}
		}
	})
}

// TestDistinctCountSpeedup is the failing-before/passing-after check in
// test form: a warm column must answer thousands of DistinctCount
// probes in the time a handful of cold scans take. It measures work, not
// wall clock, by counting how many probes fit in a fixed value-set
// rebuild budget.
func TestDistinctCountSpeedup(t *testing.T) {
	c := bigIntColumn(50_000)
	c.DistinctCount()
	// 10k warm probes must not allocate a new set: the memo pointer is
	// stable across all of them.
	before := fmt.Sprintf("%p", c.memo.valueSet)
	for i := 0; i < 10_000; i++ {
		if c.DistinctCount() != 25_000 {
			t.Fatal("wrong count")
		}
	}
	if after := fmt.Sprintf("%p", c.memo.valueSet); after != before {
		t.Fatal("warm DistinctCount rebuilt the value set")
	}
}
