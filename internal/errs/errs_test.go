package errs

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"testing"
)

// TestTaxonomyWrapChain is the table-driven contract of the taxonomy:
// errors.Is must match the sentinel (and the cause, when one exists)
// through arbitrary further wrapping.
func TestTaxonomyWrapChain(t *testing.T) {
	cause := fs.ErrNotExist
	cases := []struct {
		name     string
		err      error
		sentinel error
		cause    error // nil = no cause expected
	}{
		{"bad_input", BadInput("table %q is ragged", "junk"), ErrBadInput, nil},
		{"bad_input_wrapped_cause", BadInput("read %q: %w", "lake/x.csv", cause), ErrBadInput, cause},
		{"budget", BudgetExceeded("max_eval_joins=%d reached", 10), ErrBudgetExceeded, nil},
		{"cancelled_nil_cause", Cancelled(nil), ErrCancelled, nil},
		{"cancelled_ctx", Cancelled(context.Canceled), ErrCancelled, context.Canceled},
		{"cancelled_deadline", Cancelled(context.DeadlineExceeded), ErrCancelled, context.DeadlineExceeded},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Direct match.
			if !errors.Is(tc.err, tc.sentinel) {
				t.Fatalf("errors.Is(%v, sentinel) = false", tc.err)
			}
			// Match through one more layer of fmt.Errorf wrapping, the
			// shape call sites produce ("core: depth 2: %w").
			rewrapped := fmt.Errorf("outer context: %w", tc.err)
			if !errors.Is(rewrapped, tc.sentinel) {
				t.Fatalf("sentinel lost through rewrap: %v", rewrapped)
			}
			if tc.cause != nil && !errors.Is(rewrapped, tc.cause) {
				t.Fatalf("cause lost through rewrap: %v", rewrapped)
			}
			// The sentinels are mutually exclusive classifications.
			for _, other := range []error{ErrBadInput, ErrBudgetExceeded, ErrCancelled} {
				if other != tc.sentinel && errors.Is(tc.err, other) {
					t.Fatalf("%v must not match %v", tc.err, other)
				}
			}
		})
	}
}

// TestTaxonomyErrorsAs checks that errors.As digs the concrete cause type
// out of a classified error.
func TestTaxonomyErrorsAs(t *testing.T) {
	cause := &fs.PathError{Op: "open", Path: "lake/x.csv", Err: fs.ErrNotExist}
	err := BadInput("read table: %w", cause)
	var pe *fs.PathError
	if !errors.As(err, &pe) {
		t.Fatalf("errors.As failed to recover *fs.PathError from %v", err)
	}
	if pe.Path != "lake/x.csv" {
		t.Fatalf("wrong cause recovered: %v", pe)
	}
}

// TestTaxonomyMessages checks the rendered messages carry both the
// classification context and the cause, without duplication.
func TestTaxonomyMessages(t *testing.T) {
	err := Cancelled(context.DeadlineExceeded)
	want := "autofeat: run cancelled: context deadline exceeded"
	if err.Error() != want {
		t.Fatalf("Cancelled message = %q, want %q", err.Error(), want)
	}
	be := BadInput("bad row %d: %w", 7, errors.New("boom"))
	if be.Error() != "bad row 7: boom" {
		t.Fatalf("BadInput message = %q", be.Error())
	}
}
