// Package errs defines the typed error taxonomy of the AutoFeat
// reproduction. Three sentinel errors classify every failure the online
// pipeline can hit, so callers branch with errors.Is instead of string
// matching:
//
//   - ErrBadInput — malformed or corrupt user input (a ragged CSV, a
//     mismatched bitmap, a missing column). One bad table prunes its own
//     join paths; it never kills the process.
//   - ErrBudgetExceeded — an enforceable resource budget ran out
//     (Config.MaxEvalJoins, Config.MaxJoinedRows). The run degrades to a
//     partial result rather than failing.
//   - ErrCancelled — the run's context was cancelled or its deadline
//     (Config.Timeout) expired. Like budgets, cancellation degrades to a
//     partial result.
//
// The constructors wrap a sentinel together with an optional cause, so
// errors.Is matches both the taxonomy sentinel and the underlying error
// (e.g. context.DeadlineExceeded) through one chain.
package errs

import (
	"errors"
	"fmt"
)

// Sentinel errors of the taxonomy. Match with errors.Is; they are
// re-exported at the root package as autofeat.ErrBadInput,
// autofeat.ErrBudgetExceeded and autofeat.ErrCancelled.
var (
	// ErrBadInput classifies malformed or corrupt user input.
	ErrBadInput = errors.New("autofeat: bad input")
	// ErrBudgetExceeded classifies an exhausted time/row/join budget.
	ErrBudgetExceeded = errors.New("autofeat: budget exceeded")
	// ErrCancelled classifies context cancellation or deadline expiry.
	ErrCancelled = errors.New("autofeat: cancelled")
)

// taxonomyError carries a sentinel classification, a fully formatted
// message and an optional cause. Unwrap returns both, so errors.Is
// matches the sentinel and the cause through the same chain.
type taxonomyError struct {
	sentinel error
	msg      string // already includes the cause text when present
	cause    error
}

// Error implements the error interface.
func (e *taxonomyError) Error() string { return e.msg }

// Unwrap exposes the sentinel and (when present) the cause to errors.Is
// and errors.As.
func (e *taxonomyError) Unwrap() []error {
	if e.cause != nil {
		return []error{e.sentinel, e.cause}
	}
	return []error{e.sentinel}
}

// BadInput returns an ErrBadInput-classified error with a formatted
// message. A trailing %w verb in format wraps a cause as usual.
func BadInput(format string, args ...any) error {
	return classify(ErrBadInput, format, args...)
}

// BudgetExceeded returns an ErrBudgetExceeded-classified error with a
// formatted message.
func BudgetExceeded(format string, args ...any) error {
	return classify(ErrBudgetExceeded, format, args...)
}

// Cancelled returns an ErrCancelled-classified error wrapping cause
// (typically ctx.Err(), so errors.Is also matches context.Canceled or
// context.DeadlineExceeded). A nil cause yields the bare classification.
func Cancelled(cause error) error {
	msg := "autofeat: run cancelled"
	if cause != nil {
		msg += ": " + cause.Error()
	}
	return &taxonomyError{sentinel: ErrCancelled, msg: msg, cause: cause}
}

// classify builds a taxonomyError from a sentinel and an fmt-style
// message, preserving any error wrapped via %w as the cause.
func classify(sentinel error, format string, args ...any) error {
	formatted := fmt.Errorf(format, args...)
	return &taxonomyError{sentinel: sentinel, msg: formatted.Error(), cause: errors.Unwrap(formatted)}
}
