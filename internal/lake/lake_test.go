package lake

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"autofeat/internal/core"
	"autofeat/internal/datagen"
	"autofeat/internal/errs"
)

// writeLakeDir materialises a generated dataset as a CSV directory.
func writeLakeDir(t *testing.T) (dir string, ds *datagen.Dataset) {
	t.Helper()
	ds, err := datagen.Generate(datagen.SmallSpecs()[0])
	if err != nil {
		t.Fatal(err)
	}
	dir = t.TempDir()
	for _, tb := range ds.Tables {
		if err := tb.WriteCSVFile(filepath.Join(dir, tb.Name()+".csv")); err != nil {
			t.Fatal(err)
		}
	}
	return dir, ds
}

func TestOpenLoadsTablesOnce(t *testing.T) {
	dir, ds := writeLakeDir(t)
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if l.Dir() != dir {
		t.Errorf("Dir() = %q, want %q", l.Dir(), dir)
	}
	if got, want := len(l.Tables()), len(ds.Tables); got != want {
		t.Fatalf("loaded %d tables, want %d", got, want)
	}
	for _, tb := range ds.Tables {
		if l.Table(tb.Name()) == nil {
			t.Errorf("Table(%q) = nil", tb.Name())
		}
	}
	if l.Table("no-such-table") != nil {
		t.Error("Table on unknown name should be nil")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("Open on an empty dir should fail")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.csv"), []byte("a,b\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir)
	if !errors.Is(err, errs.ErrBadInput) {
		t.Errorf("Open on a corrupt CSV: err = %v, want ErrBadInput", err)
	}
	l, lerrs := OpenLenient(dir)
	if len(lerrs) != 1 {
		t.Errorf("OpenLenient reported %d errors, want 1", len(lerrs))
	}
	if len(l.Tables()) != 0 {
		t.Errorf("OpenLenient kept %d tables, want 0", len(l.Tables()))
	}
}

func TestDRGMemoisedPerSetting(t *testing.T) {
	_, ds := writeLakeDir(t)
	l := New(ds.Tables)

	g1, err := l.DRG(WithThreshold(0.55))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := l.DRG(WithThreshold(0.55))
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("same settings should return the identical memoised graph")
	}
	g3, err := l.DRG(WithThreshold(0.9))
	if err != nil {
		t.Fatal(err)
	}
	if g3 == g1 {
		t.Error("a different threshold must build a different graph")
	}
	gk, err := l.DRG(WithKFKs(ds.KFKs))
	if err != nil {
		t.Fatal(err)
	}
	if gk.NumEdges() != len(ds.KFKs) {
		t.Errorf("benchmark DRG has %d edges, want %d", gk.NumEdges(), len(ds.KFKs))
	}
	if gk2, _ := l.DRG(WithKFKs(ds.KFKs)); gk2 != gk {
		t.Error("identical KFK sets should share one memoised graph")
	}
	if _, err := l.DRG(WithMatcher("bogus")); !errors.Is(err, errs.ErrBadInput) {
		t.Errorf("unknown matcher: err = %v, want ErrBadInput", err)
	}
}

// TestDiscoverWarmMatchesCold is the session-cache correctness
// invariant: a request served by a warm Lake (memoised DRG, populated
// key-index cache) must rank bit-identically to the same request on a
// cold Lake, while the warm run's cache counters show actual reuse.
func TestDiscoverWarmMatchesCold(t *testing.T) {
	_, ds := writeLakeDir(t)
	req := Request{Base: ds.Base.Name(), Label: ds.Label}

	cold := New(ds.Tables, WithKFKs(ds.KFKs))
	first, err := cold.Discover(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.WarmGraph {
		t.Error("first request should build the DRG, not find it warm")
	}
	warm, err := cold.Discover(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmGraph {
		t.Error("second request should reuse the memoised DRG")
	}
	if warm.CacheHits <= first.CacheHits {
		t.Errorf("warm run should add key-index cache hits: first=%d warm=%d",
			first.CacheHits, warm.CacheHits)
	}

	if got, want := rankingKey(warm.Ranking), rankingKey(first.Ranking); got != want {
		t.Errorf("warm ranking diverged from cold:\nwarm: %s\ncold: %s", got, want)
	}
}

// rankingKey flattens the parts of a ranking that must be bit-identical
// across warm and cold runs.
func rankingKey(r *core.Ranking) string {
	s := fmt.Sprintf("explored=%d pruned=%d;", r.PathsExplored, r.PathsPruned)
	for _, p := range r.Paths {
		s += fmt.Sprintf("%s score=%.17g quality=%.17g features=%v;", p, p.Score, p.Quality, p.Features)
	}
	return s
}

func TestDiscoverValidatesModel(t *testing.T) {
	_, ds := writeLakeDir(t)
	l := New(ds.Tables, WithKFKs(ds.KFKs))
	_, err := l.Discover(context.Background(), Request{Base: ds.Base.Name(), Label: ds.Label, Model: "no-such-model"})
	if !errors.Is(err, errs.ErrBadInput) {
		t.Errorf("unknown model: err = %v, want ErrBadInput", err)
	}
}

func TestFromGraphPinsAttachedGraph(t *testing.T) {
	_, ds := writeLakeDir(t)
	g, err := New(ds.Tables).DRG(WithKFKs(ds.KFKs))
	if err != nil {
		t.Fatal(err)
	}
	l := FromGraph(g)
	got, err := l.DRG(WithThreshold(0.1)) // options must be ignored
	if err != nil {
		t.Fatal(err)
	}
	if got != g {
		t.Error("FromGraph lake must always return the attached graph")
	}
	if len(l.Tables()) != len(ds.Tables) {
		t.Errorf("FromGraph adopted %d tables, want %d", len(l.Tables()), len(ds.Tables))
	}
	res, err := l.Discover(context.Background(), Request{Base: ds.Base.Name(), Label: ds.Label})
	if err != nil {
		t.Fatal(err)
	}
	if !res.WarmGraph {
		t.Error("attached graph should always count as warm")
	}
}

// TestDiscoverInjectsSharedCache confirms every run against one Lake
// shares the key-index cache unless the caller supplies its own.
func TestDiscoverInjectsSharedCache(t *testing.T) {
	_, ds := writeLakeDir(t)
	l := New(ds.Tables, WithKFKs(ds.KFKs))
	if _, err := l.Discover(context.Background(), Request{Base: ds.Base.Name(), Label: ds.Label}); err != nil {
		t.Fatal(err)
	}
	hits, misses := l.CacheStats()
	if hits+misses == 0 {
		t.Error("a discovery run should touch the Lake's shared key-index cache")
	}
	if c := l.KeyCache(); c == nil {
		t.Error("KeyCache should never be nil")
	}
}
