package lake

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autofeat/internal/frame"
)

func TestPackAndAutoDetect(t *testing.T) {
	dir, ds := writeLakeDir(t)
	n, err := Pack(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(ds.Tables) {
		t.Fatalf("packed %d tables, want %d", n, len(ds.Tables))
	}
	// The CSVs stay; the packed files sit alongside them.
	entries, _ := os.ReadDir(dir)
	csvs, afcs := 0, 0
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".csv"):
			csvs++
		case strings.HasSuffix(e.Name(), frame.FormatExt):
			afcs++
		}
	}
	if csvs != len(ds.Tables) || afcs != len(ds.Tables) {
		t.Fatalf("after pack: %d csv + %d afc files, want %d each", csvs, afcs, len(ds.Tables))
	}

	// Auto mode prefers the packed files and loads identical tables.
	auto, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	csvLake, err := Open(dir, WithFormat(FormatCSV))
	if err != nil {
		t.Fatal(err)
	}
	colr, err := Open(dir, WithFormat(FormatColumnar))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range csvLake.Tables() {
		for _, l := range []*Lake{auto, colr} {
			got := l.Table(want.Name())
			if got == nil {
				t.Fatalf("table %q missing from packed lake", want.Name())
			}
			if !want.Equal(got) {
				t.Fatalf("table %q differs between CSV and columnar backends", want.Name())
			}
		}
	}
	// The columnar tables carry persisted stats — the proof auto picked
	// the packed file over the CSV.
	at := auto.Tables()[0]
	if at.ColumnAt(0).Stats() == nil {
		t.Fatal("auto-opened table has no persisted stats: CSV was preferred over the packed file")
	}
}

func TestOpenFormatErrors(t *testing.T) {
	dir, _ := writeLakeDir(t)
	if _, err := Open(dir, WithFormat(Format("parquet"))); err == nil {
		t.Error("unknown format must be rejected")
	}
	if _, err := Open(dir, WithFormat(FormatColumnar)); err == nil {
		t.Error("columnar open of an unpacked lake must fail (no .afc files)")
	}
	if _, err := Pack(t.TempDir()); err == nil {
		t.Error("packing an empty dir must fail")
	}
}

func TestPackedLakeSkipsResketching(t *testing.T) {
	dir, _ := writeLakeDir(t)
	if _, err := Pack(dir); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, WithFormat(FormatColumnar))
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range l.Tables() {
		for ci := 0; ci < tb.NumCols(); ci++ {
			st := tb.ColumnAt(ci).Stats()
			if st == nil || st.Sketch == nil {
				t.Fatalf("column %s.%s has no persisted sketch", tb.Name(), tb.ColumnAt(ci).Name())
			}
		}
	}
	// A sketched DRG build runs entirely from the persisted signatures.
	if _, err := l.DRG(WithMatcher(MatcherSketched)); err != nil {
		t.Fatal(err)
	}
}

func TestLakePathsShadowing(t *testing.T) {
	dir := t.TempDir()
	f := frame.New("tbl")
	f.AddColumn(frame.NewIntColumn("k", []int64{1, 2, 3}, nil))
	if err := f.WriteCSVFile(filepath.Join(dir, "tbl.csv")); err != nil {
		t.Fatal(err)
	}
	// A second table exists only as CSV.
	g := frame.New("other")
	g.AddColumn(frame.NewIntColumn("k", []int64{9}, nil))
	if err := g.WriteCSVFile(filepath.Join(dir, "other.csv")); err != nil {
		t.Fatal(err)
	}
	if err := frame.WriteColumnarFile(f, filepath.Join(dir, "tbl"+frame.FormatExt)); err != nil {
		t.Fatal(err)
	}
	paths, err := lakePaths(dir, FormatAuto)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		filepath.Join(dir, "other.csv"),
		filepath.Join(dir, "tbl"+frame.FormatExt),
	}
	if len(paths) != 2 || paths[0] != want[0] || paths[1] != want[1] {
		t.Fatalf("lakePaths = %v, want %v", paths, want)
	}
}
