package lake

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"autofeat/internal/datagen"
	"autofeat/internal/errs"
	"autofeat/internal/frame"
	"autofeat/internal/graph"
	"autofeat/internal/relational"
)

func graphEdges(g *graph.Graph) map[string][]graph.Edge {
	out := map[string][]graph.Edge{}
	for _, n := range g.Nodes() {
		out[n] = g.EdgesFrom(n)
	}
	return out
}

func requireSameDRG(t *testing.T, want, got *graph.Graph, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.Nodes(), got.Nodes()) {
		t.Fatalf("%s: nodes differ: %v vs %v", label, want.Nodes(), got.Nodes())
	}
	if !reflect.DeepEqual(graphEdges(want), graphEdges(got)) {
		t.Fatalf("%s: edges differ:\nwant %v\ngot  %v", label, graphEdges(want), graphEdges(got))
	}
}

func genDS(t *testing.T) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.SmallSpecs()[0])
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func genTables(t *testing.T) []*frame.Frame {
	t.Helper()
	return genDS(t).Tables
}

// seedKeyIndex joins along the dataset's first KFK with the lake's
// shared cache attached, leaving a resident key index for the parent
// table's key column; it returns that column and its table name.
func seedKeyIndex(t *testing.T, l *Lake, ds *datagen.Dataset) (*frame.Column, string) {
	t.Helper()
	k := ds.KFKs[0]
	child, parent := l.Table(k.ChildTable), l.Table(k.ParentTable)
	if _, err := relational.LeftJoin(child, parent, k.ChildCol, k.ParentCol, relational.Options{Cache: l.KeyCache()}); err != nil {
		t.Fatal(err)
	}
	col := parent.Column(k.ParentCol)
	if l.KeyCache().Peek(col, false) == nil {
		t.Fatal("seeded key index missing")
	}
	return col, k.ParentTable
}

// TestRegisterTablePatchesWarmDRG: registering a table into a lake with
// a warm DRG memo must yield, without any rebuild, the same graph a
// fresh lake over the full table set builds.
func TestRegisterTablePatchesWarmDRG(t *testing.T) {
	tabs := genTables(t)
	for _, kind := range []MatcherKind{MatcherExact, MatcherSketched} {
		l := New(tabs[:len(tabs)-1], WithMatcher(kind))
		warmed, err := l.DRG()
		if err != nil {
			t.Fatal(err)
		}
		warmedSnapshot := graphEdges(warmed)
		if l.DRGBuilds() != 1 {
			t.Fatalf("%s: want 1 build, got %d", kind, l.DRGBuilds())
		}
		newcomer := tabs[len(tabs)-1]
		if err := l.RegisterTable(newcomer); err != nil {
			t.Fatal(err)
		}
		patched, err := l.DRG()
		if err != nil {
			t.Fatal(err)
		}
		if l.DRGBuilds() != 1 {
			t.Fatalf("%s: mutation must patch, not rebuild: %d builds", kind, l.DRGBuilds())
		}
		if l.Mutations() != 1 {
			t.Fatalf("%s: mutation counter = %d", kind, l.Mutations())
		}
		fresh := New(tabs, WithMatcher(kind))
		want, err := fresh.DRG()
		if err != nil {
			t.Fatal(err)
		}
		requireSameDRG(t, want, patched, fmt.Sprintf("%s register-patch", kind))
		if !patched.HasNode(newcomer.Name()) {
			t.Fatalf("%s: new node missing", kind)
		}
		// The pre-mutation snapshot held by an in-flight request must be
		// untouched (patch is clone-and-swap, never in-place).
		if !reflect.DeepEqual(graphEdges(warmed), warmedSnapshot) {
			t.Fatalf("%s: mutation wrote into a held graph snapshot", kind)
		}
	}
}

// TestRegisterTableCacheIdentity is the acceptance-criteria test:
// registering one table preserves unaffected DRG memo entries (build
// counter flat) and the KeyIndexCache contents (same resident indexes,
// by pointer identity).
func TestRegisterTableCacheIdentity(t *testing.T) {
	dir, ds := writeLakeDir(t)
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Discover(context.Background(), Request{Base: ds.Base.Name(), Label: ds.Label}); err != nil {
		t.Fatal(err)
	}
	if l.CacheSize() == 0 {
		t.Fatal("discovery must leave resident key indexes behind")
	}
	// Discovery's sampled joins cache under randomized keys Peek cannot
	// address; seed one deterministic index so pointer identity is
	// observable alongside the size check covering every entry.
	seedKeyIndex(t, l, ds)
	sizeBefore := l.CacheSize()
	builds := l.DRGBuilds()
	memo := l.GraphMemoLen()

	type slot struct {
		col       *frame.Column
		normalize bool
	}
	resident := map[slot]map[string]int{}
	for _, tb := range l.Tables() {
		for _, c := range tb.Columns() {
			for _, norm := range []bool{false, true} {
				if idx := l.KeyCache().Peek(c, norm); idx != nil {
					resident[slot{c, norm}] = idx
				}
			}
		}
	}
	if len(resident) == 0 {
		t.Fatal("expected to observe resident indexes via Peek")
	}

	extra := frame.New("totally_new")
	if err := extra.AddColumn(frame.NewIntColumn("x_key", []int64{900, 901, 902, 903}, nil)); err != nil {
		t.Fatal(err)
	}
	if err := l.RegisterTable(extra); err != nil {
		t.Fatal(err)
	}

	if got := l.DRGBuilds(); got != builds {
		t.Fatalf("register must not trigger DRG rebuilds: %d -> %d", builds, got)
	}
	if got := l.GraphMemoLen(); got != memo {
		t.Fatalf("register must keep every memo entry: %d -> %d", memo, got)
	}
	if got := l.CacheSize(); got != sizeBefore {
		t.Fatalf("cache size changed across register: %d -> %d", sizeBefore, got)
	}
	for s, idx := range resident {
		got := l.KeyCache().Peek(s.col, s.normalize)
		if reflect.ValueOf(got).Pointer() != reflect.ValueOf(idx).Pointer() {
			t.Fatalf("resident index for %q (normalize=%v) was replaced", s.col.Name(), s.normalize)
		}
	}
}

// TestReplaceTableEvictsAndPatches: replacing a table must evict its
// stale sketches and key indexes and leave every warm DRG equal to a
// fresh build over the new table set.
func TestReplaceTableEvictsAndPatches(t *testing.T) {
	ds := genDS(t)
	tabs := ds.Tables
	l := New(tabs)
	if _, err := l.DRG(); err != nil {
		t.Fatal(err)
	}
	// Seed a key index against one of the old table's columns so we can
	// watch it disappear.
	oldCol, victim := seedKeyIndex(t, l, ds)
	old := l.Table(victim)
	oldIdx := -1
	for i, tb := range tabs {
		if tb == old {
			oldIdx = i
		}
	}

	// Replacement: same name, same key column, one fewer row.
	repl := frame.New(old.Name())
	for _, c := range old.Columns() {
		keep := c.Len() - 1
		if err := repl.AddColumn(c.Take(seq(keep)).WithName(c.Name())); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.ReplaceTable(repl); err != nil {
		t.Fatal(err)
	}
	if l.KeyCache().Peek(oldCol, false) != nil {
		t.Fatal("old column's key index must be evicted")
	}
	if l.Table(old.Name()) != repl {
		t.Fatal("replacement not resident")
	}
	if l.DRGBuilds() != 1 {
		t.Fatalf("replace must patch, not rebuild: %d builds", l.DRGBuilds())
	}

	patched, err := l.DRG()
	if err != nil {
		t.Fatal(err)
	}
	newTabs := append([]*frame.Frame{}, tabs...)
	newTabs[oldIdx] = repl
	want, err := New(newTabs).DRG()
	if err != nil {
		t.Fatal(err)
	}
	requireSameDRG(t, want, patched, "replace-patch")
}

// TestDropTableRemovesEverywhere: dropping removes the node and its
// edges from warm DRGs, its entries from the LSH index, and its key
// indexes from the shared cache.
func TestDropTableRemovesEverywhere(t *testing.T) {
	ds := genDS(t)
	tabs := ds.Tables
	l := New(tabs)
	if _, err := l.DRG(); err != nil {
		t.Fatal(err)
	}
	vCol, victimName := seedKeyIndex(t, l, ds)
	victim := l.Table(victimName)

	if err := l.DropTable(victim.Name()); err != nil {
		t.Fatal(err)
	}
	if l.Table(victim.Name()) != nil || len(l.Tables()) != len(tabs)-1 {
		t.Fatal("table still resident after drop")
	}
	if l.KeyCache().Peek(vCol, false) != nil {
		t.Fatal("dropped table's key index must be evicted")
	}
	patched, err := l.DRG()
	if err != nil {
		t.Fatal(err)
	}
	if patched.HasNode(victim.Name()) {
		t.Fatal("dropped node survives in the patched DRG")
	}
	var remaining []*frame.Frame
	for _, tb := range tabs {
		if tb.Name() != victim.Name() {
			remaining = append(remaining, tb)
		}
	}
	want, err := New(remaining).DRG()
	if err != nil {
		t.Fatal(err)
	}
	requireSameDRG(t, want, patched, "drop-patch")
	if ix := l.IndexStats(); ix.Built && ix.Tables != len(remaining) {
		t.Fatalf("LSH index still tracks %d tables, want %d", ix.Tables, len(remaining))
	}
}

func TestMutationValidation(t *testing.T) {
	tabs := genTables(t)
	l := New(tabs)
	if err := l.RegisterTable(tabs[0]); !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("duplicate register: %v", err)
	}
	ghost := frame.New("ghost")
	if err := l.ReplaceTable(ghost); !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("replace of unknown table: %v", err)
	}
	if err := l.DropTable("ghost"); !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("drop of unknown table: %v", err)
	}
	if err := l.RegisterTable(nil); !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("nil register: %v", err)
	}
	if err := l.RegisterTable(frame.New("")); !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("unnamed register: %v", err)
	}
	if l.Mutations() != 0 {
		t.Fatalf("rejected mutations must not count: %d", l.Mutations())
	}

	g := graph.New()
	g.AddTable(tabs[0])
	attached := FromGraph(g)
	for _, err := range []error{
		attached.RegisterTable(frame.New("n")),
		attached.ReplaceTable(tabs[0]),
		attached.DropTable(tabs[0].Name()),
	} {
		if !errors.Is(err, errs.ErrBadInput) {
			t.Fatalf("attached lake must reject mutations: %v", err)
		}
	}
}

// TestConcurrentDiscoverAndMutation exercises the runMu discipline
// under -race: DRG readers, mutators and introspection all at once.
func TestConcurrentDiscoverAndMutation(t *testing.T) {
	tabs := genTables(t)
	l := New(tabs[:len(tabs)-1])
	spare := tabs[len(tabs)-1]
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := l.DRG(); err != nil {
					t.Error(err)
					return
				}
				_ = l.IndexStats()
				_ = l.Tables()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := l.RegisterTable(spare); err != nil {
				t.Error(err)
				return
			}
			if err := l.DropTable(spare.Name()); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	want, err := New(tabs[:len(tabs)-1]).DRG()
	if err != nil {
		t.Fatal(err)
	}
	got, err := l.DRG()
	if err != nil {
		t.Fatal(err)
	}
	requireSameDRG(t, want, got, "post-concurrency")
}

// seq returns [0, 1, ..., n-1] for Column.Take.
func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
