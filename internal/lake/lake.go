// Package lake implements the resident data-lake session behind the
// public autofeat.Lake API and the long-lived discovery service
// (internal/serve). The paper separates an offline phase (profile the
// lake, build the Dataset Relation Graph) from an online phase (answer
// one augmentation query); a one-shot CLI process pays the offline phase
// on every invocation. A Lake pays it once:
//
//   - tables are loaded from disk exactly once and stay resident, so
//     per-column memos (distinct-value sets, minhash inputs) amortise
//     across every request that touches the column;
//   - the DRG is memoised per (matcher, threshold) — or per KFK
//     constraint set — with single-flight construction, so concurrent
//     requests against the same settings share one build;
//   - one relational.KeyIndexCache is shared by every discovery run, so
//     the key→row indexes a join builds for a right-side table are
//     reused by every later request that joins against it.
//
// All methods are safe for concurrent use; a Lake is designed to serve
// many overlapping Discover calls.
package lake

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"autofeat/internal/core"
	"autofeat/internal/discovery"
	"autofeat/internal/errs"
	"autofeat/internal/frame"
	"autofeat/internal/graph"
	"autofeat/internal/ml"
	"autofeat/internal/relational"
	"autofeat/internal/telemetry"
)

// MatcherKind names a DRG construction strategy for the data-lake
// setting (schema matching, no declared constraints).
type MatcherKind string

const (
	// MatcherExact is the COMA-style composite matcher with exact
	// value-set containment — the paper's data-lake setting.
	MatcherExact MatcherKind = "exact"
	// MatcherSketched replaces exact value-set intersection with MinHash
	// sketches: constant-time column comparisons for large lakes.
	MatcherSketched MatcherKind = "sketched"
)

// DefaultThreshold is the paper's matcher threshold for the data-lake
// setting ("to encourage spurious, but not irrelevant, connections").
const DefaultThreshold = 0.55

// settings is the resolved DRG-construction configuration of a Lake (or
// of one DRG call overriding the Lake's defaults).
type settings struct {
	matcher   MatcherKind
	threshold float64
	kfks      []discovery.KFK
}

// key is the DRG memo key: two settings with equal keys build the same
// graph.
func (s settings) key() string {
	if len(s.kfks) > 0 {
		parts := make([]string, len(s.kfks))
		for i, k := range s.kfks {
			parts[i] = k.ParentTable + "." + k.ParentCol + "=" + k.ChildTable + "." + k.ChildCol
		}
		sort.Strings(parts)
		return "kfk|" + strings.Join(parts, ";")
	}
	return fmt.Sprintf("%s|%.6f", s.matcher, s.threshold)
}

// Option configures a Lake at open time, or overrides its defaults for
// one DRG build / Discover call.
type Option func(*settings)

// WithMatcher selects the schema-matching strategy used to build DRGs
// (MatcherExact by default).
func WithMatcher(kind MatcherKind) Option {
	return func(s *settings) { s.matcher = kind }
}

// WithThreshold sets the matcher threshold above which a column
// correspondence becomes a DRG edge (DefaultThreshold by default).
func WithThreshold(t float64) Option {
	return func(s *settings) { s.threshold = t }
}

// WithKFKs switches DRG construction to the curated benchmark setting:
// only the declared key–foreign-key constraints become (weight-1) edges
// and the matcher settings are ignored. An empty slice restores the
// matcher path.
func WithKFKs(constraints []discovery.KFK) Option {
	return func(s *settings) { s.kfks = constraints }
}

// graphEntry is one memoised DRG with single-flight construction.
type graphEntry struct {
	once sync.Once
	g    *graph.Graph
	err  error
}

// Lake is a resident data-lake session: tables loaded once, DRGs
// memoised per setting, and one shared join-key index cache reused by
// every discovery run against it.
type Lake struct {
	dir    string
	def    settings
	tables []*frame.Frame
	byName map[string]*frame.Frame
	cache  *relational.KeyIndexCache

	// attached, when non-nil, pins every DRG call to one externally
	// built graph (the FromGraph compatibility path).
	attached *graph.Graph

	mu     sync.Mutex
	graphs map[string]*graphEntry
}

// defaultSettings returns the Lake defaults before options are applied.
func defaultSettings() settings {
	return settings{matcher: MatcherExact, threshold: DefaultThreshold}
}

// New wraps already-loaded tables as a Lake. The table order is
// preserved; later tables shadow earlier ones under the same name.
func New(tables []*frame.Frame, opts ...Option) *Lake {
	def := defaultSettings()
	for _, o := range opts {
		o(&def)
	}
	l := &Lake{
		def:    def,
		tables: tables,
		byName: make(map[string]*frame.Frame, len(tables)),
		cache:  relational.NewKeyIndexCache(),
		graphs: make(map[string]*graphEntry),
	}
	for _, t := range tables {
		l.byName[t.Name()] = t
	}
	return l
}

// Open loads every *.csv in dir (sorted by name) as the Lake's resident
// tables. A directory without CSV files is an error; a file that fails
// to parse aborts with an errs.ErrBadInput-matching error naming it.
func Open(dir string, opts ...Option) (*Lake, error) {
	paths, err := csvPaths(dir)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("autofeat: no CSV files in %q", dir)
	}
	tables := make([]*frame.Frame, 0, len(paths))
	for _, p := range paths {
		t, err := frame.ReadCSVFile(p)
		if err != nil {
			return nil, errs.BadInput("autofeat: read %q: %w", p, err)
		}
		tables = append(tables, t)
	}
	l := New(tables, opts...)
	l.dir = dir
	return l, nil
}

// OpenLenient loads every *.csv in dir like Open but skips files that
// fail to parse instead of aborting the whole lake; each skipped file is
// reported as an errs.ErrBadInput-matching error. With every file
// corrupt the Lake has no tables and errors holds one entry per file.
func OpenLenient(dir string, opts ...Option) (l *Lake, errors []error) {
	paths, derr := csvPaths(dir)
	if derr != nil {
		return nil, []error{errs.BadInput("autofeat: read dir %q: %w", dir, derr)}
	}
	var tables []*frame.Frame
	for _, p := range paths {
		t, rerr := frame.ReadCSVFile(p)
		if rerr != nil {
			errors = append(errors, errs.BadInput("autofeat: read %q: %w", p, rerr))
			continue
		}
		tables = append(tables, t)
	}
	l = New(tables, opts...)
	l.dir = dir
	return l, errors
}

// csvPaths lists dir's *.csv files sorted by name.
func csvPaths(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".csv") {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// FromGraph wraps an externally constructed DRG as a Lake session: the
// graph's tables become the resident tables and every DRG call returns
// the attached graph unchanged. It is the bridge under the deprecated
// NewDiscovery wrapper, giving legacy callers the shared key-index cache
// without changing how their graph was built.
func FromGraph(g *graph.Graph) *Lake {
	nodes := g.Nodes()
	tables := make([]*frame.Frame, 0, len(nodes))
	for _, n := range nodes {
		if t := g.Table(n); t != nil {
			tables = append(tables, t)
		}
	}
	l := New(tables)
	l.attached = g
	return l
}

// Dir returns the directory the Lake was opened from ("" for in-memory
// lakes).
func (l *Lake) Dir() string { return l.dir }

// Tables returns the resident tables in load order. The slice is shared;
// treat it as read-only.
func (l *Lake) Tables() []*frame.Frame { return l.tables }

// Table returns the resident table with the given name, or nil.
func (l *Lake) Table(name string) *frame.Frame { return l.byName[name] }

// KeyCache returns the Lake's shared join-key index cache — the one
// every discovery run against this Lake reuses.
func (l *Lake) KeyCache() *relational.KeyIndexCache { return l.cache }

// CacheStats reports the shared key-index cache's cumulative hits and
// misses. A warm lake shows hits rising run over run.
func (l *Lake) CacheStats() (hits, misses int64) { return l.cache.Stats() }

// CacheSize reports how many join-key indexes are resident in the
// shared cache — the per-lake cache-size gauge the service exports.
func (l *Lake) CacheSize() int { return l.cache.Len() }

// GraphMemoLen reports how many DRG variants the Lake has memoised
// (one per distinct matcher/threshold/KFK setting requested so far).
func (l *Lake) GraphMemoLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.graphs)
}

// resolve merges the Lake defaults with per-call options.
func (l *Lake) resolve(opts []Option) settings {
	eff := l.def
	for _, o := range opts {
		o(&eff)
	}
	return eff
}

// DRG returns the Dataset Relation Graph for the Lake's settings,
// optionally overridden per call. Graphs are memoised per setting with
// single-flight construction: concurrent callers under the same
// settings share one build, and later callers get the cached graph.
func (l *Lake) DRG(opts ...Option) (*graph.Graph, error) {
	g, _, err := l.drg(l.resolve(opts))
	return g, err
}

// drg returns the memoised graph for eff, reporting whether it was
// already warm (present before this call).
func (l *Lake) drg(eff settings) (g *graph.Graph, warm bool, err error) {
	if l.attached != nil {
		return l.attached, true, nil
	}
	key := eff.key()
	l.mu.Lock()
	e, ok := l.graphs[key]
	if !ok {
		e = &graphEntry{}
		l.graphs[key] = e
	}
	l.mu.Unlock()
	e.once.Do(func() { e.g, e.err = l.build(eff) })
	return e.g, ok, e.err
}

// build constructs one DRG from the resolved settings.
func (l *Lake) build(eff settings) (*graph.Graph, error) {
	if len(eff.kfks) > 0 {
		return discovery.BuildBenchmarkDRG(l.tables, eff.kfks)
	}
	switch eff.matcher {
	case MatcherSketched:
		return discovery.DiscoverDRGSketched(l.tables, eff.threshold)
	case MatcherExact, "":
		return discovery.DiscoverDRG(l.tables, eff.threshold, nil)
	default:
		return nil, errs.BadInput("autofeat: unknown matcher %q (supported: %s, %s)",
			eff.matcher, MatcherExact, MatcherSketched)
	}
}

// NewDiscovery prepares a core discovery run over the Lake's DRG (built
// or reused under the given options), wiring in the shared key-index
// cache. It is the session-aware equivalent of the deprecated
// package-level NewDiscovery.
func (l *Lake) NewDiscovery(base, label string, cfg core.Config, opts ...Option) (*core.Discovery, error) {
	g, _, err := l.drg(l.resolve(opts))
	if err != nil {
		return nil, err
	}
	return l.discoveryOn(g, base, label, cfg)
}

// discoveryOn builds a core.Discovery over g with the Lake's shared
// cache injected (unless the caller supplied its own).
func (l *Lake) discoveryOn(g *graph.Graph, base, label string, cfg core.Config) (*core.Discovery, error) {
	if cfg.KeyCache == nil {
		cfg.KeyCache = l.cache
	}
	return core.New(g, base, label, cfg)
}

// Request describes one discovery run against a Lake — the unit of work
// the long-lived service schedules. The zero value of every optional
// field means "use the default".
type Request struct {
	// Base names the base table node; Label the label column inside it.
	Base  string
	Label string
	// Model, when non-empty, names the model trained on the top-k ranked
	// paths ("lightgbm", "xgboost", ...). Empty skips model training and
	// returns the ranking alone.
	Model string
	// Matcher overrides the Lake's DRG matcher for this request ("" =
	// lake default). Ignored when KFKs were configured on the Lake.
	Matcher MatcherKind
	// Threshold overrides the matcher threshold (0 = lake default).
	Threshold float64
	// Config overrides the discovery hyper-parameters; nil uses
	// core.DefaultConfig(). Telemetry, Progress, Logger, budgets and
	// Workers all pass through.
	Config *core.Config
}

// Result is the outcome of one Lake.Discover call.
type Result struct {
	// Ranking is the discovery output (always present).
	Ranking *core.Ranking
	// Augment is the model-evaluation outcome; nil when Request.Model
	// was empty.
	Augment *core.AugmentResult
	// Manifest is the run's provenance record, with evaluation records
	// attached when a model ran.
	Manifest *core.Manifest
	// GraphNodes and GraphEdges describe the DRG the run used.
	GraphNodes, GraphEdges int
	// WarmGraph reports that the DRG was served from the Lake's memo
	// instead of being built for this request — the offline phase was
	// skipped entirely.
	WarmGraph bool
	// CacheHits and CacheMisses are the Lake-wide cumulative key-index
	// cache counters after this run.
	CacheHits, CacheMisses int64
}

// Discover runs one feature-discovery request against the Lake: DRG
// (memoised), BFS ranking, provenance manifest, and — when a model is
// named — top-k evaluation. ctx cancellation degrades to a Partial
// ranking exactly as in Discovery.RunContext; it does not error.
func (l *Lake) Discover(ctx context.Context, req Request) (*Result, error) {
	var opts []Option
	if req.Matcher != "" {
		opts = append(opts, WithMatcher(req.Matcher))
	}
	if req.Threshold > 0 {
		opts = append(opts, WithThreshold(req.Threshold))
	}
	g, warm, err := l.drg(l.resolve(opts))
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	if req.Config != nil {
		cfg = *req.Config
	}
	var factory ml.Factory
	if req.Model != "" {
		f, ok := ml.FactoryByName(req.Model)
		if !ok {
			return nil, errs.BadInput("autofeat: unknown model %q", req.Model)
		}
		factory = f
	}
	d, err := l.discoveryOn(g, req.Base, req.Label, cfg)
	if err != nil {
		return nil, err
	}
	ranking, err := d.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Ranking:    ranking,
		GraphNodes: g.NumNodes(),
		GraphEdges: g.NumEdges(),
		WarmGraph:  warm,
	}
	res.Manifest = d.Manifest(ranking)
	if sc, ok := telemetry.SpanContextFrom(ctx); ok {
		// Stamp the request's trace identity into the provenance record
		// for log<->trace<->manifest correlation; untraced runs leave the
		// field absent, keeping cold manifests bit-identical.
		res.Manifest.TraceID = sc.Trace.String()
	}
	if req.Model != "" {
		aug, err := d.EvaluateRankingContext(ctx, ranking, factory)
		if err != nil {
			return nil, err
		}
		res.Augment = aug
		res.Manifest.AttachEvaluation(aug)
	}
	res.CacheHits, res.CacheMisses = l.cache.Stats()
	return res, nil
}
