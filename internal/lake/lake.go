// Package lake implements the resident data-lake session behind the
// public autofeat.Lake API and the long-lived discovery service
// (internal/serve). The paper separates an offline phase (profile the
// lake, build the Dataset Relation Graph) from an online phase (answer
// one augmentation query); a one-shot CLI process pays the offline phase
// on every invocation. A Lake pays it once:
//
//   - tables are loaded from disk exactly once and stay resident, so
//     per-column memos (distinct-value sets, minhash inputs) amortise
//     across every request that touches the column;
//   - the DRG is memoised per (matcher, threshold) — or per KFK
//     constraint set — with single-flight construction, so concurrent
//     requests against the same settings share one build;
//   - one relational.KeyIndexCache is shared by every discovery run, so
//     the key→row indexes a join builds for a right-side table are
//     reused by every later request that joins against it;
//   - a lazily built discovery.LSHIndex serves matcher-path DRG builds
//     in near-linear time and is maintained incrementally by the
//     mutation API (RegisterTable / ReplaceTable / DropTable), which
//     patches memoised DRGs and invalidates exactly the caches the
//     mutated table touched instead of flushing everything.
//
// All methods are safe for concurrent use; a Lake is designed to serve
// many overlapping Discover calls, with mutations serialised against
// in-flight DRG builds by a read-write lock.
package lake

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"autofeat/internal/core"
	"autofeat/internal/discovery"
	"autofeat/internal/errs"
	"autofeat/internal/frame"
	"autofeat/internal/graph"
	"autofeat/internal/ml"
	"autofeat/internal/relational"
	"autofeat/internal/telemetry"
)

// MatcherKind names a DRG construction strategy for the data-lake
// setting (schema matching, no declared constraints).
type MatcherKind string

const (
	// MatcherExact is the COMA-style composite matcher with exact
	// value-set containment — the paper's data-lake setting.
	MatcherExact MatcherKind = "exact"
	// MatcherSketched replaces exact value-set intersection with MinHash
	// sketches: constant-time column comparisons for large lakes.
	MatcherSketched MatcherKind = "sketched"
)

// DefaultThreshold is the paper's matcher threshold for the data-lake
// setting ("to encourage spurious, but not irrelevant, connections").
const DefaultThreshold = 0.55

// Format selects the on-disk table format a lake directory is opened
// with.
type Format string

// Supported lake formats.
const (
	// FormatAuto detects per table: a directory may mix *.csv and *.afc
	// files, and a packed (columnar) table shadows a CSV table of the
	// same name.
	FormatAuto Format = "auto"
	// FormatCSV reads only *.csv files — the legacy text path.
	FormatCSV Format = "csv"
	// FormatColumnar reads only *.afc files (see Pack and the format
	// specification in DESIGN.md §14).
	FormatColumnar Format = "columnar"
)

// settings is the resolved DRG-construction configuration of a Lake (or
// of one DRG call overriding the Lake's defaults). format participates
// only at open time; it is deliberately excluded from the DRG memo key
// because the storage backend never changes discovery results, only how
// fast the tables load.
type settings struct {
	matcher   MatcherKind
	threshold float64
	kfks      []discovery.KFK
	format    Format
}

// key is the DRG memo key: two settings with equal keys build the same
// graph.
func (s settings) key() string {
	if len(s.kfks) > 0 {
		parts := make([]string, len(s.kfks))
		for i, k := range s.kfks {
			parts[i] = k.ParentTable + "." + k.ParentCol + "=" + k.ChildTable + "." + k.ChildCol
		}
		sort.Strings(parts)
		return "kfk|" + strings.Join(parts, ";")
	}
	return fmt.Sprintf("%s|%.6f", s.matcher, s.threshold)
}

// Option configures a Lake at open time, or overrides its defaults for
// one DRG build / Discover call.
type Option func(*settings)

// WithMatcher selects the schema-matching strategy used to build DRGs
// (MatcherExact by default).
func WithMatcher(kind MatcherKind) Option {
	return func(s *settings) { s.matcher = kind }
}

// WithThreshold sets the matcher threshold above which a column
// correspondence becomes a DRG edge (DefaultThreshold by default).
func WithThreshold(t float64) Option {
	return func(s *settings) { s.threshold = t }
}

// WithKFKs switches DRG construction to the curated benchmark setting:
// only the declared key–foreign-key constraints become (weight-1) edges
// and the matcher settings are ignored. An empty slice restores the
// matcher path.
func WithKFKs(constraints []discovery.KFK) Option {
	return func(s *settings) { s.kfks = constraints }
}

// WithFormat selects the table format Open reads (FormatAuto by
// default: columnar files shadow CSV files of the same table name).
func WithFormat(f Format) Option {
	return func(s *settings) { s.format = f }
}

// graphEntry is one memoised DRG with single-flight construction. eff
// records the settings it was built under so the mutation path can
// re-verify candidate edges with the same scorer and threshold; done
// flips once the build completed, distinguishing patchable entries from
// ones that will simply build against the post-mutation tables.
type graphEntry struct {
	once sync.Once
	eff  settings
	g    *graph.Graph
	err  error
	done atomic.Bool
}

// Lake is a resident data-lake session: tables loaded once, DRGs
// memoised per setting, and one shared join-key index cache reused by
// every discovery run against it.
type Lake struct {
	dir    string
	def    settings
	tables []*frame.Frame
	byName map[string]*frame.Frame
	cache  *relational.KeyIndexCache

	// em and sm are the lake-lifetime scorers: sharing one SketchMatcher
	// across builds lets its sketch memo (and the LSH index that borrows
	// it) amortise over every request, and gives the mutation path one
	// place to evict stale sketches.
	em *discovery.Matcher
	sm *discovery.SketchMatcher

	// attached, when non-nil, pins every DRG call to one externally
	// built graph (the FromGraph compatibility path). Attached lakes
	// reject mutation.
	attached *graph.Graph

	// runMu orders DRG resolution (read side) against table mutation
	// (write side): every memoised entry is fully built or untouched
	// whenever a mutation holds the write lock. tables/byName/idx are
	// replaced, never mutated in place, so readers that already hold a
	// snapshot stay consistent.
	runMu sync.RWMutex

	// idxMu guards the lazy first build of idx under the read lock;
	// mutations access idx under the write lock (which excludes builds
	// entirely). Lock order: runMu before idxMu.
	idxMu sync.Mutex
	idx   *discovery.LSHIndex

	builds    atomic.Int64 // full DRG builds (not patches)
	mutations atomic.Int64 // RegisterTable/ReplaceTable/DropTable calls

	mu     sync.Mutex
	graphs map[string]*graphEntry
}

// defaultSettings returns the Lake defaults before options are applied.
func defaultSettings() settings {
	return settings{matcher: MatcherExact, threshold: DefaultThreshold}
}

// New wraps already-loaded tables as a Lake. The table order is
// preserved; later tables shadow earlier ones under the same name.
func New(tables []*frame.Frame, opts ...Option) *Lake {
	def := defaultSettings()
	for _, o := range opts {
		o(&def)
	}
	l := &Lake{
		def:    def,
		tables: tables,
		byName: make(map[string]*frame.Frame, len(tables)),
		cache:  relational.NewKeyIndexCache(),
		em:     discovery.NewMatcher(),
		sm:     discovery.NewSketchMatcher(),
		graphs: make(map[string]*graphEntry),
	}
	for _, t := range tables {
		l.byName[t.Name()] = t
	}
	return l
}

// Open loads every table file in dir (sorted by table name) as the
// Lake's resident tables. The default FormatAuto reads both *.csv and
// columnar *.afc files, a columnar file shadowing a CSV table of the
// same name; WithFormat pins one format. A directory without table
// files is an error; a file that fails to parse aborts with an
// errs.ErrBadInput-matching error naming it.
func Open(dir string, opts ...Option) (*Lake, error) {
	def := defaultSettings()
	for _, o := range opts {
		o(&def)
	}
	paths, err := lakePaths(dir, def.format)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("autofeat: no %s table files in %q", formatNoun(def.format), dir)
	}
	tables := make([]*frame.Frame, 0, len(paths))
	for _, p := range paths {
		t, err := readTableFile(p)
		if err != nil {
			return nil, errs.BadInput("autofeat: read %q: %w", p, err)
		}
		tables = append(tables, t)
	}
	l := New(tables, opts...)
	l.dir = dir
	return l, nil
}

// OpenLenient loads dir like Open but skips files that fail to parse
// instead of aborting the whole lake; each skipped file is reported as
// an errs.ErrBadInput-matching error. With every file corrupt the Lake
// has no tables and errors holds one entry per file.
func OpenLenient(dir string, opts ...Option) (l *Lake, errors []error) {
	def := defaultSettings()
	for _, o := range opts {
		o(&def)
	}
	paths, derr := lakePaths(dir, def.format)
	if derr != nil {
		return nil, []error{errs.BadInput("autofeat: read dir %q: %w", dir, derr)}
	}
	var tables []*frame.Frame
	for _, p := range paths {
		t, rerr := readTableFile(p)
		if rerr != nil {
			errors = append(errors, errs.BadInput("autofeat: read %q: %w", p, rerr))
			continue
		}
		tables = append(tables, t)
	}
	l = New(tables, opts...)
	l.dir = dir
	return l, errors
}

// formatNoun names a format in error messages.
func formatNoun(f Format) string {
	switch f {
	case FormatCSV:
		return "CSV"
	case FormatColumnar:
		return "columnar"
	default:
		return "CSV or columnar"
	}
}

// readTableFile loads one table, dispatching on extension.
func readTableFile(path string) (*frame.Frame, error) {
	if strings.HasSuffix(path, frame.FormatExt) {
		return frame.ReadColumnarFile(path)
	}
	return frame.ReadCSVFile(path)
}

// lakePaths lists dir's table files for the given format, sorted by
// table name. Under FormatAuto a columnar file wins over a CSV file of
// the same basename, so a packed lake keeps working with its source
// CSVs still present.
func lakePaths(dir string, format Format) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	wantCSV := format == FormatAuto || format == FormatCSV || format == ""
	wantColr := format == FormatAuto || format == FormatColumnar || format == ""
	if !wantCSV && !wantColr {
		return nil, errs.BadInput("autofeat: unknown lake format %q (supported: %s, %s, %s)",
			format, FormatAuto, FormatCSV, FormatColumnar)
	}
	byTable := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch {
		case wantColr && strings.HasSuffix(name, frame.FormatExt):
			table := strings.TrimSuffix(name, frame.FormatExt)
			byTable[table] = filepath.Join(dir, name)
		case wantCSV && strings.HasSuffix(name, ".csv"):
			table := strings.TrimSuffix(name, ".csv")
			if _, packed := byTable[table]; !packed {
				byTable[table] = filepath.Join(dir, name)
			}
		}
	}
	tables := make([]string, 0, len(byTable))
	for t := range byTable {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	paths := make([]string, len(tables))
	for i, t := range tables {
		paths[i] = byTable[t]
	}
	return paths, nil
}

// Pack converts a CSV lake directory in place: every *.csv table is
// rewritten as a columnar *.afc file (atomically, tmp+rename) alongside
// it. The source CSVs are left untouched — FormatAuto prefers the packed
// file, so the directory serves columnar immediately while remaining
// usable as a CSV lake via WithFormat(FormatCSV). Tables that already
// have a columnar file are re-packed from CSV. Returns the number of
// tables packed.
func Pack(dir string) (int, error) {
	paths, err := lakePaths(dir, FormatCSV)
	if err != nil {
		return 0, err
	}
	if len(paths) == 0 {
		return 0, fmt.Errorf("autofeat: no CSV files to pack in %q", dir)
	}
	w := frame.NewWriter(dir)
	for i, p := range paths {
		t, err := frame.ReadCSVFile(p)
		if err != nil {
			return i, errs.BadInput("autofeat: pack %q: %w", p, err)
		}
		if _, err := w.Put(t); err != nil {
			return i, fmt.Errorf("autofeat: pack %q: %w", p, err)
		}
	}
	return len(paths), nil
}

// FromGraph wraps an externally constructed DRG as a Lake session: the
// graph's tables become the resident tables and every DRG call returns
// the attached graph unchanged. It is the bridge under the deprecated
// NewDiscovery wrapper, giving legacy callers the shared key-index cache
// without changing how their graph was built.
func FromGraph(g *graph.Graph) *Lake {
	nodes := g.Nodes()
	tables := make([]*frame.Frame, 0, len(nodes))
	for _, n := range nodes {
		if t := g.Table(n); t != nil {
			tables = append(tables, t)
		}
	}
	l := New(tables)
	l.attached = g
	return l
}

// Dir returns the directory the Lake was opened from ("" for in-memory
// lakes).
func (l *Lake) Dir() string { return l.dir }

// Tables returns the resident tables in load order. The slice is shared;
// treat it as read-only (mutations replace it, they never write into it).
func (l *Lake) Tables() []*frame.Frame {
	l.runMu.RLock()
	defer l.runMu.RUnlock()
	return l.tables
}

// Table returns the resident table with the given name, or nil.
func (l *Lake) Table(name string) *frame.Frame {
	l.runMu.RLock()
	defer l.runMu.RUnlock()
	return l.byName[name]
}

// KeyCache returns the Lake's shared join-key index cache — the one
// every discovery run against this Lake reuses.
func (l *Lake) KeyCache() *relational.KeyIndexCache { return l.cache }

// CacheStats reports the shared key-index cache's cumulative hits and
// misses. A warm lake shows hits rising run over run.
func (l *Lake) CacheStats() (hits, misses int64) { return l.cache.Stats() }

// CacheSize reports how many join-key indexes are resident in the
// shared cache — the per-lake cache-size gauge the service exports.
func (l *Lake) CacheSize() int { return l.cache.Len() }

// GraphMemoLen reports how many DRG variants the Lake has memoised
// (one per distinct matcher/threshold/KFK setting requested so far).
func (l *Lake) GraphMemoLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.graphs)
}

// resolve merges the Lake defaults with per-call options.
func (l *Lake) resolve(opts []Option) settings {
	eff := l.def
	for _, o := range opts {
		o(&eff)
	}
	return eff
}

// DRG returns the Dataset Relation Graph for the Lake's settings,
// optionally overridden per call. Graphs are memoised per setting with
// single-flight construction: concurrent callers under the same
// settings share one build, and later callers get the cached graph.
func (l *Lake) DRG(opts ...Option) (*graph.Graph, error) {
	g, _, err := l.drg(l.resolve(opts))
	return g, err
}

// drg returns the memoised graph for eff, reporting whether it was
// already warm (present before this call). The whole resolution —
// entry lookup, single-flight build, result read — runs under the read
// half of runMu, so a mutation holding the write lock is guaranteed
// that every memoised entry is either fully built (patchable) or has no
// builder in flight (it will build against the mutated tables).
func (l *Lake) drg(eff settings) (g *graph.Graph, warm bool, err error) {
	if l.attached != nil {
		return l.attached, true, nil
	}
	l.runMu.RLock()
	defer l.runMu.RUnlock()
	key := eff.key()
	l.mu.Lock()
	e, ok := l.graphs[key]
	if !ok {
		e = &graphEntry{eff: eff}
		l.graphs[key] = e
	}
	l.mu.Unlock()
	e.once.Do(func() {
		e.g, e.err = l.build(eff)
		e.done.Store(true)
	})
	return e.g, ok, e.err
}

// build constructs one DRG from the resolved settings. Matcher-path
// builds go through the lake's LSH index whenever the banding
// derivation covers the scorer at the requested threshold; otherwise
// they fall back to the quadratic reference path. Callers hold the read
// half of runMu.
func (l *Lake) build(eff settings) (*graph.Graph, error) {
	l.builds.Add(1)
	if len(eff.kfks) > 0 {
		return discovery.BuildBenchmarkDRG(l.tables, eff.kfks)
	}
	scorer, err := l.scorerFor(eff.matcher)
	if err != nil {
		return nil, err
	}
	idx := l.ensureIndex()
	if idx.CoversScorer(eff.threshold, scorer) {
		return discovery.DiscoverDRGIndexed(l.tables, eff.threshold, scorer, idx)
	}
	return discovery.DiscoverDRGQuadratic(l.tables, eff.threshold, scorer)
}

// scorerFor maps a matcher kind to the lake-lifetime scorer instance.
func (l *Lake) scorerFor(kind MatcherKind) (discovery.Scorer, error) {
	switch kind {
	case MatcherSketched:
		return l.sm, nil
	case MatcherExact, "":
		return l.em, nil
	default:
		return nil, errs.BadInput("autofeat: unknown matcher %q (supported: %s, %s)",
			kind, MatcherExact, MatcherSketched)
	}
}

// ensureIndex lazily builds the lake's LSH index over the current
// tables, sharing the sketched matcher's signature memo. Callers hold
// at least the read half of runMu; idxMu serialises the first build so
// concurrent DRG requests don't index the lake twice.
func (l *Lake) ensureIndex() *discovery.LSHIndex {
	l.idxMu.Lock()
	defer l.idxMu.Unlock()
	if l.idx == nil {
		idx := discovery.NewLSHIndex(0, -1)
		idx.Sketcher = l.sm.SketchOf
		for _, t := range l.tables {
			idx.Add(t)
		}
		l.idx = idx
	}
	return l.idx
}

// DRGBuilds reports how many full DRG constructions the lake has run.
// Incremental mutation patches memoised graphs without rebuilding, so
// this counter staying flat across a mutation is the observable proof
// that memo entries were preserved (asserted by the cache-identity
// test).
func (l *Lake) DRGBuilds() int64 { return l.builds.Load() }

// Mutations reports how many table mutations (register, replace, drop)
// the lake has applied.
func (l *Lake) Mutations() int64 { return l.mutations.Load() }

// IndexStats describes the lake's LSH index for introspection. Built is
// false until the first matcher-path DRG build (the index is lazy).
type IndexStats struct {
	Built bool
	discovery.IndexStats
}

// IndexStats reports the current shape of the lake's LSH index.
func (l *Lake) IndexStats() IndexStats {
	l.runMu.RLock()
	defer l.runMu.RUnlock()
	l.idxMu.Lock()
	defer l.idxMu.Unlock()
	if l.idx == nil {
		return IndexStats{}
	}
	return IndexStats{Built: true, IndexStats: l.idx.Stats()}
}

// RegisterTable adds a new table to the resident lake: the LSH index
// gains only the new table's entries and every memoised DRG is patched
// in place — the new node plus its verified candidate edges — without
// rebuilding, so unrelated memo entries and every KeyIndexCache entry
// survive untouched.
func (l *Lake) RegisterTable(f *frame.Frame) error {
	if err := l.checkMutable(f, true); err != nil {
		return err
	}
	l.runMu.Lock()
	defer l.runMu.Unlock()
	if _, ok := l.byName[f.Name()]; ok {
		return errs.BadInput("autofeat: table %q already registered (use ReplaceTable)", f.Name())
	}
	l.setTables(appendTable(l.tables, f))
	if l.idx != nil {
		l.idx.Add(f)
	}
	l.patchGraphs(func(e *graphEntry) (*graph.Graph, error) {
		ng := e.g.Clone()
		ng.AddTable(f)
		if err := l.patchEdges(ng, f, e.eff); err != nil {
			return nil, err
		}
		return ng, nil
	})
	l.mutations.Add(1)
	return nil
}

// ReplaceTable swaps the resident table with the same name for f. The
// old table's sketches, LSH entries and memoised join-key indexes are
// evicted (stale data must never score or join again); every memoised
// DRG is patched: the old node's edges go, the new node's verified
// candidate edges come in.
func (l *Lake) ReplaceTable(f *frame.Frame) error {
	if err := l.checkMutable(f, true); err != nil {
		return err
	}
	l.runMu.Lock()
	defer l.runMu.Unlock()
	old, ok := l.byName[f.Name()]
	if !ok {
		return errs.BadInput("autofeat: table %q not registered (use RegisterTable)", f.Name())
	}
	tables := make([]*frame.Frame, len(l.tables))
	for i, t := range l.tables {
		if t == old {
			tables[i] = f
		} else {
			tables[i] = t
		}
	}
	l.setTables(tables)
	l.evict(old)
	if l.idx != nil {
		l.idx.Remove(old.Name())
		l.idx.Add(f)
	}
	l.patchGraphs(func(e *graphEntry) (*graph.Graph, error) {
		ng := e.g.Clone()
		ng.RemoveTable(old.Name())
		ng.AddTable(f)
		if err := l.patchEdges(ng, f, e.eff); err != nil {
			return nil, err
		}
		return ng, nil
	})
	l.mutations.Add(1)
	return nil
}

// DropTable removes the named table from the resident lake, its entries
// from the LSH index and the sketch memo, its join-key indexes from the
// shared cache, and its node (with all incident edges) from every
// memoised DRG.
func (l *Lake) DropTable(name string) error {
	if err := l.checkMutable(nil, false); err != nil {
		return err
	}
	l.runMu.Lock()
	defer l.runMu.Unlock()
	old, ok := l.byName[name]
	if !ok {
		return errs.BadInput("autofeat: table %q not registered", name)
	}
	tables := make([]*frame.Frame, 0, len(l.tables)-1)
	for _, t := range l.tables {
		if t != old {
			tables = append(tables, t)
		}
	}
	l.setTables(tables)
	delete(l.byName, name)
	l.evict(old)
	if l.idx != nil {
		l.idx.Remove(name)
	}
	l.patchGraphs(func(e *graphEntry) (*graph.Graph, error) {
		ng := e.g.Clone()
		ng.RemoveTable(name)
		return ng, nil
	})
	l.mutations.Add(1)
	return nil
}

// checkMutable rejects mutations that can never be applied: attached
// (FromGraph) lakes pin an externally built graph, and a table mutation
// needs a named frame.
func (l *Lake) checkMutable(f *frame.Frame, needFrame bool) error {
	if l.attached != nil {
		return errs.BadInput("autofeat: lake is attached to an external graph and cannot be mutated")
	}
	if needFrame && (f == nil || f.Name() == "") {
		return errs.BadInput("autofeat: mutation requires a named table")
	}
	return nil
}

// setTables installs the new table slice and rebuilds byName around it.
// Callers hold the write half of runMu.
func (l *Lake) setTables(tables []*frame.Frame) {
	l.tables = tables
	byName := make(map[string]*frame.Frame, len(tables))
	for _, t := range tables {
		byName[t.Name()] = t
	}
	l.byName = byName
}

func appendTable(tables []*frame.Frame, f *frame.Frame) []*frame.Frame {
	out := make([]*frame.Frame, len(tables)+1)
	copy(out, tables)
	out[len(tables)] = f
	return out
}

// evict invalidates exactly the caches that referenced the outgoing
// table: its memoised sketches and its join-key indexes. Nothing keyed
// by any other column is touched.
func (l *Lake) evict(old *frame.Frame) {
	cols := old.Columns()
	l.sm.Evict(cols)
	l.cache.InvalidateColumns(cols)
}

// patchGraphs applies patch to every fully built memoised DRG. Entries
// whose build never completed are left alone — with the write lock held
// no builder is in flight, so they will build against the mutated
// tables when next requested. Entries that previously failed are reset
// so the next request retries against the new tables. The patched graph
// replaces the entry's graph; the old graph object is never mutated, so
// requests that already hold it keep a consistent snapshot.
func (l *Lake) patchGraphs(patch func(*graphEntry) (*graph.Graph, error)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for key, e := range l.graphs {
		if !e.done.Load() {
			continue
		}
		if e.err != nil {
			l.graphs[key] = &graphEntry{eff: e.eff}
			continue
		}
		if len(e.eff.kfks) > 0 {
			// KFK graphs carry no discovered edges; rebuilding from the
			// declared constraints is as cheap as patching and handles
			// constraints that reference the mutated table.
			ne := &graphEntry{eff: e.eff}
			ne.g, ne.err = discovery.BuildBenchmarkDRG(l.tables, e.eff.kfks)
			ne.once.Do(func() {})
			ne.done.Store(true)
			l.graphs[key] = ne
			continue
		}
		ng, err := patch(e)
		ne := &graphEntry{eff: e.eff, g: ng, err: err}
		ne.once.Do(func() {})
		ne.done.Store(true)
		l.graphs[key] = ne
	}
}

// patchEdges adds every above-threshold edge between the newly
// installed table f and the rest of the lake to g, scored by the
// entry's own matcher and threshold. When the LSH index covers the
// scorer the candidates come from the index (cost proportional to f's
// bucket occupancy); otherwise f is scored against every other table's
// candidate columns — still linear in the lake, never quadratic.
// Callers hold the write half of runMu.
func (l *Lake) patchEdges(g *graph.Graph, f *frame.Frame, eff settings) error {
	scorer, err := l.scorerFor(eff.matcher)
	if err != nil {
		return err
	}
	addEdge := func(other string, co, cf *frame.Column) error {
		score := scorer.MatchColumns(co, cf)
		if score < eff.threshold {
			return nil
		}
		return g.AddEdge(graph.Edge{
			A: other, ColA: co.Name(),
			B: f.Name(), ColB: cf.Name(),
			Weight: score,
		})
	}
	if l.idx != nil && l.idx.Has(f.Name()) && l.idx.CoversScorer(eff.threshold, scorer) {
		for _, p := range l.idx.Candidates(f.Name()) {
			// Orient the pair so the pre-existing table is the A side.
			other, co, cf := p.TableA, p.ColA, p.ColB
			if other == f.Name() {
				other, co, cf = p.TableB, p.ColB, p.ColA
			}
			if other == f.Name() || !g.HasNode(other) {
				continue
			}
			if err := addEdge(other, co, cf); err != nil {
				return err
			}
		}
		return nil
	}
	for _, t := range l.tables {
		if t.Name() == f.Name() || !g.HasNode(t.Name()) {
			continue
		}
		for _, co := range t.Columns() {
			for _, cf := range f.Columns() {
				if err := addEdge(t.Name(), co, cf); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// NewDiscovery prepares a core discovery run over the Lake's DRG (built
// or reused under the given options), wiring in the shared key-index
// cache. It is the session-aware equivalent of the deprecated
// package-level NewDiscovery.
func (l *Lake) NewDiscovery(base, label string, cfg core.Config, opts ...Option) (*core.Discovery, error) {
	g, _, err := l.drg(l.resolve(opts))
	if err != nil {
		return nil, err
	}
	return l.discoveryOn(g, base, label, cfg)
}

// discoveryOn builds a core.Discovery over g with the Lake's shared
// cache injected (unless the caller supplied its own).
func (l *Lake) discoveryOn(g *graph.Graph, base, label string, cfg core.Config) (*core.Discovery, error) {
	if cfg.KeyCache == nil {
		cfg.KeyCache = l.cache
	}
	return core.New(g, base, label, cfg)
}

// Request describes one discovery run against a Lake — the unit of work
// the long-lived service schedules. The zero value of every optional
// field means "use the default".
type Request struct {
	// Base names the base table node; Label the label column inside it.
	Base  string
	Label string
	// Model, when non-empty, names the model trained on the top-k ranked
	// paths ("lightgbm", "xgboost", ...). Empty skips model training and
	// returns the ranking alone.
	Model string
	// Matcher overrides the Lake's DRG matcher for this request ("" =
	// lake default). Ignored when KFKs were configured on the Lake.
	Matcher MatcherKind
	// Threshold overrides the matcher threshold (0 = lake default).
	Threshold float64
	// Config overrides the discovery hyper-parameters; nil uses
	// core.DefaultConfig(). Telemetry, Progress, Logger, budgets and
	// Workers all pass through.
	Config *core.Config
}

// Result is the outcome of one Lake.Discover call.
type Result struct {
	// Ranking is the discovery output (always present).
	Ranking *core.Ranking
	// Augment is the model-evaluation outcome; nil when Request.Model
	// was empty.
	Augment *core.AugmentResult
	// Manifest is the run's provenance record, with evaluation records
	// attached when a model ran.
	Manifest *core.Manifest
	// GraphNodes and GraphEdges describe the DRG the run used.
	GraphNodes, GraphEdges int
	// WarmGraph reports that the DRG was served from the Lake's memo
	// instead of being built for this request — the offline phase was
	// skipped entirely.
	WarmGraph bool
	// CacheHits and CacheMisses are the Lake-wide cumulative key-index
	// cache counters after this run.
	CacheHits, CacheMisses int64
}

// Discover runs one feature-discovery request against the Lake: DRG
// (memoised), BFS ranking, provenance manifest, and — when a model is
// named — top-k evaluation. ctx cancellation degrades to a Partial
// ranking exactly as in Discovery.RunContext; it does not error.
func (l *Lake) Discover(ctx context.Context, req Request) (*Result, error) {
	var opts []Option
	if req.Matcher != "" {
		opts = append(opts, WithMatcher(req.Matcher))
	}
	if req.Threshold > 0 {
		opts = append(opts, WithThreshold(req.Threshold))
	}
	g, warm, err := l.drg(l.resolve(opts))
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	if req.Config != nil {
		cfg = *req.Config
	}
	var factory ml.Factory
	if req.Model != "" {
		f, ok := ml.FactoryByName(req.Model)
		if !ok {
			return nil, errs.BadInput("autofeat: unknown model %q", req.Model)
		}
		factory = f
	}
	d, err := l.discoveryOn(g, req.Base, req.Label, cfg)
	if err != nil {
		return nil, err
	}
	ranking, err := d.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Ranking:    ranking,
		GraphNodes: g.NumNodes(),
		GraphEdges: g.NumEdges(),
		WarmGraph:  warm,
	}
	res.Manifest = d.Manifest(ranking)
	if sc, ok := telemetry.SpanContextFrom(ctx); ok {
		// Stamp the request's trace identity into the provenance record
		// for log<->trace<->manifest correlation; untraced runs leave the
		// field absent, keeping cold manifests bit-identical.
		res.Manifest.TraceID = sc.Trace.String()
	}
	if req.Model != "" {
		aug, err := d.EvaluateRankingContext(ctx, ranking, factory)
		if err != nil {
			return nil, err
		}
		res.Augment = aug
		res.Manifest.AttachEvaluation(aug)
	}
	res.CacheHits, res.CacheMisses = l.cache.Stats()
	return res, nil
}
