package fselect

import (
	"math"
	"math/rand"
	"testing"

	"autofeat/internal/stats"
)

// synthCols builds a small dataset with one strongly relevant feature, one
// redundant copy of it, and one noise feature.
func synthCols(n int, seed int64) (cols [][]float64, names []string, y []int) {
	rng := rand.New(rand.NewSource(seed))
	relevant := make([]float64, n)
	redundant := make([]float64, n)
	noise := make([]float64, n)
	y = make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		y[i] = cls
		relevant[i] = float64(cls)*4 + rng.NormFloat64()*0.5
		redundant[i] = relevant[i]*2 + 1 // monotone transform: same info
		noise[i] = rng.NormFloat64()
	}
	return [][]float64{relevant, redundant, noise}, []string{"relevant", "redundant", "noise"}, y
}

func TestRelevanceMetricsRankRelevantFirst(t *testing.T) {
	cols, _, y := synthCols(400, 3)
	for _, m := range AllRelevance() {
		scores := m.Scores(cols, y)
		if len(scores) != 3 {
			t.Fatalf("%s: %d scores", m.Name(), len(scores))
		}
		if scores[0] <= scores[2] {
			t.Errorf("%s: relevant %.3f must outscore noise %.3f", m.Name(), scores[0], scores[2])
		}
		for i, s := range scores {
			if s < 0 || math.IsNaN(s) {
				t.Errorf("%s: score[%d] = %v must be non-negative", m.Name(), i, s)
			}
		}
	}
}

func TestRelevanceNames(t *testing.T) {
	want := []string{"ig", "su", "pearson", "spearman", "relief"}
	for i, m := range AllRelevance() {
		if m.Name() != want[i] {
			t.Errorf("metric %d name = %q, want %q", i, m.Name(), want[i])
		}
		if RelevanceByName(m.Name()) == nil {
			t.Errorf("RelevanceByName(%q) = nil", m.Name())
		}
	}
	if RelevanceByName("nope") != nil {
		t.Error("unknown name must return nil")
	}
}

func TestSpearmanRelevanceMonotoneEquivalence(t *testing.T) {
	cols, _, y := synthCols(300, 5)
	scores := SpearmanRelevance{}.Scores(cols, y)
	if math.Abs(scores[0]-scores[1]) > 1e-9 {
		t.Fatalf("monotone transform must not change spearman relevance: %v vs %v", scores[0], scores[1])
	}
}

func TestReliefRelevanceEmptyAndDeterministic(t *testing.T) {
	if got := (ReliefRelevance{}).Scores(nil, nil); got != nil {
		t.Fatal("no columns -> nil")
	}
	cols, _, y := synthCols(100, 7)
	a := ReliefRelevance{Seed: 42}.Scores(cols, y)
	b := ReliefRelevance{Seed: 42}.Scores(cols, y)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same relief scores")
		}
	}
}

func TestSelectKBest(t *testing.T) {
	scores := []float64{0.9, 0, 0.5, math.NaN(), 0.7, -0.1}
	idx, sc := SelectKBest(scores, 2)
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 4 {
		t.Fatalf("idx = %v, want [0 4]", idx)
	}
	if sc[0] != 0.9 || sc[1] != 0.7 {
		t.Fatalf("scores = %v", sc)
	}
	// k bigger than positives keeps all positives.
	idx2, _ := SelectKBest(scores, 10)
	if len(idx2) != 3 {
		t.Fatalf("idx2 = %v, want 3 positive entries", idx2)
	}
	// k < 0 means unlimited.
	idx3, _ := SelectKBest(scores, -1)
	if len(idx3) != 3 {
		t.Fatalf("unlimited must keep all positives: %v", idx3)
	}
	// zero and NaN and negative never selected
	for _, i := range idx2 {
		if i == 1 || i == 3 || i == 5 {
			t.Fatal("non-positive scores must never be selected")
		}
	}
}

func TestSelectKBestTieBreak(t *testing.T) {
	idx, _ := SelectKBest([]float64{0.5, 0.5, 0.5}, 2)
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Fatalf("ties must break by index: %v", idx)
	}
}

func TestRedundancyRejectsDuplicate(t *testing.T) {
	cols, _, y := synthCols(400, 11)
	relevant, redundant := cols[0], cols[1]
	for _, m := range AllRedundancy() {
		// With relevant already selected, its duplicate must be rejected.
		accepted, scores := m.Select([][]float64{redundant}, [][]float64{relevant}, y)
		if len(accepted) != 0 {
			t.Errorf("%s: duplicate feature accepted with scores %v", m.Name(), scores)
		}
	}
}

func TestRedundancyAcceptsFreshRelevant(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 400
	y := make([]int, n)
	a := make([]float64, n) // relevant dimension 1
	b := make([]float64, n) // complementary relevant dimension
	for i := 0; i < n; i++ {
		y[i] = i % 2
		a[i] = float64(y[i])*3 + rng.NormFloat64()
		b[i] = float64(y[i])*3 - rng.NormFloat64()*2 + rng.Float64()
	}
	for _, m := range AllRedundancy() {
		accepted, scores := m.Select([][]float64{b}, [][]float64{a}, y)
		if len(accepted) != 1 {
			t.Errorf("%s: fresh informative feature rejected", m.Name())
			continue
		}
		if scores[0] <= 0 {
			t.Errorf("%s: accepted score must be positive, got %v", m.Name(), scores[0])
		}
	}
}

func TestRedundancyEmptySelectedAcceptsInformative(t *testing.T) {
	cols, _, y := synthCols(200, 17)
	for _, m := range AllRedundancy() {
		accepted, _ := m.Select([][]float64{cols[0]}, nil, y)
		if len(accepted) != 1 {
			t.Errorf("%s: with empty S, an informative feature must pass", m.Name())
		}
	}
}

func TestRedundancyRejectsPureNoiseCMIMStyle(t *testing.T) {
	// Pure noise has I(Xk;Y) ≈ 0 but discretisation noise can make it
	// slightly positive; verify noise scores well below informative.
	cols, _, y := synthCols(500, 19)
	m := NewMRMR()
	accInfo, sInfo := m.Select([][]float64{cols[0]}, nil, y)
	_, sNoise := m.Select([][]float64{cols[2]}, nil, y)
	if len(accInfo) != 1 {
		t.Fatal("informative must pass")
	}
	if len(sNoise) == 1 && sNoise[0] > sInfo[0]/3 {
		t.Fatalf("noise score %v too close to informative %v", sNoise[0], sInfo[0])
	}
}

func TestRedundancyNames(t *testing.T) {
	want := []string{"mifs", "mrmr", "cife", "jmi", "cmim"}
	for i, m := range AllRedundancy() {
		if m.Name() != want[i] {
			t.Errorf("metric %d name = %q, want %q", i, m.Name(), want[i])
		}
		if RedundancyByName(m.Name()) == nil {
			t.Errorf("RedundancyByName(%q) = nil", m.Name())
		}
	}
	if RedundancyByName("nope") != nil {
		t.Error("unknown name must return nil")
	}
}

func TestCLMGreedyUpdatesSelectedSet(t *testing.T) {
	// Submit the same informative feature twice in one batch: the first
	// must be accepted, the second rejected as redundant with the first.
	cols, _, y := synthCols(400, 23)
	dup := make([]float64, len(cols[0]))
	copy(dup, cols[0])
	accepted, _ := NewMRMR().Select([][]float64{cols[0], dup}, nil, y)
	if len(accepted) != 1 || accepted[0] != 0 {
		t.Fatalf("greedy pass must reject in-batch duplicate: %v", accepted)
	}
	acceptedC, _ := NewCMIM().Select([][]float64{cols[0], dup}, nil, y)
	if len(acceptedC) != 1 {
		t.Fatalf("cmim greedy pass must reject in-batch duplicate: %v", acceptedC)
	}
}

func TestPipelineFull(t *testing.T) {
	cols, _, y := synthCols(400, 29)
	p := &Pipeline{Relevance: SpearmanRelevance{}, Redundancy: NewMRMR(), K: 15}
	res := p.Run(cols, nil, y)
	if len(res.Kept) == 0 {
		t.Fatal("pipeline must keep the relevant feature")
	}
	has := func(i int) bool {
		for _, k := range res.Kept {
			if k == i {
				return true
			}
		}
		return false
	}
	if !has(0) {
		t.Fatalf("relevant feature dropped: kept %v", res.Kept)
	}
	if has(0) && has(1) {
		t.Fatalf("redundant duplicate survived: kept %v", res.Kept)
	}
	if len(res.RelScores) != len(res.Kept) || len(res.RedScores) != len(res.Kept) {
		t.Fatal("score slices must align with Kept")
	}
	for _, s := range res.RedScores {
		if s <= 0 {
			t.Fatal("kept features must have positive J score")
		}
	}
}

func TestPipelineKCap(t *testing.T) {
	cols, _, y := synthCols(200, 31)
	p := &Pipeline{Relevance: SpearmanRelevance{}, K: 1}
	res := p.Run(cols, nil, y)
	if len(res.Kept) != 1 || res.Kept[0] != 0 && res.Kept[0] != 1 {
		t.Fatalf("K=1 must keep exactly the single best: %v", res.Kept)
	}
}

func TestPipelineStagesDisabled(t *testing.T) {
	cols, _, y := synthCols(200, 37)
	// No stages: everything passes (bounded by K).
	p := &Pipeline{K: -1}
	res := p.Run(cols, nil, y)
	if len(res.Kept) != 3 {
		t.Fatalf("no-op pipeline must keep all: %v", res.Kept)
	}
	// Relevance disabled, K caps the passthrough.
	p2 := &Pipeline{K: 2}
	res2 := p2.Run(cols, nil, y)
	if len(res2.Kept) != 2 {
		t.Fatalf("K cap without relevance: %v", res2.Kept)
	}
	// Redundancy-only.
	p3 := &Pipeline{Redundancy: NewMRMR(), K: -1}
	res3 := p3.Run(cols, nil, y)
	for _, k := range res3.Kept {
		if k == 1 && contains(res3.Kept, 0) {
			t.Fatal("redundancy-only must still reject the duplicate")
		}
	}
	// Empty batch.
	if got := p.Run(nil, nil, y); len(got.Kept) != 0 {
		t.Fatal("empty batch keeps nothing")
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func TestPipelineAllIrrelevant(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 300
	y := make([]int, n)
	noise1 := make([]float64, n)
	noise2 := make([]float64, n)
	for i := range y {
		y[i] = rng.Intn(2)
		noise1[i] = rng.NormFloat64()
		noise2[i] = rng.NormFloat64()
	}
	p := &Pipeline{Relevance: SpearmanRelevance{}, Redundancy: NewMRMR(), K: 15}
	res := p.Run([][]float64{noise1, noise2}, nil, y)
	// Spearman of pure noise is near 0 but rarely exactly 0; redundancy's
	// MI threshold usually rejects. Accept either empty or tiny scores.
	for i := range res.Kept {
		if res.RelScores[i] > 0.2 {
			t.Fatalf("noise feature with high relevance score %v", res.RelScores[i])
		}
	}
}

func TestGroupPipelineAdmitsSignalGroup(t *testing.T) {
	cols, _, y := synthCols(400, 43)
	p := &GroupPipeline{
		Pipeline:     Pipeline{Relevance: SpearmanRelevance{}, Redundancy: NewMRMR(), K: 15},
		MinGroupGain: 0.01,
	}
	res := p.Run(cols, nil, y)
	if !res.Admitted {
		t.Fatalf("group with real signal must be admitted (gain %v)", res.GroupGain)
	}
	if len(res.Kept) == 0 {
		t.Fatal("admitted group keeps its features")
	}
}

func TestGroupPipelineRejectsNoiseGroup(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	n := 300
	y := make([]int, n)
	noise1 := make([]float64, n)
	noise2 := make([]float64, n)
	for i := range y {
		y[i] = rng.Intn(2)
		noise1[i] = rng.NormFloat64()
		noise2[i] = rng.NormFloat64()
	}
	p := &GroupPipeline{
		Pipeline:     Pipeline{Relevance: SpearmanRelevance{}, Redundancy: NewMRMR(), K: 15},
		MinGroupGain: 0.05,
	}
	res := p.Run([][]float64{noise1, noise2}, nil, y)
	if res.Admitted {
		t.Fatalf("pure-noise group must be rejected (gain %v)", res.GroupGain)
	}
	if len(res.Kept) != 0 {
		t.Fatal("rejected group keeps nothing")
	}
}

func TestGroupPipelineRelevanceOnlyGain(t *testing.T) {
	cols, _, y := synthCols(300, 53)
	p := &GroupPipeline{
		Pipeline:     Pipeline{Relevance: SpearmanRelevance{}, K: 15},
		MinGroupGain: 0.1,
	}
	res := p.Run(cols, nil, y)
	if !res.Admitted || res.GroupGain <= 0 {
		t.Fatalf("relevance mass must drive the gain when redundancy is off: %+v", res.GroupGain)
	}
}

func TestSpearmanRelevanceNulledColumn(t *testing.T) {
	// A column with nulls must be ranked over the pairwise-complete rows
	// only. The old path ranked the full column (NaN ranks included) against
	// label ranks computed over every row, which skews the score whenever
	// deletion changes the tie structure.
	y := []int{2, 0, 0, 1, 2, 2}
	nulled := []float64{math.NaN(), 1, 2, 3, 4, 5}
	clean := []float64{5, 1, 2, 3, 4, 5}
	got := SpearmanRelevance{}.Scores([][]float64{nulled, clean}, y)
	want := 3 / math.Sqrt(10)
	if math.Abs(got[0]-want) > 1e-12 {
		t.Fatalf("nulled column score = %v, want %v (pairwise-complete rows)", got[0], want)
	}
	// The null-free fast path must agree with the full Spearman computation.
	yf := labelFloats(y)
	if w := math.Abs(stats.Spearman(clean, yf)); math.Abs(got[1]-w) > 1e-12 {
		t.Fatalf("clean column fast path = %v, want %v", got[1], w)
	}
}
