package fselect

import (
	"context"
	"log/slog"

	"autofeat/internal/telemetry"
)

// Pipeline is the streaming feature-selection pipeline of Section VI: each
// batch of candidate features (the columns added by one join) first passes
// relevance analysis — rank by the relevance metric and keep the top-κ with
// positive scores — and the survivors then pass redundancy analysis against
// the features selected so far. Either stage may be disabled (nil) for the
// Figure 9 ablation.
type Pipeline struct {
	// Relevance ranks candidates against the label; nil skips the stage
	// (all candidates proceed with zero relevance scores).
	Relevance Relevance
	// Redundancy filters relevant candidates against the selected set;
	// nil skips the stage (all relevant candidates are kept).
	Redundancy Redundancy
	// K caps how many candidates survive relevance analysis (the paper's
	// κ, default 15 in the evaluation). K < 0 means unlimited.
	K int
	// Telemetry, when non-nil, records spans and duration histograms for
	// the relevance and redundancy halves of every batch.
	Telemetry *telemetry.Collector
	// Log, when non-nil, receives a Debug record per batch (candidate and
	// survivor counts for both stages). Nil — the default — disables
	// logging.
	Log *slog.Logger
}

// Result reports one pipeline run over a candidate batch.
type Result struct {
	// Kept holds indices into the candidate batch that survived both
	// stages, ascending.
	Kept []int
	// RelScores aligns with Kept: the relevance score of each kept
	// feature (zero when the relevance stage is disabled).
	RelScores []float64
	// RedScores aligns with Kept: the redundancy J score of each kept
	// feature (zero when the redundancy stage is disabled).
	RedScores []float64
	// Cancelled reports that the batch was abandoned at a stage boundary
	// because the RunContext context was cancelled; Kept is empty and the
	// caller should treat the batch as unevaluated, not as "no features".
	Cancelled bool
}

// Run pushes one batch of candidate columns through the pipeline with no
// cancellation; it is RunContext under context.Background().
func (p *Pipeline) Run(candidates, selected [][]float64, y []int) Result {
	return p.RunContext(context.Background(), candidates, selected, y)
}

// RunContext pushes one batch of candidate columns through the pipeline.
// selected holds the columns already in the selected feature set R_sel; y
// is the label. Candidates are column-major []float64 with NaN nulls.
// ctx is checked at the stage boundaries (before relevance and before
// redundancy): a cancelled context short-circuits to an empty, cancelled
// result so the surrounding search can degrade gracefully instead of
// finishing the batch.
func (p *Pipeline) RunContext(ctx context.Context, candidates, selected [][]float64, y []int) Result {
	if len(candidates) == 0 {
		return Result{}
	}
	if ctx != nil && ctx.Err() != nil {
		return Result{Cancelled: true}
	}

	// Stage 1: relevance analysis, keep top-κ (Algorithm 1, line 16).
	_, relSpan := p.Telemetry.Trace().StartSpan(ctx, telemetry.SpanRelevance)
	relIdx := make([]int, len(candidates))
	relScores := make([]float64, len(candidates))
	if p.Relevance != nil {
		scores := p.Relevance.Scores(candidates, y)
		relIdx, relScores = SelectKBest(scores, p.K)
	} else {
		for i := range relIdx {
			relIdx[i] = i
		}
		if p.K >= 0 && len(relIdx) > p.K {
			relIdx = relIdx[:p.K]
			relScores = relScores[:p.K]
		}
	}
	relSpan.SetInt("candidates", len(candidates))
	relSpan.SetInt("kept", len(relIdx))
	p.Telemetry.Meter().Observe(telemetry.HistRelevanceSeconds, relSpan.End().Seconds())
	if len(relIdx) == 0 {
		return Result{}
	}

	// Stage 2: redundancy analysis against R_sel (Algorithm 1, line 17).
	if p.Redundancy == nil {
		return Result{Kept: relIdx, RelScores: relScores, RedScores: make([]float64, len(relIdx))}
	}
	if ctx != nil && ctx.Err() != nil {
		return Result{Cancelled: true}
	}
	_, redSpan := p.Telemetry.Trace().StartSpan(ctx, telemetry.SpanRedundancy)
	relCols := make([][]float64, len(relIdx))
	for j, i := range relIdx {
		relCols[j] = candidates[i]
	}
	accepted, redScores := p.Redundancy.Select(relCols, selected, y)
	redSpan.SetInt("candidates", len(relIdx))
	redSpan.SetInt("kept", len(accepted))
	redSpan.SetInt("selected_set", len(selected))
	p.Telemetry.Meter().Observe(telemetry.HistRedundancySeconds, redSpan.End().Seconds())
	kept := make([]int, len(accepted))
	keptRel := make([]float64, len(accepted))
	for j, a := range accepted {
		kept[j] = relIdx[a]
		keptRel[j] = relScores[a]
	}
	if p.Log != nil {
		p.Log.Debug("feature selection batch",
			"candidates", len(candidates), "relevant", len(relIdx),
			"kept", len(kept), "selected_set", len(selected))
	}
	return Result{Kept: kept, RelScores: keptRel, RedScores: redScores}
}
