package fselect

import (
	"autofeat/internal/stats"
)

// Redundancy filters candidate features against an already-selected set,
// keeping only those that add information. All five paper metrics derive
// from the unified conditional-likelihood-maximisation framework
// (Definition V.1, Equation (1)):
//
//	J(Xk) = I(Xk;Y) − β·Σ_{Xj∈S} I(Xj;Xk) + λ·Σ_{Xj∈S} I(Xj;Xk|Y)
//
// A candidate is accepted when J(Xk) > 0 — its relevance to the label
// outweighs its redundancy with the selected set — and accepted candidates
// immediately join S, making the evaluation a greedy streaming pass.
type Redundancy interface {
	// Name identifies the metric ("mrmr", "jmi", ...).
	Name() string
	// Select evaluates candidate columns against the selected set and
	// returns the indices of accepted candidates together with their J
	// scores, in candidate order.
	Select(candidates, selected [][]float64, y []int) ([]int, []float64)
}

// CLM is a conditional-likelihood-maximisation redundancy metric
// parameterised by the β and λ schedules of Equation (1). β and λ receive
// |S|, the current size of the selected set, because MRMR and JMI scale
// their penalty by 1/|S|.
type CLM struct {
	MetricName string
	Beta       func(sizeS int) float64
	Lambda     func(sizeS int) float64
	// Bins overrides discretisation granularity; 0 means stats.DefaultBins.
	Bins int
}

// Name implements Redundancy.
func (m CLM) Name() string { return m.MetricName }

// Select implements Redundancy via greedy Equation-(1) scoring.
func (m CLM) Select(candidates, selected [][]float64, y []int) ([]int, []float64) {
	b := bins(m.Bins)
	sel := discretizeAll(selected, b)
	var accepted []int
	var scores []float64
	for ci, cand := range candidates {
		xk := stats.Discretize(cand, b)
		j := stats.CorrectedMutualInformation(xk, y)
		if len(sel) > 0 {
			beta := m.Beta(len(sel))
			lambda := m.Lambda(len(sel))
			for _, xj := range sel {
				if beta != 0 {
					j -= beta * stats.CorrectedMutualInformation(xj, xk)
				}
				if lambda != 0 {
					j += lambda * stats.CorrectedConditionalMutualInformation(xj, xk, y)
				}
			}
		}
		if j > 0 {
			accepted = append(accepted, ci)
			scores = append(scores, j)
			sel = append(sel, xk)
		}
	}
	return accepted, scores
}

// CMIM implements Conditional Mutual Information Maximization, the special
// case of the framework (Equation (2)):
//
//	J(Xk) = I(Xk;Y) − max_{Xj∈S} [ I(Xj;Xk) − I(Xj;Xk|Y) ]
type CMIM struct {
	// Bins overrides discretisation granularity; 0 means stats.DefaultBins.
	Bins int
}

// Name implements Redundancy.
func (CMIM) Name() string { return "cmim" }

// Select implements Redundancy.
func (m CMIM) Select(candidates, selected [][]float64, y []int) ([]int, []float64) {
	b := bins(m.Bins)
	sel := discretizeAll(selected, b)
	var accepted []int
	var scores []float64
	for ci, cand := range candidates {
		xk := stats.Discretize(cand, b)
		j := stats.CorrectedMutualInformation(xk, y)
		maxPenalty := 0.0
		for _, xj := range sel {
			p := stats.CorrectedMutualInformation(xj, xk) - stats.CorrectedConditionalMutualInformation(xj, xk, y)
			if p > maxPenalty {
				maxPenalty = p
			}
		}
		j -= maxPenalty
		if j > 0 {
			accepted = append(accepted, ci)
			scores = append(scores, j)
			sel = append(sel, xk)
		}
	}
	return accepted, scores
}

func discretizeAll(cols [][]float64, b int) [][]int {
	out := make([][]int, len(cols))
	for i, c := range cols {
		out[i] = stats.Discretize(c, b)
	}
	return out
}

// NewMIFS returns Mutual Information Feature Selection: β = 0.5
// (the paper's choice), λ = 0.
func NewMIFS() Redundancy {
	return CLM{
		MetricName: "mifs",
		Beta:       func(int) float64 { return 0.5 },
		Lambda:     func(int) float64 { return 0 },
	}
}

// NewMRMR returns Minimum Redundancy Maximum Relevance: β = 1/|S|, λ = 0.
// MRMR is the redundancy metric AutoFeat adopts (Section V-D).
func NewMRMR() Redundancy {
	return CLM{
		MetricName: "mrmr",
		Beta:       func(s int) float64 { return 1 / float64(s) },
		Lambda:     func(int) float64 { return 0 },
	}
}

// NewCIFE returns Conditional Infomax Feature Extraction: β = 1, λ = 1.
func NewCIFE() Redundancy {
	return CLM{
		MetricName: "cife",
		Beta:       func(int) float64 { return 1 },
		Lambda:     func(int) float64 { return 1 },
	}
}

// NewJMI returns Joint Mutual Information: β = 1/|S|, λ = 1/|S|.
func NewJMI() Redundancy {
	return CLM{
		MetricName: "jmi",
		Beta:       func(s int) float64 { return 1 / float64(s) },
		Lambda:     func(s int) float64 { return 1 / float64(s) },
	}
}

// NewCMIM returns Conditional Mutual Information Maximization (Eq. (2)).
func NewCMIM() Redundancy { return CMIM{} }

// RedundancyByName returns the metric registered under name, or nil.
// Names: mifs, mrmr, cife, jmi, cmim.
func RedundancyByName(name string) Redundancy {
	switch name {
	case "mifs":
		return NewMIFS()
	case "mrmr":
		return NewMRMR()
	case "cife":
		return NewCIFE()
	case "jmi":
		return NewJMI()
	case "cmim":
		return NewCMIM()
	default:
		return nil
	}
}

// AllRedundancy lists the five Section V-D redundancy metrics in paper
// order.
func AllRedundancy() []Redundancy {
	return []Redundancy{NewMIFS(), NewMRMR(), NewCIFE(), NewJMI(), NewCMIM()}
}
