package fselect

// GroupPipeline adds group-level decisions on top of the streaming
// pipeline, following the group-and-streaming feature selection family
// the paper surveys in Section V-A (Li et al., "Group feature selection
// with streaming features"): each arriving batch is first evaluated as a
// whole, and batches whose total information contribution is below
// MinGroupGain are rejected outright — intra-group selection only runs
// for groups that clear the bar. In AutoFeat terms a group is the set of
// columns one join contributes, so group rejection prunes an entire
// table's features in one decision.
type GroupPipeline struct {
	Pipeline
	// MinGroupGain is the minimum summed redundancy-framework J score a
	// batch must reach to be admitted at all. Zero admits any batch with
	// at least one selected feature (plain streaming behaviour).
	MinGroupGain float64
}

// GroupResult extends Result with the group decision.
type GroupResult struct {
	Result
	// Admitted reports whether the batch cleared the group-level bar.
	Admitted bool
	// GroupGain is the summed J score of the batch's kept features.
	GroupGain float64
}

// Run evaluates one batch with group semantics.
func (p *GroupPipeline) Run(candidates, selected [][]float64, y []int) GroupResult {
	inner := p.Pipeline.Run(candidates, selected, y)
	gain := 0.0
	for _, j := range inner.RedScores {
		gain += j
	}
	// When the redundancy stage is disabled, fall back to relevance mass.
	if p.Redundancy == nil {
		for _, r := range inner.RelScores {
			gain += r
		}
	}
	if gain < p.MinGroupGain || len(inner.Kept) == 0 {
		return GroupResult{Admitted: false, GroupGain: gain}
	}
	return GroupResult{Result: inner, Admitted: true, GroupGain: gain}
}
