// Package fselect implements the feature-selection machinery of Sections V
// and VI: five relevance metrics (Information Gain, Symmetrical
// Uncertainty, Pearson, Spearman, Relief), five redundancy metrics from
// the unified conditional-likelihood-maximisation framework (MIFS, MRMR,
// CIFE, JMI, CMIM), the select-κ-best heuristic and the streaming
// feature-selection pipeline AutoFeat builds on.
//
// Features are passed column-major as []float64 with NaN nulls; labels are
// integer class codes. Entropy-based metrics discretise continuous columns
// with stats.Discretize.
package fselect

import (
	"math"
	"math/rand"
	"sort"

	"autofeat/internal/stats"
)

// Relevance scores each feature column against the label; higher is more
// relevant. Implementations must return one non-negative score per column.
type Relevance interface {
	// Name identifies the metric in reports ("spearman", "ig", ...).
	Name() string
	// Scores returns a relevance score per column in cols.
	Scores(cols [][]float64, y []int) []float64
}

// SpearmanRelevance ranks features by |Spearman rank correlation| with the
// label — the metric AutoFeat adopts (Section V-C: best accuracy/runtime
// trade-off).
type SpearmanRelevance struct{}

// Name implements Relevance.
func (SpearmanRelevance) Name() string { return "spearman" }

// Scores implements Relevance. Columns with nulls are ranked over the
// pairwise-complete rows only (scipy semantics): ranking before NaN
// deletion would correlate a column's pre-deletion ranks against label
// ranks computed over all rows. Null-free columns reuse the label ranks
// computed once for the whole batch.
func (SpearmanRelevance) Scores(cols [][]float64, y []int) []float64 {
	yf := labelFloats(y)
	yr := stats.Ranks(yf)
	out := make([]float64, len(cols))
	for i, c := range cols {
		if hasNaN(c) {
			out[i] = math.Abs(stats.Spearman(c, yf))
		} else {
			out[i] = math.Abs(stats.Pearson(stats.Ranks(c), yr))
		}
	}
	return out
}

func hasNaN(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}

// PearsonRelevance ranks features by |Pearson correlation| with the label.
type PearsonRelevance struct{}

// Name implements Relevance.
func (PearsonRelevance) Name() string { return "pearson" }

// Scores implements Relevance.
func (PearsonRelevance) Scores(cols [][]float64, y []int) []float64 {
	yf := labelFloats(y)
	out := make([]float64, len(cols))
	for i, c := range cols {
		out[i] = math.Abs(stats.Pearson(c, yf))
	}
	return out
}

// IGRelevance ranks features by information gain I(X;Y) after
// discretisation.
type IGRelevance struct {
	// Bins overrides the discretisation granularity; 0 means
	// stats.DefaultBins.
	Bins int
}

// Name implements Relevance.
func (IGRelevance) Name() string { return "ig" }

// Scores implements Relevance.
func (m IGRelevance) Scores(cols [][]float64, y []int) []float64 {
	out := make([]float64, len(cols))
	for i, c := range cols {
		out[i] = stats.InformationGain(stats.Discretize(c, bins(m.Bins)), y)
	}
	return out
}

// SURelevance ranks features by symmetrical uncertainty SU(X,Y), the
// normalised variant of information gain.
type SURelevance struct {
	// Bins overrides the discretisation granularity; 0 means
	// stats.DefaultBins.
	Bins int
}

// Name implements Relevance.
func (SURelevance) Name() string { return "su" }

// Scores implements Relevance.
func (m SURelevance) Scores(cols [][]float64, y []int) []float64 {
	out := make([]float64, len(cols))
	for i, c := range cols {
		out[i] = stats.SymmetricUncertainty(stats.Discretize(c, bins(m.Bins)), y)
	}
	return out
}

// ReliefRelevance ranks features with the Relief nearest-hit/nearest-miss
// weighting. Sampled instances and the rng seed are fixed for determinism.
type ReliefRelevance struct {
	// Samples is the number of Relief iterations m; 0 means min(100, n).
	Samples int
	// Seed drives instance sampling.
	Seed int64
}

// Name implements Relevance.
func (ReliefRelevance) Name() string { return "relief" }

// Scores implements Relevance.
func (m ReliefRelevance) Scores(cols [][]float64, y []int) []float64 {
	if len(cols) == 0 {
		return nil
	}
	n := len(cols[0])
	rows := make([][]float64, n)
	flat := make([]float64, n*len(cols))
	for i := 0; i < n; i++ {
		rows[i] = flat[i*len(cols) : (i+1)*len(cols)]
		for j := range cols {
			rows[i][j] = cols[j][i]
		}
	}
	samples := m.Samples
	if samples <= 0 {
		samples = 100
		if n < samples {
			samples = n
		}
	}
	w := stats.ReliefScores(rows, y, samples, rand.New(rand.NewSource(m.Seed)))
	// Relief weights can be negative; clamp so Scores stays non-negative
	// and negative-weight (irrelevant) features rank at zero.
	for i, v := range w {
		if v < 0 {
			w[i] = 0
		}
	}
	return w
}

func bins(b int) int {
	if b <= 0 {
		return stats.DefaultBins
	}
	return b
}

func labelFloats(y []int) []float64 {
	out := make([]float64, len(y))
	for i, v := range y {
		out[i] = float64(v)
	}
	return out
}

// RelevanceByName returns the metric registered under name, or nil. Names:
// spearman, pearson, ig, su, relief.
func RelevanceByName(name string) Relevance {
	switch name {
	case "spearman":
		return SpearmanRelevance{}
	case "pearson":
		return PearsonRelevance{}
	case "ig":
		return IGRelevance{}
	case "su":
		return SURelevance{}
	case "relief":
		return ReliefRelevance{}
	default:
		return nil
	}
}

// AllRelevance lists the five Section V-C relevance metrics in paper order.
func AllRelevance() []Relevance {
	return []Relevance{IGRelevance{}, SURelevance{}, PearsonRelevance{}, SpearmanRelevance{}, ReliefRelevance{}}
}

// SelectKBest implements the paper's "select κ best" heuristic: sort
// features by score descending and keep the top κ with strictly positive
// scores. It returns the kept column indices (ascending) and their scores
// (aligned with the returned indices).
func SelectKBest(scores []float64, k int) ([]int, []float64) {
	type is struct {
		i int
		s float64
	}
	order := make([]is, 0, len(scores))
	for i, s := range scores {
		if s > 0 && !math.IsNaN(s) {
			order = append(order, is{i, s})
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].s != order[b].s {
			return order[a].s > order[b].s
		}
		return order[a].i < order[b].i
	})
	if k >= 0 && len(order) > k {
		order = order[:k]
	}
	sort.Slice(order, func(a, b int) bool { return order[a].i < order[b].i })
	idx := make([]int, len(order))
	sc := make([]float64, len(order))
	for j, o := range order {
		idx[j] = o.i
		sc[j] = o.s
	}
	return idx, sc
}
