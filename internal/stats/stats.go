// Package stats provides the statistical and information-theoretic
// primitives behind AutoFeat's relevance and redundancy analyses:
// correlation coefficients (Pearson, Spearman), Shannon entropy, mutual
// information and conditional mutual information over discretised features,
// and supporting utilities (ranking, discretisation, normalisation).
//
// All estimators skip rows where either input is NaN (null), matching the
// pairwise-complete convention used by dataframe libraries.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of the non-NaN entries, or NaN if none.
func Mean(x []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range x {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Variance returns the population variance of the non-NaN entries.
func Variance(x []float64) float64 {
	m := Mean(x)
	if math.IsNaN(m) {
		return math.NaN()
	}
	sum, n := 0.0, 0
	for _, v := range x {
		if !math.IsNaN(v) {
			d := v - m
			sum += d * d
			n++
		}
	}
	return sum / float64(n)
}

// Pearson returns the Pearson correlation coefficient between x and y,
// computed over rows where both are non-NaN. Returns 0 when either variable
// is constant (no linear association can be measured) or fewer than two
// complete pairs exist. Mismatched lengths — the signature of a corrupt
// table — degrade to the common prefix instead of panicking, so one bad
// input prunes one feature rather than killing the process.
func Pearson(x, y []float64) float64 {
	x, y = commonPrefix(x, y)
	var sx, sy, sxx, syy, sxy float64
	n := 0
	for i := range x {
		if math.IsNaN(x[i]) || math.IsNaN(y[i]) {
			continue
		}
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
		n++
	}
	if n < 2 {
		return 0
	}
	fn := float64(n)
	cov := sxy - sx*sy/fn
	vx := sxx - sx*sx/fn
	vy := syy - sy*sy/fn
	if vx <= 0 || vy <= 0 {
		return 0
	}
	r := cov / math.Sqrt(vx*vy)
	// Guard against floating point drift outside [-1, 1].
	return math.Max(-1, math.Min(1, r))
}

// Ranks returns the fractional (average) ranks of x in [1, n], assigning
// tied values the mean of the ranks they span. NaN entries receive NaN
// ranks, so downstream Pearson skips them.
func Ranks(x []float64) []float64 {
	type iv struct {
		i int
		v float64
	}
	vals := make([]iv, 0, len(x))
	for i, v := range x {
		if !math.IsNaN(v) {
			vals = append(vals, iv{i, v})
		}
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
	out := make([]float64, len(x))
	for i := range out {
		out[i] = math.NaN()
	}
	for i := 0; i < len(vals); {
		j := i
		for j < len(vals) && vals[j].v == vals[i].v {
			j++
		}
		// average rank for the tie group [i, j)
		avg := (float64(i+1) + float64(j)) / 2
		for k := i; k < j; k++ {
			out[vals[k].i] = avg
		}
		i = j
	}
	return out
}

// Spearman returns the Spearman rank correlation coefficient: Pearson
// correlation over fractional ranks, which handles ties correctly.
//
// Rows where either input is NaN are deleted BEFORE ranking (scipy's
// pairwise-complete semantics): ranking first and deleting afterwards
// would correlate ranks computed over different row sets, which skews the
// coefficient whenever the deletion changes the tie structure or spacing
// of the surviving ranks.
func Spearman(x, y []float64) float64 {
	x, y = pairwiseComplete(x, y)
	return Pearson(Ranks(x), Ranks(y))
}

// commonPrefix truncates both slices to the shorter length. Length
// mismatches only arise from corrupt input; degrading to the shared rows
// keeps the estimators total (no panics on user-reachable paths).
func commonPrefix(x, y []float64) ([]float64, []float64) {
	if len(x) == len(y) {
		return x, y
	}
	n := min(len(x), len(y))
	return x[:n], y[:n]
}

// pairwiseComplete returns x and y restricted to rows where both are
// non-NaN. When every row is complete the inputs are returned as-is.
// Mismatched lengths degrade to the common prefix (see commonPrefix).
func pairwiseComplete(x, y []float64) ([]float64, []float64) {
	x, y = commonPrefix(x, y)
	n := 0
	for i := range x {
		if !math.IsNaN(x[i]) && !math.IsNaN(y[i]) {
			n++
		}
	}
	if n == len(x) {
		return x, y
	}
	cx := make([]float64, 0, n)
	cy := make([]float64, 0, n)
	for i := range x {
		if !math.IsNaN(x[i]) && !math.IsNaN(y[i]) {
			cx = append(cx, x[i])
			cy = append(cy, y[i])
		}
	}
	return cx, cy
}

// MinMaxNormalize rescales non-NaN entries to [0, 1] in place and returns
// the slice. A constant vector maps to all zeros.
func MinMaxNormalize(x []float64) []float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range x {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	span := hi - lo
	for i, v := range x {
		if math.IsNaN(v) {
			continue
		}
		if span == 0 {
			x[i] = 0
		} else {
			x[i] = (v - lo) / span
		}
	}
	return x
}

// DefaultBins is the number of bins used when discretising continuous
// features for entropy-based estimators. Ten equal-width bins is the common
// default in feature-selection toolkits (e.g. scikit-feature).
const DefaultBins = 10

// Discretize maps continuous values to integer bin codes using equal-width
// binning with the given bin count. NaN entries map to code -1 (treated as
// "missing" by the entropy estimators). Values with few distinct levels
// (≤ bins) keep one code per level, so already-discrete features are not
// distorted.
func Discretize(x []float64, bins int) []int {
	if bins < 2 {
		bins = 2
	}
	distinct := make(map[float64]struct{}, bins+1)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range x {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
		if len(distinct) <= bins {
			distinct[v] = struct{}{}
		}
	}
	out := make([]int, len(x))
	if len(distinct) <= bins {
		// Already discrete: stable code per sorted distinct value.
		vals := make([]float64, 0, len(distinct))
		for v := range distinct {
			vals = append(vals, v)
		}
		sort.Float64s(vals)
		code := make(map[float64]int, len(vals))
		for i, v := range vals {
			code[v] = i
		}
		for i, v := range x {
			if math.IsNaN(v) {
				out[i] = -1
			} else {
				out[i] = code[v]
			}
		}
		return out
	}
	span := hi - lo
	for i, v := range x {
		switch {
		case math.IsNaN(v):
			out[i] = -1
		case span == 0:
			out[i] = 0
		default:
			b := int(float64(bins) * (v - lo) / span)
			if b >= bins {
				b = bins - 1
			}
			out[i] = b
		}
	}
	return out
}

// Entropy returns the Shannon entropy (nats) of the discrete variable x.
// Codes < 0 (missing) are skipped.
func Entropy(x []int) float64 {
	counts := make(map[int]int, 16)
	n := 0
	for _, v := range x {
		if v >= 0 {
			counts[v]++
			n++
		}
	}
	if n == 0 {
		return 0
	}
	// Sum in sorted-key order: float addition is not associative, and map
	// iteration order would make results differ between identical runs.
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	h := 0.0
	for _, k := range keys {
		p := float64(counts[k]) / float64(n)
		h -= p * math.Log(p)
	}
	return h
}

// MutualInformation returns I(X;Y) in nats for discrete variables, skipping
// rows where either code is < 0. I is symmetric and zero for independent
// variables; this is the paper's "information gain" relevance metric.
// Mismatched lengths degrade to the common prefix instead of panicking.
func MutualInformation(x, y []int) float64 {
	if n := min(len(x), len(y)); n != len(x) || n != len(y) {
		x, y = x[:n], y[:n]
	}
	joint := make(map[[2]int]int, 64)
	mx := make(map[int]int, 16)
	my := make(map[int]int, 16)
	n := 0
	for i := range x {
		if x[i] < 0 || y[i] < 0 {
			continue
		}
		joint[[2]int{x[i], y[i]}]++
		mx[x[i]]++
		my[y[i]]++
		n++
	}
	if n == 0 {
		return 0
	}
	fn := float64(n)
	// Deterministic summation order (see Entropy).
	keys := make([][2]int, 0, len(joint))
	for k := range joint {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	mi := 0.0
	for _, k := range keys {
		pxy := float64(joint[k]) / fn
		px := float64(mx[k[0]]) / fn
		py := float64(my[k[1]]) / fn
		mi += pxy * math.Log(pxy/(px*py))
	}
	if mi < 0 {
		mi = 0 // floating point guard; MI is non-negative
	}
	return mi
}

// CorrectedMutualInformation returns the Miller–Madow bias-corrected MI
// estimate: the maximum-likelihood estimator overestimates by roughly
// (kx−1)(ky−1)/(2n) nats, which matters when many near-independent feature
// pairs are compared (the MRMR penalty term sums exactly such pairs).
// Clamped at zero.
func CorrectedMutualInformation(x, y []int) float64 {
	mi := MutualInformation(x, y)
	kx, ky, n := jointSupport(x, y)
	if n == 0 {
		return 0
	}
	mi -= float64((kx-1)*(ky-1)) / (2 * float64(n))
	if mi < 0 {
		return 0
	}
	return mi
}

// CorrectedConditionalMutualInformation applies the Miller–Madow-style
// correction to I(X;Y|Z): the bias grows with the number of conditioning
// strata, approximately (kx−1)(ky−1)·kz/(2n). Clamped at zero.
func CorrectedConditionalMutualInformation(x, y, z []int) float64 {
	cmi := ConditionalMutualInformation(x, y, z)
	kx, ky, n := jointSupport(x, y)
	kz := supportSize(z)
	if n == 0 || kz == 0 {
		return 0
	}
	cmi -= float64((kx-1)*(ky-1)*kz) / (2 * float64(n))
	if cmi < 0 {
		return 0
	}
	return cmi
}

// jointSupport returns the observed support sizes of x and y and the
// number of complete (non-missing) rows.
func jointSupport(x, y []int) (kx, ky, n int) {
	sx := make(map[int]struct{}, 16)
	sy := make(map[int]struct{}, 16)
	for i := range x {
		if x[i] < 0 || y[i] < 0 {
			continue
		}
		sx[x[i]] = struct{}{}
		sy[y[i]] = struct{}{}
		n++
	}
	return len(sx), len(sy), n
}

func supportSize(z []int) int {
	s := make(map[int]struct{}, 16)
	for _, v := range z {
		if v >= 0 {
			s[v] = struct{}{}
		}
	}
	return len(s)
}

// ConditionalMutualInformation returns I(X;Y|Z) in nats for discrete
// variables: sum_z p(z) * I(X;Y | Z=z). Rows with any negative code are
// skipped. Mismatched lengths degrade to the common prefix instead of
// panicking.
func ConditionalMutualInformation(x, y, z []int) float64 {
	if n := min(len(x), min(len(y), len(z))); n != len(x) || n != len(y) || n != len(z) {
		x, y, z = x[:n], y[:n], z[:n]
	}
	// Group rows by z, then compute MI within each group.
	groups := make(map[int][]int, 8)
	n := 0
	for i := range x {
		if x[i] < 0 || y[i] < 0 || z[i] < 0 {
			continue
		}
		groups[z[i]] = append(groups[z[i]], i)
		n++
	}
	if n == 0 {
		return 0
	}
	zs := make([]int, 0, len(groups))
	for z := range groups {
		zs = append(zs, z)
	}
	sort.Ints(zs)
	cmi := 0.0
	for _, zv := range zs {
		rows := groups[zv]
		gx := make([]int, len(rows))
		gy := make([]int, len(rows))
		for j, i := range rows {
			gx[j] = x[i]
			gy[j] = y[i]
		}
		cmi += float64(len(rows)) / float64(n) * MutualInformation(gx, gy)
	}
	return cmi
}

// SymmetricUncertainty returns SU(X,Y) = 2*I(X;Y)/(H(X)+H(Y)), a normalised
// correlation in [0,1]; 0 means independent, 1 means fully dependent. SU
// compensates for information gain's bias toward many-valued features.
func SymmetricUncertainty(x, y []int) float64 {
	hx, hy := Entropy(x), Entropy(y)
	if hx+hy == 0 {
		return 0
	}
	su := 2 * MutualInformation(x, y) / (hx + hy)
	return math.Max(0, math.Min(1, su))
}

// InformationGain is an alias for mutual information with the label, named
// as the paper's Section V-C relevance metric.
func InformationGain(x, y []int) float64 { return MutualInformation(x, y) }
