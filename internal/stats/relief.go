package stats

import (
	"math"
	"math/rand"
)

// ReliefScores implements the classic Relief feature-weighting algorithm
// (Kira & Rendell; see Urbanowicz et al. for a review). For m sampled
// instances it finds the nearest hit (same class) and nearest miss
// (different class) under L1 distance over min-max-normalised features and
// accumulates W[f] += diff(f, x, miss) - diff(f, x, hit). Higher scores mean
// the feature separates classes better; irrelevant features score near or
// below zero.
//
// rows is row-major; NaN cells contribute a neutral diff of 0.5 (the
// expected difference of two uniform values), the standard Relief treatment
// of missing data. The function returns one weight per feature, normalised
// by m so weights live in [-1, 1].
func ReliefScores(rows [][]float64, y []int, m int, rng *rand.Rand) []float64 {
	n := len(rows)
	if n == 0 {
		return nil
	}
	d := len(rows[0])
	w := make([]float64, d)
	if n < 2 || m <= 0 {
		return w
	}
	// Normalise a copy so diff is in [0,1] per feature.
	norm := make([][]float64, n)
	flat := make([]float64, n*d)
	for i, r := range rows {
		norm[i] = flat[i*d : (i+1)*d]
		copy(norm[i], r)
	}
	for j := 0; j < d; j++ {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = norm[i][j]
		}
		MinMaxNormalize(col)
		for i := 0; i < n; i++ {
			norm[i][j] = col[i]
		}
	}
	diff := func(a, b []float64, j int) float64 {
		av, bv := a[j], b[j]
		if math.IsNaN(av) || math.IsNaN(bv) {
			return 0.5
		}
		return math.Abs(av - bv)
	}
	dist := func(a, b []float64) float64 {
		s := 0.0
		for j := 0; j < d; j++ {
			s += diff(a, b, j)
		}
		return s
	}
	for it := 0; it < m; it++ {
		i := rng.Intn(n)
		var hit, miss = -1, -1
		hitD, missD := math.Inf(1), math.Inf(1)
		for k := 0; k < n; k++ {
			if k == i {
				continue
			}
			dk := dist(norm[i], norm[k])
			if y[k] == y[i] {
				if dk < hitD {
					hitD, hit = dk, k
				}
			} else if dk < missD {
				missD, miss = dk, k
			}
		}
		if hit < 0 || miss < 0 {
			continue // single-class data or singleton class
		}
		for j := 0; j < d; j++ {
			w[j] += (diff(norm[i], norm[miss], j) - diff(norm[i], norm[hit], j)) / float64(m)
		}
	}
	return w
}
