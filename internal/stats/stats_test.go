package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (tol %v)", msg, got, want, tol)
	}
}

func TestMeanVariance(t *testing.T) {
	approx(t, Mean([]float64{1, 2, 3, math.NaN()}), 2, 1e-12, "mean skips NaN")
	if !math.IsNaN(Mean([]float64{math.NaN()})) {
		t.Fatal("all-NaN mean must be NaN")
	}
	approx(t, Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 4, 1e-12, "variance")
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	approx(t, Pearson(x, y), 1, 1e-12, "perfect positive")
	neg := []float64{10, 8, 6, 4, 2}
	approx(t, Pearson(x, neg), -1, 1e-12, "perfect negative")
}

func TestPearsonConstantAndShort(t *testing.T) {
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Fatal("constant x must give 0")
	}
	if Pearson([]float64{1}, []float64{2}) != 0 {
		t.Fatal("single pair must give 0")
	}
	if Pearson([]float64{math.NaN(), 1}, []float64{1, math.NaN()}) != 0 {
		t.Fatal("no complete pairs must give 0")
	}
}

func TestPearsonNaNSkipping(t *testing.T) {
	x := []float64{1, 2, math.NaN(), 4}
	y := []float64{2, 4, 100, 8}
	approx(t, Pearson(x, y), 1, 1e-12, "NaN rows skipped")
}

func TestPearsonMismatchDegrades(t *testing.T) {
	// Mismatched lengths (corrupt input) degrade to the common prefix
	// instead of panicking: a single shared row -> no measurable
	// association -> 0.
	if got := Pearson([]float64{1}, []float64{1, 2}); got != 0 {
		t.Fatalf("mismatched Pearson = %v, want 0", got)
	}
	if got := Pearson([]float64{1, 2, 3, 4}, []float64{2, 4, 6}); got != 1 {
		t.Fatalf("prefix Pearson = %v, want 1", got)
	}
}

func TestRanksTies(t *testing.T) {
	r := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		approx(t, r[i], want[i], 1e-12, "tied ranks")
	}
	r2 := Ranks([]float64{5, math.NaN(), 3})
	if !math.IsNaN(r2[1]) {
		t.Fatal("NaN input must give NaN rank")
	}
	approx(t, r2[0], 2, 1e-12, "rank of 5")
	approx(t, r2[2], 1, 1e-12, "rank of 3")
}

func TestSpearmanMonotonic(t *testing.T) {
	// Monotonic but non-linear: Spearman must be 1, Pearson < 1.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 8, 27, 64, 125}
	approx(t, Spearman(x, y), 1, 1e-12, "monotonic spearman")
	if Pearson(x, y) >= 1 {
		t.Fatal("pearson of cubic should be < 1")
	}
}

func TestSpearmanIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 2000
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
		y[i] = rng.Float64()
	}
	if r := math.Abs(Spearman(x, y)); r > 0.08 {
		t.Fatalf("independent vars should have |rho|≈0, got %v", r)
	}
}

func TestMinMaxNormalize(t *testing.T) {
	x := MinMaxNormalize([]float64{2, 4, 6})
	approx(t, x[0], 0, 1e-12, "min")
	approx(t, x[1], 0.5, 1e-12, "mid")
	approx(t, x[2], 1, 1e-12, "max")
	c := MinMaxNormalize([]float64{3, 3})
	if c[0] != 0 || c[1] != 0 {
		t.Fatal("constant normalises to zeros")
	}
	nn := MinMaxNormalize([]float64{math.NaN(), 1, 2})
	if !math.IsNaN(nn[0]) {
		t.Fatal("NaN preserved")
	}
}

func TestDiscretizeDiscretePassThrough(t *testing.T) {
	x := []float64{0, 1, 2, 1, 0}
	d := Discretize(x, 10)
	if d[0] != 0 || d[1] != 1 || d[2] != 2 || d[3] != 1 {
		t.Fatalf("discrete values must keep stable codes: %v", d)
	}
}

func TestDiscretizeContinuous(t *testing.T) {
	n := 1000
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
	}
	d := Discretize(x, 10)
	if d[0] != 0 {
		t.Fatalf("min must land in bin 0, got %d", d[0])
	}
	if d[n-1] != 9 {
		t.Fatalf("max must land in last bin, got %d", d[n-1])
	}
	for _, v := range d {
		if v < 0 || v > 9 {
			t.Fatalf("bin out of range: %d", v)
		}
	}
}

func TestDiscretizeNaNAndConstant(t *testing.T) {
	d := Discretize([]float64{math.NaN(), 1, 1}, 2)
	if d[0] != -1 {
		t.Fatal("NaN must code to -1")
	}
	// bins < 2 clamps to 2
	d2 := Discretize([]float64{1, 2, 3}, 0)
	for _, v := range d2 {
		if v < 0 || v > 2 {
			t.Fatalf("clamped bins out of range: %v", d2)
		}
	}
}

func TestEntropy(t *testing.T) {
	approx(t, Entropy([]int{0, 0, 1, 1}), math.Log(2), 1e-12, "uniform binary entropy")
	approx(t, Entropy([]int{1, 1, 1}), 0, 1e-12, "constant entropy")
	approx(t, Entropy([]int{-1, -1}), 0, 1e-12, "all-missing entropy")
	// skewed: H = -(0.75 ln 0.75 + 0.25 ln 0.25)
	want := -(0.75*math.Log(0.75) + 0.25*math.Log(0.25))
	approx(t, Entropy([]int{0, 0, 0, 1}), want, 1e-12, "skewed entropy")
}

func TestMutualInformationIdentityAndIndependence(t *testing.T) {
	x := []int{0, 0, 1, 1, 0, 1}
	approx(t, MutualInformation(x, x), Entropy(x), 1e-12, "I(X;X)=H(X)")
	// independent: all four combinations equally likely
	a := []int{0, 0, 1, 1}
	b := []int{0, 1, 0, 1}
	approx(t, MutualInformation(a, b), 0, 1e-12, "independent MI = 0")
	// symmetry
	y := []int{1, 0, 1, 0, 0, 1}
	approx(t, MutualInformation(x, y), MutualInformation(y, x), 1e-12, "MI symmetric")
}

func TestMutualInformationMissing(t *testing.T) {
	x := []int{0, 1, -1, 0}
	y := []int{0, 1, 1, -1}
	// only rows 0,1 complete: perfectly dependent binary
	approx(t, MutualInformation(x, y), math.Log(2), 1e-12, "missing rows skipped")
	if MutualInformation([]int{-1}, []int{-1}) != 0 {
		t.Fatal("no complete rows gives 0")
	}
}

func TestConditionalMutualInformation(t *testing.T) {
	// X = Y deterministically within each Z group: I(X;Y|Z) = avg within-group MI.
	x := []int{0, 1, 0, 1}
	y := []int{0, 1, 0, 1}
	z := []int{0, 0, 1, 1}
	approx(t, ConditionalMutualInformation(x, y, z), math.Log(2), 1e-12, "cmi deterministic")
	// If Z fully explains both (X and Y constant within groups), CMI = 0.
	x2 := []int{0, 0, 1, 1}
	y2 := []int{0, 0, 1, 1}
	approx(t, ConditionalMutualInformation(x2, y2, z), 0, 1e-12, "cmi explained away")
	if ConditionalMutualInformation([]int{-1}, []int{0}, []int{0}) != 0 {
		t.Fatal("missing-only rows give 0")
	}
}

func TestSymmetricUncertainty(t *testing.T) {
	x := []int{0, 0, 1, 1}
	approx(t, SymmetricUncertainty(x, x), 1, 1e-12, "SU(X,X)=1")
	b := []int{0, 1, 0, 1}
	approx(t, SymmetricUncertainty(x, b), 0, 1e-12, "SU independent = 0")
	if SymmetricUncertainty([]int{0, 0}, []int{0, 0}) != 0 {
		t.Fatal("zero-entropy SU must be 0")
	}
}

func TestInformationGainAlias(t *testing.T) {
	x := []int{0, 1, 0, 1}
	y := []int{0, 1, 1, 0}
	approx(t, InformationGain(x, y), MutualInformation(x, y), 0, "IG alias")
}

func TestReliefSeparatesRelevantFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 200
	rows := make([][]float64, n)
	y := make([]int, n)
	for i := range rows {
		cls := i % 2
		y[i] = cls
		relevant := float64(cls)*5 + rng.NormFloat64()*0.3
		noise := rng.Float64() * 10
		rows[i] = []float64{relevant, noise}
	}
	w := ReliefScores(rows, y, 100, rng)
	if w[0] <= w[1] {
		t.Fatalf("relevant feature must outscore noise: %v", w)
	}
	if w[0] < 0.2 {
		t.Fatalf("relevant feature score too low: %v", w[0])
	}
}

func TestReliefDegenerate(t *testing.T) {
	if w := ReliefScores(nil, nil, 10, rand.New(rand.NewSource(1))); w != nil {
		t.Fatal("empty input gives nil")
	}
	w := ReliefScores([][]float64{{1}}, []int{0}, 10, rand.New(rand.NewSource(1)))
	if w[0] != 0 {
		t.Fatal("single row gives zero weights")
	}
	// single class: no miss exists, weights stay zero
	rows := [][]float64{{1}, {2}, {3}}
	w2 := ReliefScores(rows, []int{0, 0, 0}, 10, rand.New(rand.NewSource(1)))
	if w2[0] != 0 {
		t.Fatal("single-class data gives zero weights")
	}
}

// Property: MI is non-negative and bounded by min(H(X), H(Y)).
func TestMutualInformationBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100
		x := make([]int, n)
		y := make([]int, n)
		for i := 0; i < n; i++ {
			x[i] = rng.Intn(4)
			y[i] = (x[i] + rng.Intn(3)) % 4
		}
		mi := MutualInformation(x, y)
		bound := math.Min(Entropy(x), Entropy(y))
		return mi >= 0 && mi <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Spearman is invariant under strictly monotone transforms.
func TestSpearmanMonotoneInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = x[i] + rng.NormFloat64()
		}
		r1 := Spearman(x, y)
		tx := make([]float64, n)
		for i, v := range x {
			tx[i] = math.Exp(v) // strictly increasing
		}
		r2 := Spearman(tx, y)
		return math.Abs(r1-r2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: SU is symmetric and in [0, 1].
func TestSymmetricUncertaintyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 80
		x := make([]int, n)
		y := make([]int, n)
		for i := 0; i < n; i++ {
			x[i] = rng.Intn(5)
			y[i] = rng.Intn(3)
		}
		a, b := SymmetricUncertainty(x, y), SymmetricUncertainty(y, x)
		return math.Abs(a-b) < 1e-9 && a >= 0 && a <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCorrectedMutualInformation(t *testing.T) {
	// Independent variables: raw MI estimate is biased upward, the
	// corrected estimate must be (near) zero.
	rng := rand.New(rand.NewSource(61))
	n := 300
	x := make([]int, n)
	y := make([]int, n)
	for i := range x {
		x[i] = rng.Intn(10)
		y[i] = rng.Intn(10)
	}
	raw := MutualInformation(x, y)
	corrected := CorrectedMutualInformation(x, y)
	if corrected >= raw {
		t.Fatalf("correction must reduce the estimate: %v vs %v", corrected, raw)
	}
	if corrected > 0.05 {
		t.Fatalf("independent vars corrected MI %v should be ~0", corrected)
	}
	// Strong dependence survives the correction.
	dep := CorrectedMutualInformation(x, x)
	if dep < Entropy(x)*0.8 {
		t.Fatalf("dependence must survive correction: %v vs H=%v", dep, Entropy(x))
	}
	if CorrectedMutualInformation([]int{-1}, []int{-1}) != 0 {
		t.Fatal("missing-only input gives 0")
	}
}

func TestCorrectedConditionalMutualInformation(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	n := 400
	x := make([]int, n)
	y := make([]int, n)
	z := make([]int, n)
	for i := range x {
		x[i] = rng.Intn(6)
		y[i] = rng.Intn(6)
		z[i] = rng.Intn(2)
	}
	raw := ConditionalMutualInformation(x, y, z)
	corrected := CorrectedConditionalMutualInformation(x, y, z)
	if corrected >= raw {
		t.Fatalf("cmi correction must reduce: %v vs %v", corrected, raw)
	}
	if corrected > 0.05 {
		t.Fatalf("independent corrected CMI %v should be ~0", corrected)
	}
	if CorrectedConditionalMutualInformation([]int{-1}, []int{0}, []int{0}) != 0 {
		t.Fatal("empty support gives 0")
	}
}

func TestEntropyDeterministicSummation(t *testing.T) {
	// Same multiset in different order must give bit-identical entropy
	// (guards the sorted-key summation that Run determinism relies on).
	a := []int{0, 1, 2, 3, 4, 0, 1, 2, 0, 1}
	b := []int{4, 3, 2, 1, 0, 2, 1, 0, 1, 0}
	if Entropy(a) != Entropy(b) {
		t.Fatal("entropy must not depend on input order")
	}
	if MutualInformation(a, a) != MutualInformation(b, b) {
		t.Fatal("MI must not depend on input order")
	}
}

func TestSpearmanPairwiseComplete(t *testing.T) {
	// A null row must be deleted BEFORE ranking (scipy's pairwise-complete
	// semantics). Ranking all rows first and dropping NaN pairs afterwards
	// correlates stale ranks: this case gives 10.5/sqrt(123) ~ 0.9468 under
	// that bug, versus the correct 3/sqrt(10).
	x := []float64{math.NaN(), 1, 2, 3, 4, 5}
	y := []float64{2, 0, 0, 1, 2, 2}
	want := 3 / math.Sqrt(10)
	approx(t, Spearman(x, y), want, 1e-12, "pairwise-complete spearman")
	// NaN in y must delete the same row.
	x2 := []float64{7, 1, 2, 3, 4, 5}
	y2 := []float64{math.NaN(), 0, 0, 1, 2, 2}
	approx(t, Spearman(x2, y2), want, 1e-12, "NaN in y")
	// Null-free inputs are untouched.
	approx(t, Spearman([]float64{1, 2, 3}, []float64{3, 5, 9}), 1, 1e-12, "clean fast path")
}

func TestSpearmanPairwiseMismatchDegrades(t *testing.T) {
	// Corrupt (length-mismatched) inputs degrade to the common prefix
	// instead of panicking.
	if got := Spearman([]float64{1}, []float64{1, 2}); got != 0 {
		t.Fatalf("mismatched Spearman = %v, want 0", got)
	}
	if got := Spearman([]float64{1, 2, 3, 4}, []float64{3, 5, 9}); got != 1 {
		t.Fatalf("prefix Spearman = %v, want 1", got)
	}
	if got := MutualInformation([]int{0, 1}, []int{0, 1, 0}); got < 0 {
		t.Fatalf("mismatched MI = %v, want >= 0", got)
	}
	if got := ConditionalMutualInformation([]int{0, 1}, []int{0, 1, 0}, []int{0}); got != 0 {
		t.Fatalf("mismatched CMI = %v, want 0", got)
	}
}
