// Package graph implements the Dataset Relation Graph (DRG) of Section IV:
// an undirected, weighted multigraph whose nodes are datasets and whose
// edges are join opportunities. Two nodes may be connected by many edges,
// one per candidate join-column pair — that is what makes the DRG a
// multigraph and distinguishes AutoFeat from the simple joinability graphs
// of ARDA and MAB (Table I).
//
// The package also provides the traversals AutoFeat relies on: BFS level
// order (the traversal the paper argues for in Section IV-A), DFS (kept for
// the ablation bench) and acyclic join-path enumeration.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"autofeat/internal/frame"
)

// Edge is one join opportunity between datasets A and B: A.ColA ⋈ B.ColB.
// Edges are undirected; A/B ordering is storage detail only.
type Edge struct {
	A, B       string  // dataset (node) names
	ColA, ColB string  // join column on each side (unqualified)
	Weight     float64 // similarity score in (0,1]; 1.0 for KFK constraints
	KFK        bool    // true when the edge comes from an integrity constraint
}

// Oriented returns the edge with A == from, flipping sides if needed.
func (e Edge) Oriented(from string) Edge {
	if e.A == from {
		return e
	}
	return Edge{A: e.B, B: e.A, ColA: e.ColB, ColB: e.ColA, Weight: e.Weight, KFK: e.KFK}
}

// Other returns the endpoint that is not the given node.
func (e Edge) Other(node string) string {
	if e.A == node {
		return e.B
	}
	return e.A
}

// String renders the edge in the paper's arrow notation.
func (e Edge) String() string {
	return fmt.Sprintf("%s.%s -> %s.%s (w=%.2f)", e.A, e.ColA, e.B, e.ColB, e.Weight)
}

// Graph is the Dataset Relation Graph. It doubles as the dataset registry:
// each node carries its table, so traversal code can materialise joins
// without a side lookup.
type Graph struct {
	tables map[string]*frame.Frame
	adj    map[string][]Edge // node -> incident edges (each edge stored under both endpoints)
	nEdges int
}

// New creates an empty DRG.
func New() *Graph {
	return &Graph{tables: make(map[string]*frame.Frame), adj: make(map[string][]Edge)}
}

// AddTable registers a dataset as a node. Re-adding a name replaces the
// table but keeps its edges.
func (g *Graph) AddTable(f *frame.Frame) {
	if _, ok := g.tables[f.Name()]; !ok {
		g.adj[f.Name()] = nil
	}
	g.tables[f.Name()] = f
}

// Table returns the dataset registered under name, or nil.
func (g *Graph) Table(name string) *frame.Frame { return g.tables[name] }

// HasNode reports whether a dataset with the given name is registered.
func (g *Graph) HasNode(name string) bool {
	_, ok := g.tables[name]
	return ok
}

// Nodes returns all node names, sorted.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.tables))
	for n := range g.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.tables) }

// NumEdges returns the number of distinct edges (each undirected edge
// counted once).
func (g *Graph) NumEdges() int { return g.nEdges }

// AddEdge inserts a join opportunity. Both endpoints must be registered and
// distinct, the named columns must exist in their tables, and the weight
// must be positive.
func (g *Graph) AddEdge(e Edge) error {
	if e.A == e.B {
		return fmt.Errorf("graph: self-loop on %q", e.A)
	}
	if e.Weight <= 0 {
		return fmt.Errorf("graph: non-positive weight %v on %s", e.Weight, e)
	}
	ta, ok := g.tables[e.A]
	if !ok {
		return fmt.Errorf("graph: unknown node %q", e.A)
	}
	tb, ok := g.tables[e.B]
	if !ok {
		return fmt.Errorf("graph: unknown node %q", e.B)
	}
	if !ta.HasColumn(e.ColA) {
		return fmt.Errorf("graph: table %q has no column %q", e.A, e.ColA)
	}
	if !tb.HasColumn(e.ColB) {
		return fmt.Errorf("graph: table %q has no column %q", e.B, e.ColB)
	}
	g.adj[e.A] = append(g.adj[e.A], e)
	g.adj[e.B] = append(g.adj[e.B], e)
	g.nEdges++
	return nil
}

// Clone returns a deep copy of the graph structure: adjacency slices
// are copied, table frames are shared (frames are immutable snapshots).
// The incremental lake-maintenance path patches a clone so memoised
// DRGs handed to in-flight requests are never mutated underneath them.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		tables: make(map[string]*frame.Frame, len(g.tables)),
		adj:    make(map[string][]Edge, len(g.adj)),
		nEdges: g.nEdges,
	}
	for n, t := range g.tables {
		c.tables[n] = t
	}
	for n, es := range g.adj {
		c.adj[n] = append([]Edge(nil), es...)
	}
	return c
}

// RemoveTable deletes a node and every edge incident to it. Removing an
// unknown name is a no-op.
func (g *Graph) RemoveTable(name string) {
	if _, ok := g.tables[name]; !ok {
		return
	}
	for _, e := range g.adj[name] {
		other := e.Other(name)
		if other == name {
			continue
		}
		kept := g.adj[other][:0]
		for _, oe := range g.adj[other] {
			if oe.A == name || oe.B == name {
				continue
			}
			kept = append(kept, oe)
		}
		g.adj[other] = kept
	}
	g.nEdges -= len(g.adj[name])
	delete(g.adj, name)
	delete(g.tables, name)
}

// EdgesFrom returns all edges incident to node, oriented so that A == node,
// in deterministic order (by neighbour, then column pair).
func (g *Graph) EdgesFrom(node string) []Edge {
	es := g.adj[node]
	out := make([]Edge, len(es))
	for i, e := range es {
		out[i] = e.Oriented(node)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].B != out[j].B {
			return out[i].B < out[j].B
		}
		if out[i].ColA != out[j].ColA {
			return out[i].ColA < out[j].ColA
		}
		return out[i].ColB < out[j].ColB
	})
	return out
}

// EdgesBetween returns the multiset of edges between a and b, oriented from
// a, in deterministic order.
func (g *Graph) EdgesBetween(a, b string) []Edge {
	var out []Edge
	for _, e := range g.EdgesFrom(a) {
		if e.B == b {
			out = append(out, e)
		}
	}
	return out
}

// Neighbors returns the distinct neighbour names of node, sorted.
func (g *Graph) Neighbors(node string) []string {
	seen := make(map[string]struct{})
	for _, e := range g.adj[node] {
		seen[e.Other(node)] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Degree returns the number of incident edges (counting parallel edges).
func (g *Graph) Degree(node string) int { return len(g.adj[node]) }

// BFSLevels returns the nodes reachable from start grouped by hop distance:
// level 0 is [start], level 1 its neighbours, and so on. This is the level
// order AutoFeat's traversal follows (Section IV-A).
func (g *Graph) BFSLevels(start string) [][]string {
	if !g.HasNode(start) {
		return nil
	}
	visited := map[string]bool{start: true}
	var levels [][]string
	cur := []string{start}
	for len(cur) > 0 {
		levels = append(levels, cur)
		var next []string
		for _, n := range cur {
			for _, nb := range g.Neighbors(n) {
				if !visited[nb] {
					visited[nb] = true
					next = append(next, nb)
				}
			}
		}
		sort.Strings(next)
		cur = next
	}
	return levels
}

// DFSOrder returns nodes reachable from start in depth-first preorder; used
// by the traversal ablation bench.
func (g *Graph) DFSOrder(start string) []string {
	if !g.HasNode(start) {
		return nil
	}
	visited := make(map[string]bool)
	var out []string
	var visit func(string)
	visit = func(n string) {
		visited[n] = true
		out = append(out, n)
		for _, nb := range g.Neighbors(n) {
			if !visited[nb] {
				visit(nb)
			}
		}
	}
	visit(start)
	return out
}

// EnumeratePaths returns every acyclic join path starting at start with
// 1 ≤ length ≤ maxLen, as edge sequences oriented along the path. Each
// parallel edge yields a distinct path (Definition IV.4: the DRG is a
// multigraph and every edge choice is its own join path).
func (g *Graph) EnumeratePaths(start string, maxLen int) [][]Edge {
	if !g.HasNode(start) || maxLen < 1 {
		return nil
	}
	var out [][]Edge
	onPath := map[string]bool{start: true}
	var cur []Edge
	var extend func(node string)
	extend = func(node string) {
		if len(cur) >= maxLen {
			return
		}
		for _, e := range g.EdgesFrom(node) {
			if onPath[e.B] {
				continue
			}
			cur = append(cur, e)
			cp := make([]Edge, len(cur))
			copy(cp, cur)
			out = append(out, cp)
			onPath[e.B] = true
			extend(e.B)
			onPath[e.B] = false
			cur = cur[:len(cur)-1]
		}
	}
	extend(start)
	return out
}

// DOT renders the graph in Graphviz DOT format for inspection.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("graph DRG {\n")
	for _, n := range g.Nodes() {
		fmt.Fprintf(&b, "  %q;\n", n)
	}
	seen := make(map[string]bool)
	for _, n := range g.Nodes() {
		for _, e := range g.EdgesFrom(n) {
			key := edgeKey(e)
			if seen[key] {
				continue
			}
			seen[key] = true
			style := ""
			if e.KFK {
				style = ", style=bold"
			}
			fmt.Fprintf(&b, "  %q -- %q [label=%q, weight=%.2f%s];\n",
				e.A, e.B, e.ColA+"="+e.ColB, e.Weight, style)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func edgeKey(e Edge) string {
	if e.A > e.B || (e.A == e.B && e.ColA > e.ColB) {
		e = Edge{A: e.B, B: e.A, ColA: e.ColB, ColB: e.ColA}
	}
	return e.A + "\x00" + e.ColA + "\x00" + e.B + "\x00" + e.ColB
}
