package graph

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"autofeat/internal/frame"
)

// The DRG's offline/online split (Section III-C: graph construction is
// the offline component) makes edge persistence valuable: schema matching
// over every table pair is the expensive part, while the edges it yields
// are tiny. Save/Load serialise the edge structure as JSON; tables are
// NOT serialised (they live in their own CSV files) and must be
// re-attached on load.

// edgeJSON is the wire form of an Edge.
type edgeJSON struct {
	A      string  `json:"a"`
	ColA   string  `json:"col_a"`
	B      string  `json:"b"`
	ColB   string  `json:"col_b"`
	Weight float64 `json:"weight"`
	KFK    bool    `json:"kfk,omitempty"`
}

type graphJSON struct {
	Nodes []string   `json:"nodes"`
	Edges []edgeJSON `json:"edges"`
}

// Save writes the graph structure (node names and edges, not table data)
// as JSON.
func (g *Graph) Save(w io.Writer) error {
	doc := graphJSON{Nodes: g.Nodes()}
	seen := make(map[string]bool)
	for _, n := range g.Nodes() {
		for _, e := range g.EdgesFrom(n) {
			key := edgeKey(e)
			if seen[key] {
				continue
			}
			seen[key] = true
			doc.Edges = append(doc.Edges, edgeJSON{
				A: e.A, ColA: e.ColA, B: e.B, ColB: e.ColB,
				Weight: e.Weight, KFK: e.KFK,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// SaveFile writes the graph structure to a file.
func (g *Graph) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reconstructs a graph from JSON, attaching the given tables. Every
// node in the document must have a matching table (the edges reference
// their columns), and every edge is re-validated against the tables.
func Load(r io.Reader, tables []*frame.Frame) (*Graph, error) {
	var doc graphJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("graph: decode: %w", err)
	}
	byName := make(map[string]*frame.Frame, len(tables))
	for _, t := range tables {
		byName[t.Name()] = t
	}
	g := New()
	for _, n := range doc.Nodes {
		t, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("graph: node %q has no table attached", n)
		}
		g.AddTable(t)
	}
	for _, e := range doc.Edges {
		err := g.AddEdge(Edge{
			A: e.A, ColA: e.ColA, B: e.B, ColB: e.ColB,
			Weight: e.Weight, KFK: e.KFK,
		})
		if err != nil {
			return nil, fmt.Errorf("graph: load edge: %w", err)
		}
	}
	return g, nil
}

// LoadFile reconstructs a graph from a JSON file.
func LoadFile(path string, tables []*frame.Frame) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, tables)
}
