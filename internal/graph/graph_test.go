package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"autofeat/internal/frame"
)

// chainGraph builds base -- t1 -- t2 with one extra parallel edge between
// base and t1 (multigraph) and returns it.
func chainGraph(t *testing.T) *Graph {
	t.Helper()
	g := New()
	base := frame.New("base")
	addCol(t, base, frame.NewIntColumn("id", []int64{1, 2}, nil))
	addCol(t, base, frame.NewIntColumn("zip", []int64{10, 20}, nil))
	t1 := frame.New("t1")
	addCol(t, t1, frame.NewIntColumn("pid", []int64{1, 2}, nil))
	addCol(t, t1, frame.NewIntColumn("area", []int64{10, 20}, nil))
	addCol(t, t1, frame.NewIntColumn("ref", []int64{5, 6}, nil))
	t2 := frame.New("t2")
	addCol(t, t2, frame.NewIntColumn("key", []int64{5, 6}, nil))
	g.AddTable(base)
	g.AddTable(t1)
	g.AddTable(t2)
	mustEdge(t, g, Edge{A: "base", B: "t1", ColA: "id", ColB: "pid", Weight: 1, KFK: true})
	mustEdge(t, g, Edge{A: "base", B: "t1", ColA: "zip", ColB: "area", Weight: 0.7})
	mustEdge(t, g, Edge{A: "t1", B: "t2", ColA: "ref", ColB: "key", Weight: 1, KFK: true})
	return g
}

func addCol(t *testing.T, f *frame.Frame, c *frame.Column) {
	t.Helper()
	if err := f.AddColumn(c); err != nil {
		t.Fatal(err)
	}
}

func mustEdge(t *testing.T, g *Graph, e Edge) {
	t.Helper()
	if err := g.AddEdge(e); err != nil {
		t.Fatal(err)
	}
}

func TestGraphBasics(t *testing.T) {
	g := chainGraph(t)
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("graph shape %d/%d, want 3/3", g.NumNodes(), g.NumEdges())
	}
	if !g.HasNode("base") || g.HasNode("ghost") {
		t.Fatal("HasNode broken")
	}
	if g.Table("t1") == nil {
		t.Fatal("Table lookup broken")
	}
	nodes := g.Nodes()
	if len(nodes) != 3 || nodes[0] != "base" {
		t.Fatalf("Nodes = %v", nodes)
	}
	if g.Degree("base") != 2 {
		t.Fatalf("Degree(base) = %d, want 2 (parallel edges count)", g.Degree("base"))
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := chainGraph(t)
	cases := []Edge{
		{A: "base", B: "base", ColA: "id", ColB: "id", Weight: 1},   // self loop
		{A: "base", B: "t1", ColA: "id", ColB: "pid", Weight: 0},    // zero weight
		{A: "ghost", B: "t1", ColA: "id", ColB: "pid", Weight: 1},   // unknown A
		{A: "base", B: "ghost", ColA: "id", ColB: "pid", Weight: 1}, // unknown B
		{A: "base", B: "t1", ColA: "nope", ColB: "pid", Weight: 1},  // missing colA
		{A: "base", B: "t1", ColA: "id", ColB: "nope", Weight: 1},   // missing colB
	}
	for i, e := range cases {
		if err := g.AddEdge(e); err == nil {
			t.Errorf("case %d (%v) must fail", i, e)
		}
	}
}

func TestEdgesBetweenMultigraph(t *testing.T) {
	g := chainGraph(t)
	es := g.EdgesBetween("base", "t1")
	if len(es) != 2 {
		t.Fatalf("parallel edges = %d, want 2", len(es))
	}
	for _, e := range es {
		if e.A != "base" {
			t.Fatal("edges must be oriented from the query node")
		}
	}
	// From the other side too.
	es2 := g.EdgesBetween("t1", "base")
	if len(es2) != 2 || es2[0].A != "t1" {
		t.Fatalf("reverse orientation broken: %v", es2)
	}
}

func TestEdgeOrientedAndOther(t *testing.T) {
	e := Edge{A: "x", B: "y", ColA: "a", ColB: "b", Weight: 0.5}
	r := e.Oriented("y")
	if r.A != "y" || r.ColA != "b" || r.B != "x" || r.ColB != "a" {
		t.Fatalf("Oriented flip wrong: %+v", r)
	}
	if e.Oriented("x") != e {
		t.Fatal("Oriented no-op wrong")
	}
	if e.Other("x") != "y" || e.Other("y") != "x" {
		t.Fatal("Other broken")
	}
	if !strings.Contains(e.String(), "x.a -> y.b") {
		t.Fatalf("String: %s", e.String())
	}
}

func TestNeighborsDistinct(t *testing.T) {
	g := chainGraph(t)
	nb := g.Neighbors("base")
	if len(nb) != 1 || nb[0] != "t1" {
		t.Fatalf("Neighbors(base) = %v, want [t1] (parallel edges dedup)", nb)
	}
	nb1 := g.Neighbors("t1")
	if len(nb1) != 2 {
		t.Fatalf("Neighbors(t1) = %v", nb1)
	}
}

func TestBFSLevels(t *testing.T) {
	g := chainGraph(t)
	levels := g.BFSLevels("base")
	if len(levels) != 3 {
		t.Fatalf("levels = %v", levels)
	}
	if levels[0][0] != "base" || levels[1][0] != "t1" || levels[2][0] != "t2" {
		t.Fatalf("level order wrong: %v", levels)
	}
	if g.BFSLevels("ghost") != nil {
		t.Fatal("unknown start gives nil")
	}
}

func TestDFSOrder(t *testing.T) {
	g := chainGraph(t)
	order := g.DFSOrder("base")
	if len(order) != 3 || order[0] != "base" {
		t.Fatalf("DFS = %v", order)
	}
	if g.DFSOrder("ghost") != nil {
		t.Fatal("unknown start gives nil")
	}
}

func TestEnumeratePaths(t *testing.T) {
	g := chainGraph(t)
	// Length 1: two parallel base->t1 edges = 2 paths.
	p1 := g.EnumeratePaths("base", 1)
	if len(p1) != 2 {
		t.Fatalf("len-1 paths = %d, want 2", len(p1))
	}
	// Length 2: each of the 2 base->t1 edges extends to t2 = 2 more paths.
	p2 := g.EnumeratePaths("base", 2)
	if len(p2) != 4 {
		t.Fatalf("len<=2 paths = %d, want 4", len(p2))
	}
	for _, p := range p2 {
		if p[0].A != "base" {
			t.Fatal("paths must start at base")
		}
		// Acyclic: no repeated nodes.
		seen := map[string]bool{p[0].A: true}
		for _, e := range p {
			if seen[e.B] {
				t.Fatalf("cycle in path %v", p)
			}
			seen[e.B] = true
		}
	}
	if g.EnumeratePaths("base", 0) != nil {
		t.Fatal("maxLen 0 gives nil")
	}
	if g.EnumeratePaths("ghost", 3) != nil {
		t.Fatal("unknown start gives nil")
	}
}

func TestDOT(t *testing.T) {
	g := chainGraph(t)
	dot := g.DOT()
	if !strings.Contains(dot, `"base" -- "t1"`) {
		t.Fatalf("DOT missing edge:\n%s", dot)
	}
	if !strings.Contains(dot, "style=bold") {
		t.Fatal("KFK edges must be bold")
	}
	// Each undirected edge rendered once: count " -- " occurrences.
	if n := strings.Count(dot, " -- "); n != 3 {
		t.Fatalf("DOT edge count = %d, want 3", n)
	}
}

func TestAddTableReplaceKeepsEdges(t *testing.T) {
	g := chainGraph(t)
	base2 := frame.New("base")
	addCol(t, base2, frame.NewIntColumn("id", []int64{9}, nil))
	addCol(t, base2, frame.NewIntColumn("zip", []int64{9}, nil))
	g.AddTable(base2)
	if g.NumEdges() != 3 {
		t.Fatal("replacing a table must keep edges")
	}
	if g.Table("base").NumRows() != 1 {
		t.Fatal("table must be replaced")
	}
}

// Property: every enumerated path is acyclic and within the length bound.
func TestEnumeratePathsProperty(t *testing.T) {
	g := chainGraph(t)
	f := func(rawLen uint8) bool {
		maxLen := int(rawLen%4) + 1
		for _, p := range g.EnumeratePaths("base", maxLen) {
			if len(p) < 1 || len(p) > maxLen {
				return false
			}
			seen := map[string]bool{"base": true}
			prev := "base"
			for _, e := range p {
				if e.A != prev || seen[e.B] {
					return false
				}
				seen[e.B] = true
				prev = e.B
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGraphSaveLoadRoundTrip(t *testing.T) {
	g := chainGraph(t)
	var buf strings.Builder
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	tables := []*frame.Frame{g.Table("base"), g.Table("t1"), g.Table("t2")}
	got, err := Load(strings.NewReader(buf.String()), tables)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	// Edge weights and KFK flags survive.
	es := got.EdgesBetween("base", "t1")
	if len(es) != 2 {
		t.Fatalf("parallel edges lost: %v", es)
	}
	kfk := 0
	for _, e := range es {
		if e.KFK {
			kfk++
		}
	}
	if kfk != 1 {
		t.Fatalf("KFK flags lost: %v", es)
	}
}

func TestGraphLoadMissingTable(t *testing.T) {
	g := chainGraph(t)
	var buf strings.Builder
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Drop one table from the attachment list.
	tables := []*frame.Frame{g.Table("base"), g.Table("t1")}
	if _, err := Load(strings.NewReader(buf.String()), tables); err == nil {
		t.Fatal("missing table must fail")
	}
	if _, err := Load(strings.NewReader("{not json"), tables); err == nil {
		t.Fatal("bad json must fail")
	}
}

func TestGraphSaveLoadFile(t *testing.T) {
	g := chainGraph(t)
	path := t.TempDir() + "/drg.json"
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	tables := []*frame.Frame{g.Table("base"), g.Table("t1"), g.Table("t2")}
	got, err := LoadFile(path, tables)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != 3 {
		t.Fatal("file round trip lost edges")
	}
	if _, err := LoadFile("/nonexistent.json", tables); err == nil {
		t.Fatal("missing file must fail")
	}
}
