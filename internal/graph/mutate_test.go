package graph

import (
	"reflect"
	"testing"
)

func snapshot(g *Graph) map[string][]Edge {
	out := map[string][]Edge{}
	for _, n := range g.Nodes() {
		out[n] = g.EdgesFrom(n)
	}
	return out
}

func TestCloneIndependence(t *testing.T) {
	g := chainGraph(t)
	before := snapshot(g)
	c := g.Clone()
	if !reflect.DeepEqual(snapshot(c), before) {
		t.Fatal("clone must start edge-identical to the original")
	}
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatal("clone counts differ")
	}
	// Frames are shared (cheap), topology is not.
	if c.Table("base") != g.Table("base") {
		t.Fatal("clone must share frames, not copy them")
	}
	mustEdge(t, c, Edge{A: "base", B: "t2", ColA: "id", ColB: "key", Weight: 0.6})
	c.RemoveTable("t1")
	if !reflect.DeepEqual(snapshot(g), before) {
		t.Fatal("mutating the clone leaked into the original")
	}
	if g.NumEdges() != 3 {
		t.Fatalf("original edge count changed: %d", g.NumEdges())
	}
}

func TestRemoveTable(t *testing.T) {
	g := chainGraph(t)
	g.RemoveTable("t1") // t1 carries all three edges
	if g.HasNode("t1") || g.Table("t1") != nil {
		t.Fatal("removed node still present")
	}
	if g.NumNodes() != 2 || g.NumEdges() != 0 {
		t.Fatalf("want 2 isolated nodes, got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	// Both former endpoints must have clean adjacency.
	if len(g.EdgesFrom("base")) != 0 || len(g.EdgesFrom("t2")) != 0 {
		t.Fatal("stale incident edges survive on the other endpoint")
	}
	if len(g.Neighbors("base")) != 0 {
		t.Fatal("stale neighbor list")
	}
	g.RemoveTable("nope") // unknown name is a no-op
	if g.NumNodes() != 2 {
		t.Fatal("no-op removal changed the graph")
	}
}

func TestRemoveLeafKeepsOtherEdges(t *testing.T) {
	g := chainGraph(t)
	g.RemoveTable("t2")
	if g.NumEdges() != 2 {
		t.Fatalf("want the two base~t1 edges to survive, got %d", g.NumEdges())
	}
	es := g.EdgesBetween("base", "t1")
	if len(es) != 2 {
		t.Fatalf("parallel base~t1 edges lost: %v", es)
	}
	if len(g.EdgesFrom("t1")) != 2 {
		t.Fatal("t1 adjacency corrupted")
	}
}
