package discovery

import (
	"hash/fnv"
	"math"
	"sync"

	"autofeat/internal/frame"
	"autofeat/internal/graph"
)

// MinHashSketch is a fixed-size signature of a column's distinct value
// set, supporting constant-time Jaccard and containment estimation — the
// technique Lazo (Castro Fernandez et al., ICDE 2019) uses to scale
// joinability discovery to large lakes. Sketching a column is O(values);
// comparing two sketches is O(k) regardless of column size.
type MinHashSketch struct {
	mins []uint64
	// Cardinality is the exact distinct count observed while sketching
	// (cheap to carry along and needed for containment estimation).
	Cardinality int
}

// DefaultSketchSize is the number of hash slots; 128 gives a standard
// error of about 1/sqrt(128) ≈ 0.09 on Jaccard estimates.
const DefaultSketchSize = 128

// Sketch builds a MinHash signature of the column's distinct join keys.
// k <= 0 uses DefaultSketchSize.
func Sketch(c *frame.Column, k int) *MinHashSketch {
	if k <= 0 {
		k = DefaultSketchSize
	}
	s := &MinHashSketch{mins: make([]uint64, k)}
	for i := range s.mins {
		s.mins[i] = math.MaxUint64
	}
	seen := make(map[string]struct{}, 256)
	for i, n := 0, c.Len(); i < n; i++ {
		key, ok := c.Key(i)
		if !ok {
			continue
		}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		h := hash64(key)
		// k permutations simulated by k cheap derived hashes
		// (h XOR salt, remixed), the standard one-hash trick.
		for j := range s.mins {
			hj := remix(h ^ salts[j%len(salts)]*uint64(j+1))
			if hj < s.mins[j] {
				s.mins[j] = hj
			}
		}
	}
	s.Cardinality = len(seen)
	return s
}

var salts = [...]uint64{
	0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9, 0x94d049bb133111eb,
	0x2545f4914f6cdd1d, 0xd6e8feb86659fd93, 0xa5a5a5a5a5a5a5a5,
	0x123456789abcdef1, 0xfedcba9876543211,
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// remix is a 64-bit finaliser (splitmix64's last stage) giving each slot
// an independent-looking permutation.
func remix(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Jaccard estimates |A ∩ B| / |A ∪ B| as the fraction of matching slots.
// Sketches of different sizes compare over their common slot prefix:
// slot j is the same permutation regardless of sketch size, so the
// prefix is itself a valid (smaller, higher-variance) MinHash signature.
// Silently returning 0 here would erase all instance evidence whenever a
// lake-default sketch met a request-override SketchSize.
func (s *MinHashSketch) Jaccard(o *MinHashSketch) float64 {
	n := len(s.mins)
	if len(o.mins) < n {
		n = len(o.mins)
	}
	if n == 0 || s.Cardinality == 0 || o.Cardinality == 0 {
		return 0
	}
	match := 0
	for i := 0; i < n; i++ {
		if s.mins[i] == o.mins[i] {
			match++
		}
	}
	return float64(match) / float64(n)
}

// Containment estimates |A ∩ B| / |A| (how much of s is inside o) from
// the Jaccard estimate and the two cardinalities — the Lazo rescaling:
//
//	|A ∩ B| = J/(1+J) · (|A| + |B|),   containment = |A ∩ B| / |A|.
func (s *MinHashSketch) Containment(o *MinHashSketch) float64 {
	if s.Cardinality == 0 {
		return 0
	}
	j := s.Jaccard(o)
	inter := j / (1 + j) * float64(s.Cardinality+o.Cardinality)
	c := inter / float64(s.Cardinality)
	return math.Max(0, math.Min(1, c))
}

// SketchMatcher is an alternative Matcher backend that estimates instance
// similarity from MinHash sketches instead of exact value sets, trading a
// little precision for constant-time column comparisons. It implements
// the same scoring contract as Matcher and can be swapped into
// DiscoverDRGWith.
type SketchMatcher struct {
	NameWeight     float64
	InstanceWeight float64
	SketchSize     int

	// mu guards cache: sketched matching runs under the discovery worker
	// pool and the indexed DRG path, so concurrent MatchColumns calls
	// memoise sketches for the same lake simultaneously.
	mu    sync.Mutex
	cache map[*frame.Column]*MinHashSketch
}

// NewSketchMatcher returns the sketch-backed matcher with the same
// weights as NewMatcher.
func NewSketchMatcher() *SketchMatcher {
	return &SketchMatcher{
		NameWeight:     0.4,
		InstanceWeight: 0.6,
		SketchSize:     DefaultSketchSize,
		cache:          make(map[*frame.Column]*MinHashSketch),
	}
}

// Weights reports the schema/instance evidence blend, satisfying the
// Scorer contract the indexed discovery path derives its LSH banding
// from.
func (m *SketchMatcher) Weights() (name, instance float64) {
	return m.NameWeight, m.InstanceWeight
}

// sketch returns the memoised signature for c, building it on first use.
// Safe for concurrent use.
func (m *SketchMatcher) sketch(c *frame.Column) *MinHashSketch {
	m.mu.Lock()
	s, ok := m.cache[c]
	m.mu.Unlock()
	if ok {
		return s
	}
	s = Sketch(c, m.SketchSize)
	m.mu.Lock()
	m.cache[c] = s
	m.mu.Unlock()
	return s
}

// SketchOf returns the memoised signature for c (building it on first
// use) — the hook a shared LSHIndex uses to reuse this matcher's sketch
// cache instead of sketching every column twice.
func (m *SketchMatcher) SketchOf(c *frame.Column) *MinHashSketch { return m.sketch(c) }

// Evict drops the memoised sketches of the given columns. Lake mutation
// paths (ReplaceTable, DropTable) call it so a stale sketch of a
// replaced column can never score against live data.
func (m *SketchMatcher) Evict(cols []*frame.Column) {
	m.mu.Lock()
	for _, c := range cols {
		delete(m.cache, c)
	}
	m.mu.Unlock()
}

// CachedSketches reports how many column sketches are memoised.
func (m *SketchMatcher) CachedSketches() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cache)
}

// MatchColumns scores a column pair like Matcher.MatchColumns but with
// sketched containment as the instance evidence.
func (m *SketchMatcher) MatchColumns(a, b *frame.Column) float64 {
	if !joinCandidate(a) || !joinCandidate(b) {
		return 0
	}
	name := NameSimilarity(a.Name(), b.Name())
	sa, sb := m.sketch(a), m.sketch(b)
	inst := math.Max(sa.Containment(sb), sb.Containment(sa))
	wsum := m.NameWeight + m.InstanceWeight
	if wsum == 0 {
		return 0
	}
	return (m.NameWeight*name + m.InstanceWeight*inst) / wsum
}

// DiscoverDRGSketched builds the lake DRG with the MinHash-backed matcher;
// useful when tables are too large for exact value-set intersection.
func DiscoverDRGSketched(tables []*frame.Frame, threshold float64) (*graph.Graph, error) {
	m := NewSketchMatcher()
	return discoverWith(tables, threshold, m)
}
