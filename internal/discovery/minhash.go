package discovery

import (
	"math"
	"sync"

	"autofeat/internal/frame"
	"autofeat/internal/graph"
	"autofeat/internal/sketch"
)

// MinHashSketch is a fixed-size signature of a column's distinct value
// set, supporting constant-time Jaccard and containment estimation — the
// technique Lazo (Castro Fernandez et al., ICDE 2019) uses to scale
// joinability discovery to large lakes. It is an alias of sketch.MinHash
// so the columnar lake format (internal/frame) and the matcher share one
// hash family: a sketch persisted in a columnar footer is bit-identical
// to the one Sketch would compute, which is what lets cold opens skip
// re-sketching entirely.
type MinHashSketch = sketch.MinHash

// DefaultSketchSize is the number of hash slots; 128 gives a standard
// error of about 1/sqrt(128) ≈ 0.09 on Jaccard estimates.
const DefaultSketchSize = sketch.DefaultSize

// Sketch builds a MinHash signature of the column's distinct join keys.
// k <= 0 uses DefaultSketchSize. A column carrying a persisted signature
// of at least k slots (loaded from a columnar lake footer) is served
// from that signature's prefix without rescanning any values — slot j is
// the same permutation at every sketch size, so the prefix is exact, not
// an approximation.
func Sketch(c *frame.Column, k int) *MinHashSketch {
	if k <= 0 {
		k = DefaultSketchSize
	}
	if st := c.Stats(); st != nil && st.Sketch != nil && len(st.Sketch.Mins) >= k {
		return st.Sketch.Prefix(k)
	}
	s := sketch.New(k)
	seen := make(map[string]struct{}, 256)
	for i, n := 0, c.Len(); i < n; i++ {
		key, ok := c.Key(i)
		if !ok {
			continue
		}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		s.AddHash(sketch.Hash64(key))
	}
	s.Cardinality = len(seen)
	return s
}

// hash64 is the index-local alias of the shared base hash; the LSH
// value-anchor buckets use it so anchors and signatures stay in one
// hash family.
func hash64(s string) uint64 { return sketch.Hash64(s) }

// remix is the index-local alias of the shared slot finaliser, used by
// multi-row band folding.
func remix(z uint64) uint64 { return sketch.Remix(z) }

// SketchMatcher is an alternative Matcher backend that estimates instance
// similarity from MinHash sketches instead of exact value sets, trading a
// little precision for constant-time column comparisons. It implements
// the same scoring contract as Matcher and can be swapped into
// DiscoverDRGWith.
type SketchMatcher struct {
	NameWeight     float64
	InstanceWeight float64
	SketchSize     int

	// mu guards cache: sketched matching runs under the discovery worker
	// pool and the indexed DRG path, so concurrent MatchColumns calls
	// memoise sketches for the same lake simultaneously.
	mu    sync.Mutex
	cache map[*frame.Column]*MinHashSketch
}

// NewSketchMatcher returns the sketch-backed matcher with the same
// weights as NewMatcher.
func NewSketchMatcher() *SketchMatcher {
	return &SketchMatcher{
		NameWeight:     0.4,
		InstanceWeight: 0.6,
		SketchSize:     DefaultSketchSize,
		cache:          make(map[*frame.Column]*MinHashSketch),
	}
}

// Weights reports the schema/instance evidence blend, satisfying the
// Scorer contract the indexed discovery path derives its LSH banding
// from.
func (m *SketchMatcher) Weights() (name, instance float64) {
	return m.NameWeight, m.InstanceWeight
}

// sketch returns the memoised signature for c, building it on first use.
// Safe for concurrent use.
func (m *SketchMatcher) sketch(c *frame.Column) *MinHashSketch {
	m.mu.Lock()
	s, ok := m.cache[c]
	m.mu.Unlock()
	if ok {
		return s
	}
	s = Sketch(c, m.SketchSize)
	m.mu.Lock()
	m.cache[c] = s
	m.mu.Unlock()
	return s
}

// SketchOf returns the memoised signature for c (building it on first
// use) — the hook a shared LSHIndex uses to reuse this matcher's sketch
// cache instead of sketching every column twice.
func (m *SketchMatcher) SketchOf(c *frame.Column) *MinHashSketch { return m.sketch(c) }

// Evict drops the memoised sketches of the given columns. Lake mutation
// paths (ReplaceTable, DropTable) call it so a stale sketch of a
// replaced column can never score against live data.
func (m *SketchMatcher) Evict(cols []*frame.Column) {
	m.mu.Lock()
	for _, c := range cols {
		delete(m.cache, c)
	}
	m.mu.Unlock()
}

// CachedSketches reports how many column sketches are memoised.
func (m *SketchMatcher) CachedSketches() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cache)
}

// MatchColumns scores a column pair like Matcher.MatchColumns but with
// sketched containment as the instance evidence.
func (m *SketchMatcher) MatchColumns(a, b *frame.Column) float64 {
	if !joinCandidate(a) || !joinCandidate(b) {
		return 0
	}
	name := NameSimilarity(a.Name(), b.Name())
	sa, sb := m.sketch(a), m.sketch(b)
	inst := math.Max(sa.Containment(sb), sb.Containment(sa))
	wsum := m.NameWeight + m.InstanceWeight
	if wsum == 0 {
		return 0
	}
	return (m.NameWeight*name + m.InstanceWeight*inst) / wsum
}

// DiscoverDRGSketched builds the lake DRG with the MinHash-backed matcher;
// useful when tables are too large for exact value-set intersection.
func DiscoverDRGSketched(tables []*frame.Frame, threshold float64) (*graph.Graph, error) {
	m := NewSketchMatcher()
	return discoverWith(tables, threshold, m)
}
