// Package discovery implements the dataset-discovery substrate of the
// reproduction. The paper builds its Dataset Relation Graph with COMA (via
// the Valentine benchmark suite); AutoFeat is explicitly matcher-agnostic —
// "any algorithm which outputs a similarity score can be used". This
// package provides a COMA-style composite matcher that combines:
//
//   - schema-level evidence: Levenshtein similarity and trigram Jaccard
//     similarity over normalised column names, and
//   - instance-level evidence: value-set containment between columns
//     (a Lazo/JOSIE-style joinability signal).
//
// The composite score lands in [0,1]; matches above a threshold become DRG
// edges, exactly reproducing the paper's data lake setting (threshold 0.55,
// "to encourage spurious, but not irrelevant, connections").
package discovery

import (
	"sort"
	"strings"

	"autofeat/internal/frame"
	"autofeat/internal/graph"
)

// Match is a scored column correspondence between two tables.
type Match struct {
	TableA, ColA string
	TableB, ColB string
	Score        float64
}

// Matcher scores column pairs. The zero value is not usable; call
// NewMatcher for the COMA-style defaults.
type Matcher struct {
	// NameWeight and InstanceWeight blend schema- and instance-level
	// evidence. They are renormalised when instance evidence is
	// unavailable (e.g. incompatible kinds).
	NameWeight     float64
	InstanceWeight float64
	// MaxValues caps how many distinct values per column feed the
	// containment estimate, bounding matcher cost on wide lakes.
	MaxValues int
}

// DefaultMaxValues is the default cap on distinct values sampled per
// column for containment estimation. The LSHIndex anchors the same
// sample, so the two stay in lockstep by construction.
const DefaultMaxValues = 2000

// NewMatcher returns a matcher with COMA-like defaults: names and
// instances weighted 40/60, at most DefaultMaxValues values sampled per
// column.
func NewMatcher() *Matcher {
	return &Matcher{NameWeight: 0.4, InstanceWeight: 0.6, MaxValues: DefaultMaxValues}
}

// Weights reports the schema/instance evidence blend, satisfying the
// Scorer contract the indexed discovery path derives its LSH banding
// from.
func (m *Matcher) Weights() (name, instance float64) {
	return m.NameWeight, m.InstanceWeight
}

// Scorer is the pairwise column-scoring contract DRG discovery builds
// on: a score in [0,1] per column pair, plus the evidence weights the
// indexed path needs to derive a sound LSH banding (PlanBands). Both
// Matcher and SketchMatcher implement it.
type Scorer interface {
	MatchColumns(a, b *frame.Column) float64
	Weights() (name, instance float64)
}

// NameSimilarity scores two column names in [0,1] as the mean of
// normalised Levenshtein similarity and trigram Jaccard similarity over
// lower-cased, separator-stripped names.
func NameSimilarity(a, b string) float64 {
	na, nb := normalizeName(a), normalizeName(b)
	if na == "" || nb == "" {
		return 0
	}
	if na == nb {
		return 1
	}
	return (levenshteinSim(na, nb) + trigramJaccard(na, nb)) / 2
}

func normalizeName(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// levenshteinSim is 1 - editDistance/maxLen.
func levenshteinSim(a, b string) float64 {
	d := levenshtein(a, b)
	m := len(a)
	if len(b) > m {
		m = len(b)
	}
	if m == 0 {
		return 1
	}
	return 1 - float64(d)/float64(m)
}

// levenshtein computes the classic edit distance with two rolling rows.
func levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// trigramJaccard is the Jaccard similarity of the character-trigram sets,
// with names shorter than three characters falling back to bigram/unigram
// granularity.
func trigramJaccard(a, b string) float64 {
	n := 3
	if len(a) < 3 || len(b) < 3 {
		n = 1
	}
	sa, sb := ngrams(a, n), ngrams(b, n)
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	inter := 0
	for g := range sa {
		if _, ok := sb[g]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	return float64(inter) / float64(union)
}

func ngrams(s string, n int) map[string]struct{} {
	out := make(map[string]struct{})
	for i := 0; i+n <= len(s); i++ {
		out[s[i:i+n]] = struct{}{}
	}
	return out
}

// InstanceSimilarity returns the maximum directional containment of
// distinct value sets: max(|A∩B|/|A|, |A∩B|/|B|). A foreign key fully
// contained in a primary key scores 1 regardless of the key column's extra
// values. Sampled down to m.MaxValues per side for cost control.
func (m *Matcher) InstanceSimilarity(a, b *frame.Column) float64 {
	sa := sampleSet(a, m.MaxValues)
	sb := sampleSet(b, m.MaxValues)
	if len(sa) == 0 || len(sb) == 0 {
		return 0
	}
	inter := 0
	for k := range sa {
		if _, ok := sb[k]; ok {
			inter++
		}
	}
	ca := float64(inter) / float64(len(sa))
	cb := float64(inter) / float64(len(sb))
	if ca > cb {
		return ca
	}
	return cb
}

// sampleSet returns up to max distinct keys from the column. Determinism:
// the first max distinct keys in row order are kept.
func sampleSet(c *frame.Column, max int) map[string]struct{} {
	set := make(map[string]struct{}, 64)
	for i, n := 0, c.Len(); i < n; i++ {
		if k, ok := c.Key(i); ok {
			set[k] = struct{}{}
			if max > 0 && len(set) >= max {
				break
			}
		}
	}
	return set
}

// minKeyDistinct is the minimum distinct-value count for a column to be a
// join-key candidate. Near-constant columns (binary labels, flags) are
// degenerate keys: their tiny value sets are contained in almost any other
// integer column, which would let instance evidence propose joins *on the
// label column* — a label-leakage channel a schema matcher must not open.
const minKeyDistinct = 3

// joinCandidate reports whether a column is a plausible join column:
// string or integer typed (continuous floats and booleans are feature
// columns, not keys) with at least minKeyDistinct distinct values.
func joinCandidate(c *frame.Column) bool {
	if c.Kind() != frame.Int && c.Kind() != frame.String {
		return false
	}
	return c.DistinctCount() >= minKeyDistinct
}

// MatchColumns scores a single column pair in [0,1]. Non-candidate kinds
// score 0; kind-incompatible pairs use name evidence only.
func (m *Matcher) MatchColumns(a, b *frame.Column) float64 {
	if !joinCandidate(a) || !joinCandidate(b) {
		return 0
	}
	name := NameSimilarity(a.Name(), b.Name())
	inst := m.InstanceSimilarity(a, b)
	wsum := m.NameWeight + m.InstanceWeight
	if wsum == 0 {
		return 0
	}
	return (m.NameWeight*name + m.InstanceWeight*inst) / wsum
}

// MatchTables scores every candidate column pair between two tables and
// returns the matches at or above threshold, sorted by descending score
// (ties broken by column names for determinism).
func (m *Matcher) MatchTables(a, b *frame.Frame, threshold float64) []Match {
	var out []Match
	// Pre-filter candidates once per side: joinCandidate scans values, so
	// checking it per pair would be quadratic in table width.
	bCands := make([]*frame.Column, 0, b.NumCols())
	for _, cb := range b.Columns() {
		if joinCandidate(cb) {
			bCands = append(bCands, cb)
		}
	}
	for _, ca := range a.Columns() {
		if !joinCandidate(ca) {
			continue
		}
		for _, cb := range bCands {
			if s := m.MatchColumns(ca, cb); s >= threshold {
				out = append(out, Match{
					TableA: a.Name(), ColA: ca.Name(),
					TableB: b.Name(), ColB: cb.Name(),
					Score: s,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].ColA != out[j].ColA {
			return out[i].ColA < out[j].ColA
		}
		return out[i].ColB < out[j].ColB
	})
	return out
}

// KFK declares a known key–foreign-key constraint between two tables.
type KFK struct {
	ParentTable, ParentCol string // primary-key side
	ChildTable, ChildCol   string // foreign-key side
}

// BuildBenchmarkDRG constructs the benchmark-setting DRG of Section VII-A:
// nodes for every table, edges only for the declared KFK constraints, each
// with weight 1. This resembles a curated snowflake schema.
func BuildBenchmarkDRG(tables []*frame.Frame, constraints []KFK) (*graph.Graph, error) {
	g := graph.New()
	for _, t := range tables {
		g.AddTable(t)
	}
	for _, k := range constraints {
		e := graph.Edge{
			A: k.ParentTable, ColA: k.ParentCol,
			B: k.ChildTable, ColB: k.ChildCol,
			Weight: 1, KFK: true,
		}
		if err := g.AddEdge(e); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// DiscoverDRG constructs the data-lake-setting DRG: KFK metadata is
// discarded and every table pair is matched with the composite matcher;
// matches at or above threshold become weighted edges. The result is the
// dense multigraph the paper evaluates against (threshold 0.55).
func DiscoverDRG(tables []*frame.Frame, threshold float64, m *Matcher) (*graph.Graph, error) {
	if m == nil {
		m = NewMatcher()
	}
	return discoverWith(tables, threshold, m)
}

// discoverWith builds a lake DRG from a Scorer. When the LSH banding
// derivation covers the scorer at this threshold (CoversScorer), the
// build goes through the index: O(columns) indexing plus verification
// of the candidate pairs only. Otherwise — unusual weights where name
// evidence alone can cross the threshold, a scorer the index has no
// coverage proof for — it falls back to exhaustive quadratic scoring,
// which is always correct.
func discoverWith(tables []*frame.Frame, threshold float64, s Scorer) (*graph.Graph, error) {
	idx := indexFor(s)
	if idx == nil || !idx.CoversScorer(threshold, s) {
		return discoverQuadratic(tables, threshold, s.MatchColumns)
	}
	for _, t := range tables {
		idx.Add(t)
	}
	return DiscoverDRGIndexed(tables, threshold, s, idx)
}

// indexFor builds an empty LSHIndex sized so that CoversScorer can hold
// for the given scorer: anchor cap at least the exact matcher's sample
// cap, signature at least the sketched matcher's size (sharing its
// memoised sketches when the sizes agree). Unknown scorers get nil —
// there is no coverage proof to size an index for.
func indexFor(s Scorer) *LSHIndex {
	switch m := s.(type) {
	case *Matcher:
		if m.MaxValues <= 0 {
			return NewLSHIndex(0, 0) // unlimited sample → unlimited anchors
		}
		cap := m.MaxValues
		if cap < DefaultMaxValues {
			cap = DefaultMaxValues
		}
		return NewLSHIndex(0, cap)
	case *SketchMatcher:
		k := m.SketchSize
		if k < DefaultSketchSize {
			k = DefaultSketchSize
		}
		idx := NewLSHIndex(k, -1)
		if k == m.SketchSize {
			idx.Sketcher = m.sketch
		}
		return idx
	}
	return nil
}

// DiscoverDRGIndexed builds the lake DRG from a prebuilt index holding
// (at least) the given tables: candidate pairs come from the index and
// only those are scored, so the result is edge-identical to the
// quadratic build whenever the index covers the scorer (CoversScorer).
// Candidates are verified in the quadratic loop's emission order, so
// even edge insertion order matches. Indexed tables absent from the
// tables slice are ignored.
func DiscoverDRGIndexed(tables []*frame.Frame, threshold float64, s Scorer, idx *LSHIndex) (*graph.Graph, error) {
	g := graph.New()
	for _, t := range tables {
		g.AddTable(t)
	}
	// Position every join-candidate column exactly as the quadratic
	// loops would visit it: table order, then column order.
	type pos struct{ t, c int }
	where := make(map[*frame.Column]pos)
	for i, t := range tables {
		ci := 0
		for _, c := range t.Columns() {
			if joinCandidate(c) {
				where[c] = pos{i, ci}
				ci++
			}
		}
	}
	type cand struct {
		pa, pb pos
		ca, cb *frame.Column
	}
	pairs := idx.AllCandidates()
	cands := make([]cand, 0, len(pairs))
	for _, p := range pairs {
		wa, oka := where[p.ColA]
		wb, okb := where[p.ColB]
		if !oka || !okb {
			continue
		}
		if wb.t < wa.t {
			wa, wb = wb, wa
			p.ColA, p.ColB = p.ColB, p.ColA
		}
		cands = append(cands, cand{pa: wa, pb: wb, ca: p.ColA, cb: p.ColB})
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.pa.t != b.pa.t {
			return a.pa.t < b.pa.t
		}
		if a.pb.t != b.pb.t {
			return a.pb.t < b.pb.t
		}
		if a.pa.c != b.pa.c {
			return a.pa.c < b.pa.c
		}
		return a.pb.c < b.pb.c
	})
	for _, c := range cands {
		score := s.MatchColumns(c.ca, c.cb)
		if score < threshold {
			continue
		}
		e := graph.Edge{
			A: tables[c.pa.t].Name(), ColA: c.ca.Name(),
			B: tables[c.pb.t].Name(), ColB: c.cb.Name(),
			Weight: score,
		}
		if err := g.AddEdge(e); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// DiscoverDRGQuadratic builds the lake DRG by scoring every cross-table
// candidate column pair — the exhaustive reference path the indexed
// build is verified against (and the fallback when no coverage proof
// applies). Exported for the edge-identity tests and the index
// benchmark.
func DiscoverDRGQuadratic(tables []*frame.Frame, threshold float64, s Scorer) (*graph.Graph, error) {
	return discoverQuadratic(tables, threshold, s.MatchColumns)
}

// discoverQuadratic is the original all-pairs build. Join-candidate
// prefiltering happens once per table.
func discoverQuadratic(tables []*frame.Frame, threshold float64, score func(a, b *frame.Column) float64) (*graph.Graph, error) {
	g := graph.New()
	for _, t := range tables {
		g.AddTable(t)
	}
	cands := make([][]*frame.Column, len(tables))
	for i, t := range tables {
		for _, c := range t.Columns() {
			if joinCandidate(c) {
				cands[i] = append(cands[i], c)
			}
		}
	}
	for i := 0; i < len(tables); i++ {
		for j := i + 1; j < len(tables); j++ {
			for _, ca := range cands[i] {
				for _, cb := range cands[j] {
					s := score(ca, cb)
					if s < threshold {
						continue
					}
					e := graph.Edge{
						A: tables[i].Name(), ColA: ca.Name(),
						B: tables[j].Name(), ColB: cb.Name(),
						Weight: s,
					}
					if err := g.AddEdge(e); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return g, nil
}
