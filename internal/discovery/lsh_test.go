package discovery

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"autofeat/internal/frame"
	"autofeat/internal/graph"
)

// randomLake builds a seeded lake whose tables draw key columns from a
// handful of shared value pools, so some cross-table pairs overlap
// heavily (edges), some weakly (near-threshold) and some not at all.
func randomLake(t *testing.T, seed int64, nTables int) []*frame.Frame {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := []string{"user_id", "uid", "customer_id", "cust_id", "order_id", "item_code", "zone", "key"}
	tabs := make([]*frame.Frame, 0, nTables)
	for i := 0; i < nTables; i++ {
		f := frame.New(fmt.Sprintf("t%02d", i))
		ncols := 1 + rng.Intn(3)
		n := 10 + rng.Intn(60)
		for c := 0; c < ncols; c++ {
			name := names[rng.Intn(len(names))]
			for f.Column(name) != nil {
				name = fmt.Sprintf("%s_%d", name, rng.Intn(100))
			}
			pool := rng.Intn(4)
			vals := make([]int64, n)
			for j := range vals {
				vals[j] = int64(pool*500 + rng.Intn(120))
			}
			addCol(t, f, intCol(name, vals...))
		}
		tabs = append(tabs, f)
	}
	return tabs
}

// flatEdges renders a graph as its deterministic per-node adjacency so
// two graphs can be compared for edge identity (same edges, same
// weights, same order).
func flatEdges(g *graph.Graph) []graph.Edge {
	var out []graph.Edge
	for _, n := range g.Nodes() {
		out = append(out, g.EdgesFrom(n)...)
	}
	return out
}

func requireSameGraph(t *testing.T, want, got *graph.Graph, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.Nodes(), got.Nodes()) {
		t.Fatalf("%s: node sets differ: %v vs %v", label, want.Nodes(), got.Nodes())
	}
	we, ge := flatEdges(want), flatEdges(got)
	if !reflect.DeepEqual(we, ge) {
		t.Fatalf("%s: edges differ:\nquadratic: %v\nindexed:   %v", label, we, ge)
	}
}

// TestIndexedEdgeIdentity is the tentpole's core guarantee: for both the
// exact and the sketched matcher, the LSH-indexed DRG build produces a
// graph edge-identical to the quadratic build across seeded random
// lakes.
func TestIndexedEdgeIdentity(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		tabs := randomLake(t, seed, 12)
		for _, tc := range []struct {
			name string
			s    Scorer
		}{
			{"exact", NewMatcher()},
			{"sketched", NewSketchMatcher()},
		} {
			quad, err := DiscoverDRGQuadratic(tabs, 0.55, tc.s)
			if err != nil {
				t.Fatal(err)
			}
			idx := indexFor(tc.s)
			if idx == nil {
				t.Fatalf("seed %d %s: indexFor returned nil for a standard scorer", seed, tc.name)
			}
			if !idx.CoversScorer(0.55, tc.s) {
				t.Fatalf("seed %d %s: default index must cover the default scorer", seed, tc.name)
			}
			for _, f := range tabs {
				idx.Add(f)
			}
			ixg, err := DiscoverDRGIndexed(tabs, 0.55, tc.s, idx)
			if err != nil {
				t.Fatal(err)
			}
			requireSameGraph(t, quad, ixg, fmt.Sprintf("seed %d %s", seed, tc.name))

			// discoverWith must route to the same indexed result.
			viaWith, err := discoverWith(tabs, 0.55, tc.s)
			if err != nil {
				t.Fatal(err)
			}
			requireSameGraph(t, quad, viaWith, fmt.Sprintf("seed %d %s discoverWith", seed, tc.name))
		}
	}
}

// TestCandidateSupersetProperty checks the covering guarantee directly:
// at default weights and threshold, every cross-table column pair whose
// real score clears the threshold must appear in the index's candidate
// enumeration.
func TestCandidateSupersetProperty(t *testing.T) {
	for seed := int64(20); seed < 28; seed++ {
		tabs := randomLake(t, seed, 10)
		for _, tc := range []struct {
			name string
			s    Scorer
		}{
			{"exact", NewMatcher()},
			{"sketched", NewSketchMatcher()},
		} {
			idx := indexFor(tc.s)
			for _, f := range tabs {
				idx.Add(f)
			}
			type key struct{ ta, ca, tb, cb string }
			cands := map[key]bool{}
			for _, p := range idx.AllCandidates() {
				cands[key{p.TableA, p.ColA.Name(), p.TableB, p.ColB.Name()}] = true
				cands[key{p.TableB, p.ColB.Name(), p.TableA, p.ColA.Name()}] = true
			}
			for i, a := range tabs {
				for j, b := range tabs {
					if i >= j {
						continue
					}
					for _, ca := range a.Columns() {
						for _, cb := range b.Columns() {
							score := tc.s.MatchColumns(ca, cb)
							if score < 0.55 {
								continue
							}
							k := key{a.Name(), ca.Name(), b.Name(), cb.Name()}
							if !cands[k] {
								t.Fatalf("seed %d %s: edge-forming pair %v.%v ~ %v.%v (score %.3f) missing from candidates",
									seed, tc.name, k.ta, k.ca, k.tb, k.cb, score)
							}
						}
					}
				}
			}
		}
	}
}

func TestPlanBands(t *testing.T) {
	// Default configuration: τ=0.55, weights 0.4/0.6 → instMin=0.25>0,
	// so banding is derivable and must be rows=1 (Lazo containment
	// rescaling can lift arbitrarily small estimated Jaccard above the
	// floor, so only single-row bands preserve the superset guarantee).
	bands, rows, ok := PlanBands(DefaultSketchSize, 0.55, 0.4, 0.6)
	if !ok || rows != 1 || bands != DefaultSketchSize {
		t.Fatalf("default plan: got bands=%d rows=%d ok=%v", bands, rows, ok)
	}
	cases := []struct {
		k              int
		tau, nameW, iw float64
	}{
		{DefaultSketchSize, 0.40, 0.4, 0.6}, // τ(wn+wi) == wn → instMin == 0
		{DefaultSketchSize, 0.30, 0.4, 0.6}, // name evidence alone can form edges
		{DefaultSketchSize, 0.55, 0.4, 0},   // no instance weight
		{DefaultSketchSize, 0.55, 0, 0},     // degenerate scorer
		{0, 0.55, 0.4, 0.6},                 // no signature slots
	}
	for _, c := range cases {
		if _, _, ok := PlanBands(c.k, c.tau, c.nameW, c.iw); ok {
			t.Fatalf("PlanBands(%d, %v, %v, %v) must refuse coverage", c.k, c.tau, c.nameW, c.iw)
		}
	}
}

// fakeScorer is an unknown Scorer implementation: the index must refuse
// coverage so discovery falls back to the always-correct quadratic path.
type fakeScorer struct{}

func (fakeScorer) MatchColumns(a, b *frame.Column) float64 { return 1 }
func (fakeScorer) Weights() (float64, float64)             { return 0.4, 0.6 }

func TestCoversScorerRules(t *testing.T) {
	idx := NewLSHIndex(DefaultSketchSize, 100)
	if idx.CoversScorer(0.55, fakeScorer{}) {
		t.Fatal("unknown scorer implementations must not be covered")
	}
	if !idx.CoversScorer(0.55, &Matcher{NameWeight: 0.4, InstanceWeight: 0.6, MaxValues: 100}) {
		t.Fatal("exact matcher with cap <= anchor cap must be covered")
	}
	if idx.CoversScorer(0.55, &Matcher{NameWeight: 0.4, InstanceWeight: 0.6, MaxValues: 101}) {
		t.Fatal("matcher sampling beyond the anchor cap breaks the prefix-subset argument")
	}
	if idx.CoversScorer(0.55, &Matcher{NameWeight: 0.4, InstanceWeight: 0.6}) {
		t.Fatal("uncapped matcher cannot be covered by a capped index")
	}
	unlimited := NewLSHIndex(DefaultSketchSize, 0)
	if !unlimited.CoversScorer(0.55, &Matcher{NameWeight: 0.4, InstanceWeight: 0.6, MaxValues: 10_000}) {
		t.Fatal("unlimited anchor cap covers any sampling cap")
	}
	sm := NewSketchMatcher()
	if !idx.CoversScorer(0.55, sm) {
		t.Fatal("sketched matcher at the index signature size must be covered")
	}
	big := NewSketchMatcher()
	big.SketchSize = DefaultSketchSize * 2
	if idx.CoversScorer(0.55, big) {
		t.Fatal("matcher sketches finer than the index signature must not be covered")
	}
	if idx.CoversScorer(0.40, sm) {
		t.Fatal("a threshold with instMin <= 0 must never be covered")
	}
}

func TestLSHIndexAddRemove(t *testing.T) {
	idx := NewLSHIndex(0, -1)
	tabs := lakeTables(t)
	for _, f := range tabs {
		idx.Add(f)
	}
	// lakeTables carries exactly two join-candidate columns (the two
	// applicant_id keys); weather has none but must still be remembered.
	if idx.Len() != 2 {
		t.Fatalf("Len = %d, want 2 indexed columns", idx.Len())
	}
	if !idx.Has("applicants") || !idx.Has("weather") || idx.Has("nope") {
		t.Fatal("Has must reflect every added table, qualifying columns or not")
	}
	st := idx.Stats()
	if st.Tables != len(tabs) || st.Columns != 2 || st.Slot == 0 {
		t.Fatalf("stats after add look wrong: %+v", st)
	}
	// Candidates for the base table must include the profile join pair.
	found := false
	for _, p := range idx.Candidates("applicants") {
		if (p.TableA == "profile" || p.TableB == "profile") &&
			p.ColA.Name() == "applicant_id" && p.ColB.Name() == "applicant_id" {
			found = true
		}
	}
	if !found {
		t.Fatal("applicant_id pair missing from Candidates")
	}

	// Re-adding replaces rather than duplicates.
	idx.Add(tabs[0])
	if got := idx.Stats(); got.Columns != st.Columns {
		t.Fatalf("re-add must replace entries: %d vs %d columns", got.Columns, st.Columns)
	}

	for _, f := range tabs {
		idx.Remove(f.Name())
	}
	idx.Remove("never-indexed") // no-op
	st = idx.Stats()
	if idx.Len() != 0 || st.Columns != 0 || st.Slot != 0 || st.Anchor != 0 || st.Name != 0 {
		t.Fatalf("buckets must be empty after removing every table: %+v", st)
	}
	if len(idx.Candidates("applicants")) != 0 || len(idx.AllCandidates()) != 0 {
		t.Fatal("empty index must yield no candidates")
	}
}

// TestSketchMatcherConcurrentUse is the regression test for the
// unsynchronized sketch cache: concurrent MatchColumns used to race on
// the map (caught by -race). It must now be safe.
func TestSketchMatcherConcurrentUse(t *testing.T) {
	m := NewSketchMatcher()
	tabs := randomLake(t, 99, 6)
	var cols []*frame.Column
	for _, f := range tabs {
		cols = append(cols, f.Columns()...)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range cols {
				for j := range cols {
					if (i+j+w)%3 == 0 {
						m.MatchColumns(cols[i], cols[j])
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if m.CachedSketches() == 0 {
		t.Fatal("cache must be populated after concurrent matching")
	}
}

func TestSketchMatcherEvict(t *testing.T) {
	m := NewSketchMatcher()
	a := intCol("a", 1, 2, 3, 4)
	b := intCol("b", 2, 3, 4, 5)
	m.MatchColumns(a, b)
	if m.CachedSketches() != 2 {
		t.Fatalf("expected 2 cached sketches, got %d", m.CachedSketches())
	}
	m.Evict([]*frame.Column{a})
	if m.CachedSketches() != 1 {
		t.Fatalf("evict must drop only the named columns, got %d cached", m.CachedSketches())
	}
	m.Evict(nil) // no-op
	if m.CachedSketches() != 1 {
		t.Fatal("nil evict must be a no-op")
	}
}
