package discovery

// Banded LSH index over per-column MinHash signatures — the Lazo-style
// (Castro Fernandez et al., ICDE 2019) candidate generator that replaces
// quadratic all-pairs column scoring in DRG discovery. The index is a
// *candidate* structure only: every surviving pair is re-scored by the
// real matcher, so the indexed DRG is edge-identical to the quadratic
// one as long as the candidate set is a superset of edge-forming pairs.
//
// Superset argument (see DESIGN.md §11 for the full derivation). An
// edge needs score ≥ τ with score = (wn·name + wi·inst)/(wn+wi). When
// instMin = (τ·(wn+wi) − wn)/wi is positive, name evidence alone cannot
// form an edge (name ≤ 1), so every edge-forming pair has inst > 0:
//
//   - Sketched matcher: inst is Lazo containment, which is a monotone
//     function of the estimated Jaccard Ĵ; inst > 0 ⇒ Ĵ > 0 ⇒ at least
//     one signature slot matches ⇒ the pair collides in that slot's
//     band. Because the Lazo rescaling can lift an arbitrarily small
//     positive Ĵ above instMin under cardinality skew, the only sound
//     banding is rows=1 (every slot its own band) — PlanBands derives
//     exactly that from the threshold and weights.
//   - Exact matcher: inst is sampled-set containment; inst > 0 ⇒ the
//     two samples share a value ⇒ the pair collides in that value's
//     anchor bucket (the index anchors the same first-N-distinct sample
//     the matcher uses, so the matcher's sample is always a subset of
//     the indexed anchors when the caps line up).
//
// Exact-name-match pairs additionally collide in a normalised-name
// bucket — the safety net the issue requires, and the only evidence
// channel left when a pair has zero instance overlap.

import (
	"sort"

	"autofeat/internal/frame"
)

// PlanBands derives the LSH banding from the matcher threshold and
// evidence weights: the (bands, rows) split of a k-slot signature that
// guarantees every pair able to reach threshold collides in some band.
//
// The derivation: a pair can only form an edge if its instance evidence
// reaches instMin = (threshold·(nameW+instW) − nameW)/instW. Under the
// Lazo containment rescaling, any positive estimated Jaccard — even a
// single matching slot out of k — can exceed instMin when the column
// cardinalities are skewed, so no multi-row band is sound: the unique
// safe plan is rows=1, bands=k (a pair with any matching slot collides
// by pigeonhole). When instMin ≤ 0, name evidence alone can cross the
// threshold and pairs with zero instance overlap form edges without any
// signature collision — no banding covers that, so ok is false and the
// caller must fall back to quadratic scoring.
func PlanBands(k int, threshold, nameW, instW float64) (bands, rows int, ok bool) {
	wsum := nameW + instW
	if k <= 0 || wsum <= 0 || instW <= 0 {
		return 0, 0, false
	}
	instMin := (threshold*wsum - nameW) / instW
	if instMin <= 0 {
		return 0, 0, false
	}
	return k, 1, true
}

// ColRef names an indexed column for callers that deal in identifiers
// rather than column pointers.
type ColRef struct {
	Table string
	Col   string
}

// CandidatePair is one cross-table column pair surfaced by the index.
// The pair is unordered; callers orient it against their own table
// ordering before scoring.
type CandidatePair struct {
	TableA string
	ColA   *frame.Column
	TableB string
	ColB   *frame.Column
}

// IndexStats summarises the index shape for telemetry and debugging.
type IndexStats struct {
	Tables  int // indexed tables
	Columns int // indexed join-candidate columns
	Bands   int // slot bands (== sketch size at the rows=1 plan)
	Rows    int // slots per band
	Slot    int // occupied slot-band buckets
	Anchor  int // occupied value-anchor buckets
	Name    int // occupied normalised-name buckets
}

// colEntry is one indexed column with the bucket keys it occupies, so
// Remove can unlink it without scanning the whole index.
type colEntry struct {
	table    string
	col      *frame.Column
	sketch   *MinHashSketch
	bandKeys []uint64 // one per band
	anchors  []uint64 // hashes of the sampled distinct values
	nameKey  string   // normalised column name ("" = not name-indexed)
}

// LSHIndex is a banded LSH index over per-column MinHash signatures,
// with two auxiliary evidence channels: value-anchor buckets (an
// inverted index over the matcher's sampled distinct values, covering
// the exact matcher) and normalised-name buckets (covering exact name
// matches). Add/Remove maintain only the touched buckets, which is what
// makes incremental lake mutation cheap. Not safe for concurrent
// mutation; the lake serialises access under its own lock.
type LSHIndex struct {
	k         int // signature slots; bands*rows == k at the rows=1 plan
	bands     int
	rows      int
	anchorCap int // max anchors per column; 0 = unlimited

	// Sketcher overrides how column signatures are built (e.g. to share
	// a SketchMatcher's memoised sketches). Nil uses Sketch(c, k).
	Sketcher func(*frame.Column) *MinHashSketch

	slot    []map[uint64][]*colEntry // per-band buckets
	anchor  map[uint64][]*colEntry
	name    map[string][]*colEntry
	entries map[string][]*colEntry // table -> its entries
}

// NewLSHIndex creates an empty index. k ≤ 0 uses DefaultSketchSize;
// anchorCap < 0 uses DefaultMaxValues (the exact matcher's sampling
// cap, so the matcher's sample is always a subset of the anchors);
// anchorCap == 0 anchors every distinct value.
func NewLSHIndex(k, anchorCap int) *LSHIndex {
	if k <= 0 {
		k = DefaultSketchSize
	}
	if anchorCap < 0 {
		anchorCap = DefaultMaxValues
	}
	x := &LSHIndex{
		k:         k,
		bands:     k,
		rows:      1,
		anchorCap: anchorCap,
		anchor:    make(map[uint64][]*colEntry),
		name:      make(map[string][]*colEntry),
		entries:   make(map[string][]*colEntry),
	}
	x.slot = make([]map[uint64][]*colEntry, x.bands)
	for i := range x.slot {
		x.slot[i] = make(map[uint64][]*colEntry)
	}
	return x
}

// Covers reports whether the index guarantees candidate-superset
// coverage for the given threshold and evidence weights (the PlanBands
// derivation). When false, callers must score quadratically.
func (x *LSHIndex) Covers(threshold, nameW, instW float64) bool {
	_, _, ok := PlanBands(x.k, threshold, nameW, instW)
	return ok
}

// CoversScorer reports whether the index guarantees candidate-superset
// coverage for a concrete scorer at the given threshold: the banding
// must be derivable from the scorer's weights, the scorer's sampling
// cap must not exceed the index anchor cap (exact matcher), and the
// scorer's sketch size must not exceed the index signature size
// (sketched matcher). Unknown scorer implementations get no guarantee.
func (x *LSHIndex) CoversScorer(threshold float64, s Scorer) bool {
	nameW, instW := s.Weights()
	if !x.Covers(threshold, nameW, instW) {
		return false
	}
	switch m := s.(type) {
	case *Matcher:
		// The matcher samples the first m.MaxValues distinct values in
		// row order and the index anchors the first anchorCap: samples
		// are prefixes of each other, so cap(index) ≥ cap(matcher)
		// makes the matcher's sample a subset of the anchors.
		return x.anchorCap == 0 || (m.MaxValues > 0 && m.MaxValues <= x.anchorCap)
	case *SketchMatcher:
		// Slot j is the same permutation at every sketch size, so the
		// index sees every slot match the matcher can see iff it keeps
		// at least as many slots.
		return m.SketchSize <= x.k
	}
	return false
}

// Add indexes every join-candidate column of the table (same prefilter
// as the quadratic path, so the two builds consider identical columns).
// Re-adding a table name replaces its previous entries.
func (x *LSHIndex) Add(f *frame.Frame) {
	if _, ok := x.entries[f.Name()]; ok {
		x.Remove(f.Name())
	}
	for _, c := range f.Columns() {
		if !joinCandidate(c) {
			continue
		}
		x.addColumn(f.Name(), c)
	}
	if _, ok := x.entries[f.Name()]; !ok {
		x.entries[f.Name()] = nil // remember the table even if no column qualifies
	}
}

func (x *LSHIndex) addColumn(table string, c *frame.Column) {
	var s *MinHashSketch
	if x.Sketcher != nil {
		s = x.Sketcher(c)
	} else {
		s = Sketch(c, x.k)
	}
	e := &colEntry{table: table, col: c, sketch: s}
	e.bandKeys = make([]uint64, x.bands)
	for b := 0; b < x.bands; b++ {
		key := bandKey(s.Mins, b, x.rows)
		e.bandKeys[b] = key
		x.slot[b][key] = append(x.slot[b][key], e)
	}
	sample := sampleSet(c, x.anchorCap)
	e.anchors = make([]uint64, 0, len(sample))
	for k := range sample {
		e.anchors = append(e.anchors, hash64(k))
	}
	sort.Slice(e.anchors, func(i, j int) bool { return e.anchors[i] < e.anchors[j] })
	for _, h := range e.anchors {
		x.anchor[h] = append(x.anchor[h], e)
	}
	if n := normalizeName(c.Name()); n != "" {
		e.nameKey = n
		x.name[n] = append(x.name[n], e)
	}
	x.entries[table] = append(x.entries[table], e)
}

// Remove unlinks every entry of the named table from its buckets. A
// table not in the index is a no-op.
func (x *LSHIndex) Remove(table string) {
	es, ok := x.entries[table]
	if !ok {
		return
	}
	delete(x.entries, table)
	for _, e := range es {
		for b, key := range e.bandKeys {
			x.slot[b][key] = dropEntry(x.slot[b][key], e)
			if len(x.slot[b][key]) == 0 {
				delete(x.slot[b], key)
			}
		}
		for _, h := range e.anchors {
			x.anchor[h] = dropEntry(x.anchor[h], e)
			if len(x.anchor[h]) == 0 {
				delete(x.anchor, h)
			}
		}
		if e.nameKey != "" {
			x.name[e.nameKey] = dropEntry(x.name[e.nameKey], e)
			if len(x.name[e.nameKey]) == 0 {
				delete(x.name, e.nameKey)
			}
		}
	}
}

func dropEntry(es []*colEntry, e *colEntry) []*colEntry {
	for i, v := range es {
		if v == e {
			return append(es[:i], es[i+1:]...)
		}
	}
	return es
}

// Has reports whether the named table is indexed.
func (x *LSHIndex) Has(table string) bool {
	_, ok := x.entries[table]
	return ok
}

// Len returns the number of indexed join-candidate columns.
func (x *LSHIndex) Len() int {
	n := 0
	for _, es := range x.entries {
		n += len(es)
	}
	return n
}

// Stats returns the current index shape.
func (x *LSHIndex) Stats() IndexStats {
	st := IndexStats{
		Tables:  len(x.entries),
		Columns: x.Len(),
		Bands:   x.bands,
		Rows:    x.rows,
		Anchor:  len(x.anchor),
		Name:    len(x.name),
	}
	for _, m := range x.slot {
		st.Slot += len(m)
	}
	return st
}

// pairKey canonicalises an entry pair for deduplication: ordered by
// (table, column name), which is unique per indexed column.
type pairKey struct{ a, b *colEntry }

func canonical(a, b *colEntry) (x, y *colEntry) {
	if b.table < a.table || (b.table == a.table && b.col.Name() < a.col.Name()) {
		return b, a
	}
	return a, b
}

// Candidates returns every deduplicated cross-table candidate pair
// involving the named table: the union of its columns' slot-band,
// value-anchor and name-bucket collisions. This is the incremental
// probe the lake mutation path uses — cost is proportional to the
// table's bucket occupancy, not to the lake size.
func (x *LSHIndex) Candidates(table string) []CandidatePair {
	es, ok := x.entries[table]
	if !ok {
		return nil
	}
	seen := make(map[pairKey]bool)
	var out []CandidatePair
	add := func(a, b *colEntry) {
		if a.table == b.table {
			return
		}
		ca, cb := canonical(a, b)
		k := pairKey{ca, cb}
		if seen[k] {
			return
		}
		seen[k] = true
		out = append(out, CandidatePair{
			TableA: ca.table, ColA: ca.col,
			TableB: cb.table, ColB: cb.col,
		})
	}
	for _, e := range es {
		for b, key := range e.bandKeys {
			for _, o := range x.slot[b][key] {
				add(e, o)
			}
		}
		for _, h := range e.anchors {
			for _, o := range x.anchor[h] {
				add(e, o)
			}
		}
		if e.nameKey != "" {
			for _, o := range x.name[e.nameKey] {
				add(e, o)
			}
		}
	}
	return out
}

// AllCandidates returns every deduplicated cross-table candidate pair
// in the index — the full-lake candidate enumeration the indexed DRG
// build verifies. Cost is proportional to total bucket co-occupancy
// (near-linear on lakes whose joinable columns cluster), not to the
// quadratic number of table pairs.
func (x *LSHIndex) AllCandidates() []CandidatePair {
	seen := make(map[pairKey]bool)
	var out []CandidatePair
	collect := func(bucket []*colEntry) {
		for i := 0; i < len(bucket); i++ {
			for j := i + 1; j < len(bucket); j++ {
				a, b := canonical(bucket[i], bucket[j])
				if a.table == b.table {
					continue
				}
				k := pairKey{a, b}
				if seen[k] {
					continue
				}
				seen[k] = true
				out = append(out, CandidatePair{
					TableA: a.table, ColA: a.col,
					TableB: b.table, ColB: b.col,
				})
			}
		}
	}
	for _, m := range x.slot {
		for _, bucket := range m {
			collect(bucket)
		}
	}
	for _, bucket := range x.anchor {
		collect(bucket)
	}
	for _, bucket := range x.name {
		collect(bucket)
	}
	return out
}

// bandKey folds the band's signature slots into one bucket key. At the
// rows=1 plan this is just the slot value (the per-band maps already
// namespace bands), but the fold keeps the structure correct for any
// future multi-row plan.
func bandKey(mins []uint64, band, rows int) uint64 {
	if rows == 1 {
		return mins[band]
	}
	h := uint64(band)*0x9e3779b97f4a7c15 + 1
	for r := 0; r < rows; r++ {
		h = remix(h ^ mins[band*rows+r])
	}
	return h
}
