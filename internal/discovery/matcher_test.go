package discovery

import (
	"testing"
	"testing/quick"

	"autofeat/internal/frame"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"a", "", 1},
		{"", "abc", 3},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := levenshtein(c.a, c.b); got != c.want {
			t.Errorf("levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestNameSimilarity(t *testing.T) {
	if NameSimilarity("applicant_id", "ApplicantID") != 1 {
		t.Fatal("normalised identical names must score 1")
	}
	if s := NameSimilarity("credit_score", "creditscore"); s != 1 {
		t.Fatalf("separator-insensitive: got %v", s)
	}
	sim := NameSimilarity("customer_id", "cust_id")
	dis := NameSimilarity("customer_id", "temperature")
	if sim <= dis {
		t.Fatalf("related names must outscore unrelated: %v vs %v", sim, dis)
	}
	if NameSimilarity("", "x") != 0 {
		t.Fatal("empty name scores 0")
	}
	if NameSimilarity("__", "ab") != 0 {
		t.Fatal("name that normalises to empty scores 0")
	}
}

func TestTrigramJaccardShortNames(t *testing.T) {
	if trigramJaccard("ab", "ab") != 1 {
		t.Fatal("short identical names must score 1 via unigram fallback")
	}
	if trigramJaccard("a", "b") != 0 {
		t.Fatal("disjoint unigrams score 0")
	}
}

func intCol(name string, vals ...int64) *frame.Column {
	return frame.NewIntColumn(name, vals, nil)
}

func TestInstanceSimilarityContainment(t *testing.T) {
	m := NewMatcher()
	fk := intCol("fk", 1, 2, 3, 2, 1)
	pk := intCol("pk", 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	if got := m.InstanceSimilarity(fk, pk); got != 1 {
		t.Fatalf("contained FK must score 1, got %v", got)
	}
	dis := intCol("x", 100, 200)
	if got := m.InstanceSimilarity(dis, pk); got != 0 {
		t.Fatalf("disjoint sets must score 0, got %v", got)
	}
	empty := frame.NewIntColumn("e", []int64{1}, []bool{false})
	if m.InstanceSimilarity(empty, pk) != 0 {
		t.Fatal("all-null column scores 0")
	}
}

func TestInstanceSimilaritySampleCap(t *testing.T) {
	m := &Matcher{NameWeight: 0.4, InstanceWeight: 0.6, MaxValues: 5}
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i)
	}
	big := intCol("big", vals...)
	small := intCol("small", 0, 1, 2, 3, 4)
	if got := m.InstanceSimilarity(small, big); got != 1 {
		t.Fatalf("capped sampling keeps first keys: got %v", got)
	}
}

func TestMatchColumnsKinds(t *testing.T) {
	m := NewMatcher()
	f := frame.NewFloatColumn("score", []float64{1.5, 2.5}, nil)
	i := intCol("score", 1, 2)
	if m.MatchColumns(f, i) != 0 {
		t.Fatal("continuous float columns are not join candidates")
	}
	b := frame.NewBoolColumn("score", []bool{true}, nil)
	if m.MatchColumns(b, b) != 0 {
		t.Fatal("bool columns are not join candidates")
	}
	zero := &Matcher{MaxValues: 10}
	if zero.MatchColumns(i, i) != 0 {
		t.Fatal("zero weights score 0")
	}
}

func TestMatchColumnsBlending(t *testing.T) {
	m := NewMatcher()
	a := intCol("user_id", 1, 2, 3)
	b := intCol("user_id", 1, 2, 3)
	if got := m.MatchColumns(a, b); got != 1 {
		t.Fatalf("identical name + identical values must score 1, got %v", got)
	}
	c := intCol("zzz", 900, 901)
	if got := m.MatchColumns(a, c); got > 0.3 {
		t.Fatalf("unrelated columns must score low, got %v", got)
	}
}

func lakeTables(t *testing.T) []*frame.Frame {
	t.Helper()
	base := frame.New("applicants")
	addCol(t, base, intCol("applicant_id", 1, 2, 3, 4))
	addCol(t, base, intCol("loan_approval", 1, 0, 1, 0))
	prof := frame.New("profile")
	addCol(t, prof, intCol("applicant_id", 1, 2, 3, 4))
	addCol(t, prof, frame.NewFloatColumn("income", []float64{10, 20, 30, 40}, nil))
	noise := frame.New("weather")
	addCol(t, noise, intCol("station", 900, 901))
	addCol(t, noise, frame.NewFloatColumn("temp", []float64{1, 2}, nil))
	return []*frame.Frame{base, prof, noise}
}

func addCol(t *testing.T, f *frame.Frame, c *frame.Column) {
	t.Helper()
	if err := f.AddColumn(c); err != nil {
		t.Fatal(err)
	}
}

func TestMatchTablesSortedAndThresholded(t *testing.T) {
	tabs := lakeTables(t)
	m := NewMatcher()
	ms := m.MatchTables(tabs[0], tabs[1], 0.55)
	if len(ms) == 0 {
		t.Fatal("applicant_id pair must match")
	}
	if ms[0].ColA != "applicant_id" || ms[0].ColB != "applicant_id" {
		t.Fatalf("top match wrong: %+v", ms[0])
	}
	for i := 1; i < len(ms); i++ {
		if ms[i].Score > ms[i-1].Score {
			t.Fatal("matches must be sorted descending")
		}
	}
	if got := m.MatchTables(tabs[0], tabs[2], 0.55); len(got) != 0 {
		t.Fatalf("unrelated tables must not match at 0.55: %+v", got)
	}
}

func TestBuildBenchmarkDRG(t *testing.T) {
	tabs := lakeTables(t)
	g, err := BuildBenchmarkDRG(tabs, []KFK{{
		ParentTable: "applicants", ParentCol: "applicant_id",
		ChildTable: "profile", ChildCol: "applicant_id",
	}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 1 {
		t.Fatalf("DRG shape %d/%d", g.NumNodes(), g.NumEdges())
	}
	es := g.EdgesBetween("applicants", "profile")
	if len(es) != 1 || !es[0].KFK || es[0].Weight != 1 {
		t.Fatalf("KFK edge wrong: %+v", es)
	}
	// Bad constraint propagates the graph error.
	if _, err := BuildBenchmarkDRG(tabs, []KFK{{ParentTable: "ghost", ParentCol: "x", ChildTable: "profile", ChildCol: "applicant_id"}}); err == nil {
		t.Fatal("bad KFK must fail")
	}
}

func TestDiscoverDRG(t *testing.T) {
	tabs := lakeTables(t)
	g, err := DiscoverDRG(tabs, 0.55, nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatal("all tables become nodes")
	}
	if len(g.EdgesBetween("applicants", "profile")) == 0 {
		t.Fatal("discovery must find the applicant_id edge")
	}
	for _, e := range g.EdgesBetween("applicants", "profile") {
		if e.KFK {
			t.Fatal("discovered edges are not KFK")
		}
		if e.Weight < 0.55 || e.Weight > 1 {
			t.Fatalf("weight out of range: %v", e.Weight)
		}
	}
	// Lower threshold yields at least as many edges (denser multigraph).
	g2, _ := DiscoverDRG(tabs, 0.3, nil)
	if g2.NumEdges() < g.NumEdges() {
		t.Fatal("lower threshold must not remove edges")
	}
}

// Property: name similarity is symmetric and in [0,1].
func TestNameSimilarityProperty(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 || len(b) > 40 {
			return true
		}
		s1, s2 := NameSimilarity(a, b), NameSimilarity(b, a)
		return s1 == s2 && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestJoinCandidateRejectsDegenerateKeys(t *testing.T) {
	m := NewMatcher()
	// A binary label column must never be a join candidate: its value set
	// is contained in any small-int column, which would open a
	// label-leakage channel.
	label := intCol("target", 0, 1, 0, 1, 0, 1)
	bait := intCol("code", 0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	if got := m.MatchColumns(label, bait); got != 0 {
		t.Fatalf("binary column matched with score %v; degenerate keys must score 0", got)
	}
	// Ten distinct values is enough to be a candidate.
	if got := m.MatchColumns(bait, bait); got == 0 {
		t.Fatal("ten-distinct categorical should still be a candidate")
	}
}
