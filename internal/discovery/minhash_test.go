package discovery

import (
	"math"
	"testing"
	"testing/quick"

	"autofeat/internal/frame"
)

func seqCol(name string, from, to int) *frame.Column {
	vals := make([]int64, 0, to-from)
	for v := from; v < to; v++ {
		vals = append(vals, int64(v))
	}
	return frame.NewIntColumn(name, vals, nil)
}

func TestSketchCardinality(t *testing.T) {
	c := frame.NewIntColumn("x", []int64{1, 2, 3, 2, 1}, nil)
	s := Sketch(c, 64)
	if s.Cardinality != 3 {
		t.Fatalf("cardinality = %d, want 3", s.Cardinality)
	}
	nullCol := frame.NewIntColumn("x", []int64{1}, []bool{false})
	if Sketch(nullCol, 64).Cardinality != 0 {
		t.Fatal("all-null column has cardinality 0")
	}
}

func TestSketchJaccardIdentical(t *testing.T) {
	a := seqCol("a", 0, 500)
	b := seqCol("b", 0, 500)
	if j := Sketch(a, 128).Jaccard(Sketch(b, 128)); j != 1 {
		t.Fatalf("identical sets must estimate J=1, got %v", j)
	}
}

func TestSketchJaccardDisjoint(t *testing.T) {
	a := seqCol("a", 0, 500)
	b := seqCol("b", 10000, 10500)
	if j := Sketch(a, 128).Jaccard(Sketch(b, 128)); j > 0.1 {
		t.Fatalf("disjoint sets must estimate J~0, got %v", j)
	}
}

func TestSketchJaccardAccuracy(t *testing.T) {
	// True Jaccard 1/3: |A∩B|=500, |A∪B|=1500.
	a := seqCol("a", 0, 1000)
	b := seqCol("b", 500, 1500)
	j := Sketch(a, 256).Jaccard(Sketch(b, 256))
	if math.Abs(j-1.0/3) > 0.12 {
		t.Fatalf("J estimate %v too far from 1/3", j)
	}
}

func TestSketchContainment(t *testing.T) {
	small := seqCol("fk", 0, 200)
	big := seqCol("pk", 0, 2000)
	c := Sketch(small, 256).Containment(Sketch(big, 256))
	if c < 0.75 {
		t.Fatalf("fully contained set must estimate high containment, got %v", c)
	}
	rev := Sketch(big, 256).Containment(Sketch(small, 256))
	if rev > 0.35 {
		t.Fatalf("reverse containment must be ~0.1, got %v", rev)
	}
	empty := Sketch(frame.NewIntColumn("e", []int64{1}, []bool{false}), 64)
	if empty.Containment(Sketch(big, 64)) != 0 {
		t.Fatal("empty set containment is 0")
	}
}

// Regression: Jaccard used to return 0 whenever sketch sizes differed
// (a lake-default sketch vs a request-override SketchSize), silently
// erasing all instance evidence. Mismatched sizes now compare over the
// common slot prefix, which is itself a valid MinHash signature.
func TestSketchSizeMismatch(t *testing.T) {
	a := Sketch(seqCol("a", 0, 500), 32)
	b := Sketch(seqCol("b", 0, 500), 64)
	if j := a.Jaccard(b); j != 1 {
		t.Fatalf("identical sets at different sketch sizes must estimate J=1 over the common prefix, got %v", j)
	}
	if a.Jaccard(b) != b.Jaccard(a) {
		t.Fatal("prefix comparison must stay symmetric")
	}
	disjoint := Sketch(seqCol("c", 10000, 10500), 64)
	if j := a.Jaccard(disjoint); j > 0.15 {
		t.Fatalf("disjoint sets must stay near 0 across sizes, got %v", j)
	}
	empty := Sketch(frame.NewIntColumn("e", []int64{1}, []bool{false}), 64)
	if a.Jaccard(empty) != 0 {
		t.Fatal("empty set must still score 0")
	}
}

func TestSketchMatcherAgreesWithExact(t *testing.T) {
	exact := NewMatcher()
	sketched := NewSketchMatcher()
	fk := seqCol("user_id", 0, 300)
	pk := seqCol("user_id", 0, 3000)
	se := exact.MatchColumns(fk, pk)
	ss := sketched.MatchColumns(fk, pk)
	if math.Abs(se-ss) > 0.15 {
		t.Fatalf("sketched score %v too far from exact %v", ss, se)
	}
	// Cache: second call hits the sketch cache and must agree.
	if got := sketched.MatchColumns(fk, pk); got != ss {
		t.Fatal("cached sketch must give identical score")
	}
}

func TestSketchMatcherRejectsDegenerate(t *testing.T) {
	m := NewSketchMatcher()
	label := intCol("target", 0, 1, 0, 1)
	key := seqCol("k", 0, 100)
	if m.MatchColumns(label, key) != 0 {
		t.Fatal("degenerate columns rejected by the sketch matcher too")
	}
}

func TestDiscoverDRGSketched(t *testing.T) {
	tabs := lakeTables(t)
	// lakeTables uses 4-row columns; widen them so joinCandidate passes
	// and the sketch has signal.
	base := frame.New("orders")
	addCol(t, base, seqCol("order_id", 0, 400))
	addCol(t, base, seqCol("customer", 0, 400))
	cust := frame.New("customers")
	addCol(t, cust, seqCol("customer", 0, 500))
	addCol(t, cust, frame.NewFloatColumn("ltv", make([]float64, 500), nil))
	tabs = []*frame.Frame{base, cust}
	g, err := DiscoverDRGSketched(tabs, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.EdgesBetween("orders", "customers")) == 0 {
		t.Fatal("sketched discovery must find the customer edge")
	}
}

// Property: Jaccard estimate is symmetric and within [0,1].
func TestSketchJaccardProperty(t *testing.T) {
	f := func(seedA, seedB uint8) bool {
		a := seqCol("a", int(seedA), int(seedA)+100)
		b := seqCol("b", int(seedB), int(seedB)+100)
		sa, sb := Sketch(a, 64), Sketch(b, 64)
		j1, j2 := sa.Jaccard(sb), sb.Jaccard(sa)
		return j1 == j2 && j1 >= 0 && j1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: containment of A in A∪B is >= Jaccard estimate direction-wise
// sanity (containment >= jaccard for the smaller set, approximately).
func TestSketchContainmentBoundsProperty(t *testing.T) {
	f := func(overlap uint8) bool {
		o := int(overlap) % 90
		a := seqCol("a", 0, 100)
		b := seqCol("b", 100-o, 200-o)
		sa, sb := Sketch(a, 128), Sketch(b, 128)
		c := sa.Containment(sb)
		return c >= 0 && c <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSketchVsExactMatch(b *testing.B) {
	fk := seqCol("user_id", 0, 20000)
	pk := seqCol("user_id", 0, 50000)
	b.Run("exact", func(b *testing.B) {
		m := NewMatcher()
		for i := 0; i < b.N; i++ {
			m.MatchColumns(fk, pk)
		}
	})
	b.Run("sketched", func(b *testing.B) {
		m := NewSketchMatcher()
		m.sketch(fk) // warm cache: steady-state compare cost
		m.sketch(pk)
		for i := 0; i < b.N; i++ {
			m.MatchColumns(fk, pk)
		}
	})
}
