package datagen

import (
	"fmt"

	"autofeat/internal/discovery"
	"autofeat/internal/frame"
	"autofeat/internal/graph"
)

// BenchmarkDRG builds the benchmark-setting graph of Section VII-A: nodes
// for every table, edges only for the ground-truth KFK constraints
// (weight 1), resembling a curated snowflake schema.
func (d *Dataset) BenchmarkDRG() (*graph.Graph, error) {
	return discovery.BuildBenchmarkDRG(d.Tables, d.KFKs)
}

// LakeDRG builds the data-lake-setting graph: the KFK metadata is
// discarded and relationships are rediscovered with the composite matcher
// at the given threshold (the paper uses 0.55 "to encourage spurious, but
// not irrelevant, connections"). The result is a dense multigraph with
// both true and spurious edges.
func (d *Dataset) LakeDRG(threshold float64) (*graph.Graph, error) {
	return discovery.DiscoverDRG(d.Tables, threshold, nil)
}

// FlatTable returns the unpartitioned dataset as one wide table (id, all
// features, target) — the single-table view the Section V metric study
// runs on. Feature names are globally unique by construction, so no
// prefixing is needed.
func (d *Dataset) FlatTable() (*frame.Frame, error) {
	flat := frame.New(d.Spec.Name + "_flat")

	// Base first (keeps id and target, skips FK columns).
	for _, c := range d.Base.Columns() {
		if isKeyLike(c.Name()) {
			continue
		}
		if err := flat.AddColumn(c); err != nil {
			return nil, err
		}
	}
	// Every joinable table's features, re-expanded to full entity
	// alignment: rows the table does not cover become nulls, which
	// mirrors what a perfect join would produce.
	for _, t := range d.Tables {
		if t.Name() == d.Base.Name() {
			continue
		}
		keyCol := tableKeyColumn(t)
		if keyCol == nil {
			return nil, fmt.Errorf("datagen: table %q has no key column", t.Name())
		}
		n := d.Base.NumRows()
		idx := make([]int, n)
		for i := range idx {
			idx[i] = -1
		}
		for r := 0; r < keyCol.Len(); r++ {
			entity := int(keyCol.Int(r)) % keyOffset
			if entity >= 0 && entity < n {
				idx[entity] = r
			}
		}
		expanded := t.Take(idx)
		for _, c := range expanded.Columns() {
			if c == expanded.Column(keyCol.Name()) {
				continue // keys are not features
			}
			if isKeyLike(c.Name()) {
				continue // FK columns placed in this table
			}
			// Bait names repeat across tables; disambiguate on collision.
			name := c.Name()
			for i := 2; flat.HasColumn(name); i++ {
				name = fmt.Sprintf("%s_%d", c.Name(), i)
			}
			if err := flat.AddColumn(c.WithName(name)); err != nil {
				return nil, err
			}
		}
	}
	return flat, nil
}

// tableKeyColumn finds the table's own key column ("key_NN", always first).
func tableKeyColumn(t *frame.Frame) *frame.Column {
	for _, c := range t.Columns() {
		if len(c.Name()) >= 4 && c.Name()[:4] == "key_" {
			return c
		}
	}
	return nil
}

func isKeyLike(name string) bool {
	return len(name) >= 3 && (name[:3] == "key" || name[:3] == "fk_")
}
