package datagen

import (
	"math"
	"testing"

	"autofeat/internal/discovery"
	"autofeat/internal/frame"
)

// candidateColumns returns every generated column discovery treats as a
// join candidate, with its exact distinct-value set, keyed table.column.
func candidateColumns(ds *Dataset) (names []string, cols []*frame.Column) {
	for _, f := range ds.Tables {
		for _, c := range f.Columns() {
			if c.Kind() != frame.Int && c.Kind() != frame.String {
				continue
			}
			if len(c.ValueSet()) < 3 {
				continue
			}
			names = append(names, f.Name()+"."+c.Name())
			cols = append(cols, c)
		}
	}
	return names, cols
}

func exactOverlap(a, b map[string]struct{}) (inter, union int) {
	for v := range a {
		if _, ok := b[v]; ok {
			inter++
		}
	}
	return inter, len(a) + len(b) - inter
}

// TestSketchAccuracyOnDatagenColumns bounds the MinHash estimation
// error against exact set computation on generated lake columns: with
// k=128 slots the standard error of the Jaccard estimator is
// sqrt(J(1-J)/k) <= 0.045, so an absolute ceiling of 0.25 (> 5 standard
// errors) and a mean ceiling of 0.06 are loose enough to be seed-stable
// yet tight enough to catch a broken hash or slot scheme. Containment
// inherits the Jaccard error through the Lazo rescaling, amplified by
// the cardinality ratio, so its ceilings are slightly wider.
func TestSketchAccuracyOnDatagenColumns(t *testing.T) {
	ds, err := Generate(SmallSpecs()[0])
	if err != nil {
		t.Fatal(err)
	}
	names, cols := candidateColumns(ds)
	if len(cols) < 4 {
		t.Fatalf("expected several candidate columns, got %d", len(cols))
	}
	sketches := make([]*discovery.MinHashSketch, len(cols))
	for i, c := range cols {
		sketches[i] = discovery.Sketch(c, discovery.DefaultSketchSize)
	}

	var sumJ, maxJ, sumC, maxC float64
	n := 0
	for i := range cols {
		for j := i + 1; j < len(cols); j++ {
			sa, sb := cols[i].ValueSet(), cols[j].ValueSet()
			inter, union := exactOverlap(sa, sb)
			ej := 0.0
			if union > 0 {
				ej = float64(inter) / float64(union)
			}
			dj := math.Abs(sketches[i].Jaccard(sketches[j]) - ej)
			sumJ += dj
			maxJ = math.Max(maxJ, dj)

			ec := float64(inter) / float64(len(sa))
			dc := math.Abs(sketches[i].Containment(sketches[j]) - ec)
			sumC += dc
			maxC = math.Max(maxC, dc)
			n++
		}
	}
	if n == 0 {
		t.Fatal("no column pairs compared")
	}
	if maxJ > 0.25 {
		t.Fatalf("max Jaccard error %.3f exceeds 0.25 over %d pairs (%d cols: %v)", maxJ, n, len(cols), names[:4])
	}
	if mean := sumJ / float64(n); mean > 0.06 {
		t.Fatalf("mean Jaccard error %.3f exceeds 0.06 over %d pairs", mean, n)
	}
	if maxC > 0.35 {
		t.Fatalf("max containment error %.3f exceeds 0.35 over %d pairs", maxC, n)
	}
	if mean := sumC / float64(n); mean > 0.08 {
		t.Fatalf("mean containment error %.3f exceeds 0.08 over %d pairs", mean, n)
	}
}
