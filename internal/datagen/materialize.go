package datagen

import (
	"math/rand"
	"sort"

	"autofeat/internal/discovery"
	"autofeat/internal/frame"
)

// keyOffset spaces each table's key range so unrelated keys never collide.
const keyOffset = 100000

// materialize turns the planned topology and feature specs into frames.
func materialize(spec Spec, layouts []*tableLayout, baseFeats []featureSpec, rng *rand.Rand) (*Dataset, error) {
	n := spec.Rows

	// Pass 1: generate raw per-entity values for every non-redundant
	// feature, keyed by "table\x00feature" ("" table = base).
	values := make(map[string][]float64)
	gen := func(owner string, fs featureSpec) {
		key := owner + "\x00" + fs.name
		if fs.kind == 2 {
			return // pass 2
		}
		v := make([]float64, n)
		for i := range v {
			if fs.kind == 1 {
				v[i] = float64(rng.Intn(10))
			} else {
				v[i] = rng.NormFloat64()
			}
		}
		values[key] = v
	}
	for _, fs := range baseFeats {
		gen("", fs)
	}
	for _, l := range layouts {
		for _, fs := range l.features {
			gen(l.name, fs)
		}
	}
	// Pass 2: redundant copies are monotone transforms of their source.
	copyRedundant := func(owner string, fs featureSpec) {
		if fs.kind != 2 {
			return
		}
		src := values[fs.redundOf]
		key := owner + "\x00" + fs.name
		if src == nil {
			// Source vanished (shouldn't happen); degrade to noise.
			v := make([]float64, n)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			values[key] = v
			return
		}
		a := 0.5 + rng.Float64()
		b := rng.NormFloat64()
		v := make([]float64, n)
		for i := range v {
			v[i] = a*src[i] + b
		}
		values[key] = v
	}
	for _, fs := range baseFeats {
		copyRedundant("", fs)
	}
	for _, l := range layouts {
		for _, fs := range l.features {
			copyRedundant(l.name, fs)
		}
	}

	// Label: weighted sum of the informative features plus noise,
	// thresholded at the median for balanced classes.
	score := make([]float64, n)
	addSignal := func(owner string, fs featureSpec) {
		if fs.weight == 0 || fs.kind == 2 {
			return
		}
		v := values[owner+"\x00"+fs.name]
		for i := range score {
			score[i] += fs.weight * v[i]
		}
	}
	for _, fs := range baseFeats {
		addSignal("", fs)
	}
	for _, l := range layouts {
		for _, fs := range l.features {
			addSignal(l.name, fs)
		}
	}
	for i := range score {
		score[i] += rng.NormFloat64() * 0.5
	}
	sorted := append([]float64(nil), score...)
	sort.Float64s(sorted)
	median := sorted[n/2]
	labels := make([]int64, n)
	for i, s := range score {
		if s > median {
			labels[i] = 1
		}
	}

	// Base table: id, base features, FKs to depth-1 tables, target.
	base := frame.New(spec.Name)
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	if err := base.AddColumn(frame.NewIntColumn("id", ids, nil)); err != nil {
		return nil, err
	}
	for _, fs := range baseFeats {
		if err := base.AddColumn(featureColumn(fs, values["\x00"+fs.name], nil, rng)); err != nil {
			return nil, err
		}
	}

	ds := &Dataset{
		Spec:               spec,
		Label:              "target",
		InformativeByTable: make(map[string][]string),
		Depth:              map[string]int{spec.Name: 0},
	}

	// Joinable tables: each covers a sampled subset of entities.
	frames := make(map[string]*frame.Frame, len(layouts))
	rowsOf := make(map[string][]int, len(layouts)) // table -> covered entity ids
	for ti, l := range layouts {
		cover := pickEntities(n, l.coverage, rng)
		rowsOf[l.name] = cover
		f := frame.New(l.name)
		keys := make([]int64, len(cover))
		for i, e := range cover {
			keys[i] = int64(e + (ti+1)*keyOffset)
		}
		if err := f.AddColumn(frame.NewIntColumn(l.keyCol, keys, nil)); err != nil {
			return nil, err
		}
		for _, fs := range l.features {
			full := values[l.name+"\x00"+fs.name]
			sub := make([]float64, len(cover))
			for i, e := range cover {
				sub[i] = full[e]
			}
			if err := f.AddColumn(featureColumn(fs, sub, nil, rng)); err != nil {
				return nil, err
			}
			if fs.weight != 0 {
				ds.InformativeByTable[l.name] = append(ds.InformativeByTable[l.name], fs.name)
			}
		}
		frames[l.name] = f
		ds.Depth[l.name] = l.depth
		if l.coverage < 0.5 {
			ds.SpuriousTable = l.name
		}
	}

	// FK columns: each table's parent (base or another table) gets a
	// column of this table's keys, null where... every parent row gets a
	// candidate key; unmatched keys simply find no partner at join time.
	for ti, l := range layouts {
		fk := func(entity int) int64 { return int64(entity + (ti+1)*keyOffset) }
		if l.parent == "" {
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = fk(i)
			}
			if err := base.AddColumn(frame.NewIntColumn(l.fkCol, vals, nil)); err != nil {
				return nil, err
			}
			ds.KFKs = append(ds.KFKs, discovery.KFK{
				ParentTable: l.name, ParentCol: l.keyCol,
				ChildTable: spec.Name, ChildCol: l.fkCol,
			})
		} else {
			pf := frames[l.parent]
			pRows := rowsOf[l.parent]
			vals := make([]int64, len(pRows))
			for i, e := range pRows {
				vals[i] = fk(e)
			}
			if err := pf.AddColumn(frame.NewIntColumn(l.fkCol, vals, nil)); err != nil {
				return nil, err
			}
			ds.KFKs = append(ds.KFKs, discovery.KFK{
				ParentTable: l.name, ParentCol: l.keyCol,
				ChildTable: l.parent, ChildCol: l.fkCol,
			})
		}
	}

	if err := base.AddColumn(frame.NewIntColumn("target", labels, nil)); err != nil {
		return nil, err
	}
	ds.Base = base
	ds.Tables = append(ds.Tables, base)
	for _, l := range layouts {
		ds.Tables = append(ds.Tables, frames[l.name])
	}
	return ds, nil
}

// featureColumn renders one feature spec as a typed column with nulls
// injected at the planned rate.
func featureColumn(fs featureSpec, vals []float64, _ []bool, rng *rand.Rand) *frame.Column {
	var valid []bool
	if fs.nullFrac > 0 {
		valid = make([]bool, len(vals))
		for i := range valid {
			valid[i] = rng.Float64() >= fs.nullFrac
		}
	}
	if fs.kind == 1 {
		ints := make([]int64, len(vals))
		for i, v := range vals {
			ints[i] = int64(v)
		}
		return frame.NewIntColumn(fs.name, ints, valid)
	}
	return frame.NewFloatColumn(fs.name, vals, valid)
}

// pickEntities samples ceil(coverage*n) distinct entity ids, sorted.
func pickEntities(n int, coverage float64, rng *rand.Rand) []int {
	k := int(coverage*float64(n) + 0.5)
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(n)[:k]
	sort.Ints(perm)
	return perm
}
