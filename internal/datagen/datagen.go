// Package datagen synthesises the evaluation data lakes. The paper
// evaluates on eight OpenML/Kaggle/UCI datasets (Table II) split into
// joinable tables; those exact files are not available offline, so this
// package generates analogues with the same shape — row count, number of
// joinable tables, total feature count — and, crucially, with a controlled
// ground truth: which features carry signal and in which table (at which
// join depth) they live.
//
// Placement follows the paper's central observation: "the most relevant
// features reside via transitive joins". The strongest informative
// features are dealt to the deepest tables of a snowflake topology, the
// base table keeps mostly weak/noise columns, and every lake includes a
// low-coverage "spurious" table that the τ data-quality pruning should
// eliminate. Large datasets are scaled down (documented per spec) so the
// full harness runs at laptop scale; the scaling preserves the
// relationships the experiments measure.
package datagen

import (
	"fmt"
	"math/rand"

	"autofeat/internal/discovery"
	"autofeat/internal/frame"
)

// Spec describes one dataset analogue.
type Spec struct {
	// Name matches the paper's dataset name.
	Name string
	// Rows is the generated row count (scaled from the paper where
	// noted by PaperRows).
	Rows int
	// PaperRows is the original Table II row count, for reporting.
	PaperRows int
	// JoinableTables is the number of tables besides the base.
	JoinableTables int
	// TotalFeatures is the total feature count across all tables
	// (scaled from the paper where noted by PaperFeatures).
	TotalFeatures int
	// PaperFeatures is the original Table II feature count.
	PaperFeatures int
	// BestAccuracy is the best accuracy reported on OpenML (Table II).
	BestAccuracy float64
	// Seed makes the dataset reproducible.
	Seed int64
}

// PaperSpecs returns the eight Table II dataset analogues in paper order.
// covertype, jannis and miniboone rows and the two very wide feature
// counts are scaled down for laptop-scale runtimes.
func PaperSpecs() []Spec {
	return []Spec{
		{Name: "credit", Rows: 1001, PaperRows: 1001, JoinableTables: 5, TotalFeatures: 21, PaperFeatures: 21, BestAccuracy: 0.99, Seed: 101},
		{Name: "eyemove", Rows: 7609, PaperRows: 7609, JoinableTables: 6, TotalFeatures: 24, PaperFeatures: 24, BestAccuracy: 0.894, Seed: 102},
		{Name: "covertype", Rows: 20000, PaperRows: 423682, JoinableTables: 12, TotalFeatures: 21, PaperFeatures: 21, BestAccuracy: 0.99, Seed: 103},
		{Name: "jannis", Rows: 12000, PaperRows: 57581, JoinableTables: 12, TotalFeatures: 55, PaperFeatures: 55, BestAccuracy: 0.875, Seed: 104},
		{Name: "miniboone", Rows: 15000, PaperRows: 73000, JoinableTables: 15, TotalFeatures: 51, PaperFeatures: 51, BestAccuracy: 0.9465, Seed: 105},
		{Name: "steel", Rows: 1943, PaperRows: 1943, JoinableTables: 15, TotalFeatures: 34, PaperFeatures: 34, BestAccuracy: 1.0, Seed: 106},
		{Name: "school", Rows: 1775, PaperRows: 1775, JoinableTables: 16, TotalFeatures: 160, PaperFeatures: 731, BestAccuracy: 0.831, Seed: 107},
		{Name: "bioresponse", Rows: 3435, PaperRows: 3435, JoinableTables: 24, TotalFeatures: 180, PaperFeatures: 420, BestAccuracy: 0.885, Seed: 108},
	}
}

// SpecByName returns the paper spec with the given name, or ok=false.
func SpecByName(name string) (Spec, bool) {
	for _, s := range PaperSpecs() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// SectionVSpecs returns the six datasets used by the Section V metric
// study ("varying in domains, ratio of rows to columns, and types of
// features") — the six smaller paper analogues.
func SectionVSpecs() []Spec {
	all := PaperSpecs()
	return []Spec{all[0], all[1], all[3], all[5], all[6], all[2]}
}

// QuickSpecs returns reduced-scale versions of all eight paper datasets:
// same names and topology style, but rows capped at 1200, tables at 8 and
// features at 30. The experiment harness uses them for fast bench runs
// (`go test -bench`); cmd/experiments runs the full PaperSpecs.
func QuickSpecs() []Spec {
	out := PaperSpecs()
	for i := range out {
		if out[i].Rows > 1200 {
			out[i].Rows = 1200
		}
		if out[i].JoinableTables > 8 {
			out[i].JoinableTables = 8
		}
		if out[i].TotalFeatures > 30 {
			out[i].TotalFeatures = 30
		}
		out[i].Seed += 1000
	}
	return out
}

// SmallSpecs returns quick low-cost specs for tests and -short benches.
func SmallSpecs() []Spec {
	return []Spec{
		{Name: "tiny", Rows: 400, PaperRows: 400, JoinableTables: 4, TotalFeatures: 12, PaperFeatures: 12, BestAccuracy: 0.95, Seed: 201},
		{Name: "smol", Rows: 600, PaperRows: 600, JoinableTables: 6, TotalFeatures: 18, PaperFeatures: 18, BestAccuracy: 0.9, Seed: 202},
	}
}

// ParallelSpec returns the workload for the worker-scaling benchmarks:
// wide enough that each BFS depth carries many candidate joins for the
// discovery worker pool to spread out, and tall enough that each join
// evaluation does non-trivial work.
func ParallelSpec() Spec {
	return Spec{Name: "wide", Rows: 2000, PaperRows: 2000, JoinableTables: 12, TotalFeatures: 42, PaperFeatures: 42, BestAccuracy: 0.9, Seed: 301}
}

// Dataset is one generated lake: the base table, all joinable tables, the
// ground-truth KFK constraints, and bookkeeping for the harness.
type Dataset struct {
	Spec Spec
	// Base holds the entity key ("id"), the label ("target") and the base
	// feature columns.
	Base *frame.Frame
	// Tables lists every table including Base.
	Tables []*frame.Frame
	// KFKs are the ground-truth constraints of the benchmark setting.
	KFKs []discovery.KFK
	// Label is the label column name inside Base (unqualified).
	Label string
	// InformativeByTable maps table name -> informative feature columns
	// placed there (ground truth for tests).
	InformativeByTable map[string][]string
	// Depth maps table name -> join depth from the base (base = 0).
	Depth map[string]int
	// SpuriousTable is the low-coverage table τ-pruning should remove.
	SpuriousTable string
}

// tableLayout captures the topology decided before feature placement.
type tableLayout struct {
	name     string
	parent   string // table name ("" for children of base)
	depth    int
	keyCol   string // this table's key column
	fkCol    string // FK column added to the parent
	coverage float64
	features []featureSpec
}

type featureSpec struct {
	name   string
	weight float64 // contribution to the label score; 0 = noise
	// kind: 0 continuous, 1 small-int categorical (spurious-join bait),
	// 2 redundant copy of another feature.
	kind     int
	redundOf string // for kind 2: qualified source feature
	nullFrac float64
}

// Generate builds the dataset for a spec. The same spec always yields the
// same dataset.
func Generate(spec Spec) (*Dataset, error) {
	if spec.Rows < 10 || spec.JoinableTables < 1 || spec.TotalFeatures < spec.JoinableTables+2 {
		return nil, fmt.Errorf("datagen: degenerate spec %+v", spec)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	layouts := planTopology(spec, rng)
	baseFeats := planFeatures(spec, layouts, rng)
	return materialize(spec, layouts, baseFeats, rng)
}

// planTopology arranges the joinable tables into a snowflake: roughly half
// hang directly off the base, the rest chain to depth 2 and 3. One table
// is designated spurious (coverage 0.3 < τ).
func planTopology(spec Spec, rng *rand.Rand) []*tableLayout {
	n := spec.JoinableTables
	layouts := make([]*tableLayout, n)
	depth1 := (n + 1) / 2
	if depth1 < 1 {
		depth1 = 1
	}
	depth2 := (n - depth1 + 1) / 2
	for i := 0; i < n; i++ {
		l := &tableLayout{
			name:     fmt.Sprintf("%s_t%02d", spec.Name, i),
			keyCol:   fmt.Sprintf("key_%02d", i),
			coverage: 0.8 + 0.2*rng.Float64(),
		}
		switch {
		case i < depth1:
			l.parent = "" // child of base
			l.depth = 1
		case i < depth1+depth2:
			l.parent = layouts[(i-depth1)%depth1].name
			l.depth = 2
		default:
			l.parent = layouts[depth1+(i-depth1-depth2)%depth2].name
			l.depth = 3
		}
		// MAB's same-name restriction: give even-indexed tables an FK
		// whose name equals the key column, odd-indexed a distinct name.
		if i%2 == 0 {
			l.fkCol = l.keyCol
		} else {
			l.fkCol = fmt.Sprintf("fk_%02d", i)
		}
		layouts[i] = l
	}
	// The last depth-1 table becomes the spurious one.
	layouts[depth1-1].coverage = 0.3
	return layouts
}

// planFeatures deals the feature budget across the base and the tables.
// The design centres on a "golden chain" — the deepest root-to-leaf path
// of the topology — which receives most of the label's signal, deepest
// table strongest. This encodes the paper's premise that "the most
// relevant features reside via transitive joins": a method that can walk
// the chain recovers most of the signal; single-hop methods cannot. The
// base table keeps two weak features, a little signal is scattered over
// other tables (so shallow methods still gain something), and the rest of
// the budget is noise, small-int categorical bait for the lake matcher,
// and redundant copies of informative features. It returns the base
// table's feature plan.
func planFeatures(spec Spec, layouts []*tableLayout, rng *rand.Rand) []featureSpec {
	budget := spec.TotalFeatures

	featID := 0
	newName := func() string {
		featID++
		return fmt.Sprintf("f%03d", featID)
	}

	// Golden chain: walk parents up from the deepest non-spurious table.
	deepest := layouts[0]
	for _, l := range layouts {
		if l.depth > deepest.depth && l.coverage >= 0.5 {
			deepest = l
		}
	}
	byName := make(map[string]*tableLayout, len(layouts))
	for _, l := range layouts {
		byName[l.name] = l
	}
	var chain []*tableLayout // deepest first
	for l := deepest; l != nil; l = byName[l.parent] {
		chain = append(chain, l)
	}
	// High coverage along the chain so multi-hop joins survive τ.
	for _, l := range chain {
		l.coverage = 0.96 + 0.04*rng.Float64()
	}

	// Signal placement: the deepest chain table gets 3 strong features,
	// the next 2 medium ones, then 1 weaker feature per remaining hop.
	goldenCounts := []int{3, 2, 1, 1}
	goldenWeights := [][2]float64{{1.6, 2.4}, {0.8, 1.2}, {0.5, 0.8}, {0.4, 0.6}}
	informativeUsed := 0
	for i, l := range chain {
		if i >= len(goldenCounts) {
			break
		}
		for c := 0; c < goldenCounts[i]; c++ {
			lo, hi := goldenWeights[i][0], goldenWeights[i][1]
			w := lo + (hi-lo)*rng.Float64()
			if rng.Intn(2) == 0 {
				w = -w
			}
			l.features = append(l.features, featureSpec{
				name: newName(), weight: w, nullFrac: 0.02 * rng.Float64(),
			})
			informativeUsed++
		}
	}

	// Two weak base features.
	var basePlan []featureSpec
	for i := 0; i < 2; i++ {
		basePlan = append(basePlan, featureSpec{
			name: newName(), weight: 0.1 + 0.15*rng.Float64(),
		})
		informativeUsed++
	}

	// Scatter mild signal over non-spurious, non-chain tables so shallow
	// methods see some lift.
	onChain := make(map[string]bool, len(chain))
	for _, l := range chain {
		onChain[l.name] = true
	}
	nInformative := budget / 3
	if nInformative < informativeUsed {
		nInformative = informativeUsed
	}
	for i := 0; i < nInformative-informativeUsed && informativeUsed < budget; i++ {
		l := layouts[rng.Intn(len(layouts))]
		if l.coverage < 0.5 || onChain[l.name] {
			continue // spurious and chain tables get no scatter
		}
		w := 0.2 + 0.3*rng.Float64()
		if rng.Intn(2) == 0 {
			w = -w
		}
		l.features = append(l.features, featureSpec{
			name: newName(), weight: w, nullFrac: 0.08 * rng.Float64(),
		})
		informativeUsed++
	}

	// Remaining budget: noise, categorical bait and redundant copies.
	// Bait columns take names from a small realistic pool (code, type,
	// ...) that repeats across tables, so the lake matcher finds the
	// name+instance collisions that make real lakes densely connected.
	baitPool := []string{"code", "type", "status", "category", "region", "grade", "level", "segment"}
	baitCount := map[string]int{}
	remaining := budget - informativeUsed
	targets := append([]*tableLayout{nil}, layouts...) // nil = base
	for i := 0; i < remaining; i++ {
		l := targets[rng.Intn(len(targets))]
		owner := ""
		if l != nil {
			owner = l.name
		}
		fs := featureSpec{nullFrac: 0.08 * rng.Float64()}
		switch rng.Intn(4) {
		case 0, 1:
			fs.kind = 1 // categorical bait for the lake matcher
			fs.name = baitPool[baitCount[owner]%len(baitPool)]
			baitCount[owner]++
		case 2:
			if src := randomInformative(layouts, rng); src != "" {
				fs.kind = 2
				fs.redundOf = src
			}
		}
		if fs.name == "" {
			fs.name = newName()
		}
		if l == nil {
			basePlan = append(basePlan, fs)
		} else {
			l.features = append(l.features, fs)
		}
	}
	return basePlan
}

func randomInformative(layouts []*tableLayout, rng *rand.Rand) string {
	var pool []string
	for _, l := range layouts {
		for _, f := range l.features {
			if f.weight != 0 {
				pool = append(pool, l.name+"\x00"+f.name)
			}
		}
	}
	if len(pool) == 0 {
		return ""
	}
	return pool[rng.Intn(len(pool))]
}
