package datagen

import (
	"testing"

	"autofeat/internal/frame"
)

func gen(t *testing.T, name string) *Dataset {
	t.Helper()
	spec, ok := SpecByName(name)
	if !ok {
		t.Fatalf("unknown spec %q", name)
	}
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPaperSpecsMatchTableII(t *testing.T) {
	specs := PaperSpecs()
	if len(specs) != 8 {
		t.Fatalf("Table II has 8 datasets, got %d", len(specs))
	}
	// Spot-check the unscaled entries against Table II.
	want := map[string][3]int{ // rows, joinable tables, paper features
		"credit":  {1001, 5, 21},
		"eyemove": {7609, 6, 24},
		"steel":   {1943, 15, 34},
		"school":  {1775, 16, 731},
	}
	for _, s := range specs {
		w, ok := want[s.Name]
		if !ok {
			continue
		}
		if s.Rows != w[0] || s.JoinableTables != w[1] || s.PaperFeatures != w[2] {
			t.Errorf("%s: got (%d,%d,%d), want %v", s.Name, s.Rows, s.JoinableTables, s.PaperFeatures, w)
		}
	}
	// Scaled entries keep the paper row count on record.
	cov, _ := SpecByName("covertype")
	if cov.PaperRows != 423682 || cov.Rows >= cov.PaperRows {
		t.Error("covertype must be scaled down with provenance")
	}
}

func TestGenerateShape(t *testing.T) {
	d := gen(t, "credit")
	if len(d.Tables) != d.Spec.JoinableTables+1 {
		t.Fatalf("tables = %d, want %d", len(d.Tables), d.Spec.JoinableTables+1)
	}
	if d.Base.NumRows() != d.Spec.Rows {
		t.Fatalf("rows = %d, want %d", d.Base.NumRows(), d.Spec.Rows)
	}
	if !d.Base.HasColumn("id") || !d.Base.HasColumn("target") {
		t.Fatal("base must have id and target")
	}
	dist, err := d.Base.ClassDistribution("target")
	if err != nil {
		t.Fatal(err)
	}
	n0, n1 := dist[0], dist[1]
	if n0 == 0 || n1 == 0 {
		t.Fatal("both classes must be present")
	}
	ratio := float64(n1) / float64(n0+n1)
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("class balance %v too skewed", ratio)
	}
	// Feature budget: count non-key, non-id, non-target columns.
	features := 0
	for _, tab := range d.Tables {
		for _, c := range tab.Columns() {
			name := c.Name()
			if name == "id" || name == "target" || isKeyLike(name) {
				continue
			}
			features++
		}
	}
	if features != d.Spec.TotalFeatures {
		t.Fatalf("feature budget %d, want %d", features, d.Spec.TotalFeatures)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := gen(t, "credit")
	b := gen(t, "credit")
	for i := range a.Tables {
		if !a.Tables[i].Equal(b.Tables[i]) {
			t.Fatalf("table %d differs between runs", i)
		}
	}
}

func TestGenerateKFKsJoinable(t *testing.T) {
	d := gen(t, "credit")
	byName := map[string]*frame.Frame{}
	for _, tab := range d.Tables {
		byName[tab.Name()] = tab
	}
	if len(d.KFKs) != d.Spec.JoinableTables {
		t.Fatalf("KFKs = %d, want %d", len(d.KFKs), d.Spec.JoinableTables)
	}
	for _, k := range d.KFKs {
		p, c := byName[k.ParentTable], byName[k.ChildTable]
		if p == nil || c == nil {
			t.Fatalf("KFK references unknown tables: %+v", k)
		}
		if !p.HasColumn(k.ParentCol) || !c.HasColumn(k.ChildCol) {
			t.Fatalf("KFK references unknown columns: %+v", k)
		}
		// Real joinability: child FK values overlap parent keys.
		overlap := overlapFrac(c.Column(k.ChildCol), p.Column(k.ParentCol))
		if overlap < 0.25 {
			t.Fatalf("KFK %v has overlap %v; keys must be joinable", k, overlap)
		}
	}
}

func overlapFrac(a, b *frame.Column) float64 {
	as, bs := a.ValueSet(), b.ValueSet()
	if len(as) == 0 {
		return 0
	}
	n := 0
	for k := range as {
		if _, ok := bs[k]; ok {
			n++
		}
	}
	return float64(n) / float64(len(as))
}

func TestInformativeFeaturesPlacedDeep(t *testing.T) {
	d := gen(t, "steel")
	deepInformative := 0
	for table, feats := range d.InformativeByTable {
		if d.Depth[table] >= 2 {
			deepInformative += len(feats)
		}
	}
	if deepInformative == 0 {
		t.Fatal("transitive tables must hold informative features — that is the point of the paper")
	}
	// The spurious table must exist and hold no informative features.
	if d.SpuriousTable == "" {
		t.Fatal("every lake needs a spurious table")
	}
	if len(d.InformativeByTable[d.SpuriousTable]) != 0 {
		t.Fatal("spurious table must not hold signal")
	}
}

func TestDepthStructure(t *testing.T) {
	d := gen(t, "steel") // 15 tables -> depths 1..3
	maxDepth := 0
	for _, dep := range d.Depth {
		if dep > maxDepth {
			maxDepth = dep
		}
	}
	if maxDepth < 2 {
		t.Fatalf("15-table lake must chain to depth >= 2, got %d", maxDepth)
	}
	if d.Depth[d.Base.Name()] != 0 {
		t.Fatal("base depth must be 0")
	}
}

func TestBenchmarkDRG(t *testing.T) {
	d := gen(t, "credit")
	g, err := d.BenchmarkDRG()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != len(d.Tables) {
		t.Fatal("every table must be a node")
	}
	if g.NumEdges() != len(d.KFKs) {
		t.Fatalf("benchmark DRG must have exactly the KFK edges: %d vs %d", g.NumEdges(), len(d.KFKs))
	}
	for _, e := range g.EdgesFrom(d.Base.Name()) {
		if !e.KFK || e.Weight != 1 {
			t.Fatal("benchmark edges must be KFK with weight 1")
		}
	}
}

func TestLakeDRGIsDenserMultigraph(t *testing.T) {
	d := gen(t, "credit")
	bench, err := d.BenchmarkDRG()
	if err != nil {
		t.Fatal(err)
	}
	lake, err := d.LakeDRG(0.55)
	if err != nil {
		t.Fatal(err)
	}
	if lake.NumNodes() != bench.NumNodes() {
		t.Fatal("same nodes in both settings")
	}
	if lake.NumEdges() <= bench.NumEdges() {
		t.Fatalf("lake DRG must be denser (spurious edges): %d vs %d", lake.NumEdges(), bench.NumEdges())
	}
	// The true KFK relationships must be rediscovered by instance overlap.
	found := 0
	for _, k := range d.KFKs {
		for _, e := range lake.EdgesBetween(k.ParentTable, k.ChildTable) {
			if (e.ColA == k.ParentCol && e.ColB == k.ChildCol) || (e.ColA == k.ChildCol && e.ColB == k.ParentCol) {
				found++
				break
			}
		}
	}
	if found < len(d.KFKs)*2/3 {
		t.Fatalf("discovery found only %d/%d true relationships", found, len(d.KFKs))
	}
}

func TestFlatTable(t *testing.T) {
	d := gen(t, "credit")
	flat, err := d.FlatTable()
	if err != nil {
		t.Fatal(err)
	}
	if flat.NumRows() != d.Spec.Rows {
		t.Fatal("flat table must align to entities")
	}
	if !flat.HasColumn("target") || !flat.HasColumn("id") {
		t.Fatal("flat table keeps id and target")
	}
	features := 0
	for _, c := range flat.Columns() {
		if c.Name() != "id" && c.Name() != "target" && !isKeyLike(c.Name()) {
			features++
		}
	}
	if features != d.Spec.TotalFeatures {
		t.Fatalf("flat features = %d, want %d", features, d.Spec.TotalFeatures)
	}
	// Coverage gaps become nulls.
	if flat.NullRatio() == 0 {
		t.Fatal("partial coverage must surface as nulls in the flat view")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Spec{Rows: 5, JoinableTables: 2, TotalFeatures: 10}); err == nil {
		t.Fatal("too few rows must fail")
	}
	if _, err := Generate(Spec{Rows: 100, JoinableTables: 0, TotalFeatures: 10}); err == nil {
		t.Fatal("no joinable tables must fail")
	}
	if _, err := Generate(Spec{Rows: 100, JoinableTables: 8, TotalFeatures: 5}); err == nil {
		t.Fatal("feature budget below tables must fail")
	}
}

func TestSectionVAndSmallSpecs(t *testing.T) {
	if got := len(SectionVSpecs()); got != 6 {
		t.Fatalf("Section V uses 6 datasets, got %d", got)
	}
	for _, s := range SmallSpecs() {
		if _, err := Generate(s); err != nil {
			t.Fatalf("small spec %s: %v", s.Name, err)
		}
	}
	if _, ok := SpecByName("nope"); ok {
		t.Fatal("unknown spec must report !ok")
	}
}

func TestMABCompatibleNaming(t *testing.T) {
	// Even-indexed tables must expose same-named FK/key pairs so the MAB
	// baseline has something to traverse.
	d := gen(t, "credit")
	same := 0
	for _, k := range d.KFKs {
		if k.ParentCol == k.ChildCol {
			same++
		}
	}
	if same == 0 {
		t.Fatal("some KFKs must share column names for MAB compatibility")
	}
	if same == len(d.KFKs) {
		t.Fatal("some KFKs must have differing names to exercise MAB's limitation")
	}
}
