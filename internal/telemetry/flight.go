package telemetry

import "sync"

// FlightRecorder is a fixed-size ring buffer of the most recent
// finished spans — the postmortem capture dumped at /debug/flight. It
// implements SpanObserver; attach it with Collector.ObserveSpans.
// Unlike the TraceStore it keeps spans regardless of trace membership,
// so the last moments before a crash are visible even for untraced
// work.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []SpanRecord
	next  int
	total int64
}

// DefaultFlightCapacity is the ring size used when NewFlightRecorder is
// given a non-positive capacity.
const DefaultFlightCapacity = 256

// NewFlightRecorder returns a recorder keeping the last capacity spans
// (non-positive uses DefaultFlightCapacity).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{ring: make([]SpanRecord, 0, capacity)}
}

// ObserveSpan implements SpanObserver: append the span, overwriting the
// oldest once the ring is full.
func (f *FlightRecorder) ObserveSpan(rec SpanRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.ring) < cap(f.ring) {
		f.ring = append(f.ring, rec)
	} else {
		f.ring[f.next] = rec
	}
	f.next = (f.next + 1) % cap(f.ring)
	f.total++
}

// Cap returns the ring capacity.
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return cap(f.ring)
}

// Snapshot returns the retained spans oldest-first plus the total
// number of spans ever recorded (total - len(spans) have been
// overwritten).
func (f *FlightRecorder) Snapshot() ([]SpanRecord, int64) {
	if f == nil {
		return nil, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]SpanRecord, 0, len(f.ring))
	if len(f.ring) < cap(f.ring) {
		out = append(out, f.ring...)
	} else {
		out = append(out, f.ring[f.next:]...)
		out = append(out, f.ring[:f.next]...)
	}
	return out, f.total
}
