package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// Snapshot is a point-in-time capture of a Collector: every metric and
// every span. It is the unit every sink consumes.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Spans      []SpanRecord                 `json:"spans,omitempty"`
}

// Pruning collects the "discovery.pruned.<reason>" counters into one
// reason -> count breakdown (the per-reason replacement for the old
// lumped PathsPruned). Reasons never incremented are absent.
func (s *Snapshot) Pruning() map[string]int64 {
	out := map[string]int64{}
	for name, v := range s.Counters {
		if strings.HasPrefix(name, CtrPrunedPrefix) {
			out[strings.TrimPrefix(name, CtrPrunedPrefix)] = v
		}
	}
	return out
}

// PhaseStat aggregates every span sharing one name.
type PhaseStat struct {
	Name  string        `json:"name"`
	Count int           `json:"count"`
	Total time.Duration `json:"total_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Mean returns the average span duration for the phase.
func (p PhaseStat) Mean() time.Duration {
	if p.Count == 0 {
		return 0
	}
	return p.Total / time.Duration(p.Count)
}

// Phases aggregates spans by name, ordered by descending total time —
// the per-phase cost breakdown of a run.
func (s *Snapshot) Phases() []PhaseStat {
	byName := map[string]*PhaseStat{}
	var order []string
	for _, sp := range s.Spans {
		st := byName[sp.Name]
		if st == nil {
			st = &PhaseStat{Name: sp.Name}
			byName[sp.Name] = st
			order = append(order, sp.Name)
		}
		d := sp.Duration()
		st.Count++
		st.Total += d
		if d > st.Max {
			st.Max = d
		}
	}
	out := make([]PhaseStat, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// traceDoc is the --trace-out file layout.
type traceDoc struct {
	Spans []SpanRecord `json:"spans"`
}

// metricsDoc is the --metrics-out file layout: the registry plus the
// pruning breakdown and per-phase aggregates as convenience views.
type metricsDoc struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Pruning    map[string]int64             `json:"pruning"`
	Phases     []PhaseStat                  `json:"phases,omitempty"`
}

// TraceJSON marshals the span list as an indented {"spans": [...]}
// document (the --trace-out format).
func (s *Snapshot) TraceJSON() ([]byte, error) {
	return json.MarshalIndent(traceDoc{Spans: s.Spans}, "", "  ")
}

// MetricsJSON marshals counters, gauges, histograms, the pruning-reason
// breakdown and per-phase durations (the --metrics-out format).
func (s *Snapshot) MetricsJSON() ([]byte, error) {
	return json.MarshalIndent(metricsDoc{
		Counters:   s.Counters,
		Gauges:     s.Gauges,
		Histograms: s.Histograms,
		Pruning:    s.Pruning(),
		Phases:     s.Phases(),
	}, "", "  ")
}

// Sink consumes one snapshot at the end of a run.
type Sink interface {
	Flush(*Snapshot) error
}

// NopSink discards the snapshot — the default when telemetry is enabled
// only for programmatic inspection.
type NopSink struct{}

// Flush implements Sink by doing nothing.
func (NopSink) Flush(*Snapshot) error { return nil }

// JSONSink writes the full snapshot (metrics + spans) as indented JSON.
type JSONSink struct{ W io.Writer }

// Flush implements Sink.
func (s JSONSink) Flush(snap *Snapshot) error {
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	_, err = s.W.Write(append(b, '\n'))
	return err
}

// ReportSink renders a human-readable run report: per-phase durations,
// the pruning breakdown and every counter/gauge/histogram summary.
type ReportSink struct{ W io.Writer }

// Flush implements Sink.
func (s ReportSink) Flush(snap *Snapshot) error {
	w := s.W
	fmt.Fprintln(w, "=== telemetry report ===")
	if phases := snap.Phases(); len(phases) > 0 {
		fmt.Fprintln(w, "phases (by total time):")
		fmt.Fprintf(w, "  %-28s %8s %12s %12s %12s\n", "span", "count", "total", "mean", "max")
		for _, p := range phases {
			fmt.Fprintf(w, "  %-28s %8d %12v %12v %12v\n",
				p.Name, p.Count, p.Total.Round(time.Microsecond),
				p.Mean().Round(time.Microsecond), p.Max.Round(time.Microsecond))
		}
	}
	if pruning := snap.Pruning(); len(pruning) > 0 {
		fmt.Fprintln(w, "pruning breakdown:")
		for _, k := range sortedKeys(pruning) {
			fmt.Fprintf(w, "  %-28s %8d\n", k, pruning[k])
		}
	}
	if len(snap.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, k := range sortedKeys(snap.Counters) {
			fmt.Fprintf(w, "  %-28s %8d\n", k, snap.Counters[k])
		}
	}
	if len(snap.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, k := range sortedKeys(snap.Gauges) {
			fmt.Fprintf(w, "  %-28s %8.4f\n", k, snap.Gauges[k])
		}
	}
	if len(snap.Histograms) > 0 {
		fmt.Fprintln(w, "histograms:")
		for _, k := range sortedKeys(snap.Histograms) {
			h := snap.Histograms[k]
			fmt.Fprintf(w, "  %-28s n=%d mean=%.6fs min=%.6fs max=%.6fs\n",
				k, h.Count, h.Mean, h.Min, h.Max)
		}
	}
	return nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteTraceFile writes the snapshot's TraceJSON to path.
func WriteTraceFile(path string, s *Snapshot) error {
	b, err := s.TraceJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// WriteMetricsFile writes the snapshot's MetricsJSON to path.
func WriteMetricsFile(path string, s *Snapshot) error {
	b, err := s.MetricsJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
