package telemetry

// Tests for the context-propagated tracer: W3C traceparent round-trips,
// remote parent linking, concurrent trees over one shared tracer, the
// retention cap, and the trace-store / flight-recorder observers.

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTracer()
	_, sp := tr.StartSpan(context.Background(), "x")
	sc := sp.Context()
	if !sc.IsValid() {
		t.Fatalf("wall-clock tracer must mint valid IDs: %+v", sc)
	}
	header := sc.Traceparent()
	if len(header) != 55 || !strings.HasPrefix(header, "00-") {
		t.Fatalf("bad traceparent %q", header)
	}
	back, ok := ParseTraceparent(header)
	if !ok || back != sc {
		t.Fatalf("round trip failed: %q -> %+v (ok=%v)", header, back, ok)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	for _, bad := range []string{
		"",
		"00-abc-def-01",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331", // missing flags
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",      // reserved version
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",      // zero trace
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",      // zero span
		"00-0af7651916cd43dd8448eb211c80319X-b7ad6b7169203331-01",      // non-hex
		"00x0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",      // bad separator
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra", // wrong length
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
	good := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	sc, ok := ParseTraceparent(good)
	if !ok || sc.Trace.String() != "0af7651916cd43dd8448eb211c80319c" || sc.Span.String() != "b7ad6b7169203331" {
		t.Fatalf("ParseTraceparent(%q) = %+v, %v", good, sc, ok)
	}
}

func TestRemoteParent(t *testing.T) {
	tr := NewTracerWithClock(fakeClock(time.Millisecond))
	remote, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	if !ok {
		t.Fatal("parse failed")
	}
	ctx := ContextWithRemote(context.Background(), remote)
	if sc, ok := SpanContextFrom(ctx); !ok || sc != remote {
		t.Fatalf("SpanContextFrom = %+v, %v", sc, ok)
	}
	cctx, child := tr.StartSpan(ctx, "child")
	_, grand := tr.StartSpan(cctx, "grand")
	grand.End()
	child.End()
	spans := tr.Spans()
	if spans[0].TraceID != remote.Trace.String() {
		t.Fatalf("child must join the remote trace: %+v", spans[0])
	}
	if spans[0].Parent != 0 || spans[0].ParentSpanID != remote.Span.String() {
		t.Fatalf("remote parent must link by span ID only: %+v", spans[0])
	}
	if spans[1].Parent != spans[0].ID || spans[1].ParentSpanID != spans[0].SpanID {
		t.Fatalf("grand must nest under child: %+v", spans[1])
	}
}

func TestConcurrentTracesShareOneTracer(t *testing.T) {
	// Two goroutine "jobs" interleave spans on one tracer; each must get
	// its own trace with correct parentage (the open-stack model this
	// tracer replaced corrupted exactly this case).
	tr := NewTracer()
	const jobs, depth = 4, 16
	traces := make([]string, jobs)
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			ctx, root := tr.StartSpan(context.Background(), "job")
			traces[j] = root.Context().Trace.String()
			for i := 0; i < depth; i++ {
				cctx, sp := tr.StartSpan(ctx, "step")
				_, leaf := tr.StartSpan(cctx, "leaf")
				leaf.End()
				sp.End()
			}
			root.End()
		}(j)
	}
	wg.Wait()

	byTrace := map[string][]SpanRecord{}
	for _, rec := range tr.Spans() {
		byTrace[rec.TraceID] = append(byTrace[rec.TraceID], rec)
	}
	if len(byTrace) != jobs {
		t.Fatalf("want %d traces, got %d", jobs, len(byTrace))
	}
	for _, id := range traces {
		spans := byTrace[id]
		if len(spans) != 1+2*depth {
			t.Fatalf("trace %s has %d spans, want %d", id, len(spans), 1+2*depth)
		}
		roots := BuildSpanTree(spans)
		if len(roots) != 1 || roots[0].Name != "job" {
			t.Fatalf("trace %s must form a single tree rooted at job: %d roots", id, len(roots))
		}
		if len(roots[0].Children) != depth {
			t.Fatalf("root has %d children, want %d", len(roots[0].Children), depth)
		}
		for _, step := range roots[0].Children {
			if step.Name != "step" || len(step.Children) != 1 || step.Children[0].Name != "leaf" {
				t.Fatalf("malformed subtree under %s: %+v", id, step)
			}
		}
	}
}

func TestMaxSpansRetention(t *testing.T) {
	tr := NewTracerWithClock(fakeClock(time.Millisecond))
	store := NewTraceStore(0, 0)
	tr.AddObserver(store)
	tr.SetMaxSpans(2)
	ctx, a := tr.StartSpan(context.Background(), "a")
	bctx, b := tr.StartSpan(ctx, "b")
	_, c := tr.StartSpan(bctx, "c") // over the cap: not retained
	c.SetStr("k", "v")
	c.End()
	b.End()
	a.End()
	if tr.Len() != 2 {
		t.Fatalf("retained %d spans, want 2", tr.Len())
	}
	if tr.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tr.Dropped())
	}
	// The overflow span still went to observers, fully annotated and
	// correctly parented.
	sc, _ := SpanContextFrom(ctx)
	spans := store.Spans(sc.Trace.String())
	if len(spans) != 3 {
		t.Fatalf("observer saw %d spans, want 3", len(spans))
	}
	var overflow *SpanRecord
	for i := range spans {
		if spans[i].Name == "c" {
			overflow = &spans[i]
		}
	}
	if overflow == nil || len(overflow.Attrs) != 1 || overflow.DurUS < 0 {
		t.Fatalf("overflow span mangled: %+v", overflow)
	}
	if overflow.Parent != 2 {
		t.Fatalf("overflow span must keep numeric parentage: %+v", overflow)
	}
}

func TestTraceStoreBoundsAndSummaries(t *testing.T) {
	store := NewTraceStore(2, 2)
	rec := func(trace, span, parent, name string, start, dur int64) SpanRecord {
		return SpanRecord{TraceID: trace, SpanID: span, ParentSpanID: parent,
			Name: name, StartUS: start, DurUS: dur}
	}
	store.ObserveSpan(rec("t1", "s1", "", "root1", 0, 10))
	store.ObserveSpan(rec("t2", "s2", "", "root2", 5, 10))
	store.ObserveSpan(rec("t2", "s3", "s2", "kid", 7, 1))
	store.ObserveSpan(rec("t2", "s4", "s2", "kid2", 8, 1)) // over per-trace cap
	store.ObserveSpan(rec("t3", "s5", "", "root3", 0, 1))  // evicts t1
	store.ObserveSpan(SpanRecord{Name: "no-trace"})        // ignored

	if store.Len() != 2 {
		t.Fatalf("store holds %d traces, want 2", store.Len())
	}
	if store.Spans("t1") != nil {
		t.Fatal("t1 must have been evicted")
	}
	sums := store.Summaries()
	if len(sums) != 2 || sums[0].TraceID != "t2" || sums[1].TraceID != "t3" {
		t.Fatalf("summaries wrong: %+v", sums)
	}
	if sums[0].Spans != 2 || sums[0].Dropped != 1 || sums[0].Root != "root2" {
		t.Fatalf("t2 summary wrong: %+v", sums[0])
	}
	if sums[0].DurationUS != 15-5 {
		t.Fatalf("t2 duration = %d, want 10", sums[0].DurationUS)
	}
}

func TestBuildSpanTreeOrphans(t *testing.T) {
	spans := []SpanRecord{
		{ID: 2, SpanID: "b", ParentSpanID: "a", Name: "child", StartUS: 5},
		{ID: 1, SpanID: "a", Name: "root", StartUS: 0},
		{ID: 3, SpanID: "c", ParentSpanID: "missing", Name: "orphan", StartUS: 1},
	}
	roots := BuildSpanTree(spans)
	if len(roots) != 2 {
		t.Fatalf("want 2 roots (true root + orphan), got %d", len(roots))
	}
	if roots[0].Name != "root" || roots[1].Name != "orphan" {
		t.Fatalf("root order wrong: %s, %s", roots[0].Name, roots[1].Name)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Name != "child" {
		t.Fatalf("child not attached: %+v", roots[0])
	}
}

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(3)
	if f.Cap() != 3 {
		t.Fatalf("cap = %d", f.Cap())
	}
	for i := 1; i <= 5; i++ {
		f.ObserveSpan(SpanRecord{ID: i})
	}
	spans, total := f.Snapshot()
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
	if len(spans) != 3 || spans[0].ID != 3 || spans[2].ID != 5 {
		t.Fatalf("ring contents wrong: %+v", spans)
	}
	var nilRec *FlightRecorder
	nilRec.ObserveSpan(SpanRecord{})
	if s, n := nilRec.Snapshot(); s != nil || n != 0 || nilRec.Cap() != 0 {
		t.Fatal("nil recorder must be inert")
	}
}

func TestStartSpanNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartSpan(nil, "x") //nolint:staticcheck // nil ctx tolerated by design
	if ctx == nil {
		t.Fatal("nil tracer must still return a usable context")
	}
	if sp.Context().IsValid() {
		t.Fatal("no-op span must carry no identity")
	}
	sp.End()
	var c *Collector
	c.ObserveSpans(NewTraceStore(0, 0))
	ctx2, sp2 := StartSpan(context.Background(), c, "y")
	if ctx2 == nil || sp2.End() != 0 {
		t.Fatal("package-level StartSpan must degrade on nil collector")
	}
	if _, ok := SpanContextFrom(nil); ok { //nolint:staticcheck // nil ctx tolerated by design
		t.Fatal("SpanContextFrom(nil) must report none")
	}
	if got := ContextWithRemote(nil, SpanContext{}); got == nil { //nolint:staticcheck // nil ctx tolerated by design
		t.Fatal("ContextWithRemote(nil, zero) must return a context")
	}
}
