package telemetry

import (
	"log/slog"
	"sync"
	"time"
)

// DefaultEventLogSize is the ring capacity used when NewEventLog is
// given a non-positive capacity.
const DefaultEventLogSize = 256

// Event is one structured entry in the cluster event journal: a
// membership or scheduling transition worth surfacing to operators
// (worker join/death, job reroute, dispatch retry, quota rejection,
// replication push). Type is one of the Event* constants.
type Event struct {
	Seq        int64  `json:"seq"`
	TimeUnixMS int64  `json:"time_unix_ms"`
	Type       string `json:"type"`
	Node       string `json:"node,omitempty"`
	Job        string `json:"job,omitempty"`
	Detail     string `json:"detail,omitempty"`
}

// EventLog is a bounded ring of cluster events: Record appends (evicting
// the oldest entry past capacity) and mirrors each event to slog, Events
// returns the retained window oldest-first. All methods are safe for
// concurrent use and nil-receiver safe, matching the rest of the
// telemetry layer.
type EventLog struct {
	mu     sync.Mutex
	buf    []Event
	start  int // index of the oldest entry
	n      int // live entries in buf
	seq    int64
	logger *slog.Logger
	clock  func() time.Time
}

// NewEventLog returns an event log retaining at most capacity entries
// (DefaultEventLogSize when capacity <= 0), mirroring each recorded
// event to logger (may be nil: no mirroring).
func NewEventLog(capacity int, logger *slog.Logger) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventLogSize
	}
	return &EventLog{buf: make([]Event, capacity), logger: logger, clock: time.Now}
}

// SetClock replaces the wall-clock source used to stamp events —
// deterministic timestamps for tests. A nil log ignores the call.
func (l *EventLog) SetClock(now func() time.Time) {
	if l == nil || now == nil {
		return
	}
	l.mu.Lock()
	l.clock = now
	l.mu.Unlock()
}

// Record stamps the event with the next sequence number (and the
// current time, unless TimeUnixMS is already set), appends it to the
// ring, and mirrors it to the log's slog logger. A nil log drops the
// event.
func (l *EventLog) Record(e Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	if e.TimeUnixMS == 0 {
		e.TimeUnixMS = l.clock().UnixMilli()
	}
	i := (l.start + l.n) % len(l.buf)
	l.buf[i] = e
	if l.n < len(l.buf) {
		l.n++
	} else {
		l.start = (l.start + 1) % len(l.buf)
	}
	logger := l.logger
	l.mu.Unlock()

	if logger != nil {
		attrs := []any{"seq", e.Seq, "type", e.Type}
		if e.Node != "" {
			attrs = append(attrs, "node", e.Node)
		}
		if e.Job != "" {
			attrs = append(attrs, "job", e.Job)
		}
		if e.Detail != "" {
			attrs = append(attrs, "detail", e.Detail)
		}
		logger.Info("cluster event", attrs...)
	}
}

// Events returns the retained window, oldest first. A nil log returns
// nil.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.buf[(l.start+i)%len(l.buf)])
	}
	return out
}

// Len reports how many events the ring currently retains.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// Total reports how many events were ever recorded, including entries
// the ring has since evicted.
func (l *EventLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}
