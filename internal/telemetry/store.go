package telemetry

import (
	"sort"
	"sync"
)

// TraceStore is a bounded in-memory index of finished spans grouped by
// trace ID — the backing store of the service's GET /v1/traces
// endpoints. It implements SpanObserver; attach it with
// Collector.ObserveSpans. When the trace cap is hit the oldest trace
// (first-seen order) is evicted whole; within one trace, spans past the
// per-trace cap are counted but not retained.
type TraceStore struct {
	mu        sync.Mutex
	maxTraces int
	maxSpans  int // per trace
	traces    map[string]*storedTrace
	order     []string // trace IDs in first-seen order
}

// storedTrace is one trace's retained spans.
type storedTrace struct {
	spans   []SpanRecord
	dropped int
}

// DefaultMaxTraces and DefaultMaxTraceSpans are the TraceStore bounds
// used when NewTraceStore is given non-positive values.
const (
	DefaultMaxTraces     = 256
	DefaultMaxTraceSpans = 4096
)

// NewTraceStore returns a store retaining at most maxTraces traces of
// at most maxSpansPerTrace spans each (non-positive values use the
// defaults).
func NewTraceStore(maxTraces, maxSpansPerTrace int) *TraceStore {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	if maxSpansPerTrace <= 0 {
		maxSpansPerTrace = DefaultMaxTraceSpans
	}
	return &TraceStore{
		maxTraces: maxTraces,
		maxSpans:  maxSpansPerTrace,
		traces:    map[string]*storedTrace{},
	}
}

// ObserveSpan implements SpanObserver: file the finished span under its
// trace. Spans without a trace ID (legacy Start callers) are ignored.
func (ts *TraceStore) ObserveSpan(rec SpanRecord) {
	if ts == nil || rec.TraceID == "" {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	tr := ts.traces[rec.TraceID]
	if tr == nil {
		for len(ts.order) >= ts.maxTraces {
			delete(ts.traces, ts.order[0])
			ts.order = ts.order[1:]
		}
		tr = &storedTrace{}
		ts.traces[rec.TraceID] = tr
		ts.order = append(ts.order, rec.TraceID)
	}
	if len(tr.spans) >= ts.maxSpans {
		tr.dropped++
		return
	}
	tr.spans = append(tr.spans, rec)
}

// Len returns the number of retained traces.
func (ts *TraceStore) Len() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.traces)
}

// TraceSummary is one row of the GET /v1/traces listing.
type TraceSummary struct {
	// TraceID is the 32-hex-digit trace identity.
	TraceID string `json:"trace_id"`
	// Spans counts the retained spans; Dropped counts spans past the
	// per-trace cap (omitted when zero).
	Spans   int `json:"spans"`
	Dropped int `json:"dropped,omitempty"`
	// Root is the name of the first root span seen (no parent span ID),
	// falling back to the first span's name.
	Root string `json:"root,omitempty"`
	// DurationUS is the maximum span end offset minus the minimum start
	// offset across the trace — the trace's wall-clock footprint.
	DurationUS int64 `json:"duration_us"`
}

// Summaries lists the retained traces in first-seen order.
func (ts *TraceStore) Summaries() []TraceSummary {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]TraceSummary, 0, len(ts.order))
	for _, id := range ts.order {
		tr := ts.traces[id]
		s := TraceSummary{TraceID: id, Spans: len(tr.spans), Dropped: tr.dropped}
		var minStart, maxEnd int64
		for i, rec := range tr.spans {
			end := rec.StartUS
			if rec.DurUS > 0 {
				end += rec.DurUS
			}
			if i == 0 || rec.StartUS < minStart {
				minStart = rec.StartUS
			}
			if i == 0 || end > maxEnd {
				maxEnd = end
			}
			if s.Root == "" && rec.ParentSpanID == "" {
				s.Root = rec.Name
			}
		}
		if s.Root == "" && len(tr.spans) > 0 {
			s.Root = tr.spans[0].Name
		}
		s.DurationUS = maxEnd - minStart
		out = append(out, s)
	}
	return out
}

// Spans returns a copy of the retained spans of one trace, nil when the
// trace is unknown.
func (ts *TraceStore) Spans(traceID string) []SpanRecord {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	tr := ts.traces[traceID]
	if tr == nil {
		return nil
	}
	return append([]SpanRecord(nil), tr.spans...)
}

// SpanNode is one node of the span tree rendered at /v1/traces/{id}.
type SpanNode struct {
	SpanRecord
	// Children are the node's child spans, ordered by start offset.
	Children []*SpanNode `json:"children,omitempty"`
}

// BuildSpanTree assembles spans (one trace's records, any order) into a
// forest linked by SpanID/ParentSpanID. Spans whose parent is unknown —
// true roots, spans below a remote parent, or spans whose parent was
// dropped — become roots. Siblings are ordered by start offset, then by
// record ID.
func BuildSpanTree(spans []SpanRecord) []*SpanNode {
	nodes := make([]*SpanNode, len(spans))
	byID := make(map[string]*SpanNode, len(spans))
	for i, rec := range spans {
		nodes[i] = &SpanNode{SpanRecord: rec}
		if rec.SpanID != "" {
			byID[rec.SpanID] = nodes[i]
		}
	}
	var roots []*SpanNode
	for _, n := range nodes {
		if parent := byID[n.ParentSpanID]; n.ParentSpanID != "" && parent != nil && parent != n {
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	for _, n := range nodes {
		sortNodes(n.Children)
	}
	return roots
}

// sortNodes orders sibling spans by start offset, breaking ties by
// record ID.
func sortNodes(ns []*SpanNode) {
	sort.SliceStable(ns, func(i, j int) bool {
		if ns[i].StartUS != ns[j].StartUS {
			return ns[i].StartUS < ns[j].StartUS
		}
		return ns[i].ID < ns[j].ID
	})
}
