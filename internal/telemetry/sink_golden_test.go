package telemetry

// Golden tests pinning the ReportSink and JSONSink output formats. The
// sink output is consumed by scripts and diffed across runs, so format
// drift is a breaking change and must show up in review as a golden
// update, not slip through silently.

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// goldenSnapshot returns a small hand-built snapshot with one of every
// metric kind, so the golden strings stay short and readable.
func goldenSnapshot() *Snapshot {
	return &Snapshot{
		Counters: map[string]int64{
			CtrJoins:                       3,
			PrunedCounter(PruneSimilarity): 2,
		},
		Gauges: map[string]float64{
			GaugeWorkers: 4,
		},
		Histograms: map[string]HistogramSnapshot{
			HistJoinSeconds: {
				Count:  2,
				Sum:    0.3,
				Mean:   0.15,
				Min:    0.1,
				Max:    0.2,
				Bounds: []float64{0.1, 1},
				Counts: []int64{1, 1, 0},
			},
		},
		Spans: []SpanRecord{
			{ID: 1, Name: SpanRun, StartUS: 0, DurUS: 5000},
			{ID: 2, Parent: 1, Name: SpanJoinEval, StartUS: 1000, DurUS: 2000,
				Attrs: []Attr{{Key: "path", Value: "base.sat"}}},
		},
	}
}

const goldenReport = `=== telemetry report ===
phases (by total time):
  span                            count        total         mean          max
  discovery.run                       1          5ms          5ms          5ms
  discovery.evaluate_join             1          2ms          2ms          2ms
pruning breakdown:
  similarity                          2
counters:
  discovery.pruned.similarity         2
  relational.joins                    3
gauges:
  discovery.workers              4.0000
histograms:
  relational.left_join_seconds n=2 mean=0.150000s min=0.100000s max=0.200000s
`

func TestReportSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := (ReportSink{W: &buf}).Flush(goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenReport {
		t.Errorf("ReportSink output changed.\n--- got ---\n%s\n--- want ---\n%s", got, goldenReport)
	}
}

const goldenJSON = `{
  "counters": {
    "discovery.pruned.similarity": 2,
    "relational.joins": 3
  },
  "gauges": {
    "discovery.workers": 4
  },
  "histograms": {
    "relational.left_join_seconds": {
      "count": 2,
      "sum": 0.3,
      "mean": 0.15,
      "min": 0.1,
      "max": 0.2,
      "bounds": [
        0.1,
        1
      ],
      "counts": [
        1,
        1,
        0
      ]
    }
  },
  "spans": [
    {
      "id": 1,
      "name": "discovery.run",
      "start_us": 0,
      "dur_us": 5000
    },
    {
      "id": 2,
      "parent": 1,
      "name": "discovery.evaluate_join",
      "start_us": 1000,
      "dur_us": 2000,
      "attrs": [
        {
          "k": "path",
          "v": "base.sat"
        }
      ]
    }
  ]
}
`

func TestJSONSinkGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := (JSONSink{W: &buf}).Flush(goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != goldenJSON {
		t.Errorf("JSONSink output changed.\n--- got ---\n%s\n--- want ---\n%s", got, goldenJSON)
	}
	// The sink output must round-trip back into an equivalent snapshot.
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSONSink output is not valid JSON: %v", err)
	}
	if !reflect.DeepEqual(&back, goldenSnapshot()) {
		t.Errorf("round-trip mismatch: %+v", back)
	}
}

// driveCollector exercises a clock-injected collector the same way each
// call, so two invocations must flush byte-identical sink output.
func driveCollector() *Snapshot {
	var step int64
	clock := func() time.Time {
		step++
		return time.Unix(0, 0).Add(time.Duration(step) * time.Millisecond)
	}
	c := NewWithClock(clock)
	ctx, run := StartSpan(context.Background(), c, SpanRun)
	_, j := StartSpan(ctx, c, SpanJoinEval)
	j.SetStr("path", "base->satA")
	j.End()
	run.End()
	c.Meter().Inc(CtrJoins)
	c.Meter().Add(CtrPathsExplored, 5)
	c.Meter().Inc(PrunedCounter(PruneQualityBelowTau))
	c.Meter().SetGauge(GaugeWorkers, 2)
	c.Meter().Observe(HistJoinSeconds, 0.004)
	return c.Snapshot()
}

func TestSinkOutputStableAcrossRuns(t *testing.T) {
	flush := func(sink func(*bytes.Buffer) Sink) (string, string) {
		var a, b bytes.Buffer
		if err := sink(&a).Flush(driveCollector()); err != nil {
			t.Fatal(err)
		}
		if err := sink(&b).Flush(driveCollector()); err != nil {
			t.Fatal(err)
		}
		return a.String(), b.String()
	}
	if a, b := flush(func(w *bytes.Buffer) Sink { return ReportSink{W: w} }); a != b {
		t.Errorf("ReportSink not deterministic under injected clock:\n%s\nvs\n%s", a, b)
	}
	if a, b := flush(func(w *bytes.Buffer) Sink { return JSONSink{W: w} }); a != b {
		t.Errorf("JSONSink not deterministic under injected clock:\n%s\nvs\n%s", a, b)
	}
}
