package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultBuckets are the histogram upper bounds used by Observe, tuned
// for phase durations in seconds: 10µs up to 10s, roughly 1-2.5-5 per
// decade (Prometheus-style). Values above the last bound land in an
// implicit +Inf bucket.
var DefaultBuckets = []float64{
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram counts observations into upper-inclusive buckets: bucket i
// counts values v with v <= Bounds[i] (and above every earlier bound);
// Counts[len(Bounds)] is the +Inf overflow bucket.
type Histogram struct {
	Bounds   []float64
	Counts   []int64
	Sum      float64
	Count    int64
	Min, Max float64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds (DefaultBuckets when nil).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultBuckets
	}
	return &Histogram{
		Bounds: bounds,
		Counts: make([]int64, len(bounds)+1),
		Min:    math.Inf(1),
		Max:    math.Inf(-1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.Bounds, v)
	h.Counts[i]++
	h.Sum += v
	h.Count++
	if v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// HistogramSnapshot is the JSON-ready view of a histogram. Min/Max are
// omitted when the histogram is empty.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Mean   float64   `json:"mean"`
	Min    float64   `json:"min,omitempty"`
	Max    float64   `json:"max,omitempty"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.Count,
		Sum:    h.Sum,
		Mean:   h.Mean(),
		Bounds: append([]float64(nil), h.Bounds...),
		Counts: append([]int64(nil), h.Counts...),
	}
	if h.Count > 0 {
		s.Min, s.Max = h.Min, h.Max
	}
	return s
}

// Metrics is a named registry of counters, gauges and histograms.
// A nil *Metrics is a valid disabled registry: every method no-ops.
//
// Counters are lock-free on the hot path: the registry maps names to
// *atomic.Int64 cells under an RWMutex that is only write-locked when a
// name is first seen, so the parallel discovery workers increment shared
// counters without serialising on one mutex. Gauges and histograms are
// mutex-protected (they are written once per run / once per join, never
// contended enough to matter).
type Metrics struct {
	cmu      sync.RWMutex
	counters map[string]*atomic.Int64

	mu     sync.Mutex
	gauges map[string]float64
	hists  map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string]*atomic.Int64{},
		gauges:   map[string]float64{},
		hists:    map[string]*Histogram{},
	}
}

// Inc adds 1 to the named counter.
func (m *Metrics) Inc(name string) { m.Add(name, 1) }

// Add adds delta to the named counter.
func (m *Metrics) Add(name string, delta int64) {
	if m == nil {
		return
	}
	m.counter(name).Add(delta)
}

// counter returns the atomic cell for name, creating it on first use.
func (m *Metrics) counter(name string) *atomic.Int64 {
	m.cmu.RLock()
	c := m.counters[name]
	m.cmu.RUnlock()
	if c != nil {
		return c
	}
	m.cmu.Lock()
	defer m.cmu.Unlock()
	if c = m.counters[name]; c == nil {
		c = new(atomic.Int64)
		m.counters[name] = c
	}
	return c
}

// SetGauge sets the named gauge to v (last write wins).
func (m *Metrics) SetGauge(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.gauges[name] = v
	m.mu.Unlock()
}

// Observe records v into the named histogram (DefaultBuckets bounds).
func (m *Metrics) Observe(name string, v float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	h := m.hists[name]
	if h == nil {
		h = NewHistogram(nil)
		m.hists[name] = h
	}
	h.Observe(v)
	m.mu.Unlock()
}

// Counter reads the named counter (0 when absent or disabled).
func (m *Metrics) Counter(name string) int64 {
	if m == nil {
		return 0
	}
	m.cmu.RLock()
	defer m.cmu.RUnlock()
	if c := m.counters[name]; c != nil {
		return c.Load()
	}
	return 0
}

// Gauge reads the named gauge (0 when absent or disabled).
func (m *Metrics) Gauge(name string) float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gauges[name]
}

// HistogramCount reads the named histogram's observation count.
func (m *Metrics) HistogramCount(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h := m.hists[name]; h != nil {
		return h.Count
	}
	return 0
}

func (m *Metrics) snapshot() (map[string]int64, map[string]float64, map[string]HistogramSnapshot) {
	m.cmu.RLock()
	counters := make(map[string]int64, len(m.counters))
	for k, v := range m.counters {
		counters[k] = v.Load()
	}
	m.cmu.RUnlock()
	m.mu.Lock()
	defer m.mu.Unlock()
	gauges := make(map[string]float64, len(m.gauges))
	for k, v := range m.gauges {
		gauges[k] = v
	}
	hists := make(map[string]HistogramSnapshot, len(m.hists))
	for k, h := range m.hists {
		hists[k] = h.snapshot()
	}
	return counters, gauges, hists
}
