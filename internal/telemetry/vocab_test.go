package telemetry

// Vocabulary-sync test: the span/metric/prune-reason constants declared in
// telemetry.go and the tables in docs/TELEMETRY.md must agree, in both
// directions, so the docs never drift from the code. The constants are
// read from the AST (not from a hand-maintained list) so adding a constant
// without documenting it fails here.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// docPath is the vocabulary reference the constants must stay in sync with.
const docPath = "../../docs/TELEMETRY.md"

// vocabPrefixes are the constant-name prefixes that make up the public
// telemetry vocabulary.
var vocabPrefixes = []string{"Span", "Ctr", "Gauge", "Hist", "Prune"}

// telemetryConsts extracts every vocabulary constant (name -> string
// value) from telemetry.go's AST.
func telemetryConsts(t *testing.T) map[string]string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "telemetry.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				matched := false
				for _, p := range vocabPrefixes {
					if strings.HasPrefix(name.Name, p) {
						matched = true
						break
					}
				}
				if !matched || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				v, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatalf("const %s: %v", name.Name, err)
				}
				out[name.Name] = v
			}
		}
	}
	if len(out) < 20 {
		t.Fatalf("suspiciously few vocabulary constants parsed: %d", len(out))
	}
	return out
}

// TestVocabularyDocumented asserts the code -> docs direction: every
// Span*/Ctr*/Gauge*/Hist* name and every Prune* reason declared in
// telemetry.go appears in docs/TELEMETRY.md.
func TestVocabularyDocumented(t *testing.T) {
	doc, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	for name, value := range telemetryConsts(t) {
		needle := value
		if strings.HasPrefix(name, "Prune") {
			// Reasons are documented as bare backticked words.
			needle = "`" + value + "`"
		}
		if !strings.Contains(text, needle) {
			t.Errorf("constant %s = %q is not documented in %s", name, value, docPath)
		}
	}
}

// dottedName matches the backticked dotted telemetry names the docs use
// (`discovery.paths_explored`, `relational.left_join`, ...). Placeholder
// forms like `discovery.pruned.<reason>` contain '<' and do not match.
var dottedName = regexp.MustCompile("`((?:discovery|relational|fselect|ml)\\.[a-z0-9_.]+)`")

// TestDocsMatchVocabulary asserts the docs -> code direction: every dotted
// telemetry name referenced in docs/TELEMETRY.md resolves to a declared
// constant (directly, or as a pruned-prefix + reason composition).
func TestDocsMatchVocabulary(t *testing.T) {
	doc, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatal(err)
	}
	consts := telemetryConsts(t)
	values := map[string]bool{}
	reasons := map[string]bool{}
	for name, v := range consts {
		values[v] = true
		if strings.HasPrefix(name, "Prune") {
			reasons[v] = true
		}
	}
	for _, m := range dottedName.FindAllStringSubmatch(string(doc), -1) {
		name := m[1]
		if values[name] {
			continue
		}
		if strings.HasPrefix(name, CtrPrunedPrefix) && reasons[strings.TrimPrefix(name, CtrPrunedPrefix)] {
			continue
		}
		t.Errorf("docs reference %q, which is not a telemetry constant (stale docs or missing constant?)", name)
	}
}

// TestPruneReasonsTracked asserts every Prune* reason round-trips through
// PrunedCounter and back through Snapshot.Pruning, so no reason can be
// silently dropped from the breakdown.
func TestPruneReasonsTracked(t *testing.T) {
	c := New()
	var reasons []string
	for name, v := range telemetryConsts(t) {
		if strings.HasPrefix(name, "Prune") {
			reasons = append(reasons, v)
			c.Meter().Inc(PrunedCounter(v))
		}
	}
	got := c.Snapshot().Pruning()
	for _, r := range reasons {
		if got[r] != 1 {
			t.Errorf("reason %q lost in Pruning(): %v", r, got)
		}
	}
	if len(got) != len(reasons) {
		t.Errorf("Pruning() has %d entries, want %d", len(got), len(reasons))
	}
}
