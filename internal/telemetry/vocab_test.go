package telemetry

// Vocabulary-sync test: the span/metric/prune-reason constants declared in
// telemetry.go and the tables in docs/TELEMETRY.md must agree, in both
// directions, so the docs never drift from the code. The constants are
// read from the AST (not from a hand-maintained list) so adding a constant
// without documenting it fails here.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// docPath is the vocabulary reference the constants must stay in sync with.
const docPath = "../../docs/TELEMETRY.md"

// vocabPrefixes are the constant-name prefixes that make up the public
// telemetry vocabulary.
var vocabPrefixes = []string{"Span", "Ctr", "Gauge", "Hist", "Prune", "Event"}

// telemetryConsts extracts every vocabulary constant (name -> string
// value) from telemetry.go's AST.
func telemetryConsts(t *testing.T) map[string]string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "telemetry.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				matched := false
				for _, p := range vocabPrefixes {
					if strings.HasPrefix(name.Name, p) {
						matched = true
						break
					}
				}
				if !matched || i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				v, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatalf("const %s: %v", name.Name, err)
				}
				out[name.Name] = v
			}
		}
	}
	if len(out) < 20 {
		t.Fatalf("suspiciously few vocabulary constants parsed: %d", len(out))
	}
	return out
}

// TestVocabularyDocumented asserts the code -> docs direction: every
// Span*/Ctr*/Gauge*/Hist* name and every Prune* reason declared in
// telemetry.go appears in docs/TELEMETRY.md.
func TestVocabularyDocumented(t *testing.T) {
	doc, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)
	for name, value := range telemetryConsts(t) {
		needle := value
		if strings.HasPrefix(name, "Prune") || strings.HasPrefix(name, "Event") {
			// Prune reasons and event types are documented as bare
			// backticked words.
			needle = "`" + value + "`"
		}
		if !strings.Contains(text, needle) {
			t.Errorf("constant %s = %q is not documented in %s", name, value, docPath)
		}
	}
}

// dottedName matches the backticked dotted telemetry names the docs use
// (`discovery.paths_explored`, `relational.left_join`, ...). Placeholder
// forms like `discovery.pruned.<reason>` or `serve.http_seconds.<route>`
// contain '<' and do not match; the prefix constants they are composed
// from are covered by TestVocabularyDocumented instead.
var dottedName = regexp.MustCompile("`((?:discovery|relational|fselect|ml|serve|lake|cluster)\\.[a-z0-9_.]+)`")

// TestDocsMatchVocabulary asserts the docs -> code direction: every dotted
// telemetry name referenced in docs/TELEMETRY.md resolves to a declared
// constant — directly, or as a declared trailing-dot prefix constant
// (discovery.pruned., serve.http_requests., lake.tables., ...) plus a
// suffix; pruned compositions additionally require a declared reason.
func TestDocsMatchVocabulary(t *testing.T) {
	doc, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatal(err)
	}
	consts := telemetryConsts(t)
	values := map[string]bool{}
	reasons := map[string]bool{}
	var prefixes []string
	for name, v := range consts {
		values[v] = true
		if strings.HasPrefix(name, "Prune") {
			reasons[v] = true
		}
		if strings.HasSuffix(v, ".") {
			prefixes = append(prefixes, v)
		}
	}
	composed := func(name string) bool {
		for _, p := range prefixes {
			if !strings.HasPrefix(name, p) || len(name) == len(p) {
				continue
			}
			if p == CtrPrunedPrefix {
				return reasons[strings.TrimPrefix(name, p)]
			}
			return true
		}
		return false
	}
	for _, m := range dottedName.FindAllStringSubmatch(string(doc), -1) {
		name := m[1]
		if values[name] || composed(name) {
			continue
		}
		t.Errorf("docs reference %q, which is not a telemetry constant (stale docs or missing constant?)", name)
	}
}

// bucketLine is the literal histogram bucket-bounds declaration in
// docs/TELEMETRY.md, e.g. "bounds: `1e-05, 2.5e-05, ..., 10` seconds".
var bucketLine = regexp.MustCompile("bounds: `([^`]+)` seconds")

// TestHistogramBucketsDocumented asserts the documented histogram bucket
// bounds equal DefaultBuckets exactly, in both directions: the doc must
// declare the literal list once, and every bound must round-trip.
func TestHistogramBucketsDocumented(t *testing.T) {
	doc, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatal(err)
	}
	m := bucketLine.FindStringSubmatch(string(doc))
	if m == nil {
		t.Fatalf("%s does not declare the histogram bucket bounds (want a line with \"bounds: `...` seconds\")", docPath)
	}
	parts := strings.Split(m[1], ",")
	if len(parts) != len(DefaultBuckets) {
		t.Fatalf("docs list %d bucket bounds, code has %d", len(parts), len(DefaultBuckets))
	}
	for i, p := range parts {
		got, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			t.Fatalf("documented bound %q: %v", p, err)
		}
		if got != DefaultBuckets[i] {
			t.Errorf("documented bound %d = %g, code has %g", i, got, DefaultBuckets[i])
		}
	}
}

// TestPruneReasonsTracked asserts every Prune* reason round-trips through
// PrunedCounter and back through Snapshot.Pruning, so no reason can be
// silently dropped from the breakdown.
func TestPruneReasonsTracked(t *testing.T) {
	c := New()
	var reasons []string
	for name, v := range telemetryConsts(t) {
		if strings.HasPrefix(name, "Prune") {
			reasons = append(reasons, v)
			c.Meter().Inc(PrunedCounter(v))
		}
	}
	got := c.Snapshot().Pruning()
	for _, r := range reasons {
		if got[r] != 1 {
			t.Errorf("reason %q lost in Pruning(): %v", r, got)
		}
	}
	if len(got) != len(reasons) {
		t.Errorf("Pruning() has %d entries, want %d", len(got), len(reasons))
	}
}
