package telemetry

// Merge folds other into s, producing the cluster-wide rollup the
// coordinator's status surface reports: counters and gauges are summed
// per name, histograms are bucket-merged (element-wise bucket counts,
// summed count/sum, min of mins, max of maxes). Every histogram in the
// codebase shares DefaultBuckets, so merging assumes identical bounds;
// if the bounds ever differ only count/sum/min/max are folded and the
// receiver's buckets are kept. Spans are not merged — trace assembly is
// a separate, per-trace path (BuildSpanTree over fanned-out
// SpanRecords). Nil receiver or argument is a no-op.
func (s *Snapshot) Merge(other *Snapshot) {
	if s == nil || other == nil {
		return
	}
	if s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	if s.Gauges == nil {
		s.Gauges = map[string]float64{}
	}
	for name, v := range other.Gauges {
		s.Gauges[name] += v
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistogramSnapshot{}
	}
	for name, h := range other.Histograms {
		s.Histograms[name] = mergeHistograms(s.Histograms[name], h)
	}
}

// mergeHistograms folds b into a. An empty a (zero Count and no bounds)
// yields a copy of b, so first-seen names merge cleanly.
func mergeHistograms(a, b HistogramSnapshot) HistogramSnapshot {
	if a.Count == 0 && len(a.Bounds) == 0 {
		return copyHistogram(b)
	}
	if b.Count == 0 && len(b.Bounds) == 0 {
		return a
	}
	out := copyHistogram(a)
	if boundsEqual(out.Bounds, b.Bounds) {
		for i := range b.Counts {
			if i < len(out.Counts) {
				out.Counts[i] += b.Counts[i]
			}
		}
	}
	if b.Count > 0 {
		if out.Count == 0 || b.Min < out.Min {
			out.Min = b.Min
		}
		if b.Max > out.Max {
			out.Max = b.Max
		}
	}
	out.Count += b.Count
	out.Sum += b.Sum
	if out.Count > 0 {
		out.Mean = out.Sum / float64(out.Count)
	}
	return out
}

func copyHistogram(h HistogramSnapshot) HistogramSnapshot {
	out := h
	out.Bounds = append([]float64(nil), h.Bounds...)
	out.Counts = append([]int64(nil), h.Counts...)
	return out
}

func boundsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
