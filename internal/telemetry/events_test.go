package telemetry

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// TestEventLogRing pins the bounded-ring semantics: past capacity the
// oldest entries are evicted, sequence numbers keep counting, and
// Events returns the retained window oldest first.
func TestEventLogRing(t *testing.T) {
	l := NewEventLog(3, nil)
	for _, typ := range []string{"a", "b", "c", "d", "e"} {
		l.Record(Event{Type: typ})
	}
	if l.Len() != 3 {
		t.Fatalf("Len() = %d, want capacity 3", l.Len())
	}
	if l.Total() != 5 {
		t.Fatalf("Total() = %d, want 5", l.Total())
	}
	events := l.Events()
	if len(events) != 3 {
		t.Fatalf("Events() returned %d entries, want 3", len(events))
	}
	for i, want := range []string{"c", "d", "e"} {
		if events[i].Type != want {
			t.Errorf("events[%d].Type = %q, want %q", i, events[i].Type, want)
		}
		if events[i].Seq != int64(i+3) {
			t.Errorf("events[%d].Seq = %d, want %d", i, events[i].Seq, i+3)
		}
	}
}

// TestEventLogClockAndMirror covers the injectable clock and the slog
// mirroring: recorded events carry the injected timestamp and appear in
// the logger's output with their fields.
func TestEventLogClockAndMirror(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	l := NewEventLog(0, logger)
	fixed := time.Unix(1_700_000_000, 0)
	l.SetClock(func() time.Time { return fixed })

	l.Record(Event{Type: EventWorkerDead, Node: "worker-a", Detail: "silent for 11s"})
	events := l.Events()
	if len(events) != 1 {
		t.Fatalf("want 1 event, got %d", len(events))
	}
	if events[0].TimeUnixMS != fixed.UnixMilli() {
		t.Errorf("TimeUnixMS = %d, want injected clock %d", events[0].TimeUnixMS, fixed.UnixMilli())
	}
	out := buf.String()
	for _, want := range []string{"cluster event", "type=" + EventWorkerDead, "node=worker-a"} {
		if !strings.Contains(out, want) {
			t.Errorf("slog mirror missing %q in %q", want, out)
		}
	}

	// A pre-stamped event keeps its timestamp.
	l.Record(Event{Type: EventWorkerJoined, TimeUnixMS: 42})
	if got := l.Events()[1].TimeUnixMS; got != 42 {
		t.Errorf("pre-stamped TimeUnixMS = %d, want 42", got)
	}
}

// TestEventLogNilSafe pins the nil-receiver contract shared with the
// rest of the telemetry layer.
func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	l.Record(Event{Type: "x"})
	l.SetClock(time.Now)
	if l.Events() != nil || l.Len() != 0 || l.Total() != 0 {
		t.Error("nil EventLog must report empty")
	}
}
