package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed step on every reading, making every
// span timestamp (and therefore the JSON snapshot) deterministic.
func fakeClock(step time.Duration) func() time.Time {
	t := time.Unix(0, 0).UTC()
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTracerWithClock(fakeClock(time.Millisecond))
	ctx, root := tr.StartSpan(context.Background(), "root")
	cctx, child := tr.StartSpan(ctx, "child")
	_, grand := tr.StartSpan(cctx, "grand")
	grand.End()
	child.End()
	_, sibling := tr.StartSpan(ctx, "sibling")
	sibling.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("want 4 spans, got %d", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["root"].Parent != 0 || byName["root"].ParentSpanID != "" {
		t.Fatalf("root must have no parent: %+v", byName["root"])
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Fatalf("child must nest under root: %+v", byName["child"])
	}
	if byName["grand"].Parent != byName["child"].ID {
		t.Fatalf("grand must nest under child: %+v", byName["grand"])
	}
	if byName["grand"].ParentSpanID != byName["child"].SpanID {
		t.Fatalf("grand's parent_span_id must be child's span_id: %+v", byName["grand"])
	}
	if byName["sibling"].Parent != byName["root"].ID {
		t.Fatalf("sibling started from root's ctx must nest under root: %+v", byName["sibling"])
	}
	for _, s := range spans {
		if s.DurUS < 0 {
			t.Fatalf("span %s left open", s.Name)
		}
		if s.TraceID != byName["root"].TraceID {
			t.Fatalf("span %s left the trace: %+v", s.Name, s)
		}
	}
}

func TestSpanOutOfOrderEnd(t *testing.T) {
	// Parentage is fixed at StartSpan from the context, so ending spans
	// out of creation order cannot corrupt later attribution (the old
	// open-stack tracer needed this property explicitly).
	tr := NewTracerWithClock(fakeClock(time.Millisecond))
	ctx, a := tr.StartSpan(context.Background(), "a")
	bctx, b := tr.StartSpan(ctx, "b")
	a.End() // out of order: a ends while its child b is still open
	_, c := tr.StartSpan(bctx, "c")
	c.End()
	b.End()
	byName := map[string]SpanRecord{}
	for _, s := range tr.Spans() {
		byName[s.Name] = s
	}
	if byName["c"].Parent != byName["b"].ID {
		t.Fatalf("c must nest under b: %+v", byName["c"])
	}
	if d := byName["a"].Duration(); d <= 0 {
		t.Fatalf("a must be closed: %v", d)
	}
}

func TestSpanDoubleEndAndAttrs(t *testing.T) {
	tr := NewTracerWithClock(fakeClock(time.Millisecond))
	s := tr.Start("x")
	s.SetStr("edge", "a.k -> b.k")
	s.SetInt("matched", 42)
	s.SetFloat("quality", 0.9)
	first := s.End()
	if first <= 0 {
		t.Fatal("End must return the duration")
	}
	if again := s.End(); again != 0 {
		t.Fatalf("second End must be a no-op, got %v", again)
	}
	rec := tr.Spans()[0]
	if len(rec.Attrs) != 3 || rec.Attrs[0].Key != "edge" || rec.Attrs[1].Value != int64(42) {
		t.Fatalf("attrs wrong: %+v", rec.Attrs)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Collector
	tr := c.Trace()
	mx := c.Meter()
	sp := tr.Start("ignored")
	sp.SetStr("k", "v")
	sp.SetInt("k", 1)
	sp.SetFloat("k", 1.5)
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span End = %v", d)
	}
	mx.Inc("x")
	mx.Add("x", 5)
	mx.SetGauge("g", 1)
	mx.Observe("h", 0.5)
	if mx.Counter("x") != 0 || mx.Gauge("g") != 0 || mx.HistogramCount("h") != 0 {
		t.Fatal("nil metrics must read zero")
	}
	if tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer must be empty")
	}
	snap := c.Snapshot()
	if snap == nil || len(snap.Spans) != 0 {
		t.Fatal("nil collector snapshot must be empty but valid")
	}
	if err := c.Flush(NopSink{}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 10, 99, 1000} {
		h.Observe(v)
	}
	// Upper-inclusive: <=1 -> {0.5, 1}; <=10 -> {2, 10}; <=100 -> {99}; +Inf -> {1000}.
	want := []int64{2, 2, 1, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Count != 6 || h.Min != 0.5 || h.Max != 1000 {
		t.Fatalf("count/min/max wrong: %+v", h)
	}
	if got := h.Mean(); math.Abs(got-1112.5/6) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	empty := NewHistogram(nil)
	if empty.Mean() != 0 {
		t.Fatal("empty mean must be 0")
	}
	if len(empty.Bounds) != len(DefaultBuckets) {
		t.Fatal("nil bounds must use DefaultBuckets")
	}
}

func TestMetricsRegistry(t *testing.T) {
	m := NewMetrics()
	m.Inc("c")
	m.Add("c", 4)
	m.SetGauge("g", 2.5)
	m.SetGauge("g", 3.5)
	m.Observe("h", 0.001)
	m.Observe("h", 0.002)
	if m.Counter("c") != 5 {
		t.Fatalf("counter = %d", m.Counter("c"))
	}
	if m.Gauge("g") != 3.5 {
		t.Fatalf("gauge = %v", m.Gauge("g"))
	}
	if m.HistogramCount("h") != 2 {
		t.Fatalf("histogram count = %d", m.HistogramCount("h"))
	}
}

func TestSnapshotPruningView(t *testing.T) {
	c := New()
	c.Meter().Inc(PrunedCounter(PruneJoinFailed))
	c.Meter().Add(PrunedCounter(PruneQualityBelowTau), 3)
	c.Meter().Inc("unrelated.counter")
	p := c.Snapshot().Pruning()
	if len(p) != 2 || p[PruneJoinFailed] != 1 || p[PruneQualityBelowTau] != 3 {
		t.Fatalf("pruning view wrong: %v", p)
	}
}

// TestGoldenSnapshotJSON locks the JSON layout of both output files
// under a fixed fake clock: any accidental format change shows up as a
// diff here rather than breaking downstream consumers.
func TestGoldenSnapshotJSON(t *testing.T) {
	c := NewWithClock(fakeClock(time.Millisecond))
	ctx, run := StartSpan(context.Background(), c, SpanRun)
	_, join := StartSpan(ctx, c, SpanJoinEval)
	join.SetStr("edge", "base.id -> right.k")
	join.SetInt("matched_rows", 7)
	join.End()
	run.End()
	c.Meter().Inc(CtrPathsExplored)
	c.Meter().Inc(PrunedCounter(PruneQualityBelowTau))
	c.Meter().SetGauge(GaugeSelectionSeconds, 0.25)
	snap := c.Snapshot()

	trace, err := snap.TraceJSON()
	if err != nil {
		t.Fatal(err)
	}
	wantTrace := `{
  "spans": [
    {
      "id": 1,
      "name": "discovery.run",
      "trace_id": "00000000000000000000000000000001",
      "span_id": "0000000000000001",
      "start_us": 1000,
      "dur_us": 3000
    },
    {
      "id": 2,
      "parent": 1,
      "name": "discovery.evaluate_join",
      "trace_id": "00000000000000000000000000000001",
      "span_id": "0000000000000002",
      "parent_span_id": "0000000000000001",
      "start_us": 2000,
      "dur_us": 1000,
      "attrs": [
        {
          "k": "edge",
          "v": "base.id -\u003e right.k"
        },
        {
          "k": "matched_rows",
          "v": 7
        }
      ]
    }
  ]
}`
	if string(trace) != wantTrace {
		t.Fatalf("trace JSON drifted:\n--- got ---\n%s\n--- want ---\n%s", trace, wantTrace)
	}

	metrics, err := snap.MetricsJSON()
	if err != nil {
		t.Fatal(err)
	}
	wantMetrics := `{
  "counters": {
    "discovery.paths_explored": 1,
    "discovery.pruned.quality_below_tau": 1
  },
  "gauges": {
    "discovery.selection_seconds": 0.25
  },
  "histograms": {},
  "pruning": {
    "quality_below_tau": 1
  },
  "phases": [
    {
      "name": "discovery.run",
      "count": 1,
      "total_ns": 3000000,
      "max_ns": 3000000
    },
    {
      "name": "discovery.evaluate_join",
      "count": 1,
      "total_ns": 1000000,
      "max_ns": 1000000
    }
  ]
}`
	if string(metrics) != wantMetrics {
		t.Fatalf("metrics JSON drifted:\n--- got ---\n%s\n--- want ---\n%s", metrics, wantMetrics)
	}

	// Both documents must stay valid JSON under a strict decoder.
	for _, doc := range [][]byte{trace, metrics} {
		var any map[string]any
		if err := json.Unmarshal(doc, &any); err != nil {
			t.Fatalf("invalid JSON: %v\n%s", err, doc)
		}
	}
}

func TestReportSink(t *testing.T) {
	c := NewWithClock(fakeClock(time.Millisecond))
	s := c.Trace().Start(SpanLeftJoin)
	s.End()
	c.Meter().Inc(PrunedCounter(PruneSimilarity))
	c.Meter().SetGauge(GaugeSelectionSeconds, 1.5)
	c.Meter().Observe(HistJoinSeconds, 0.003)

	var buf bytes.Buffer
	if err := c.Flush(ReportSink{W: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"telemetry report",
		"relational.left_join",
		"pruning breakdown",
		"similarity",
		"discovery.selection_seconds",
		"relational.left_join_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestJSONSinkRoundTrip(t *testing.T) {
	c := New()
	c.Meter().Inc("x")
	var buf bytes.Buffer
	if err := c.Flush(JSONSink{W: &buf}); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["x"] != 1 {
		t.Fatalf("round trip lost counter: %+v", snap)
	}
}

// BenchmarkDisabledSpan measures the disabled-path cost every pipeline
// call site pays when telemetry is off: it must stay in the
// nanoseconds-per-op range so discovery overhead is <2%.
func BenchmarkDisabledSpan(b *testing.B) {
	var c *Collector
	tr := c.Trace()
	mx := c.Meter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(SpanJoinEval)
		sp.SetInt("matched", i)
		mx.Observe(HistJoinSeconds, sp.End().Seconds())
		mx.Inc(CtrPathsExplored)
	}
}

// BenchmarkEnabledSpan is the enabled-path counterpart, for overhead
// comparisons in perf PRs.
func BenchmarkEnabledSpan(b *testing.B) {
	c := New()
	tr := c.Trace()
	mx := c.Meter()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Start(SpanJoinEval)
		sp.SetInt("matched", i)
		mx.Observe(HistJoinSeconds, sp.End().Seconds())
		mx.Inc(CtrPathsExplored)
	}
}

func TestMetricsConcurrentCounters(t *testing.T) {
	// Counters are the one metric the parallel join loop hammers from many
	// goroutines; they must be atomic and race-clean (run with -race).
	c := New()
	m := c.Meter()
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				m.Inc("conc.hits")
				m.Add("conc.bytes", 3)
				m.SetGauge("conc.gauge", float64(i))
				m.Observe("conc.hist", float64(i))
			}
		}()
	}
	wg.Wait()
	if got := m.Counter("conc.hits"); got != workers*each {
		t.Fatalf("hits = %d, want %d", got, workers*each)
	}
	if got := m.Counter("conc.bytes"); got != 3*workers*each {
		t.Fatalf("bytes = %d, want %d", got, 3*workers*each)
	}
	snap := c.Snapshot()
	if snap.Counters["conc.hits"] != workers*each {
		t.Fatalf("snapshot hits = %d", snap.Counters["conc.hits"])
	}
}
