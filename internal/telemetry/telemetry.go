// Package telemetry is the observability layer of the AutoFeat
// reproduction: a zero-dependency, allocation-light span tracer and
// metrics registry threaded through the online pipeline (BFS traversal,
// join materialisation, relevance/redundancy analysis, Algorithm 2
// ranking).
//
// Design rules:
//
//   - Disabled by default. Every entry point is nil-receiver safe, so
//     call sites write `tr.Start(...)` / `mx.Inc(...)` unconditionally
//     and pay only a nil check when telemetry is off (<2% discovery
//     overhead, guarded by BenchmarkMicroDiscoveryTelemetry).
//   - One Collector bundles a Tracer and a Metrics registry; Config
//     carries a *Collector so a single field enables everything.
//   - Three sinks: NopSink (default behaviour — nothing collected),
//     JSONSink (machine-readable snapshot) and ReportSink (human-readable
//     run report).
//
// The span and metric names below are shared across packages so the
// sinks, docs and tests agree on the vocabulary.
package telemetry

import "time"

// Span names recorded by the online pipeline, one constant per phase of
// Algorithm 1/2 (see DESIGN.md "Observability" for the line mapping).
const (
	// SpanRun covers one whole Discovery.Run (Algorithm 1 end to end).
	SpanRun = "discovery.run"
	// SpanSample covers the stratified base-table sample (Section VI).
	SpanSample = "discovery.sample"
	// SpanDepth covers one BFS level (Algorithm 1 outer loop).
	SpanDepth = "discovery.depth"
	// SpanEnumerate covers candidate-edge enumeration between one
	// frontier table and one neighbour, including similarity pruning.
	SpanEnumerate = "discovery.enumerate_edges"
	// SpanJoinEval covers one evaluated join: materialisation, quality
	// check and streaming feature selection (Algorithm 1 inner loop).
	SpanJoinEval = "discovery.evaluate_join"
	// SpanRank covers the final Algorithm 2 ordering of surviving paths.
	SpanRank = "discovery.rank"
	// SpanMaterialize covers full-size path materialisation during
	// EvaluateRanking (after discovery, before training).
	SpanMaterialize = "discovery.materialize"
	// SpanTrainEval covers one model training + evaluation on a top-k path.
	SpanTrainEval = "ml.train_eval"
	// SpanLeftJoin covers one relational.LeftJoin call.
	SpanLeftJoin = "relational.left_join"
	// SpanRelevance covers the relevance half of fselect.Pipeline.Run.
	SpanRelevance = "fselect.relevance"
	// SpanRedundancy covers the redundancy half of fselect.Pipeline.Run.
	SpanRedundancy = "fselect.redundancy"
	// SpanFold covers the per-depth fold phase: merging evaluated joins
	// back into the frontier in enumeration order.
	SpanFold = "discovery.fold"
	// SpanHTTP covers the HTTP handling of one traced service request
	// (requests carrying a traceparent header, and every mutating
	// request).
	SpanHTTP = "serve.http"
	// SpanJob covers one discovery job end to end: from submission
	// through queueing, execution and terminal state.
	SpanJob = "serve.job"
	// SpanQueueWait covers the time a submitted job waits for a
	// scheduler slot.
	SpanQueueWait = "serve.queue_wait"
	// SpanClusterDispatch covers one coordinator dispatch round-trip:
	// it parents the owning worker's serve.http/serve.job spans under
	// the coordinator relay span so a dispatched job reads as a single
	// trace end to end.
	SpanClusterDispatch = "cluster.dispatch"
)

// Metric names emitted by the online pipeline.
const (
	// CtrPathsExplored counts every evaluated join across the run.
	CtrPathsExplored = "discovery.paths_explored"
	// CtrPathsKept counts the join paths that survived into the ranking.
	CtrPathsKept = "discovery.paths_kept"
	// CtrJoins counts relational.LeftJoin invocations.
	CtrJoins = "relational.joins"
	// CtrKeyIndexHits / CtrKeyIndexMisses count key-index cache lookups in
	// relational.LeftJoin when a KeyIndexCache is attached.
	CtrKeyIndexHits   = "relational.key_index_cache_hits"
	CtrKeyIndexMisses = "relational.key_index_cache_misses"
	// CtrJoinPanics counts join evaluations that panicked and were
	// recovered into a join_failed prune (graceful degradation: one
	// corrupt table prunes one path instead of killing the process).
	CtrJoinPanics = "discovery.join_panics"
	// CtrPartialRuns counts discovery runs that returned a partial
	// ranking (cancellation, deadline or budget exhaustion).
	CtrPartialRuns = "discovery.partial_runs"
	// GaugeSelectionSeconds records the wall-clock feature-discovery time
	// of the last run.
	GaugeSelectionSeconds = "discovery.selection_seconds"
	// GaugeWorkers records the resolved worker-pool size of the last run.
	GaugeWorkers = "discovery.workers"
	// HistJoinSeconds observes per-join latency; HistRelevanceSeconds and
	// HistRedundancySeconds observe the two halves of feature selection.
	HistJoinSeconds       = "relational.left_join_seconds"
	HistRelevanceSeconds  = "fselect.relevance_seconds"
	HistRedundancySeconds = "fselect.redundancy_seconds"
	// HistQueueWaitSeconds observes how long each admitted job waited
	// for a scheduler slot; HistTimeToResultSeconds observes
	// submission-to-terminal-state latency per job.
	HistQueueWaitSeconds    = "serve.queue_wait_seconds"
	HistTimeToResultSeconds = "serve.time_to_result_seconds"
)

// Per-endpoint service metrics ("serve.http_*.<route>") and per-lake
// gauges ("lake.*.<lake>"). Like CtrPrunedPrefix these are name
// prefixes: the route or lake ID is appended by internal/serve and
// internal/obsrv, keeping the registry label-free.
const (
	// CtrHTTPRequestsPrefix counts requests per route
	// ("serve.http_requests.<route>"); CtrHTTPErrorsPrefix counts the
	// subset answered with a 4xx/5xx status.
	CtrHTTPRequestsPrefix = "serve.http_requests."
	CtrHTTPErrorsPrefix   = "serve.http_errors."
	// HistHTTPSecondsPrefix observes request latency per route
	// ("serve.http_seconds.<route>").
	HistHTTPSecondsPrefix = "serve.http_seconds."
	// GaugeLakeTablesPrefix records the resident table count per lake
	// ("lake.tables.<lake>").
	GaugeLakeTablesPrefix = "lake.tables."
	// GaugeLakeGraphMemoPrefix records the DRG memo entry count per lake
	// ("lake.drg_memo_entries.<lake>").
	GaugeLakeGraphMemoPrefix = "lake.drg_memo_entries."
	// GaugeLakeKeyCacheHitsPrefix, GaugeLakeKeyCacheMissesPrefix and
	// GaugeLakeKeyCacheSizePrefix record the shared key-index cache's
	// cumulative hits, misses and resident index count per lake
	// ("lake.key_cache_hits.<lake>", "lake.key_cache_misses.<lake>",
	// "lake.key_cache_size.<lake>").
	GaugeLakeKeyCacheHitsPrefix   = "lake.key_cache_hits."
	GaugeLakeKeyCacheMissesPrefix = "lake.key_cache_misses."
	GaugeLakeKeyCacheSizePrefix   = "lake.key_cache_size."
	// GaugeLakeIndexColumnsPrefix records how many join-candidate
	// columns the lake's LSH index currently holds per lake
	// ("lake.index_columns.<lake>"; 0 until the index is lazily built).
	GaugeLakeIndexColumnsPrefix = "lake.index_columns."
	// GaugeLakeIndexBucketsPrefix records the occupied LSH bucket count
	// (slot bands + value anchors + name buckets) per lake
	// ("lake.index_buckets.<lake>").
	GaugeLakeIndexBucketsPrefix = "lake.index_buckets."
	// CtrLakeMutationsPrefix counts applied table mutations per kind
	// ("lake.index_mutations.register", "lake.index_mutations.replace",
	// "lake.index_mutations.drop").
	CtrLakeMutationsPrefix = "lake.index_mutations."
	// CtrLakeMutationErrorsPrefix counts rejected table mutations per
	// kind ("lake.index_mutation_errors.<kind>").
	CtrLakeMutationErrorsPrefix = "lake.index_mutation_errors."
)

// Cluster vocabulary: the coordinator/worker deployment mode of the
// discovery service (internal/serve cluster files). Counters and gauges
// are owned by the coordinator except cluster.heartbeats_sent, which the
// worker-side agent increments.
const (
	// GaugeClusterWorkersUp records how many workers are currently alive
	// (heartbeat within the timeout window) in the coordinator's
	// membership table.
	GaugeClusterWorkersUp = "cluster.workers_up"
	// GaugeClusterStoreJobs records how many jobs the replicated job
	// store currently holds across all states.
	GaugeClusterStoreJobs = "cluster.store_jobs"
	// GaugeClusterLakesPrefix records how many lakes are placed on each
	// worker ("cluster.lakes_per_worker.<worker>").
	GaugeClusterLakesPrefix = "cluster.lakes_per_worker."
	// CtrClusterHeartbeats counts heartbeats the coordinator accepted.
	CtrClusterHeartbeats = "cluster.heartbeats"
	// CtrClusterHeartbeatsSent counts heartbeats the worker-side agent
	// delivered to its coordinator.
	CtrClusterHeartbeatsSent = "cluster.heartbeats_sent"
	// CtrClusterDispatches counts discovery jobs the coordinator handed
	// to a worker (first attempts and retries alike).
	CtrClusterDispatches = "cluster.dispatches"
	// CtrClusterDispatchRetries counts dispatch attempts beyond a job's
	// first (worker busy, worker unreachable, or rerouted after a death).
	CtrClusterDispatchRetries = "cluster.dispatch_retries"
	// CtrClusterReroutedJobs counts jobs moved to a new owner because the
	// worker holding them was declared dead.
	CtrClusterReroutedJobs = "cluster.rerouted_jobs"
	// CtrClusterProxied counts client requests the coordinator forwarded
	// to a worker (lake mutations, job status, manifests, cancels).
	CtrClusterProxied = "cluster.proxied_requests"
	// CtrClusterProxyErrors counts forwarded requests that failed at the
	// transport level (worker unreachable), answered with 502.
	CtrClusterProxyErrors = "cluster.proxy_errors"
	// CtrClusterQuotaRejected counts submissions rejected with 429
	// because the tenant exceeded its in-flight job quota.
	CtrClusterQuotaRejected = "cluster.quota_rejected"
	// HistClusterDispatchSeconds observes the latency of one dispatch
	// round-trip to a worker (POST /v1/discoveries on the worker).
	HistClusterDispatchSeconds = "cluster.dispatch_seconds"
	// CtrClusterStoreJobsEvicted counts terminal job documents dropped
	// from the replicated job store by the retention cap (FIFO, oldest
	// terminal docs first).
	CtrClusterStoreJobsEvicted = "cluster.store_jobs_evicted"
	// CtrClusterTelemetryPulls counts worker telemetry snapshots the
	// coordinator's sweep loop fetched for metrics federation;
	// CtrClusterTelemetryErrors counts pull attempts that failed
	// (worker unreachable or wrong proto).
	CtrClusterTelemetryPulls  = "cluster.telemetry_pulls"
	CtrClusterTelemetryErrors = "cluster.telemetry_errors"
)

// Cluster event types recorded in the coordinator's EventLog (served at
// GET /v1/cluster/events and mirrored to slog). Each value is the
// `type` field of one journal entry.
const (
	// EventWorkerJoined records a worker appearing in the membership
	// table for the first time.
	EventWorkerJoined = "worker_joined"
	// EventWorkerRejoined records a previously-dead worker resuming
	// heartbeats.
	EventWorkerRejoined = "worker_rejoined"
	// EventWorkerDead records a worker declared dead after missing its
	// heartbeat window.
	EventWorkerDead = "worker_dead"
	// EventJobRerouted records a job moved off a dead worker back to the
	// queue for re-placement.
	EventJobRerouted = "job_rerouted"
	// EventDispatchRetry records a dispatch attempt deferred for a later
	// sweep (worker busy, unreachable, or no owner placed yet).
	EventDispatchRetry = "dispatch_retry"
	// EventQuotaRejected records a submission rejected with 429 because
	// the tenant was at its in-flight quota.
	EventQuotaRejected = "quota_rejected"
	// EventReplicationPush records one job-store snapshot replication
	// round to the alive workers.
	EventReplicationPush = "replication_push"
	// EventJobsEvicted records terminal job documents evicted by the
	// store's retention cap.
	EventJobsEvicted = "jobs_evicted"
)

// CtrPrunedPrefix prefixes the per-reason pruning counters
// ("discovery.pruned.<reason>"); Snapshot.Pruning collects them into one
// breakdown object.
const CtrPrunedPrefix = "discovery.pruned."

// Pruning reasons. JoinFailed and QualityBelowTau discard evaluated
// joins (their counters sum to PathsExplored - len(Paths)); Similarity,
// BeamEvicted, MaxPathsCap, BudgetExhausted and Cancelled truncate the
// search space before or after evaluation and are tracked separately.
const (
	// PruneSimilarity counts parallel edges dropped by similarity-score
	// pruning before evaluation.
	PruneSimilarity = "similarity"
	// PruneJoinFailed counts evaluated joins that matched no rows, errored
	// or would have joined on the label column.
	PruneJoinFailed = "join_failed"
	// PruneQualityBelowTau counts evaluated joins whose completeness fell
	// below the τ threshold.
	PruneQualityBelowTau = "quality_below_tau"
	// PruneBeamEvicted counts frontier states dropped by beam search.
	PruneBeamEvicted = "beam_evicted"
	// PruneMaxPathsCap counts candidate edges skipped once the MaxPaths
	// safety valve fired.
	PruneMaxPathsCap = "max_paths_cap"
	// PruneBudgetExhausted counts candidate edges skipped because an
	// enforceable budget (MaxEvalJoins, MaxJoinedRows) ran out; the run
	// returns a partial ranking.
	PruneBudgetExhausted = "budget_exhausted"
	// PruneCancelled counts candidate edges abandoned when the run's
	// context was cancelled or its deadline expired; the run returns a
	// partial ranking.
	PruneCancelled = "cancelled"
)

// PrunedCounter returns the counter name for a pruning reason.
func PrunedCounter(reason string) string { return CtrPrunedPrefix + reason }

// Collector bundles a Tracer and a Metrics registry — the single handle
// the pipeline threads through Config, fselect.Pipeline and
// relational.Options. A nil *Collector disables collection everywhere.
type Collector struct {
	T *Tracer
	M *Metrics
}

// New returns a Collector with a live tracer and metrics registry.
func New() *Collector { return &Collector{T: NewTracer(), M: NewMetrics()} }

// NewWithClock returns a Collector whose tracer reads time from now —
// deterministic timestamps for golden tests.
func NewWithClock(now func() time.Time) *Collector {
	return &Collector{T: NewTracerWithClock(now), M: NewMetrics()}
}

// Trace returns the tracer, nil when the collector is nil (disabled).
func (c *Collector) Trace() *Tracer {
	if c == nil {
		return nil
	}
	return c.T
}

// Meter returns the metrics registry, nil when the collector is nil.
func (c *Collector) Meter() *Metrics {
	if c == nil {
		return nil
	}
	return c.M
}

// ObserveSpans registers span observers (trace store, flight recorder)
// on the collector's tracer; a nil collector or tracer ignores the
// call.
func (c *Collector) ObserveSpans(obs ...SpanObserver) {
	t := c.Trace()
	for _, o := range obs {
		t.AddObserver(o)
	}
}

// Snapshot captures the collector's current state. A nil collector
// yields an empty (but valid) snapshot.
func (c *Collector) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if c == nil {
		return s
	}
	if c.T != nil {
		s.Spans = c.T.Spans()
	}
	if c.M != nil {
		s.Counters, s.Gauges, s.Histograms = c.M.snapshot()
	}
	return s
}

// Flush writes the collector's snapshot to every sink, returning the
// first error.
func (c *Collector) Flush(sinks ...Sink) error {
	snap := c.Snapshot()
	for _, s := range sinks {
		if err := s.Flush(snap); err != nil {
			return err
		}
	}
	return nil
}
