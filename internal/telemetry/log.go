package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured logging support for the online pipeline. The pipeline
// packages (core, relational, fselect, ml) carry an optional
// *slog.Logger; a nil logger means logging is off — the default — and
// call sites either nil-check or normalise through OrNop. The CLIs build
// their logger with NewLogger from the -log-level / -log-format flags.

// nopHandler is a slog.Handler that drops every record. It exists so a
// normalised logger can be called unconditionally: Enabled returns false,
// so disabled loggers pay one interface call and no formatting.
type nopHandler struct{}

// Enabled implements slog.Handler; the nop handler accepts no level.
func (nopHandler) Enabled(context.Context, slog.Level) bool { return false }

// Handle implements slog.Handler by discarding the record.
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }

// WithAttrs implements slog.Handler.
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler { return h }

// WithGroup implements slog.Handler.
func (h nopHandler) WithGroup(string) slog.Handler { return h }

// nopLogger is shared: the nop handler is stateless.
var nopLogger = slog.New(nopHandler{})

// NopLogger returns a logger that discards everything — the normalised
// form of "logging off".
func NopLogger() *slog.Logger { return nopLogger }

// OrNop returns l unchanged when non-nil, the nop logger otherwise, so
// pipeline code can log unconditionally without nil checks.
func OrNop(l *slog.Logger) *slog.Logger {
	if l == nil {
		return nopLogger
	}
	return l
}

// ParseLogLevel maps a -log-level flag value to its slog.Level. The
// accepted names are "debug", "info", "warn" and "error"; "off" (and "")
// report ok=false, meaning logging stays disabled.
func ParseLogLevel(s string) (level slog.Level, ok bool, err error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "off", "none":
		return 0, false, nil
	case "debug":
		return slog.LevelDebug, true, nil
	case "info":
		return slog.LevelInfo, true, nil
	case "warn", "warning":
		return slog.LevelWarn, true, nil
	case "error":
		return slog.LevelError, true, nil
	default:
		return 0, false, fmt.Errorf("telemetry: unknown log level %q (use off|debug|info|warn|error)", s)
	}
}

// NewLogger builds a structured logger writing to w at the given level.
// format selects the slog handler: "json" for machine-readable lines,
// anything else (canonically "text") for logfmt-style key=value output.
func NewLogger(w io.Writer, level slog.Level, format string) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if strings.EqualFold(strings.TrimSpace(format), "json") {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}
