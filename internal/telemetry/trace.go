package telemetry

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are whatever the
// caller set (string, int64, float64) and marshal directly to JSON.
type Attr struct {
	Key   string `json:"k"`
	Value any    `json:"v"`
}

// SpanRecord is one finished (or still-open) span. Times are offsets
// from the tracer's epoch in microseconds, so a trace is self-contained
// and diffable under an injected clock.
type SpanRecord struct {
	// ID is 1-based in start order; Parent is the enclosing span's ID,
	// 0 for roots and for spans whose parent lives in another tracer
	// (a remote traceparent).
	ID     int    `json:"id"`
	Parent int    `json:"parent,omitempty"`
	Name   string `json:"name"`
	// TraceID and SpanID are the W3C-style hex identities of the span
	// (32 and 16 hex digits); ParentSpanID is the parent's span ID, set
	// even when the parent is remote. All three are omitted for spans
	// recorded through the legacy ID-only constructors in tests.
	TraceID      string `json:"trace_id,omitempty"`
	SpanID       string `json:"span_id,omitempty"`
	ParentSpanID string `json:"parent_span_id,omitempty"`
	// StartUS is the start offset from the trace epoch; DurUS is the
	// span duration (-1 while the span is still open).
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Duration returns the span's duration (0 while open).
func (r SpanRecord) Duration() time.Duration {
	if r.DurUS < 0 {
		return 0
	}
	return time.Duration(r.DurUS) * time.Microsecond
}

// TraceID is a 128-bit W3C trace identity; the zero value is invalid.
type TraceID [16]byte

// IsValid reports whether the trace ID is non-zero.
func (id TraceID) IsValid() bool { return id != TraceID{} }

// String renders the trace ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// SpanID is a 64-bit W3C span identity; the zero value is invalid.
type SpanID [8]byte

// IsValid reports whether the span ID is non-zero.
func (id SpanID) IsValid() bool { return id != SpanID{} }

// String renders the span ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// SpanContext is the propagated identity of a span: which trace it
// belongs to and which span it is. It is what crosses process
// boundaries via the traceparent header and what links child spans to
// parents across goroutines.
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// IsValid reports whether both halves of the context are non-zero.
func (sc SpanContext) IsValid() bool { return sc.Trace.IsValid() && sc.Span.IsValid() }

// Traceparent renders the context as a W3C traceparent header value
// (version 00, sampled flag set).
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.Trace.String() + "-" + sc.Span.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent header value
// ("00-<32 hex>-<16 hex>-<2 hex>"). It accepts any version except the
// reserved "ff" and rejects all-zero trace or span IDs, per the spec.
func ParseTraceparent(s string) (SpanContext, bool) {
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return SpanContext{}, false
	}
	var version [1]byte
	if _, err := hex.Decode(version[:], []byte(s[0:2])); err != nil || version[0] == 0xff {
		return SpanContext{}, false
	}
	var sc SpanContext
	if _, err := hex.Decode(sc.Trace[:], []byte(s[3:35])); err != nil {
		return SpanContext{}, false
	}
	if _, err := hex.Decode(sc.Span[:], []byte(s[36:52])); err != nil {
		return SpanContext{}, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return SpanContext{}, false
	}
	if !sc.IsValid() {
		return SpanContext{}, false
	}
	return sc, true
}

// spanKey is the private context key carrying the current span.
type spanKey struct{}

// spanRef is the context payload: the propagated identity plus, for
// local spans, the numeric record ID and owning tracer so children in
// the same tracer can link by record ID too.
type spanRef struct {
	sc SpanContext
	id int     // numeric record ID in t; 0 for remote parents
	t  *Tracer // nil for remote parents
}

// ContextWithRemote returns a context carrying sc as the current span,
// e.g. a parent parsed from an inbound traceparent header. Spans
// started from the returned context join sc's trace.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if !sc.IsValid() {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, spanRef{sc: sc})
}

// SpanContextFrom returns the current span context carried by ctx, ok
// false when ctx carries none.
func SpanContextFrom(ctx context.Context) (SpanContext, bool) {
	if ctx == nil {
		return SpanContext{}, false
	}
	ref, ok := ctx.Value(spanKey{}).(spanRef)
	if !ok || !ref.sc.IsValid() {
		return SpanContext{}, false
	}
	return ref.sc, true
}

// SpanObserver receives a copy of every span as it ends. Observers run
// outside the tracer lock and must be safe for concurrent use; the
// trace store and flight recorder implement this.
type SpanObserver interface {
	ObserveSpan(SpanRecord)
}

// Tracer records spans with context-propagated parent attribution:
// StartSpan derives the parent from the caller's context, so concurrent
// jobs sharing one tracer each build a correctly-parented tree. A nil
// *Tracer is a valid disabled tracer: StartSpan returns the context
// unchanged and a no-op Span.
type Tracer struct {
	mu        sync.Mutex
	now       func() time.Time
	epoch     time.Time
	spans     []SpanRecord
	nextID    int
	maxSpans  int   // 0 = unlimited retained spans
	dropped   int64 // spans not retained because of maxSpans
	observers []SpanObserver

	// ID source: deterministic counters under an injected clock (golden
	// tests), a splitmix64 stream seeded from crypto/rand otherwise.
	deterministic bool
	seqTrace      uint64
	seqSpan       uint64
	rngState      uint64
}

// NewTracer returns a tracer on the wall clock with random trace/span
// IDs.
func NewTracer() *Tracer {
	t := &Tracer{now: time.Now, epoch: time.Now()}
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err == nil {
		t.rngState = binary.LittleEndian.Uint64(seed[:])
	} else {
		t.rngState = uint64(time.Now().UnixNano())
	}
	return t
}

// NewTracerWithClock returns a tracer reading time from now; inject a
// fake clock for deterministic traces in tests. Trace and span IDs are
// sequential counters so golden outputs stay byte-stable.
func NewTracerWithClock(now func() time.Time) *Tracer {
	return &Tracer{now: now, epoch: now(), deterministic: true}
}

// rand64 steps the tracer's splitmix64 stream; call under t.mu.
func (t *Tracer) rand64() uint64 {
	t.rngState += 0x9e3779b97f4a7c15
	z := t.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// newTraceID mints a fresh trace ID; call under t.mu.
func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	if t.deterministic {
		t.seqTrace++
		binary.BigEndian.PutUint64(id[8:], t.seqTrace)
		return id
	}
	for !id.IsValid() {
		binary.BigEndian.PutUint64(id[:8], t.rand64())
		binary.BigEndian.PutUint64(id[8:], t.rand64())
	}
	return id
}

// newSpanID mints a fresh span ID; call under t.mu.
func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	if t.deterministic {
		t.seqSpan++
		binary.BigEndian.PutUint64(id[:], t.seqSpan)
		return id
	}
	for !id.IsValid() {
		binary.BigEndian.PutUint64(id[:], t.rand64())
	}
	return id
}

// SetMaxSpans bounds the number of spans the tracer retains in its own
// buffer (0 = unlimited, the default). Spans started past the cap are
// still timed, annotated and delivered to observers — only the
// in-tracer retained copy is dropped (counted by Dropped), so a
// long-lived service with a trace store attached does not grow without
// bound.
func (t *Tracer) SetMaxSpans(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.maxSpans = n
}

// Dropped returns how many spans were not retained because of the
// SetMaxSpans cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// AddObserver registers o to receive a copy of every span when it ends.
func (t *Tracer) AddObserver(o SpanObserver) {
	if t == nil || o == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.observers = append(t.observers, o)
}

// Span is a lightweight handle on an open span. The zero Span (from a
// nil tracer) ignores every call.
type Span struct {
	t    *Tracer
	slot int         // index+1 into t.spans; 0 when the record overflowed
	rec  *SpanRecord // heap record for overflowed spans
	sc   SpanContext
}

// Context returns the span's propagated identity (zero for a no-op
// span).
func (s Span) Context() SpanContext { return s.sc }

// StartSpan opens a span named name as a child of the span carried by
// ctx (local or remote) and returns a derived context carrying the new
// span, so callees parented from it attach below it. With no span in
// ctx a new trace is started. Nil tracer: ctx is returned unchanged
// with a no-op Span.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, Span) {
	if ctx == nil {
		ctx = context.Background()
	}
	if t == nil {
		return ctx, Span{}
	}
	parent, _ := ctx.Value(spanKey{}).(spanRef)

	t.mu.Lock()
	var sc SpanContext
	if parent.sc.Trace.IsValid() {
		sc.Trace = parent.sc.Trace
	} else {
		sc.Trace = t.newTraceID()
	}
	sc.Span = t.newSpanID()
	t.nextID++
	rec := SpanRecord{
		ID:      t.nextID,
		Name:    name,
		TraceID: sc.Trace.String(),
		SpanID:  sc.Span.String(),
		StartUS: t.now().Sub(t.epoch).Microseconds(),
		DurUS:   -1,
	}
	if parent.t == t && parent.id > 0 {
		rec.Parent = parent.id
	}
	if parent.sc.Span.IsValid() {
		rec.ParentSpanID = parent.sc.Span.String()
	}
	s := Span{t: t, sc: sc}
	if t.maxSpans > 0 && len(t.spans) >= t.maxSpans {
		t.dropped++
		s.rec = &rec
	} else {
		t.spans = append(t.spans, rec)
		s.slot = len(t.spans)
	}
	t.mu.Unlock()

	return context.WithValue(ctx, spanKey{}, spanRef{sc: sc, id: rec.ID, t: t}), s
}

// Start opens a root span named name in a fresh trace — the
// non-propagating shorthand for StartSpan(context.Background(), name).
func (t *Tracer) Start(name string) Span {
	_, s := t.StartSpan(context.Background(), name)
	return s
}

// StartSpan opens a span on c's tracer — the package-level convenience
// the pipeline uses: ctx2, sp := telemetry.StartSpan(ctx, c, name).
// Both a nil collector and a nil tracer degrade to a no-op.
func StartSpan(ctx context.Context, c *Collector, name string) (context.Context, Span) {
	return c.Trace().StartSpan(ctx, name)
}

// record resolves the span's mutable record; call under s.t.mu.
func (s Span) record() *SpanRecord {
	if s.slot > 0 {
		return &s.t.spans[s.slot-1]
	}
	return s.rec
}

// SetStr annotates the span with a string attribute.
func (s Span) SetStr(key, v string) { s.set(key, v) }

// SetInt annotates the span with an integer attribute.
func (s Span) SetInt(key string, v int) { s.set(key, int64(v)) }

// SetFloat annotates the span with a float attribute.
func (s Span) SetFloat(key string, v float64) { s.set(key, v) }

func (s Span) set(key string, v any) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	rec := s.record()
	rec.Attrs = append(rec.Attrs, Attr{Key: key, Value: v})
}

// End closes the span and returns its duration (0 for a no-op span, or
// when the span was already ended). Ending out of creation order is
// fine: parentage was fixed at StartSpan from the context, so sibling
// and overlapping spans never corrupt each other's attribution.
func (s Span) End() time.Duration {
	if s.t == nil {
		return 0
	}
	t := s.t
	t.mu.Lock()
	rec := s.record()
	if rec.DurUS >= 0 {
		t.mu.Unlock()
		return 0
	}
	rec.DurUS = t.now().Sub(t.epoch).Microseconds() - rec.StartUS
	done := *rec
	if len(done.Attrs) > 0 {
		done.Attrs = append([]Attr(nil), done.Attrs...)
	}
	observers := t.observers
	t.mu.Unlock()
	for _, o := range observers {
		o.ObserveSpan(done)
	}
	return time.Duration(done.DurUS) * time.Microsecond
}

// Spans returns a copy of every retained span, in start order.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len returns the number of retained spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}
