package telemetry

import (
	"sync"
	"time"
)

// Attr is one key/value annotation on a span. Values are whatever the
// caller set (string, int64, float64) and marshal directly to JSON.
type Attr struct {
	Key   string `json:"k"`
	Value any    `json:"v"`
}

// SpanRecord is one finished (or still-open) span. Times are offsets
// from the tracer's epoch in microseconds, so a trace is self-contained
// and diffable under an injected clock.
type SpanRecord struct {
	// ID is 1-based in start order; Parent is the enclosing span's ID,
	// 0 for roots.
	ID     int    `json:"id"`
	Parent int    `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartUS is the start offset from the trace epoch; DurUS is the
	// span duration (-1 while the span is still open).
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// Duration returns the span's duration (0 while open).
func (r SpanRecord) Duration() time.Duration {
	if r.DurUS < 0 {
		return 0
	}
	return time.Duration(r.DurUS) * time.Microsecond
}

// Tracer records span-style Start/End scopes. Parent attribution uses a
// stack of open spans, which is correct for the single-goroutine online
// pipeline; the mutex only makes concurrent use memory-safe. A nil
// *Tracer is a valid disabled tracer: Start returns a no-op Span.
type Tracer struct {
	mu    sync.Mutex
	now   func() time.Time
	epoch time.Time
	spans []SpanRecord
	open  []int // stack of open span IDs, innermost last
}

// NewTracer returns a tracer on the wall clock.
func NewTracer() *Tracer { return NewTracerWithClock(time.Now) }

// NewTracerWithClock returns a tracer reading time from now; inject a
// fake clock for deterministic traces in tests.
func NewTracerWithClock(now func() time.Time) *Tracer {
	return &Tracer{now: now, epoch: now()}
}

// Span is a lightweight handle on an open span. The zero Span (from a
// nil tracer) ignores every call.
type Span struct {
	t  *Tracer
	id int
}

// Start opens a span named name nested under the innermost open span.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := len(t.spans) + 1
	parent := 0
	if n := len(t.open); n > 0 {
		parent = t.open[n-1]
	}
	t.spans = append(t.spans, SpanRecord{
		ID:      id,
		Parent:  parent,
		Name:    name,
		StartUS: t.now().Sub(t.epoch).Microseconds(),
		DurUS:   -1,
	})
	t.open = append(t.open, id)
	return Span{t: t, id: id}
}

// SetStr annotates the span with a string attribute.
func (s Span) SetStr(key, v string) { s.set(key, v) }

// SetInt annotates the span with an integer attribute.
func (s Span) SetInt(key string, v int) { s.set(key, int64(v)) }

// SetFloat annotates the span with a float attribute.
func (s Span) SetFloat(key string, v float64) { s.set(key, v) }

func (s Span) set(key string, v any) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	rec := &s.t.spans[s.id-1]
	rec.Attrs = append(rec.Attrs, Attr{Key: key, Value: v})
}

// End closes the span and returns its duration (0 for a no-op span, or
// when the span was already ended). Ending out of creation order is
// tolerated: the span is removed from wherever it sits in the open
// stack so later siblings still attribute parents correctly.
func (s Span) End() time.Duration {
	if s.t == nil {
		return 0
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := &t.spans[s.id-1]
	if rec.DurUS >= 0 {
		return 0
	}
	rec.DurUS = t.now().Sub(t.epoch).Microseconds() - rec.StartUS
	for i := len(t.open) - 1; i >= 0; i-- {
		if t.open[i] == s.id {
			t.open = append(t.open[:i], t.open[i+1:]...)
			break
		}
	}
	return time.Duration(rec.DurUS) * time.Microsecond
}

// Spans returns a copy of every span recorded so far, in start order.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// Len returns the number of spans recorded so far.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}
