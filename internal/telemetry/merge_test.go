package telemetry

import (
	"math"
	"testing"
)

// TestSnapshotMerge covers the cluster rollup semantics: counters and
// gauges sum per name, histograms with identical bounds merge
// bucket-wise with folded count/sum/min/max.
func TestSnapshotMerge(t *testing.T) {
	a := &Snapshot{
		Counters: map[string]int64{"jobs": 2, "only_a": 1},
		Gauges:   map[string]float64{"depth": 3},
		Histograms: map[string]HistogramSnapshot{
			"lat": {Count: 2, Sum: 3, Mean: 1.5, Min: 1, Max: 2,
				Bounds: []float64{1, 5}, Counts: []int64{1, 1}},
		},
	}
	b := &Snapshot{
		Counters: map[string]int64{"jobs": 5, "only_b": 7},
		Gauges:   map[string]float64{"depth": 4, "temp": 1},
		Histograms: map[string]HistogramSnapshot{
			"lat": {Count: 1, Sum: 4, Mean: 4, Min: 4, Max: 4,
				Bounds: []float64{1, 5}, Counts: []int64{0, 1}},
			"fresh": {Count: 3, Sum: 6, Mean: 2, Min: 1, Max: 3,
				Bounds: []float64{1, 5}, Counts: []int64{2, 1}},
		},
	}
	a.Merge(b)

	if a.Counters["jobs"] != 7 || a.Counters["only_a"] != 1 || a.Counters["only_b"] != 7 {
		t.Errorf("merged counters %v, want jobs 7, only_a 1, only_b 7", a.Counters)
	}
	if a.Gauges["depth"] != 7 || a.Gauges["temp"] != 1 {
		t.Errorf("merged gauges %v, want depth 7, temp 1", a.Gauges)
	}
	lat := a.Histograms["lat"]
	if lat.Count != 3 || lat.Sum != 7 || lat.Min != 1 || lat.Max != 4 {
		t.Errorf("merged histogram %+v, want count 3 sum 7 min 1 max 4", lat)
	}
	if math.Abs(lat.Mean-7.0/3.0) > 1e-12 {
		t.Errorf("merged mean %v, want %v", lat.Mean, 7.0/3.0)
	}
	if lat.Counts[0] != 1 || lat.Counts[1] != 2 {
		t.Errorf("merged bucket counts %v, want [1 2]", lat.Counts)
	}
	fresh := a.Histograms["fresh"]
	if fresh.Count != 3 || fresh.Counts[0] != 2 {
		t.Errorf("first-seen histogram %+v, want a copy of b's", fresh)
	}

	// The merge copies — mutating the result must not leak into b.
	lat.Counts[0] = 99
	if b.Histograms["lat"].Counts[0] == 99 {
		t.Error("merge aliased b's bucket slice")
	}
}

// TestSnapshotMergeMismatchedBounds pins the fallback: differing bucket
// bounds keep the receiver's buckets and fold only the scalars.
func TestSnapshotMergeMismatchedBounds(t *testing.T) {
	a := &Snapshot{Histograms: map[string]HistogramSnapshot{
		"lat": {Count: 1, Sum: 2, Min: 2, Max: 2, Bounds: []float64{1, 5}, Counts: []int64{0, 1}},
	}}
	b := &Snapshot{Histograms: map[string]HistogramSnapshot{
		"lat": {Count: 1, Sum: 10, Min: 10, Max: 10, Bounds: []float64{1, 5, 10}, Counts: []int64{0, 0, 1}},
	}}
	a.Merge(b)
	lat := a.Histograms["lat"]
	if len(lat.Bounds) != 2 || lat.Counts[1] != 1 {
		t.Errorf("mismatched-bounds merge changed the receiver's buckets: %+v", lat)
	}
	if lat.Count != 2 || lat.Sum != 12 || lat.Max != 10 {
		t.Errorf("mismatched-bounds merge scalars %+v, want count 2 sum 12 max 10", lat)
	}
}

// TestSnapshotMergeNil pins the nil contract: nil receiver or argument
// is a no-op, and merging into a zero-value snapshot initialises it.
func TestSnapshotMergeNil(t *testing.T) {
	var nilSnap *Snapshot
	nilSnap.Merge(&Snapshot{Counters: map[string]int64{"x": 1}})

	s := &Snapshot{}
	s.Merge(nil)
	s.Merge(&Snapshot{Counters: map[string]int64{"x": 1}, Gauges: map[string]float64{"g": 2}})
	if s.Counters["x"] != 1 || s.Gauges["g"] != 2 {
		t.Errorf("merge into zero-value snapshot: %+v", s)
	}
}
