package core

import (
	"fmt"
	"math/rand"
	"time"

	"autofeat/internal/frame"
	"autofeat/internal/ml"
	"autofeat/internal/relational"
	"autofeat/internal/telemetry"
)

// PathEval records the ML evaluation of one ranked path.
type PathEval struct {
	Path RankedPath
	Eval ml.EvalResult
}

// AugmentResult is AutoFeat's end-to-end output: the best join path, the
// fully-materialised augmented table, the features it was trained with and
// the timing split the paper reports (feature-selection time vs total).
type AugmentResult struct {
	// Best is the winning path (highest model accuracy among the top-k).
	Best PathEval
	// Table is the augmented table materialised along the best path at
	// full size (no sampling).
	Table *frame.Frame
	// Features is the trained feature set: base features plus the best
	// path's selected features.
	Features []string
	// Evaluated lists every top-k path with its model score.
	Evaluated []PathEval
	// Ranking is the discovery output the evaluation started from.
	Ranking *Ranking
	// SelectionTime is the feature-discovery wall-clock time;
	// TotalTime adds materialisation and model training on top.
	SelectionTime time.Duration
	TotalTime     time.Duration
}

// Augment runs the full AutoFeat pipeline against the discovery's graph:
// discovery + ranking, then training the factory's model on each of the
// top-k paths at full table size, returning the best-accuracy path
// (Section VI, "From Ranked Paths to Training ML Models").
func (d *Discovery) Augment(factory ml.Factory) (*AugmentResult, error) {
	start := time.Now()
	ranking, err := d.Run()
	if err != nil {
		return nil, err
	}
	res, err := d.EvaluateRanking(ranking, factory)
	if err != nil {
		return nil, err
	}
	res.TotalTime = time.Since(start)
	return res, nil
}

// EvaluateRanking trains the factory's model on the top-k ranked paths of
// a previously computed ranking and picks the best. Exposed separately so
// harnesses can time discovery and evaluation independently and reuse one
// ranking across model families.
func (d *Discovery) EvaluateRanking(ranking *Ranking, factory ml.Factory) (*AugmentResult, error) {
	start := time.Now()
	res := &AugmentResult{Ranking: ranking, SelectionTime: ranking.SelectionTime}
	base := ranking.Base

	// Candidate 0 is always the base table alone, so AutoFeat never
	// returns an augmentation that hurts the model.
	candidates := []RankedPath{{Quality: 1}}
	candidates = append(candidates, ranking.TopK(d.cfg.TopK)...)

	tr := d.cfg.Telemetry.Trace()
	bestAcc := -1.0
	for _, p := range candidates {
		matSpan := tr.Start(telemetry.SpanMaterialize)
		table, features, err := d.MaterializePath(p, base)
		matSpan.SetInt("hops", len(p.Edges))
		matSpan.End()
		if err != nil {
			return nil, err
		}
		trainSpan := tr.Start(telemetry.SpanTrainEval)
		trainSpan.SetStr("model", factory.Name)
		trainSpan.SetInt("features", len(features))
		eval, err := ml.EvaluateFrame(table, features, ranking.Label, factory.New(d.cfg.Seed), d.cfg.Seed)
		trainSpan.End()
		if err != nil {
			return nil, err
		}
		pe := PathEval{Path: p, Eval: eval}
		res.Evaluated = append(res.Evaluated, pe)
		if eval.Accuracy > bestAcc {
			bestAcc = eval.Accuracy
			res.Best = pe
			res.Table = table
			res.Features = features
		}
	}
	res.TotalTime = ranking.SelectionTime + time.Since(start)
	return res, nil
}

// MaterializePath joins the full base table along the path and returns the
// augmented table plus the feature set to train with (base features + the
// path's selected features, deduplicated).
func (d *Discovery) MaterializePath(p RankedPath, base *frame.Frame) (*frame.Frame, []string, error) {
	rp := make(relational.Path, len(p.Edges))
	for i, e := range p.Edges {
		to := d.g.Table(e.B)
		if to == nil {
			return nil, nil, fmt.Errorf("core: table %q vanished from graph", e.B)
		}
		rp[i] = relational.Hop{FromCol: e.A + "." + e.ColA, To: to, ToCol: e.ColB}
	}
	var joinRng *rand.Rand
	if d.cfg.NormalizeJoins {
		joinRng = rand.New(rand.NewSource(d.cfg.Seed))
	}
	table, _, err := rp.Materialize(base, relational.Options{
		Normalize: d.cfg.NormalizeJoins,
		Rng:       joinRng,
		Telemetry: d.cfg.Telemetry,
	})
	if err != nil {
		return nil, nil, err
	}
	features := make([]string, 0, len(d.baseFeaturesOf(base))+len(p.Features))
	seen := make(map[string]bool)
	for _, f := range append(d.baseFeaturesOf(base), p.Features...) {
		if !seen[f] && table.HasColumn(f) {
			seen[f] = true
			features = append(features, f)
		}
	}
	return table, features, nil
}

func (d *Discovery) baseFeaturesOf(base *frame.Frame) []string {
	out := make([]string, 0, base.NumCols()-1)
	for _, name := range base.ColumnNames() {
		if name != d.label {
			out = append(out, name)
		}
	}
	return out
}
