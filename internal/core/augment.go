package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"autofeat/internal/errs"
	"autofeat/internal/frame"
	"autofeat/internal/ml"
	"autofeat/internal/obsrv"
	"autofeat/internal/relational"
	"autofeat/internal/telemetry"
)

// PathEval records the ML evaluation of one ranked path.
type PathEval struct {
	Path RankedPath
	Eval ml.EvalResult
}

// AugmentResult is AutoFeat's end-to-end output: the best join path, the
// fully-materialised augmented table, the features it was trained with and
// the timing split the paper reports (feature-selection time vs total).
type AugmentResult struct {
	// Best is the winning path (highest model accuracy among the top-k).
	Best PathEval
	// Table is the augmented table materialised along the best path at
	// full size (no sampling).
	Table *frame.Frame
	// Features is the trained feature set: base features plus the best
	// path's selected features.
	Features []string
	// Evaluated lists every top-k path with its model score.
	Evaluated []PathEval
	// Ranking is the discovery output the evaluation started from.
	Ranking *Ranking
	// SelectionTime is the feature-discovery wall-clock time;
	// TotalTime adds materialisation and model training on top.
	SelectionTime time.Duration
	TotalTime     time.Duration
	// Partial reports that discovery or evaluation stopped early
	// (cancellation, deadline or budget) and Best is the best of what
	// was reached, not of the full search space. The base table alone is
	// always evaluated, so Best is populated even on a fully cancelled
	// run. PartialReason carries the cause, as in Ranking.
	Partial       bool
	PartialReason string
}

// Augment runs the full AutoFeat pipeline with no external cancellation;
// it is exactly AugmentContext under context.Background(), which is the
// canonical (context-first) form.
func (d *Discovery) Augment(factory ml.Factory) (*AugmentResult, error) {
	return d.AugmentContext(context.Background(), factory)
}

// AugmentContext runs the full AutoFeat pipeline against the discovery's
// graph: discovery + ranking, then training the factory's model on each of
// the top-k paths at full table size, returning the best-accuracy path
// (Section VI, "From Ranked Paths to Training ML Models"). Cancellation
// degrades, it does not error: discovery returns its partial ranking and
// evaluation always scores at least the base table alone, so the result's
// Best is populated (and flagged Partial) even when ctx is already done.
func (d *Discovery) AugmentContext(ctx context.Context, factory ml.Factory) (*AugmentResult, error) {
	start := time.Now()
	ranking, err := d.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	res, err := d.EvaluateRankingContext(ctx, ranking, factory)
	if err != nil {
		return nil, err
	}
	res.TotalTime = time.Since(start)
	return res, nil
}

// EvaluateRanking trains the factory's model on the top-k ranked paths
// with no external cancellation; it is EvaluateRankingContext under
// context.Background().
func (d *Discovery) EvaluateRanking(ranking *Ranking, factory ml.Factory) (*AugmentResult, error) {
	return d.EvaluateRankingContext(context.Background(), ranking, factory)
}

// EvaluateRankingContext trains the factory's model on the top-k ranked
// paths of a previously computed ranking and picks the best. Exposed
// separately so harnesses can time discovery and evaluation independently
// and reuse one ranking across model families.
//
// The base-table candidate (index 0) is always evaluated, even under an
// already-cancelled context — AutoFeat's floor guarantee that augmentation
// never silently loses the un-augmented baseline. ctx is checked between
// the remaining candidates; a cancellation flags the result Partial and
// returns what was evaluated so far instead of erroring.
func (d *Discovery) EvaluateRankingContext(ctx context.Context, ranking *Ranking, factory ml.Factory) (*AugmentResult, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	res := &AugmentResult{Ranking: ranking, SelectionTime: ranking.SelectionTime}
	res.Partial, res.PartialReason = ranking.Partial, ranking.PartialReason
	base := ranking.Base

	// Candidate 0 is always the base table alone, so AutoFeat never
	// returns an augmentation that hurts the model.
	candidates := []RankedPath{{Quality: 1}}
	candidates = append(candidates, ranking.TopK(d.cfg.TopK)...)

	tr := d.cfg.Telemetry.Trace()
	prog := d.cfg.Progress
	lg := d.cfg.log()
	bestAcc := -1.0
	for i, p := range candidates {
		// The base candidate materialises without joins; detach it from
		// ctx's cancellation (keeping its trace) so the floor guarantee
		// holds even when ctx is already done.
		candCtx := ctx
		if i == 0 {
			candCtx = context.WithoutCancel(ctx)
		} else if err := ctx.Err(); err != nil {
			markPartialResult(res, partialReason(err))
			prog.MarkPartial(res.PartialReason)
			lg.Warn("evaluation stopped early", "reason", res.PartialReason, "evaluated", len(res.Evaluated), "candidates", len(candidates))
			break
		}
		prog.SetPhase(obsrv.PhaseMaterialize)
		candCtx, matSpan := tr.StartSpan(candCtx, telemetry.SpanMaterialize)
		table, features, err := d.MaterializePathContext(candCtx, p, base)
		matSpan.SetInt("hops", len(p.Edges))
		matSpan.End()
		if err != nil {
			if errors.Is(err, errs.ErrCancelled) {
				markPartialResult(res, partialReason(ctx.Err()))
				prog.MarkPartial(res.PartialReason)
				lg.Warn("materialisation cancelled", "reason", res.PartialReason, "evaluated", len(res.Evaluated))
				break
			}
			return nil, err
		}
		prog.SetPhase(obsrv.PhaseTrain)
		_, trainSpan := tr.StartSpan(ctx, telemetry.SpanTrainEval)
		trainSpan.SetStr("model", factory.Name)
		trainSpan.SetInt("features", len(features))
		eval, err := ml.EvaluateFrameLogged(table, features, ranking.Label, factory.New(d.cfg.Seed), d.cfg.Seed, d.cfg.Logger)
		trainSpan.End()
		if err != nil {
			return nil, err
		}
		pe := PathEval{Path: p, Eval: eval}
		res.Evaluated = append(res.Evaluated, pe)
		if eval.Accuracy > bestAcc {
			bestAcc = eval.Accuracy
			res.Best = pe
			res.Table = table
			res.Features = features
		}
	}
	res.TotalTime = ranking.SelectionTime + time.Since(start)
	if res.Partial && !ranking.Partial {
		// A partial ranking already counted itself in RunContext; only an
		// evaluation-phase stop adds a new partial run.
		d.cfg.Telemetry.Meter().Inc(telemetry.CtrPartialRuns)
	}
	prog.Finish()
	lg.Info("augmentation finished",
		"evaluated", len(res.Evaluated), "best_model", res.Best.Eval.Model,
		"best_accuracy", res.Best.Eval.Accuracy, "partial", res.Partial,
		"total_time", res.TotalTime)
	return res, nil
}

// markPartialResult flags the result Partial under reason, first cause
// winning — the evaluation-phase counterpart of markPartial.
func markPartialResult(res *AugmentResult, reason string) {
	if !res.Partial {
		res.Partial = true
		res.PartialReason = reason
	}
}

// MaterializePath joins the full base table along the path with no
// external cancellation; it is MaterializePathContext under
// context.Background().
func (d *Discovery) MaterializePath(p RankedPath, base *frame.Frame) (*frame.Frame, []string, error) {
	return d.MaterializePathContext(context.Background(), p, base)
}

// MaterializePathContext joins the full base table along the path and
// returns the augmented table plus the feature set to train with (base
// features + the path's selected features, deduplicated). ctx flows into
// every hop's join row loop; a cancellation aborts with an error wrapping
// errs.ErrCancelled.
func (d *Discovery) MaterializePathContext(ctx context.Context, p RankedPath, base *frame.Frame) (*frame.Frame, []string, error) {
	rp := make(relational.Path, len(p.Edges))
	for i, e := range p.Edges {
		to := d.g.Table(e.B)
		if to == nil {
			return nil, nil, fmt.Errorf("core: table %q vanished from graph", e.B)
		}
		rp[i] = relational.Hop{FromCol: e.A + "." + e.ColA, To: to, ToCol: e.ColB}
	}
	var joinRng *rand.Rand
	if d.cfg.NormalizeJoins {
		joinRng = rand.New(rand.NewSource(d.cfg.Seed))
	}
	table, _, err := rp.Materialize(base, relational.Options{
		Ctx:       ctx,
		Normalize: d.cfg.NormalizeJoins,
		Rng:       joinRng,
		Telemetry: d.cfg.Telemetry,
		Log:       d.cfg.Logger,
	})
	if err != nil {
		return nil, nil, err
	}
	features := make([]string, 0, len(d.baseFeaturesOf(base))+len(p.Features))
	seen := make(map[string]bool)
	for _, f := range append(d.baseFeaturesOf(base), p.Features...) {
		if !seen[f] && table.HasColumn(f) {
			seen[f] = true
			features = append(features, f)
		}
	}
	return table, features, nil
}

func (d *Discovery) baseFeaturesOf(base *frame.Frame) []string {
	out := make([]string, 0, base.NumCols()-1)
	for _, name := range base.ColumnNames() {
		if name != d.label {
			out = append(out, name)
		}
	}
	return out
}
