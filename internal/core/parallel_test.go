package core

import (
	"encoding/json"
	"sync"
	"testing"

	"autofeat/internal/telemetry"
)

// rankingJSON serialises a Ranking for byte-level comparison, zeroing the
// wall-clock SelectionTime (the only field allowed to differ across runs).
func rankingJSON(t *testing.T, r *Ranking) string {
	t.Helper()
	cp := *r
	cp.SelectionTime = 0
	b, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestParallelRunMatchesSequential is the tentpole guarantee: the ranking
// is bit-identical at every worker count, including with randomised join
// normalisation (per-edge RNG streams derived from (Seed, depth, edge)
// make normalisation independent of evaluation order).
func TestParallelRunMatchesSequential(t *testing.T) {
	g := testLake(t, 500)
	var want string
	for _, workers := range []int{1, 4, 8} {
		cfg := DefaultConfig()
		cfg.NormalizeJoins = true
		cfg.Workers = workers
		d, err := New(g, "base", "y", cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		got := rankingJSON(t, r)
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("Workers=%d ranking differs from sequential:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestParallelRunMatchesSequentialUnderCaps repeats the determinism check
// with MaxPaths and beam pruning active, where the positional cap must fire
// at the same enumeration index regardless of evaluation interleaving.
func TestParallelRunMatchesSequentialUnderCaps(t *testing.T) {
	g := testLake(t, 300)
	var want *Ranking
	var wantJSON string
	for _, workers := range []int{1, 8} {
		cfg := DefaultConfig()
		cfg.NormalizeJoins = true
		cfg.MaxPaths = 2
		cfg.BeamWidth = 1
		cfg.Workers = workers
		d, err := New(g, "base", "y", cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			want, wantJSON = r, rankingJSON(t, r)
			if want.Prune.MaxPathsCap == 0 {
				t.Fatal("fixture must actually hit the MaxPaths cap")
			}
			continue
		}
		if got := rankingJSON(t, r); got != wantJSON {
			t.Fatalf("Workers=%d capped ranking differs:\n%s\nvs\n%s", workers, got, wantJSON)
		}
	}
}

// TestConcurrentDiscoveriesSharedCollector runs several parallel
// discoveries at once against one shared telemetry collector — the
// cross-run race the atomic counter registry exists for (run with -race).
func TestConcurrentDiscoveriesSharedCollector(t *testing.T) {
	g := testLake(t, 300)
	col := telemetry.New()
	const runs = 4
	results := make([]*Ranking, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := DefaultConfig()
			cfg.NormalizeJoins = true
			cfg.Workers = 2
			cfg.Telemetry = col
			d, err := New(g, "base", "y", cfg)
			if err != nil {
				t.Error(err)
				return
			}
			r, err := d.Run()
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	want := rankingJSON(t, results[0])
	for i := 1; i < runs; i++ {
		if got := rankingJSON(t, results[i]); got != want {
			t.Fatalf("run %d ranking differs from run 0", i)
		}
	}
	snap := col.Snapshot()
	if snap.Counters[telemetry.CtrJoins] == 0 {
		t.Fatal("shared collector must have accumulated join counters")
	}
}
