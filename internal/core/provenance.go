package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// ManifestSchema identifies the run_manifest.json document format; bump it
// when the manifest shape changes incompatibly.
const ManifestSchema = "autofeat/run-manifest/v1"

// Manifest is the per-run provenance record: a config snapshot, the graph
// inventory the run saw, and the full lineage of every ranked path — which
// joins were taken, the similarity and data-quality value at each decision
// point, and the relevance/redundancy score each selected feature carried.
// The path data is a pure function of the ranking, so manifests from runs
// with different worker counts are bit-identical apart from CreatedUnixMS
// and the timing fields.
type Manifest struct {
	// Schema is always ManifestSchema, so readers can reject foreign JSON.
	Schema string `json:"schema"`
	// CreatedUnixMS is the manifest creation time (Unix milliseconds).
	CreatedUnixMS int64 `json:"created_unix_ms"`
	// RunID labels the run when an introspection RunProgress was attached;
	// empty otherwise.
	RunID string `json:"run_id,omitempty"`
	// TraceID is the 32-hex-digit trace identity of the request that
	// produced this manifest (log<->trace<->manifest correlation); empty
	// for untraced runs, keeping their manifests byte-identical to
	// pre-tracing output.
	TraceID string `json:"trace_id,omitempty"`
	// Base and Label identify the prediction task: the base table node and
	// the fully-qualified label column.
	Base  string `json:"base"`
	Label string `json:"label"`
	// Config is the hyper-parameter snapshot the run executed with.
	Config ConfigSnapshot `json:"config"`
	// Tables inventories every node of the Dataset Relation Graph, sorted
	// by name.
	Tables []TableInfo `json:"tables"`
	// Edges inventories every join opportunity incident to the graph, each
	// undirected edge listed once, oriented lexicographically.
	Edges []EdgeInfo `json:"edges"`
	// PathsExplored counts every join evaluated, including pruned ones.
	PathsExplored int `json:"paths_explored"`
	// Pruned is the by-reason pruning breakdown of the run.
	Pruned PruneStats `json:"pruned"`
	// Partial and PartialReason mirror Ranking.Partial/PartialReason: the
	// search stopped early and Paths covers only what was reached.
	Partial       bool   `json:"partial"`
	PartialReason string `json:"partial_reason,omitempty"`
	// SelectionSeconds is the feature-discovery wall-clock time.
	SelectionSeconds float64 `json:"selection_seconds"`
	// TotalSeconds adds materialisation and training time; zero until an
	// evaluation is attached.
	TotalSeconds float64 `json:"total_seconds,omitempty"`
	// Paths is the ranked lineage, best first; IDs are "path-001" and up
	// in rank order.
	Paths []PathLineage `json:"paths"`
	// Evaluations records the model scores of the top-k paths when
	// AttachEvaluation was called; nil for a discovery-only manifest.
	Evaluations []EvalRecord `json:"evaluations,omitempty"`
	// BestPath is the PathID of the winning evaluation ("base" when the
	// un-augmented baseline won); empty for a discovery-only manifest.
	BestPath string `json:"best_path,omitempty"`
}

// ConfigSnapshot is the JSON-stable image of a Config: plain values only,
// with the pluggable metrics recorded by name.
type ConfigSnapshot struct {
	// Tau is the data-quality threshold τ.
	Tau float64 `json:"tau"`
	// Kappa is the per-table relevance cap κ.
	Kappa int `json:"kappa"`
	// Relevance and Redundancy name the configured metrics ("spearman",
	// "mrmr", ...); "none" when the stage was disabled.
	Relevance  string `json:"relevance"`
	Redundancy string `json:"redundancy"`
	// TopK, MaxDepth, SampleSize, MaxPaths and BeamWidth mirror the Config
	// fields of the same names.
	TopK       int `json:"top_k"`
	MaxDepth   int `json:"max_depth"`
	SampleSize int `json:"sample_size"`
	MaxPaths   int `json:"max_paths"`
	BeamWidth  int `json:"beam_width"`
	// SimilarityPruning and NormalizeJoins mirror the Config toggles.
	SimilarityPruning bool `json:"similarity_pruning"`
	NormalizeJoins    bool `json:"normalize_joins"`
	// Seed is the run's random seed.
	Seed int64 `json:"seed"`
	// Workers is the configured worker count (0 = GOMAXPROCS).
	Workers int `json:"workers"`
	// TimeoutSeconds, MaxEvalJoins and MaxJoinedRows are the run budgets;
	// zero means unlimited.
	TimeoutSeconds float64 `json:"timeout_seconds"`
	MaxEvalJoins   int     `json:"max_eval_joins"`
	MaxJoinedRows  int64   `json:"max_joined_rows"`
}

// TableInfo is one node of the graph inventory.
type TableInfo struct {
	// Name is the node (dataset) name.
	Name string `json:"name"`
	// Rows and Cols are the table's dimensions.
	Rows int `json:"rows"`
	Cols int `json:"cols"`
}

// EdgeInfo is one join opportunity of the graph inventory.
type EdgeInfo struct {
	// From/FromCol and To/ToCol are the two sides of the candidate join.
	From    string `json:"from"`
	FromCol string `json:"from_col"`
	To      string `json:"to"`
	ToCol   string `json:"to_col"`
	// Similarity is the edge's similarity score in (0,1].
	Similarity float64 `json:"similarity"`
	// KFK marks edges that came from an integrity constraint.
	KFK bool `json:"kfk,omitempty"`
}

// PathLineage is the full provenance of one ranked join path.
type PathLineage struct {
	// ID is the stable handle "path-NNN", assigned in rank order from 1.
	ID string `json:"id"`
	// Rank is the 1-based position in the ranking.
	Rank int `json:"rank"`
	// Score is the Algorithm 2 ranking score.
	Score float64 `json:"score"`
	// Quality is the lowest hop completeness along the path.
	Quality float64 `json:"quality"`
	// Hops is the join sequence from the base table with the similarity
	// and data-quality value observed at each decision point.
	Hops []HopLineage `json:"hops"`
	// Features lists the selected features in selection order with the
	// scores they were selected at.
	Features []FeatureLineage `json:"features"`
}

// HopLineage is one join decision along a path.
type HopLineage struct {
	// From/FromCol and To/ToCol are the executed join's two sides.
	From    string `json:"from"`
	FromCol string `json:"from_col"`
	To      string `json:"to"`
	ToCol   string `json:"to_col"`
	// Similarity is the edge weight that let the hop survive similarity
	// pruning.
	Similarity float64 `json:"similarity"`
	// Quality is the completeness (non-null ratio) measured over the
	// columns this hop added — the value compared against τ.
	Quality float64 `json:"quality"`
}

// FeatureLineage is one selected feature with its decision-point scores.
type FeatureLineage struct {
	// Name is the fully-qualified feature column.
	Name string `json:"name"`
	// Relevance is the relevance score the feature ranked with.
	Relevance float64 `json:"relevance"`
	// Redundancy is the redundancy J score the feature was accepted with.
	Redundancy float64 `json:"redundancy"`
}

// EvalRecord is one trained model outcome attached to the manifest.
type EvalRecord struct {
	// PathID references a PathLineage ID, or "base" for the un-augmented
	// baseline candidate.
	PathID string `json:"path_id"`
	// Model names the classifier.
	Model string `json:"model"`
	// Accuracy, AUC and F1 are the held-out test scores.
	Accuracy float64 `json:"accuracy"`
	AUC      float64 `json:"auc"`
	F1       float64 `json:"f1"`
}

// BasePathID is the EvalRecord PathID of the un-augmented baseline.
const BasePathID = "base"

// Manifest builds the provenance manifest of a completed ranking: config
// snapshot, graph inventory and per-path lineage. Attach model outcomes
// afterwards with AttachEvaluation.
func (d *Discovery) Manifest(r *Ranking) *Manifest {
	m := &Manifest{
		Schema:           ManifestSchema,
		CreatedUnixMS:    time.Now().UnixMilli(),
		Base:             d.baseName,
		Label:            d.label,
		Config:           d.cfg.snapshot(),
		PathsExplored:    r.PathsExplored,
		Pruned:           r.Prune,
		Partial:          r.Partial,
		PartialReason:    r.PartialReason,
		SelectionSeconds: r.SelectionTime.Seconds(),
	}
	if p := d.cfg.Progress; p != nil {
		m.RunID = p.ID()
	}
	for _, name := range d.g.Nodes() {
		t := d.g.Table(name)
		m.Tables = append(m.Tables, TableInfo{Name: name, Rows: t.NumRows(), Cols: t.NumCols()})
		for _, e := range d.g.EdgesFrom(name) {
			// Each undirected edge appears under both endpoints; keep the
			// lexicographically-oriented copy only.
			if e.A > e.B || (e.A == e.B && e.ColA > e.ColB) {
				continue
			}
			m.Edges = append(m.Edges, EdgeInfo{
				From: e.A, FromCol: e.ColA, To: e.B, ToCol: e.ColB,
				Similarity: e.Weight, KFK: e.KFK,
			})
		}
	}
	for i, p := range r.Paths {
		m.Paths = append(m.Paths, pathLineage(i, p))
	}
	return m
}

// snapshot renders the config as its JSON-stable image.
func (c Config) snapshot() ConfigSnapshot {
	rel, red := "none", "none"
	if c.Relevance != nil {
		rel = c.Relevance.Name()
	}
	if c.Redundancy != nil {
		red = c.Redundancy.Name()
	}
	return ConfigSnapshot{
		Tau: c.Tau, Kappa: c.Kappa, Relevance: rel, Redundancy: red,
		TopK: c.TopK, MaxDepth: c.MaxDepth, SampleSize: c.SampleSize,
		MaxPaths: c.MaxPaths, BeamWidth: c.BeamWidth,
		SimilarityPruning: c.SimilarityPruning, NormalizeJoins: c.NormalizeJoins,
		Seed: c.Seed, Workers: c.Workers,
		TimeoutSeconds: c.Timeout.Seconds(),
		MaxEvalJoins:   c.MaxEvalJoins, MaxJoinedRows: c.MaxJoinedRows,
	}
}

// pathLineage converts the i-th ranked path (0-based) into its lineage.
func pathLineage(i int, p RankedPath) PathLineage {
	pl := PathLineage{
		ID:      fmt.Sprintf("path-%03d", i+1),
		Rank:    i + 1,
		Score:   p.Score,
		Quality: p.Quality,
	}
	for h, e := range p.Edges {
		hop := HopLineage{
			From: e.A, FromCol: e.ColA, To: e.B, ToCol: e.ColB,
			Similarity: e.Weight,
		}
		if h < len(p.Qualities) {
			hop.Quality = p.Qualities[h]
		}
		pl.Hops = append(pl.Hops, hop)
	}
	for j, f := range p.Features {
		fl := FeatureLineage{Name: f}
		if j < len(p.RelScores) {
			fl.Relevance = p.RelScores[j]
		}
		if j < len(p.RedScores) {
			fl.Redundancy = p.RedScores[j]
		}
		pl.Features = append(pl.Features, fl)
	}
	return pl
}

// AttachEvaluation records the model outcomes of an AugmentResult on the
// manifest: one EvalRecord per evaluated candidate (candidate 0 is always
// the un-augmented baseline, PathID "base"), the winner under BestPath, and
// the run's total time. The partial flags are widened when evaluation
// stopped earlier than discovery did.
func (m *Manifest) AttachEvaluation(res *AugmentResult) {
	m.Evaluations = m.Evaluations[:0]
	for i, pe := range res.Evaluated {
		id := BasePathID
		if i > 0 {
			id = fmt.Sprintf("path-%03d", i)
		}
		m.Evaluations = append(m.Evaluations, EvalRecord{
			PathID: id, Model: pe.Eval.Model,
			Accuracy: pe.Eval.Accuracy, AUC: pe.Eval.AUC, F1: pe.Eval.F1,
		})
		if pe.Eval == res.Best.Eval && samePath(pe.Path, res.Best.Path) {
			m.BestPath = id
		}
	}
	m.TotalSeconds = res.TotalTime.Seconds()
	if res.Partial && !m.Partial {
		m.Partial, m.PartialReason = true, res.PartialReason
	}
}

// samePath reports whether two ranked paths describe the same join path.
func samePath(a, b RankedPath) bool {
	if len(a.Edges) != len(b.Edges) || a.Score != b.Score {
		return false
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return false
		}
	}
	return true
}

// PathByID returns the lineage with the given ID, or nil.
func (m *Manifest) PathByID(id string) *PathLineage {
	for i := range m.Paths {
		if m.Paths[i].ID == id {
			return &m.Paths[i]
		}
	}
	return nil
}

// Write renders the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteManifestFile writes the manifest to path as indented JSON.
func WriteManifestFile(path string, m *Manifest) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadManifestFile parses a run_manifest.json document, rejecting files
// whose schema field does not match ManifestSchema.
func ReadManifestFile(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("core: manifest %s: %w", path, err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("core: manifest %s: schema %q, want %q", path, m.Schema, ManifestSchema)
	}
	return &m, nil
}

// Explain pretty-prints one path's lineage — the `autofeat explain`
// subcommand's engine. id may be a PathLineage ID ("path-003"), the bare
// rank number ("3"), or "base" for the baseline evaluation.
func (m *Manifest) Explain(w io.Writer, id string) error {
	if id == BasePathID {
		fmt.Fprintf(w, "base table %s (no augmentation)\n", m.Base)
		m.explainEval(w, BasePathID)
		return nil
	}
	p := m.PathByID(id)
	if p == nil {
		// Accept a bare rank number as shorthand.
		var rank int
		if _, err := fmt.Sscanf(id, "%d", &rank); err == nil && rank >= 1 {
			p = m.PathByID(fmt.Sprintf("path-%03d", rank))
		}
	}
	if p == nil {
		return fmt.Errorf("core: no path %q in manifest (%d paths, IDs path-001..path-%03d)", id, len(m.Paths), len(m.Paths))
	}
	fmt.Fprintf(w, "%s  rank %d of %d  score %.6f  quality %.4f\n",
		p.ID, p.Rank, len(m.Paths), p.Score, p.Quality)
	fmt.Fprintf(w, "base: %s  label: %s  (tau=%.2f kappa=%d relevance=%s redundancy=%s seed=%d)\n",
		m.Base, m.Label, m.Config.Tau, m.Config.Kappa,
		m.Config.Relevance, m.Config.Redundancy, m.Config.Seed)
	fmt.Fprintf(w, "hops (%d):\n", len(p.Hops))
	for i, h := range p.Hops {
		fmt.Fprintf(w, "  %d. %s.%s -> %s.%s  similarity=%.4f  quality=%.4f\n",
			i+1, h.From, h.FromCol, h.To, h.ToCol, h.Similarity, h.Quality)
	}
	fmt.Fprintf(w, "features (%d):\n", len(p.Features))
	for i, f := range p.Features {
		fmt.Fprintf(w, "  %d. %-40s relevance=%.6f redundancy=%.6f\n",
			i+1, f.Name, f.Relevance, f.Redundancy)
	}
	m.explainEval(w, p.ID)
	if m.Partial {
		fmt.Fprintf(w, "note: partial run (%s) — ranking covers only the search space reached before the stop\n", m.PartialReason)
	}
	return nil
}

// explainEval prints the model outcome attached for id, when present.
func (m *Manifest) explainEval(w io.Writer, id string) {
	for _, e := range m.Evaluations {
		if e.PathID == id {
			best := ""
			if m.BestPath == id {
				best = "  (best)"
			}
			fmt.Fprintf(w, "model: %s  accuracy=%.4f auc=%.4f f1=%.4f%s\n",
				e.Model, e.Accuracy, e.AUC, e.F1, best)
			return
		}
	}
}
