package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"autofeat/internal/discovery"
	"autofeat/internal/errs"
	"autofeat/internal/frame"
	"autofeat/internal/ml"
	"autofeat/internal/relational"
	"autofeat/internal/telemetry"
)

// faultCfg returns the deterministic configuration the fault tests share:
// sequential-equivalent at any worker count, no sampling noise.
func faultCfg(workers int) Config {
	cfg := DefaultConfig()
	cfg.NormalizeJoins = true
	cfg.Workers = workers
	cfg.SampleSize = 0
	return cfg
}

// TestFailingJoinPrunesOnePath injects a joinFn that fails every join into
// one table and checks that exactly those paths are pruned as join_failed —
// deterministically at every worker count — while the rest of the search
// proceeds.
func TestFailingJoinPrunesOnePath(t *testing.T) {
	var want string
	for _, workers := range []int{1, 8} {
		g := testLake(t, 200)
		cfg := faultCfg(workers)
		cfg.joinFn = func(left, right *frame.Frame, leftKey, rightKey string, opt relational.Options) (*relational.Result, error) {
			if right.Name() == "gold" {
				return nil, fmt.Errorf("injected fault joining %q", right.Name())
			}
			return relational.LeftJoin(left, right, leftKey, rightKey, opt)
		}
		d, err := New(g, "base", "y", cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := d.Run()
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if r.Partial {
			t.Fatalf("Workers=%d: a failing join must prune, not truncate: %+v", workers, r.Prune)
		}
		if r.Prune.JoinFailed == 0 {
			t.Fatalf("Workers=%d: expected join_failed prunes, got %+v", workers, r.Prune)
		}
		for _, p := range r.Paths {
			for _, e := range p.Edges {
				if e.B == "gold" {
					t.Fatalf("Workers=%d: path through failing table survived: %v", workers, p.Edges)
				}
			}
		}
		got := rankingJSON(t, r)
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("Workers=%d ranking differs under injected join failure:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestPanickingJoinDegrades injects a joinFn that panics and checks the
// panic is contained to a join_failed prune of that path (counted under
// discovery.join_panics) instead of crashing the worker pool.
func TestPanickingJoinDegrades(t *testing.T) {
	var want string
	for _, workers := range []int{1, 8} {
		g := testLake(t, 200)
		tel := telemetry.New()
		cfg := faultCfg(workers)
		cfg.Telemetry = tel
		cfg.joinFn = func(left, right *frame.Frame, leftKey, rightKey string, opt relational.Options) (*relational.Result, error) {
			if right.Name() == "bridge" {
				panic("injected join panic")
			}
			return relational.LeftJoin(left, right, leftKey, rightKey, opt)
		}
		d, err := New(g, "base", "y", cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := d.Run()
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if r.Prune.JoinFailed == 0 {
			t.Fatalf("Workers=%d: panicking join not folded into join_failed: %+v", workers, r.Prune)
		}
		snap := tel.Snapshot()
		if snap.Counters[telemetry.CtrJoinPanics] == 0 {
			t.Fatalf("Workers=%d: %s counter not incremented", workers, telemetry.CtrJoinPanics)
		}
		got := rankingJSON(t, r)
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("Workers=%d ranking differs under injected panic:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestCancelledRunReturnsDeterministicPartial cancels the context from
// inside the join shim after the whole first BFS depth has been evaluated
// (the lake's depth 0 enumerates exactly two joins). The second depth is
// then discarded wholesale, so the partial ranking must contain exactly
// the depth-0 paths and be bit-identical at every worker count.
func TestCancelledRunReturnsDeterministicPartial(t *testing.T) {
	var want string
	for _, workers := range []int{1, 8} {
		g := testLake(t, 200)
		tel := telemetry.New()
		cfg := faultCfg(workers)
		cfg.Telemetry = tel
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var calls atomic.Int64
		cfg.joinFn = func(left, right *frame.Frame, leftKey, rightKey string, opt relational.Options) (*relational.Result, error) {
			if calls.Add(1) > 2 {
				// Depth 0 is complete; stop the run during depth 1.
				cancel()
			}
			return relational.LeftJoin(left, right, leftKey, rightKey, opt)
		}
		d, err := New(g, "base", "y", cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := d.RunContext(ctx)
		if err != nil {
			t.Fatalf("Workers=%d: cancellation must degrade, not error: %v", workers, err)
		}
		if !r.Partial || r.PartialReason != "cancelled" {
			t.Fatalf("Workers=%d: Partial=%v reason=%q, want partial/cancelled", workers, r.Partial, r.PartialReason)
		}
		if r.Prune.Cancelled == 0 {
			t.Fatalf("Workers=%d: discarded depth not counted: %+v", workers, r.Prune)
		}
		if len(r.Paths) == 0 {
			t.Fatalf("Workers=%d: completed depth 0 must survive the cancellation", workers)
		}
		for _, p := range r.Paths {
			if len(p.Edges) != 1 {
				t.Fatalf("Workers=%d: depth-1 path leaked into the partial ranking: %v", workers, p.Edges)
			}
		}
		snap := tel.Snapshot()
		if snap.Counters[telemetry.PrunedCounter(telemetry.PruneCancelled)] == 0 {
			t.Fatalf("Workers=%d: cancelled prune reason missing from telemetry", workers)
		}
		if snap.Counters[telemetry.CtrPartialRuns] != 1 {
			t.Fatalf("Workers=%d: partial_runs = %d, want 1", workers, snap.Counters[telemetry.CtrPartialRuns])
		}
		got := rankingJSON(t, r)
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("Workers=%d partial ranking differs:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestAlreadyCancelledRunReturnsEmptyPartial hands RunContext a context
// that is already done: the run must return an empty, Partial ranking —
// not an error — without evaluating anything.
func TestAlreadyCancelledRunReturnsEmptyPartial(t *testing.T) {
	g := testLake(t, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d, err := New(g, "base", "y", faultCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.RunContext(ctx)
	if err != nil {
		t.Fatalf("pre-cancelled context must degrade, not error: %v", err)
	}
	if !r.Partial || r.PartialReason != "cancelled" {
		t.Fatalf("Partial=%v reason=%q, want partial/cancelled", r.Partial, r.PartialReason)
	}
	if len(r.Paths) != 0 || r.PathsExplored != 0 {
		t.Fatalf("pre-cancelled run evaluated joins: %d paths, %d explored", len(r.Paths), r.PathsExplored)
	}
}

// TestTimeoutReturnsPartial makes every join slow and sets Config.Timeout
// below the first join's cost: the deadline must surface as a Partial
// ranking with reason "deadline" rather than an error.
func TestTimeoutReturnsPartial(t *testing.T) {
	g := testLake(t, 100)
	cfg := faultCfg(2)
	cfg.Timeout = 20 * time.Millisecond
	cfg.joinFn = func(left, right *frame.Frame, leftKey, rightKey string, opt relational.Options) (*relational.Result, error) {
		time.Sleep(50 * time.Millisecond)
		return relational.LeftJoin(left, right, leftKey, rightKey, opt)
	}
	d, err := New(g, "base", "y", cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Run()
	if err != nil {
		t.Fatalf("deadline must degrade, not error: %v", err)
	}
	if !r.Partial || r.PartialReason != "deadline" {
		t.Fatalf("Partial=%v reason=%q, want partial/deadline", r.Partial, r.PartialReason)
	}
}

// TestSlowJoinAbortedByDeadline checks the cooperative checkpoint inside
// the join row loop itself: a join already running when the deadline
// expires returns an ErrCancelled-matching error instead of completing.
func TestSlowJoinAbortedByDeadline(t *testing.T) {
	g := testLake(t, 50_000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	base := g.Table("base").Prefixed("base")
	_, err := relational.LeftJoin(base, g.Table("bridge"), "base.id", "pid", relational.Options{Ctx: ctx})
	if err == nil {
		t.Fatal("cancelled context did not abort the join")
	}
	if !errors.Is(err, errs.ErrCancelled) {
		t.Fatalf("join abort error %v does not match ErrCancelled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("join abort error %v lost the context cause", err)
	}
}

// TestMaxEvalJoinsBudget exhausts the join budget mid-traversal: the lake
// enumerates two joins at depth 0 and one at depth 1, so a budget of 2
// evaluates depth 0 in full and skips depth 1 under budget_exhausted,
// deterministically at every worker count.
func TestMaxEvalJoinsBudget(t *testing.T) {
	var want string
	for _, workers := range []int{1, 8} {
		g := testLake(t, 200)
		tel := telemetry.New()
		cfg := faultCfg(workers)
		cfg.Telemetry = tel
		cfg.MaxEvalJoins = 2
		d, err := New(g, "base", "y", cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := d.Run()
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if !r.Partial || r.PartialReason != "max_eval_joins" {
			t.Fatalf("Workers=%d: Partial=%v reason=%q, want partial/max_eval_joins", workers, r.Partial, r.PartialReason)
		}
		if r.PathsExplored != 2 {
			t.Fatalf("Workers=%d: explored %d joins, budget was 2", workers, r.PathsExplored)
		}
		if r.Prune.BudgetExhausted != 1 {
			t.Fatalf("Workers=%d: budget_exhausted = %d, want 1", workers, r.Prune.BudgetExhausted)
		}
		if got := tel.Snapshot().Counters[telemetry.PrunedCounter(telemetry.PruneBudgetExhausted)]; got != 1 {
			t.Fatalf("Workers=%d: telemetry budget_exhausted = %d, want 1", workers, got)
		}
		got := rankingJSON(t, r)
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("Workers=%d budget-truncated ranking differs:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestMaxJoinedRowsBudget bounds the cumulative joined rows: each join in
// the 200-row lake (SampleSize=0) contributes 200 rows, so a budget of 300
// admits exactly one join before flagging the rest budget_exhausted.
func TestMaxJoinedRowsBudget(t *testing.T) {
	var want string
	for _, workers := range []int{1, 8} {
		g := testLake(t, 200)
		cfg := faultCfg(workers)
		cfg.MaxJoinedRows = 300
		d, err := New(g, "base", "y", cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := d.Run()
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		if !r.Partial || r.PartialReason != "max_joined_rows" {
			t.Fatalf("Workers=%d: Partial=%v reason=%q, want partial/max_joined_rows", workers, r.Partial, r.PartialReason)
		}
		if r.PathsExplored != 1 {
			t.Fatalf("Workers=%d: explored %d joins, row budget admits 1", workers, r.PathsExplored)
		}
		if r.Prune.BudgetExhausted != 1 {
			t.Fatalf("Workers=%d: budget_exhausted = %d, want 1", workers, r.Prune.BudgetExhausted)
		}
		got := rankingJSON(t, r)
		if workers == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("Workers=%d row-budget ranking differs:\n%s\nvs\n%s", workers, got, want)
		}
	}
}

// TestAugmentContextCancelledStillReturnsBase is the end-to-end floor
// guarantee: even with the context cancelled before the run starts,
// AugmentContext returns the base-table evaluation (flagged Partial)
// instead of an error.
func TestAugmentContextCancelledStillReturnsBase(t *testing.T) {
	g := testLake(t, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d, err := New(g, "base", "y", faultCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	factory, _ := ml.FactoryByName("knn")
	res, err := d.AugmentContext(ctx, factory)
	if err != nil {
		t.Fatalf("cancelled Augment must degrade, not error: %v", err)
	}
	if !res.Partial {
		t.Fatal("cancelled Augment result not flagged Partial")
	}
	if len(res.Evaluated) != 1 || len(res.Best.Path.Edges) != 0 {
		t.Fatalf("expected exactly the base candidate, got %d evaluations, best=%v",
			len(res.Evaluated), res.Best.Path.Edges)
	}
	if res.Table == nil || len(res.Features) == 0 {
		t.Fatal("base evaluation missing table or features")
	}
}

// TestDegenerateMatcherShim drives the offline phase through
// discovery.DiscoverDRG's injectable matcher with pathological settings
// (no evidence sources, one sampled value): the DRG degrades to fewer or
// no edges, and discovery over it still completes with the base-only
// result rather than failing.
func TestDegenerateMatcherShim(t *testing.T) {
	g := testLake(t, 100)
	var tables []*frame.Frame
	for _, name := range []string{"base", "bridge", "gold", "junk"} {
		tables = append(tables, g.Table(name))
	}
	shim := &discovery.Matcher{NameWeight: 0, InstanceWeight: 0, MaxValues: 1}
	dg, err := discovery.DiscoverDRG(tables, 0.55, shim)
	if err != nil {
		t.Fatalf("degenerate matcher must degrade, not error: %v", err)
	}
	if dg.NumEdges() != 0 {
		t.Fatalf("zero-weight matcher produced %d edges", dg.NumEdges())
	}
	d, err := New(dg, "base", "y", faultCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Run()
	if err != nil {
		t.Fatalf("discovery over an edgeless DRG failed: %v", err)
	}
	if len(r.Paths) != 0 || r.Partial {
		t.Fatalf("edgeless DRG should yield an empty, complete ranking; got %d paths partial=%v", len(r.Paths), r.Partial)
	}
}
