package core

import (
	"math/rand"
	"strings"
	"testing"

	"autofeat/internal/frame"
	"autofeat/internal/fselect"
	"autofeat/internal/graph"
	"autofeat/internal/ml"
	"autofeat/internal/telemetry"
)

// testLake builds a small lake where the predictive feature lives two hops
// from the base table:
//
//	base(id, noise, y) --id/pid--> bridge(pid, ref) --ref/key--> gold(key, signal)
//	base --id/junk_id--> junk(junk_id half-overlapping, random values)
//
// signal determines y, so AutoFeat must walk the 2-hop path to win.
func testLake(t *testing.T, n int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	ids := make([]int64, n)
	noise := make([]float64, n)
	y := make([]int64, n)
	pid := make([]int64, n)
	ref := make([]int64, n)
	key := make([]int64, n)
	signal := make([]float64, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		noise[i] = rng.NormFloat64()
		y[i] = int64(i % 2)
		pid[i] = int64(i)
		ref[i] = int64(i + 1000)
		key[i] = int64(i + 1000)
		signal[i] = float64(y[i])*3 + rng.NormFloat64()*0.5
	}
	base := frame.New("base")
	addCol(t, base, frame.NewIntColumn("id", ids, nil))
	addCol(t, base, frame.NewFloatColumn("noise", noise, nil))
	addCol(t, base, frame.NewIntColumn("y", y, nil))

	bridge := frame.New("bridge")
	addCol(t, bridge, frame.NewIntColumn("pid", pid, nil))
	addCol(t, bridge, frame.NewIntColumn("ref", ref, nil))

	gold := frame.New("gold")
	addCol(t, gold, frame.NewIntColumn("key", key, nil))
	addCol(t, gold, frame.NewFloatColumn("signal", signal, nil))

	// junk joins on only 10% of base ids -> completeness ~0.1 < τ.
	junkIDs := make([]int64, n/10)
	junkVals := make([]float64, n/10)
	for i := range junkIDs {
		junkIDs[i] = int64(i)
		junkVals[i] = rng.NormFloat64()
	}
	junk := frame.New("junk")
	addCol(t, junk, frame.NewIntColumn("junk_id", junkIDs, nil))
	addCol(t, junk, frame.NewFloatColumn("junk_val", junkVals, nil))

	g := graph.New()
	for _, f := range []*frame.Frame{base, bridge, gold, junk} {
		g.AddTable(f)
	}
	mustEdge(t, g, graph.Edge{A: "base", B: "bridge", ColA: "id", ColB: "pid", Weight: 1, KFK: true})
	mustEdge(t, g, graph.Edge{A: "bridge", B: "gold", ColA: "ref", ColB: "key", Weight: 1, KFK: true})
	mustEdge(t, g, graph.Edge{A: "base", B: "junk", ColA: "id", ColB: "junk_id", Weight: 0.6})
	return g
}

func addCol(t *testing.T, f *frame.Frame, c *frame.Column) {
	t.Helper()
	if err := f.AddColumn(c); err != nil {
		t.Fatal(err)
	}
}

func mustEdge(t *testing.T, g *graph.Graph, e graph.Edge) {
	t.Helper()
	if err := g.AddEdge(e); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	g := testLake(t, 100)
	if _, err := New(g, "ghost", "y", DefaultConfig()); err == nil {
		t.Fatal("unknown base must fail")
	}
	if _, err := New(g, "base", "ghost", DefaultConfig()); err == nil {
		t.Fatal("unknown label must fail")
	}
	bad := DefaultConfig()
	bad.Tau = 2
	if _, err := New(g, "base", "y", bad); err == nil {
		t.Fatal("tau out of range must fail")
	}
	bad = DefaultConfig()
	bad.Kappa = 0
	if _, err := New(g, "base", "y", bad); err == nil {
		t.Fatal("kappa < 1 must fail")
	}
	bad = DefaultConfig()
	bad.TopK = 0
	if _, err := New(g, "base", "y", bad); err == nil {
		t.Fatal("topK < 1 must fail")
	}
	bad = DefaultConfig()
	bad.MaxDepth = 0
	if _, err := New(g, "base", "y", bad); err == nil {
		t.Fatal("maxDepth < 1 must fail")
	}
}

func TestRunFindsTransitivePath(t *testing.T) {
	g := testLake(t, 500)
	d, err := New(g, "base", "y", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Paths) == 0 {
		t.Fatal("no paths found")
	}
	best := r.Paths[0]
	if len(best.Edges) != 2 {
		t.Fatalf("best path must be 2 hops (via bridge to gold), got %v", best)
	}
	if best.Edges[1].B != "gold" {
		t.Fatalf("best path must end at gold: %v", best)
	}
	foundSignal := false
	for _, f := range best.Features {
		if f == "gold.signal" {
			foundSignal = true
		}
	}
	if !foundSignal {
		t.Fatalf("gold.signal must be selected: %v", best.Features)
	}
	if best.Score <= 0 {
		t.Fatalf("best score must be positive: %v", best.Score)
	}
	if r.SelectionTime <= 0 {
		t.Fatal("selection time must be recorded")
	}
}

func TestRunPrunesLowQualityJoin(t *testing.T) {
	g := testLake(t, 500)
	d, _ := New(g, "base", "y", DefaultConfig())
	r, _ := d.Run()
	for _, p := range r.Paths {
		for _, e := range p.Edges {
			if e.B == "junk" {
				t.Fatalf("junk (10%% overlap) must be pruned by τ=0.65: %v", p)
			}
		}
	}
	if r.PathsPruned == 0 {
		t.Fatal("the junk join must be counted as pruned")
	}
	if r.PathsExplored <= len(r.Paths) {
		t.Fatal("explored must exceed surviving paths")
	}
}

func TestRunTauZeroKeepsJunk(t *testing.T) {
	g := testLake(t, 500)
	cfg := DefaultConfig()
	cfg.Tau = 0.05
	d, _ := New(g, "base", "y", cfg)
	r, _ := d.Run()
	foundJunk := false
	for _, p := range r.Paths {
		for _, e := range p.Edges {
			if e.B == "junk" {
				foundJunk = true
			}
		}
	}
	if !foundJunk {
		t.Fatal("with τ=0.05 the junk path must survive")
	}
}

func TestRunMaxDepthOne(t *testing.T) {
	g := testLake(t, 300)
	cfg := DefaultConfig()
	cfg.MaxDepth = 1
	d, _ := New(g, "base", "y", cfg)
	r, _ := d.Run()
	for _, p := range r.Paths {
		if len(p.Edges) > 1 {
			t.Fatalf("maxDepth=1 must only yield single-hop paths: %v", p)
		}
	}
}

func TestRunMaxPathsCap(t *testing.T) {
	g := testLake(t, 300)
	cfg := DefaultConfig()
	cfg.MaxPaths = 1
	d, _ := New(g, "base", "y", cfg)
	r, _ := d.Run()
	if r.PathsExplored > 1 {
		t.Fatalf("MaxPaths=1 must stop after one join, explored %d", r.PathsExplored)
	}
}

func TestRunDeterminism(t *testing.T) {
	g := testLake(t, 300)
	d1, _ := New(g, "base", "y", DefaultConfig())
	d2, _ := New(g, "base", "y", DefaultConfig())
	r1, _ := d1.Run()
	r2, _ := d2.Run()
	if len(r1.Paths) != len(r2.Paths) {
		t.Fatal("same seed must give same path count")
	}
	for i := range r1.Paths {
		if r1.Paths[i].Score != r2.Paths[i].Score || r1.Paths[i].String() != r2.Paths[i].String() {
			t.Fatalf("path %d differs between runs", i)
		}
	}
}

func TestSimilarityPruningKeepsTopEdge(t *testing.T) {
	g := testLake(t, 200)
	// Add a second, weaker parallel edge base->bridge.
	mustEdge(t, g, graph.Edge{A: "base", B: "bridge", ColA: "noise", ColB: "pid", Weight: 0.3})
	d, _ := New(g, "base", "y", DefaultConfig())
	edges, pruned := d.candidateEdges("base", "bridge")
	if len(edges) != 1 || edges[0].Weight != 1 {
		t.Fatalf("similarity pruning must keep only the weight-1 edge: %v", edges)
	}
	if pruned != 1 {
		t.Fatalf("one parallel edge must be counted as similarity-pruned, got %d", pruned)
	}
	cfg := DefaultConfig()
	cfg.SimilarityPruning = false
	d2, _ := New(g, "base", "y", cfg)
	if got, p := d2.candidateEdges("base", "bridge"); len(got) != 2 || p != 0 {
		t.Fatalf("without pruning both edges survive: %v (pruned %d)", got, p)
	}
}

func TestSimilarityPruningTieKeepsBoth(t *testing.T) {
	g := testLake(t, 200)
	mustEdge(t, g, graph.Edge{A: "base", B: "bridge", ColA: "id", ColB: "ref", Weight: 1})
	d, _ := New(g, "base", "y", DefaultConfig())
	if got, p := d.candidateEdges("base", "bridge"); len(got) != 2 || p != 0 {
		t.Fatalf("equal top scores are individual paths: %v (pruned %d)", got, p)
	}
}

func TestAugmentImprovesOverBase(t *testing.T) {
	g := testLake(t, 600)
	d, _ := New(g, "base", "y", DefaultConfig())
	factory, _ := ml.FactoryByName("lightgbm")
	res, err := d.Augment(factory)
	if err != nil {
		t.Fatal(err)
	}
	// Base-only evaluation is always candidate 0.
	baseAcc := res.Evaluated[0].Eval.Accuracy
	if res.Best.Eval.Accuracy < baseAcc {
		t.Fatalf("best (%v) must be >= base (%v)", res.Best.Eval.Accuracy, baseAcc)
	}
	if res.Best.Eval.Accuracy < 0.85 {
		t.Fatalf("augmented accuracy %.3f too low; gold.signal should be decisive", res.Best.Eval.Accuracy)
	}
	if baseAcc > 0.7 {
		t.Fatalf("base (noise only) accuracy %.3f suspiciously high", baseAcc)
	}
	if len(res.Best.Path.Edges) != 2 {
		t.Fatalf("winning path must be the 2-hop one: %v", res.Best.Path)
	}
	if !res.Table.HasColumn("gold.signal") {
		t.Fatal("augmented table must contain the transitive feature")
	}
	has := false
	for _, f := range res.Features {
		if f == "gold.signal" {
			has = true
		}
	}
	if !has {
		t.Fatalf("trained features must include gold.signal: %v", res.Features)
	}
	if res.TotalTime < res.SelectionTime {
		t.Fatal("total time must include selection time")
	}
}

func TestAugmentRowCountPreserved(t *testing.T) {
	g := testLake(t, 400)
	d, _ := New(g, "base", "y", DefaultConfig())
	factory, _ := ml.FactoryByName("randomforest")
	res, err := d.Augment(factory)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() != 400 {
		t.Fatalf("augmented table has %d rows, want 400 (left joins preserve)", res.Table.NumRows())
	}
	dist, _ := res.Table.ClassDistribution("base.y")
	if dist[0] != 200 || dist[1] != 200 {
		t.Fatalf("label distribution changed: %v", dist)
	}
}

func TestAblationConfigurations(t *testing.T) {
	g := testLake(t, 300)
	variants := []Config{
		DefaultConfig(), // spearman + mrmr
		func() Config {
			c := DefaultConfig()
			c.Relevance = fselect.PearsonRelevance{}
			c.Redundancy = fselect.NewJMI()
			return c
		}(),
		func() Config {
			c := DefaultConfig()
			c.Redundancy = nil // relevance-only
			return c
		}(),
		func() Config {
			c := DefaultConfig()
			c.Relevance = nil // redundancy-only
			return c
		}(),
	}
	for i, cfg := range variants {
		d, err := New(g, "base", "y", cfg)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		r, err := d.Run()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if len(r.Paths) == 0 {
			t.Fatalf("variant %d found no paths", i)
		}
	}
}

func TestComputeScore(t *testing.T) {
	if got := computeScore(nil, nil); got != 0 {
		t.Fatalf("empty scores -> 0, got %v", got)
	}
	if got := computeScore([]float64{0.8, 0.6}, nil); got != 0.35 {
		t.Fatalf("rel-only score = %v, want 0.35", got)
	}
	if got := computeScore([]float64{1}, []float64{0.5}); got != 0.75 {
		t.Fatalf("combined score = %v, want 0.75", got)
	}
}

func TestRankedPathString(t *testing.T) {
	p := RankedPath{Score: 0.5}
	if !strings.Contains(p.String(), "base only") {
		t.Fatal("empty path rendering")
	}
	p2 := RankedPath{
		Edges: []graph.Edge{{A: "a", ColA: "x", B: "b", ColB: "y"}},
		Score: 0.7, Features: []string{"b.f"},
	}
	s := p2.String()
	if !strings.Contains(s, "a.x -> b.y") || !strings.Contains(s, "1 features") {
		t.Fatalf("path rendering: %s", s)
	}
	if tabs := p2.Tables(); len(tabs) != 1 || tabs[0] != "b" {
		t.Fatalf("Tables = %v", tabs)
	}
}

func TestTopK(t *testing.T) {
	r := &Ranking{Paths: []RankedPath{{Score: 3}, {Score: 2}, {Score: 1}}}
	if got := r.TopK(2); len(got) != 2 || got[0].Score != 3 {
		t.Fatalf("TopK(2) = %v", got)
	}
	if got := r.TopK(10); len(got) != 3 {
		t.Fatalf("TopK beyond length clamps: %v", got)
	}
	if got := r.TopK(-1); len(got) != 0 {
		t.Fatalf("TopK(-1) must clamp to empty, got %v", got)
	}
	if got := r.TopK(0); len(got) != 0 {
		t.Fatalf("TopK(0) = %v, want empty", got)
	}
}

func TestExpandNeverJoinsOnLabel(t *testing.T) {
	g := testLake(t, 200)
	// Add an edge that would join base on its LABEL column.
	mustEdge(t, g, graph.Edge{A: "base", B: "gold", ColA: "y", ColB: "key", Weight: 0.9})
	d, _ := New(g, "base", "y", DefaultConfig())
	r, _ := d.Run()
	for _, p := range r.Paths {
		for _, e := range p.Edges {
			if e.A == "base" && e.ColA == "y" {
				t.Fatalf("label column used as join key: %v", p)
			}
		}
	}
}

func TestPerPathRedundancyIsolation(t *testing.T) {
	// Two branches from the base carry the SAME signal: branchA holds the
	// original, branchB a monotone copy. With per-path R_sel each branch
	// must keep its own feature; a global R_sel would reject whichever is
	// visited second.
	n := 400
	rng := rand.New(rand.NewSource(77))
	ids := make([]int64, n)
	y := make([]int64, n)
	sig := make([]float64, n)
	cpy := make([]float64, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		y[i] = int64(i % 2)
		sig[i] = float64(y[i])*3 + rng.NormFloat64()*0.5
		cpy[i] = sig[i]*2 + 1
	}
	base := frame.New("base")
	addCol(t, base, frame.NewIntColumn("id", ids, nil))
	addCol(t, base, frame.NewIntColumn("y", y, nil))
	branchA := frame.New("brancha")
	addCol(t, branchA, frame.NewIntColumn("ka", ids, nil))
	addCol(t, branchA, frame.NewFloatColumn("sig", sig, nil))
	branchB := frame.New("branchb")
	addCol(t, branchB, frame.NewIntColumn("kb", ids, nil))
	addCol(t, branchB, frame.NewFloatColumn("sigcopy", cpy, nil))
	g := graph.New()
	g.AddTable(base)
	g.AddTable(branchA)
	g.AddTable(branchB)
	mustEdge(t, g, graph.Edge{A: "base", B: "brancha", ColA: "id", ColB: "ka", Weight: 1, KFK: true})
	mustEdge(t, g, graph.Edge{A: "base", B: "branchb", ColA: "id", ColB: "kb", Weight: 1, KFK: true})
	cfg := DefaultConfig()
	cfg.MaxDepth = 1
	d, _ := New(g, "base", "y", cfg)
	r, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	kept := map[string]bool{}
	for _, p := range r.Paths {
		for _, f := range p.Features {
			kept[f] = true
		}
	}
	if !kept["brancha.sig"] || !kept["branchb.sigcopy"] {
		t.Fatalf("each branch must keep its own copy of the signal: %v", kept)
	}
}

func TestBeamWidthLimitsFrontier(t *testing.T) {
	g := testLake(t, 300)
	// Widen the lake: several parallel two-level branches off the base,
	// so exhaustive BFS pays for exploring each one at depth 2.
	for i := 0; i < 4; i++ {
		name := "extra" + string(rune('a'+i))
		tab := frame.New(name)
		leaf := frame.New(name + "leaf")
		ids := make([]int64, 300)
		vals := make([]float64, 300)
		for j := range ids {
			ids[j] = int64(j)
			vals[j] = float64(j % 7)
		}
		addCol(t, tab, frame.NewIntColumn("k", ids, nil))
		addCol(t, tab, frame.NewIntColumn("leafref", ids, nil))
		addCol(t, leaf, frame.NewIntColumn("lk", ids, nil))
		addCol(t, leaf, frame.NewFloatColumn("v", vals, nil))
		g.AddTable(tab)
		g.AddTable(leaf)
		mustEdge(t, g, graph.Edge{A: "base", B: name, ColA: "id", ColB: "k", Weight: 1, KFK: true})
		mustEdge(t, g, graph.Edge{A: name, B: name + "leaf", ColA: "leafref", ColB: "lk", Weight: 1, KFK: true})
	}
	full := DefaultConfig()
	dFull, _ := New(g, "base", "y", full)
	rFull, _ := dFull.Run()

	beam := DefaultConfig()
	beam.BeamWidth = 1
	dBeam, _ := New(g, "base", "y", beam)
	rBeam, _ := dBeam.Run()

	if rBeam.PathsExplored >= rFull.PathsExplored {
		t.Fatalf("beam must explore fewer joins: %d vs %d", rBeam.PathsExplored, rFull.PathsExplored)
	}
	// The golden 2-hop path must survive beaming (it scores highest).
	if len(rBeam.Paths) == 0 || rBeam.Paths[0].Edges[len(rBeam.Paths[0].Edges)-1].B != "gold" {
		t.Fatalf("beam lost the golden path: %v", rBeam.Paths)
	}
}

func TestPruneStatsBreakdown(t *testing.T) {
	g := testLake(t, 500)
	d, _ := New(g, "base", "y", DefaultConfig())
	r, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Prune.QualityBelowTau == 0 {
		t.Fatalf("junk join must be counted under quality_below_tau: %+v", r.Prune)
	}
	if got, want := r.Prune.Discarded(), r.PathsExplored-len(r.Paths); got != want {
		t.Fatalf("Discarded() = %d, want PathsExplored-len(Paths) = %d (%+v)", got, want, r.Prune)
	}
	if r.PathsPruned != r.Prune.Discarded() {
		t.Fatalf("PathsPruned (%d) must stay the sum of discard reasons (%d)", r.PathsPruned, r.Prune.Discarded())
	}
	if r.Prune.Total() < r.Prune.Discarded() {
		t.Fatalf("Total() must include every reason: %+v", r.Prune)
	}
}

func TestSimilarityPruneCounted(t *testing.T) {
	g := testLake(t, 200)
	// A weaker parallel edge base->bridge is similarity-pruned, never
	// explored, and must be counted as such.
	mustEdge(t, g, graph.Edge{A: "base", B: "bridge", ColA: "noise", ColB: "pid", Weight: 0.3})
	d, _ := New(g, "base", "y", DefaultConfig())
	r, _ := d.Run()
	if r.Prune.Similarity == 0 {
		t.Fatalf("parallel edge must be counted as similarity-pruned: %+v", r.Prune)
	}
	// Similarity prunes are search-space truncation, not discarded paths.
	if got, want := r.Prune.Discarded(), r.PathsExplored-len(r.Paths); got != want {
		t.Fatalf("Discarded() = %d, want %d", got, want)
	}
}

func TestBeamEvictionsCounted(t *testing.T) {
	g := testLake(t, 300)
	cfg := DefaultConfig()
	cfg.BeamWidth = 1
	d, _ := New(g, "base", "y", cfg)
	r, _ := d.Run()
	// Depth 1 expands bridge and (with tau low enough) more; with the
	// default lake only bridge survives depth 1, so force eviction by
	// lowering tau so junk survives too.
	if r.Prune.BeamEvicted == 0 {
		cfg.Tau = 0.05
		d2, _ := New(g, "base", "y", cfg)
		r2, _ := d2.Run()
		if r2.Prune.BeamEvicted == 0 {
			t.Fatalf("beam width 1 must evict surplus states: %+v", r2.Prune)
		}
		r = r2
	}
	// Evicted states keep their ranked paths: eviction must not change
	// the Discarded invariant.
	if got, want := r.Prune.Discarded(), r.PathsExplored-len(r.Paths); got != want {
		t.Fatalf("Discarded() = %d, want %d (%+v)", got, want, r.Prune)
	}
}

func TestMaxPathsClampAcrossNeighbors(t *testing.T) {
	// Several neighbours off the base: the cap must stop evaluation
	// consistently across all of them, not just exit one edge loop.
	g := testLake(t, 300)
	for i := 0; i < 3; i++ {
		name := "side" + string(rune('a'+i))
		tab := frame.New(name)
		ids := make([]int64, 300)
		vals := make([]float64, 300)
		for j := range ids {
			ids[j] = int64(j)
			vals[j] = float64(j % 5)
		}
		addCol(t, tab, frame.NewIntColumn("k", ids, nil))
		addCol(t, tab, frame.NewFloatColumn("v", vals, nil))
		g.AddTable(tab)
		mustEdge(t, g, graph.Edge{A: "base", B: name, ColA: "id", ColB: "k", Weight: 1, KFK: true})
	}
	for _, cap := range []int{1, 2, 3} {
		cfg := DefaultConfig()
		cfg.MaxPaths = cap
		d, _ := New(g, "base", "y", cfg)
		r, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		if r.PathsExplored > cap {
			t.Fatalf("MaxPaths=%d overshot: explored %d", cap, r.PathsExplored)
		}
		// base has 5 outgoing edges (bridge, junk, sidea..sidec); the cap
		// leaves the rest unevaluated and counted.
		if want := 5 - cap; r.Prune.MaxPathsCap != want {
			t.Fatalf("MaxPaths=%d: MaxPathsCap = %d, want %d", cap, r.Prune.MaxPathsCap, want)
		}
		if got, want := r.Prune.Discarded(), r.PathsExplored-len(r.Paths); got != want {
			t.Fatalf("MaxPaths=%d: Discarded() = %d, want %d", cap, got, want)
		}
	}
}

func TestTelemetryIntegration(t *testing.T) {
	g := testLake(t, 400)
	cfg := DefaultConfig()
	tel := telemetry.New()
	cfg.Telemetry = tel
	d, _ := New(g, "base", "y", cfg)
	r, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	snap := tel.Snapshot()

	// One evaluate_join span per evaluated join, nested under its BFS
	// depth span; every left_join nested under an evaluate_join.
	byID := map[int]telemetry.SpanRecord{}
	for _, sp := range snap.Spans {
		byID[sp.ID] = sp
	}
	joinSpans := 0
	for _, sp := range snap.Spans {
		switch sp.Name {
		case telemetry.SpanJoinEval:
			joinSpans++
			if byID[sp.Parent].Name != telemetry.SpanDepth {
				t.Fatalf("evaluate_join must nest under a depth span, got %q", byID[sp.Parent].Name)
			}
		case telemetry.SpanLeftJoin:
			if byID[sp.Parent].Name != telemetry.SpanJoinEval {
				t.Fatalf("left_join must nest under evaluate_join, got %q", byID[sp.Parent].Name)
			}
		}
		if sp.DurUS < 0 {
			t.Fatalf("span %s left open", sp.Name)
		}
	}
	if joinSpans != r.PathsExplored {
		t.Fatalf("want one evaluate_join span per explored path: %d spans, %d explored", joinSpans, r.PathsExplored)
	}

	// Counters mirror the ranking, and the pruning breakdown of
	// discarded-path reasons sums to PathsExplored - len(Paths).
	if got := snap.Counters[telemetry.CtrPathsExplored]; got != int64(r.PathsExplored) {
		t.Fatalf("paths_explored counter = %d, want %d", got, r.PathsExplored)
	}
	if got := snap.Counters[telemetry.CtrPathsKept]; got != int64(len(r.Paths)) {
		t.Fatalf("paths_kept counter = %d, want %d", got, len(r.Paths))
	}
	p := snap.Pruning()
	discarded := p[telemetry.PruneJoinFailed] + p[telemetry.PruneQualityBelowTau]
	if discarded != int64(r.PathsExplored-len(r.Paths)) {
		t.Fatalf("pruning breakdown sum %d != explored-kept %d (%v)", discarded, r.PathsExplored-len(r.Paths), p)
	}

	// Per-phase duration histograms must have been fed.
	for _, h := range []string{telemetry.HistJoinSeconds, telemetry.HistRelevanceSeconds, telemetry.HistRedundancySeconds} {
		if snap.Histograms[h].Count == 0 {
			t.Fatalf("histogram %s empty", h)
		}
	}
	if snap.Gauges[telemetry.GaugeSelectionSeconds] <= 0 {
		t.Fatal("selection_seconds gauge not set")
	}

	// Telemetry must not perturb the algorithm: a disabled run produces
	// the identical ranking.
	d2, _ := New(g, "base", "y", DefaultConfig())
	r2, _ := d2.Run()
	if len(r2.Paths) != len(r.Paths) || r2.PathsExplored != r.PathsExplored {
		t.Fatalf("telemetry changed the run: %d/%d paths, %d/%d explored",
			len(r.Paths), len(r2.Paths), r.PathsExplored, r2.PathsExplored)
	}
	for i := range r.Paths {
		if r.Paths[i].Score != r2.Paths[i].Score {
			t.Fatalf("path %d score differs with telemetry on", i)
		}
	}
}

func TestTelemetryAugmentSpans(t *testing.T) {
	g := testLake(t, 300)
	cfg := DefaultConfig()
	tel := telemetry.New()
	cfg.Telemetry = tel
	d, _ := New(g, "base", "y", cfg)
	factory, _ := ml.FactoryByName("lightgbm")
	res, err := d.Augment(factory)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, sp := range tel.Snapshot().Spans {
		counts[sp.Name]++
	}
	// Base-only candidate plus every evaluated top-k path gets one
	// materialise + one train span.
	if want := len(res.Evaluated); counts[telemetry.SpanMaterialize] != want || counts[telemetry.SpanTrainEval] != want {
		t.Fatalf("want %d materialize/train spans, got %d/%d",
			want, counts[telemetry.SpanMaterialize], counts[telemetry.SpanTrainEval])
	}
	if counts[telemetry.SpanRun] != 1 || counts[telemetry.SpanRank] != 1 {
		t.Fatalf("want exactly one run and rank span: %v", counts)
	}
}
