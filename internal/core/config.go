// Package core implements AutoFeat itself: ranking-based transitive
// feature discovery over join paths (Section VI of the paper). Given a
// Dataset Relation Graph and a base table with a label column, it
// traverses the graph breadth-first, prunes join paths by similarity
// score and data quality, pushes every surviving join through the
// streaming feature-selection pipeline (relevance top-κ, then redundancy
// against the global selected set), ranks paths with Algorithm 2, and
// finally trains ML models on the top-k paths to pick the winner.
package core

import (
	"fmt"
	"log/slog"
	"time"

	"autofeat/internal/frame"
	"autofeat/internal/fselect"
	"autofeat/internal/obsrv"
	"autofeat/internal/relational"
	"autofeat/internal/telemetry"
)

// joinFunc is the signature of relational.LeftJoin; Config carries an
// injectable override (unexported, test-only) so the fault-injection
// harness can substitute failing or slow joins without touching the
// relational package.
type joinFunc func(left, right *frame.Frame, leftKey, rightKey string, opt relational.Options) (*relational.Result, error)

// Config holds AutoFeat's hyper-parameters. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Tau is the data-quality threshold τ: a join whose completeness
	// (non-null ratio over the added columns) falls below τ is pruned.
	// The paper recommends and evaluates with τ = 0.65.
	Tau float64
	// Kappa is κ, the maximum number of features kept per joined table by
	// the relevance analysis. The paper recommends κ in [10, 15] and
	// evaluates with 15.
	Kappa int
	// Relevance is the relevance metric (Spearman in the paper's final
	// configuration). Nil disables relevance analysis (Figure 9 ablation).
	Relevance fselect.Relevance
	// Redundancy is the redundancy metric (MRMR in the paper's final
	// configuration). Nil disables redundancy analysis (Figure 9
	// ablation).
	Redundancy fselect.Redundancy
	// TopK is the number of top-ranked join paths trained with the target
	// ML model at the end of discovery.
	TopK int
	// MaxDepth caps the transitive join-path length (number of hops).
	MaxDepth int
	// SampleSize bounds the stratified sample of the base table used
	// during feature selection (Section VI: sampling only affects
	// selection, never model training).
	SampleSize int
	// MaxPaths caps how many join paths are scored before traversal
	// stops, a safety valve for dense data-lake multigraphs. <= 0 means
	// unlimited.
	MaxPaths int
	// BeamWidth, when > 0, keeps only the top-scoring BeamWidth states at
	// each BFS level (beam search) — the "more aggressive pruning" the
	// paper lists as future work for organisation-scale lakes. 0 disables
	// beaming (the paper's exhaustive BFS).
	BeamWidth int
	// SimilarityPruning enables the first pruning strategy: among
	// parallel edges to the same neighbour, keep only the top-scoring
	// join column(s).
	SimilarityPruning bool
	// NormalizeJoins enables join-cardinality normalisation (group by the
	// join column, pick one row at random).
	NormalizeJoins bool
	// Seed drives every random choice (sampling, join normalisation,
	// model training), making runs reproducible.
	Seed int64
	// Workers bounds the worker pool that evaluates candidate joins of
	// one BFS depth concurrently. 0 means GOMAXPROCS; 1 forces the fully
	// sequential path. The ranking is bit-identical for every worker
	// count: results are folded in deterministic edge order and join
	// normalisation derives a per-edge RNG stream from (Seed, depth, edge)
	// rather than sharing one generator.
	Workers int
	// Telemetry, when non-nil, receives spans and metrics from every
	// phase of the run (BFS levels, joins, relevance/redundancy,
	// ranking, materialisation, training). Nil — the default — disables
	// collection at negligible cost.
	Telemetry *telemetry.Collector
	// Timeout, when > 0, bounds the wall-clock time of a discovery run:
	// RunContext derives a deadline and the traversal degrades to a
	// partial ranking (Ranking.Partial) when it expires. The BFS is an
	// any-time search, so whatever was ranked before the deadline is
	// still a valid (if shorter) ranking. 0 disables the deadline.
	Timeout time.Duration
	// MaxEvalJoins, when > 0, budgets the number of joins the traversal
	// may evaluate. Unlike MaxPaths (a search-space safety valve), an
	// exhausted budget flags the ranking Partial and is recorded under
	// the budget_exhausted pruning reason. The budget is applied
	// positionally in enumeration order, so the partial ranking is
	// bit-identical at every worker count. <= 0 disables the budget.
	MaxEvalJoins int
	// MaxJoinedRows, when > 0, budgets the cumulative number of joined
	// rows the traversal may materialise (each evaluated join contributes
	// its left side's row count — left joins preserve rows). Applied
	// positionally like MaxEvalJoins; an exhausted budget flags the
	// ranking Partial. <= 0 disables the budget.
	MaxJoinedRows int64
	// KeyCache, when non-nil, is the join-key index cache the run uses
	// instead of a fresh per-run cache: right-side key→row indexes built
	// for one run are then reused by every later run sharing the cache.
	// A resident Lake session injects its lake-wide cache here so warm
	// discoveries skip the index builds entirely. The cache keys on
	// column identity, so sharing is only effective (and only safe)
	// while the graph's tables stay resident and immutable — both
	// guaranteed by the Lake. Nil — the default — keeps the per-run
	// cache of the one-shot path.
	KeyCache *relational.KeyIndexCache
	// Progress, when non-nil, receives live run state (BFS depth, frontier
	// size, per-reason prunes, budget consumption, worker occupancy) for
	// the introspection server's /runs/{id} endpoint. Nil — the default —
	// disables tracking; every update is nil-safe and lock-cheap.
	Progress *obsrv.RunProgress
	// Logger, when non-nil, receives structured log records from the
	// pipeline (run lifecycle at Info, per-depth progress at Debug,
	// partial results and recovered panics at Warn). Nil — the default —
	// disables logging.
	Logger *slog.Logger
	// joinFn, when non-nil, replaces relational.LeftJoin for every join
	// evaluation — the fault-injection seam used by tests to prove that
	// failing or slow joins degrade deterministically. Unexported: only
	// package-internal tests can set it.
	joinFn joinFunc
}

// DefaultConfig returns the paper's evaluation configuration:
// τ = 0.65, κ = 15, Spearman relevance, MRMR redundancy.
func DefaultConfig() Config {
	return Config{
		Tau:               0.65,
		Kappa:             15,
		Relevance:         fselect.SpearmanRelevance{},
		Redundancy:        fselect.NewMRMR(),
		TopK:              4,
		MaxDepth:          3,
		SampleSize:        1000,
		MaxPaths:          3000,
		SimilarityPruning: true,
		NormalizeJoins:    true,
		Seed:              1,
	}
}

// log returns the configured logger, normalised so call sites never
// nil-check: a nil Logger becomes the nop logger.
func (c Config) log() *slog.Logger { return telemetry.OrNop(c.Logger) }

func (c Config) validate() error {
	if c.Tau < 0 || c.Tau > 1 {
		return fmt.Errorf("core: tau %v out of [0,1]", c.Tau)
	}
	if c.Kappa < 1 {
		return fmt.Errorf("core: kappa %d must be >= 1", c.Kappa)
	}
	if c.TopK < 1 {
		return fmt.Errorf("core: topK %d must be >= 1", c.TopK)
	}
	if c.MaxDepth < 1 {
		return fmt.Errorf("core: maxDepth %d must be >= 1", c.MaxDepth)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: workers %d must be >= 0 (0 = GOMAXPROCS)", c.Workers)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("core: timeout %v must be >= 0 (0 = none)", c.Timeout)
	}
	return nil
}
