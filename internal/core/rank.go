package core

import (
	"fmt"
	"strings"

	"autofeat/internal/graph"
)

// RankedPath is one scored join path in AutoFeat's output ranking.
type RankedPath struct {
	// Edges is the join path from the base table, oriented hop by hop.
	Edges []graph.Edge
	// Score is the Algorithm 2 ranking score accumulated over the path.
	Score float64
	// Features are the fully-qualified ("table.column") features selected
	// along the path, in selection order.
	Features []string
	// RelScores and RedScores align with Features: the relevance and
	// redundancy scores each feature was selected with.
	RelScores []float64
	RedScores []float64
	// Quality is the lowest join completeness observed along the path.
	Quality float64
	// Qualities aligns with Edges: the completeness (non-null ratio)
	// measured at each hop's data-quality check, so the provenance
	// manifest can show every decision point, not just the minimum.
	Qualities []float64
}

// String renders the path in the paper's arrow notation with its score.
func (p RankedPath) String() string {
	if len(p.Edges) == 0 {
		return fmt.Sprintf("(base only, score %.4f)", p.Score)
	}
	parts := make([]string, len(p.Edges))
	for i, e := range p.Edges {
		parts[i] = fmt.Sprintf("%s.%s -> %s.%s", e.A, e.ColA, e.B, e.ColB)
	}
	return fmt.Sprintf("%s (score %.4f, %d features)", strings.Join(parts, " ; "), p.Score, len(p.Features))
}

// Tables returns the table names joined along the path, in hop order.
func (p RankedPath) Tables() []string {
	out := make([]string, len(p.Edges))
	for i, e := range p.Edges {
		out[i] = e.B
	}
	return out
}

// computeScore implements Algorithm 2: the mean of relevance scores and
// the mean of redundancy scores, combined with equal weight ("the sum of
// sum_rel and sum_red, weighted by their common divisor").
func computeScore(relScores, redScores []float64) float64 {
	sumRel := meanOrZero(relScores)
	sumRed := meanOrZero(redScores)
	return (sumRel + sumRed) / 2
}

func meanOrZero(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
