package core

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"autofeat/internal/ml"
)

// TestManifestInventory checks the manifest's graph inventory: every table
// once (sorted), every undirected edge exactly once.
func TestManifestInventory(t *testing.T) {
	g := testLake(t, 200)
	d, _ := New(g, "base", "y", DefaultConfig())
	r, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	m := d.Manifest(r)
	if m.Schema != ManifestSchema {
		t.Errorf("schema %q", m.Schema)
	}
	wantTables := []string{"base", "bridge", "gold", "junk"}
	var names []string
	for _, ti := range m.Tables {
		names = append(names, ti.Name)
		if ti.Rows <= 0 || ti.Cols <= 0 {
			t.Errorf("table %s has empty dimensions: %+v", ti.Name, ti)
		}
	}
	if !reflect.DeepEqual(names, wantTables) {
		t.Errorf("tables %v, want %v", names, wantTables)
	}
	// testLake declares exactly 3 undirected edges; each must appear once.
	if len(m.Edges) != 3 {
		t.Errorf("edges %d, want 3: %+v", len(m.Edges), m.Edges)
	}
	seen := map[string]bool{}
	for _, e := range m.Edges {
		k := e.From + "." + e.FromCol + "-" + e.To + "." + e.ToCol
		if seen[k] {
			t.Errorf("edge %s listed twice", k)
		}
		seen[k] = true
		if e.Similarity <= 0 || e.Similarity > 1 {
			t.Errorf("edge %s similarity %v out of (0,1]", k, e.Similarity)
		}
	}
	if m.PathsExplored != r.PathsExplored {
		t.Errorf("paths explored %d != %d", m.PathsExplored, r.PathsExplored)
	}
	if len(m.Paths) != len(r.Paths) {
		t.Fatalf("lineage count %d != ranked %d", len(m.Paths), len(r.Paths))
	}
	for i, p := range m.Paths {
		if p.Rank != i+1 {
			t.Errorf("path %d rank %d", i, p.Rank)
		}
		if p.Score != r.Paths[i].Score {
			t.Errorf("path %s score %v != ranking %v", p.ID, p.Score, r.Paths[i].Score)
		}
		if len(p.Hops) != len(r.Paths[i].Edges) {
			t.Errorf("path %s hops %d != edges %d", p.ID, len(p.Hops), len(r.Paths[i].Edges))
		}
		for h, hop := range p.Hops {
			if hop.Quality <= 0 || hop.Quality > 1 {
				t.Errorf("path %s hop %d quality %v out of (0,1]", p.ID, h, hop.Quality)
			}
		}
		if len(p.Features) != len(r.Paths[i].Features) {
			t.Errorf("path %s features %d != ranking %d", p.ID, len(p.Features), len(r.Paths[i].Features))
		}
		for j, f := range p.Features {
			if f.Relevance != r.Paths[i].RelScores[j] {
				t.Errorf("path %s feature %s relevance drifted", p.ID, f.Name)
			}
		}
	}
}

// TestManifestRoundTrip writes a fully-evaluated manifest to disk, reads
// it back, and drives Explain over it — the `autofeat explain` flow.
func TestManifestRoundTrip(t *testing.T) {
	g := testLake(t, 400)
	d, _ := New(g, "base", "y", DefaultConfig())
	r, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	factory, _ := ml.FactoryByName("lightgbm")
	res, err := d.EvaluateRanking(r, factory)
	if err != nil {
		t.Fatal(err)
	}
	m := d.Manifest(r)
	m.AttachEvaluation(res)
	if len(m.Evaluations) != len(res.Evaluated) {
		t.Fatalf("evaluations %d != %d", len(m.Evaluations), len(res.Evaluated))
	}
	if m.Evaluations[0].PathID != BasePathID {
		t.Errorf("candidate 0 must be %q, got %q", BasePathID, m.Evaluations[0].PathID)
	}
	if m.BestPath == "" {
		t.Error("best path not recorded")
	}
	if m.BestPath != BasePathID && m.PathByID(m.BestPath) == nil {
		t.Errorf("best path %q has no lineage", m.BestPath)
	}

	path := filepath.Join(t.TempDir(), "run_manifest.json")
	if err := WriteManifestFile(path, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, m) {
		t.Error("manifest did not round-trip through JSON")
	}

	var buf bytes.Buffer
	if err := back.Explain(&buf, "path-001"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"path-001", "rank 1", "hops (", "features (", "relevance="} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	// Bare rank numbers and the base alias are accepted too.
	buf.Reset()
	if err := back.Explain(&buf, "1"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "path-001") {
		t.Errorf("bare rank explain:\n%s", buf.String())
	}
	buf.Reset()
	if err := back.Explain(&buf, BasePathID); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no augmentation") {
		t.Errorf("base explain:\n%s", buf.String())
	}
	if err := back.Explain(&buf, "path-999"); err == nil {
		t.Error("unknown path id must error")
	}
}

// TestReadManifestRejectsForeignSchema guards the schema check.
func TestReadManifestRejectsForeignSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "other.json")
	if err := os.WriteFile(path, []byte(`{"schema":"other/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifestFile(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("want schema error, got %v", err)
	}
	if err := os.WriteFile(path, []byte(`{broken`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifestFile(path); err == nil {
		t.Error("want parse error")
	}
}

// TestManifestWorkerDeterminism asserts the acceptance criterion: the
// lineage — every similarity, quality and relevance/MRMR score at every
// decision point — is bit-identical no matter the worker count. Only the
// creation timestamp and wall-clock fields may differ.
func TestManifestWorkerDeterminism(t *testing.T) {
	build := func(workers int) *Manifest {
		g := testLake(t, 300)
		cfg := DefaultConfig()
		cfg.Workers = workers
		d, err := New(g, "base", "y", cfg)
		if err != nil {
			t.Fatal(err)
		}
		r, err := d.Run()
		if err != nil {
			t.Fatal(err)
		}
		m := d.Manifest(r)
		// Normalise the only legitimately nondeterministic fields.
		m.CreatedUnixMS = 0
		m.SelectionSeconds = 0
		m.Config.Workers = 0
		return m
	}
	one, err := json.Marshal(build(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		many, err := json.Marshal(build(workers))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(one, many) {
			t.Errorf("manifest differs between workers=1 and workers=%d:\n%s\nvs\n%s", workers, one, many)
		}
	}
}
