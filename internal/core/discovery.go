package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"autofeat/internal/frame"
	"autofeat/internal/fselect"
	"autofeat/internal/graph"
	"autofeat/internal/relational"
)

// Discovery is one configured AutoFeat run over a Dataset Relation Graph.
type Discovery struct {
	cfg      Config
	g        *graph.Graph
	baseName string
	// label is the fully-qualified label column ("base.label").
	label string
}

// New prepares a discovery run. base must be a node of g; label is the
// label column inside the base table (unqualified).
func New(g *graph.Graph, base, label string, cfg Config) (*Discovery, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	bt := g.Table(base)
	if bt == nil {
		return nil, fmt.Errorf("core: base table %q not in graph", base)
	}
	if !bt.HasColumn(label) {
		return nil, fmt.Errorf("core: base table %q has no label column %q", base, label)
	}
	return &Discovery{cfg: cfg, g: g, baseName: base, label: base + "." + label}, nil
}

// Ranking is the output of the discovery phase: join paths ordered by
// descending Algorithm 2 score, plus everything needed to materialise and
// evaluate them.
type Ranking struct {
	// Base is the base table with qualified column names.
	Base *frame.Frame
	// BaseFeatures are the base table's own feature columns (label
	// excluded), always part of any trained feature set.
	BaseFeatures []string
	// Label is the fully-qualified label column.
	Label string
	// Paths is the ranked list, best first.
	Paths []RankedPath
	// PathsExplored counts every join evaluated, including pruned ones.
	PathsExplored int
	// PathsPruned counts joins discarded by the two pruning strategies.
	PathsPruned int
	// SelectionTime is the wall-clock feature-discovery time — the
	// efficiency metric of Section VII ("feature selection time").
	SelectionTime time.Duration
}

// TopK returns the best k paths (fewer when the ranking is shorter).
func (r *Ranking) TopK(k int) []RankedPath {
	if k > len(r.Paths) {
		k = len(r.Paths)
	}
	return r.Paths[:k]
}

// state is one BFS frontier entry: a materialised (sampled) join result
// with its path and the features selected along it.
type state struct {
	node    string // frontier table
	f       *frame.Frame
	edges   []graph.Edge
	visited map[string]bool
	// features and scores accumulated along this path.
	features  []string
	relScores []float64
	redScores []float64
	quality   float64
	// selCols is R_sel for THIS path: the base features plus the columns
	// selected along the path, in sample-row space. Redundancy is
	// "conditioned on a feature subset" (Section III-A); the subset that
	// matters is the one the path's final model will train on, so R_sel
	// is tracked per path rather than globally.
	selCols [][]float64
}

// Run executes Algorithm 1: BFS traversal with similarity-score and
// data-quality pruning, streaming feature selection per join, and
// Algorithm 2 ranking of every surviving path.
func (d *Discovery) Run() (*Ranking, error) {
	start := time.Now()
	rng := rand.New(rand.NewSource(d.cfg.Seed))

	base := d.g.Table(d.baseName).Prefixed(d.baseName)
	// Sample the base table for selection only (Section VI): the sample
	// bounds selection cost, never training data.
	sample := base
	if d.cfg.SampleSize > 0 {
		var err error
		sample, err = base.StratifiedSample(d.label, d.cfg.SampleSize, rng)
		if err != nil {
			return nil, err
		}
	}
	y, err := sample.Labels(d.label)
	if err != nil {
		return nil, err
	}

	baseFeatures := make([]string, 0, sample.NumCols()-1)
	for _, name := range base.ColumnNames() {
		if name != d.label {
			baseFeatures = append(baseFeatures, name)
		}
	}
	// R_sel starts as the base table's features (Section VI).
	selected := make([][]float64, 0, len(baseFeatures))
	for _, name := range baseFeatures {
		selected = append(selected, sample.Column(name).Floats())
	}

	pipeline := &fselect.Pipeline{
		Relevance:  d.cfg.Relevance,
		Redundancy: d.cfg.Redundancy,
		K:          d.cfg.Kappa,
	}

	rank := &Ranking{Base: base, BaseFeatures: baseFeatures, Label: d.label}
	frontier := []*state{{
		node:    d.baseName,
		f:       sample,
		visited: map[string]bool{d.baseName: true},
		quality: 1,
		selCols: selected,
	}}

	for depth := 0; depth < d.cfg.MaxDepth && len(frontier) > 0; depth++ {
		var next []*state
		for _, st := range frontier {
			if d.cfg.MaxPaths > 0 && rank.PathsExplored >= d.cfg.MaxPaths {
				break
			}
			for _, nb := range d.g.Neighbors(st.node) {
				if st.visited[nb] {
					continue
				}
				for _, e := range d.candidateEdges(st.node, nb) {
					if d.cfg.MaxPaths > 0 && rank.PathsExplored >= d.cfg.MaxPaths {
						break
					}
					rank.PathsExplored++
					child, ok := d.expand(st, e, y, pipeline, rng)
					if !ok {
						rank.PathsPruned++
						continue
					}
					rank.Paths = append(rank.Paths, RankedPath{
						Edges:     child.edges,
						Score:     computeScore(child.relScores, child.redScores),
						Features:  child.features,
						RelScores: child.relScores,
						RedScores: child.redScores,
						Quality:   child.quality,
					})
					next = append(next, child)
				}
			}
		}
		if d.cfg.BeamWidth > 0 && len(next) > d.cfg.BeamWidth {
			// Beam search: keep the most promising states, judged by the
			// same Algorithm 2 score the ranking uses.
			sort.SliceStable(next, func(i, j int) bool {
				return computeScore(next[i].relScores, next[i].redScores) >
					computeScore(next[j].relScores, next[j].redScores)
			})
			next = next[:d.cfg.BeamWidth]
		}
		frontier = next
	}

	sort.SliceStable(rank.Paths, func(i, j int) bool {
		if rank.Paths[i].Score != rank.Paths[j].Score {
			return rank.Paths[i].Score > rank.Paths[j].Score
		}
		// Prefer shorter paths on ties: fewer joins, same information.
		return len(rank.Paths[i].Edges) < len(rank.Paths[j].Edges)
	})
	rank.SelectionTime = time.Since(start)
	return rank, nil
}

// candidateEdges applies the first pruning strategy (Section IV-C): with
// similarity pruning on, only the top-scoring join column(s) between the
// frontier and the neighbour survive; equal top scores each stay an
// individual join path.
func (d *Discovery) candidateEdges(from, to string) []graph.Edge {
	edges := d.g.EdgesBetween(from, to)
	if !d.cfg.SimilarityPruning || len(edges) <= 1 {
		return edges
	}
	best := edges[0].Weight
	for _, e := range edges[1:] {
		if e.Weight > best {
			best = e.Weight
		}
	}
	var out []graph.Edge
	for _, e := range edges {
		if e.Weight == best {
			out = append(out, e)
		}
	}
	return out
}

// expand performs one join of Algorithm 1's inner loop: join, data-quality
// pruning, relevance and redundancy analysis, and R_sel update. It returns
// the child state, or ok=false when the path is pruned.
func (d *Discovery) expand(st *state, e graph.Edge, y []int, pipeline *fselect.Pipeline, rng *rand.Rand) (*state, bool) {
	leftKey := e.A + "." + e.ColA
	if leftKey == d.label {
		// The label column must never act as a join key: matching rows
		// by label value would leak the target into the joined features.
		return nil, false
	}
	right := d.g.Table(e.B)
	var joinRng *rand.Rand
	if d.cfg.NormalizeJoins {
		joinRng = rng
	}
	res, err := relational.LeftJoin(st.f, right, leftKey, e.ColB, relational.Options{
		Normalize: d.cfg.NormalizeJoins,
		Rng:       joinRng,
	})
	if err != nil || res.MatchedRows == 0 {
		// "If the join is not possible, prune."
		return nil, false
	}
	quality := res.Quality()
	if quality < d.cfg.Tau {
		// Second pruning strategy: data quality below τ.
		return nil, false
	}

	// Streaming feature selection over the columns this join added.
	candidates := make([][]float64, 0, len(res.AddedColumns))
	names := make([]string, 0, len(res.AddedColumns))
	for _, name := range res.AddedColumns {
		candidates = append(candidates, res.Frame.Column(name).Floats())
		names = append(names, name)
	}
	sel := pipeline.Run(candidates, st.selCols, y)

	child := &state{
		node:    e.B,
		f:       res.Frame,
		edges:   appendEdge(st.edges, e),
		visited: copyVisited(st.visited, e.B),
		quality: math.Min(st.quality, quality),
	}
	child.features = append(append([]string{}, st.features...), pick(names, sel.Kept)...)
	child.relScores = append(append([]float64{}, st.relScores...), sel.RelScores...)
	child.redScores = append(append([]float64{}, st.redScores...), sel.RedScores...)

	// R_sel = R_sel ∪ R_red (Algorithm 1, line 18), tracked per path.
	// Even when the join adds nothing, the path survives as a stepping
	// stone to multi-hop paths (Section V-A: intermediate joins must not
	// be pruned).
	child.selCols = make([][]float64, len(st.selCols), len(st.selCols)+len(sel.Kept))
	copy(child.selCols, st.selCols)
	for _, k := range sel.Kept {
		child.selCols = append(child.selCols, candidates[k])
	}
	return child, true
}

func appendEdge(edges []graph.Edge, e graph.Edge) []graph.Edge {
	out := make([]graph.Edge, len(edges)+1)
	copy(out, edges)
	out[len(edges)] = e
	return out
}

func copyVisited(v map[string]bool, add string) map[string]bool {
	out := make(map[string]bool, len(v)+1)
	for k := range v {
		out[k] = true
	}
	out[add] = true
	return out
}

func pick(names []string, idx []int) []string {
	out := make([]string, len(idx))
	for i, k := range idx {
		out[i] = names[k]
	}
	return out
}
