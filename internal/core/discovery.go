package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"autofeat/internal/errs"
	"autofeat/internal/frame"
	"autofeat/internal/fselect"
	"autofeat/internal/graph"
	"autofeat/internal/obsrv"
	"autofeat/internal/relational"
	"autofeat/internal/telemetry"
)

// Discovery is one configured AutoFeat run over a Dataset Relation Graph.
type Discovery struct {
	cfg      Config
	g        *graph.Graph
	baseName string
	// label is the fully-qualified label column ("base.label").
	label string
}

// New prepares a discovery run. base must be a node of g; label is the
// label column inside the base table (unqualified).
func New(g *graph.Graph, base, label string, cfg Config) (*Discovery, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	bt := g.Table(base)
	if bt == nil {
		return nil, fmt.Errorf("core: base table %q not in graph", base)
	}
	if !bt.HasColumn(label) {
		return nil, fmt.Errorf("core: base table %q has no label column %q", base, label)
	}
	return &Discovery{cfg: cfg, g: g, baseName: base, label: base + "." + label}, nil
}

// PruneStats breaks the pruning work of one run down by reason.
//
// JoinFailed and QualityBelowTau discard joins that were evaluated, so
// JoinFailed + QualityBelowTau == PathsExplored - len(Paths) always
// holds. Similarity, BeamEvicted and MaxPathsCap truncate the search
// space around the evaluated joins: similarity-pruned edges are never
// evaluated, beam-evicted states keep their ranked path but are not
// expanded further, and MaxPathsCap counts frontier edges skipped once
// the MaxPaths cap fired.
type PruneStats struct {
	// Similarity counts parallel edges discarded by similarity-score
	// pruning (Section IV-C, first strategy) before evaluation.
	Similarity int `json:"similarity"`
	// JoinFailed counts evaluated joins pruned because the join matched
	// no rows, errored, or would have used the label as a join key.
	JoinFailed int `json:"join_failed"`
	// QualityBelowTau counts evaluated joins pruned by completeness < τ
	// (Section IV-C, second strategy).
	QualityBelowTau int `json:"quality_below_tau"`
	// BeamEvicted counts frontier states dropped by beam search; their
	// already-ranked paths survive but are never expanded further.
	BeamEvicted int `json:"beam_evicted"`
	// MaxPathsCap counts candidate edges left unevaluated at the active
	// frontier when the MaxPaths cap stopped the traversal.
	MaxPathsCap int `json:"max_paths_cap"`
	// BudgetExhausted counts candidate joins left unevaluated because a
	// Config budget (MaxEvalJoins or MaxJoinedRows) ran out. A non-zero
	// count always comes with Ranking.Partial = true.
	BudgetExhausted int `json:"budget_exhausted"`
	// Cancelled counts the candidate joins of the depth that was in
	// flight when the run's context was cancelled or its deadline
	// expired. The whole depth is discarded — see Ranking.Partial — so
	// the count covers every candidate of that depth, evaluated or not.
	Cancelled int `json:"cancelled"`
}

// Discarded is the number of evaluated joins that were discarded —
// exactly PathsExplored - len(Paths), the old PathsPruned semantics.
func (p PruneStats) Discarded() int { return p.JoinFailed + p.QualityBelowTau }

// Total sums every reason, including search-space truncation.
func (p PruneStats) Total() int {
	return p.Similarity + p.JoinFailed + p.QualityBelowTau + p.BeamEvicted +
		p.MaxPathsCap + p.BudgetExhausted + p.Cancelled
}

// Ranking is the output of the discovery phase: join paths ordered by
// descending Algorithm 2 score, plus everything needed to materialise and
// evaluate them.
type Ranking struct {
	// Base is the base table with qualified column names.
	Base *frame.Frame
	// BaseFeatures are the base table's own feature columns (label
	// excluded), always part of any trained feature set.
	BaseFeatures []string
	// Label is the fully-qualified label column.
	Label string
	// Paths is the ranked list, best first.
	Paths []RankedPath
	// PathsExplored counts every join evaluated, including pruned ones.
	PathsExplored int
	// PathsPruned counts joins discarded by the two pruning strategies —
	// kept as Prune.Discarded() for backward compatibility; Prune holds
	// the per-reason breakdown.
	PathsPruned int
	// Prune is the by-reason pruning breakdown of this run.
	Prune PruneStats
	// SelectionTime is the wall-clock feature-discovery time — the
	// efficiency metric of Section VII ("feature selection time").
	SelectionTime time.Duration
	// Partial reports that the search stopped early — context cancelled,
	// deadline expired, or a Config budget exhausted — and Paths covers
	// only the part of the search space reached before the stop. The
	// ranking is still valid and deterministic: budgets are applied
	// positionally, and a cancellation discards the whole in-flight BFS
	// depth, so the result is bit-identical at every worker count.
	Partial bool
	// PartialReason names what stopped a Partial run: "cancelled",
	// "deadline", "max_eval_joins" or "max_joined_rows". Empty when
	// Partial is false. The first cause wins when several fire.
	PartialReason string
}

// TopK returns the best k paths (fewer when the ranking is shorter).
// Negative k is treated as 0.
func (r *Ranking) TopK(k int) []RankedPath {
	if k < 0 {
		k = 0
	}
	if k > len(r.Paths) {
		k = len(r.Paths)
	}
	return r.Paths[:k]
}

// state is one BFS frontier entry: a materialised (sampled) join result
// with its path and the features selected along it.
type state struct {
	node    string // frontier table
	f       *frame.Frame
	edges   []graph.Edge
	visited map[string]bool
	// features and scores accumulated along this path.
	features  []string
	relScores []float64
	redScores []float64
	quality   float64
	// qualities is the per-hop completeness history, aligned with edges —
	// the provenance manifest records the non-null ratio at every
	// decision point, not just the path minimum.
	qualities []float64
	// selCols is R_sel for THIS path: the base features plus the columns
	// selected along the path, in sample-row space. Redundancy is
	// "conditioned on a feature subset" (Section III-A); the subset that
	// matters is the one the path's final model will train on, so R_sel
	// is tracked per path rather than globally.
	selCols [][]float64
}

// Run executes Algorithm 1 with no external cancellation; it is exactly
// RunContext under context.Background(), which is the canonical
// (context-first) form. Config budgets (Timeout, MaxEvalJoins,
// MaxJoinedRows) still apply.
func (d *Discovery) Run() (*Ranking, error) {
	return d.RunContext(context.Background())
}

// RunContext executes Algorithm 1: BFS traversal with similarity-score and
// data-quality pruning, streaming feature selection per join, and
// Algorithm 2 ranking of every surviving path.
//
// The context is observed cooperatively — at every BFS depth, before each
// join evaluation, inside the join row loop and at the feature-selection
// stage boundaries. Cancellation (or an expired Config.Timeout deadline)
// does not return an error: the run degrades to the best ranking found so
// far, flagged Partial with PartialReason "cancelled" or "deadline". The
// in-flight depth is discarded wholesale (counted under the cancelled
// pruning reason), so the partial ranking is bit-identical at every
// worker count. Budget exhaustion (MaxEvalJoins, MaxJoinedRows) degrades
// the same way under the budget_exhausted pruning reason.
func (d *Discovery) RunContext(ctx context.Context) (*Ranking, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if d.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d.cfg.Timeout)
		defer cancel()
	}
	tr := d.cfg.Telemetry.Trace()
	mx := d.cfg.Telemetry.Meter()
	prog := d.cfg.Progress
	lg := d.cfg.log()
	// The run span joins the caller's trace when ctx carries one (an
	// inbound traceparent threaded through serve) and starts a fresh
	// trace otherwise; every child span below parents through ctx, so
	// concurrent runs sharing one Collector stay correctly attributed.
	ctx, runSpan := tr.StartSpan(ctx, telemetry.SpanRun)
	runSpan.SetStr("base", d.baseName)
	runSpan.SetStr("label", d.label)
	defer runSpan.End()
	if sc, ok := telemetry.SpanContextFrom(ctx); ok {
		lg = lg.With("trace_id", sc.Trace.String())
	}

	prog.Begin(d.baseName, d.label, d.cfg.MaxDepth, d.cfg.Timeout, d.cfg.MaxEvalJoins, d.cfg.MaxJoinedRows)
	prog.SetPhase(obsrv.PhaseSample)
	lg.Info("discovery started",
		"base", d.baseName, "label", d.label,
		"max_depth", d.cfg.MaxDepth, "tau", d.cfg.Tau, "kappa", d.cfg.Kappa,
		"timeout", d.cfg.Timeout, "budget_joins", d.cfg.MaxEvalJoins, "budget_rows", d.cfg.MaxJoinedRows)

	rng := rand.New(rand.NewSource(d.cfg.Seed))

	base := d.g.Table(d.baseName).Prefixed(d.baseName)
	// Sample the base table for selection only (Section VI): the sample
	// bounds selection cost, never training data.
	_, sampleSpan := tr.StartSpan(ctx, telemetry.SpanSample)
	sample := base
	if d.cfg.SampleSize > 0 {
		var err error
		sample, err = base.StratifiedSample(d.label, d.cfg.SampleSize, rng)
		if err != nil {
			sampleSpan.End()
			return nil, err
		}
	}
	sampleSpan.SetInt("rows", sample.NumRows())
	sampleSpan.End()
	y, err := sample.Labels(d.label)
	if err != nil {
		return nil, err
	}

	baseFeatures := make([]string, 0, sample.NumCols()-1)
	for _, name := range base.ColumnNames() {
		if name != d.label {
			baseFeatures = append(baseFeatures, name)
		}
	}
	// R_sel starts as the base table's features (Section VI).
	selected := make([][]float64, 0, len(baseFeatures))
	for _, name := range baseFeatures {
		selected = append(selected, sample.Column(name).Floats())
	}

	pipeline := &fselect.Pipeline{
		Relevance:  d.cfg.Relevance,
		Redundancy: d.cfg.Redundancy,
		K:          d.cfg.Kappa,
		Telemetry:  d.cfg.Telemetry,
		Log:        d.cfg.Logger,
	}

	rank := &Ranking{Base: base, BaseFeatures: baseFeatures, Label: d.label}
	frontier := []*state{{
		node:    d.baseName,
		f:       sample,
		visited: map[string]bool{d.baseName: true},
		quality: 1,
		selCols: selected,
	}}

	workers := d.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	runSpan.SetInt("workers", workers)
	mx.SetGauge(telemetry.GaugeWorkers, float64(workers))
	prog.SetWorkers(workers)
	prog.SetPhase(obsrv.PhaseDiscover)
	// cache memoises right-side key indexes across the run: every join
	// against the same (table column, normalisation seed) reuses the
	// key→row map instead of rescanning the column. A Config.KeyCache
	// (injected by a resident Lake session) extends the memo across
	// runs, which is what makes warm served discoveries skip the
	// offline index builds.
	cache := d.cfg.KeyCache
	if cache == nil {
		cache = relational.NewKeyIndexCache()
	}

	// capped flips once the MaxPaths cap or a budget fires; the rest of
	// the active frontier is then only counted, never evaluated, and the
	// traversal does not descend another level.
	capped := false
	// rowsJoined tracks the cumulative joined-row budget (left rows per
	// evaluated join — left joins preserve row count, so the cost of a
	// join is known before evaluating it).
	var rowsJoined int64
	for depth := 0; depth < d.cfg.MaxDepth && len(frontier) > 0 && !capped; depth++ {
		if err := ctx.Err(); err != nil {
			markPartial(rank, prog, partialReason(err))
			break
		}
		dctx, depthSpan := tr.StartSpan(ctx, telemetry.SpanDepth)
		depthSpan.SetInt("depth", depth+1)
		depthSpan.SetInt("frontier", len(frontier))
		prog.BeginDepth(depth+1, len(frontier))

		// Phase 1 — enumerate this depth's candidate joins sequentially,
		// in deterministic (frontier, neighbour, edge) order. Similarity
		// pruning happens here, before any evaluation.
		type job struct {
			st *state
			e  graph.Edge
		}
		var jobs []job
		for _, st := range frontier {
			for _, nb := range d.g.Neighbors(st.node) {
				if st.visited[nb] {
					continue
				}
				_, enumSpan := tr.StartSpan(dctx, telemetry.SpanEnumerate)
				edges, simPruned := d.candidateEdges(st.node, nb)
				enumSpan.SetStr("from", st.node)
				enumSpan.SetStr("to", nb)
				enumSpan.SetInt("edges", len(edges))
				enumSpan.End()
				rank.Prune.Similarity += simPruned
				mx.Add(telemetry.PrunedCounter(telemetry.PruneSimilarity), int64(simPruned))
				prog.AddPruned(telemetry.PruneSimilarity, simPruned)
				for _, e := range edges {
					jobs = append(jobs, job{st: st, e: e})
				}
			}
		}
		prog.AddEnumerated(len(jobs))

		// Apply the MaxPaths cap positionally: every evaluated join
		// increments PathsExplored by exactly one, so the sequential
		// traversal would evaluate the first `allowed` candidates of this
		// depth and count the rest as MaxPathsCap.
		allowed := len(jobs)
		if d.cfg.MaxPaths > 0 {
			if room := d.cfg.MaxPaths - rank.PathsExplored; room < allowed {
				if room < 0 {
					room = 0
				}
				capped = true
				skipped := allowed - room
				allowed = room
				rank.Prune.MaxPathsCap += skipped
				mx.Add(telemetry.PrunedCounter(telemetry.PruneMaxPathsCap), int64(skipped))
				prog.AddPruned(telemetry.PruneMaxPathsCap, skipped)
			}
		}

		// Apply the budgets the same way — positionally, in enumeration
		// order, so the surviving prefix is identical at every worker
		// count. Unlike MaxPaths (a search-space safety valve), an
		// exhausted budget flags the ranking Partial.
		if d.cfg.MaxEvalJoins > 0 {
			if room := d.cfg.MaxEvalJoins - rank.PathsExplored; room < allowed {
				if room < 0 {
					room = 0
				}
				capped = true
				skipped := allowed - room
				allowed = room
				rank.Prune.BudgetExhausted += skipped
				mx.Add(telemetry.PrunedCounter(telemetry.PruneBudgetExhausted), int64(skipped))
				prog.AddPruned(telemetry.PruneBudgetExhausted, skipped)
				markPartial(rank, prog, "max_eval_joins")
			}
		}
		if d.cfg.MaxJoinedRows > 0 {
			fit := 0
			for ; fit < allowed; fit++ {
				rows := int64(jobs[fit].st.f.NumRows())
				if rowsJoined+rows > d.cfg.MaxJoinedRows {
					break
				}
				rowsJoined += rows
				prog.AddRowsJoined(rows)
			}
			if fit < allowed {
				capped = true
				skipped := allowed - fit
				allowed = fit
				rank.Prune.BudgetExhausted += skipped
				mx.Add(telemetry.PrunedCounter(telemetry.PruneBudgetExhausted), int64(skipped))
				prog.AddPruned(telemetry.PruneBudgetExhausted, skipped)
				markPartial(rank, prog, "max_joined_rows")
			}
		}
		prog.SetDepthCandidates(allowed)

		// Phase 2 — evaluate the candidates on the worker pool. Each join
		// is independent: per-edge RNG streams (see edgeSeed) and the
		// read-only frontier state make evaluation order irrelevant.
		type outcome struct {
			child  *state
			reason string
		}
		outcomes := make([]outcome, allowed)
		// evalOne evaluates job i; it returns false — without evaluating —
		// once the context is done, so both the sequential loop and the
		// workers drain quickly after a cancellation.
		evalOne := func(i int) bool {
			if ctx.Err() != nil {
				return false
			}
			prog.JoinStart()
			jb := jobs[i]
			// Each worker derives its own child context from the depth
			// span, so concurrent join evaluations parent correctly under
			// the shared tracer.
			jctx, joinSpan := tr.StartSpan(dctx, telemetry.SpanJoinEval)
			joinSpan.SetStr("edge", fmt.Sprintf("%s.%s -> %s.%s", jb.e.A, jb.e.ColA, jb.e.B, jb.e.ColB))
			joinSpan.SetFloat("weight", jb.e.Weight)
			var jrng *rand.Rand
			var jseed int64
			if d.cfg.NormalizeJoins {
				jseed = edgeSeed(d.cfg.Seed, depth, jb.e)
				jrng = rand.New(rand.NewSource(jseed))
			}
			child, reason := d.safeExpand(jctx, jb.st, jb.e, y, pipeline, jrng, jseed, cache, joinSpan)
			if reason != "" {
				joinSpan.SetStr("pruned", reason)
			}
			joinSpan.End()
			prog.JoinDone(reason)
			outcomes[i] = outcome{child: child, reason: reason}
			return true
		}
		if w := min(workers, allowed); w <= 1 {
			for i := 0; i < allowed; i++ {
				if !evalOne(i) {
					break
				}
			}
		} else {
			var cursor atomic.Int64
			var wg sync.WaitGroup
			wg.Add(w)
			for k := 0; k < w; k++ {
				go func() {
					defer wg.Done()
					for {
						i := int(cursor.Add(1)) - 1
						if i >= allowed {
							return
						}
						if !evalOne(i) {
							return
						}
					}
				}()
			}
			wg.Wait()
		}

		// A cancellation observed during this depth discards the depth
		// wholesale: which jobs finished before the stop depends on
		// goroutine scheduling, so keeping any of them would make the
		// partial ranking racy. Only fully-completed depths contribute
		// paths — that is what makes the partial result bit-identical at
		// every worker count.
		if err := ctx.Err(); err != nil {
			rank.Prune.Cancelled += allowed
			mx.Add(telemetry.PrunedCounter(telemetry.PruneCancelled), int64(allowed))
			prog.AddPruned(telemetry.PruneCancelled, allowed)
			markPartial(rank, prog, partialReason(err))
			depthSpan.SetStr("discarded", partialReason(err))
			depthSpan.End()
			lg.Warn("depth discarded", "depth", depth+1, "reason", partialReason(err), "candidates", allowed)
			break
		}

		// Phase 3 — fold the outcomes in job order, so PruneStats, path
		// order and the next frontier are bit-identical to the sequential
		// traversal regardless of worker count.
		_, foldSpan := tr.StartSpan(dctx, telemetry.SpanFold)
		foldSpan.SetInt("evaluated", allowed)
		var next []*state
		for i := 0; i < allowed; i++ {
			rank.PathsExplored++
			oc := outcomes[i]
			if oc.reason != "" {
				d.countPrune(rank, oc.reason)
				mx.Inc(telemetry.PrunedCounter(oc.reason))
				continue
			}
			rank.Paths = append(rank.Paths, RankedPath{
				Edges:     oc.child.edges,
				Score:     computeScore(oc.child.relScores, oc.child.redScores),
				Features:  oc.child.features,
				RelScores: oc.child.relScores,
				RedScores: oc.child.redScores,
				Quality:   oc.child.quality,
				Qualities: oc.child.qualities,
			})
			prog.AddPathsKept(1)
			next = append(next, oc.child)
		}
		if d.cfg.BeamWidth > 0 && len(next) > d.cfg.BeamWidth {
			// Beam search: keep the most promising states, judged by the
			// same Algorithm 2 score the ranking uses. Evicted states keep
			// their ranked path but are never expanded further.
			sort.SliceStable(next, func(i, j int) bool {
				return computeScore(next[i].relScores, next[i].redScores) >
					computeScore(next[j].relScores, next[j].redScores)
			})
			evicted := len(next) - d.cfg.BeamWidth
			rank.Prune.BeamEvicted += evicted
			mx.Add(telemetry.PrunedCounter(telemetry.PruneBeamEvicted), int64(evicted))
			prog.AddPruned(telemetry.PruneBeamEvicted, evicted)
			next = next[:d.cfg.BeamWidth]
		}
		foldSpan.SetInt("kept", len(next))
		foldSpan.End()
		depthSpan.End()
		lg.Debug("depth complete",
			"depth", depth+1, "frontier", len(frontier), "evaluated", allowed,
			"kept", len(next), "paths_total", len(rank.Paths))
		frontier = next
	}

	prog.SetPhase(obsrv.PhaseRank)
	_, rankSpan := tr.StartSpan(ctx, telemetry.SpanRank)
	sort.SliceStable(rank.Paths, func(i, j int) bool {
		if rank.Paths[i].Score != rank.Paths[j].Score {
			return rank.Paths[i].Score > rank.Paths[j].Score
		}
		// Prefer shorter paths on ties: fewer joins, same information.
		return len(rank.Paths[i].Edges) < len(rank.Paths[j].Edges)
	})
	rankSpan.SetInt("paths", len(rank.Paths))
	rankSpan.End()

	rank.PathsPruned = rank.Prune.Discarded()
	rank.SelectionTime = time.Since(start)
	if rank.Partial {
		mx.Inc(telemetry.CtrPartialRuns)
		runSpan.SetStr("partial_reason", rank.PartialReason)
		lg.Warn("partial ranking", "reason", rank.PartialReason, "paths", len(rank.Paths))
	}
	mx.Add(telemetry.CtrPathsExplored, int64(rank.PathsExplored))
	mx.Add(telemetry.CtrPathsKept, int64(len(rank.Paths)))
	mx.SetGauge(telemetry.GaugeSelectionSeconds, rank.SelectionTime.Seconds())
	prog.SetPhase(obsrv.PhaseRanked)
	lg.Info("discovery finished",
		"paths", len(rank.Paths), "explored", rank.PathsExplored,
		"pruned", rank.Prune.Total(), "partial", rank.Partial,
		"selection_time", rank.SelectionTime)
	return rank, nil
}

// markPartial flags the ranking Partial under reason and mirrors the flag
// into the live progress tracker. The first cause to fire wins when
// several stop conditions trigger in one run.
func markPartial(rank *Ranking, prog *obsrv.RunProgress, reason string) {
	if !rank.Partial {
		rank.Partial = true
		rank.PartialReason = reason
	}
	prog.MarkPartial(reason)
}

// partialReason maps a context error to its Ranking.PartialReason name.
func partialReason(err error) string {
	if errors.Is(err, context.DeadlineExceeded) {
		return "deadline"
	}
	return "cancelled"
}

// countPrune folds one evaluated-join prune reason into the stats.
func (d *Discovery) countPrune(rank *Ranking, reason string) {
	switch reason {
	case telemetry.PruneJoinFailed:
		rank.Prune.JoinFailed++
	case telemetry.PruneQualityBelowTau:
		rank.Prune.QualityBelowTau++
	case telemetry.PruneCancelled:
		// Normally unreachable — a cancelled expand implies ctx is done
		// and the whole depth is discarded before folding — but an
		// injected joinFn may surface a cancellation of its own.
		rank.Prune.Cancelled++
	}
}

// candidateEdges applies the first pruning strategy (Section IV-C): with
// similarity pruning on, only the top-scoring join column(s) between the
// frontier and the neighbour survive; equal top scores each stay an
// individual join path. The second return value counts the parallel
// edges the strategy discarded.
func (d *Discovery) candidateEdges(from, to string) ([]graph.Edge, int) {
	edges := d.g.EdgesBetween(from, to)
	if !d.cfg.SimilarityPruning || len(edges) <= 1 {
		return edges, 0
	}
	best := edges[0].Weight
	for _, e := range edges[1:] {
		if e.Weight > best {
			best = e.Weight
		}
	}
	var out []graph.Edge
	for _, e := range edges {
		if e.Weight == best {
			out = append(out, e)
		}
	}
	return out, len(edges) - len(out)
}

// edgeSeed derives the deterministic RNG seed for one join evaluation
// from (Config.Seed, depth, edge). Deriving a fresh stream per edge —
// instead of sharing one *rand.Rand across the traversal — makes join
// normalisation independent of evaluation order, which is what lets the
// worker pool produce bit-identical rankings at any worker count.
func edgeSeed(seed int64, depth int, e graph.Edge) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(seed))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(depth))
	h.Write(buf[:])
	for _, s := range [...]string{e.A, e.ColA, e.B, e.ColB} {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return int64(h.Sum64())
}

// safeExpand runs expand behind a panic guard: a panicking join (corrupt
// table, injected fault) is converted into a join_failed prune of that
// one path — recorded under the discovery.join_panics counter — instead
// of killing the whole process, or the worker pool with it.
func (d *Discovery) safeExpand(ctx context.Context, st *state, e graph.Edge, y []int, pipeline *fselect.Pipeline, rng *rand.Rand, seed int64, cache *relational.KeyIndexCache, sp telemetry.Span) (child *state, reason string) {
	defer func() {
		if r := recover(); r != nil {
			d.cfg.Telemetry.Meter().Inc(telemetry.CtrJoinPanics)
			sp.SetStr("panic", fmt.Sprint(r))
			d.cfg.log().Warn("join panic recovered",
				"edge", fmt.Sprintf("%s.%s -> %s.%s", e.A, e.ColA, e.B, e.ColB),
				"panic", fmt.Sprint(r))
			child, reason = nil, telemetry.PruneJoinFailed
		}
	}()
	return d.expand(ctx, st, e, y, pipeline, rng, seed, cache, sp)
}

// expand performs one join of Algorithm 1's inner loop: join, data-quality
// pruning, relevance and redundancy analysis, and R_sel update. It returns
// the child state, or a non-empty pruning reason when the path is pruned.
// Attributes of the evaluated join (matched rows, quality, features kept)
// are recorded on sp. rng (with its originating seed) drives join
// normalisation and must be private to this call; cache may be shared
// across concurrent expands. ctx flows into the join row loop and the
// feature-selection stage boundaries; a cancellation observed there prunes
// the path under the cancelled reason (the caller then discards the whole
// depth, so the partial ranking stays deterministic).
func (d *Discovery) expand(ctx context.Context, st *state, e graph.Edge, y []int, pipeline *fselect.Pipeline, rng *rand.Rand, seed int64, cache *relational.KeyIndexCache, sp telemetry.Span) (*state, string) {
	leftKey := e.A + "." + e.ColA
	if leftKey == d.label {
		// The label column must never act as a join key: matching rows
		// by label value would leak the target into the joined features.
		return nil, telemetry.PruneJoinFailed
	}
	right := d.g.Table(e.B)
	join := relational.LeftJoin
	if d.cfg.joinFn != nil {
		join = d.cfg.joinFn
	}
	res, err := join(st.f, right, leftKey, e.ColB, relational.Options{
		Ctx:       ctx,
		Normalize: d.cfg.NormalizeJoins,
		Rng:       rng,
		Seed:      seed,
		Cache:     cache,
		Telemetry: d.cfg.Telemetry,
		Log:       d.cfg.Logger,
	})
	if err != nil && errors.Is(err, errs.ErrCancelled) {
		return nil, telemetry.PruneCancelled
	}
	if err != nil || res.MatchedRows == 0 {
		// "If the join is not possible, prune."
		return nil, telemetry.PruneJoinFailed
	}
	sp.SetInt("matched_rows", res.MatchedRows)
	quality := res.Quality()
	sp.SetFloat("quality", quality)
	if quality < d.cfg.Tau {
		// Second pruning strategy: data quality below τ.
		return nil, telemetry.PruneQualityBelowTau
	}

	// Streaming feature selection over the columns this join added.
	candidates := make([][]float64, 0, len(res.AddedColumns))
	names := make([]string, 0, len(res.AddedColumns))
	for _, name := range res.AddedColumns {
		candidates = append(candidates, res.Frame.Column(name).Floats())
		names = append(names, name)
	}
	sel := pipeline.RunContext(ctx, candidates, st.selCols, y)
	if sel.Cancelled {
		return nil, telemetry.PruneCancelled
	}
	sp.SetInt("features_kept", len(sel.Kept))

	child := &state{
		node:    e.B,
		f:       res.Frame,
		edges:   appendEdge(st.edges, e),
		visited: copyVisited(st.visited, e.B),
		quality: math.Min(st.quality, quality),
	}
	child.qualities = append(append([]float64{}, st.qualities...), quality)
	child.features = append(append([]string{}, st.features...), pick(names, sel.Kept)...)
	child.relScores = append(append([]float64{}, st.relScores...), sel.RelScores...)
	child.redScores = append(append([]float64{}, st.redScores...), sel.RedScores...)

	// R_sel = R_sel ∪ R_red (Algorithm 1, line 18), tracked per path.
	// Even when the join adds nothing, the path survives as a stepping
	// stone to multi-hop paths (Section V-A: intermediate joins must not
	// be pruned).
	child.selCols = make([][]float64, len(st.selCols), len(st.selCols)+len(sel.Kept))
	copy(child.selCols, st.selCols)
	for _, k := range sel.Kept {
		child.selCols = append(child.selCols, candidates[k])
	}
	return child, ""
}

func appendEdge(edges []graph.Edge, e graph.Edge) []graph.Edge {
	out := make([]graph.Edge, len(edges)+1)
	copy(out, edges)
	out[len(edges)] = e
	return out
}

func copyVisited(v map[string]bool, add string) map[string]bool {
	out := make(map[string]bool, len(v)+1)
	for k := range v {
		out[k] = true
	}
	out[add] = true
	return out
}

func pick(names []string, idx []int) []string {
	out := make([]string, len(idx))
	for i, k := range idx {
		out[i] = names[k]
	}
	return out
}
