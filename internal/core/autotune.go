package core

import (
	"fmt"
	"time"

	"autofeat/internal/graph"
	"autofeat/internal/ml"
)

// TuneResult reports one hyper-parameter configuration evaluated by
// AutoTune.
type TuneResult struct {
	Tau      float64
	Kappa    int
	Accuracy float64
	// Paths is how many ranked paths the configuration produced; zero
	// flags an over-restrictive τ (the Figure 8d failure mode).
	Paths         int
	SelectionTime time.Duration
}

// TuneOutcome is AutoTune's full report: every configuration tried plus
// the winner.
type TuneOutcome struct {
	Best    TuneResult
	Tried   []TuneResult
	Elapsed time.Duration
}

// AutoTune implements the paper's future-work item "dynamic
// hyper-parameter tuning, allowing the algorithm to adapt to different
// data landscapes": it grid-searches τ and κ around the recommended
// defaults, scoring each configuration by the accuracy of the factory's
// model on the best ranked path, and returns the winning configuration.
// Configurations whose τ prunes everything (no ranked paths) are recorded
// but cannot win unless every configuration is empty.
//
// The search reuses one Discovery per configuration; the cost is dominated
// by |taus|×|kappas| model trainings, so keep the grids small (the default
// grids are 3×3).
func AutoTune(g *graph.Graph, base, label string, cfg Config, factory ml.Factory, taus []float64, kappas []int) (*TuneOutcome, error) {
	if len(taus) == 0 {
		taus = []float64{0.5, 0.65, 0.8}
	}
	if len(kappas) == 0 {
		kappas = []int{10, 15, 20}
	}
	start := time.Now()
	out := &TuneOutcome{}
	bestAcc := -1.0
	for _, tau := range taus {
		for _, kappa := range kappas {
			c := cfg
			c.Tau = tau
			c.Kappa = kappa
			d, err := New(g, base, label, c)
			if err != nil {
				return nil, fmt.Errorf("core: autotune tau=%v kappa=%d: %w", tau, kappa, err)
			}
			res, err := d.Augment(factory)
			if err != nil {
				return nil, fmt.Errorf("core: autotune tau=%v kappa=%d: %w", tau, kappa, err)
			}
			tr := TuneResult{
				Tau:           tau,
				Kappa:         kappa,
				Accuracy:      res.Best.Eval.Accuracy,
				Paths:         len(res.Ranking.Paths),
				SelectionTime: res.SelectionTime,
			}
			out.Tried = append(out.Tried, tr)
			// Prefer configurations that actually rank paths; among
			// those, highest accuracy wins (ties keep the earlier, i.e.
			// more permissive τ / smaller κ, configuration).
			better := tr.Accuracy > bestAcc
			if out.Best.Paths > 0 && tr.Paths == 0 {
				better = false
			}
			if out.Best.Paths == 0 && tr.Paths > 0 && tr.Accuracy >= bestAcc-1e-12 {
				better = true
			}
			if better {
				bestAcc = tr.Accuracy
				out.Best = tr
			}
		}
	}
	out.Elapsed = time.Since(start)
	return out, nil
}
