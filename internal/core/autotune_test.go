package core

import (
	"testing"

	"autofeat/internal/frame"
	"autofeat/internal/graph"
	"autofeat/internal/ml"
)

func TestAutoTune(t *testing.T) {
	g := testLake(t, 400)
	factory, _ := ml.FactoryByName("lightgbm")
	out, err := AutoTune(g, "base", "y", DefaultConfig(), factory,
		[]float64{0.3, 0.65}, []int{5, 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tried) != 4 {
		t.Fatalf("grid 2x2 must try 4 configs, got %d", len(out.Tried))
	}
	if out.Best.Accuracy < 0.8 {
		t.Fatalf("best tuned accuracy %.3f too low", out.Best.Accuracy)
	}
	if out.Best.Paths == 0 {
		t.Fatal("winner must have ranked paths")
	}
	if out.Elapsed <= 0 {
		t.Fatal("elapsed must be recorded")
	}
}

func TestAutoTuneDefaultGrids(t *testing.T) {
	g := testLake(t, 200)
	factory, _ := ml.FactoryByName("extratrees")
	out, err := AutoTune(g, "base", "y", DefaultConfig(), factory, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tried) != 9 {
		t.Fatalf("default grid is 3x3, got %d configs", len(out.Tried))
	}
}

func TestAutoTunePrefersConfigWithPaths(t *testing.T) {
	// A lake whose only join covers 90% of the base: τ=1.0 prunes it
	// (the Figure 8d "school yields no output" failure mode), so the
	// winner must come from the permissive side of the grid.
	n := 300
	ids := make([]int64, n)
	y := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
		y[i] = int64(i % 2)
	}
	base := frame.New("base")
	addCol(t, base, frame.NewIntColumn("id", ids, nil))
	addCol(t, base, frame.NewIntColumn("y", y, nil))
	k := n * 9 / 10
	keys := make([]int64, k)
	sig := make([]float64, k)
	for i := range keys {
		keys[i] = int64(i)
		sig[i] = float64(y[i]) * 3
	}
	side := frame.New("side")
	addCol(t, side, frame.NewIntColumn("sk", keys, nil))
	addCol(t, side, frame.NewFloatColumn("sig", sig, nil))
	g := graph.New()
	g.AddTable(base)
	g.AddTable(side)
	mustEdge(t, g, graph.Edge{A: "base", B: "side", ColA: "id", ColB: "sk", Weight: 1, KFK: true})

	factory, _ := ml.FactoryByName("lightgbm")
	out, err := AutoTune(g, "base", "y", DefaultConfig(), factory,
		[]float64{1.0, 0.65}, []int{15})
	if err != nil {
		t.Fatal(err)
	}
	if out.Best.Tau != 0.65 {
		t.Fatalf("winner must be the tau with paths, got %v (paths %d)", out.Best.Tau, out.Best.Paths)
	}
	if out.Tried[0].Paths != 0 {
		t.Fatalf("tau=1.0 must prune the 90%%-coverage join, got %d paths", out.Tried[0].Paths)
	}
}

func TestAutoTuneBadBase(t *testing.T) {
	g := testLake(t, 100)
	factory, _ := ml.FactoryByName("lightgbm")
	if _, err := AutoTune(g, "ghost", "y", DefaultConfig(), factory, nil, nil); err == nil {
		t.Fatal("unknown base must fail")
	}
}
