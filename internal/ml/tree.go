package ml

import (
	"math"
	"math/rand"
	"sort"
)

// defaultMaxBins is the histogram granularity for split finding. All tree
// models pre-bin features into at most this many value bins (plus a
// reserved missing bin), the optimisation LightGBM popularised; it bounds
// split-search cost at O(rows + bins) per feature per node.
const defaultMaxBins = 32

// missingBin is the reserved bin index for NaN cells. Missing values
// always route to the left child, a simple default-direction rule.
const missingBin = 0

// binner maps raw feature values to small integer bins using quantile cut
// points learned from the training matrix.
type binner struct {
	cuts [][]float64 // per feature, ascending thresholds
}

// fitBinner learns at most maxBins-1 quantile cuts per feature.
func fitBinner(X [][]float64, maxBins int) *binner {
	if len(X) == 0 {
		return &binner{}
	}
	d := len(X[0])
	b := &binner{cuts: make([][]float64, d)}
	vals := make([]float64, 0, len(X))
	for j := 0; j < d; j++ {
		vals = vals[:0]
		for _, r := range X {
			if !math.IsNaN(r[j]) {
				vals = append(vals, r[j])
			}
		}
		if len(vals) == 0 {
			continue
		}
		sort.Float64s(vals)
		cuts := make([]float64, 0, maxBins-1)
		for k := 1; k < maxBins; k++ {
			q := vals[len(vals)*k/maxBins]
			if len(cuts) == 0 || q > cuts[len(cuts)-1] {
				cuts = append(cuts, q)
			}
		}
		b.cuts[j] = cuts
	}
	return b
}

// bin maps one value of feature j to its bin: missingBin for NaN, else
// 1 + count of cuts strictly below v.
func (b *binner) bin(j int, v float64) uint8 {
	if math.IsNaN(v) {
		return missingBin
	}
	cuts := b.cuts[j]
	idx := sort.SearchFloat64s(cuts, v) // first cut >= v
	return uint8(1 + idx)
}

// numBins returns the number of bins for feature j including the missing
// bin.
func (b *binner) numBins(j int) int { return len(b.cuts[j]) + 2 }

// transform bins a whole matrix row-major.
func (b *binner) transform(X [][]float64) [][]uint8 {
	out := make([][]uint8, len(X))
	d := len(b.cuts)
	flat := make([]uint8, len(X)*d)
	for i, r := range X {
		out[i] = flat[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
			out[i][j] = b.bin(j, r[j])
		}
	}
	return out
}

// treeNode is one node of a binned decision tree stored in a flat arena.
// Leaves have left == -1; internal nodes send binRow[feature] <= splitBin
// left, the rest right.
type treeNode struct {
	feature  int
	splitBin uint8
	left     int
	right    int
	value    float64
}

// binTree is a decision tree over binned features. value at the leaves is
// P(class=1) for classification trees and an additive score for boosted
// regression trees.
type binTree struct {
	nodes []treeNode
}

func (t *binTree) predictRow(row []uint8) float64 {
	i := 0
	for t.nodes[i].left >= 0 {
		n := t.nodes[i]
		if row[n.feature] <= n.splitBin {
			i = n.left
		} else {
			i = n.right
		}
	}
	return t.nodes[i].value
}

// leafCount returns the number of leaves, used by tests.
func (t *binTree) leafCount() int {
	n := 0
	for _, nd := range t.nodes {
		if nd.left < 0 {
			n++
		}
	}
	return n
}

// classTreeConfig controls CART classification tree growth.
type classTreeConfig struct {
	maxDepth       int
	minSamplesLeaf int
	// mtry is the number of features sampled per node; 0 means all.
	mtry int
	// randomThresholds picks one random candidate split per feature
	// instead of scanning all bins — the Extremely Randomised Trees rule.
	randomThresholds bool
}

// buildClassTree grows a gini-impurity CART tree on binned rows. When imp
// is non-nil, each used split adds its row-weighted impurity decrease to
// imp[feature] (mean-decrease-in-impurity feature importance).
func buildClassTree(binned [][]uint8, y []int, rows []int, bn *binner, cfg classTreeConfig, rng *rand.Rand, imp []float64) *binTree {
	t := &binTree{}
	var grow func(rows []int, depth int) int
	grow = func(rows []int, depth int) int {
		n1 := 0
		for _, r := range rows {
			n1 += y[r]
		}
		node := treeNode{left: -1, right: -1, value: float64(n1) / float64(len(rows))}
		id := len(t.nodes)
		t.nodes = append(t.nodes, node)
		if depth >= cfg.maxDepth || len(rows) < 2*cfg.minSamplesLeaf || n1 == 0 || n1 == len(rows) {
			return id
		}
		feat, splitBin, childGini, ok := bestGiniSplit(binned, y, rows, bn, cfg, rng)
		if !ok {
			return id
		}
		var lrows, rrows []int
		for _, r := range rows {
			if binned[r][feat] <= splitBin {
				lrows = append(lrows, r)
			} else {
				rrows = append(rrows, r)
			}
		}
		if len(lrows) < cfg.minSamplesLeaf || len(rrows) < cfg.minSamplesLeaf {
			return id
		}
		if imp != nil {
			imp[feat] += float64(len(rows)) * (giniImpurity(len(rows), n1) - childGini)
		}
		l := grow(lrows, depth+1)
		r := grow(rrows, depth+1)
		t.nodes[id].feature = feat
		t.nodes[id].splitBin = splitBin
		t.nodes[id].left = l
		t.nodes[id].right = r
		return id
	}
	grow(rows, 0)
	return t
}

// bestGiniSplit scans (feature, bin) candidates and returns the split with
// the lowest weighted gini impurity.
func bestGiniSplit(binned [][]uint8, y []int, rows []int, bn *binner, cfg classTreeConfig, rng *rand.Rand) (feat int, splitBin uint8, childGini float64, ok bool) {
	d := len(bn.cuts)
	feats := sampleFeatures(d, cfg.mtry, rng)
	total := len(rows)
	total1 := 0
	for _, r := range rows {
		total1 += y[r]
	}
	bestScore := giniImpurity(total, total1) // must improve on parent
	var hist0, hist1 [64]int
	for _, j := range feats {
		nb := bn.numBins(j)
		for b := 0; b < nb; b++ {
			hist0[b], hist1[b] = 0, 0
		}
		for _, r := range rows {
			b := binned[r][j]
			if y[r] == 1 {
				hist1[b]++
			} else {
				hist0[b]++
			}
		}
		if cfg.randomThresholds {
			// Extra-trees: a single random cut in [0, nb-2].
			b := uint8(rng.Intn(nb - 1))
			if score, valid := splitScore(hist0[:nb], hist1[:nb], int(b), total, total1); valid && score < bestScore {
				bestScore, feat, splitBin, ok = score, j, b, true
			}
			continue
		}
		for b := 0; b < nb-1; b++ {
			if score, valid := splitScore(hist0[:nb], hist1[:nb], b, total, total1); valid && score < bestScore {
				bestScore, feat, splitBin, ok = score, j, uint8(b), true
			}
		}
	}
	return feat, splitBin, bestScore, ok
}

// splitScore computes the weighted gini of splitting after bin b.
func splitScore(hist0, hist1 []int, b, total, total1 int) (float64, bool) {
	ln, l1 := 0, 0
	for i := 0; i <= b; i++ {
		ln += hist0[i] + hist1[i]
		l1 += hist1[i]
	}
	rn := total - ln
	r1 := total1 - l1
	if ln == 0 || rn == 0 {
		return 0, false
	}
	w := float64(ln)/float64(total)*giniImpurity(ln, l1) +
		float64(rn)/float64(total)*giniImpurity(rn, r1)
	return w, true
}

func giniImpurity(n, n1 int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(n1) / float64(n)
	return 2 * p * (1 - p)
}

// sampleFeatures returns mtry distinct feature indices (all when mtry<=0 or
// >= d), in random order when sampled.
func sampleFeatures(d, mtry int, rng *rand.Rand) []int {
	all := make([]int, d)
	for i := range all {
		all[i] = i
	}
	if mtry <= 0 || mtry >= d || rng == nil {
		return all
	}
	rng.Shuffle(d, func(i, j int) { all[i], all[j] = all[j], all[i] })
	return all[:mtry]
}
