package ml

import (
	"math"
	"math/rand"
)

// Forest is a bagged ensemble of CART trees covering both the Random
// Forest and Extremely Randomised Trees models of the evaluation.
type Forest struct {
	name      string
	nTrees    int
	maxDepth  int
	minLeaf   int
	bootstrap bool
	extra     bool // extra-trees: random thresholds, no bootstrap
	seed      int64

	bn         *binner
	trees      []*binTree
	importance []float64
}

// FeatureImportances returns the mean-decrease-in-impurity importance per
// feature, normalised to sum to 1 (nil before Fit).
func (f *Forest) FeatureImportances() []float64 {
	if f.importance == nil {
		return nil
	}
	out := make([]float64, len(f.importance))
	total := 0.0
	for _, v := range f.importance {
		total += v
	}
	if total == 0 {
		return out
	}
	for i, v := range f.importance {
		out[i] = v / total
	}
	return out
}

// NewRandomForest builds a Random Forest: 100 bootstrap-sampled gini trees
// with sqrt-feature subsampling per node.
func NewRandomForest(seed int64) *Forest {
	return &Forest{name: "randomforest", nTrees: 100, maxDepth: 12, minLeaf: 2, bootstrap: true, seed: seed}
}

// NewExtraTrees builds Extremely Randomised Trees: 100 trees grown on the
// full sample with one random threshold per candidate feature.
func NewExtraTrees(seed int64) *Forest {
	return &Forest{name: "extratrees", nTrees: 100, maxDepth: 12, minLeaf: 2, extra: true, seed: seed}
}

// Name implements Classifier.
func (f *Forest) Name() string { return f.name }

// Fit implements Classifier.
func (f *Forest) Fit(X [][]float64, y []int) error {
	d, err := checkXY(X, y)
	if err != nil {
		return err
	}
	f.bn = fitBinner(X, defaultMaxBins)
	binned := f.bn.transform(X)
	rng := rand.New(rand.NewSource(f.seed))
	mtry := int(math.Sqrt(float64(d)))
	if mtry < 1 {
		mtry = 1
	}
	cfg := classTreeConfig{
		maxDepth:         f.maxDepth,
		minSamplesLeaf:   f.minLeaf,
		mtry:             mtry,
		randomThresholds: f.extra,
	}
	f.trees = make([]*binTree, f.nTrees)
	f.importance = make([]float64, d)
	n := len(X)
	for t := 0; t < f.nTrees; t++ {
		rows := make([]int, n)
		if f.bootstrap {
			for i := range rows {
				rows[i] = rng.Intn(n)
			}
		} else {
			for i := range rows {
				rows[i] = i
			}
		}
		f.trees[t] = buildClassTree(binned, y, rows, f.bn, cfg, rng, f.importance)
	}
	return nil
}

// PredictProba implements Classifier.
func (f *Forest) PredictProba(X [][]float64) []float64 {
	if f.bn == nil {
		return make([]float64, len(X))
	}
	binned := f.bn.transform(X)
	out := make([]float64, len(X))
	for i, row := range binned {
		s := 0.0
		for _, t := range f.trees {
			s += t.predictRow(row)
		}
		out[i] = s / float64(len(f.trees))
	}
	return out
}

// Predict implements Classifier.
func (f *Forest) Predict(X [][]float64) []int { return hardLabels(f.PredictProba(X)) }
