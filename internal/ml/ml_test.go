package ml

import (
	"math"
	"math/rand"
	"testing"

	"autofeat/internal/frame"
)

// synth builds a separable binary task: two informative features and
// (d-2) noise features.
func synth(n, d int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % 2
		y[i] = cls
		row := make([]float64, d)
		row[0] = float64(cls)*2 + rng.NormFloat64()
		if d > 1 {
			row[1] = float64(cls)*-1.5 + rng.NormFloat64()*0.8
		}
		for j := 2; j < d; j++ {
			row[j] = rng.NormFloat64()
		}
		X[i] = row
	}
	return X, y
}

func trainTest(n, d int, seed int64) (Xtr [][]float64, ytr []int, Xte [][]float64, yte []int) {
	X, y := synth(n, d, seed)
	cut := n * 4 / 5
	return X[:cut], y[:cut], X[cut:], y[cut:]
}

func TestAllModelsLearnSeparableTask(t *testing.T) {
	Xtr, ytr, Xte, yte := trainTest(600, 6, 1)
	for _, f := range append(TreeFactories(), NonTreeFactories()...) {
		m := f.New(7)
		if m.Name() != f.Name {
			t.Errorf("factory %q builds model named %q", f.Name, m.Name())
		}
		if err := m.Fit(Xtr, ytr); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		acc := Accuracy(m.Predict(Xte), yte)
		if acc < 0.8 {
			t.Errorf("%s: accuracy %.3f < 0.8 on separable task", f.Name, acc)
		}
		auc := AUC(m.PredictProba(Xte), yte)
		if auc < 0.85 {
			t.Errorf("%s: AUC %.3f < 0.85", f.Name, auc)
		}
	}
}

func TestModelsRejectBadInput(t *testing.T) {
	for _, f := range append(TreeFactories(), NonTreeFactories()...) {
		m := f.New(1)
		if err := m.Fit(nil, nil); err == nil {
			t.Errorf("%s: empty input must fail", f.Name)
		}
		if err := m.Fit([][]float64{{1}}, []int{0, 1}); err == nil {
			t.Errorf("%s: row/label mismatch must fail", f.Name)
		}
		if err := m.Fit([][]float64{{1}, {2}}, []int{0, 5}); err == nil {
			t.Errorf("%s: non-binary label must fail", f.Name)
		}
		if err := m.Fit([][]float64{{1, 2}, {3}}, []int{0, 1}); err == nil {
			t.Errorf("%s: ragged matrix must fail", f.Name)
		}
	}
}

func TestUntrainedModelsPredictZeros(t *testing.T) {
	X := [][]float64{{1, 2}}
	for _, f := range append(TreeFactories(), NonTreeFactories()...) {
		m := f.New(1)
		p := m.PredictProba(X)
		if len(p) != 1 {
			t.Errorf("%s: untrained PredictProba shape", f.Name)
		}
	}
}

func TestModelsHandleNaN(t *testing.T) {
	Xtr, ytr, Xte, yte := trainTest(400, 4, 3)
	// Punch NaN holes into 10% of cells.
	rng := rand.New(rand.NewSource(5))
	for _, X := range [][][]float64{Xtr, Xte} {
		for _, r := range X {
			for j := range r {
				if rng.Float64() < 0.1 {
					r[j] = math.NaN()
				}
			}
		}
	}
	for _, f := range append(TreeFactories(), NonTreeFactories()...) {
		m := f.New(7)
		if err := m.Fit(Xtr, ytr); err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		acc := Accuracy(m.Predict(Xte), yte)
		if acc < 0.7 {
			t.Errorf("%s: accuracy %.3f < 0.7 with 10%% NaN", f.Name, acc)
		}
	}
}

func TestModelDeterminism(t *testing.T) {
	Xtr, ytr, Xte, _ := trainTest(300, 5, 11)
	for _, f := range TreeFactories() {
		a := f.New(42)
		b := f.New(42)
		if err := a.Fit(Xtr, ytr); err != nil {
			t.Fatal(err)
		}
		if err := b.Fit(Xtr, ytr); err != nil {
			t.Fatal(err)
		}
		pa, pb := a.PredictProba(Xte), b.PredictProba(Xte)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("%s: same seed, different predictions", f.Name)
			}
		}
	}
}

func TestGBDTFlavoursDiffer(t *testing.T) {
	lg := NewLightGBM(1)
	xg := NewXGBoost(1)
	if !lg.leafWise || xg.leafWise {
		t.Fatal("lightgbm must be leaf-wise, xgboost depth-wise")
	}
	Xtr, ytr, _, _ := trainTest(300, 5, 13)
	if err := lg.Fit(Xtr, ytr); err != nil {
		t.Fatal(err)
	}
	if len(lg.trees) != lg.nRounds {
		t.Fatalf("lightgbm trees = %d, want %d", len(lg.trees), lg.nRounds)
	}
	for _, tr := range lg.trees {
		if tr.leafCount() > lg.maxLeaves {
			t.Fatalf("leaf-wise tree exceeded budget: %d leaves", tr.leafCount())
		}
	}
}

func TestBinner(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}, {math.NaN()}}
	b := fitBinner(X, 4)
	if b.bin(0, math.NaN()) != missingBin {
		t.Fatal("NaN must map to the missing bin")
	}
	if b.bin(0, -100) == missingBin {
		t.Fatal("small values must not collide with the missing bin")
	}
	if b.bin(0, 1) >= b.bin(0, 8) {
		t.Fatal("binning must be monotone")
	}
	if b.numBins(0) > 4+1 {
		t.Fatalf("too many bins: %d", b.numBins(0))
	}
	tr := b.transform(X)
	if len(tr) != 9 || tr[8][0] != missingBin {
		t.Fatal("transform broken")
	}
}

func TestBinnerConstantFeature(t *testing.T) {
	X := [][]float64{{5}, {5}, {5}}
	b := fitBinner(X, 8)
	if b.bin(0, 5) == missingBin {
		t.Fatal("constant feature still bins to a value bin")
	}
	// All equal values share a bin.
	if b.bin(0, 5) != b.bin(0, 5) {
		t.Fatal("constant binning unstable")
	}
}

func TestLogRegL1Sparsifies(t *testing.T) {
	X, y := synth(500, 20, 17)
	m := NewLogRegL1(3)
	m.Alpha = 0.05
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	nz := m.NonZeroWeights()
	if nz > 15 {
		t.Fatalf("L1 should zero noise weights: %d/20 non-zero", nz)
	}
	if nz == 0 {
		t.Fatal("informative weights must survive")
	}
	if math.Abs(m.weights[0]) == 0 {
		t.Fatal("strongest feature zeroed out")
	}
}

func TestKNNBasics(t *testing.T) {
	if NewKNN(0).k != 1 {
		t.Fatal("k clamps to 1")
	}
	// k larger than the training set clamps.
	m := NewKNN(50)
	X := [][]float64{{0}, {1}, {10}, {11}}
	y := []int{0, 0, 1, 1}
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p := m.PredictProba([][]float64{{0.5}})
	if p[0] != 0.5 {
		t.Fatalf("k>n must average everything: %v", p[0])
	}
	m2 := NewKNN(2)
	if err := m2.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if got := m2.Predict([][]float64{{0.2}, {10.5}}); got[0] != 0 || got[1] != 1 {
		t.Fatalf("knn predictions wrong: %v", got)
	}
}

func TestAccuracyAUCF1(t *testing.T) {
	if Accuracy([]int{1, 0, 1}, []int{1, 1, 1}) != 2.0/3 {
		t.Fatal("accuracy wrong")
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy is 0")
	}
	// Perfect ranking -> AUC 1.
	if AUC([]float64{0.1, 0.2, 0.8, 0.9}, []int{0, 0, 1, 1}) != 1 {
		t.Fatal("perfect AUC wrong")
	}
	// Inverted ranking -> AUC 0.
	if AUC([]float64{0.9, 0.8, 0.2, 0.1}, []int{0, 0, 1, 1}) != 0 {
		t.Fatal("inverted AUC wrong")
	}
	// Ties -> 0.5.
	if AUC([]float64{0.5, 0.5}, []int{0, 1}) != 0.5 {
		t.Fatal("tied AUC wrong")
	}
	// Single class -> 0.5.
	if AUC([]float64{0.5, 0.7}, []int{1, 1}) != 0.5 {
		t.Fatal("single-class AUC must be 0.5")
	}
	// F1.
	if F1([]int{1, 1, 0, 0}, []int{1, 0, 1, 0}) != 0.5 {
		t.Fatal("F1 wrong")
	}
	if F1([]int{0, 0}, []int{1, 1}) != 0 {
		t.Fatal("zero-tp F1 is 0")
	}
}

func TestMetricsMismatchDegrades(t *testing.T) {
	// Mismatched lengths (corrupt evaluations) degrade to the common
	// prefix instead of panicking — graceful degradation so one corrupt
	// table never kills the process.
	if got := Accuracy([]int{1}, []int{1, 2}); got != 1 {
		t.Errorf("accuracy over prefix = %v, want 1", got)
	}
	if got := AUC([]float64{0.5}, []int{1, 0}); got != 0.5 {
		t.Errorf("auc over single-class prefix = %v, want 0.5", got)
	}
	if got := F1([]int{1}, []int{1, 0}); got != 1 {
		t.Errorf("f1 over prefix = %v, want 1", got)
	}
}

func TestFactoryByName(t *testing.T) {
	for _, name := range []string{"lightgbm", "xgboost", "randomforest", "extratrees", "knn", "lr_l1"} {
		f, ok := FactoryByName(name)
		if !ok || f.New(1).Name() != name {
			t.Errorf("FactoryByName(%q) broken", name)
		}
	}
	if _, ok := FactoryByName("nope"); ok {
		t.Fatal("unknown name must fail")
	}
}

func TestEvaluateFrame(t *testing.T) {
	n := 400
	ids := make([]int64, n)
	feats := make([]float64, n)
	labels := make([]int64, n)
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		labels[i] = int64(i % 2)
		feats[i] = float64(labels[i])*3 + rng.NormFloat64()
	}
	f := frame.New("t")
	if err := f.AddColumn(frame.NewIntColumn("id", ids, nil)); err != nil {
		t.Fatal(err)
	}
	if err := f.AddColumn(frame.NewFloatColumn("x", feats, nil)); err != nil {
		t.Fatal(err)
	}
	if err := f.AddColumn(frame.NewIntColumn("y", labels, nil)); err != nil {
		t.Fatal(err)
	}
	res, err := EvaluateFrame(f, []string{"x"}, "y", NewLightGBM(1), 9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.85 {
		t.Fatalf("accuracy %.3f too low", res.Accuracy)
	}
	if res.Model != "lightgbm" {
		t.Fatal("model name missing from result")
	}
	if _, err := EvaluateFrame(f, nil, "y", NewLightGBM(1), 9); err == nil {
		t.Fatal("no features must fail")
	}
	if _, err := EvaluateFrame(f, []string{"ghost"}, "y", NewLightGBM(1), 9); err == nil {
		t.Fatal("missing feature must fail")
	}
}

func TestSigmoidAndLogit(t *testing.T) {
	if sigmoid(0) != 0.5 {
		t.Fatal("sigmoid(0) must be 0.5")
	}
	if sigmoid(100) != 1 || sigmoid(-100) != 0 {
		t.Fatal("sigmoid clamping broken")
	}
	if math.Abs(sigmoid(logit(0.3))-0.3) > 1e-9 {
		t.Fatal("logit must invert sigmoid")
	}
	if math.IsInf(logit(0), 0) || math.IsInf(logit(1), 0) {
		t.Fatal("logit must clamp at the boundaries")
	}
}

func TestMeanImpute(t *testing.T) {
	X := [][]float64{{1, math.NaN()}, {3, 4}}
	out, means := meanImpute(X)
	if out[0][1] != 4 {
		t.Fatalf("NaN must become column mean: %v", out[0][1])
	}
	if means[0] != 2 {
		t.Fatalf("mean wrong: %v", means[0])
	}
	// Source untouched.
	if !math.IsNaN(X[0][1]) {
		t.Fatal("meanImpute must copy")
	}
	allNaN := [][]float64{{math.NaN()}, {math.NaN()}}
	out2, _ := meanImpute(allNaN)
	if out2[0][0] != 0 {
		t.Fatal("all-NaN feature imputes 0")
	}
	if got, _ := meanImpute(nil); got != nil {
		t.Fatal("nil input gives nil")
	}
}
