package ml

import (
	"fmt"
	"log/slog"
	"math/rand"

	"autofeat/internal/frame"
)

// EvalResult is one train/test evaluation outcome.
type EvalResult struct {
	Model    string
	Accuracy float64
	AUC      float64
	F1       float64
}

// EvaluateFrame trains the classifier on a stratified 80/20 split of the
// frame restricted to the given feature columns, then scores it on the
// held-out test rows — the Section V-B methodology (imputation with the
// most frequent value, stratified split, accuracy on the test set).
func EvaluateFrame(f *frame.Frame, features []string, label string, c Classifier, seed int64) (EvalResult, error) {
	return EvaluateFrameLogged(f, features, label, c, seed, nil)
}

// EvaluateFrameLogged is EvaluateFrame with an optional structured logger:
// a non-nil lg receives one Debug record per evaluation (model, feature
// count, scores). A nil lg behaves exactly like EvaluateFrame.
func EvaluateFrameLogged(f *frame.Frame, features []string, label string, c Classifier, seed int64, lg *slog.Logger) (EvalResult, error) {
	if len(features) == 0 {
		return EvalResult{}, fmt.Errorf("ml: no features to evaluate")
	}
	imputed := f.Imputed()
	split, err := imputed.StratifiedSplit(label, 0.8, rand.New(rand.NewSource(seed)))
	if err != nil {
		return EvalResult{}, err
	}
	res, err := evaluateSplit(split.Train, split.Test, features, label, c)
	if err == nil && lg != nil {
		lg.Debug("model evaluated",
			"model", res.Model, "features", len(features),
			"accuracy", res.Accuracy, "auc", res.AUC, "f1", res.F1)
	}
	return res, err
}

func evaluateSplit(train, test *frame.Frame, features []string, label string, c Classifier) (EvalResult, error) {
	Xtr, err := train.Matrix(features)
	if err != nil {
		return EvalResult{}, err
	}
	ytr, err := train.Labels(label)
	if err != nil {
		return EvalResult{}, err
	}
	Xte, err := test.Matrix(features)
	if err != nil {
		return EvalResult{}, err
	}
	yte, err := test.Labels(label)
	if err != nil {
		return EvalResult{}, err
	}
	if err := c.Fit(Xtr, ytr); err != nil {
		return EvalResult{}, err
	}
	proba := c.PredictProba(Xte)
	pred := hardLabels(proba)
	return EvalResult{
		Model:    c.Name(),
		Accuracy: Accuracy(pred, yte),
		AUC:      AUC(proba, yte),
		F1:       F1(pred, yte),
	}, nil
}
