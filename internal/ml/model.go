// Package ml is the machine-learning substrate of the reproduction. The
// paper evaluates augmented tables with AutoGluon-hosted models: four tree
// ensembles (LightGBM, XGBoost, Random Forest, Extremely Randomised Trees)
// plus KNN and L1-regularised linear classification. This package
// implements from-scratch, stdlib-only equivalents:
//
//   - CART decision trees over histogram-binned features,
//   - bagged forests (bootstrap + feature subsampling) and extra-trees
//     (random thresholds),
//   - gradient-boosted trees with logistic loss in two flavours:
//     leaf-wise growth ("lightgbm") and depth-wise growth with L2
//     regularisation ("xgboost"),
//   - K-nearest neighbours and L1 logistic regression.
//
// All models handle binary classification (the paper's task setting),
// expect row-major float64 feature matrices, tolerate NaN cells (treated
// as a dedicated "missing" bin by trees, imputed to the feature mean by
// KNN/linear), and are deterministic for a fixed seed.
package ml

import (
	"errors"
	"fmt"
	"math"
)

// Classifier is a binary classifier over dense feature matrices.
type Classifier interface {
	// Name identifies the model in reports.
	Name() string
	// Fit trains on row-major X with labels y in {0,1}.
	Fit(X [][]float64, y []int) error
	// PredictProba returns P(class=1) per row.
	PredictProba(X [][]float64) []float64
	// Predict returns hard labels (proba >= 0.5).
	Predict(X [][]float64) []int
}

// Factory constructs a fresh classifier; harnesses use factories so each
// evaluation trains an untouched model.
type Factory struct {
	Name string
	New  func(seed int64) Classifier
}

// TreeFactories returns the four tree-ensemble models of Section VII-A in
// paper order: LightGBM, Extremely Randomised Trees, Random Forest,
// XGBoost.
func TreeFactories() []Factory {
	return []Factory{
		{Name: "lightgbm", New: func(seed int64) Classifier { return NewLightGBM(seed) }},
		{Name: "extratrees", New: func(seed int64) Classifier { return NewExtraTrees(seed) }},
		{Name: "randomforest", New: func(seed int64) Classifier { return NewRandomForest(seed) }},
		{Name: "xgboost", New: func(seed int64) Classifier { return NewXGBoost(seed) }},
	}
}

// NonTreeFactories returns the Figure 5/7 models: KNN and L1-regularised
// linear classification.
func NonTreeFactories() []Factory {
	return []Factory{
		{Name: "knn", New: func(seed int64) Classifier { return NewKNN(5) }},
		{Name: "lr_l1", New: func(seed int64) Classifier { return NewLogRegL1(seed) }},
	}
}

// FactoryByName resolves any model by its report name, or returns ok=false.
func FactoryByName(name string) (Factory, bool) {
	for _, f := range append(TreeFactories(), NonTreeFactories()...) {
		if f.Name == name {
			return f, true
		}
	}
	return Factory{}, false
}

var (
	errNoData     = errors.New("ml: empty training set")
	errNotTrained = errors.New("ml: model not trained")
)

// checkXY validates training input shape and the binary label range.
func checkXY(X [][]float64, y []int) (nFeatures int, err error) {
	if len(X) == 0 || len(y) == 0 {
		return 0, errNoData
	}
	if len(X) != len(y) {
		return 0, fmt.Errorf("ml: %d rows but %d labels", len(X), len(y))
	}
	d := len(X[0])
	for i, r := range X {
		if len(r) != d {
			return 0, fmt.Errorf("ml: ragged row %d (%d features, want %d)", i, len(r), d)
		}
	}
	for i, v := range y {
		if v != 0 && v != 1 {
			return 0, fmt.Errorf("ml: label %d at row %d is not binary", v, i)
		}
	}
	return d, nil
}

// hardLabels thresholds probabilities at 0.5.
func hardLabels(proba []float64) []int {
	out := make([]int, len(proba))
	for i, p := range proba {
		if p >= 0.5 {
			out[i] = 1
		}
	}
	return out
}

// sigmoid is the logistic link, clamped to avoid overflow.
func sigmoid(z float64) float64 {
	if z > 35 {
		return 1
	}
	if z < -35 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}

// meanImpute replaces NaN cells with the per-feature mean computed on the
// training matrix; means default to 0 for all-NaN features. Returns the
// imputed copy and the means for reuse at prediction time.
func meanImpute(X [][]float64) ([][]float64, []float64) {
	if len(X) == 0 {
		return nil, nil
	}
	d := len(X[0])
	means := make([]float64, d)
	counts := make([]int, d)
	for _, r := range X {
		for j, v := range r {
			if !math.IsNaN(v) {
				means[j] += v
				counts[j]++
			}
		}
	}
	for j := range means {
		if counts[j] > 0 {
			means[j] /= float64(counts[j])
		}
	}
	out := applyImpute(X, means)
	return out, means
}

func applyImpute(X [][]float64, means []float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, r := range X {
		row := make([]float64, len(r))
		for j, v := range r {
			if math.IsNaN(v) {
				row[j] = means[j]
			} else {
				row[j] = v
			}
		}
		out[i] = row
	}
	return out
}
